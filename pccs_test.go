package pccs_test

import (
	"context"
	"math"
	"testing"

	pccs "github.com/processorcentricmodel/pccs"
)

// The public-API tests exercise the façade end to end against the shipped
// model artifact, the way a downstream user would.

func TestLoadShippedModels(t *testing.T) {
	models, err := pccs.LoadModels("models/pccs-models.json")
	if err != nil {
		t.Fatalf("shipped model artifact unusable: %v", err)
	}
	for _, key := range []struct{ platform, pu string }{
		{"virtual-xavier", "CPU"}, {"virtual-xavier", "GPU"}, {"virtual-xavier", "DLA"},
		{"virtual-snapdragon", "CPU"}, {"virtual-snapdragon", "GPU"},
	} {
		m, err := models.Get(key.platform, key.pu)
		if err != nil {
			t.Errorf("missing model %s/%s: %v", key.platform, key.pu, err)
			continue
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s/%s: %v", key.platform, key.pu, err)
		}
	}
}

func TestShippedModelCrossPUContrasts(t *testing.T) {
	// Table 7's qualitative contrasts must hold in the shipped artifact.
	models, err := pccs.LoadModels("models/pccs-models.json")
	if err != nil {
		t.Fatal(err)
	}
	dla, _ := models.Get("virtual-xavier", "DLA")
	if dla.NormalBW != 0 {
		t.Errorf("DLA NormalBW = %v, want 0 (no minor region)", dla.NormalBW)
	}
	xgpu, _ := models.Get("virtual-xavier", "GPU")
	sgpu, _ := models.Get("virtual-snapdragon", "GPU")
	if sgpu.TBWDC >= xgpu.TBWDC {
		t.Errorf("Snapdragon GPU TBWDC %v should be far below Xavier's %v", sgpu.TBWDC, xgpu.TBWDC)
	}
	if sgpu.RateN <= xgpu.RateN {
		t.Errorf("per-GB/s slowdown rate should be steeper on the narrow Snapdragon (%v vs %v)", sgpu.RateN, xgpu.RateN)
	}
}

func TestPredictQuickStart(t *testing.T) {
	models, err := pccs.LoadModels("models/pccs-models.json")
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := models.Get("virtual-xavier", "GPU")
	if err != nil {
		t.Fatal(err)
	}
	solo := gpu.Predict(88, 0)
	if solo != 100 {
		t.Errorf("no external demand: RS = %v, want 100", solo)
	}
	contended := gpu.Predict(88, 120)
	if contended >= solo {
		t.Errorf("contended RS %v not below standalone %v", contended, solo)
	}
}

func TestGablesBaselineFacade(t *testing.T) {
	g, err := pccs.NewGables(pccs.Xavier().PeakGBps())
	if err != nil {
		t.Fatal(err)
	}
	if rs := g.Predict(60, 40); rs != 100 {
		t.Errorf("Gables below peak: %v, want 100", rs)
	}
}

func TestPlatformsExposed(t *testing.T) {
	x, s := pccs.Xavier(), pccs.Snapdragon()
	if x.PUIndex("DLA") != 2 || s.PUIndex("GPU") != 1 {
		t.Error("platform PU layout changed")
	}
	if math.Abs(x.PeakGBps()-136.5) > 0.5 || math.Abs(s.PeakGBps()-34.1) > 0.5 {
		t.Errorf("peaks = %v, %v", x.PeakGBps(), s.PeakGBps())
	}
}

func TestMeasureRelativeSpeedsFacade(t *testing.T) {
	p := pccs.Xavier()
	res, err := pccs.MeasureRelativeSpeeds(p, pccs.Placement{
		1: pccs.Kernel{Name: "k", DemandGBps: 60},
		0: pccs.ExternalPressure(50),
	}, pccs.QuickRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rs := res[1].RelativeSpeed; rs <= 0 || rs > 1 {
		t.Errorf("relative speed = %v", rs)
	}
}

func TestFrequencySelectionFacade(t *testing.T) {
	models, err := pccs.LoadModels("models/pccs-models.json")
	if err != nil {
		t.Fatal(err)
	}
	gpu, _ := models.Get("virtual-xavier", "GPU")
	fm := pccs.FreqModel{Kernel: "streamcluster", MemBoundGBps: 88, CrossoverMHz: 900, MaxMHz: 1377}
	sel, err := pccs.SelectFrequency(gpu, fm, 60, 5, pccs.FreqLadder(300, 1377, 10))
	if err != nil {
		t.Fatal(err)
	}
	if sel.FreqMHz <= 0 || sel.FreqMHz > 1377 {
		t.Errorf("selected frequency %v out of range", sel.FreqMHz)
	}
}

func TestWorkloadFacade(t *testing.T) {
	names := pccs.WorkloadNames()
	if len(names) == 0 {
		t.Fatal("no workloads registered")
	}
	w, err := pccs.GetWorkload("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	if d, err := w.DemandOn("virtual-xavier", "GPU"); err != nil || d <= 0 {
		t.Errorf("streamcluster GPU demand = %v, %v", d, err)
	}
	if _, err := pccs.GetWorkload("doom"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPhaseAggregationFacade(t *testing.T) {
	models, _ := pccs.LoadModels("models/pccs-models.json")
	gpu, _ := models.Get("virtual-xavier", "GPU")
	phases := []pccs.Phase{
		{Name: "K1", Weight: 0.3, DemandGBps: 114},
		{Name: "K2", Weight: 0.7, DemandGBps: 70},
	}
	rs, err := gpu.PredictPhases(phases, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rs <= 0 || rs > 100 {
		t.Errorf("phased RS = %v", rs)
	}
	if avg := pccs.AverageDemand(phases); math.Abs(avg-(0.3*114+0.7*70)) > 1e-9 {
		t.Errorf("AverageDemand = %v", avg)
	}
}

func TestScalingFacade(t *testing.T) {
	models, _ := pccs.LoadModels("models/pccs-models.json")
	gpu, _ := models.Get("virtual-xavier", "GPU")
	half := gpu.Scale(0.5)
	if math.Abs(half.PeakBW-gpu.PeakBW/2) > 1e-9 {
		t.Errorf("scaled peak = %v", half.PeakBW)
	}
}

func TestScheduleFacade(t *testing.T) {
	models, err := pccs.LoadModels("models/pccs-models.json")
	if err != nil {
		t.Fatal(err)
	}
	p := pccs.Xavier()
	items := []pccs.ScheduleItem{
		{Workload: "streamcluster"},
		{Workload: "pathfinder"},
		{ID: "flat", DemandGBps: 30},
	}
	obj, err := pccs.ParseScheduleObjective("makespan")
	if err != nil {
		t.Fatal(err)
	}
	s, err := pccs.SolveSchedule(context.Background(), models, p, items, pccs.ScheduleOptions{Objective: obj, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan <= 0 || s.Makespan > s.SerialMakespan+1e-9 {
		t.Errorf("makespan %v vs serial %v", s.Makespan, s.SerialMakespan)
	}
	placed := 0
	for _, w := range s.Waves {
		placed += len(w.Assignments)
	}
	if placed != len(items) {
		t.Fatalf("placed %d of %d items", placed, len(items))
	}
	wc, err := pccs.ScheduleWorstCase(context.Background(), models, p, items, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(wc.Bounds) != placed {
		t.Fatalf("bounds for %d of %d assignments", len(wc.Bounds), placed)
	}
	for _, b := range wc.Bounds {
		if b.WorstSlowdown < b.ExpectedSlowdown-1e-9 {
			t.Errorf("%s: worst %v < expected %v", b.Item, b.WorstSlowdown, b.ExpectedSlowdown)
		}
	}
	val, err := pccs.ValidateSchedule(context.Background(), p, s, pccs.QuickRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if val.ActualMakespan <= 0 {
		t.Errorf("actual makespan %v", val.ActualMakespan)
	}
}
