package pccs

import (
	"context"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/simrun"
)

// Matrix is the rela[n][m] achieved-relative-speed measurement the model
// parameters are extracted from (§3.2).
type Matrix = calib.Matrix

// ExtractOptions tunes the five-step parameter extraction.
type ExtractOptions = calib.Options

// Extraction modes.
const (
	// RobustExtraction (default) hardens the paper's algorithm against
	// measurement noise.
	RobustExtraction = calib.Robust
	// StrictExtraction follows §3.2 to the letter.
	StrictExtraction = calib.Strict
)

// DefaultExtractOptions is the robust extraction used by the tooling.
func DefaultExtractOptions() ExtractOptions { return calib.DefaultOptions() }

// ModelSet is a bundle of constructed models keyed by platform/PU.
type ModelSet = calib.ModelSet

// LoadModels reads constructed models from a JSON artifact (the repository
// ships models/pccs-models.json for the two virtual platforms).
func LoadModels(path string) (ModelSet, error) { return calib.Load(path) }

// Construct builds the PCCS model for one PU of a platform by running the
// processor-centric calibration sweep on the simulator and extracting the
// parameters. It returns the model and the measured matrix. The sweep's
// grid points fan out over a GOMAXPROCS worker pool; the result is
// bit-identical to a serial sweep.
func Construct(p Backend, pu int, rc RunConfig, opt ExtractOptions) (Params, *Matrix, error) {
	return calib.ConstructPU(p, pu, rc, opt)
}

// ConstructContext is Construct with cancellation: the sweep aborts as soon
// as ctx is done and returns the context error.
func ConstructContext(ctx context.Context, p Backend, pu int, rc RunConfig, opt ExtractOptions) (Params, *Matrix, error) {
	return calib.ConstructPUContext(ctx, nil, p, pu, rc, opt)
}

// ConstructAll builds models for every PU of a platform.
func ConstructAll(p Backend, rc RunConfig, opt ExtractOptions) (ModelSet, error) {
	return calib.ConstructPlatform(p, rc, opt)
}

// ConstructAllContext is ConstructAll with cancellation. One executor (and
// its standalone-measurement memo cache) is shared across the PUs.
func ConstructAllContext(ctx context.Context, p Backend, rc RunConfig, opt ExtractOptions) (ModelSet, error) {
	return calib.ConstructPlatformContext(ctx, nil, p, rc, opt)
}

// Extract runs only the five-step analysis on an existing matrix.
func Extract(m *Matrix, opt ExtractOptions) (Params, error) { return calib.Extract(m, opt) }

// MeasureRelativeSpeeds runs a placement standalone-then-co-run on the
// platform and reports each PU's achieved relative speed — the ground-truth
// measurement the models are validated against.
func MeasureRelativeSpeeds(p Backend, pl Placement, rc RunConfig) (map[int]PUResult, error) {
	return MeasureRelativeSpeedsContext(context.Background(), p, pl, rc)
}

// MeasureRelativeSpeedsContext is MeasureRelativeSpeeds with cancellation;
// the co-run and every standalone reference proceed concurrently, with
// results identical to the serial method.
func MeasureRelativeSpeedsContext(ctx context.Context, p Backend, pl Placement, rc RunConfig) (map[int]PUResult, error) {
	return simrun.RelativeSpeeds(ctx, simrun.New(0), p, pl, rc)
}
