// Pre-silicon SoC design exploration (§4.3): choose the CPU clock for a
// streamcluster-class kernel under a co-run slowdown budget, compare the
// PCCS recommendation against the Gables baseline, and quantify the power
// head-room an accurate contention model buys. (The paper clocks the GPU;
// on the virtual platform the pre-peak contention regime lives on the CPU —
// see DESIGN.md.)
//
// Run from the repository root:
//
//	go run ./examples/socdesign
package main

import (
	"fmt"
	"log"

	pccs "github.com/processorcentricmodel/pccs"
)

func main() {
	log.SetFlags(0)
	models, err := pccs.LoadModels("models/pccs-models.json")
	if err != nil {
		log.Fatalf("load models (run from the repo root): %v", err)
	}
	platform := pccs.Xavier()
	cpuModel, err := models.Get(platform.Name, "CPU")
	if err != nil {
		log.Fatal(err)
	}
	gb, err := pccs.NewGables(platform.PeakGBps())
	if err != nil {
		log.Fatal(err)
	}

	// The kernel's standalone performance model across CPU clock:
	// memory-bound above 1450 MHz at 55 GB/s, compute-bound below.
	fm := pccs.FreqModel{Kernel: "streamcluster", MemBoundGBps: 55, CrossoverMHz: 1450, MaxMHz: 2265}
	ladder := pccs.FreqLadder(500, fm.MaxMHz, 15)

	fmt.Println("CPU frequency selection for streamcluster (budget: ≤5% co-run slowdown)")
	fmt.Printf("%-10s  %12s  %12s  %14s\n", "ext GB/s", "PCCS MHz", "Gables MHz", "power saved")
	for _, ext := range []float64{60, 80, 100} {
		pSel, err := pccs.SelectFrequency(cpuModel, fm, ext, 5, ladder)
		if err != nil {
			log.Fatal(err)
		}
		gSel, err := pccs.SelectFrequency(gb, fm, ext, 5, ladder)
		if err != nil {
			log.Fatal(err)
		}
		saved := "-"
		if gSel.FreqMHz > pSel.FreqMHz {
			pw := relPower(pSel.FreqMHz, fm.MaxMHz)
			gw := relPower(gSel.FreqMHz, fm.MaxMHz)
			saved = fmt.Sprintf("%.1f%%", 100*(gw-pw)/gw)
		}
		fmt.Printf("%-10.0f  %12.0f  %12.0f  %14s\n", ext, pSel.FreqMHz, gSel.FreqMHz, saved)
	}
	fmt.Println("\nGables sees no contention until total demand exceeds the peak, so it")
	fmt.Println("over-clocks the CPU; PCCS picks the clock the contended memory system")
	fmt.Println("can actually feed, and banks the power difference.")
}

func relPower(f, fmax float64) float64 { r := f / fmax; return r * r * r }
