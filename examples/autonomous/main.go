// Autonomous-vehicle workload placement study (the paper's motivating
// scenario, Fig. 1): an AV pipeline has a clustering module, a path
// planner, and a DNN perception model that must co-run on one SoC. Which
// module goes on which PU, and how much does each slow down?
//
// The example enumerates placements of three modules onto the Xavier's
// CPU/GPU/DLA, predicts each PU's co-run slowdown with PCCS, and ranks
// placements by the worst per-module slowdown — then validates the best
// placement on the simulator.
//
// Run from the repository root:
//
//	go run ./examples/autonomous
package main

import (
	"fmt"
	"log"
	"sort"

	pccs "github.com/processorcentricmodel/pccs"
)

// module is one AV pipeline stage with its profiled standalone demand per
// candidate PU (GB/s). The DNN only runs on GPU or DLA; the clustering and
// planning kernels only on CPU or GPU — realistic placement constraints.
type module struct {
	name    string
	demands map[string]float64 // PU name → standalone demand
}

func main() {
	log.SetFlags(0)
	models, err := pccs.LoadModels("models/pccs-models.json")
	if err != nil {
		log.Fatalf("load models (run from the repo root): %v", err)
	}
	platform := pccs.Xavier()

	modules := []module{
		{"clustering", map[string]float64{"CPU": 55, "GPU": 88}},
		{"planning", map[string]float64{"CPU": 48, "GPU": 72}},
		{"perception", map[string]float64{"GPU": 75, "DLA": 24}},
	}
	pus := []string{"CPU", "GPU", "DLA"}

	type placement struct {
		assign map[string]string // module → PU
		worst  float64           // worst per-module RS (%)
		detail string
	}
	var candidates []placement

	// Enumerate injective assignments of modules to PUs.
	var recurse func(i int, used map[string]bool, assign map[string]string)
	recurse = func(i int, used map[string]bool, assign map[string]string) {
		if i == len(modules) {
			// Score: each module's PCCS-predicted RS given the other
			// modules' demands as external traffic.
			worst := 200.0
			detail := ""
			for _, m := range modules {
				pu := assign[m.name]
				x := m.demands[pu]
				y := 0.0
				for _, other := range modules {
					if other.name != m.name {
						y += other.demands[assign[other.name]]
					}
				}
				model, err := models.Get(platform.Name, pu)
				if err != nil {
					log.Fatal(err)
				}
				rs := model.Predict(x, y)
				if rs < worst {
					worst = rs
				}
				detail += fmt.Sprintf("  %-11s → %-3s  x=%5.1f  y=%5.1f  RS %.1f%%\n", m.name, pu, x, y, rs)
			}
			cp := make(map[string]string, len(assign))
			for k, v := range assign {
				cp[k] = v
			}
			candidates = append(candidates, placement{assign: cp, worst: worst, detail: detail})
			return
		}
		m := modules[i]
		for _, pu := range pus {
			if used[pu] {
				continue
			}
			if _, ok := m.demands[pu]; !ok {
				continue // module cannot run on this PU
			}
			used[pu] = true
			assign[m.name] = pu
			recurse(i+1, used, assign)
			delete(assign, m.name)
			used[pu] = false
		}
	}
	recurse(0, map[string]bool{}, map[string]string{})

	sort.Slice(candidates, func(i, j int) bool { return candidates[i].worst > candidates[j].worst })
	fmt.Printf("evaluated %d feasible placements; ranked by worst per-module slowdown:\n\n", len(candidates))
	for i, c := range candidates {
		fmt.Printf("#%d  worst RS %.1f%%\n%s\n", i+1, c.worst, c.detail)
	}

	// Validate the winner on the simulated SoC.
	best := candidates[0]
	fmt.Println("validating the best placement on the simulator ...")
	pl := pccs.Placement{}
	for _, m := range modules {
		pu := best.assign[m.name]
		pl[platform.PUIndex(pu)] = pccs.Kernel{Name: m.name, DemandGBps: m.demands[pu]}
	}
	res, err := pccs.MeasureRelativeSpeeds(platform, pl, pccs.QuickRunConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range modules {
		pu := best.assign[m.name]
		fmt.Printf("  %-11s on %-3s: measured RS %.1f%%\n", m.name, pu, 100*res[platform.PUIndex(pu)].RelativeSpeed)
	}
}
