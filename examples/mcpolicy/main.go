// Memory-controller policy characterization (§2.3): co-run a medium-demand
// kernel against rising external pressure under each of the five scheduling
// policies and watch the three-region phenomenology appear exactly under
// the fairness-aware ones — the empirical foundation of the PCCS model.
//
// This example drives the internal SoC simulator through the public façade:
// it builds platform variants per policy and measures achieved relative
// speeds directly.
//
// Run from the repository root:
//
//	go run ./examples/mcpolicy
package main

import (
	"fmt"
	"log"

	pccs "github.com/processorcentricmodel/pccs"
)

func main() {
	log.SetFlags(0)
	rc := pccs.QuickRunConfig()

	fmt.Println("medium-demand kernel (60 GB/s) on the virtual Xavier GPU;")
	fmt.Println("achieved relative speed (%) vs external CPU demand, per MC policy")
	fmt.Println()

	exts := []float64{14, 41, 68, 96, 123}
	fmt.Printf("%-9s", "policy")
	for _, e := range exts {
		fmt.Printf("  ext=%3.0f", e)
	}
	fmt.Println("   flat tail?")

	for _, policy := range pccs.AllPolicies() {
		p := pccs.XavierWithPolicy(policy)
		gpu, cpu := p.PUIndex("GPU"), p.PUIndex("CPU")
		var rss []float64
		for _, ext := range exts {
			res, err := pccs.MeasureRelativeSpeeds(p, pccs.Placement{
				gpu: pccs.Kernel{Name: "medium", DemandGBps: 60},
				cpu: pccs.ExternalPressure(ext),
			}, rc)
			if err != nil {
				log.Fatal(err)
			}
			rss = append(rss, 100*res[gpu].RelativeSpeed)
		}
		tail := rss[len(rss)-1] - rss[len(rss)-2]
		flat := "no"
		if tail > -3 {
			flat = "yes"
		}
		fmt.Printf("%-9s", policy)
		for _, rs := range rss {
			fmt.Printf("  %7.1f", rs)
		}
		fmt.Printf("   %s\n", flat)
	}
	fmt.Println("\nfairness-aware policies (ATLAS, TCM, SMS) flatten at the contention")
	fmt.Println("balance point — the flat tail the PCCS model's CBP parameter encodes.")
}
