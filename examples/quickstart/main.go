// Quickstart: load the shipped PCCS models, predict a co-run slowdown, and
// check the prediction against the simulator.
//
// Run from the repository root:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pccs "github.com/processorcentricmodel/pccs"
)

func main() {
	log.SetFlags(0)

	// The repository ships models constructed on the virtual Xavier by
	// cmd/pccs-calibrate — calibrate once, predict forever.
	models, err := pccs.LoadModels("models/pccs-models.json")
	if err != nil {
		log.Fatalf("load models (run from the repo root): %v", err)
	}
	platform := pccs.Xavier()
	gpu, err := models.Get(platform.Name, "GPU")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model:", gpu)

	// A streamcluster-like kernel demands 88 GB/s standalone on the GPU.
	// How much of its standalone speed survives co-location with kernels
	// demanding 40 GB/s on the other PUs?
	const demand, external = 88, 40
	rs := gpu.Predict(demand, external)
	fmt.Printf("\nPCCS: a %d GB/s kernel under %d GB/s external demand keeps %.1f%% of its speed\n",
		demand, external, rs)
	fmt.Printf("      (region %v, predicted slowdown %.2fx)\n",
		gpu.Region(demand), gpu.PredictSlowdown(demand, external))

	// Validate the prediction against the simulated SoC: run the kernel
	// standalone, then co-run it against synthetic external pressure.
	fmt.Println("\nchecking against the simulator ...")
	res, err := pccs.MeasureRelativeSpeeds(platform, pccs.Placement{
		platform.PUIndex("GPU"): pccs.Kernel{Name: "streamcluster", DemandGBps: demand},
		platform.PUIndex("CPU"): pccs.ExternalPressure(external),
	}, pccs.QuickRunConfig())
	if err != nil {
		log.Fatal(err)
	}
	actual := 100 * res[platform.PUIndex("GPU")].RelativeSpeed
	fmt.Printf("simulator: %.1f%%   |prediction error| = %.1f%%\n", actual, abs(rs-actual))
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
