// Memory-generation scaling (§3.3): a PCCS model constructed on one memory
// configuration retargets to an incrementally different one by linear
// parameter scaling — no re-calibration needed. This example scales the
// shipped Xavier GPU model down to a hypothetical 1066 MHz memory
// generation and compares its predictions against a freshly simulated
// under-clocked platform.
//
// Run from the repository root (takes ~1 min of simulation):
//
//	go run ./examples/memscale
package main

import (
	"fmt"
	"log"

	pccs "github.com/processorcentricmodel/pccs"
)

func main() {
	log.SetFlags(0)
	models, err := pccs.LoadModels("models/pccs-models.json")
	if err != nil {
		log.Fatalf("load models (run from the repo root): %v", err)
	}
	gpuModel, err := models.Get("virtual-xavier", "GPU")
	if err != nil {
		log.Fatal(err)
	}

	// The designer considers halving the memory clock: 2133 → 1066 MHz.
	const ratio = 1066.0 / 2133.0
	scaled := gpuModel.Scale(ratio)
	fmt.Println("original:", gpuModel)
	fmt.Println("scaled:  ", scaled)

	// Build the under-clocked platform and measure a few operating points
	// the scaled model has never seen.
	slow := pccs.Xavier().ScaleMemory(ratio)
	gpu, cpu := slow.PUIndex("GPU"), slow.PUIndex("CPU")
	rc := pccs.QuickRunConfig()

	fmt.Printf("\n%10s %10s %12s %12s %8s\n", "demand", "ext", "measured RS%", "scaled RS%", "|err|")
	var sumErr float64
	var n int
	for _, point := range [][2]float64{{30, 20}, {30, 45}, {45, 30}, {45, 60}, {55, 45}} {
		demand, ext := point[0], point[1]
		res, err := pccs.MeasureRelativeSpeeds(slow, pccs.Placement{
			gpu: pccs.Kernel{Name: "k", DemandGBps: demand},
			cpu: pccs.ExternalPressure(ext),
		}, rc)
		if err != nil {
			log.Fatal(err)
		}
		actual := 100 * res[gpu].RelativeSpeed
		pred := scaled.Predict(demand, ext)
		e := pred - actual
		if e < 0 {
			e = -e
		}
		sumErr += e
		n++
		fmt.Printf("%10.0f %10.0f %12.1f %12.1f %8.1f\n", demand, ext, actual, pred, e)
	}
	fmt.Printf("\nmean |error| of the linearly scaled model: %.1f%% — no re-calibration needed\n",
		sumErr/float64(n))
	fmt.Println("(the paper reports ≤ ~3% parameter error from the same scaling, Table 5)")
}
