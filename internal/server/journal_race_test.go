package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/processorcentricmodel/pccs/internal/core"
)

// TestJournalCompactionRacesAppends hammers one journal with concurrent
// appenders while a compactor rewrites it in a loop — the interleaving the
// runner produces when a busy queue crosses CompactThreshold mid-burst.
// Run under -race this is primarily a locking test; the logical check is
// that after a final authoritative compaction the reopened journal replays
// exactly the final job set, one record per job, regardless of how the
// races interleaved.
func TestJournalCompactionRacesAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.CompactThreshold = 1 // compact as aggressively as possible

	const jobs = 8
	const transitions = 40

	// table is the authoritative job state, shared by appenders (who write
	// their transition there before journaling it) and the compactor (who
	// snapshots it) — the same discipline the runner enforces with its own
	// mutex.
	var tableMu sync.Mutex
	table := make(map[string]Job)

	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("job-%06d", i+1)
			states := []JobState{JobQueued, JobRunning, JobCompleted}
			for n := 0; n < transitions; n++ {
				job := Job{ID: id, State: states[n%len(states)]}
				if n == transitions-1 {
					job.State = JobCompleted
				}
				tableMu.Lock()
				table[id] = job
				tableMu.Unlock()
				if err := j.Append(job); err != nil {
					t.Errorf("append %s: %v", id, err)
					return
				}
			}
		}(i)
	}

	stop := make(chan struct{})
	var compactorDone sync.WaitGroup
	compactorDone.Add(1)
	go func() {
		defer compactorDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if j.ShouldCompact() {
				tableMu.Lock()
				snap := make([]Job, 0, len(table))
				for _, job := range table {
					snap = append(snap, job)
				}
				tableMu.Unlock()
				if err := j.Compact(snap); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	compactorDone.Wait()

	// Final authoritative compaction: from here the journal content is
	// deterministic no matter what the race interleaving dropped or kept.
	final := make([]Job, 0, jobs)
	for _, job := range table {
		final = append(final, job)
	}
	if err := j.Compact(final); err != nil {
		t.Fatal(err)
	}
	if got := j.Records(); got != jobs {
		t.Errorf("records after final compaction = %d, want %d", got, jobs)
	}
	j.Close()

	j2, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("journal corrupted by racing compaction: %v", err)
	}
	defer j2.Close()
	if len(replayed) != jobs {
		t.Fatalf("replayed %d jobs, want %d", len(replayed), jobs)
	}
	for _, job := range replayed {
		if job.State != JobCompleted {
			t.Errorf("job %s replayed as %s, want completed", job.ID, job.State)
		}
	}
}

// TestJournalSizeTriggerRacesAppends is the byte-threshold twin of the
// record-count race above: CompactBytes is set low enough that nearly every
// append pushes the journal over the size trigger while other goroutines are
// mid-Append, so the size accounting (j.bytes) is exercised under the same
// interleavings as the file itself. The invariants are the same — no
// corruption, replay-equality after a final compaction — plus one more: the
// tracked size must agree with the bytes actually on disk, or the trigger
// would drift (firing never, or every append) after enough churn.
func TestJournalSizeTriggerRacesAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.CompactThreshold = 1 << 30 // only the byte trigger may fire
	j.CompactBytes = 64

	const jobs = 8
	const transitions = 40

	var tableMu sync.Mutex
	table := make(map[string]Job)

	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("job-%06d", i+1)
			states := []JobState{JobQueued, JobRunning, JobCompleted}
			for n := 0; n < transitions; n++ {
				job := Job{ID: id, State: states[n%len(states)]}
				if n == transitions-1 {
					job.State = JobCompleted
				}
				tableMu.Lock()
				table[id] = job
				tableMu.Unlock()
				if err := j.Append(job); err != nil {
					t.Errorf("append %s: %v", id, err)
					return
				}
			}
		}(i)
	}

	stop := make(chan struct{})
	var compactorDone sync.WaitGroup
	compactorDone.Add(1)
	go func() {
		defer compactorDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if j.ShouldCompact() {
				tableMu.Lock()
				snap := make([]Job, 0, len(table))
				for _, job := range table {
					snap = append(snap, job)
				}
				tableMu.Unlock()
				if err := j.Compact(snap); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	compactorDone.Wait()

	final := make([]Job, 0, jobs)
	for _, job := range table {
		final = append(final, job)
	}
	if err := j.Compact(final); err != nil {
		t.Fatal(err)
	}
	// The tracked size must match the file: a drifting counter would make
	// the byte trigger lie long after this test's interleavings are gone.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.SizeBytes(); got != fi.Size() {
		t.Errorf("tracked size = %d, file size = %d", got, fi.Size())
	}
	j.Close()

	j2, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("journal corrupted by size-triggered compaction: %v", err)
	}
	defer j2.Close()
	if len(replayed) != jobs {
		t.Fatalf("replayed %d jobs, want %d", len(replayed), jobs)
	}
	for _, job := range replayed {
		if job.State != JobCompleted {
			t.Errorf("job %s replayed as %s, want completed", job.ID, job.State)
		}
	}
	if j2.SizeBytes() != fi.Size() {
		t.Errorf("reopened size = %d, want %d", j2.SizeBytes(), fi.Size())
	}
}

// TestRunnerCompactionStorm drives the real runner across the compaction
// threshold with a burst of concurrent submissions: every transition is
// journaled while compaction repeatedly rewrites the file underneath, and a
// restart must replay every job in its terminal state.
func TestRunnerCompactionStorm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	journal, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	journal.CompactThreshold = 3
	r := newJobRunner(jobRunnerOptions{
		workers:    4,
		queueDepth: 64,
		reg:        NewRegistry(),
		construct: fakeConstruct(func(CalibrateSpec) ([]core.Params, error) {
			return nil, nil
		}),
		journal: journal,
	})

	const n = 40
	ids := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job, err := r.Submit(CalibrateSpec{Platform: "virtual-xavier"})
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			ids <- job.ID
		}()
	}
	wg.Wait()
	close(ids)

	want := make(map[string]bool)
	for id := range ids {
		want[id] = true
		if job := waitJob(t, r, id, 10*time.Second); job.State != JobCompleted {
			t.Errorf("job %s = %s (%s)", id, job.State, job.Error)
		}
	}
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if errs := r.JournalErrs(); errs != 0 {
		t.Errorf("journal errors during storm = %d", errs)
	}
	journal.Close()

	j2, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("restart replay failed: %v", err)
	}
	defer j2.Close()
	if len(replayed) != n {
		t.Fatalf("replayed %d jobs, want %d", len(replayed), n)
	}
	for _, job := range replayed {
		if !want[job.ID] {
			t.Errorf("replayed unknown job %s", job.ID)
		}
		if job.State != JobCompleted {
			t.Errorf("job %s replayed as %s, want completed", job.ID, job.State)
		}
	}
}
