package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/processorcentricmodel/pccs/internal/core"
)

// fakeConstruct adapts a context- and progress-oblivious fake to the
// constructFunc signature.
func fakeConstruct(f func(CalibrateSpec) ([]core.Params, error)) constructFunc {
	return func(_ context.Context, spec CalibrateSpec, _ func(int, int, int)) ([]core.Params, error) {
		return f(spec)
	}
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, r *JobRunner, id string, timeout time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		job, ok := r.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if job.State.Terminal() {
			return job
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %s", id, timeout)
	return Job{}
}

func TestJobRunnerCompletesAndInstallsModels(t *testing.T) {
	reg := NewRegistry()
	construct := fakeConstruct(func(spec CalibrateSpec) ([]core.Params, error) {
		return []core.Params{testParams(spec.Platform, "GPU")}, nil
	})
	r := NewJobRunner(2, 8, reg, construct)
	defer r.Close(context.Background())

	job, err := r.Submit(CalibrateSpec{Platform: "virtual-xavier", PU: "GPU"})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobQueued || job.ID == "" {
		t.Fatalf("submitted job = %+v", job)
	}
	done := waitJob(t, r, job.ID, 5*time.Second)
	if done.State != JobCompleted {
		t.Fatalf("state = %s (%s)", done.State, done.Error)
	}
	if len(done.Models) != 1 || done.Models[0] != "virtual-xavier/GPU" {
		t.Fatalf("models = %v", done.Models)
	}
	if done.Started == nil || done.Finished == nil {
		t.Error("missing timestamps")
	}
	if _, err := reg.Get("virtual-xavier", "GPU"); err != nil {
		t.Errorf("constructed model not installed: %v", err)
	}
	if got := r.List(); len(got) != 1 || got[0].ID != job.ID {
		t.Errorf("List = %+v", got)
	}
}

func TestJobRunnerReportsFailure(t *testing.T) {
	boom := errors.New("sweep diverged")
	r := NewJobRunner(1, 4, NewRegistry(), fakeConstruct(func(CalibrateSpec) ([]core.Params, error) {
		return nil, boom
	}))
	defer r.Close(context.Background())
	job, err := r.Submit(CalibrateSpec{Platform: "virtual-snapdragon"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, r, job.ID, 5*time.Second)
	if done.State != JobFailed || done.Error != boom.Error() {
		t.Fatalf("job = %+v", done)
	}
}

func TestJobSpecValidation(t *testing.T) {
	r := NewJobRunner(1, 4, NewRegistry(), fakeConstruct(func(CalibrateSpec) ([]core.Params, error) {
		return nil, nil
	}))
	defer r.Close(context.Background())
	cases := []CalibrateSpec{
		{Platform: "no-such-soc"},
		{Platform: "virtual-xavier", PU: "TPU"},
		{Platform: "virtual-xavier", Mode: "bayesian"},
		{Platform: "virtual-xavier", WarmupCycles: -1},
	}
	for _, spec := range cases {
		if _, err := r.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}

func TestJobQueueBackpressureAndClose(t *testing.T) {
	release := make(chan struct{})
	r := NewJobRunner(1, 1, NewRegistry(), fakeConstruct(func(CalibrateSpec) ([]core.Params, error) {
		<-release
		return nil, nil
	}))

	// First job occupies the worker, second fills the queue slot.
	first, err := r.Submit(CalibrateSpec{Platform: "virtual-xavier"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked up the first job so exactly one queue
	// slot is in play.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if job, _ := r.Get(first.ID); job.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	second, err := r.Submit(CalibrateSpec{Platform: "virtual-xavier"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(CalibrateSpec{Platform: "virtual-xavier"}); err == nil {
		t.Fatal("overfull queue accepted a job")
	}
	if n := r.InFlight(); n != 2 {
		t.Errorf("InFlight = %d, want 2", n)
	}

	// Close with a blocked worker must time out...
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	if err := r.Close(ctx); err == nil {
		t.Error("Close returned before drain")
	}
	cancel()
	// ...and succeed once the jobs can finish.
	close(release)
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{first.ID, second.ID} {
		if job, _ := r.Get(id); job.State != JobCompleted {
			t.Errorf("job %s state = %s", id, job.State)
		}
	}
	if _, err := r.Submit(CalibrateSpec{Platform: "virtual-xavier"}); err == nil {
		t.Error("closed runner accepted a job")
	}
	if n := r.InFlight(); n != 0 {
		t.Errorf("InFlight after drain = %d", n)
	}
}

func TestJobCancelRunning(t *testing.T) {
	started := make(chan struct{})
	r := NewJobRunner(1, 4, NewRegistry(), func(ctx context.Context, _ CalibrateSpec, _ func(int, int, int)) ([]core.Params, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	defer r.Close(context.Background())
	job, err := r.Submit(CalibrateSpec{Platform: "virtual-xavier"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := r.Cancel(job.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	done := waitJob(t, r, job.ID, 5*time.Second)
	if done.State != JobCancelled {
		t.Fatalf("state = %s (%s)", done.State, done.Error)
	}
	if done.Finished == nil {
		t.Error("cancelled job missing Finished timestamp")
	}
	// A second cancel on the now-terminal job must conflict.
	if _, err := r.Cancel(job.ID); !errors.Is(err, ErrJobTerminal) {
		t.Errorf("re-cancel error = %v, want ErrJobTerminal", err)
	}
}

func TestJobCancelQueued(t *testing.T) {
	release := make(chan struct{})
	r := NewJobRunner(1, 2, NewRegistry(), fakeConstruct(func(CalibrateSpec) ([]core.Params, error) {
		<-release
		return nil, nil
	}))
	first, err := r.Submit(CalibrateSpec{Platform: "virtual-xavier"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if job, _ := r.Get(first.ID); job.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	second, err := r.Submit(CalibrateSpec{Platform: "virtual-xavier"})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := r.Cancel(second.ID)
	if err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if snap.State != JobCancelled {
		t.Fatalf("queued job after cancel = %s", snap.State)
	}
	if n := r.InFlight(); n != 1 {
		t.Errorf("InFlight after cancelling queued job = %d, want 1", n)
	}
	close(release)
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The worker must have skipped the cancelled job, not run it.
	if job, _ := r.Get(second.ID); job.State != JobCancelled || job.Started != nil {
		t.Errorf("cancelled-queued job = %+v", job)
	}
	if job, _ := r.Get(first.ID); job.State != JobCompleted {
		t.Errorf("first job = %s", job.State)
	}
}

func TestJobCancelUnknown(t *testing.T) {
	r := NewJobRunner(1, 4, NewRegistry(), fakeConstruct(func(CalibrateSpec) ([]core.Params, error) {
		return nil, nil
	}))
	defer r.Close(context.Background())
	if _, err := r.Cancel("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("error = %v, want ErrUnknownJob", err)
	}
}

func TestJobProgressSurfaced(t *testing.T) {
	reported := make(chan struct{})
	release := make(chan struct{})
	r := NewJobRunner(1, 4, NewRegistry(), func(_ context.Context, _ CalibrateSpec, progress func(int, int, int)) ([]core.Params, error) {
		progress(3, 12, 2)
		close(reported)
		<-release
		return nil, nil
	})
	defer r.Close(context.Background())
	job, err := r.Submit(CalibrateSpec{Platform: "virtual-xavier"})
	if err != nil {
		t.Fatal(err)
	}
	<-reported
	snap, _ := r.Get(job.ID)
	if snap.Progress == nil || snap.Progress.Completed != 3 || snap.Progress.Total != 12 || snap.Progress.Retries != 2 {
		t.Fatalf("progress = %+v", snap.Progress)
	}
	close(release)
	done := waitJob(t, r, job.ID, 5*time.Second)
	if done.State != JobCompleted {
		t.Fatalf("state = %s", done.State)
	}
}
