package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/processorcentricmodel/pccs/internal/clock"
)

// ErrBreakerOpen is returned when the calibration circuit breaker is
// rejecting work: the simulator backend has been failing or timing out, and
// sending more jobs at it would only wedge the worker pool deeper.
var ErrBreakerOpen = errors.New("server: calibration circuit open")

// BreakerState is the classic three-state circuit: closed (traffic flows,
// outcomes are watched), open (everything is rejected until the cooldown
// elapses), half-open (exactly one probe is let through to test recovery).
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the tripping conditions.
type BreakerConfig struct {
	// Window is the sliding outcome window the failure rate is computed
	// over (default 16).
	Window int
	// MinSamples gates the failure-rate trip: no rate decision before this
	// many outcomes (default 8), so one early failure cannot open a cold
	// circuit.
	MinSamples int
	// FailureRate trips the breaker when failures/window reaches it
	// (default 0.5).
	FailureRate float64
	// ConsecTimeouts trips the breaker after this many timeouts in a row
	// (default 3) regardless of the rate — a wedged simulator times every
	// job out and must be cut off after a handful, not after half a window.
	ConsecTimeouts int
	// Cooldown is how long the circuit stays open before half-opening
	// (default 15s).
	Cooldown time.Duration
	// Clock supplies time for the cooldown (default the real clock; the
	// DST harness injects a virtual one).
	Clock clock.Clock
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.5
	}
	if c.ConsecTimeouts <= 0 {
		c.ConsecTimeouts = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 15 * time.Second
	}
	if c.Clock == nil {
		c.Clock = clock.System()
	}
	return c
}

// Breaker protects the simulator-backed calibration path. It trips on a
// high failure rate over a sliding window or on consecutive timeouts, stays
// open for a cooldown, then half-opens and admits a single probe job whose
// outcome closes or re-opens the circuit.
type Breaker struct {
	cfg    BreakerConfig
	now    func() time.Time // injectable clock for tests
	onTrip func()           // metrics hook; may be nil

	mu       sync.Mutex
	state    BreakerState // guarded by mu
	window   []bool       // guarded by mu; ring of outcomes, true = failure
	idx      int          // guarded by mu
	filled   int          // guarded by mu
	timeouts int          // guarded by mu; consecutive
	openedAt time.Time    // guarded by mu
	probing  bool         // guarded by mu; half-open probe outstanding
	trips    uint64       // guarded by mu
}

// NewBreaker builds a closed breaker; onTrip (may be nil) fires on every
// closed/half-open → open transition.
func NewBreaker(cfg BreakerConfig, onTrip func()) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, now: cfg.Clock.Now, onTrip: onTrip, window: make([]bool, cfg.Window)}
}

// Allow asks to run one unit of breaker-protected work. A nil return is a
// grant (in half-open it claims the single probe); ErrBreakerOpen means the
// caller must fail fast. The caller must report the outcome via Record (or
// Forget, if the work never ran).
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	switch b.state {
	case BreakerOpen:
		return ErrBreakerOpen
	case BreakerHalfOpen:
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	default:
		return nil
	}
}

// Rejecting reports whether new work would currently be refused outright
// (open, or half-open with the probe already out) — the cheap pre-check
// Submit uses to 503 before queueing.
func (b *Breaker) Rejecting() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	return b.state == BreakerOpen || (b.state == BreakerHalfOpen && b.probing)
}

// advanceLocked performs the lazy open → half-open transition once the
// cooldown has elapsed.
//
//pccs:allow-guardedby every caller holds b.mu; shared lazy-transition step
func (b *Breaker) advanceLocked() {
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = BreakerHalfOpen
		b.probing = false
	}
}

// Record reports the outcome of work Allow granted. nil closes (or keeps
// closed) the circuit; context.DeadlineExceeded counts as a timeout;
// anything else is a plain failure.
func (b *Breaker) Record(err error) {
	failure := err != nil
	timeout := errors.Is(err, context.DeadlineExceeded)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
		if failure {
			b.tripLocked()
		} else {
			b.resetLocked()
		}
		return
	}
	if b.state == BreakerOpen {
		// A straggler from before the trip; the circuit is already open.
		return
	}
	if b.filled < len(b.window) {
		b.filled++
	}
	b.window[b.idx] = failure
	b.idx = (b.idx + 1) % len(b.window)
	if timeout {
		b.timeouts++
	} else {
		b.timeouts = 0
	}
	if b.timeouts >= b.cfg.ConsecTimeouts {
		b.tripLocked()
		return
	}
	if b.filled >= b.cfg.MinSamples {
		failures := 0
		for i := 0; i < b.filled; i++ {
			if b.window[i] {
				failures++
			}
		}
		if float64(failures)/float64(b.filled) >= b.cfg.FailureRate {
			b.tripLocked()
		}
	}
}

// Forget returns an unused Allow grant (the work never ran — e.g. the job
// was cancelled before start) without recording an outcome.
func (b *Breaker) Forget() {
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

//pccs:allow-guardedby every caller holds b.mu
func (b *Breaker) tripLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.trips++
	b.resetWindowLocked()
	if b.onTrip != nil {
		b.onTrip()
	}
}

//pccs:allow-guardedby every caller holds b.mu
func (b *Breaker) resetLocked() {
	b.state = BreakerClosed
	b.resetWindowLocked()
}

//pccs:allow-guardedby every caller holds b.mu
func (b *Breaker) resetWindowLocked() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.filled, b.timeouts = 0, 0, 0
}

// State reports the current state (performing the lazy half-open
// transition, but never consuming the probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	return b.state
}

// Trips reports the cumulative closed→open transitions.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// CooldownRemaining is how long until an open circuit half-opens (zero when
// not open) — the Retry-After hint on breaker-rejected work.
func (b *Breaker) CooldownRemaining() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	rem := b.cfg.Cooldown - b.now().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}
