package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// benchServer wires the serving path without a socket: benchmarks drive
// Handler().ServeHTTP directly so they measure routing + JSON + model +
// cache, not kernel networking.
func benchServer(b *testing.B, cacheSize int) *Server {
	b.Helper()
	reg := NewRegistry()
	for _, pu := range []string{"CPU", "GPU"} {
		if err := reg.Put(testParams("virtual-xavier", pu)); err != nil {
			b.Fatal(err)
		}
	}
	srv, _ := newServer(Config{CacheSize: cacheSize, Workers: 1}, reg, nil, nil, nil)
	b.Cleanup(func() { srv.jobs.Close(context.Background()) })
	return srv
}

// BenchmarkServerPredict is the serving-throughput baseline: parallel
// single predictions over a small working set (the scheduler-loop shape —
// mostly cache hits).
func BenchmarkServerPredict(b *testing.B) {
	srv := benchServer(b, 4096)
	h := srv.Handler()
	bodies := make([][]byte, 64)
	for i := range bodies {
		data, err := json.Marshal(PredictRequest{
			Platform:     "virtual-xavier",
			PU:           "GPU",
			DemandGBps:   float64(1 + i),
			ExternalGBps: 40,
		})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = data
	}
	var n atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := n.Add(1)
			req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(bodies[i%uint64(len(bodies))]))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	})
}

// BenchmarkServerPredictUncached forces a miss on every request: the upper
// bound on per-prediction model cost behind the HTTP path.
func BenchmarkServerPredictUncached(b *testing.B) {
	srv := benchServer(b, -1)
	h := srv.Handler()
	var n atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := n.Add(1)
			body := fmt.Sprintf(`{"platform":"virtual-xavier","pu":"GPU","demand_gbps":%d,"external_gbps":%d}`,
				1+i%130, i%130)
			req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader([]byte(body)))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	})
}

// BenchmarkServerSchedule measures the synchronous scheduling path end to
// end: routing + JSON + exhaustive co-run search on a small batch.
func BenchmarkServerSchedule(b *testing.B) {
	srv := benchServer(b, 4096)
	h := srv.Handler()
	body, err := json.Marshal(map[string]any{
		"platform":   "virtual-xavier",
		"worst_case": true,
		"workloads": []map[string]any{
			{"id": "a", "demand_gbps": 55},
			{"id": "b", "demand_gbps": 48},
			{"id": "c", "demand_gbps": 30},
			{"id": "d", "demand_gbps": 20},
			{"id": "e", "demand_gbps": 12},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest("POST", "/v1/schedule", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	})
}

// BenchmarkServerPredictBatch measures the amortization of a 100-item
// batch, the round-trip-saving path for schedulers evaluating many
// placements at once.
func BenchmarkServerPredictBatch(b *testing.B) {
	srv := benchServer(b, 4096)
	h := srv.Handler()
	batch := make([]PredictRequest, 100)
	for i := range batch {
		batch[i] = PredictRequest{
			Platform:     "virtual-xavier",
			PU:           "GPU",
			DemandGBps:   float64(1 + i),
			ExternalGBps: float64(i % 60),
		}
	}
	body, err := json.Marshal(map[string]any{"batch": batch})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	})
}
