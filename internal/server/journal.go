package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Journal is the append-only JSONL record of job state transitions that
// makes the calibration queue crash-safe. Every transition (submitted,
// started, completed, failed, cancelled) appends one full job snapshot as a
// single line and fsyncs; on startup OpenJournal replays the file with
// last-record-wins semantics, so a daemon restart loses no job records —
// queued and in-flight jobs are re-enqueued, terminal jobs stay queryable.
//
// The file only grows across transitions, so once it exceeds
// CompactThreshold records the runner compacts it: the live snapshots are
// written to a temp file, fsynced, and renamed over the journal — the same
// atomic-install discipline as the model store, so a crash mid-rotation
// leaves either the old journal or the compacted one.
type Journal struct {
	mu      sync.Mutex
	f       *os.File // guarded by mu
	path    string
	records int   // guarded by mu
	bytes   int64 // guarded by mu; current file size

	// CompactThreshold is the record count that triggers compaction
	// (default 256).
	CompactThreshold int
	// CompactBytes, when positive, also triggers compaction once the file
	// exceeds this many bytes — the backstop for journals whose individual
	// records are large (jobs with big specs) long before the record count
	// trips. Wired from -journal-compact-bytes.
	CompactBytes int64
}

// journalRecord is one line of the journal.
type journalRecord struct {
	Job Job `json:"job"`
}

// OpenJournal opens (creating if needed) the journal at path and replays
// its records: the returned jobs are the last-written snapshot of every job
// ever journaled, in first-submission order. A torn final line — the
// signature of a crash mid-append — is tolerated, dropped, and truncated
// away before the file is reused, so the next Append starts on a clean line
// instead of concatenating onto the fragment (which would read as mid-file
// corruption on the restart after that). Corruption anywhere else is an
// error, the same no-partial-decode stance as the model store.
func OpenJournal(path string) (*Journal, []Job, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("server: create journal dir: %w", err)
		}
	}
	jobs, records, validSize, needNewline, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("server: open journal: %w", err)
	}
	// Repair the tail before the first append: drop a torn fragment from
	// the file, and terminate a complete record whose newline never made it
	// to disk.
	repaired := false
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("server: stat journal: %w", err)
	} else if fi.Size() > validSize {
		if err := f.Truncate(validSize); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: truncate torn journal tail: %w", err)
		}
		repaired = true
	}
	if needNewline {
		if _, err := f.Write([]byte("\n")); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: terminate journal tail: %w", err)
		}
		repaired = true
	}
	if repaired {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: sync repaired journal: %w", err)
		}
	}
	size := validSize
	if needNewline {
		size++
	}
	return &Journal{f: f, path: path, records: records, bytes: size, CompactThreshold: 256}, jobs, nil
}

// replayJournal reads every valid record of the file at path. A missing
// file is an empty journal. It also returns the byte length of the valid
// prefix — shorter than the file when a torn, non-newline-terminated tail
// was dropped, in which case the caller must truncate to it — and whether
// the final record is valid but missing its terminating newline (the crash
// landed between the payload write and the '\n'), in which case the caller
// must append one.
func replayJournal(path string) (jobs []Job, records int, validSize int64, needNewline bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, 0, false, nil
	}
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("server: read journal: %w", err)
	}
	byID := make(map[string]*Job)
	var order []string
	validSize = int64(len(data))
	offset, lineNo := 0, 0
	for offset < len(data) {
		lineNo++
		line := data[offset:]
		next := len(data)
		terminated := false
		if nl := bytes.IndexByte(line, '\n'); nl >= 0 {
			line = line[:nl]
			next = offset + nl + 1
			terminated = true
		}
		if len(bytes.TrimSpace(line)) == 0 {
			offset = next
			continue
		}
		var rec journalRecord
		uerr := json.Unmarshal(line, &rec)
		if uerr != nil || rec.Job.ID == "" {
			// Only a non-newline-terminated final fragment is the expected
			// crash-mid-append signature; an unparsable record that *is*
			// newline-terminated — even in last position — was written
			// whole and means real corruption (bit rot, external edits),
			// which must fail loudly rather than silently lose the job's
			// last transition.
			if !terminated {
				validSize = int64(offset)
				break
			}
			if uerr != nil {
				return nil, 0, 0, false, fmt.Errorf("server: journal %s corrupt at line %d: %v", path, lineNo, uerr)
			}
			return nil, 0, 0, false, fmt.Errorf("server: journal %s line %d has no job id", path, lineNo)
		}
		if !terminated {
			needNewline = true
		}
		records++
		if _, seen := byID[rec.Job.ID]; !seen {
			order = append(order, rec.Job.ID)
		}
		j := rec.Job
		byID[rec.Job.ID] = &j
		offset = next
	}
	jobs = make([]Job, 0, len(order))
	for _, id := range order {
		jobs = append(jobs, *byID[id])
	}
	return jobs, records, validSize, needNewline, nil
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Records reports the current journal length in records.
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// SizeBytes reports the current journal file size as tracked across
// appends and compactions.
func (j *Journal) SizeBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bytes
}

// Append writes one job snapshot as a JSONL record and fsyncs. Transitions
// are rare (a handful per calibration job), so the per-append fsync is
// cheap insurance.
func (j *Journal) Append(job Job) error {
	line, err := json.Marshal(journalRecord{Job: job})
	if err != nil {
		return fmt.Errorf("server: marshal journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("server: journal closed")
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("server: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("server: sync journal: %w", err)
	}
	j.records++
	j.bytes += int64(len(line)) + 1
	return nil
}

// ShouldCompact reports whether the journal has outgrown either threshold:
// too many records, or (when CompactBytes is set) too many bytes.
func (j *Journal) ShouldCompact() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	threshold := j.CompactThreshold
	if threshold <= 0 {
		threshold = 256
	}
	if j.f == nil {
		return false
	}
	if j.CompactBytes > 0 && j.bytes > j.CompactBytes {
		return true
	}
	return j.records > threshold
}

// Compact atomically rewrites the journal as one snapshot per live job:
// temp file, fsync, rename, reopen for append.
func (j *Journal) Compact(jobs []Job) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("server: journal closed")
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".pccsd-journal-*.tmp")
	if err != nil {
		return fmt.Errorf("server: compact journal: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	w := bufio.NewWriter(tmp)
	var written int64
	for _, job := range jobs {
		line, err := json.Marshal(journalRecord{Job: job})
		if err != nil {
			cleanup()
			return fmt.Errorf("server: compact journal: %w", err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			cleanup()
			return fmt.Errorf("server: compact journal: %w", err)
		}
		written += int64(len(line)) + 1
	}
	if err := w.Flush(); err != nil {
		cleanup()
		return fmt.Errorf("server: compact journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("server: compact journal: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		cleanup()
		return fmt.Errorf("server: compact journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("server: compact journal: %w", err)
	}
	if err := os.Rename(tmpName, j.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("server: install compacted journal: %w", err)
	}
	old := j.f
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The rename already installed the compacted file, so the old
		// handle points at the unlinked pre-compaction inode: appending
		// through it would fsync records no replay will ever read. Mark
		// the journal closed so every subsequent Append fails loudly (and
		// is counted for /healthz) instead of silently losing records.
		old.Close()
		j.f = nil
		return fmt.Errorf("server: reopen compacted journal: %w", err)
	}
	old.Close()
	j.f = f
	j.records = len(jobs)
	j.bytes = written
	return nil
}

// Close stops the journal; further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
