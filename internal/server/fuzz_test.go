package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/core"
)

// fuzzServer wires a server for decoder fuzzing: real handlers, an instant
// fake construction (so valid calibrate bodies cost nothing), and a deep
// queue. The property under test: arbitrary request bytes never panic a
// handler and never produce a 5xx other than queue backpressure — malformed
// input is the client's error (4xx), not the daemon's.
func fuzzServer(f *testing.F) (*Server, *httptest.Server) {
	f.Helper()
	reg := NewRegistry()
	for _, pu := range []string{"CPU", "GPU"} {
		if err := reg.Put(testParams("virtual-xavier", pu)); err != nil {
			f.Fatal(err)
		}
	}
	srv, _ := newServer(Config{Workers: 2, JobQueueDepth: 4096, CacheSize: 64}, reg,
		fakeConstruct(func(spec CalibrateSpec) ([]core.Params, error) {
			return []core.Params{testParams(spec.Platform, "GPU")}, nil
		}), nil, nil)
	ts := httptest.NewServer(srv.Handler())
	f.Cleanup(func() {
		ts.Close()
	})
	return srv, ts
}

// fuzzPost sends raw bytes at a decoding endpoint and enforces the
// never-5xx / never-panic property.
func fuzzPost(t *testing.T, srv *Server, url string, data []byte) {
	before := srv.metrics.PanicTotal()
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("transport error: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if after := srv.metrics.PanicTotal(); after != before {
		t.Fatalf("input %q panicked a handler (pccsd_panics_total %d -> %d)", data, before, after)
	}
	if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("input %q: status %d, want 2xx/4xx", data, resp.StatusCode)
	}
}

func FuzzPredictDecode(f *testing.F) {
	srv, ts := fuzzServer(f)
	for _, seed := range []string{
		`{"platform":"virtual-xavier","pu":"GPU","demand_gbps":88,"external_gbps":40}`,
		`{"batch":[{"platform":"virtual-xavier","pu":"CPU","demand_gbps":5,"external_gbps":1}]}`,
		`{"platform":"virtual-xavier","pu":"GPU","workload":"cfd","use_phases":true,"external_gbps":40}`,
		`{"phases":[{"weight":0.5,"demand_gbps":1e308}]}`,
		`{"platform":123}`,
		`{"unknown_field":true}`,
		`{"platform":"virtual-xavier","pu":"GPU","demand_gbps":"NaN"}`,
		`[]`,
		`{`,
		"",
		`nullnull`,
		`{"demand_gbps":-1e309}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzPost(t, srv, ts.URL+"/v1/predict", data)
	})
}

func FuzzCalibrateDecode(f *testing.F) {
	srv, ts := fuzzServer(f)
	for _, seed := range []string{
		`{"platform":"virtual-xavier"}`,
		`{"platform":"virtual-xavier","pu":"GPU","mode":"strict","quick":true}`,
		`{"platform":"virtual-snapdragon","warmup_cycles":1,"measure_cycles":1}`,
		`{"platform":"no-such-soc"}`,
		`{"platform":"virtual-xavier","warmup_cycles":-9223372036854775808}`,
		`{"platform":"virtual-xavier","measure_cycles":1e30}`,
		`{"pu":"GPU"}`,
		`{"mode":["robust"]}`,
		`{`,
		"",
		`true`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzPost(t, srv, ts.URL+"/v1/calibrate", data)
	})
}
