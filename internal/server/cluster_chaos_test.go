package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/cluster"
	"github.com/processorcentricmodel/pccs/internal/faultinject"
	"github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// chaosTinyRC keeps simulation points fast enough that a three-node sweep
// with injected deaths finishes in test time; determinism does not depend
// on the window length.
var chaosTinyRC = soc.RunConfig{WarmupCycles: 20_000, MeasureCycles: 60_000}

// partitionGate is a RoundTripper that refuses connections to blocked
// hosts — the network's view of a partition or a dead node. One gate per
// node, so partitions can be asymmetric and a node can be isolated in both
// directions.
type partitionGate struct {
	mu      sync.Mutex
	blocked map[string]bool // guarded by mu; "host:port"
}

func newPartitionGate() *partitionGate {
	return &partitionGate{blocked: make(map[string]bool)}
}

func (g *partitionGate) set(host string, blocked bool) {
	g.mu.Lock()
	g.blocked[host] = blocked
	g.mu.Unlock()
}

func (g *partitionGate) RoundTrip(req *http.Request) (*http.Response, error) {
	g.mu.Lock()
	blocked := g.blocked[req.URL.Host]
	g.mu.Unlock()
	if blocked {
		return nil, fmt.Errorf("chaos: partitioned from %s", req.URL.Host)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// swapHandler lets the httptest servers start before the pccsd instances
// exist: the topology (peer URLs) must be known to build the cluster
// configs, and the servers need the topology — the swap breaks the cycle.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) install(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "node starting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// chaosCluster is three in-process pccsd nodes joined into one cluster,
// each with its own partition gate on all peer traffic.
type chaosCluster struct {
	t     *testing.T
	ids   []string
	urls  map[string]string
	hosts map[string]string
	srvs  map[string]*Server
	ts    map[string]*httptest.Server
	gates map[string]*partitionGate
}

// startChaosCluster brings up three nodes. faults, when non-nil, arms every
// node's server-side chaos injector (the cluster/lease site kills leases as
// a dying node would).
func startChaosCluster(t *testing.T, faults *faultinject.Injector) *chaosCluster {
	t.Helper()
	c := &chaosCluster{
		t:     t,
		ids:   []string{"n1", "n2", "n3"},
		urls:  make(map[string]string),
		hosts: make(map[string]string),
		srvs:  make(map[string]*Server),
		ts:    make(map[string]*httptest.Server),
		gates: make(map[string]*partitionGate),
	}
	swaps := make(map[string]*swapHandler)
	for _, id := range c.ids {
		swaps[id] = &swapHandler{}
		ts := httptest.NewServer(swaps[id])
		t.Cleanup(ts.Close)
		c.ts[id] = ts
		c.urls[id] = ts.URL
		u, err := url.Parse(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		c.hosts[id] = u.Host
	}
	peers := make(map[string]string, len(c.ids))
	for id, u := range c.urls {
		peers[id] = u
	}
	for _, id := range c.ids {
		gate := newPartitionGate()
		c.gates[id] = gate
		peerClient := &http.Client{Transport: gate, Timeout: 20 * time.Second}
		srv, err := newServer(Config{
			Workers: 2,
			Faults:  faults,
			Cluster: &cluster.Config{
				ID:        id,
				Peers:     peers,
				Replicas:  2,
				Transport: cluster.NewHTTPTransport(peerClient),
			},
			PeerHTTP: peerClient,
		}, NewRegistry(), nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.srvs[id] = srv
		swaps[id].install(srv.Handler())
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = srv.jobs.Close(ctx)
		})
	}
	return c
}

// isolate cuts every network path to and from id — the full partition.
func (c *chaosCluster) isolate(id string) {
	for _, other := range c.ids {
		if other == id {
			continue
		}
		c.gates[other].set(c.hosts[id], true)
		c.gates[id].set(c.hosts[other], true)
	}
}

// heal restores every path to and from id.
func (c *chaosCluster) heal(id string) {
	for _, other := range c.ids {
		if other == id {
			continue
		}
		c.gates[other].set(c.hosts[id], false)
		c.gates[id].set(c.hosts[other], false)
	}
}

// kill isolates id and severs its live connections; the httptest server
// stays allocated (Cleanup closes it) but nothing can reach it.
func (c *chaosCluster) kill(id string) {
	c.isolate(id)
	c.ts[id].CloseClientConnections()
}

// predict POSTs one single prediction at node id and returns status plus
// the Degraded header.
func (c *chaosCluster) predict(id string, body string) (int, string, error) {
	resp, err := http.Post(c.urls[id]+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get(DegradedHeader), nil
}

// probe runs one prober round on node id with a short budget.
func (c *chaosCluster) probe(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c.srvs[id].Cluster().Prober().ProbeOnce(ctx)
}

// TestClusterChaosSweepBitIdentical is the tentpole acceptance proof: a
// three-node distributed sweep — with one node killed mid-sweep, a second
// partitioned mid-sweep, and seeded server-side lease faults — reassembles
// to the exact bytes of the fault-free single-node sweep, while /v1/predict
// for a replicated model keeps answering 200 on every reachable node at
// every soak point (Degraded: partitioned allowed, and required once the
// partitioned replica has noticed its primary is gone).
func TestClusterChaosSweepBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second distributed sweep")
	}
	b, err := platform.Get("virtual-xavier")
	if err != nil {
		t.Fatal(err)
	}
	target := 0
	pressure, err := calib.PressurePUFor(b, target)
	if err != nil {
		t.Fatal(err)
	}
	cfg := calib.DefaultSweep(b, target, pressure)
	cfg.Run = chaosTinyRC
	want, err := calib.Sweep(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	// Seeded server-side chaos: ~15% of leases die inside the serving node,
	// exactly as a node crashing mid-lease would look to the coordinator.
	injector, err := faultinject.New(42, faultinject.Rule{
		Site: cluster.SiteLease, Kind: faultinject.Error, Rate: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := startChaosCluster(t, injector)

	// Cast the chaos by shard ownership so the partitioned node is a
	// replica of the predict model (read-degraded serving is provable) and
	// the killed node is the one whose loss predict can fully route around.
	model := testParams("virtual-xavier", "GPU")
	key := calib.Key(model.Platform, model.PU)
	owners := c.srvs["n1"].Cluster().Owners(key)
	if len(owners) != 2 {
		t.Fatalf("owners(%s) = %v, want 2", key, owners)
	}
	coordID, partID := owners[0], owners[1]
	var killID string
	for _, id := range c.ids {
		if id != coordID && id != partID {
			killID = id
		}
	}
	const predictBody = `{"platform":"virtual-xavier","pu":"GPU","demand_gbps":88,"external_gbps":40}`

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if _, err := c.srvs[coordID].Cluster().Publish(ctx, model); err != nil {
		t.Fatal(err)
	}
	// Every node must answer the replicated model before any chaos: the
	// owners serve locally, the future kill target forwards one hop.
	for _, id := range c.ids {
		code, _, err := c.predict(id, predictBody)
		if err != nil || code != http.StatusOK {
			t.Fatalf("pre-chaos predict on %s: code %d err %v", id, code, err)
		}
	}

	// Chaos at deterministic sweep positions, keyed on dispatch count.
	var dispatches atomic.Int64
	partitioned := make(chan struct{})
	co := &cluster.Coordinator{
		Node:        c.srvs[coordID].Cluster(),
		Seed:        42,
		BackoffBase: 10 * time.Millisecond,
		MaxAttempts: 12,
		OnDispatch: func(leaseID, node string, attempt int) {
			switch dispatches.Add(1) {
			case 3:
				c.kill(killID)
			case 6:
				c.isolate(partID)
				close(partitioned)
			}
		},
	}

	sweepDone := make(chan error, 1)
	var got *calib.Matrix
	go func() {
		m, err := co.Sweep(ctx, b, target, pressure, chaosTinyRC)
		got = m
		sweepDone <- err
	}()

	// Soak while the sweep runs: every reachable node must answer 200 at
	// every poll point. Once the partitioned replica's prober has crossed
	// its hysteresis threshold, its answers must carry the partition marker.
	select {
	case <-partitioned:
	case err := <-sweepDone:
		t.Fatalf("sweep finished before the partition fired (err %v); lower PointsPerLease", err)
	}
	for i := 0; i < 3; i++ { // DownAfter(3) consecutive failures
		c.probe(partID)
		// The coordinator's prober must also notice the dead and partitioned
		// peers, or it keeps burning lease attempts on them — in production
		// the Start() loop does this every couple of seconds.
		c.probe(coordID)
	}
	sawPartitionedHeader := false
	soak := func() {
		for _, id := range []string{coordID, partID} {
			code, degraded, err := c.predict(id, predictBody)
			if err != nil {
				t.Errorf("soak predict on %s: %v", id, err)
				continue
			}
			if code != http.StatusOK {
				t.Errorf("soak predict on %s: code %d", id, code)
			}
			if id == partID && degraded == "partitioned" {
				sawPartitionedHeader = true
			}
		}
	}
	soak()
	for done := false; !done; {
		select {
		case err := <-sweepDone:
			if err != nil {
				t.Fatalf("distributed sweep under chaos: %v", err)
			}
			done = true
		case <-time.After(100 * time.Millisecond):
			c.probe(coordID)
			soak()
		}
	}
	soak()
	if !sawPartitionedHeader {
		t.Error("partitioned replica never served with Degraded: partitioned")
	}

	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("distributed sweep under chaos is not byte-identical to the local sweep\nwant %d bytes\ngot  %d bytes", len(wantJSON), len(gotJSON))
	}
	stats := c.srvs[coordID].Cluster().Stats()
	if stats.LeasesReassigned == 0 {
		t.Error("chaos run reassigned no leases — the kill/partition never bit")
	}

	// Heal the partition: after the prober's recovery hysteresis the
	// replica serves clean again.
	c.heal(partID)
	for i := 0; i < 2; i++ { // UpAfter(2) consecutive successes
		c.probe(partID)
	}
	code, degraded, err := c.predict(partID, predictBody)
	if err != nil || code != http.StatusOK || degraded != "" {
		t.Errorf("healed predict on %s: code %d degraded %q err %v", partID, code, degraded, err)
	}
}

// TestClusterVersionRaceConverges is the reload-convergence proof: two
// different SHA-256 versions of the same model key pushed concurrently to
// every node, in opposite node orders, must converge on the newer envelope
// everywhere — no node may end up serving the older version (last-writer-
// loses flapping), round after round.
func TestClusterVersionRaceConverges(t *testing.T) {
	c := startChaosCluster(t, nil)

	push := func(id string, env cluster.ReplicaEnvelope) error {
		body, err := json.Marshal(env)
		if err != nil {
			return err
		}
		resp, err := http.Post(c.urls[id]+cluster.PathModels, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("replicate to %s: status %d", id, resp.StatusCode)
		}
		return nil
	}

	const rounds = 20
	for round := 0; round < rounds; round++ {
		pu := fmt.Sprintf("GPU%d", round)
		older := testParams("virtual-xavier", pu)
		older.NormalBW = 10
		newer := testParams("virtual-xavier", pu)
		newer.NormalBW = 30
		key := calib.Key("virtual-xavier", pu)
		oldSHA, err := cluster.ParamsSHA(older)
		if err != nil {
			t.Fatal(err)
		}
		newSHA, err := cluster.ParamsSHA(newer)
		if err != nil {
			t.Fatal(err)
		}
		envOld := cluster.ReplicaEnvelope{Key: key, Params: older,
			Version: cluster.Version{Seq: 1, SHA: oldSHA}}
		envNew := cluster.ReplicaEnvelope{Key: key, Params: newer,
			Version: cluster.Version{Seq: 2, SHA: newSHA}}

		var wg sync.WaitGroup
		wg.Add(2)
		errs := make(chan error, 2*len(c.ids))
		go func() {
			defer wg.Done()
			for _, id := range c.ids { // forward order, newer first
				if err := push(id, envNew); err != nil {
					errs <- err
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := len(c.ids) - 1; i >= 0; i-- { // reverse order, older racing
				if err := push(c.ids[i], envOld); err != nil {
					errs <- err
				}
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		for _, id := range c.ids {
			v := c.srvs[id].Cluster().Store().VersionOf(key)
			if v != envNew.Version {
				t.Fatalf("round %d: node %s settled on %s, want %s", round, id, v, envNew.Version)
			}
			got, err := c.srvs[id].Registry().Get("virtual-xavier", pu)
			if err != nil {
				t.Fatalf("round %d: node %s lost the model: %v", round, id, err)
			}
			if got.NormalBW != newer.NormalBW {
				t.Fatalf("round %d: node %s serves the older envelope (NormalBW %g)", round, id, got.NormalBW)
			}
		}
	}
}

// TestClusterHealthzAndMetrics: satellite proof that the observability
// surfaces carry the cluster state — /healthz gains the cluster block and
// /metrics the peer-liveness and lease-robustness series.
func TestClusterHealthzAndMetrics(t *testing.T) {
	c := startChaosCluster(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := c.srvs["n1"].Cluster().Publish(ctx, testParams("virtual-xavier", "GPU")); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.urls["n1"] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Cluster struct {
			Node           string            `json:"node"`
			Replicas       int               `json:"replicas"`
			Peers          []json.RawMessage `json:"peers"`
			OwnedKeys      []string          `json:"owned_keys"`
			ReplicationLag int               `json:"replication_lag"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Cluster.Node != "n1" {
		t.Errorf("healthz cluster.node = %q, want n1", health.Cluster.Node)
	}
	if health.Cluster.Replicas != 2 {
		t.Errorf("healthz cluster.replicas = %d, want 2", health.Cluster.Replicas)
	}
	if len(health.Cluster.Peers) != 2 {
		t.Errorf("healthz cluster.peers has %d entries, want 2", len(health.Cluster.Peers))
	}

	resp, err = http.Get(c.urls["n1"] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		`pccsd_peer_up{peer="n2"}`,
		`pccsd_peer_up{peer="n3"}`,
		"pccsd_lease_reassigned_total",
		"pccsd_hedged_requests_total",
		"pccsd_replication_lag",
	} {
		if !strings.Contains(string(scrape), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}
