package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestLimiterFastPath: under the limit, Acquire admits immediately and
// Release returns the slot.
func TestLimiterFastPath(t *testing.T) {
	l := NewLimiter(LimiterConfig{Max: 2})
	for i := 0; i < 2; i++ {
		if err := l.Acquire(context.Background()); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if got := l.Stats().InFlight; got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	l.Release(time.Millisecond, true)
	l.Release(time.Millisecond, true)
	if got := l.Stats().InFlight; got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
}

// TestLimiterAIMD: over-target completions shrink the window
// multiplicatively (rate-limited to once per target interval), on-target
// completions grow it additively back toward Max.
func TestLimiterAIMD(t *testing.T) {
	l := NewLimiter(LimiterConfig{Target: 100 * time.Millisecond, Max: 100, Min: 2})
	clk := time.Unix(0, 0)
	l.now = func() time.Time { return clk }

	// Two slow completions inside one target interval: only one decrease.
	_ = l.Acquire(context.Background())
	_ = l.Acquire(context.Background())
	clk = clk.Add(time.Second)
	l.Release(time.Second, true)
	l.Release(time.Second, true)
	if got := l.Stats().Limit; got != 90 {
		t.Fatalf("limit after one rate-limited decrease window = %v, want 90", got)
	}

	// A later slow completion (next interval) decreases again.
	_ = l.Acquire(context.Background())
	clk = clk.Add(time.Second)
	l.Release(time.Second, true)
	if got := l.Stats().Limit; got != 81 {
		t.Fatalf("limit = %v, want 81", got)
	}

	// Failures shrink too, even when fast.
	_ = l.Acquire(context.Background())
	clk = clk.Add(time.Second)
	l.Release(time.Millisecond, false)
	if got := l.Stats().Limit; got >= 81 {
		t.Fatalf("limit = %v, want < 81 after failure", got)
	}

	// Fast successes recover additively (~1/limit each).
	before := l.Stats().Limit
	for i := 0; i < 200; i++ {
		_ = l.Acquire(context.Background())
		l.Release(time.Millisecond, true)
	}
	after := l.Stats().Limit
	if after <= before {
		t.Fatalf("limit did not recover: %v -> %v", before, after)
	}
	if after > 100 {
		t.Fatalf("limit %v exceeded Max", after)
	}
}

// TestLimiterDecreaseFloor: the multiplicative decrease never goes under Min.
func TestLimiterDecreaseFloor(t *testing.T) {
	l := NewLimiter(LimiterConfig{Target: time.Millisecond, Max: 4, Min: 2})
	clk := time.Unix(0, 0)
	l.now = func() time.Time { return clk }
	for i := 0; i < 50; i++ {
		_ = l.Acquire(context.Background())
		clk = clk.Add(time.Second)
		l.Release(time.Second, false)
	}
	if got := l.Stats().Limit; got != 2 {
		t.Fatalf("limit = %v, want Min 2", got)
	}
}

// TestLimiterLIFO: freed capacity goes to the newest waiter; when the wait
// queue is full the oldest waiter is the one shed.
func TestLimiterLIFO(t *testing.T) {
	l := NewLimiter(LimiterConfig{Max: 1, Min: 1, MaxWaiters: 2})
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		id  int
		err error
	}
	results := make(chan outcome, 3)
	acquire := func(id int) {
		results <- outcome{id, l.Acquire(context.Background())}
	}
	go acquire(1)
	waitForWaiters(t, l, 1)
	go acquire(2)
	waitForWaiters(t, l, 2)
	// Queue full: the third arrival sheds waiter 1 (the oldest).
	go acquire(3)

	first := <-results
	if first.id != 1 || !errors.Is(first.err, ErrShed) {
		t.Fatalf("first outcome = %+v, want waiter 1 shed", first)
	}
	if got := l.Stats().Shed; got != 1 {
		t.Fatalf("sheds = %d, want 1", got)
	}

	// Release the slot: the newest waiter (3) must get it before 2.
	l.Release(time.Millisecond, true)
	second := <-results
	if second.id != 3 || second.err != nil {
		t.Fatalf("second outcome = %+v, want waiter 3 granted", second)
	}
	l.Release(time.Millisecond, true)
	third := <-results
	if third.id != 2 || third.err != nil {
		t.Fatalf("third outcome = %+v, want waiter 2 granted", third)
	}
	l.Release(time.Millisecond, true)
}

// TestLimiterAbandonOnContext: a waiter whose context ends leaves the queue
// and reports the context error.
func TestLimiterAbandonOnContext(t *testing.T) {
	l := NewLimiter(LimiterConfig{Max: 1, Min: 1, MaxWaiters: 4})
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.Acquire(ctx) }()
	waitForWaiters(t, l, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := l.Stats().Waiting; got != 0 {
		t.Fatalf("waiting = %d, want 0", got)
	}
	// The held slot must still be the only one out.
	l.Release(time.Millisecond, true)
	if got := l.Stats().InFlight; got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
}

func waitForWaiters(t *testing.T, l *Limiter, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Waiting < n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLimiterRetryAfterClamped: the hint stays within [1s, 60s].
func TestLimiterRetryAfterClamped(t *testing.T) {
	l := NewLimiter(LimiterConfig{Max: 4})
	if got := l.RetryAfter(); got < time.Second || got > time.Minute {
		t.Fatalf("RetryAfter = %v, want within [1s, 60s]", got)
	}
	if got := retrySeconds(1500 * time.Millisecond); got != "2" {
		t.Fatalf("retrySeconds(1.5s) = %q, want 2 (rounded up)", got)
	}
	if got := retrySeconds(0); got != "1" {
		t.Fatalf("retrySeconds(0) = %q, want 1", got)
	}
}

// TestEndpointLimits: capped endpoints enforce their in-flight bound,
// uncapped endpoints always admit.
func TestEndpointLimits(t *testing.T) {
	e := newEndpointLimits(map[string]int{"/v1/calibrate": 1})
	if !e.acquire("/v1/calibrate") {
		t.Fatal("first acquire refused")
	}
	if e.acquire("/v1/calibrate") {
		t.Fatal("second acquire admitted past the cap")
	}
	e.release("/v1/calibrate")
	if !e.acquire("/v1/calibrate") {
		t.Fatal("acquire after release refused")
	}
	for i := 0; i < 100; i++ {
		if !e.acquire("/v1/predict") {
			t.Fatal("uncapped endpoint refused")
		}
	}
}

// TestRateLimiter: burst admits, empty bucket refuses with a wait hint,
// refill restores tokens, and per-key isolation holds.
func TestRateLimiter(t *testing.T) {
	rl := NewRateLimiter(10, 2)
	clk := time.Unix(0, 0)
	rl.now = func() time.Time { return clk }

	for i := 0; i < 2; i++ {
		if ok, _ := rl.Allow("a"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, wait := rl.Allow("a")
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if wait < time.Second {
		t.Fatalf("wait hint = %v, want clamped >= 1s", wait)
	}
	if ok, _ := rl.Allow("b"); !ok {
		t.Fatal("other client starved by a's bucket")
	}
	clk = clk.Add(time.Second) // 10 tokens accrue, capped at burst 2
	for i := 0; i < 2; i++ {
		if ok, _ := rl.Allow("a"); !ok {
			t.Fatalf("post-refill request %d refused", i)
		}
	}
	if got := rl.Limited(); got != 1 {
		t.Fatalf("limited = %d, want 1", got)
	}
}

// TestClientKey prefers the API key over the remote address.
func TestClientKey(t *testing.T) {
	r := httptest.NewRequest("POST", "/v1/predict", nil)
	r.RemoteAddr = "10.1.2.3:4567"
	if got := clientKey(r); got != "addr:10.1.2.3" {
		t.Fatalf("clientKey = %q", got)
	}
	r.Header.Set("X-API-Key", "tenant-7")
	if got := clientKey(r); got != "key:tenant-7" {
		t.Fatalf("clientKey = %q", got)
	}
}

// TestLimiterConcurrentStorm exercises the acquire/grant/abandon paths under
// the race detector: many goroutines with tiny deadlines against a tiny
// window, then verify the accounting balances.
func TestLimiterConcurrentStorm(t *testing.T) {
	l := NewLimiter(LimiterConfig{Max: 4, Min: 2, MaxWaiters: 8, Target: 10 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*time.Millisecond)
			defer cancel()
			if err := l.Acquire(ctx); err == nil {
				time.Sleep(time.Millisecond)
				l.Release(time.Millisecond, true)
			}
		}(i)
	}
	wg.Wait()
	st := l.Stats()
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("leaked slots: %+v", st)
	}
}
