package server

import (
	"container/list"
	"math"
	"sync"
	"time"

	"github.com/processorcentricmodel/pccs/internal/clock"
)

// Tier is the serving tier under load: nominal, brownout (predictions come
// from the stale cache when possible instead of being computed), and
// overload (calibration submissions are refused outright on top of the
// brownout behaviour). /healthz reports the tier; crossing out of TierOK
// flips status to "degraded".
type Tier int

const (
	TierOK Tier = iota
	TierBrownout
	TierOverload
)

func (t Tier) String() string {
	switch t {
	case TierOK:
		return "ok"
	case TierBrownout:
		return "brownout"
	case TierOverload:
		return "overload"
	default:
		return "unknown"
	}
}

// DegradeConfig tunes the pressure thresholds, in shed events per second.
type DegradeConfig struct {
	// Tau is the exponential-decay time constant of the shed-rate signal
	// (default 1s). The signal is capped at 2×OverloadAt, so after load
	// vanishes the tier is back to nominal within Tau·ln(2·OverloadAt /
	// ExitAt) — about 4.6s at the defaults — no matter how hard the spike
	// shed. That bound is the /healthz "recovers within seconds" promise.
	Tau time.Duration
	// BrownoutAt / OverloadAt enter the tiers (defaults 5/s and 50/s);
	// ExitAt (default 1/s) is the hysteresis floor back to TierOK.
	BrownoutAt, OverloadAt, ExitAt float64
	// Clock supplies time for the decay (default the real clock; the DST
	// harness injects a virtual one).
	Clock clock.Clock
}

func (c DegradeConfig) withDefaults() DegradeConfig {
	if c.Tau <= 0 {
		c.Tau = time.Second
	}
	if c.BrownoutAt <= 0 {
		c.BrownoutAt = 5
	}
	if c.OverloadAt <= 0 {
		c.OverloadAt = 50
	}
	if c.ExitAt <= 0 {
		c.ExitAt = 1
	}
	if c.Clock == nil {
		c.Clock = clock.System()
	}
	return c
}

// Degrader derives the serving tier from measured pressure: an
// exponentially decaying rate of shed events. Shedding is the one signal
// that unambiguously means "demand exceeded capacity" — latency alone can
// be a slow backend, and queue depth alone can be a burst — and because the
// signal decays on its own, the tier recovers within seconds of the
// overload ending without any background goroutine.
type Degrader struct {
	cfg DegradeConfig
	now func() time.Time // injectable clock for tests

	mu   sync.Mutex
	rate float64   // guarded by mu; decayed shed events/sec
	last time.Time // guarded by mu; last decay instant
	tier Tier      // guarded by mu; retained for hysteresis
}

// NewDegrader builds a TierOK degrader.
func NewDegrader(cfg DegradeConfig) *Degrader {
	cfg = cfg.withDefaults()
	return &Degrader{cfg: cfg, now: cfg.Clock.Now}
}

// RecordShed feeds one shed event into the pressure signal. Each event adds
// 1/Tau, so a steady stream of R sheds/second converges the signal to R; the
// cap at 2×OverloadAt keeps the recovery time bounded regardless of how far
// past saturation the spike went.
func (d *Degrader) RecordShed() {
	d.mu.Lock()
	d.decayLocked(d.now())
	d.rate += 1 / d.cfg.Tau.Seconds()
	if max := 2 * d.cfg.OverloadAt; d.rate > max {
		d.rate = max
	}
	d.mu.Unlock()
}

//pccs:allow-guardedby every caller holds d.mu
func (d *Degrader) decayLocked(now time.Time) {
	if d.last.IsZero() {
		d.last = now
		return
	}
	if dt := now.Sub(d.last).Seconds(); dt > 0 {
		d.rate *= math.Exp(-dt / d.cfg.Tau.Seconds())
		d.last = now
	}
}

// ShedRate reports the current decayed shed rate in events/second.
func (d *Degrader) ShedRate() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.decayLocked(d.now())
	return d.rate
}

// Tier evaluates the serving tier with hysteresis: tiers are entered at
// their thresholds and only fully exited once the rate falls to ExitAt, so
// the server does not flap at a boundary.
func (d *Degrader) Tier() Tier {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.decayLocked(d.now())
	switch {
	case d.rate >= d.cfg.OverloadAt:
		d.tier = TierOverload
	case d.rate >= d.cfg.BrownoutAt:
		if d.tier != TierOverload {
			d.tier = TierBrownout
		}
	case d.rate <= d.cfg.ExitAt:
		d.tier = TierOK
	default:
		// Hysteresis band: pressure is falling but not gone — step down
		// one tier at most, never jump straight back to nominal.
		if d.tier == TierOverload {
			d.tier = TierBrownout
		}
	}
	return d.tier
}

// staleKey identifies a prediction independent of the model parameters that
// produced it — deliberately, so a brownout can serve the last-known answer
// even after the model was hot-reloaded or recalibrated. That is what makes
// the entry "stale" rather than merely "cached".
type staleKey struct {
	platform, pu string
	x, y         float64
	phases       string
}

// StaleCache is the brownout fallback: an LRU of the most recent successful
// PredictResult per (platform, pu, demand, external) query shape. Under
// pressure /v1/predict answers from here — microseconds, no model math, and
// marked with a `Degraded: stale-cache` header — instead of computing.
type StaleCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List                 // guarded by mu; front = most recent
	items    map[staleKey]*list.Element // guarded by mu
	served   uint64                     // guarded by mu; stale answers served
}

type staleEntry struct {
	key staleKey
	res PredictResult
}

// NewStaleCache builds an LRU of up to capacity last-known answers;
// capacity <= 0 disables it.
func NewStaleCache(capacity int) *StaleCache {
	return &StaleCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[staleKey]*list.Element),
	}
}

// Put records a successfully computed result as the last-known answer.
func (c *StaleCache) Put(k staleKey, res PredictResult) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*staleEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&staleEntry{key: k, res: res})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*staleEntry).key)
	}
}

// Get returns the last-known answer for the query shape, counting the
// stale serve.
func (c *StaleCache) Get(k staleKey) (PredictResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return PredictResult{}, false
	}
	c.ll.MoveToFront(el)
	c.served++
	return el.Value.(*staleEntry).res, true
}

// Served reports how many stale answers have been handed out.
func (c *StaleCache) Served() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.served
}
