package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/explore"
	"github.com/processorcentricmodel/pccs/internal/gables"
	"github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/workload"
)

// maxBodyBytes bounds request bodies; the largest legitimate payload is a
// batch of a few thousand predictions.
const maxBodyBytes = 1 << 20

// errorResponse is the JSON error envelope of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

// PhaseSpec is one phase of a multi-phase prediction request (§3.2).
type PhaseSpec struct {
	Name       string  `json:"name,omitempty"`
	Weight     float64 `json:"weight"`
	DemandGBps float64 `json:"demand_gbps"`
}

// PredictRequest asks for the achieved relative speed of one kernel on one
// PU under external bandwidth demand. The kernel's demand comes from
// exactly one of: demand_gbps, phases, or workload (a shipped benchmark
// surrogate; set use_phases for its per-phase profile).
type PredictRequest struct {
	Platform     string      `json:"platform"`
	PU           string      `json:"pu"`
	DemandGBps   float64     `json:"demand_gbps,omitempty"`
	Phases       []PhaseSpec `json:"phases,omitempty"`
	Workload     string      `json:"workload,omitempty"`
	UsePhases    bool        `json:"use_phases,omitempty"`
	ExternalGBps float64     `json:"external_gbps"`
	// Gables requests the proportional-share baseline alongside PCCS.
	Gables bool `json:"gables,omitempty"`
}

// PredictResult is one prediction outcome. In batch responses a failed item
// carries its error in place of the numbers.
type PredictResult struct {
	Platform         string  `json:"platform"`
	PU               string  `json:"pu"`
	DemandGBps       float64 `json:"demand_gbps,omitempty"`
	ExternalGBps     float64 `json:"external_gbps"`
	Region           string  `json:"region,omitempty"`
	RelativeSpeedPct float64 `json:"relative_speed_pct,omitempty"`
	Slowdown         float64 `json:"slowdown,omitempty"`
	GablesSpeedPct   float64 `json:"gables_speed_pct,omitempty"`
	Cached           bool    `json:"cached"`
	// Stale marks a brownout answer served from the last-known-good cache
	// instead of being computed (the response also carries a
	// `Degraded: stale-cache` header).
	Stale bool   `json:"stale,omitempty"`
	Error string `json:"error,omitempty"`
}

// predictBody is the wire shape of POST /v1/predict: either a single
// request or {"batch": [...]} for many predictions in one round trip.
type predictBody struct {
	PredictRequest
	Batch []PredictRequest `json:"batch,omitempty"`
}

// predictBatchResponse answers a batch request.
type predictBatchResponse struct {
	Results []PredictResult `json:"results"`
}

// DegradedHeader marks a response served in a degraded mode; its value names
// the mode ("stale-cache").
const DegradedHeader = "Degraded"

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var body predictBody
	if !decodeBody(w, r, &body) {
		return
	}
	brownout := s.degrade.Tier() != TierOK
	if len(body.Batch) > 0 {
		anyStale := false
		resp := predictBatchResponse{Results: make([]PredictResult, len(body.Batch))}
		for i, req := range body.Batch {
			// The client deadline bounds the whole batch: once the budget
			// is spent, remaining items are abandoned, not computed for a
			// response nobody will read.
			if err := r.Context().Err(); err != nil {
				resp.Results[i] = PredictResult{Platform: req.Platform, PU: req.PU,
					ExternalGBps: req.ExternalGBps, Error: "abandoned: " + err.Error()}
				continue
			}
			res, stale, err := s.servePredict(req, brownout)
			if err != nil {
				res = PredictResult{Platform: req.Platform, PU: req.PU,
					ExternalGBps: req.ExternalGBps, Error: err.Error()}
			}
			anyStale = anyStale || stale
			resp.Results[i] = res
		}
		if anyStale {
			w.Header().Set(DegradedHeader, "stale-cache")
			s.metrics.CountDegraded("/v1/predict")
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	res, stale, err := s.servePredict(body.PredictRequest, brownout)
	if err != nil {
		// A registry miss on a clustered node may just mean the model lives
		// on another shard: relay to a live owner before reporting 404.
		if _, miss := err.(*notFoundError); miss && s.forwardPredict(w, r, body.PredictRequest) {
			return
		}
		writeError(w, statusForPredictErr(err), "%v", err)
		return
	}
	switch {
	case stale:
		w.Header().Set(DegradedHeader, "stale-cache")
		s.metrics.CountDegraded("/v1/predict")
	case s.cluster != nil && s.cluster.DegradedFor(calib.Key(body.Platform, body.PU)):
		// Served from a replica while the shard's primary is unreachable:
		// correct but possibly stale relative to an in-flight reload there.
		w.Header().Set(DegradedHeader, "partitioned")
		s.metrics.CountDegraded("/v1/predict")
	}
	writeJSON(w, http.StatusOK, res)
}

// staleKeyFor derives the last-known-answer key from the request shape
// alone — deliberately not from the resolved model parameters, so a brownout
// can keep answering across model reloads.
func staleKeyFor(req PredictRequest) staleKey {
	shape := ""
	for _, ph := range req.Phases {
		shape += fmt.Sprintf("%s|%g|%g;", ph.Name, ph.Weight, ph.DemandGBps)
	}
	if req.Workload != "" {
		shape += "wl:" + req.Workload
		if req.UsePhases {
			shape += ":phases"
		}
	}
	if req.Gables {
		shape += "+gables"
	}
	return staleKey{platform: req.Platform, pu: req.PU, x: req.DemandGBps, y: req.ExternalGBps, phases: shape}
}

// servePredict runs one prediction, preferring the stale cache under
// brownout and recording fresh successes into it; stale reports whether the
// answer came from the last-known-good cache.
func (s *Server) servePredict(req PredictRequest, brownout bool) (res PredictResult, stale bool, err error) {
	key := staleKeyFor(req)
	if brownout {
		if res, ok := s.stale.Get(key); ok {
			res.Stale = true
			res.Cached = false
			return res, true, nil
		}
		// No last-known answer: fall through and compute — degradation
		// trades freshness for throughput, never correctness for coverage.
	}
	res, err = s.predictOne(req)
	if err != nil {
		return PredictResult{}, false, err
	}
	s.stale.Put(key, res)
	return res, false, nil
}

// statusForPredictErr maps missing-model errors to 404 and everything else
// (bad demand, unknown workload, ...) to 400.
func statusForPredictErr(err error) int {
	if _, ok := err.(*notFoundError); ok {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

type notFoundError struct{ err error }

func (e *notFoundError) Error() string { return e.err.Error() }
func (e *notFoundError) Unwrap() error { return e.err }

// predictOne resolves the kernel demand, consults the LRU cache, and runs
// the three-region model (plus the Gables baseline on request).
func (s *Server) predictOne(req PredictRequest) (PredictResult, error) {
	params, err := s.reg.Get(req.Platform, req.PU)
	if err != nil {
		return PredictResult{}, &notFoundError{err}
	}
	if req.ExternalGBps < 0 {
		return PredictResult{}, fmt.Errorf("external_gbps must be >= 0, got %g", req.ExternalGBps)
	}

	phases := make([]core.Phase, 0, len(req.Phases))
	for _, ph := range req.Phases {
		phases = append(phases, core.Phase{Name: ph.Name, Weight: ph.Weight, DemandGBps: ph.DemandGBps})
	}
	x := req.DemandGBps
	if req.Workload != "" {
		if x > 0 || len(phases) > 0 {
			return PredictResult{}, fmt.Errorf("give either workload or demand_gbps/phases, not both")
		}
		wl, err := workload.Get(req.Workload)
		if err != nil {
			return PredictResult{}, err
		}
		if req.UsePhases {
			phases, err = wl.ModelPhases(req.Platform, req.PU)
		} else {
			x, err = wl.DemandOn(req.Platform, req.PU)
		}
		if err != nil {
			return PredictResult{}, err
		}
	}

	res := PredictResult{
		Platform:     req.Platform,
		PU:           req.PU,
		ExternalGBps: req.ExternalGBps,
	}
	switch {
	case len(phases) > 0:
		key := cacheKey{params: params, y: req.ExternalGBps, phases: phasesKey(phases)}
		rs, hit := s.cache.Get(key)
		if !hit {
			rs, err = params.PredictPhases(phases, req.ExternalGBps)
			if err != nil {
				return PredictResult{}, err
			}
			s.cache.Put(key, rs)
		}
		res.DemandGBps = core.AverageDemand(phases)
		res.RelativeSpeedPct = rs
		res.Cached = hit
	case x > 0:
		rs, hit := s.predictDemand(params, x, req.ExternalGBps)
		res.DemandGBps = x
		res.Region = params.Region(x).String()
		res.RelativeSpeedPct = rs
		res.Cached = hit
	default:
		return PredictResult{}, fmt.Errorf("need demand_gbps > 0, phases, or workload")
	}
	res.Slowdown = 100 / res.RelativeSpeedPct

	if req.Gables {
		g, err := gables.New(s.peakFor(req.Platform, params))
		if err != nil {
			return PredictResult{}, err
		}
		res.GablesSpeedPct = g.Predict(res.DemandGBps, req.ExternalGBps)
	}
	return res, nil
}

// predictDemand is the single-demand predict fast path: an LRU probe and,
// on miss, one run of the three-region model. The cacheKey is a value
// struct, so hits touch the heap only inside the cache's own bookkeeping.
//
//pccs:hotpath per-request predict path; miss-side insertion allocates inside cache.Put, not here (pinned by TestPredictPathAllocs)
func (s *Server) predictDemand(params core.Params, x, y float64) (rs float64, hit bool) {
	key := cacheKey{params: params, x: x, y: y}
	rs, hit = s.cache.Get(key)
	if !hit {
		rs = params.Predict(x, y)
		s.cache.Put(key, rs)
	}
	return rs, hit
}

// peakFor resolves the SoC peak bandwidth for the Gables baseline: from the
// virtual platform when the name is known, else from the model parameters.
func (s *Server) peakFor(platform string, params core.Params) float64 {
	if p, err := platformByName(platform); err == nil {
		return p.PeakGBps()
	}
	return params.PeakBW
}

// ExploreRequest runs the §4.3 design-space exploration against a
// registered model: pick the cheapest configuration of a knob ("frequency",
// the default, or "cores") that keeps co-run slowdown within budget.
type ExploreRequest struct {
	Platform     string  `json:"platform"`
	PU           string  `json:"pu"`
	ExternalGBps float64 `json:"external_gbps"`
	Knob         string  `json:"knob,omitempty"`
	// Gables also runs the baseline for the over-provisioning comparison.
	Gables bool `json:"gables,omitempty"`

	// Frequency knob: the kernel's standalone frequency model and budget.
	BudgetPct     float64 `json:"budget_pct,omitempty"`
	MemBoundGBps  float64 `json:"membound_gbps,omitempty"`
	CrossoverMHz  float64 `json:"crossover_mhz,omitempty"`
	MaxMHz        float64 `json:"max_mhz,omitempty"`
	LadderLoMHz   float64 `json:"ladder_lo_mhz,omitempty"`
	LadderStepMHz float64 `json:"ladder_step_mhz,omitempty"`

	// Cores knob: the kernel's standalone core-scaling model and target.
	CrossoverCores int     `json:"crossover_cores,omitempty"`
	MaxCores       int     `json:"max_cores,omitempty"`
	StepCores      int     `json:"step_cores,omitempty"`
	TargetFrac     float64 `json:"target_frac,omitempty"`
}

// ExploreSelection is one model's pick.
type ExploreSelection struct {
	FreqMHz     float64 `json:"freq_mhz,omitempty"`
	Cores       int     `json:"cores,omitempty"`
	DemandGBps  float64 `json:"demand_gbps"`
	PredictedRS float64 `json:"predicted_rs_pct,omitempty"`
	CorunPerf   float64 `json:"corun_perf,omitempty"`
	RelPower    float64 `json:"rel_power,omitempty"`
	RelArea     float64 `json:"rel_area,omitempty"`
	Feasible    bool    `json:"feasible"`
}

// ExploreResponse reports the PCCS selection and, on request, the Gables
// baseline plus the resource saved by not over-provisioning.
type ExploreResponse struct {
	Knob          string            `json:"knob"`
	PCCS          ExploreSelection  `json:"pccs"`
	Gables        *ExploreSelection `json:"gables,omitempty"`
	PowerSavedPct float64           `json:"power_saved_pct,omitempty"`
	AreaSavedPct  float64           `json:"area_saved_pct,omitempty"`
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req ExploreRequest
	if !decodeBody(w, r, &req) {
		return
	}
	params, err := s.reg.Get(req.Platform, req.PU)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	var baseline explore.Predictor
	if req.Gables {
		g, err := gables.New(s.peakFor(req.Platform, params))
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		baseline = g
	}
	switch req.Knob {
	case "", "frequency":
		s.exploreFrequency(w, req, params, baseline)
	case "cores":
		s.exploreCores(w, req, params, baseline)
	default:
		writeError(w, http.StatusBadRequest, "unknown knob %q (want frequency or cores)", req.Knob)
	}
}

func (s *Server) exploreFrequency(w http.ResponseWriter, req ExploreRequest, params core.Params, baseline explore.Predictor) {
	fm := explore.FreqModel{
		Kernel:       "kernel",
		MemBoundGBps: req.MemBoundGBps,
		CrossoverMHz: req.CrossoverMHz,
		MaxMHz:       req.MaxMHz,
	}
	lo, step := req.LadderLoMHz, req.LadderStepMHz
	if lo <= 0 {
		lo = fm.MaxMHz / 4
	}
	if step <= 0 {
		step = 10
	}
	ladder := explore.Ladder(lo, fm.MaxMHz, step)
	sel, err := explore.SelectFrequency(params, fm, req.ExternalGBps, req.BudgetPct, ladder)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := ExploreResponse{Knob: "frequency", PCCS: freqSelection(sel, fm)}
	if baseline != nil {
		gsel, err := explore.SelectFrequency(baseline, fm, req.ExternalGBps, req.BudgetPct, ladder)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		gs := freqSelection(gsel, fm)
		resp.Gables = &gs
		if gs.RelPower > resp.PCCS.RelPower {
			resp.PowerSavedPct = 100 * (gs.RelPower - resp.PCCS.RelPower) / gs.RelPower
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func freqSelection(sel explore.Selection, fm explore.FreqModel) ExploreSelection {
	return ExploreSelection{
		FreqMHz:     sel.FreqMHz,
		DemandGBps:  sel.DemandGBps,
		PredictedRS: sel.PredictedRS,
		RelPower:    explore.RelPower(sel.FreqMHz, fm.MaxMHz),
		Feasible:    sel.Feasible,
	}
}

func (s *Server) exploreCores(w http.ResponseWriter, req ExploreRequest, params core.Params, baseline explore.Predictor) {
	cm := explore.CoreModel{
		Kernel:         "kernel",
		MemBoundGBps:   req.MemBoundGBps,
		CrossoverCores: req.CrossoverCores,
		MaxCores:       req.MaxCores,
	}
	target := req.TargetFrac
	if target <= 0 {
		target = 0.95
	}
	sel, err := explore.SelectCores(params, cm, req.ExternalGBps, target, req.StepCores)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := ExploreResponse{Knob: "cores", PCCS: coreSelection(sel, cm)}
	if baseline != nil {
		gsel, err := explore.SelectCores(baseline, cm, req.ExternalGBps, target, req.StepCores)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		gs := coreSelection(gsel, cm)
		resp.Gables = &gs
		resp.AreaSavedPct = explore.AreaSaving(sel.Cores, gsel.Cores)
	}
	writeJSON(w, http.StatusOK, resp)
}

func coreSelection(sel explore.CoreSelection, cm explore.CoreModel) ExploreSelection {
	return ExploreSelection{
		Cores:      sel.Cores,
		DemandGBps: cm.DemandAt(sel.Cores),
		CorunPerf:  sel.CorunPerf,
		RelArea:    sel.RelArea,
		Feasible:   true,
	}
}

// modelsResponse lists the registry contents.
type modelsResponse struct {
	Count int `json:"count"`
	// Keys lists the model keys in sorted order — the deterministic
	// enumeration clients should iterate instead of ranging the map.
	Keys   []string       `json:"keys"`
	Models calib.ModelSet `json:"models"`
	// Platforms lists every registered platform backend (sorted) a
	// calibrate/predict/schedule request may name, whether or not models
	// for it exist yet.
	Platforms []string `json:"platforms"`
}

func (s *Server) handleModelsGet(w http.ResponseWriter, _ *http.Request) {
	// One snapshot feeds count, keys, and models so the response is
	// internally consistent even across a concurrent reload.
	models := s.reg.Snapshot()
	writeJSON(w, http.StatusOK, modelsResponse{
		Count:     len(models),
		Keys:      sortedModelKeys(models),
		Models:    models,
		Platforms: platform.Names(),
	})
}

func (s *Server) handleModelsPost(w http.ResponseWriter, r *http.Request) {
	var params core.Params
	if !decodeBody(w, r, &params) {
		return
	}
	if err := s.reg.Put(params); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"key":   calib.Key(params.Platform, params.PU),
		"count": s.reg.Len(),
	})
}

func (s *Server) handleModelsReload(w http.ResponseWriter, _ *http.Request) {
	if err := s.reg.Reload(); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"reloaded": s.reg.Path(),
		"count":    s.reg.Len(),
	})
}

func (s *Server) handleCalibrate(w http.ResponseWriter, r *http.Request) {
	if s.degrade.Tier() == TierOverload {
		// Overload tier: calibration is the expensive, deferrable work —
		// refuse it outright so predictions keep flowing.
		s.shed(w, "/v1/calibrate", "overload", http.StatusServiceUnavailable,
			s.jobs.RetryAfter(), "server overloaded, calibration temporarily refused")
		return
	}
	var spec CalibrateSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	if err := s.platformAllowed(spec.Platform); err != nil {
		// Off-allowlist is a routing condition, not a permanent client
		// error: another node (or this one, re-flagged) may serve the
		// platform, so the refusal carries the same retry hints as a shed.
		s.refuse(w, http.StatusForbidden, allowlistRetry, "%v", err)
		return
	}
	// The client's deadline header bounds the async job too: read it from
	// the header (not the request context, whose deadline includes the
	// server-side request timeout) so simulation work is abandoned once the
	// client's budget is spent.
	var deadline *time.Time
	if budget, ok := clientBudget(r); ok {
		t := s.clk.Now().Add(budget)
		deadline = &t
	}
	job, err := s.jobs.SubmitWithDeadline(spec, deadline)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure, not a client mistake: tell the caller when to come
		// back, derived from the measured per-job service time and the
		// current backlog instead of a hard-coded guess.
		s.shed(w, "/v1/calibrate", "queue-full", http.StatusServiceUnavailable,
			s.jobs.RetryAfter(), "%v", err)
	case errors.Is(err, ErrBreakerOpen):
		s.shed(w, "/v1/calibrate", "breaker", http.StatusServiceUnavailable,
			s.jobs.RetryAfter(), "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]any{"job": job})
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleJobCancel serves DELETE /v1/jobs/{id}: cancel a queued or running
// calibration. Cancelling an already-finished job is a conflict.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, err := s.jobs.Cancel(id)
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrJobTerminal):
		writeError(w, http.StatusConflict, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		writeJSON(w, http.StatusOK, job)
	}
}

// handleHealthz reports liveness plus degradation: a failed model
// hot-reload (registry serving the last-good set), journal write errors, a
// non-nominal serving tier, or an open calibration circuit flip status to
// "degraded" while the daemon keeps answering — degraded operation is an
// alarm, not an outage. The admission section carries what an operator needs
// during an overload: queue depth, in-flight requests, the concurrency
// limit, breaker state, and the cumulative shed count.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	reload := s.reg.Health()
	journalErrs := s.jobs.JournalErrs()
	tier := s.degrade.Tier()
	breaker := s.breaker.State()
	lst := s.limiter.Stats()
	status := "ok"
	if reload.Degraded || journalErrs > 0 || tier != TierOK || breaker != BreakerClosed {
		status = "degraded"
	}
	body := map[string]any{
		"status":            status,
		"tier":              tier.String(),
		"models":            s.reg.Len(),
		"inflight_jobs":     s.jobs.InFlight(),
		"queue_depth":       s.jobs.QueueDepth(),
		"inflight_requests": lst.InFlight,
		"breaker":           breaker.String(),
		"shed_total":        s.metrics.ShedTotal(),
		"uptime_seconds":    s.clk.Since(s.start).Seconds(),
	}
	if lst.Shed > 0 || lst.Waiting > 0 || tier != TierOK {
		body["admission"] = map[string]any{
			"limit":        lst.Limit,
			"waiting":      lst.Waiting,
			"shed":         lst.Shed,
			"ewma_seconds": lst.EWMASeconds,
			"shed_rate":    s.degrade.ShedRate(),
		}
	}
	if reload.Reloads > 0 || reload.Degraded {
		body["model_reload"] = reload
	}
	if s.journal != nil {
		body["journal"] = map[string]any{
			"path":          s.journal.Path(),
			"records":       s.journal.Records(),
			"size_bytes":    s.journal.SizeBytes(),
			"append_errors": journalErrs,
		}
	}
	if s.cluster != nil {
		body["cluster"] = s.clusterHealth()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses, size := s.cache.Stats()
	lst := s.limiter.Stats()
	gauges := []Gauge{
		{"pccsd_models", "Registered PCCS models.", float64(s.reg.Len())},
		{"pccsd_jobs_inflight", "Calibration jobs queued or running.", float64(s.jobs.InFlight())},
		{"pccsd_jobs_queue_depth", "Calibration jobs waiting in the queue.", float64(s.jobs.QueueDepth())},
		{"pccsd_cache_entries", "Prediction cache entries.", float64(size)},
		{"pccsd_cache_hits_total", "Prediction cache hits.", float64(hits)},
		{"pccsd_cache_misses_total", "Prediction cache misses.", float64(misses)},
		{"pccsd_cache_hit_ratio", "Prediction cache hit ratio.", s.cache.HitRatio()},
		{"pccsd_admission_limit", "Adaptive concurrency limit (AIMD).", lst.Limit},
		{"pccsd_admission_inflight", "Requests currently admitted.", float64(lst.InFlight)},
		{"pccsd_admission_waiting", "Requests queued for admission.", float64(lst.Waiting)},
		{"pccsd_admission_ewma_seconds", "EWMA of admitted-request latency.", lst.EWMASeconds},
		{"pccsd_shed_rate", "Decayed shed events per second (pressure signal).", s.degrade.ShedRate()},
		{"pccsd_serving_tier", "Serving tier: 0 ok, 1 brownout, 2 overload.", float64(s.degrade.Tier())},
		{"pccsd_breaker_state", "Calibration breaker: 0 closed, 1 half-open, 2 open.", float64(s.breaker.State())},
		{"pccsd_breaker_trips_total", "Calibration breaker closed-to-open transitions.", float64(s.breaker.Trips())},
		{"pccsd_stale_served_total", "Predictions served from the stale cache under brownout.", float64(s.stale.Served())},
	}
	if s.ratelimit != nil {
		gauges = append(gauges, Gauge{"pccsd_ratelimited_total", "Requests refused by the per-client rate limiter.", float64(s.ratelimit.Limited())})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w, gauges)
	if s.cluster != nil {
		s.writeClusterMetrics(w)
	}
}
