package server

import (
	"testing"
	"time"
)

func testDegrader(cfg DegradeConfig) (*Degrader, *time.Time) {
	clk := time.Unix(0, 0)
	d := NewDegrader(cfg)
	d.now = func() time.Time { return clk }
	return d, &clk
}

// TestDegraderTiers: sustained shedding walks the tier up, decay walks it
// back down — through the hysteresis band, never straight to nominal from
// overload.
func TestDegraderTiers(t *testing.T) {
	d, clk := testDegrader(DegradeConfig{Tau: 2 * time.Second, BrownoutAt: 5, OverloadAt: 50, ExitAt: 0.5})
	if got := d.Tier(); got != TierOK {
		t.Fatalf("fresh degrader tier = %v", got)
	}

	// ~12 sheds at one instant: rate = 12/2s = 6/s > BrownoutAt.
	for i := 0; i < 12; i++ {
		d.RecordShed()
	}
	if got := d.Tier(); got != TierBrownout {
		t.Fatalf("tier = %v, want brownout at %.1f/s", got, d.ShedRate())
	}

	// Pile on to overload; the signal caps at 2×OverloadAt so recovery
	// time is bounded no matter how hard the spike sheds.
	for i := 0; i < 1000; i++ {
		d.RecordShed()
	}
	if got := d.Tier(); got != TierOverload {
		t.Fatalf("tier = %v, want overload at %.1f/s", got, d.ShedRate())
	}
	if got := d.ShedRate(); got > 100 {
		t.Fatalf("rate = %.1f/s, want capped at 2×OverloadAt = 100", got)
	}

	// Pressure falling into the hysteresis band (ExitAt..BrownoutAt): one
	// step down at most, never straight back to nominal. 100/s decayed 7s
	// at tau 2s is ~3/s.
	*clk = clk.Add(7 * time.Second)
	if got := d.Tier(); got != TierBrownout {
		t.Fatalf("tier = %v, want brownout (hysteresis step-down) at %.2f/s", got, d.ShedRate())
	}

	// Full decay: recovered, no background goroutine needed.
	*clk = clk.Add(10 * time.Second)
	if got := d.Tier(); got != TierOK {
		t.Fatalf("tier = %v, want ok at %.3f/s", got, d.ShedRate())
	}
}

// TestDegraderRecoveryWithinFiveSeconds is the /healthz promise at the
// DEFAULT thresholds: even a spike that drove the signal to its cap is
// nominal again five seconds after the load stops.
func TestDegraderRecoveryWithinFiveSeconds(t *testing.T) {
	d, clk := testDegrader(DegradeConfig{})
	for i := 0; i < 10_000; i++ { // far past saturation; signal capped
		d.RecordShed()
	}
	if got := d.Tier(); got != TierOverload {
		t.Fatalf("tier = %v under capped pressure", got)
	}
	*clk = clk.Add(5 * time.Second)
	if got := d.Tier(); got != TierOK {
		t.Fatalf("tier = %v five seconds after load stopped (rate %.3f/s)", got, d.ShedRate())
	}
}

// TestStaleCache: LRU of last-known answers with a served counter.
func TestStaleCache(t *testing.T) {
	c := NewStaleCache(2)
	k1 := staleKey{platform: "virtual-xavier", pu: "GPU", x: 88, y: 40}
	k2 := staleKey{platform: "virtual-xavier", pu: "CPU", x: 10, y: 5}
	k3 := staleKey{platform: "virtual-snapdragon", pu: "GPU", x: 7, y: 3}

	if _, ok := c.Get(k1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k1, PredictResult{RelativeSpeedPct: 50})
	c.Put(k2, PredictResult{RelativeSpeedPct: 60})
	if res, ok := c.Get(k1); !ok || res.RelativeSpeedPct != 50 {
		t.Fatalf("k1 = %+v, %v", res, ok)
	}
	// k1 was just touched, so inserting k3 evicts k2 (the LRU).
	c.Put(k3, PredictResult{RelativeSpeedPct: 70})
	if _, ok := c.Get(k2); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(k3); !ok {
		t.Fatal("fresh entry missing")
	}
	// Updating an existing key must not grow the cache.
	c.Put(k1, PredictResult{RelativeSpeedPct: 55})
	if res, ok := c.Get(k1); !ok || res.RelativeSpeedPct != 55 {
		t.Fatalf("updated k1 = %+v, %v", res, ok)
	}
	if got := c.Served(); got != 3 {
		t.Fatalf("served = %d, want 3 (misses do not count)", got)
	}

	// capacity <= 0 disables the cache entirely.
	off := NewStaleCache(0)
	off.Put(k1, PredictResult{})
	if _, ok := off.Get(k1); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

// TestStaleKeyForShapes: distinct request shapes map to distinct keys, and
// the key ignores model parameters entirely.
func TestStaleKeyForShapes(t *testing.T) {
	base := PredictRequest{Platform: "virtual-xavier", PU: "GPU", DemandGBps: 88, ExternalGBps: 40}
	variants := []PredictRequest{
		{Platform: "virtual-xavier", PU: "GPU", DemandGBps: 89, ExternalGBps: 40},
		{Platform: "virtual-xavier", PU: "GPU", DemandGBps: 88, ExternalGBps: 41},
		{Platform: "virtual-xavier", PU: "GPU", ExternalGBps: 40, Workload: "stream"},
		{Platform: "virtual-xavier", PU: "GPU", ExternalGBps: 40, Workload: "stream", UsePhases: true},
		{Platform: "virtual-xavier", PU: "GPU", DemandGBps: 88, ExternalGBps: 40, Gables: true},
		{Platform: "virtual-xavier", PU: "GPU", ExternalGBps: 40,
			Phases: []PhaseSpec{{Name: "a", Weight: 1, DemandGBps: 10}}},
	}
	seen := map[staleKey]bool{staleKeyFor(base): true}
	for i, v := range variants {
		k := staleKeyFor(v)
		if seen[k] {
			t.Fatalf("variant %d collides: %+v", i, k)
		}
		seen[k] = true
	}
	if staleKeyFor(base) != staleKeyFor(base) {
		t.Fatal("key not deterministic")
	}
}
