package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/sched"
	"github.com/processorcentricmodel/pccs/internal/simrun"
)

// schedItems is a small model-only batch eligible on the test registry's
// virtual-xavier CPU and GPU models.
func schedItems() []sched.Item {
	return []sched.Item{
		{Workload: "streamcluster"},
		{Workload: "pathfinder"},
		{ID: "flat", DemandGBps: 30},
	}
}

func schedSpecBody(extra func(*ScheduleSpec)) ScheduleSpec {
	spec := ScheduleSpec{Platform: "virtual-xavier", Workloads: schedItems()}
	if extra != nil {
		extra(&spec)
	}
	return spec
}

// jobEnvelope unwraps the 202 {"job": ...} submission response.
type jobEnvelope struct {
	Job Job `json:"job"`
}

// waitHTTPJob polls GET /v1/jobs/{id} until the job is terminal.
func waitHTTPJob(t *testing.T, base, id string, timeout time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var job Job
		resp := getJSON(t, base+"/v1/jobs/"+id, &job)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
		}
		if job.State.Terminal() {
			return job
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %s", id, timeout)
	return Job{}
}

// TestScheduleSyncSolvesSmallBatch: a small model-only request answers
// synchronously with a full schedule, worst-case bounds that dominate the
// expected slowdowns, and a byte-identical response on repeat — the endpoint
// inherits the solver's determinism.
func TestScheduleSyncSolvesSmallBatch(t *testing.T) {
	_, ts := newTestServer(t, nil)
	spec := schedSpecBody(func(s *ScheduleSpec) { s.WorstCase = true; s.Seed = 42 })

	resp, body := postJSON(t, ts.URL+"/v1/schedule", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res ScheduleResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil || len(res.Schedule.Waves) == 0 {
		t.Fatalf("no schedule in %s", body)
	}
	placed := 0
	for _, w := range res.Schedule.Waves {
		placed += len(w.Assignments)
	}
	if placed != len(spec.Workloads) {
		t.Fatalf("schedule places %d items, want %d", placed, len(spec.Workloads))
	}
	if res.Schedule.Makespan <= 0 || res.Schedule.Makespan > res.Schedule.SerialMakespan {
		t.Fatalf("makespan %.3f vs serial %.3f", res.Schedule.Makespan, res.Schedule.SerialMakespan)
	}
	if res.WorstCase == nil || len(res.WorstCase.Bounds) != placed {
		t.Fatalf("want %d worst-case bounds, got %+v", placed, res.WorstCase)
	}
	for _, b := range res.WorstCase.Bounds {
		if b.WorstSlowdown < b.ExpectedSlowdown-1e-9 {
			t.Errorf("%s on %s: worst %.4f < expected %.4f", b.Item, b.PU, b.WorstSlowdown, b.ExpectedSlowdown)
		}
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/schedule", spec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	if string(body) != string(body2) {
		t.Fatalf("sync schedule response not deterministic:\n%s\nvs\n%s", body, body2)
	}
}

// TestScheduleSpecRejected: malformed requests fail with 400 before any
// search runs.
func TestScheduleSpecRejected(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name string
		body any
	}{
		{"unknown platform", ScheduleSpec{Platform: "no-such-soc", Workloads: schedItems()}},
		{"no workloads", ScheduleSpec{Platform: "virtual-xavier"}},
		{"bad objective", schedSpecBody(func(s *ScheduleSpec) { s.Objective = "speed" })},
		{"negative window", schedSpecBody(func(s *ScheduleSpec) { s.WarmupCycles = -1 })},
		{"unknown field", map[string]any{"platform": "virtual-xavier", "surprise": 1}},
		{"unknown workload", ScheduleSpec{Platform: "virtual-xavier", Workloads: []sched.Item{{Workload: "nope"}}}},
		{"no eligible pu", ScheduleSpec{Platform: "virtual-xavier", Workloads: []sched.Item{{Workload: "resnet50"}}}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/schedule", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, body)
		}
	}
}

// TestScheduleAsyncLifecycle: an explicit async submission is accepted as a
// "schedule" job, completes through the shared queue, and carries its result
// on the job record.
func TestScheduleAsyncLifecycle(t *testing.T) {
	_, ts := newTestServer(t, nil)
	spec := schedSpecBody(func(s *ScheduleSpec) { s.Async = true; s.WorstCase = true })

	resp, body := postJSON(t, ts.URL+"/v1/schedule", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var env jobEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Job.Kind != "schedule" || env.Job.State != JobQueued || env.Job.ID == "" {
		t.Fatalf("submitted job = %+v", env.Job)
	}
	if env.Job.SchedSpec == nil || env.Job.SchedSpec.Platform != "virtual-xavier" {
		t.Fatalf("job spec not echoed: %+v", env.Job.SchedSpec)
	}

	done := waitHTTPJob(t, ts.URL, env.Job.ID, 10*time.Second)
	if done.State != JobCompleted {
		t.Fatalf("state = %s (%s)", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Schedule == nil {
		t.Fatalf("completed job carries no result: %+v", done)
	}
	if done.Result.WorstCase == nil {
		t.Fatal("worst-case bounds missing from async result")
	}

	// The job is visible in the listing alongside calibrations.
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &list)
	found := false
	for _, j := range list.Jobs {
		found = found || j.ID == env.Job.ID
	}
	if !found {
		t.Fatalf("job %s missing from /v1/jobs", env.Job.ID)
	}
}

// TestScheduleAsyncCancel: a validating job (long simulator replay) is
// cancelled via DELETE /v1/jobs/{id} and reaches the cancelled state without
// burning the full simulation budget.
func TestScheduleAsyncCancel(t *testing.T) {
	_, ts := newTestServer(t, nil)
	spec := schedSpecBody(func(s *ScheduleSpec) {
		s.Validate = true
		// A window long enough that the replay cannot win the race with the
		// cancel below.
		s.WarmupCycles = 500_000_000
		s.MeasureCycles = 500_000_000
	})
	resp, body := postJSON(t, ts.URL+"/v1/schedule", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var env jobEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+env.Job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", cresp.StatusCode)
	}
	done := waitHTTPJob(t, ts.URL, env.Job.ID, 10*time.Second)
	if done.State != JobCancelled {
		t.Fatalf("state = %s (%s)", done.State, done.Error)
	}
	if done.Result != nil {
		t.Fatal("cancelled job must not carry a result")
	}
}

// TestScheduleOverloadShedsAsync: under the overload tier async scheduling
// is refused with 503 + Retry-After (it is deferrable work), while small
// sync solves — cheap model math — keep being answered.
func TestScheduleOverloadShedsAsync(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	for i := 0; i < 200; i++ {
		srv.degrade.RecordShed()
	}
	if tier := srv.degrade.Tier(); tier != TierOverload {
		t.Fatalf("tier = %v, want overload", tier)
	}

	async := schedSpecBody(func(s *ScheduleSpec) { s.Async = true })
	resp, body := postJSON(t, ts.URL+"/v1/schedule", async)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("async under overload: status %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	sync := schedSpecBody(nil)
	resp, body = postJSON(t, ts.URL+"/v1/schedule", sync)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync under overload: status %d (%s), want 200", resp.StatusCode, body)
	}
}

// TestScheduleDeadlineExpiresInQueue: a schedule job whose client budget ran
// out while queued fails before any search starts (X-Deadline-Ms
// propagation through the job queue).
func TestScheduleDeadlineExpiresInQueue(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	r := newJobRunner(jobRunnerOptions{
		workers:    1,
		queueDepth: 4,
		reg:        NewRegistry(),
		construct: func(context.Context, CalibrateSpec, func(int, int, int)) ([]core.Params, error) {
			started <- struct{}{}
			<-release
			return nil, nil
		},
		schedule: func(context.Context, ScheduleSpec, func(int, int, int)) (*ScheduleResult, error) {
			t.Error("expired job must not run")
			return nil, nil
		},
		retry: simrun.DefaultRetryPolicy(),
	})
	defer r.Close(context.Background())

	if _, err := r.Submit(CalibrateSpec{Platform: "virtual-xavier"}); err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now pinned
	past := time.Now().Add(-time.Second)
	job, err := r.SubmitSchedule(ScheduleSpec{Platform: "virtual-xavier", Workloads: schedItems()}, &past)
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	done := waitJob(t, r, job.ID, 5*time.Second)
	if done.State != JobFailed || done.Error != "deadline exceeded before start" {
		t.Fatalf("job = %s (%q)", done.State, done.Error)
	}
}

// TestScheduleSubmitValidationAndQueueFull: SubmitSchedule validates specs
// and applies the same backpressure as calibration.
func TestScheduleSubmitValidationAndQueueFull(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	r := newJobRunner(jobRunnerOptions{
		workers:    1,
		queueDepth: 1,
		reg:        NewRegistry(),
		schedule: func(ctx context.Context, _ ScheduleSpec, _ func(int, int, int)) (*ScheduleResult, error) {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
			}
			return &ScheduleResult{Schedule: &sched.Schedule{}}, nil
		},
		retry: simrun.DefaultRetryPolicy(),
	})
	defer func() {
		close(release)
		r.Close(context.Background())
	}()

	if _, err := r.SubmitSchedule(ScheduleSpec{Platform: "nope", Workloads: schedItems()}, nil); err == nil {
		t.Error("bad platform accepted")
	}
	if _, err := r.SubmitSchedule(ScheduleSpec{Platform: "virtual-xavier"}, nil); err == nil {
		t.Error("empty batch accepted")
	}

	spec := ScheduleSpec{Platform: "virtual-xavier", Workloads: schedItems()}
	if _, err := r.SubmitSchedule(spec, nil); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy; next submission occupies the single queue slot
	if _, err := r.SubmitSchedule(spec, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SubmitSchedule(spec, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull queue: err = %v, want ErrQueueFull", err)
	}
}

// TestScheduleJobJournalReplay: a schedule job mid-flight at a crash is
// re-queued from the journal with its spec intact, runs to completion, and
// its result survives the next restart as a terminal, queryable record.
func TestScheduleJobJournalReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	journal1, replayed1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed1) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(replayed1))
	}

	started := make(chan struct{}, 1)
	block := make(chan struct{})
	r1 := newJobRunner(jobRunnerOptions{
		workers:    1,
		queueDepth: 4,
		reg:        NewRegistry(),
		journal:    journal1,
		schedule: func(ctx context.Context, _ ScheduleSpec, _ func(int, int, int)) (*ScheduleResult, error) {
			started <- struct{}{}
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		},
		retry: simrun.DefaultRetryPolicy(),
	})

	spec := ScheduleSpec{Platform: "virtual-xavier", Objective: "fairness", Workloads: schedItems()}
	running, err := r1.SubmitSchedule(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started // journaled as running

	// "Crash": snapshot the journal as-is and abandon r1.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	crashed := filepath.Join(dir, "restarted.jsonl")
	if err := os.WriteFile(crashed, data, 0o644); err != nil {
		t.Fatal(err)
	}

	journal2, replayed2, err := OpenJournal(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed2) != 1 {
		t.Fatalf("replayed %d jobs, want 1", len(replayed2))
	}
	want := &sched.Schedule{Platform: "virtual-xavier", Objective: "fairness"}
	r2 := newJobRunner(jobRunnerOptions{
		workers:    1,
		queueDepth: 4,
		reg:        NewRegistry(),
		journal:    journal2,
		replayed:   replayed2,
		schedule: func(_ context.Context, got ScheduleSpec, _ func(int, int, int)) (*ScheduleResult, error) {
			if got.Platform != spec.Platform || got.Objective != spec.Objective || len(got.Workloads) != len(spec.Workloads) {
				t.Errorf("replayed spec = %+v, want %+v", got, spec)
			}
			return &ScheduleResult{Schedule: want}, nil
		},
		retry: simrun.DefaultRetryPolicy(),
	})
	done := waitJob(t, r2, running.ID, 5*time.Second)
	if done.State != JobCompleted {
		t.Fatalf("after restart: %s (%s)", done.State, done.Error)
	}
	if done.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", done.Restarts)
	}
	if done.Result == nil || done.Result.Schedule == nil || done.Result.Schedule.Objective != "fairness" {
		t.Fatalf("result lost across restart: %+v", done.Result)
	}
	if err := r2.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	journal2.Close()

	// Third open: the completed job replays terminal, result intact, and is
	// not re-run.
	journal3, replayed3, err := OpenJournal(crashed)
	if err != nil {
		t.Fatal(err)
	}
	r3 := newJobRunner(jobRunnerOptions{
		workers:    1,
		queueDepth: 4,
		reg:        NewRegistry(),
		journal:    journal3,
		replayed:   replayed3,
		schedule: func(context.Context, ScheduleSpec, func(int, int, int)) (*ScheduleResult, error) {
			t.Error("terminal schedule job re-ran after restart")
			return nil, nil
		},
		retry: simrun.DefaultRetryPolicy(),
	})
	snap, ok := r3.Get(running.ID)
	if !ok || snap.State != JobCompleted || snap.Result == nil || snap.Result.Schedule.Objective != "fairness" {
		t.Fatalf("second replay: %+v", snap)
	}
	if err := r3.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	journal3.Close()

	close(block)
	r1.Close(context.Background())
	journal1.Close()
}

// TestModelsListingSorted: GET /v1/models enumerates keys in sorted order
// and the whole response is byte-stable — no map-iteration order leaks.
func TestModelsListingSorted(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	// Widen the registry beyond the default two models so an unsorted
	// enumeration has room to betray itself.
	for _, pu := range []string{"DLA", "PVA", "AAA"} {
		if err := srv.reg.Put(testParams("virtual-xavier", pu)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.reg.Put(testParams("virtual-snapdragon", "CPU")); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/models", testParams("virtual-snapdragon", "GPU"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed POST status %d: %s", resp.StatusCode, body)
	}

	var first []byte
	for i := 0; i < 5; i++ {
		r, err := http.Get(ts.URL + "/v1/models")
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("status %d", r.StatusCode)
		}
		if first == nil {
			first = got
		} else if string(got) != string(first) {
			t.Fatalf("listing not byte-stable:\n%s\nvs\n%s", first, got)
		}
	}
	var res modelsResponse
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != res.Count || res.Count != len(res.Models) {
		t.Fatalf("count %d, %d keys, %d models", res.Count, len(res.Keys), len(res.Models))
	}
	if !sort.StringsAreSorted(res.Keys) {
		t.Fatalf("keys not sorted: %v", res.Keys)
	}
	for _, k := range res.Keys {
		if _, ok := res.Models[k]; !ok {
			t.Fatalf("key %s missing from models map", k)
		}
	}
}

// TestSortedModelKeys covers the shared canonical-enumeration helper.
func TestSortedModelKeys(t *testing.T) {
	set := calib.ModelSet{
		"virtual-xavier/GPU":     testParams("virtual-xavier", "GPU"),
		"virtual-snapdragon/CPU": testParams("virtual-snapdragon", "CPU"),
		"virtual-xavier/CPU":     testParams("virtual-xavier", "CPU"),
		"virtual-xavier/DLA":     testParams("virtual-xavier", "DLA"),
	}
	got := sortedModelKeys(set)
	want := []string{"virtual-snapdragon/CPU", "virtual-xavier/CPU", "virtual-xavier/DLA", "virtual-xavier/GPU"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
