package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"slices"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/explore"
	"github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/workload"
)

// newTestServer wires a server around an in-memory registry (no daemon
// socket; handlers run behind httptest). A nil construct keeps the real
// simulator-backed calibration.
func newTestServer(t *testing.T, construct constructFunc) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	for _, pu := range []string{"CPU", "GPU"} {
		if err := reg.Put(testParams("virtual-xavier", pu)); err != nil {
			t.Fatal(err)
		}
	}
	srv, _ := newServer(Config{CacheSize: 128, Workers: 2, JobQueueDepth: 8}, reg, construct, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.jobs.Close(ctx); err != nil {
			t.Errorf("job drain: %v", err)
		}
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestPredictSingleMatchesModel(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := PredictRequest{Platform: "virtual-xavier", PU: "GPU", DemandGBps: 88, ExternalGBps: 40, Gables: true}
	resp, body := postJSON(t, ts.URL+"/v1/predict", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res PredictResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	params := testParams("virtual-xavier", "GPU")
	want := params.Predict(88, 40)
	if res.RelativeSpeedPct != want {
		t.Errorf("RS = %v, want %v", res.RelativeSpeedPct, want)
	}
	if res.Slowdown != 100/want {
		t.Errorf("slowdown = %v", res.Slowdown)
	}
	if res.Region != params.Region(88).String() {
		t.Errorf("region = %q", res.Region)
	}
	if res.GablesSpeedPct <= 0 || res.GablesSpeedPct > 100 {
		t.Errorf("gables = %v", res.GablesSpeedPct)
	}
	if res.Cached {
		t.Error("first query claimed a cache hit")
	}

	// The identical query must come from the LRU.
	_, body = postJSON(t, ts.URL+"/v1/predict", req)
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("repeat query missed the cache")
	}
	if res.RelativeSpeedPct != want {
		t.Errorf("cached RS = %v, want %v", res.RelativeSpeedPct, want)
	}
}

func TestPredictWorkloadAndPhases(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// Workload lookup: demand comes from the shipped surrogate profile.
	resp, body := postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Platform: "virtual-xavier", PU: "GPU", Workload: "streamcluster", ExternalGBps: 40,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workload predict: %d %s", resp.StatusCode, body)
	}
	var res PredictResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Get("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	wantDemand, err := wl.DemandOn("virtual-xavier", "GPU")
	if err != nil {
		t.Fatal(err)
	}
	if res.DemandGBps != wantDemand {
		t.Errorf("resolved demand = %v, want %v", res.DemandGBps, wantDemand)
	}

	// Multi-phase via the cfd profile (one high-BW + three medium phases).
	resp, body = postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Platform: "virtual-xavier", PU: "GPU", Workload: "cfd", UsePhases: true, ExternalGBps: 40,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("phase predict: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	params := testParams("virtual-xavier", "GPU")
	phases, err := workload.MustGet("cfd").ModelPhases("virtual-xavier", "GPU")
	if err != nil {
		t.Fatal(err)
	}
	want, err := params.PredictPhases(phases, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.RelativeSpeedPct != want {
		t.Errorf("phase RS = %v, want %v", res.RelativeSpeedPct, want)
	}

	// Explicit inline phases.
	resp, body = postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Platform: "virtual-xavier", PU: "GPU", ExternalGBps: 40,
		Phases: []PhaseSpec{{Weight: 0.25, DemandGBps: 110}, {Weight: 0.75, DemandGBps: 30}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline phases: %d %s", resp.StatusCode, body)
	}
}

func TestPredictBatch(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := map[string]any{
		"batch": []PredictRequest{
			{Platform: "virtual-xavier", PU: "GPU", DemandGBps: 88, ExternalGBps: 40},
			{Platform: "virtual-xavier", PU: "CPU", DemandGBps: 55, ExternalGBps: 60},
			{Platform: "virtual-xavier", PU: "TPU", DemandGBps: 10, ExternalGBps: 5}, // no such model
		},
	}
	resp, out := postJSON(t, ts.URL+"/v1/predict", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var br predictBatchResponse
	if err := json.Unmarshal(out, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("results = %d", len(br.Results))
	}
	if br.Results[0].Error != "" || br.Results[1].Error != "" {
		t.Errorf("good items errored: %+v", br.Results[:2])
	}
	if br.Results[2].Error == "" {
		t.Error("bad item did not carry an error")
	}
	want := testParams("virtual-xavier", "GPU").Predict(88, 40)
	if br.Results[0].RelativeSpeedPct != want {
		t.Errorf("batch RS = %v, want %v", br.Results[0].RelativeSpeedPct, want)
	}
}

func TestPredictErrors(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name string
		body any
		code int
	}{
		{"unknown model", PredictRequest{Platform: "virtual-xavier", PU: "TPU", DemandGBps: 10, ExternalGBps: 5}, http.StatusNotFound},
		{"no demand", PredictRequest{Platform: "virtual-xavier", PU: "GPU", ExternalGBps: 5}, http.StatusBadRequest},
		{"negative external", PredictRequest{Platform: "virtual-xavier", PU: "GPU", DemandGBps: 10, ExternalGBps: -5}, http.StatusBadRequest},
		{"workload and demand", PredictRequest{Platform: "virtual-xavier", PU: "GPU", DemandGBps: 10, Workload: "bfs", ExternalGBps: 5}, http.StatusBadRequest},
		{"unknown workload", PredictRequest{Platform: "virtual-xavier", PU: "GPU", Workload: "doom", ExternalGBps: 5}, http.StatusBadRequest},
		{"unknown field", map[string]any{"platfrom": "virtual-xavier"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, out := postJSON(t, ts.URL+"/v1/predict", tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d want %d (%s)", tc.name, resp.StatusCode, tc.code, out)
		}
		var er errorResponse
		if err := json.Unmarshal(out, &er); err != nil || er.Error == "" {
			t.Errorf("%s: no JSON error envelope: %s", tc.name, out)
		}
	}
}

func TestExploreFrequency(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := ExploreRequest{
		Platform: "virtual-xavier", PU: "GPU", ExternalGBps: 40, Gables: true,
		BudgetPct: 5, MemBoundGBps: 88, CrossoverMHz: 900, MaxMHz: 1377,
		LadderLoMHz: 300, LadderStepMHz: 10,
	}
	resp, out := postJSON(t, ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var er ExploreResponse
	if err := json.Unmarshal(out, &er); err != nil {
		t.Fatal(err)
	}
	params := testParams("virtual-xavier", "GPU")
	fm := explore.FreqModel{Kernel: "kernel", MemBoundGBps: 88, CrossoverMHz: 900, MaxMHz: 1377}
	want, err := explore.SelectFrequency(params, fm, 40, 5, explore.Ladder(300, 1377, 10))
	if err != nil {
		t.Fatal(err)
	}
	if er.PCCS.FreqMHz != want.FreqMHz || er.PCCS.Feasible != want.Feasible {
		t.Errorf("PCCS selection = %+v, want %+v", er.PCCS, want)
	}
	if er.Gables == nil {
		t.Fatal("baseline missing")
	}
}

func TestExploreCores(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := ExploreRequest{
		Platform: "virtual-xavier", PU: "GPU", ExternalGBps: 60, Knob: "cores", Gables: true,
		MemBoundGBps: 88, CrossoverCores: 48, MaxCores: 64, StepCores: 4, TargetFrac: 0.95,
	}
	resp, out := postJSON(t, ts.URL+"/v1/explore", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var er ExploreResponse
	if err := json.Unmarshal(out, &er); err != nil {
		t.Fatal(err)
	}
	if er.PCCS.Cores <= 0 || er.PCCS.Cores > 64 {
		t.Errorf("cores = %d", er.PCCS.Cores)
	}

	resp, out = postJSON(t, ts.URL+"/v1/explore", ExploreRequest{
		Platform: "virtual-xavier", PU: "GPU", Knob: "dial-a-yield",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad knob: status %d (%s)", resp.StatusCode, out)
	}
}

func TestModelsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var list modelsResponse
	getJSON(t, ts.URL+"/v1/models", &list)
	if list.Count != 2 || len(list.Models) != 2 {
		t.Fatalf("initial models = %+v", list)
	}

	// Register a third model, then read it back.
	resp, out := postJSON(t, ts.URL+"/v1/models", testParams("virtual-xavier", "DLA"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, out)
	}
	getJSON(t, ts.URL+"/v1/models", &list)
	if list.Count != 3 {
		t.Fatalf("after register: %+v", list)
	}
	if _, ok := list.Models["virtual-xavier/DLA"]; !ok {
		t.Error("registered model not listed")
	}

	bad := testParams("virtual-xavier", "NPU")
	bad.CBP = -4
	if resp, _ := postJSON(t, ts.URL+"/v1/models", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid model: status %d", resp.StatusCode)
	}
}

func TestModelsReload(t *testing.T) {
	set := calib.ModelSet{}
	set.Put(testParams("virtual-xavier", "GPU"))
	path := writeModelFile(t, set)
	reg, err := OpenRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := newServer(Config{Workers: 1}, reg, nil, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Close(context.Background())

	set.Put(testParams("virtual-xavier", "CPU"))
	if err := set.Save(path); err != nil {
		t.Fatal(err)
	}
	resp, out := postJSON(t, ts.URL+"/v1/models/reload", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, out)
	}
	var list modelsResponse
	getJSON(t, ts.URL+"/v1/models", &list)
	if list.Count != 2 {
		t.Fatalf("after reload: %+v", list)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var health map[string]any
	resp := getJSON(t, ts.URL+"/healthz", &health)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if health["status"] != "ok" || health["models"] != float64(2) {
		t.Errorf("health = %v", health)
	}
	// The overload-operations fields are always present, even at rest: an
	// operator's dashboard must not need a saturated server to validate.
	if health["tier"] != "ok" {
		t.Errorf("tier = %v, want ok", health["tier"])
	}
	if health["breaker"] != "closed" {
		t.Errorf("breaker = %v, want closed", health["breaker"])
	}
	for _, field := range []string{"queue_depth", "inflight_requests", "shed_total", "inflight_jobs"} {
		v, ok := health[field]
		if !ok {
			t.Errorf("healthz missing %q: %v", field, health)
			continue
		}
		if v != float64(0) {
			t.Errorf("%s = %v, want 0 at rest", field, v)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := PredictRequest{Platform: "virtual-xavier", PU: "GPU", DemandGBps: 88, ExternalGBps: 40}
	postJSON(t, ts.URL+"/v1/predict", req)
	postJSON(t, ts.URL+"/v1/predict", req) // cache hit
	getJSON(t, ts.URL+"/healthz", nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	text := string(out)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		`pccsd_requests_total{endpoint="/v1/predict",code="200"} 2`,
		`pccsd_requests_total{endpoint="/healthz",code="200"} 1`,
		`pccsd_request_duration_seconds_count{endpoint="/v1/predict"} 2`,
		"pccsd_models 2",
		"pccsd_cache_hits_total 1",
		"pccsd_cache_misses_total 1",
		"pccsd_cache_hit_ratio 0.5",
		"pccsd_jobs_inflight 0",
		"pccsd_jobs_queue_depth 0",
		"pccsd_admission_limit 256",
		"pccsd_admission_inflight 0",
		"pccsd_serving_tier 0",
		"pccsd_breaker_state 0",
		"pccsd_stale_served_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestConcurrentPredictLoad hammers the serving path with >= 100 parallel
// requests mixing cache hits, misses, and batch bodies; run under -race
// this is the serving-path concurrency regression.
func TestConcurrentPredictLoad(t *testing.T) {
	_, ts := newTestServer(t, nil)
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 32

	const parallel = 128
	var wg sync.WaitGroup
	errs := make(chan error, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pu := "GPU"
			if i%3 == 0 {
				pu = "CPU"
			}
			req := PredictRequest{
				Platform:     "virtual-xavier",
				PU:           pu,
				DemandGBps:   float64(1 + i%40),
				ExternalGBps: float64(i % 60),
			}
			data, _ := json.Marshal(req)
			resp, err := client.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var res PredictResult
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			want := testParams("virtual-xavier", pu).Predict(req.DemandGBps, req.ExternalGBps)
			if res.RelativeSpeedPct != want {
				errs <- fmt.Errorf("RS %v != %v", res.RelativeSpeedPct, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCalibrateJobLifecycle drives a real simulator-backed calibration
// through the async API: submit → 202 → poll /v1/jobs/{id} → completed →
// the constructed model appears in /v1/models and serves predictions.
func TestCalibrateJobLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed calibration in -short mode")
	}
	_, ts := newTestServer(t, nil) // nil: the real construct function
	spec := CalibrateSpec{
		Platform:      "virtual-snapdragon",
		PU:            "GPU",
		WarmupCycles:  40_000,
		MeasureCycles: 60_000,
	}
	resp, out := postJSON(t, ts.URL+"/v1/calibrate", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, out)
	}
	var sub struct {
		Job Job `json:"job"`
	}
	if err := json.Unmarshal(out, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Job.ID == "" {
		t.Fatalf("no job id in %s", out)
	}

	deadline := time.Now().Add(2 * time.Minute)
	var job Job
	for {
		getJSON(t, ts.URL+"/v1/jobs/"+sub.Job.ID, &job)
		if job.State == JobCompleted || job.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if job.State != JobCompleted {
		t.Fatalf("job failed: %s", job.Error)
	}
	if len(job.Models) != 1 || job.Models[0] != "virtual-snapdragon/GPU" {
		t.Fatalf("job models = %v", job.Models)
	}

	var list modelsResponse
	getJSON(t, ts.URL+"/v1/models", &list)
	params, ok := list.Models["virtual-snapdragon/GPU"]
	if !ok {
		t.Fatalf("constructed model not in registry: %v", list)
	}
	if err := params.Validate(); err != nil {
		t.Fatalf("constructed model invalid: %v", err)
	}

	// The fresh model must serve predictions immediately.
	resp, out = postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Platform: "virtual-snapdragon", PU: "GPU", DemandGBps: 20, ExternalGBps: 15,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict on constructed model: %d %s", resp.StatusCode, out)
	}

	var jobs struct {
		Jobs []Job `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &jobs)
	if len(jobs.Jobs) != 1 {
		t.Errorf("job list = %+v", jobs)
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/job-999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d", resp.StatusCode)
	}
}

// TestJobCancelHTTP exercises the DELETE /v1/jobs/{id} lifecycle: cancel a
// running job (200 → cancelled), re-cancel (409), unknown ID (404).
func TestJobCancelHTTP(t *testing.T) {
	started := make(chan struct{})
	_, ts := newTestServer(t, func(ctx context.Context, _ CalibrateSpec, _ func(int, int, int)) ([]core.Params, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	resp, out := postJSON(t, ts.URL+"/v1/calibrate", CalibrateSpec{Platform: "virtual-xavier"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, out)
	}
	var sub struct {
		Job Job `json:"job"`
	}
	if err := json.Unmarshal(out, &sub); err != nil {
		t.Fatal(err)
	}
	<-started

	del := func(id string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, body
	}

	resp, out = del(sub.Job.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d %s", resp.StatusCode, out)
	}

	// The job must reach the cancelled terminal state with a Finished stamp.
	deadline := time.Now().Add(5 * time.Second)
	var job Job
	for {
		getJSON(t, ts.URL+"/v1/jobs/"+sub.Job.ID, &job)
		if job.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if job.State != JobCancelled || job.Finished == nil {
		t.Fatalf("job after cancel = %+v", job)
	}

	if resp, out = del(sub.Job.ID); resp.StatusCode != http.StatusConflict {
		t.Errorf("re-cancel: %d %s", resp.StatusCode, out)
	}
	if resp, out = del("job-999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job cancel: %d %s", resp.StatusCode, out)
	}
}

func TestCalibrateRejectsBadSpec(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, _ := postJSON(t, ts.URL+"/v1/calibrate", CalibrateSpec{Platform: "imaginary-soc"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d", resp.StatusCode)
	}
}

// TestShippedModelsParity loads the repository's constructed-model artifact
// and checks the server's answer equals a direct library prediction — the
// same parity the pccsd/pccs-predict acceptance check exercises by hand.
func TestShippedModelsParity(t *testing.T) {
	reg, err := OpenRegistry("../../models/pccs-models.json")
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := newServer(Config{Workers: 1}, reg, nil, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Close(context.Background())

	params, err := reg.Get("virtual-xavier", "GPU")
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Platform: "virtual-xavier", PU: "GPU", DemandGBps: 88, ExternalGBps: 40,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var res PredictResult
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatal(err)
	}
	if want := params.Predict(88, 40); res.RelativeSpeedPct != want {
		t.Errorf("server RS %v != library %v", res.RelativeSpeedPct, want)
	}
}

// TestGracefulShutdown serves on a real socket and verifies Shutdown drains
// and Serve returns http.ErrServerClosed — the daemon's SIGINT path.
func TestGracefulShutdown(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Put(testParams("virtual-xavier", "GPU")); err != nil {
		t.Fatal(err)
	}
	srv, _ := newServer(Config{Workers: 1}, reg, nil, nil, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	url := "http://" + l.Addr().String()
	var health map[string]any
	getJSON(t, url+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("health = %v", health)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

// TestModelsListsRegisteredPlatforms: /v1/models advertises every platform
// backend a request may name, in sorted registry order, independent of
// which models exist.
func TestModelsListsRegisteredPlatforms(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var list modelsResponse
	getJSON(t, ts.URL+"/v1/models", &list)
	if !reflect.DeepEqual(list.Platforms, platform.Names()) {
		t.Errorf("platforms = %v, want registry listing %v", list.Platforms, platform.Names())
	}
	for _, want := range []string{"chiplet-dual", "pim-xavier", "virtual-npu", "virtual-xavier"} {
		if !slices.Contains(list.Platforms, want) {
			t.Errorf("platforms listing missing %q", want)
		}
	}
}

// TestPlatformAllowlist: a daemon started with -platform serves only the
// allowlisted platforms on the job-creating endpoints; everything else is
// 403, and unknown names still resolve to a 400 from validation.
func TestPlatformAllowlist(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Put(testParams("virtual-xavier", "GPU")); err != nil {
		t.Fatal(err)
	}
	construct := func(ctx context.Context, spec CalibrateSpec, progress func(int, int, int)) ([]core.Params, error) {
		return []core.Params{testParams(spec.Platform, "GPU")}, nil
	}
	srv, _ := newServer(Config{CacheSize: 128, Workers: 2, JobQueueDepth: 8,
		Platforms: []string{"virtual-xavier"}}, reg, construct, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.jobs.Close(ctx)
	})

	resp, out := postJSON(t, ts.URL+"/v1/calibrate", CalibrateSpec{Platform: "pim-xavier", Quick: true})
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("calibrate off-allowlist: status %d (%s)", resp.StatusCode, out)
	}
	resp, out = postJSON(t, ts.URL+"/v1/schedule", map[string]any{
		"platform":  "chiplet-dual",
		"workloads": []map[string]any{{"id": "a", "demand_gbps": 20}},
	})
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("schedule off-allowlist: status %d (%s)", resp.StatusCode, out)
	}
	resp, out = postJSON(t, ts.URL+"/v1/calibrate", CalibrateSpec{Platform: "virtual-xavier", Quick: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("calibrate allowlisted: status %d (%s)", resp.StatusCode, out)
	}
}

// TestRefusalsCarryRetryAfter: every refusal the daemon hands out — policy
// 403s off the allowlist and load 503s from a full queue — goes through the
// same refuse() helper and therefore always tells the client when to come
// back. A refusal without a Retry-After trains clients to hammer.
func TestRefusalsCarryRetryAfter(t *testing.T) {
	reg := NewRegistry()
	release := make(chan struct{})
	construct := func(ctx context.Context, spec CalibrateSpec, progress func(int, int, int)) ([]core.Params, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	srv, _ := newServer(Config{Workers: 1, JobQueueDepth: 1,
		Platforms: []string{"virtual-xavier"}}, reg, construct, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		close(release) // unblock the worker before draining the queue
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.jobs.Close(ctx)
	})

	assertRetryAfter := func(label string, resp *http.Response) {
		t.Helper()
		ra := resp.Header.Get("Retry-After")
		if ra == "" {
			t.Errorf("%s: no Retry-After header", label)
			return
		}
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
			t.Errorf("%s: Retry-After = %q, want integer seconds >= 1", label, ra)
		}
	}

	// Policy refusal: off-allowlist platform on both job-creating endpoints.
	resp, _ := postJSON(t, ts.URL+"/v1/calibrate", CalibrateSpec{Platform: "pim-xavier", Quick: true})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("calibrate off-allowlist: status %d", resp.StatusCode)
	}
	assertRetryAfter("calibrate 403", resp)
	resp, _ = postJSON(t, ts.URL+"/v1/schedule", map[string]any{
		"platform":  "chiplet-dual",
		"workloads": []map[string]any{{"id": "a", "demand_gbps": 20}},
	})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("schedule off-allowlist: status %d", resp.StatusCode)
	}
	assertRetryAfter("schedule 403", resp)

	// Load refusal: the single worker is blocked in construct, the queue
	// holds one job, so a burst must hit ErrQueueFull.
	var full *http.Response
	for i := 0; i < 8; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/calibrate", CalibrateSpec{Platform: "virtual-xavier", Quick: true})
		if resp.StatusCode == http.StatusServiceUnavailable {
			full = resp
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("calibrate burst: unexpected status %d", resp.StatusCode)
		}
	}
	if full == nil {
		t.Fatal("burst never saturated the job queue")
	}
	assertRetryAfter("queue-full 503", full)
}
