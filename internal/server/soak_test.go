package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/faultinject"
	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/stress"
)

// soakDuration is the total load time for TestSoakOverload: 2s in the
// ordinary test run, extensible via PCCS_SOAK_DURATION for the nightly soak
// (e.g. PCCS_SOAK_DURATION=30s).
func soakDuration() time.Duration {
	if s := os.Getenv("PCCS_SOAK_DURATION"); s != "" {
		if d, err := time.ParseDuration(s); err == nil && d > 0 {
			return d
		}
	}
	return 2 * time.Second
}

// TestSoakOverload is the overload acceptance test: a server whose capacity
// is pinned (admission window 4, every request delayed 20ms by a
// deterministic injected latency fault, plus a handful of injected panics)
// is driven at 1× and then ~10× capacity. Under the spike the server must
// keep answering (no collapse), shed load-proportionally with Retry-After
// hints on every shed, keep the p99 of *accepted* requests bounded, serve
// brownout answers from the stale cache, and be healthy again within
// seconds of the load ending.
func TestSoakOverload(t *testing.T) {
	srv, ts := newChaosServer(t, Config{
		Workers: 1, JobQueueDepth: 4,
		MaxConcurrency: 4, MaxWaiters: 8,
		AdmissionTarget: 50 * time.Millisecond,
		Faults: faultinject.MustNew(42,
			// Every request takes 20ms: with a window of 4 that pins the
			// serving capacity at ~200 req/s, deterministically.
			faultinject.Rule{Site: SiteHandler, Kind: faultinject.Delay, Rate: 1, Delay: 20 * time.Millisecond},
			// Chaos on top: a few injected panics must not break the run.
			faultinject.Rule{Site: SiteHandler, Kind: faultinject.Panic, Rate: 0.01, Count: 5},
		),
	}, fakeConstruct(func(CalibrateSpec) ([]core.Params, error) { return nil, nil }))

	cfg := stress.Config{
		URL:  ts.URL,
		Path: "/v1/predict",
		Body: []byte(`{"platform":"virtual-xavier","pu":"GPU","demand_gbps":88,"external_gbps":40}`),
		// Exercise deadline propagation under load; generous enough that
		// the budget itself never rejects anything.
		DeadlineMs: 5000,
		Duration:   soakDuration(),
	}
	// Step 1 at the window size (1× capacity), step 2 at 10×.
	reports, err := stress.Ramp(context.Background(), cfg, []int{4, 40})
	if err != nil {
		t.Fatal(err)
	}
	calm, spike := reports[0], reports[1]
	t.Logf("calm:\n%s", calm)
	t.Logf("spike:\n%s", spike)

	if spike.OK == 0 {
		t.Fatal("server stopped serving under the spike")
	}
	if spike.Shed == 0 {
		t.Fatal("10× load produced no shedding")
	}
	// Load-proportional shedding: the spike sheds a materially larger
	// fraction than the calm step.
	if spike.ShedFraction() < calm.ShedFraction()+0.2 {
		t.Errorf("shedding not load-proportional: calm %.2f, spike %.2f",
			calm.ShedFraction(), spike.ShedFraction())
	}
	if spike.ShedFraction() < 0.3 {
		t.Errorf("spike shed only %.0f%% at 10× load", 100*spike.ShedFraction())
	}
	// Accepted requests stay fast: LIFO admission plus a bounded wait
	// queue keeps the p99 of what we chose to serve orders of magnitude
	// under the collapse regime (a generous 2s bound absorbs -race and CI
	// scheduling noise; the typical value is tens of milliseconds).
	if p99 := spike.Accepted.Quantile(0.99); p99 > 2*time.Second {
		t.Errorf("accepted p99 = %v under overload", p99)
	}
	// Every shed response carries the dynamic Retry-After hint.
	if spike.RetryAfter != spike.Shed+spike.RateLtd {
		t.Errorf("Retry-After on %d of %d shed responses", spike.RetryAfter, spike.Shed+spike.RateLtd)
	}
	// Sustained shedding pushed the server out of the nominal tier and the
	// brownout path served stale-cache answers.
	if got := srv.degrade.Tier(); got == TierOK {
		t.Error("tier still nominal immediately after the spike")
	}
	if spike.Degraded == 0 {
		t.Error("brownout served no stale-cache answers")
	}

	// Recovery: /healthz reports ok within seconds of the load ending
	// (the degrader's capped signal bounds this at ~4.6s).
	deadline := time.Now().Add(8 * time.Second)
	for {
		var health map[string]any
		getJSON(t, ts.URL+"/healthz", &health)
		if health["status"] == "ok" && health["tier"] == "ok" {
			if health["shed_total"] == float64(0) {
				t.Error("healthz lost the cumulative shed count after recovery")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not recover within 8s of load ending: %v", health)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestBreakerWedgedCalibrator: a wedged simulator (every construction hangs
// until its deadline) must open the calibration circuit after consecutive
// timeouts, fail further submissions fast with a Retry-After, surface
// "open" in /healthz — and half-open after the cooldown so one probe can
// close the circuit once the backend recovers.
func TestBreakerWedgedCalibrator(t *testing.T) {
	var healthy atomic.Bool
	srv, ts := newChaosServer(t, Config{
		Workers: 1, JobQueueDepth: 8,
		JobTimeout: 100 * time.Millisecond,
		Breaker: BreakerConfig{
			ConsecTimeouts: 2,
			MinSamples:     1000, // isolate the consecutive-timeout trip
			Cooldown:       300 * time.Millisecond,
		},
	}, func(ctx context.Context, _ CalibrateSpec, _ func(int, int, int)) ([]core.Params, error) {
		if healthy.Load() {
			return nil, nil
		}
		<-ctx.Done() // wedged: hold the worker until the deadline fires
		return nil, ctx.Err()
	})

	spec := CalibrateSpec{Platform: "virtual-xavier"}
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts.URL+"/v1/calibrate", spec); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
	}
	waitBreaker(t, srv, BreakerOpen, 5*time.Second)

	// Open circuit: submissions fail fast with the hint, no worker touched.
	resp, body := postJSON(t, ts.URL+"/v1/calibrate", spec)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker submit: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "circuit open") {
		t.Errorf("503 body: %s", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker 503 missing Retry-After")
	}
	var health map[string]any
	getJSON(t, ts.URL+"/healthz", &health)
	if health["breaker"] != "open" || health["status"] != "degraded" {
		t.Errorf("healthz during open circuit: %v", health)
	}

	// Backend recovers; after the cooldown the half-open probe closes the
	// circuit and calibration flows again.
	healthy.Store(true)
	probeDeadline := time.Now().Add(5 * time.Second)
	for srv.breaker.State() != BreakerClosed {
		if time.Now().After(probeDeadline) {
			t.Fatalf("breaker never closed; state %v", srv.breaker.State())
		}
		if resp, _ := postJSON(t, ts.URL+"/v1/calibrate", spec); resp.StatusCode == http.StatusAccepted {
			time.Sleep(20 * time.Millisecond) // give the probe time to run
			continue
		}
		time.Sleep(50 * time.Millisecond)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/calibrate", spec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery submit: %d %s", resp.StatusCode, body)
	}
}

func waitBreaker(t *testing.T, srv *Server, want BreakerState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for srv.breaker.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("breaker state %v, want %v", srv.breaker.State(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeadlineStopsSimrunWork is the proof that deadline propagation
// reaches the simulation layer: a calibration whose X-Deadline-Ms budget
// expires mid-sweep must stop executing points — shown by the executor's
// own counters (abandoned > 0, progress frozen after the job fails), not
// merely by the job's response code.
func TestDeadlineStopsSimrunWork(t *testing.T) {
	exCh := make(chan *simrun.Executor, 1)
	srv, ts := newChaosServer(t, Config{Workers: 1, JobQueueDepth: 4},
		func(ctx context.Context, _ CalibrateSpec, _ func(int, int, int)) ([]core.Params, error) {
			p := soc.VirtualXavier()
			gpu := p.PUIndex("GPU")
			ex := simrun.New(2)
			exCh <- ex
			points := make([]simrun.Point, 800)
			for i := range points {
				points[i] = simrun.Point{
					Placement: soc.Placement{gpu: soc.Kernel{Name: "k", DemandGBps: float64(10 + i%50)}},
					Run:       soc.RunConfig{WarmupCycles: 20_000, MeasureCycles: 50_000},
				}
			}
			if _, err := ex.Execute(ctx, p, points); err != nil {
				return nil, err
			}
			return nil, nil
		})

	// Submit with a budget far shorter than the 800-point sweep.
	payload, _ := json.Marshal(CalibrateSpec{Platform: "virtual-xavier"})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/calibrate", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, "120")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var accepted struct{ Job Job }
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if accepted.Job.Deadline == nil {
		t.Fatal("job carries no deadline")
	}

	job := waitJob(t, srv.jobs, accepted.Job.ID, 30*time.Second)
	if job.State != JobFailed || !strings.Contains(job.Error, "deadline exceeded") {
		t.Fatalf("job = %s (%q), want failed on deadline", job.State, job.Error)
	}

	ex := <-exCh
	if got := ex.Abandoned(); got == 0 {
		t.Error("no points abandoned: the sweep ran to completion despite the deadline")
	}
	// Progress must be frozen: no simulation work continues after the job
	// reports its deadline failure.
	c1, planned := ex.Progress()
	time.Sleep(300 * time.Millisecond)
	c2, _ := ex.Progress()
	if c1 != c2 {
		t.Errorf("executor still progressing after deadline: %d -> %d", c1, c2)
	}
	if c2 != planned {
		t.Errorf("completed %d of %d planned (every point must be accounted, run or abandoned)", c2, planned)
	}
}
