// Package server implements pccsd, the long-lived PCCS prediction service:
// a concurrency-safe model registry seeded from the constructed-model
// artifact, an LRU prediction cache, an asynchronous calibration job queue,
// hand-rolled Prometheus metrics, and the HTTP/JSON handlers that expose
// the façade (predict, explore, models, calibrate, jobs, healthz, metrics).
//
// The paper's methodology is calibrate-once/predict-many (§3.2, §4): model
// construction costs seconds of simulation per PU while a prediction is a
// few floating-point operations, exactly the shape of a daemon that answers
// slowdown queries from schedulers and DSE tools at high rate.
package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/core"
)

// Registry is a concurrency-safe model registry wrapping a calib.ModelSet.
// A bare ModelSet is a map and therefore unsafe to share between goroutines
// that mutate it; every shared access in the daemon (and in the CLIs, which
// reuse this loader) goes through the Registry's RWMutex instead.
type Registry struct {
	mu   sync.RWMutex
	set  calib.ModelSet // guarded by mu
	path string         // guarded by mu

	// Reload bookkeeping for graceful degradation: when a hot reload
	// fails (partially written artifact, checksum mismatch, invalid
	// model), the registry keeps serving the last-good set and records
	// the failure for /healthz.
	reloads       int       // guarded by mu
	failedReloads int       // guarded by mu
	lastErr       error     // guarded by mu
	lastGood      time.Time // guarded by mu
}

// ReloadHealth is the registry's degradation status, surfaced in /healthz.
type ReloadHealth struct {
	// Degraded is true when the most recent reload failed and the
	// registry is serving the last-good model set.
	Degraded bool `json:"degraded"`
	// LastError is the most recent reload failure ("" when healthy).
	LastError string `json:"last_error,omitempty"`
	// Reloads and FailedReloads count hot-reload attempts.
	Reloads       int `json:"reloads"`
	FailedReloads int `json:"failed_reloads"`
	// LastGood is when the current set was installed (zero if the seed
	// load is still serving).
	LastGood time.Time `json:"last_good,omitempty"`
}

// NewRegistry returns an empty registry with no backing file.
func NewRegistry() *Registry {
	return &Registry{set: calib.ModelSet{}}
}

// OpenRegistry loads a model artifact (calib.Load performs the JSON parse
// and per-model validation) and returns a registry backed by that path, so
// Reload can refresh it in place.
func OpenRegistry(path string) (*Registry, error) {
	set, err := calib.Load(path)
	if err != nil {
		return nil, err
	}
	return &Registry{set: set, path: path}, nil
}

// Path returns the backing artifact path ("" for in-memory registries).
func (r *Registry) Path() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.path
}

// Reload re-reads the backing artifact, atomically replacing the whole set
// on success. On any failure — unreadable file, corrupt JSON, checksum
// mismatch, an invalid model — the registry keeps serving the last-good
// set (graceful degradation) and records the failure for Health.
func (r *Registry) Reload() error {
	r.mu.RLock()
	path := r.path
	r.mu.RUnlock()
	if path == "" {
		return fmt.Errorf("server: registry has no backing model file")
	}
	set, err := calib.Load(path)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reloads++
	if err != nil {
		r.failedReloads++
		r.lastErr = err
		return err
	}
	r.set = set
	r.lastErr = nil
	//pccs:allow-wallclock lastGood is an operator-facing /healthz timestamp, not a behavior input — nothing branches on it
	r.lastGood = time.Now().UTC()
	return nil
}

// Health reports the registry's reload/degradation status.
func (r *Registry) Health() ReloadHealth {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h := ReloadHealth{
		Degraded:      r.lastErr != nil,
		Reloads:       r.reloads,
		FailedReloads: r.failedReloads,
		LastGood:      r.lastGood,
	}
	if r.lastErr != nil {
		h.LastError = r.lastErr.Error()
	}
	return h
}

// Get fetches the model for a platform PU.
func (r *Registry) Get(platform, pu string) (core.Params, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.set.Get(platform, pu)
}

// Put validates and stores a model under its platform/PU key, replacing any
// previous model for that PU.
func (r *Registry) Put(p core.Params) error {
	if p.Platform == "" || p.PU == "" {
		return fmt.Errorf("server: model needs Platform and PU, got %q/%q", p.Platform, p.PU)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	r.set.Put(p)
	r.mu.Unlock()
	return nil
}

// Len reports the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.set)
}

// Keys returns the sorted model keys ("platform/pu").
func (r *Registry) Keys() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	keys := make([]string, 0, len(r.set))
	for k := range r.set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot returns a copy of the underlying set, safe to marshal or mutate
// without holding the registry lock.
func (r *Registry) Snapshot() calib.ModelSet {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(calib.ModelSet, len(r.set))
	for k, v := range r.set {
		out[k] = v
	}
	return out
}

// Save writes the current set to the given path via calib.ModelSet.Save.
func (r *Registry) Save(path string) error {
	return r.Snapshot().Save(path)
}
