package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// latencyBuckets are the histogram upper bounds in seconds. Predictions
// complete in microseconds and calibration submissions in milliseconds, so
// the buckets span 50µs to 10s.
var latencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// endpointMetrics accumulates per-endpoint request counts (by status code)
// and a latency histogram.
type endpointMetrics struct {
	codes   map[int]uint64
	buckets []uint64 // per-bucket (non-cumulative) observation counts
	sum     float64
	count   uint64
}

// Metrics is a hand-rolled Prometheus registry: counters and histograms per
// endpoint, rendered in the text exposition format by WritePrometheus. No
// client library — the daemon has zero dependencies beyond the stdlib.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics // guarded by mu
	panics    map[string]uint64           // guarded by mu
	sheds     map[shedKey]uint64          // guarded by mu
	degraded  map[string]uint64           // guarded by mu
}

// shedKey labels one shed counter: which endpoint shed and why
// ("rate-limit", "endpoint-cap", "queue-full", "deadline", "overload",
// "breaker", "breaker-trip").
type shedKey struct {
	endpoint, reason string
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		endpoints: make(map[string]*endpointMetrics),
		panics:    make(map[string]uint64),
		sheds:     make(map[shedKey]uint64),
		degraded:  make(map[string]uint64),
	}
}

// CountShed records one shed (503/429) response at an endpoint with its
// reason. Feeds pccsd_shed_total.
func (m *Metrics) CountShed(endpoint, reason string) {
	m.mu.Lock()
	m.sheds[shedKey{endpoint, reason}]++
	m.mu.Unlock()
}

// ShedTotal reports the cumulative shed count across endpoints and reasons
// (surfaced in /healthz).
func (m *Metrics) ShedTotal() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total uint64
	for _, n := range m.sheds {
		total += n
	}
	return total
}

// CountDegraded records one degraded (stale-cache) response at an endpoint.
// Feeds pccsd_degraded_total.
func (m *Metrics) CountDegraded(endpoint string) {
	m.mu.Lock()
	m.degraded[endpoint]++
	m.mu.Unlock()
}

// CountPanic records one recovered panic at a site label ("/v1/predict",
// "jobs", ...). Feeds pccsd_panics_total.
func (m *Metrics) CountPanic(site string) {
	m.mu.Lock()
	m.panics[site]++
	m.mu.Unlock()
}

// PanicTotal reports the total recovered panics across all sites.
func (m *Metrics) PanicTotal() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total uint64
	for _, n := range m.panics {
		total += n
	}
	return total
}

// Observe records one request against an endpoint label: its status code
// and wall-clock latency in seconds.
func (m *Metrics) Observe(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	em, ok := m.endpoints[endpoint]
	if !ok {
		em = &endpointMetrics{
			codes:   make(map[int]uint64),
			buckets: make([]uint64, len(latencyBuckets)+1), // +1 for +Inf
		}
		m.endpoints[endpoint] = em
	}
	em.codes[code]++
	em.sum += seconds
	em.count++
	idx := len(latencyBuckets) // +Inf
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			idx = i
			break
		}
	}
	em.buckets[idx]++
}

// Gauge is a point-in-time value sampled at scrape time (cache hit ratio,
// in-flight jobs, registered models, ...).
type Gauge struct {
	Name  string
	Help  string
	Value float64
}

// WritePrometheus renders every counter, histogram, and the supplied gauges
// in the Prometheus text exposition format, with deterministic ordering.
func (m *Metrics) WritePrometheus(w io.Writer, gauges []Gauge) {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintln(w, "# HELP pccsd_requests_total Requests served, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE pccsd_requests_total counter")
	for _, name := range names {
		em := m.endpoints[name]
		codes := make([]int, 0, len(em.codes))
		for c := range em.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "pccsd_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, c, em.codes[c])
		}
	}

	fmt.Fprintln(w, "# HELP pccsd_request_duration_seconds Request latency, by endpoint.")
	fmt.Fprintln(w, "# TYPE pccsd_request_duration_seconds histogram")
	for _, name := range names {
		em := m.endpoints[name]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += em.buckets[i]
			fmt.Fprintf(w, "pccsd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, formatBound(ub), cum)
		}
		cum += em.buckets[len(latencyBuckets)]
		fmt.Fprintf(w, "pccsd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "pccsd_request_duration_seconds_sum{endpoint=%q} %g\n", name, em.sum)
		fmt.Fprintf(w, "pccsd_request_duration_seconds_count{endpoint=%q} %d\n", name, em.count)
	}

	fmt.Fprintln(w, "# HELP pccsd_panics_total Panics recovered without killing the daemon, by site.")
	fmt.Fprintln(w, "# TYPE pccsd_panics_total counter")
	sites := make([]string, 0, len(m.panics))
	for site := range m.panics {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		fmt.Fprintf(w, "pccsd_panics_total{site=%q} %d\n", site, m.panics[site])
	}

	fmt.Fprintln(w, "# HELP pccsd_shed_total Requests shed by admission control, by endpoint and reason.")
	fmt.Fprintln(w, "# TYPE pccsd_shed_total counter")
	shedKeys := make([]shedKey, 0, len(m.sheds))
	for k := range m.sheds {
		shedKeys = append(shedKeys, k)
	}
	sort.Slice(shedKeys, func(i, j int) bool {
		if shedKeys[i].endpoint != shedKeys[j].endpoint {
			return shedKeys[i].endpoint < shedKeys[j].endpoint
		}
		return shedKeys[i].reason < shedKeys[j].reason
	})
	for _, k := range shedKeys {
		fmt.Fprintf(w, "pccsd_shed_total{endpoint=%q,reason=%q} %d\n", k.endpoint, k.reason, m.sheds[k])
	}

	fmt.Fprintln(w, "# HELP pccsd_degraded_total Degraded (stale-cache) responses, by endpoint.")
	fmt.Fprintln(w, "# TYPE pccsd_degraded_total counter")
	degraded := make([]string, 0, len(m.degraded))
	for endpoint := range m.degraded {
		degraded = append(degraded, endpoint)
	}
	sort.Strings(degraded)
	for _, endpoint := range degraded {
		fmt.Fprintf(w, "pccsd_degraded_total{endpoint=%q} %d\n", endpoint, m.degraded[endpoint])
	}
	m.mu.Unlock()

	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n", g.Name, g.Help)
		fmt.Fprintf(w, "# TYPE %s gauge\n", g.Name)
		fmt.Fprintf(w, "%s %g\n", g.Name, g.Value)
	}
}

// formatBound renders a bucket bound the way Prometheus expects (no
// exponent notation surprises for the common bounds).
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
