package server

import (
	"context"
	"testing"
)

// TestPredictPathAllocs pins allocation budgets for the //pccs:hotpath
// predict paths. The static side of the contract is allocbudget (no
// heap-escaping constructs in annotated functions); this is the dynamic
// side: testing.AllocsPerRun cross-checks that the annotated paths
// actually run allocation-free, and that the budgets of the paths that
// legitimately allocate (cache insertion, result marshaling) do not creep.
//
// Budgets are the numbers measured when the test was written. A regression
// fails loudly; a genuine improvement should lower the budget here.
func TestPredictPathAllocs(t *testing.T) {
	reg := NewRegistry()
	for _, pu := range []string{"CPU", "GPU"} {
		if err := reg.Put(testParams("virtual-xavier", pu)); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := newServer(Config{CacheSize: 4096, Workers: 1}, reg, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.jobs.Close(context.Background()) })
	uncached, err := newServer(Config{CacheSize: -1, Workers: 1}, reg, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { uncached.jobs.Close(context.Background()) })

	params, err := reg.Get("virtual-xavier", "GPU")
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, budget float64, f func()) {
		t.Helper()
		got := testing.AllocsPerRun(200, f)
		t.Logf("%-28s %5.1f allocs/op (budget %g)", name, got, budget)
		if got > budget {
			t.Errorf("%s: %.1f allocs/op, budget %g — a hot path grew an allocation", name, got, budget)
		}
	}

	// The model kernel itself: pure arithmetic, zero heap traffic.
	sink := 0.0
	check("core.Predict", 0, func() {
		sink += params.Predict(55, 40)
		sink += params.PredictSlowdown(95, 60)
	})

	// Registry lookup + cached single prediction — the scheduler-loop
	// steady state. Map probe, LRU promotion, no insertion: zero allocs.
	check("registry.Get+cache hit", 0, func() {
		p, err := reg.Get("virtual-xavier", "GPU")
		if err != nil {
			t.Fatal(err)
		}
		rs, _ := srv.predictDemand(p, 55, 40)
		sink += rs
	})

	// Caching disabled: every call is a miss but Put is a no-op, so the
	// miss path minus insertion is also allocation-free.
	check("cache-off miss", 0, func() {
		rs, _ := uncached.predictDemand(params, 55, 40)
		sink += rs
	})

	// A true miss inserts into the LRU: one cacheEntry, one list.Element,
	// and amortized map growth. That cost belongs to Put, not the hot
	// Get/Predict path; measured 3.0, budget 4 leaves headroom for map
	// rehash amortization landing differently across run counts.
	x := 0.0
	check("cache miss+insert", 4, func() {
		x++
		rs, _ := srv.predictDemand(params, x, 40)
		sink += rs
	})

	// The full single-prediction request path below HTTP/JSON, on a warm
	// cache — what each item of a steady-state batch costs.
	req := PredictRequest{Platform: "virtual-xavier", PU: "GPU", DemandGBps: 55, ExternalGBps: 40}
	res, err := srv.predictOne(req)
	if err != nil || !res.Cached {
		// Prime the cache so the measured path is the hit path.
		if _, err := srv.predictOne(req); err != nil {
			t.Fatal(err)
		}
	}
	check("predictOne cache hit", 0, func() {
		res, err := srv.predictOne(req)
		if err != nil {
			t.Fatal(err)
		}
		sink += res.RelativeSpeedPct
	})

	// Batch steady state: the per-batch loop body over warm keys, the
	// shape BenchmarkServerPredictBatch drives through HTTP.
	batch := make([]PredictRequest, 16)
	for i := range batch {
		batch[i] = PredictRequest{Platform: "virtual-xavier", PU: "GPU",
			DemandGBps: float64(1 + i), ExternalGBps: 40}
		if _, err := srv.predictOne(batch[i]); err != nil {
			t.Fatal(err)
		}
	}
	check("batch of 16, warm", 0, func() {
		for _, r := range batch {
			res, _, err := srv.servePredict(r, false)
			if err != nil {
				t.Fatal(err)
			}
			sink += res.RelativeSpeedPct
		}
	})

	if sink == 0 {
		t.Fatal("sink never accumulated — predictions did not run")
	}
}
