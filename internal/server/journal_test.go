package server

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/simrun"
)

// journalRunner builds a runner backed by the journal at path, replaying
// whatever the journal holds.
func journalRunner(t *testing.T, path string, workers, depth int, construct constructFunc) (*JobRunner, *Journal, []Job) {
	t.Helper()
	journal, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	r := newJobRunner(jobRunnerOptions{
		workers:    workers,
		queueDepth: depth,
		reg:        NewRegistry(),
		construct:  construct,
		journal:    journal,
		replayed:   replayed,
		retry:      simrun.DefaultRetryPolicy(),
	})
	return r, journal, replayed
}

// TestJournalReplayAfterCrash is the daemon-restart acceptance check: kill a
// runner with one job mid-flight and one queued, rebuild from the journal
// alone, and assert no job record is lost — the in-flight job restarts (with
// Restarts incremented), the queued job runs, and the ID sequence continues
// past the replayed jobs.
func TestJournalReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")

	started := make(chan struct{}, 1)
	block := make(chan struct{})
	r1, j1, _ := journalRunner(t, path, 1, 4, func(ctx context.Context, _ CalibrateSpec, _ func(int, int, int)) ([]core.Params, error) {
		started <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})

	running, err := r1.Submit(CalibrateSpec{Platform: "virtual-xavier", PU: "GPU"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker owns it: its journaled state is "running"
	queued, err := r1.Submit(CalibrateSpec{Platform: "virtual-snapdragon"})
	if err != nil {
		t.Fatal(err)
	}

	// "Crash": copy the journal bytes as they are right now — nothing the
	// dying process did after this instant can matter — and abandon r1.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	crashed := filepath.Join(dir, "restarted.jsonl")
	if err := os.WriteFile(crashed, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r2, j2, replayed := journalRunner(t, crashed, 1, 4, fakeConstruct(func(spec CalibrateSpec) ([]core.Params, error) {
		return []core.Params{testParams(spec.Platform, "GPU")}, nil
	}))
	if len(replayed) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(replayed))
	}
	for _, id := range []string{running.ID, queued.ID} {
		done := waitJob(t, r2, id, 5*time.Second)
		if done.State != JobCompleted {
			t.Errorf("job %s after restart = %s (%s)", id, done.State, done.Error)
		}
	}
	if job, _ := r2.Get(running.ID); job.Restarts != 1 {
		t.Errorf("in-flight job Restarts = %d, want 1", job.Restarts)
	}
	if job, _ := r2.Get(queued.ID); job.Restarts != 0 {
		t.Errorf("queued job Restarts = %d, want 0", job.Restarts)
	}

	// New submissions must continue the ID sequence, not collide with
	// replayed jobs.
	third, err := r2.Submit(CalibrateSpec{Platform: "virtual-xavier"})
	if err != nil {
		t.Fatal(err)
	}
	if third.ID != "job-000003" {
		t.Errorf("post-replay ID = %s, want job-000003", third.ID)
	}
	waitJob(t, r2, third.ID, 5*time.Second)

	if err := r2.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	// A second restart from the same journal sees all three jobs terminal
	// and queryable, and re-enqueues nothing.
	r3, j3, replayed := journalRunner(t, crashed, 1, 4, fakeConstruct(func(CalibrateSpec) ([]core.Params, error) {
		t.Error("terminal job re-ran after restart")
		return nil, nil
	}))
	if len(replayed) != 3 {
		t.Fatalf("second replay = %d jobs, want 3", len(replayed))
	}
	for _, job := range replayed {
		if job.State != JobCompleted {
			t.Errorf("replayed job %s = %s, want completed", job.ID, job.State)
		}
	}
	if err := r3.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	j3.Close()

	// Let the abandoned first runner die cleanly.
	close(block)
	r1.Close(context.Background())
	j1.Close()
}

// TestJournalToleratesTornTail drops a partial final line — the crash-mid-
// append signature — and expects a clean replay of everything before it,
// with the fragment truncated away so that appending after the restart does
// not concatenate onto it and poison the journal for the restart after that.
func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Job{ID: "job-000001", State: JobQueued}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Job{ID: "job-000001", State: JobCompleted}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"job":{"id":"job-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, jobs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(jobs) != 1 || jobs[0].State != JobCompleted {
		t.Fatalf("replay = %+v", jobs)
	}
	if data, err := os.ReadFile(path); err != nil {
		t.Fatal(err)
	} else if !bytes.Equal(data, intact) {
		t.Fatalf("torn tail not truncated back to the valid prefix:\n got %q\nwant %q", data, intact)
	}

	// The crash-then-one-more-run sequence: appending after the repaired
	// restart must yield a journal the *next* restart replays cleanly.
	if err := j2.Append(Job{ID: "job-000002", State: JobQueued}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, jobs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("journal poisoned by append after torn-tail repair: %v", err)
	}
	defer j3.Close()
	if len(jobs) != 2 {
		t.Fatalf("replay after repair+append = %+v, want 2 jobs", jobs)
	}
}

// TestJournalTerminatesUnterminatedTail: a crash between a record's payload
// write and its newline leaves a complete, parsable final line with no
// terminator. The record must survive replay and the reopened journal must
// add the newline so the next append starts on its own line.
func TestJournalTerminatesUnterminatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	content := `{"job":{"id":"job-000001","state":"queued"}}` + "\n" +
		`{"job":{"id":"job-000001","state":"completed"}}` // no trailing newline
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	j, jobs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].State != JobCompleted {
		t.Fatalf("replay = %+v", jobs)
	}
	if err := j.Append(Job{ID: "job-000002", State: JobQueued}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, jobs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("journal poisoned by append after unterminated tail: %v", err)
	}
	defer j2.Close()
	if len(jobs) != 2 || jobs[0].State != JobCompleted {
		t.Fatalf("replay after repair = %+v, want 2 jobs", jobs)
	}
}

// TestJournalRejectsTerminatedCorruptTail: an unparsable final record that
// IS newline-terminated was written whole — that is corruption (bit rot,
// external edits), not a crash signature, and must fail loudly instead of
// silently dropping the job's last transition.
func TestJournalRejectsTerminatedCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	content := `{"job":{"id":"job-000001","state":"queued"}}` + "\n" +
		`{"job":{"id":"job-000001","sta#%^rupt` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("err = %v, want corruption error for terminated corrupt tail", err)
	}
}

// TestJournalRejectsMidFileCorruption: garbage anywhere but the tail is real
// corruption and must fail loudly, not silently drop records.
func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	content := `{"job":{"id":"job-000001","state":"queued"}}` + "\n" +
		"not json at all\n" +
		`{"job":{"id":"job-000002","state":"queued"}}` + "\n" +
		`{"job":{"id":"job-000003","state":"queued"}}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("err = %v, want mid-file corruption error", err)
	}
}

// TestJournalCompaction: once transitions outgrow the threshold the runner
// rewrites the journal down to one snapshot per job, atomically, and replay
// still sees every job's final state.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	journal, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	journal.CompactThreshold = 5
	r := newJobRunner(jobRunnerOptions{
		workers:    1,
		queueDepth: 16,
		reg:        NewRegistry(),
		construct: fakeConstruct(func(CalibrateSpec) ([]core.Params, error) {
			return nil, nil
		}),
		journal: journal,
	})

	var last Job
	for i := 0; i < 6; i++ { // 18 transitions >> threshold
		job, err := r.Submit(CalibrateSpec{Platform: "virtual-xavier"})
		if err != nil {
			t.Fatal(err)
		}
		last = waitJob(t, r, job.ID, 5*time.Second)
	}
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := journal.Records(); n > 6+5 {
		t.Errorf("journal never compacted: %d records", n)
	}
	if r.JournalErrs() != 0 {
		t.Errorf("journal errors = %d", r.JournalErrs())
	}
	journal.Close()

	// No temp files left behind by compaction.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("compaction left temp file %s", e.Name())
		}
	}

	_, jobs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 {
		t.Fatalf("replay after compaction = %d jobs, want 6", len(jobs))
	}
	for _, job := range jobs {
		if job.State != JobCompleted {
			t.Errorf("job %s = %s", job.ID, job.State)
		}
	}
	_ = last
}

// TestJournalCancelQueuedPersisted: a queued-then-cancelled job must replay
// as cancelled, not rise from the dead.
func TestJournalCancelQueuedPersisted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	release := make(chan struct{})
	r, journal, _ := journalRunner(t, path, 1, 4, fakeConstruct(func(CalibrateSpec) ([]core.Params, error) {
		<-release
		return nil, nil
	}))

	first, err := r.Submit(CalibrateSpec{Platform: "virtual-xavier"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if job, _ := r.Get(first.ID); job.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	second, err := r.Submit(CalibrateSpec{Platform: "virtual-xavier"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Cancel(second.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	journal.Close()

	_, jobs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]JobState{}
	for _, job := range jobs {
		states[job.ID] = job.State
	}
	if states[first.ID] != JobCompleted || states[second.ID] != JobCancelled {
		t.Errorf("replayed states = %v", states)
	}
}
