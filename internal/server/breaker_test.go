package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

// testBreaker builds a breaker on a fake clock the test advances by hand.
func testBreaker(cfg BreakerConfig) (*Breaker, *time.Time) {
	clk := time.Unix(0, 0)
	b := NewBreaker(cfg, nil)
	b.now = func() time.Time { return clk }
	return b, &clk
}

// TestBreakerTripsOnConsecutiveTimeouts: a wedged backend times every call
// out and must be cut off after ConsecTimeouts, long before the rate window
// fills.
func TestBreakerTripsOnConsecutiveTimeouts(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{ConsecTimeouts: 3, MinSamples: 100})
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("allow %d: %v", i, err)
		}
		b.Record(context.DeadlineExceeded)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed work: %v", err)
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
}

// TestBreakerTimeoutStreakResetBySuccess: a success between timeouts resets
// the consecutive counter.
func TestBreakerTimeoutStreakResetBySuccess(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{ConsecTimeouts: 3, MinSamples: 100})
	b.Record(context.DeadlineExceeded)
	b.Record(context.DeadlineExceeded)
	b.Record(nil) // streak broken
	b.Record(context.DeadlineExceeded)
	b.Record(context.DeadlineExceeded)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (streak was reset)", got)
	}
}

// TestBreakerTripsOnFailureRate: enough plain failures across the window
// open the circuit even without timeouts.
func TestBreakerTripsOnFailureRate(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Window: 8, MinSamples: 4, FailureRate: 0.5, ConsecTimeouts: 100})
	boom := errors.New("simulator exploded")
	b.Record(boom)
	b.Record(nil)
	b.Record(boom)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("tripped before MinSamples: %v", got)
	}
	b.Record(boom) // 3 failures / 4 samples = 0.75 >= 0.5
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
}

// TestBreakerHalfOpenProbe: after the cooldown exactly one probe is
// admitted; its success closes the circuit, its failure re-opens it.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{ConsecTimeouts: 1, MinSamples: 100, Cooldown: 10 * time.Second})
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(context.DeadlineExceeded)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if got := b.CooldownRemaining(); got != 10*time.Second {
		t.Fatalf("cooldown remaining = %v", got)
	}

	*clk = clk.Add(11 * time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open after cooldown", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open refused the probe: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("half-open admitted a second concurrent probe")
	}
	if !b.Rejecting() {
		t.Fatal("Rejecting() = false with the probe out")
	}

	// Probe fails: straight back to open, and a fresh cooldown.
	b.Record(errors.New("still broken"))
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open after failed probe", got)
	}

	// Next cooldown, probe succeeds: closed, traffic flows again.
	*clk = clk.Add(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(nil)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed after successful probe", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker refused work: %v", err)
	}
}

// TestBreakerForgetReturnsProbe: a probe whose work never ran (cancelled
// before start) hands the half-open slot back without deciding the circuit.
func TestBreakerForgetReturnsProbe(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{ConsecTimeouts: 1, MinSamples: 100, Cooldown: time.Second})
	b.Record(context.DeadlineExceeded)
	*clk = clk.Add(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Forget()
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want still half-open", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("slot not returned: %v", err)
	}
}

// TestBreakerOnTripHook fires on every closed→open transition.
func TestBreakerOnTripHook(t *testing.T) {
	fired := 0
	b := NewBreaker(BreakerConfig{ConsecTimeouts: 1, MinSamples: 100}, func() { fired++ })
	b.Record(context.DeadlineExceeded)
	if fired != 1 {
		t.Fatalf("onTrip fired %d times, want 1", fired)
	}
}
