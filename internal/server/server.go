package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/processorcentricmodel/pccs/internal/clock"
	"github.com/processorcentricmodel/pccs/internal/cluster"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/faultinject"
	"github.com/processorcentricmodel/pccs/internal/simrun"
)

// Config tunes the daemon.
type Config struct {
	// Addr is the listen address (host:port).
	Addr string
	// ModelPath is the constructed-model artifact seeding the registry.
	ModelPath string
	// JournalPath enables the crash-safe job journal: every calibration
	// job transition is appended (JSONL) and replayed on startup, so a
	// daemon restart loses no job records. Empty disables persistence.
	JournalPath string
	// RequestTimeout bounds each request end to end (default 10s); slow
	// work (calibration) runs async behind the job queue, so hitting the
	// timeout on the serving path indicates overload.
	RequestTimeout time.Duration
	// WriteTimeout bounds each connection's response write (default
	// RequestTimeout + 5s, so the TimeoutHandler fires first and slow
	// clients cannot pin connections forever).
	WriteTimeout time.Duration
	// CacheSize is the prediction-LRU capacity (default 4096; 0 uses the
	// default, negative disables caching).
	CacheSize int
	// Workers sizes the calibration worker pool (default GOMAXPROCS).
	Workers int
	// JobQueueDepth bounds the calibration backlog (default 64).
	JobQueueDepth int
	// RetryAttempts bounds attempts per simulation point for transiently
	// failing (injected-fault) points (default 3; 1 disables retries).
	RetryAttempts int
	// Faults arms the chaos-injection sites across the stack (nil = off).
	Faults *faultinject.Injector

	// AdmissionTarget is the latency target the adaptive concurrency
	// limiter steers toward (default 250ms).
	AdmissionTarget time.Duration
	// MaxConcurrency caps admitted in-flight requests (default 256; the
	// AIMD window starts here and shrinks under latency pressure).
	MaxConcurrency int
	// MaxWaiters bounds the admission wait queue; beyond it the oldest
	// waiter is shed (default 512).
	MaxWaiters int
	// EndpointCaps are optional static per-endpoint in-flight caps
	// (bulkheads) keyed on the route label, e.g. "/v1/calibrate".
	EndpointCaps map[string]int
	// RatePerSec enables the per-client token-bucket rate limiter (keyed
	// on X-API-Key, else remote address); 0 disables it.
	RatePerSec float64
	// RateBurst is the token-bucket capacity (default max(RatePerSec, 1)).
	RateBurst int
	// JobTimeout bounds each calibration job's execution (0 = unbounded);
	// timeouts feed the circuit breaker.
	JobTimeout time.Duration
	// Breaker tunes the calibration circuit breaker (zero values take the
	// BreakerConfig defaults).
	Breaker BreakerConfig
	// Degrade tunes the brownout/overload pressure thresholds.
	Degrade DegradeConfig
	// Platforms restricts which registered platform backends calibrate
	// and schedule requests may name (the daemon's -platform allowlist);
	// empty admits every registered platform.
	Platforms []string

	// Cluster, when set, joins this daemon to a pccsd cluster (see
	// internal/cluster): consistent-hash sharding of the model registry,
	// R-way versioned replication, distributed calibration sweeps, and the
	// /v1/cluster peer endpoints. The Install hook is wired by the server
	// to the registry; nil runs a classic single-node daemon.
	Cluster *cluster.Config
	// PeerHTTP is the client used to forward /v1/predict to a shard owner
	// on a registry miss (nil selects a default with a short timeout);
	// chaos tests inject partition-aware transports here.
	PeerHTTP *http.Client
	// JournalCompactBytes triggers journal compaction once the file
	// exceeds this many bytes, in addition to the record-count trigger
	// (0 keeps record-count only). Wired from -journal-compact-bytes.
	JournalCompactBytes int64

	// Clock supplies time to every time-dependent server mechanism —
	// admission EWMA, breaker cooldown, degrade decay, Retry-After stamps,
	// latency metrics, job/journal timestamps, and (unless the cluster
	// config sets its own) the cluster machinery. Defaults to the real
	// clock; the DST harness injects a virtual one.
	Clock clock.Clock
}

// Chaos sites armed by Config.Faults, alongside the simrun sites the
// executor fires (simrun.SitePoint, simrun.SiteStandalone).
const (
	// SiteHandler fires at the top of every instrumented HTTP handler.
	SiteHandler = "server/handler"
	// SiteJob fires as each queued job (calibration or scheduling) starts
	// running.
	SiteJob = "server/job"
)

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "localhost:8080"
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = c.RequestTimeout + 5*time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 64
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 3
	}
	if c.AdmissionTarget <= 0 {
		c.AdmissionTarget = 250 * time.Millisecond
	}
	if c.MaxConcurrency <= 0 {
		c.MaxConcurrency = 256
	}
	if c.MaxWaiters <= 0 {
		c.MaxWaiters = 512
	}
	if c.Clock == nil {
		c.Clock = clock.System()
	}
	return c
}

// retryPolicy derives the executor retry policy from the config.
func (c Config) retryPolicy() simrun.RetryPolicy {
	p := simrun.DefaultRetryPolicy()
	p.MaxAttempts = c.RetryAttempts
	return p
}

// Server is the pccsd daemon: registry + cache + job runner + metrics wired
// behind an HTTP mux.
type Server struct {
	cfg     Config
	reg     *Registry
	cache   *PredictionCache
	jobs    *JobRunner
	journal *Journal
	metrics *Metrics
	clk     clock.Clock
	start   time.Time

	// Overload-resilience collaborators: the adaptive concurrency limiter
	// and per-endpoint bulkheads admit (or shed) every /v1 request, the
	// rate limiter enforces per-client fairness, the degrader turns the
	// measured shed rate into a serving tier, and the stale cache is the
	// brownout fallback for /v1/predict.
	limiter   *Limiter
	eplimits  *endpointLimits
	ratelimit *RateLimiter // nil when RatePerSec is 0
	degrade   *Degrader
	stale     *StaleCache
	breaker   *Breaker

	// allowed is the platform allowlist from Config.Platforms; nil admits
	// every registered platform.
	allowed map[string]bool

	// cluster is this daemon's cluster membership (nil when single-node);
	// clusterEx is the executor serving /v1/cluster/lease, shared across
	// leases so its memo cache carries standalone points between them.
	cluster   *cluster.Node
	clusterEx *simrun.Executor
	peerHTTP  *http.Client

	handler http.Handler
	httpSrv *http.Server
}

// platformAllowed rejects platform names outside the daemon's allowlist.
// Resolution (is the name registered at all?) stays with platformByName —
// this is purely the operator's serving policy.
func (s *Server) platformAllowed(name string) error {
	if len(s.allowed) == 0 || s.allowed[name] {
		return nil
	}
	return fmt.Errorf("server: platform %q not served by this daemon (allowed: %s)",
		name, strings.Join(s.cfg.Platforms, ", "))
}

// New builds a server whose registry is seeded from cfg.ModelPath and —
// when cfg.JournalPath is set — whose job queue is replayed from the
// journal.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg, err := OpenRegistry(cfg.ModelPath)
	if err != nil {
		return nil, err
	}
	var journal *Journal
	var replayed []Job
	if cfg.JournalPath != "" {
		journal, replayed, err = OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
	}
	return newServer(cfg, reg, nil, journal, replayed)
}

// newServer wires an already-loaded registry; tests inject a fake
// constructFunc to exercise the job queue without simulator time, and an
// already-open journal with its replayed jobs.
func newServer(cfg Config, reg *Registry, construct constructFunc, journal *Journal, replayed []Job) (*Server, error) {
	cfg = cfg.withDefaults()
	metrics := NewMetrics()
	if cfg.Breaker.Clock == nil {
		cfg.Breaker.Clock = cfg.Clock
	}
	if cfg.Degrade.Clock == nil {
		cfg.Degrade.Clock = cfg.Clock
	}
	breaker := NewBreaker(cfg.Breaker, func() { metrics.CountShed("/v1/calibrate", "breaker-trip") })
	// Cluster membership is wired before the job runner: on a cluster node
	// the default construction is the distributed sweep, and constructed
	// models are published (versioned + replicated) through the node.
	var node *cluster.Node
	if cfg.Cluster != nil {
		ccfg := *cfg.Cluster
		ccfg.Install = func(p core.Params) error { return reg.Put(p) }
		if ccfg.Clock == nil {
			ccfg.Clock = cfg.Clock
		}
		var err error
		node, err = cluster.NewNode(ccfg)
		if err != nil {
			return nil, err
		}
		if construct == nil {
			construct = makeClusterConstruct(node)
		}
	}
	if journal != nil && cfg.JournalCompactBytes > 0 {
		journal.CompactBytes = cfg.JournalCompactBytes
	}
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		cache: NewPredictionCache(cfg.CacheSize),
		jobs: newJobRunner(jobRunnerOptions{
			workers:    cfg.Workers,
			queueDepth: cfg.JobQueueDepth,
			reg:        reg,
			construct:  construct,
			journal:    journal,
			replayed:   replayed,
			faults:     cfg.Faults,
			retry:      cfg.retryPolicy(),
			onPanic:    func() { metrics.CountPanic("jobs") },
			breaker:    breaker,
			jobTimeout: cfg.JobTimeout,
			clk:        cfg.Clock,
		}),
		journal: journal,
		metrics: metrics,
		clk:     cfg.Clock,
		start:   cfg.Clock.Now(),
		limiter: NewLimiter(LimiterConfig{
			Target:     cfg.AdmissionTarget,
			Max:        cfg.MaxConcurrency,
			MaxWaiters: cfg.MaxWaiters,
			Clock:      cfg.Clock,
		}),
		eplimits: newEndpointLimits(cfg.EndpointCaps),
		degrade:  NewDegrader(cfg.Degrade),
		stale:    NewStaleCache(cfg.CacheSize),
		breaker:  breaker,
		cluster:  node,
		peerHTTP: cfg.PeerHTTP,
	}
	if node != nil {
		ex := simrun.New(cfg.Workers)
		ex.Faults = cfg.Faults
		ex.Retry = cfg.retryPolicy()
		s.clusterEx = ex
		if s.peerHTTP == nil {
			s.peerHTTP = &http.Client{Timeout: cfg.RequestTimeout}
		}
	}
	if cfg.RatePerSec > 0 {
		s.ratelimit = NewRateLimiter(cfg.RatePerSec, cfg.RateBurst)
		s.ratelimit.now = cfg.Clock.Now
	}
	if len(cfg.Platforms) > 0 {
		s.allowed = map[string]bool{}
		for _, name := range cfg.Platforms {
			s.allowed[name] = true
		}
	}
	mux := http.NewServeMux()
	route := func(pattern, label string, admit bool, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(label, admit, h))
	}
	route("POST /v1/predict", "/v1/predict", true, s.handlePredict)
	route("POST /v1/explore", "/v1/explore", true, s.handleExplore)
	route("GET /v1/models", "/v1/models", true, s.handleModelsGet)
	route("POST /v1/models", "/v1/models", true, s.handleModelsPost)
	route("POST /v1/models/reload", "/v1/models/reload", true, s.handleModelsReload)
	route("POST /v1/calibrate", "/v1/calibrate", true, s.handleCalibrate)
	route("POST /v1/schedule", "/v1/schedule", true, s.handleSchedule)
	route("GET /v1/jobs", "/v1/jobs", true, s.handleJobs)
	route("GET /v1/jobs/{id}", "/v1/jobs/{id}", true, s.handleJob)
	route("DELETE /v1/jobs/{id}", "/v1/jobs/{id}", true, s.handleJobCancel)
	// Probes and scrapes bypass admission: operators must be able to see a
	// saturated server, not get shed by it.
	route("GET /healthz", "/healthz", false, s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if node != nil {
		// Peer traffic bypasses client admission: the coordinator bounds
		// its own concurrency, and admitting leases behind the AIMD window
		// could deadlock a node coordinating a sweep against itself.
		route("POST "+cluster.PathLease, cluster.PathLease, false, s.handleClusterLease)
		route("GET "+cluster.PathPing, cluster.PathPing, false, s.handleClusterPing)
		route("POST "+cluster.PathModels, cluster.PathModels, false, s.handleClusterModels)
	}

	s.handler = http.TimeoutHandler(mux, cfg.RequestTimeout, "request timed out\n")
	s.httpSrv = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      cfg.WriteTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	return s, nil
}

// statusRecorder captures the response code for metrics and whether the
// header was already written (so panic recovery knows if it may still send
// an error response).
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// DeadlineHeader carries the client's end-to-end budget in milliseconds.
// It tightens the request context's deadline (never loosens it), so work
// is abandoned — not just its response dropped — once the budget is spent,
// and on /v1/calibrate it also bounds the async job's execution.
const DeadlineHeader = "X-Deadline-Ms"

// clientBudget parses the DeadlineHeader; ok is false when absent or
// malformed (a bad header is ignored rather than rejected: the budget is a
// hint from the client, and the server-side timeout still applies).
func clientBudget(r *http.Request) (time.Duration, bool) {
	raw := r.Header.Get(DeadlineHeader)
	if raw == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms <= 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// RetryPeerHeader carries the base URL of the least-loaded live replica on
// refused responses from a cluster node: peer-aware admission — the client
// can retry there immediately instead of waiting out Retry-After here.
const RetryPeerHeader = "X-Retry-Peer"

// refuse is the single refusal writer: every response that tells a client
// "not here, not now" — overload sheds, queue-full 503s, off-allowlist
// 403s, abandoned sync work — carries a Retry-After hint, and on a cluster
// node an X-Retry-Peer redirect to an unloaded replica. Unifying the
// headers here keeps clients' retry logic uniform across refusal reasons.
func (s *Server) refuse(w http.ResponseWriter, code int, retry time.Duration, format string, args ...any) {
	w.Header().Set("Retry-After", retrySeconds(retry))
	if s.cluster != nil {
		if peer := s.cluster.UnloadedPeer(); peer != "" {
			w.Header().Set(RetryPeerHeader, peer)
		}
	}
	writeError(w, code, format, args...)
}

// shed refuses a request with the given status, counting it against the
// endpoint/reason and feeding the pressure signal that drives the serving
// tier. retry is the dynamic Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, label, reason string, code int, retry time.Duration, format string, args ...any) {
	s.metrics.CountShed(label, reason)
	s.degrade.RecordShed()
	s.refuse(w, code, retry, format, args...)
}

// instrument wraps a handler with per-endpoint request counting and latency
// observation under a stable route label (no per-ID cardinality), panic
// isolation (a panicking handler — or an injected chaos panic at the
// server/handler site — yields a 500 and a pccsd_panics_total increment,
// never a dead daemon), the server/handler fault site, client-deadline
// propagation, and — for admit routes — the overload-control pipeline:
// per-client rate limiting, per-endpoint bulkheads, and the adaptive
// concurrency limiter with LIFO shedding.
func (s *Server) instrument(label string, admit bool, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		begin := s.clk.Now()
		if budget, ok := clientBudget(r); ok {
			ctx, cancel := context.WithTimeout(r.Context(), budget)
			defer cancel()
			r = r.WithContext(ctx)
		}
		admitted := false
		if admit {
			if s.ratelimit != nil {
				if allowed, wait := s.ratelimit.Allow(clientKey(r)); !allowed {
					// Per-client fairness, not server pressure: count the
					// rejection but do not feed the degrader.
					s.metrics.CountShed(label, "rate-limit")
					s.refuse(rec, http.StatusTooManyRequests, wait, "client rate limit exceeded, retry in %s", clampRetry(wait))
					s.metrics.Observe(label, rec.code, s.clk.Since(begin).Seconds())
					return
				}
			}
			if !s.eplimits.acquire(label) {
				s.shed(rec, label, "endpoint-cap", http.StatusServiceUnavailable,
					s.limiter.RetryAfter(), "endpoint %s at capacity", label)
				s.metrics.Observe(label, rec.code, s.clk.Since(begin).Seconds())
				return
			}
			defer s.eplimits.release(label)
			if err := s.limiter.Acquire(r.Context()); err != nil {
				reason, msg := "queue-full", "server overloaded, request shed"
				if !errors.Is(err, ErrShed) {
					reason, msg = "deadline", "deadline exhausted while queued for admission"
				}
				s.shed(rec, label, reason, http.StatusServiceUnavailable,
					s.limiter.RetryAfter(), "%s", msg)
				s.metrics.Observe(label, rec.code, s.clk.Since(begin).Seconds())
				return
			}
			admitted = true
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					s.metrics.CountPanic(label)
					rec.code = http.StatusInternalServerError
					if !rec.wrote {
						writeError(rec, http.StatusInternalServerError, "internal error: %v", p)
					}
				}
			}()
			if err := s.cfg.Faults.Hit(SiteHandler); err != nil {
				writeError(rec, http.StatusInternalServerError, "%v", err)
				return
			}
			h(rec, r)
		}()
		latency := s.clk.Since(begin)
		if admitted {
			s.limiter.Release(latency, rec.code < http.StatusInternalServerError)
		}
		s.metrics.Observe(label, rec.code, latency.Seconds())
	})
}

// Handler exposes the full route tree (used by httptest and benchmarks).
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes the model registry (shared with the CLIs).
func (s *Server) Registry() *Registry { return s.reg }

// Cluster exposes this daemon's cluster membership (nil when single-node);
// cmd/pccsd starts its prober, tests step it with ProbeOnce.
func (s *Server) Cluster() *cluster.Node { return s.cluster }

// Addr returns the configured listen address.
func (s *Server) Addr() string { return s.cfg.Addr }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	return s.httpSrv.Serve(l)
}

// ListenAndServe binds cfg.Addr and serves until Shutdown; like
// http.Server it returns http.ErrServerClosed after a clean shutdown.
func (s *Server) ListenAndServe() error {
	return s.httpSrv.ListenAndServe()
}

// Shutdown drains in-flight HTTP requests, then stops the job runner,
// waiting for queued calibrations until ctx expires, and finally closes
// the job journal (after the last transition has been appended).
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	if cerr := s.jobs.Close(ctx); err == nil {
		err = cerr
	}
	if s.journal != nil {
		if jerr := s.journal.Close(); err == nil {
			err = jerr
		}
	}
	return err
}
