package server

import (
	"context"
	"net"
	"net/http"
	"runtime"
	"time"

	"github.com/processorcentricmodel/pccs/internal/faultinject"
	"github.com/processorcentricmodel/pccs/internal/simrun"
)

// Config tunes the daemon.
type Config struct {
	// Addr is the listen address (host:port).
	Addr string
	// ModelPath is the constructed-model artifact seeding the registry.
	ModelPath string
	// JournalPath enables the crash-safe job journal: every calibration
	// job transition is appended (JSONL) and replayed on startup, so a
	// daemon restart loses no job records. Empty disables persistence.
	JournalPath string
	// RequestTimeout bounds each request end to end (default 10s); slow
	// work (calibration) runs async behind the job queue, so hitting the
	// timeout on the serving path indicates overload.
	RequestTimeout time.Duration
	// WriteTimeout bounds each connection's response write (default
	// RequestTimeout + 5s, so the TimeoutHandler fires first and slow
	// clients cannot pin connections forever).
	WriteTimeout time.Duration
	// CacheSize is the prediction-LRU capacity (default 4096; 0 uses the
	// default, negative disables caching).
	CacheSize int
	// Workers sizes the calibration worker pool (default GOMAXPROCS).
	Workers int
	// JobQueueDepth bounds the calibration backlog (default 64).
	JobQueueDepth int
	// RetryAttempts bounds attempts per simulation point for transiently
	// failing (injected-fault) points (default 3; 1 disables retries).
	RetryAttempts int
	// Faults arms the chaos-injection sites across the stack (nil = off).
	Faults *faultinject.Injector
}

// Chaos sites armed by Config.Faults, alongside the simrun sites the
// executor fires (simrun.SitePoint, simrun.SiteStandalone).
const (
	// SiteHandler fires at the top of every instrumented HTTP handler.
	SiteHandler = "server/handler"
	// SiteJob fires as each queued calibration job starts running.
	SiteJob = "server/job"
)

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "localhost:8080"
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = c.RequestTimeout + 5*time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 64
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 3
	}
	return c
}

// retryPolicy derives the executor retry policy from the config.
func (c Config) retryPolicy() simrun.RetryPolicy {
	p := simrun.DefaultRetryPolicy()
	p.MaxAttempts = c.RetryAttempts
	return p
}

// Server is the pccsd daemon: registry + cache + job runner + metrics wired
// behind an HTTP mux.
type Server struct {
	cfg     Config
	reg     *Registry
	cache   *PredictionCache
	jobs    *JobRunner
	journal *Journal
	metrics *Metrics
	start   time.Time

	handler http.Handler
	httpSrv *http.Server
}

// New builds a server whose registry is seeded from cfg.ModelPath and —
// when cfg.JournalPath is set — whose job queue is replayed from the
// journal.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg, err := OpenRegistry(cfg.ModelPath)
	if err != nil {
		return nil, err
	}
	var journal *Journal
	var replayed []Job
	if cfg.JournalPath != "" {
		journal, replayed, err = OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
	}
	return newServer(cfg, reg, nil, journal, replayed), nil
}

// newServer wires an already-loaded registry; tests inject a fake
// constructFunc to exercise the job queue without simulator time, and an
// already-open journal with its replayed jobs.
func newServer(cfg Config, reg *Registry, construct constructFunc, journal *Journal, replayed []Job) *Server {
	cfg = cfg.withDefaults()
	metrics := NewMetrics()
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		cache: NewPredictionCache(cfg.CacheSize),
		jobs: newJobRunner(jobRunnerOptions{
			workers:    cfg.Workers,
			queueDepth: cfg.JobQueueDepth,
			reg:        reg,
			construct:  construct,
			journal:    journal,
			replayed:   replayed,
			faults:     cfg.Faults,
			retry:      cfg.retryPolicy(),
			onPanic:    func() { metrics.CountPanic("jobs") },
		}),
		journal: journal,
		metrics: metrics,
		start:   time.Now(),
	}
	mux := http.NewServeMux()
	route := func(pattern, label string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(label, h))
	}
	route("POST /v1/predict", "/v1/predict", s.handlePredict)
	route("POST /v1/explore", "/v1/explore", s.handleExplore)
	route("GET /v1/models", "/v1/models", s.handleModelsGet)
	route("POST /v1/models", "/v1/models", s.handleModelsPost)
	route("POST /v1/models/reload", "/v1/models/reload", s.handleModelsReload)
	route("POST /v1/calibrate", "/v1/calibrate", s.handleCalibrate)
	route("GET /v1/jobs", "/v1/jobs", s.handleJobs)
	route("GET /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJob)
	route("DELETE /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJobCancel)
	route("GET /healthz", "/healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)

	s.handler = http.TimeoutHandler(mux, cfg.RequestTimeout, "request timed out\n")
	s.httpSrv = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      cfg.WriteTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	return s
}

// statusRecorder captures the response code for metrics and whether the
// header was already written (so panic recovery knows if it may still send
// an error response).
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with per-endpoint request counting and latency
// observation under a stable route label (no per-ID cardinality), panic
// isolation (a panicking handler — or an injected chaos panic at the
// server/handler site — yields a 500 and a pccsd_panics_total increment,
// never a dead daemon), and the server/handler fault site.
func (s *Server) instrument(label string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		begin := time.Now()
		func() {
			defer func() {
				if p := recover(); p != nil {
					s.metrics.CountPanic(label)
					rec.code = http.StatusInternalServerError
					if !rec.wrote {
						writeError(rec, http.StatusInternalServerError, "internal error: %v", p)
					}
				}
			}()
			if err := s.cfg.Faults.Hit(SiteHandler); err != nil {
				writeError(rec, http.StatusInternalServerError, "%v", err)
				return
			}
			h(rec, r)
		}()
		s.metrics.Observe(label, rec.code, time.Since(begin).Seconds())
	})
}

// Handler exposes the full route tree (used by httptest and benchmarks).
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes the model registry (shared with the CLIs).
func (s *Server) Registry() *Registry { return s.reg }

// Addr returns the configured listen address.
func (s *Server) Addr() string { return s.cfg.Addr }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	return s.httpSrv.Serve(l)
}

// ListenAndServe binds cfg.Addr and serves until Shutdown; like
// http.Server it returns http.ErrServerClosed after a clean shutdown.
func (s *Server) ListenAndServe() error {
	return s.httpSrv.ListenAndServe()
}

// Shutdown drains in-flight HTTP requests, then stops the job runner,
// waiting for queued calibrations until ctx expires, and finally closes
// the job journal (after the last transition has been appended).
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	if cerr := s.jobs.Close(ctx); err == nil {
		err = cerr
	}
	if s.journal != nil {
		if jerr := s.journal.Close(); err == nil {
			err = jerr
		}
	}
	return err
}
