package server

import (
	"context"
	"net"
	"net/http"
	"runtime"
	"time"
)

// Config tunes the daemon.
type Config struct {
	// Addr is the listen address (host:port).
	Addr string
	// ModelPath is the constructed-model artifact seeding the registry.
	ModelPath string
	// RequestTimeout bounds each request end to end (default 10s); slow
	// work (calibration) runs async behind the job queue, so hitting the
	// timeout on the serving path indicates overload.
	RequestTimeout time.Duration
	// CacheSize is the prediction-LRU capacity (default 4096; 0 uses the
	// default, negative disables caching).
	CacheSize int
	// Workers sizes the calibration worker pool (default GOMAXPROCS).
	Workers int
	// JobQueueDepth bounds the calibration backlog (default 64).
	JobQueueDepth int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "localhost:8080"
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 64
	}
	return c
}

// Server is the pccsd daemon: registry + cache + job runner + metrics wired
// behind an HTTP mux.
type Server struct {
	cfg     Config
	reg     *Registry
	cache   *PredictionCache
	jobs    *JobRunner
	metrics *Metrics
	start   time.Time

	handler http.Handler
	httpSrv *http.Server
}

// New builds a server whose registry is seeded from cfg.ModelPath.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg, err := OpenRegistry(cfg.ModelPath)
	if err != nil {
		return nil, err
	}
	return newServer(cfg, reg, nil), nil
}

// newServer wires an already-loaded registry; tests inject a fake
// constructFunc to exercise the job queue without simulator time.
func newServer(cfg Config, reg *Registry, construct constructFunc) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		cache:   NewPredictionCache(cfg.CacheSize),
		jobs:    NewJobRunner(cfg.Workers, cfg.JobQueueDepth, reg, construct),
		metrics: NewMetrics(),
		start:   time.Now(),
	}
	mux := http.NewServeMux()
	route := func(pattern, label string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(label, h))
	}
	route("POST /v1/predict", "/v1/predict", s.handlePredict)
	route("POST /v1/explore", "/v1/explore", s.handleExplore)
	route("GET /v1/models", "/v1/models", s.handleModelsGet)
	route("POST /v1/models", "/v1/models", s.handleModelsPost)
	route("POST /v1/models/reload", "/v1/models/reload", s.handleModelsReload)
	route("POST /v1/calibrate", "/v1/calibrate", s.handleCalibrate)
	route("GET /v1/jobs", "/v1/jobs", s.handleJobs)
	route("GET /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJob)
	route("DELETE /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJobCancel)
	route("GET /healthz", "/healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)

	s.handler = http.TimeoutHandler(mux, cfg.RequestTimeout, "request timed out\n")
	s.httpSrv = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return s
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-endpoint request counting and latency
// observation under a stable route label (no per-ID cardinality).
func (s *Server) instrument(label string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		begin := time.Now()
		h(rec, r)
		s.metrics.Observe(label, rec.code, time.Since(begin).Seconds())
	})
}

// Handler exposes the full route tree (used by httptest and benchmarks).
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes the model registry (shared with the CLIs).
func (s *Server) Registry() *Registry { return s.reg }

// Addr returns the configured listen address.
func (s *Server) Addr() string { return s.cfg.Addr }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	return s.httpSrv.Serve(l)
}

// ListenAndServe binds cfg.Addr and serves until Shutdown; like
// http.Server it returns http.ErrServerClosed after a clean shutdown.
func (s *Server) ListenAndServe() error {
	return s.httpSrv.ListenAndServe()
}

// Shutdown drains in-flight HTTP requests, then stops the job runner,
// waiting for queued calibrations until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	if err := s.httpSrv.Shutdown(ctx); err != nil {
		// Still stop the workers before reporting the HTTP drain error.
		_ = s.jobs.Close(ctx)
		return err
	}
	return s.jobs.Close(ctx)
}
