package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// JobState is the lifecycle state of an asynchronous job.
type JobState string

// Job lifecycle: queued → running → completed | failed | cancelled.
// DELETE /v1/jobs/{id} moves a queued job straight to cancelled and asks a
// running job's simulation context to stop.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobCompleted JobState = "completed"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobCompleted || s == JobFailed || s == JobCancelled
}

// ErrJobTerminal is returned by Cancel when the job already finished.
var ErrJobTerminal = errors.New("job already in a terminal state")

// ErrUnknownJob is returned by Cancel for IDs the runner never issued.
var ErrUnknownJob = errors.New("unknown job")

// JobProgress reports how far a running calibration has come, in simulation
// points completed out of the points planned so far (the total grows as the
// construction plans further sweeps).
type JobProgress struct {
	Completed int `json:"completed"`
	Total     int `json:"total"`
}

// Job is one asynchronous calibration: a model-construction sweep takes
// seconds of simulated time per PU while a prediction takes microseconds,
// so construction must not block the serving path. Clients poll
// GET /v1/jobs/{id} until the state is terminal.
type Job struct {
	ID        string        `json:"id"`
	Kind      string        `json:"kind"`
	Spec      CalibrateSpec `json:"spec"`
	State     JobState      `json:"state"`
	Submitted time.Time     `json:"submitted"`
	Started   *time.Time    `json:"started,omitempty"`
	Finished  *time.Time    `json:"finished,omitempty"`
	// Progress tracks completed/total simulation points while running.
	Progress *JobProgress `json:"progress,omitempty"`
	// Models lists the registry keys produced by a completed job.
	Models []string `json:"models,omitempty"`
	Error  string   `json:"error,omitempty"`
}

// CalibrateSpec describes a calibration request: which platform (and
// optionally which single PU) to construct models for, and how long the
// simulation windows should be.
type CalibrateSpec struct {
	Platform string `json:"platform"`
	// PU restricts construction to one processing unit; empty means every
	// PU of the platform.
	PU string `json:"pu,omitempty"`
	// Mode selects the extraction variant: "robust" (default) or "strict".
	Mode string `json:"mode,omitempty"`
	// Quick selects the short simulation window (noisier parameters).
	Quick bool `json:"quick,omitempty"`
	// WarmupCycles/MeasureCycles override the window lengths when positive.
	WarmupCycles  int64 `json:"warmup_cycles,omitempty"`
	MeasureCycles int64 `json:"measure_cycles,omitempty"`
}

// platformByName resolves the virtual platforms the daemon can calibrate.
func platformByName(name string) (*soc.Platform, error) {
	switch name {
	case "virtual-xavier":
		return soc.VirtualXavier(), nil
	case "virtual-snapdragon":
		return soc.VirtualSnapdragon(), nil
	default:
		return nil, fmt.Errorf("server: unknown platform %q (want virtual-xavier or virtual-snapdragon)", name)
	}
}

func (s CalibrateSpec) validate() error {
	p, err := platformByName(s.Platform)
	if err != nil {
		return err
	}
	if s.PU != "" && p.PUIndex(s.PU) < 0 {
		return fmt.Errorf("server: platform %s has no PU %q", s.Platform, s.PU)
	}
	switch s.Mode {
	case "", "robust", "strict":
	default:
		return fmt.Errorf("server: unknown extraction mode %q (want robust or strict)", s.Mode)
	}
	if s.WarmupCycles < 0 || s.MeasureCycles < 0 {
		return fmt.Errorf("server: negative simulation window")
	}
	return nil
}

func (s CalibrateSpec) options() calib.Options {
	opt := calib.DefaultOptions()
	if s.Mode == "strict" {
		opt.Mode = calib.Strict
	}
	return opt
}

func (s CalibrateSpec) runConfig() soc.RunConfig {
	rc := soc.DefaultRunConfig()
	if s.Quick {
		rc = soc.QuickRunConfig()
	}
	if s.WarmupCycles > 0 {
		rc.WarmupCycles = s.WarmupCycles
	}
	if s.MeasureCycles > 0 {
		rc.MeasureCycles = s.MeasureCycles
	}
	return rc
}

// constructFunc runs a calibration and returns the constructed models. It
// must honour ctx cancellation and may report per-point progress. Production
// uses defaultConstruct (the real simulator sweep); tests inject fakes to
// exercise queue mechanics without paying simulation time.
type constructFunc func(ctx context.Context, spec CalibrateSpec, progress func(completed, total int)) ([]core.Params, error)

// defaultConstruct runs the processor-centric construction sweep (§3.2) on
// the simulator for the requested platform/PU(s), fanning grid points over a
// private simrun executor pool.
func defaultConstruct(ctx context.Context, spec CalibrateSpec, progress func(completed, total int)) ([]core.Params, error) {
	p, err := platformByName(spec.Platform)
	if err != nil {
		return nil, err
	}
	ex := simrun.New(0)
	ex.OnProgress = progress
	rc, opt := spec.runConfig(), spec.options()
	if spec.PU != "" {
		params, _, err := calib.ConstructPUContext(ctx, ex, p, p.PUIndex(spec.PU), rc, opt)
		if err != nil {
			return nil, err
		}
		return []core.Params{params}, nil
	}
	set, err := calib.ConstructPlatformContext(ctx, ex, p, rc, opt)
	if err != nil {
		return nil, err
	}
	out := make([]core.Params, 0, len(set))
	for _, params := range set {
		out = append(out, params)
	}
	return out, nil
}

// JobRunner owns the calibration queue: a fixed worker pool (sized to
// GOMAXPROCS by the server) pulls jobs off a bounded channel, runs the
// construction, and installs the resulting models in the registry.
type JobRunner struct {
	reg       *Registry
	construct constructFunc

	mu      sync.Mutex
	jobs    map[string]*Job
	cancels map[string]context.CancelFunc // per running job
	order   []string                      // submission order, for List
	seq     int
	closed  bool
	queued  int
	running int

	queue chan string
	wg    sync.WaitGroup
}

// NewJobRunner starts workers goroutines draining a queue of depth
// queueDepth. A nil construct uses the real simulator-backed construction.
func NewJobRunner(workers, queueDepth int, reg *Registry, construct constructFunc) *JobRunner {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	if construct == nil {
		construct = defaultConstruct
	}
	r := &JobRunner{
		reg:       reg,
		construct: construct,
		jobs:      make(map[string]*Job),
		cancels:   make(map[string]context.CancelFunc),
		queue:     make(chan string, queueDepth),
	}
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	return r
}

// Submit validates the spec and enqueues a calibration job, returning a
// snapshot of the queued job. It fails fast when the queue is full rather
// than blocking the HTTP handler.
func (r *JobRunner) Submit(spec CalibrateSpec) (Job, error) {
	if err := spec.validate(); err != nil {
		return Job{}, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return Job{}, fmt.Errorf("server: job runner shut down")
	}
	r.seq++
	job := &Job{
		ID:        fmt.Sprintf("job-%06d", r.seq),
		Kind:      "calibrate",
		Spec:      spec,
		State:     JobQueued,
		Submitted: time.Now().UTC(),
	}
	select {
	case r.queue <- job.ID:
	default:
		r.mu.Unlock()
		return Job{}, fmt.Errorf("server: calibration queue full (%d jobs)", cap(r.queue))
	}
	r.jobs[job.ID] = job
	r.order = append(r.order, job.ID)
	r.queued++
	snap := *job
	r.mu.Unlock()
	return snap, nil
}

// Get returns a snapshot of a job by ID.
func (r *JobRunner) Get(id string) (Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	job, ok := r.jobs[id]
	if !ok {
		return Job{}, false
	}
	return snapshotJob(job), true
}

// List returns snapshots of every job in submission order.
func (r *JobRunner) List() []Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Job, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, snapshotJob(r.jobs[id]))
	}
	return out
}

// Cancel stops a job. A queued job moves straight to cancelled (the worker
// skips it when it surfaces from the queue); a running job has its
// simulation context cancelled and reaches the cancelled state once the
// worker observes the abort. Terminal jobs return ErrJobTerminal, unknown
// IDs ErrUnknownJob.
func (r *JobRunner) Cancel(id string) (Job, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	job, ok := r.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("server: %w %q", ErrUnknownJob, id)
	}
	switch job.State {
	case JobQueued:
		now := time.Now().UTC()
		job.State = JobCancelled
		job.Finished = &now
		job.Error = "cancelled before start"
		r.queued--
	case JobRunning:
		if cancel := r.cancels[id]; cancel != nil {
			cancel()
		}
	default:
		return Job{}, fmt.Errorf("server: %w: job %s is %s", ErrJobTerminal, id, job.State)
	}
	return snapshotJob(job), nil
}

// InFlight counts jobs that are queued or running.
func (r *JobRunner) InFlight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queued + r.running
}

// Close stops accepting new jobs and waits — until ctx expires — for the
// workers to drain everything already queued or running.
func (r *JobRunner) Close(ctx context.Context) error {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.queue)
	}
	r.mu.Unlock()
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: job runner drain: %w", ctx.Err())
	}
}

func (r *JobRunner) worker() {
	defer r.wg.Done()
	for id := range r.queue {
		r.run(id)
	}
}

func (r *JobRunner) run(id string) {
	r.mu.Lock()
	job := r.jobs[id]
	if job.State != JobQueued {
		// Cancelled while waiting in the queue channel.
		r.mu.Unlock()
		return
	}
	now := time.Now().UTC()
	job.State = JobRunning
	job.Started = &now
	r.queued--
	r.running++
	spec := job.Spec
	ctx, cancel := context.WithCancel(context.Background())
	r.cancels[id] = cancel
	r.mu.Unlock()
	defer cancel()

	progress := func(completed, total int) {
		r.mu.Lock()
		job.Progress = &JobProgress{Completed: completed, Total: total}
		r.mu.Unlock()
	}
	models, err := r.construct(ctx, spec, progress)
	var keys []string
	if err == nil {
		for _, p := range models {
			if perr := r.reg.Put(p); perr != nil {
				err = fmt.Errorf("server: installing constructed model: %w", perr)
				break
			}
			keys = append(keys, calib.Key(p.Platform, p.PU))
		}
	}

	r.mu.Lock()
	delete(r.cancels, id)
	end := time.Now().UTC()
	job.Finished = &end
	r.running--
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || ctx.Err() != nil):
		job.State = JobCancelled
		job.Error = "cancelled"
	case err != nil:
		job.State = JobFailed
		job.Error = err.Error()
	default:
		// A successful construction stands even if a cancel raced in at
		// the very end: the models are already installed.
		job.State = JobCompleted
		job.Models = keys
	}
	r.mu.Unlock()
}

// snapshotJob deep-copies the mutable fields so callers never alias the
// runner's internal state.
func snapshotJob(j *Job) Job {
	snap := *j
	snap.Models = append([]string(nil), j.Models...)
	return snap
}
