package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/clock"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/faultinject"
	"github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// JobState is the lifecycle state of an asynchronous job.
type JobState string

// Job lifecycle: queued → running → completed | failed | cancelled.
// DELETE /v1/jobs/{id} moves a queued job straight to cancelled and asks a
// running job's simulation context to stop.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobCompleted JobState = "completed"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobCompleted || s == JobFailed || s == JobCancelled
}

// ErrJobTerminal is returned by Cancel when the job already finished.
var ErrJobTerminal = errors.New("job already in a terminal state")

// ErrUnknownJob is returned by Cancel for IDs the runner never issued.
var ErrUnknownJob = errors.New("unknown job")

// ErrQueueFull is returned by the Submit family when the job backlog is at
// capacity; handlers translate it to 503 + Retry-After.
var ErrQueueFull = errors.New("job queue full")

// JobProgress reports how far a running calibration has come, in simulation
// points completed out of the points planned so far (the total grows as the
// construction plans further sweeps). Retries counts simulation points that
// were re-attempted after a transient (injected) failure.
type JobProgress struct {
	Completed int `json:"completed"`
	Total     int `json:"total"`
	Retries   int `json:"retries,omitempty"`
}

// Job is one asynchronous unit of slow work: a calibration (Kind
// "calibrate" — a model-construction sweep takes seconds of simulated time
// per PU while a prediction takes microseconds) or a scheduling run (Kind
// "schedule" — large searches and simulator validation replays). Neither
// may block the serving path, so clients poll GET /v1/jobs/{id} until the
// state is terminal.
type Job struct {
	ID   string        `json:"id"`
	Kind string        `json:"kind"`
	Spec CalibrateSpec `json:"spec"`
	// SchedSpec replaces Spec for Kind "schedule" jobs.
	SchedSpec *ScheduleSpec `json:"sched_spec,omitempty"`
	State     JobState      `json:"state"`
	Submitted time.Time     `json:"submitted"`
	Started   *time.Time    `json:"started,omitempty"`
	Finished  *time.Time    `json:"finished,omitempty"`
	// Progress tracks completed/total simulation points while running.
	Progress *JobProgress `json:"progress,omitempty"`
	// Deadline, when set, is the client's end-to-end budget (X-Deadline-Ms)
	// plus any server-side job timeout: the construction is abandoned —
	// its simulation work stopped, not just its result dropped — once the
	// deadline passes, and a job still queued at its deadline fails
	// without running at all.
	Deadline *time.Time `json:"deadline,omitempty"`
	// Models lists the registry keys produced by a completed calibration.
	Models []string `json:"models,omitempty"`
	// Result carries a completed scheduling job's outcome.
	Result *ScheduleResult `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Restarts counts how many times the job was re-enqueued by journal
	// replay after a daemon crash or restart.
	Restarts int `json:"restarts,omitempty"`
}

// CalibrateSpec describes a calibration request: which platform (and
// optionally which single PU) to construct models for, and how long the
// simulation windows should be.
type CalibrateSpec struct {
	Platform string `json:"platform"`
	// PU restricts construction to one processing unit; empty means every
	// PU of the platform.
	PU string `json:"pu,omitempty"`
	// Mode selects the extraction variant: "robust" (default) or "strict".
	Mode string `json:"mode,omitempty"`
	// Quick selects the short simulation window (noisier parameters).
	Quick bool `json:"quick,omitempty"`
	// WarmupCycles/MeasureCycles override the window lengths when positive.
	WarmupCycles  int64 `json:"warmup_cycles,omitempty"`
	MeasureCycles int64 `json:"measure_cycles,omitempty"`
}

// platformByName resolves any registered platform backend the daemon can
// calibrate, predict, and schedule on. Requests select extended families
// (chiplet, NPU, PIM) the same way they select the virtual SoCs.
func platformByName(name string) (soc.Backend, error) {
	b, err := platform.Get(name)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return b, nil
}

func (s CalibrateSpec) validate() error {
	p, err := platformByName(s.Platform)
	if err != nil {
		return err
	}
	if s.PU != "" && soc.PUIndexOf(p, s.PU) < 0 {
		return fmt.Errorf("server: platform %s has no PU %q", s.Platform, s.PU)
	}
	switch s.Mode {
	case "", "robust", "strict":
	default:
		return fmt.Errorf("server: unknown extraction mode %q (want robust or strict)", s.Mode)
	}
	if s.WarmupCycles < 0 || s.MeasureCycles < 0 {
		return fmt.Errorf("server: negative simulation window")
	}
	return nil
}

func (s CalibrateSpec) options() calib.Options {
	opt := calib.DefaultOptions()
	if s.Mode == "strict" {
		opt.Mode = calib.Strict
	}
	return opt
}

func (s CalibrateSpec) runConfig() soc.RunConfig {
	rc := soc.DefaultRunConfig()
	if s.Quick {
		rc = soc.QuickRunConfig()
	}
	if s.WarmupCycles > 0 {
		rc.WarmupCycles = s.WarmupCycles
	}
	if s.MeasureCycles > 0 {
		rc.MeasureCycles = s.MeasureCycles
	}
	return rc
}

// constructFunc runs a calibration and returns the constructed models. It
// must honour ctx cancellation and may report per-point progress (points
// completed, points planned, transient retries). Production uses
// makeConstruct (the real simulator sweep); tests inject fakes to exercise
// queue mechanics without paying simulation time.
type constructFunc func(ctx context.Context, spec CalibrateSpec, progress func(completed, total, retries int)) ([]core.Params, error)

// makeConstruct builds the production constructFunc: the processor-centric
// construction sweep (§3.2) on the simulator for the requested
// platform/PU(s), fanning grid points over a private simrun executor pool
// armed with the daemon's chaos injector and retry policy.
func makeConstruct(faults *faultinject.Injector, retry simrun.RetryPolicy) constructFunc {
	return func(ctx context.Context, spec CalibrateSpec, progress func(completed, total, retries int)) ([]core.Params, error) {
		p, err := platformByName(spec.Platform)
		if err != nil {
			return nil, err
		}
		ex := simrun.New(0)
		ex.Faults = faults
		ex.Retry = retry
		if progress != nil {
			ex.OnProgress = func(completed, planned int) {
				progress(completed, planned, ex.Retries())
			}
		}
		rc, opt := spec.runConfig(), spec.options()
		if spec.PU != "" {
			params, _, err := calib.ConstructPUContext(ctx, ex, p, soc.PUIndexOf(p, spec.PU), rc, opt)
			if err != nil {
				return nil, err
			}
			return []core.Params{params}, nil
		}
		set, err := calib.ConstructPlatformContext(ctx, ex, p, rc, opt)
		if err != nil {
			return nil, err
		}
		// Walk the set in sorted key order so the job's Models listing is
		// deterministic (map iteration order is not).
		out := make([]core.Params, 0, len(set))
		for _, key := range sortedModelKeys(set) {
			out = append(out, set[key])
		}
		return out, nil
	}
}

// sortedModelKeys lists a model set's keys in sorted order — the canonical
// enumeration every listing (job Models, /v1/models) uses so responses are
// byte-stable across runs.
func sortedModelKeys(set calib.ModelSet) []string {
	keys := make([]string, 0, len(set))
	for key := range set {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// JobRunner owns the async-job queue: a fixed worker pool (sized to
// GOMAXPROCS by the server) pulls jobs off a bounded channel and runs them —
// calibrations install their constructed models in the registry, scheduling
// jobs record their result on the job. With a journal attached every state
// transition is persisted, so a restarted daemon replays the queue instead
// of losing it.
type JobRunner struct {
	reg        *Registry
	construct  constructFunc
	schedule   scheduleFunc
	journal    *Journal
	faults     *faultinject.Injector
	onPanic    func() // counts recovered calibration panics (may be nil)
	breaker    *Breaker
	jobTimeout time.Duration // per-job execution budget; 0 = unbounded
	workers    int
	clk        clock.Clock

	mu          sync.Mutex
	jobs        map[string]*Job               // guarded by mu
	cancels     map[string]context.CancelFunc // guarded by mu; per running job
	order       []string                      // guarded by mu; submission order, for List
	seq         int                           // guarded by mu
	closed      bool                          // guarded by mu
	queued      int                           // guarded by mu
	running     int                           // guarded by mu
	journalErrs int                           // guarded by mu
	ewmaJobSecs float64                       // guarded by mu; observed per-job service time

	queue chan string
	wg    sync.WaitGroup
}

// jobRunnerOptions wires the runner's fault-tolerance collaborators; the
// zero value of every optional field means "off".
type jobRunnerOptions struct {
	workers    int
	queueDepth int
	reg        *Registry
	construct  constructFunc // nil selects the simulator-backed construction
	schedule   scheduleFunc  // nil selects the registry-backed solver
	journal    *Journal      // nil disables persistence
	replayed   []Job         // journal replay: last-known snapshot per job
	faults     *faultinject.Injector
	retry      simrun.RetryPolicy
	onPanic    func()
	breaker    *Breaker      // nil disables circuit breaking
	jobTimeout time.Duration // per-job execution budget; 0 = unbounded
	clk        clock.Clock   // nil selects the real clock
}

// NewJobRunner starts workers goroutines draining a queue of depth
// queueDepth. A nil construct uses the real simulator-backed construction.
func NewJobRunner(workers, queueDepth int, reg *Registry, construct constructFunc) *JobRunner {
	return newJobRunner(jobRunnerOptions{
		workers:    workers,
		queueDepth: queueDepth,
		reg:        reg,
		construct:  construct,
		retry:      simrun.DefaultRetryPolicy(),
	})
}

func newJobRunner(o jobRunnerOptions) *JobRunner {
	if o.workers < 1 {
		o.workers = 1
	}
	if o.queueDepth < 1 {
		o.queueDepth = 1
	}
	if o.construct == nil {
		o.construct = makeConstruct(o.faults, o.retry)
	}
	if o.schedule == nil {
		o.schedule = makeSchedule(o.reg, o.faults, o.retry)
	}
	if o.clk == nil {
		o.clk = clock.System()
	}
	// Every non-terminal replayed job must fit the queue, whatever depth
	// the config asks for — replay must not drop jobs.
	pending := 0
	for _, job := range o.replayed {
		if !job.State.Terminal() {
			pending++
		}
	}
	if o.queueDepth < pending {
		o.queueDepth = pending
	}
	r := &JobRunner{
		reg:        o.reg,
		construct:  o.construct,
		schedule:   o.schedule,
		journal:    o.journal,
		faults:     o.faults,
		onPanic:    o.onPanic,
		breaker:    o.breaker,
		jobTimeout: o.jobTimeout,
		workers:    o.workers,
		clk:        o.clk,
		jobs:       make(map[string]*Job),
		cancels:    make(map[string]context.CancelFunc),
		queue:      make(chan string, o.queueDepth),
	}
	r.replay(o.replayed)
	r.wg.Add(o.workers)
	for i := 0; i < o.workers; i++ {
		go r.worker()
	}
	return r
}

// replay restores journaled jobs before the workers start: terminal jobs
// stay queryable, queued and in-flight jobs go back on the queue from the
// beginning (a half-done construction has no resumable state — the
// simulation points are cheap relative to losing the job).
//
//pccs:allow-guardedby runs in NewJobRunner before any worker goroutine starts, so nothing else can touch the fields yet
func (r *JobRunner) replay(replayed []Job) {
	for _, snap := range replayed {
		job := snap
		if n := jobSeq(job.ID); n > r.seq {
			r.seq = n
		}
		if !job.State.Terminal() {
			if job.State == JobRunning {
				job.Restarts++
			}
			job.State = JobQueued
			job.Started = nil
			job.Finished = nil
			job.Progress = nil
			job.Result = nil
			job.Error = ""
			r.queued++
			r.queue <- job.ID
			r.appendJournal(&job)
		}
		r.jobs[job.ID] = &job
		r.order = append(r.order, job.ID)
	}
}

// jobSeq parses the numeric suffix of a job ID ("job-000042" → 42).
func jobSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// appendJournal persists a job snapshot (and compacts an overgrown
// journal). Called with r.mu held, which serializes the journal I/O with
// the job API: append ordering must match transition ordering or replay's
// last-record-wins breaks, and Submit must not return 202 before the
// accepted job is durable. The cost is one write+fsync under the lock per
// transition (a handful per job, against seconds of simulation) — if that
// ever dominates on slow disks, the escape hatch is an ordered write queue
// drained outside the lock, at the price of the durability guarantee.
// Journal failures never fail the job; they are counted for /healthz.
//
//pccs:allow-guardedby every caller holds r.mu (replay runs pre-worker); the comment above explains why the lock must already be held
func (r *JobRunner) appendJournal(job *Job) {
	if r.journal == nil {
		return
	}
	if err := r.journal.Append(snapshotJob(job)); err != nil {
		r.journalErrs++
		return
	}
	if r.journal.ShouldCompact() {
		live := make([]Job, 0, len(r.order))
		for _, id := range r.order {
			live = append(live, snapshotJob(r.jobs[id]))
		}
		if err := r.journal.Compact(live); err != nil {
			r.journalErrs++
		}
	}
}

// JournalErrs counts journal writes that failed (surfaced in /healthz).
func (r *JobRunner) JournalErrs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.journalErrs
}

// Submit validates the spec and enqueues a calibration job, returning a
// snapshot of the queued job. It fails fast when the queue is full rather
// than blocking the HTTP handler.
func (r *JobRunner) Submit(spec CalibrateSpec) (Job, error) {
	return r.SubmitWithDeadline(spec, nil)
}

// SubmitWithDeadline is Submit with an optional client deadline: the job's
// construction is abandoned once the deadline passes, and a job still
// queued then never runs. A tripped circuit breaker rejects the submission
// outright — a failing simulator must not keep absorbing the worker pool.
func (r *JobRunner) SubmitWithDeadline(spec CalibrateSpec, deadline *time.Time) (Job, error) {
	if err := spec.validate(); err != nil {
		return Job{}, err
	}
	if r.breaker != nil && r.breaker.Rejecting() {
		return Job{}, fmt.Errorf("server: %w", ErrBreakerOpen)
	}
	return r.enqueue(&Job{Kind: "calibrate", Spec: spec, Deadline: deadline})
}

// SubmitSchedule enqueues an asynchronous scheduling job under the same
// deadline semantics as SubmitWithDeadline. The circuit breaker does not
// gate scheduling: it tracks calibration-simulator health, and a scheduling
// run is mostly model math.
func (r *JobRunner) SubmitSchedule(spec ScheduleSpec, deadline *time.Time) (Job, error) {
	if err := spec.validate(); err != nil {
		return Job{}, err
	}
	private := spec
	return r.enqueue(&Job{Kind: "schedule", SchedSpec: &private, Deadline: deadline})
}

// enqueue assigns an ID to a validated job, makes it durable, and hands it
// to the worker pool, failing fast when the queue is at capacity.
func (r *JobRunner) enqueue(job *Job) (Job, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return Job{}, fmt.Errorf("server: job runner shut down")
	}
	r.seq++
	job.ID = fmt.Sprintf("job-%06d", r.seq)
	job.State = JobQueued
	job.Submitted = r.clk.Now().UTC()
	select {
	case r.queue <- job.ID:
	default:
		r.mu.Unlock()
		return Job{}, fmt.Errorf("server: %w (%d jobs)", ErrQueueFull, cap(r.queue))
	}
	r.jobs[job.ID] = job
	r.order = append(r.order, job.ID)
	r.queued++
	r.appendJournal(job)
	snap := snapshotJob(job)
	r.mu.Unlock()
	return snap, nil
}

// Get returns a snapshot of a job by ID.
func (r *JobRunner) Get(id string) (Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	job, ok := r.jobs[id]
	if !ok {
		return Job{}, false
	}
	return snapshotJob(job), true
}

// List returns snapshots of every job in submission order.
func (r *JobRunner) List() []Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Job, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, snapshotJob(r.jobs[id]))
	}
	return out
}

// Cancel stops a job. A queued job moves straight to cancelled (the worker
// skips it when it surfaces from the queue); a running job has its
// simulation context cancelled and reaches the cancelled state once the
// worker observes the abort. Terminal jobs return ErrJobTerminal, unknown
// IDs ErrUnknownJob.
func (r *JobRunner) Cancel(id string) (Job, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	job, ok := r.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("server: %w %q", ErrUnknownJob, id)
	}
	switch job.State {
	case JobQueued:
		now := r.clk.Now().UTC()
		job.State = JobCancelled
		job.Finished = &now
		job.Error = "cancelled before start"
		r.queued--
		r.appendJournal(job)
	case JobRunning:
		if cancel := r.cancels[id]; cancel != nil {
			cancel()
		}
	default:
		return Job{}, fmt.Errorf("server: %w: job %s is %s", ErrJobTerminal, id, job.State)
	}
	return snapshotJob(job), nil
}

// InFlight counts jobs that are queued or running.
func (r *JobRunner) InFlight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queued + r.running
}

// QueueDepth counts jobs waiting in the queue (not yet running).
func (r *JobRunner) QueueDepth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queued
}

// BreakerState reports the calibration circuit state (closed when no
// breaker is configured).
func (r *JobRunner) BreakerState() BreakerState {
	if r.breaker == nil {
		return BreakerClosed
	}
	return r.breaker.State()
}

// RetryAfter estimates when a queue-full or breaker-rejected submission
// should retry: the backlog's expected drain time at the observed (EWMA)
// per-job service time — or the breaker cooldown, whichever is longer —
// clamped to [1s, 5min].
func (r *JobRunner) RetryAfter() time.Duration {
	r.mu.Lock()
	svc := r.ewmaJobSecs
	queued := r.queued
	r.mu.Unlock()
	if svc <= 0 {
		svc = 30 // no job observed yet: the historical static hint
	}
	slots := r.workers
	if slots < 1 {
		slots = 1
	}
	waves := float64(queued)/float64(slots) + 1
	hint := time.Duration(waves * svc * float64(time.Second))
	if r.breaker != nil {
		if cooldown := r.breaker.CooldownRemaining(); cooldown > hint {
			hint = cooldown
		}
	}
	if hint < time.Second {
		hint = time.Second
	}
	if hint > 5*time.Minute {
		hint = 5 * time.Minute
	}
	return hint
}

// Close stops accepting new jobs and waits — until ctx expires — for the
// workers to drain everything already queued or running.
func (r *JobRunner) Close(ctx context.Context) error {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.queue)
	}
	r.mu.Unlock()
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: job runner drain: %w", ctx.Err())
	}
}

func (r *JobRunner) worker() {
	defer r.wg.Done()
	for id := range r.queue {
		r.run(id)
	}
}

func (r *JobRunner) run(id string) {
	r.mu.Lock()
	job := r.jobs[id]
	if job.State != JobQueued {
		// Cancelled while waiting in the queue channel.
		r.mu.Unlock()
		return
	}
	now := r.clk.Now().UTC()
	// Deadline propagation: a job whose client budget already expired while
	// it sat in the queue is abandoned before any simulation work starts.
	if job.Deadline != nil && now.After(*job.Deadline) {
		job.State = JobFailed
		job.Finished = &now
		job.Error = "deadline exceeded before start"
		r.queued--
		r.appendJournal(job)
		r.mu.Unlock()
		return
	}
	job.State = JobRunning
	job.Started = &now
	r.queued--
	r.running++
	spec := job.Spec
	var schedSpec *ScheduleSpec
	if job.SchedSpec != nil {
		private := *job.SchedSpec
		schedSpec = &private
	}
	isSched := job.Kind == "schedule" && schedSpec != nil
	deadline := effectiveDeadline(job.Deadline, r.jobTimeout, now)
	var ctx context.Context
	var cancel context.CancelFunc
	if deadline != nil {
		ctx, cancel = context.WithDeadline(context.Background(), *deadline)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	r.cancels[id] = cancel
	r.appendJournal(job)
	r.mu.Unlock()
	defer cancel()

	// Circuit breaking: a wedged or failing simulator must not keep
	// swallowing workers, so when the breaker is open a calibration fails
	// fast without touching the backend (in half-open exactly one probe
	// runs). Scheduling jobs bypass the breaker: it tracks the calibration
	// backend's health, not the solver's.
	var berr error
	if !isSched && r.breaker != nil {
		berr = r.breaker.Allow()
	}

	progress := func(completed, total, retries int) {
		r.mu.Lock()
		job.Progress = &JobProgress{Completed: completed, Total: total, Retries: retries}
		r.mu.Unlock()
	}
	var models []core.Params
	var result *ScheduleResult
	var err error
	switch {
	case berr != nil:
		err = berr
	case isSched:
		result, err = r.safeSchedule(ctx, *schedSpec, progress)
	default:
		models, err = r.safeConstruct(ctx, spec, progress)
	}
	var keys []string
	if err == nil && !isSched {
		for _, p := range models {
			if perr := r.reg.Put(p); perr != nil {
				err = fmt.Errorf("server: installing constructed model: %w", perr)
				break
			}
			keys = append(keys, calib.Key(p.Platform, p.PU))
		}
	}

	timedOut := err != nil && errors.Is(ctx.Err(), context.DeadlineExceeded)
	cancelled := !timedOut && err != nil && (errors.Is(err, context.Canceled) || ctx.Err() != nil)
	if !isSched && r.breaker != nil && berr == nil {
		// Feed the breaker the backend's outcome — but not a client
		// cancellation, which says nothing about simulator health.
		switch {
		case timedOut:
			r.breaker.Record(context.DeadlineExceeded)
		case cancelled:
			r.breaker.Forget()
		default:
			r.breaker.Record(err)
		}
	}

	r.mu.Lock()
	delete(r.cancels, id)
	end := r.clk.Now().UTC()
	job.Finished = &end
	r.running--
	switch {
	case timedOut:
		job.State = JobFailed
		job.Error = "deadline exceeded: " + err.Error()
	case cancelled:
		job.State = JobCancelled
		job.Error = "cancelled"
	case err != nil:
		job.State = JobFailed
		job.Error = err.Error()
	default:
		// A successful construction stands even if a cancel raced in at
		// the very end: the models are already installed.
		job.State = JobCompleted
		if isSched {
			job.Result = result
		} else {
			job.Models = keys
		}
	}
	// Observed per-job service time feeds the dynamic Retry-After hint;
	// breaker-rejected and cancelled jobs did no representative work.
	if berr == nil && !cancelled && job.Started != nil {
		secs := end.Sub(*job.Started).Seconds()
		if r.ewmaJobSecs == 0 {
			r.ewmaJobSecs = secs
		} else {
			r.ewmaJobSecs = 0.7*r.ewmaJobSecs + 0.3*secs
		}
	}
	r.appendJournal(job)
	r.mu.Unlock()
}

// effectiveDeadline combines the client deadline with the server-side job
// timeout, returning the earlier of the two (nil = unbounded).
func effectiveDeadline(client *time.Time, timeout time.Duration, now time.Time) *time.Time {
	deadline := client
	if timeout > 0 {
		capAt := now.Add(timeout)
		if deadline == nil || capAt.Before(*deadline) {
			deadline = &capAt
		}
	}
	return deadline
}

// safeConstruct runs the construction with panic isolation: a panicking
// sweep (or an injected chaos panic at the server/job site) fails only this
// job — converted to an error carrying the stack — and the worker stays
// alive for the next one.
func (r *JobRunner) safeConstruct(ctx context.Context, spec CalibrateSpec, progress func(completed, total, retries int)) (models []core.Params, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			models, err = nil, simrun.Recovered(rec)
			if r.onPanic != nil {
				r.onPanic()
			}
		}
	}()
	if ferr := r.faults.Hit(SiteJob); ferr != nil {
		return nil, ferr
	}
	return r.construct(ctx, spec, progress)
}

// safeSchedule is safeConstruct for scheduling jobs: panic isolation plus
// the server/job chaos site, so a panicking search or validation replay
// fails only its own job.
func (r *JobRunner) safeSchedule(ctx context.Context, spec ScheduleSpec, progress func(completed, total, retries int)) (res *ScheduleResult, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, simrun.Recovered(rec)
			if r.onPanic != nil {
				r.onPanic()
			}
		}
	}()
	if ferr := r.faults.Hit(SiteJob); ferr != nil {
		return nil, ferr
	}
	return r.schedule(ctx, spec, progress)
}

// snapshotJob deep-copies the mutable fields so callers never alias the
// runner's internal state.
func snapshotJob(j *Job) Job {
	snap := *j
	snap.Models = append([]string(nil), j.Models...)
	return snap
}
