package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/faultinject"
)

// newChaosServer is newTestServer with a caller-controlled Config (faults,
// queue depth, journal).
func newChaosServer(t *testing.T, cfg Config, construct constructFunc) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	for _, pu := range []string{"CPU", "GPU"} {
		if err := reg.Put(testParams("virtual-xavier", pu)); err != nil {
			t.Fatal(err)
		}
	}
	srv, _ := newServer(cfg, reg, construct, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.jobs.Close(ctx)
	})
	return srv, ts
}

// TestHandlerPanicIsolation arms a one-shot panic at the server/handler
// site: the poisoned request gets a 500 and a pccsd_panics_total increment,
// and the daemon keeps serving — the next identical request succeeds.
func TestHandlerPanicIsolation(t *testing.T) {
	srv, ts := newChaosServer(t, Config{
		Workers: 1, JobQueueDepth: 4,
		Faults: faultinject.MustNew(1,
			faultinject.Rule{Site: "server/handler", Kind: faultinject.Panic, Rate: 1, Count: 1},
		),
	}, fakeConstruct(func(CalibrateSpec) ([]core.Params, error) { return nil, nil }))

	req := PredictRequest{Platform: "virtual-xavier", PU: "GPU", DemandGBps: 88, ExternalGBps: 40}
	resp, body := postJSON(t, ts.URL+"/v1/predict", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned request: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "injected") {
		t.Errorf("500 body hides the injected panic: %s", body)
	}
	if n := srv.metrics.PanicTotal(); n != 1 {
		t.Errorf("pccsd_panics_total = %d, want 1", n)
	}

	resp, body = postJSON(t, ts.URL+"/v1/predict", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after recovered panic: %d %s", resp.StatusCode, body)
	}

	metricsResp, metricsBody := postJSON(t, ts.URL+"/v1/predict", req) // warm another count
	_ = metricsResp
	_ = metricsBody
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := mresp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), `pccsd_panics_total{site="/v1/predict"} 1`) {
		t.Errorf("metrics missing panic counter:\n%s", buf[:n])
	}
}

// TestHandlerInjectedErrorIs500 arms a one-shot error at the handler site:
// the request fails with a 500 carrying the injected error, then service
// resumes.
func TestHandlerInjectedErrorIs500(t *testing.T) {
	_, ts := newChaosServer(t, Config{
		Workers: 1, JobQueueDepth: 4,
		Faults: faultinject.MustNew(1,
			faultinject.Rule{Site: "server/handler", Kind: faultinject.Error, Rate: 1, Count: 1},
		),
	}, fakeConstruct(func(CalibrateSpec) ([]core.Params, error) { return nil, nil }))

	req := PredictRequest{Platform: "virtual-xavier", PU: "GPU", DemandGBps: 88, ExternalGBps: 40}
	resp, body := postJSON(t, ts.URL+"/v1/predict", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/predict", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("service did not resume: %d", resp.StatusCode)
	}
}

// TestQueueFullReturns503WithRetryAfter fills the calibration queue and
// asserts the overload response: 503, Retry-After header, JSON error.
func TestQueueFullReturns503WithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	_, ts := newChaosServer(t, Config{Workers: 1, JobQueueDepth: 1},
		fakeConstruct(func(CalibrateSpec) ([]core.Params, error) {
			<-release
			return nil, nil
		}))
	defer close(release)

	spec := CalibrateSpec{Platform: "virtual-xavier"}
	first, _ := postJSON(t, ts.URL+"/v1/calibrate", spec)
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", first.StatusCode)
	}
	// Keep submitting until the worker has drained nothing and the single
	// queue slot is full; the overflow must be a 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := postJSON(t, ts.URL+"/v1/calibrate", spec)
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The hint is dynamic (EWMA service time × backlog depth), so
			// assert shape, not a hard-coded value: a positive whole number
			// of seconds.
			got := resp.Header.Get("Retry-After")
			if secs, err := strconv.Atoi(got); err != nil || secs < 1 {
				t.Errorf("Retry-After = %q, want a positive integer", got)
			}
			if !strings.Contains(string(body), "queue full") {
				t.Errorf("503 body: %s", body)
			}
			return
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("unexpected status %d: %s", resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
}

// TestJobPanicIsolation: a panicking construction fails only its own job —
// the error records the panic, the panic counter increments, and the same
// worker completes the next job.
func TestJobPanicIsolation(t *testing.T) {
	calls := 0
	srv, ts := newChaosServer(t, Config{Workers: 1, JobQueueDepth: 4},
		fakeConstruct(func(spec CalibrateSpec) ([]core.Params, error) {
			calls++
			if calls == 1 {
				panic("sweep corrupted its arena")
			}
			return []core.Params{testParams(spec.Platform, "GPU")}, nil
		}))

	submit := func() Job {
		t.Helper()
		resp, out := postJSON(t, ts.URL+"/v1/calibrate", CalibrateSpec{Platform: "virtual-xavier", PU: "GPU"})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, out)
		}
		var sub struct {
			Job Job `json:"job"`
		}
		if err := json.Unmarshal(out, &sub); err != nil {
			t.Fatal(err)
		}
		return sub.Job
	}

	first := submit()
	done := waitJob(t, srv.jobs, first.ID, 5*time.Second)
	if done.State != JobFailed || !strings.Contains(done.Error, "panic") {
		t.Fatalf("panicked job = %s (%q)", done.State, done.Error)
	}
	if n := srv.metrics.PanicTotal(); n != 1 {
		t.Errorf("pccsd_panics_total = %d, want 1", n)
	}

	second := submit()
	done = waitJob(t, srv.jobs, second.ID, 5*time.Second)
	if done.State != JobCompleted {
		t.Fatalf("job after worker panic = %s (%q)", done.State, done.Error)
	}
}

// TestInjectedJobFaultFailsJob: an error armed at the server/job site fails
// the job cleanly (no retry at the job layer — retries live per simulation
// point) and the runner keeps serving.
func TestInjectedJobFaultFailsJob(t *testing.T) {
	srv, _ := newChaosServer(t, Config{
		Workers: 1, JobQueueDepth: 4,
		Faults: faultinject.MustNew(1,
			faultinject.Rule{Site: "server/job", Kind: faultinject.Error, Rate: 1, Count: 1},
		),
	}, fakeConstruct(func(spec CalibrateSpec) ([]core.Params, error) {
		return []core.Params{testParams(spec.Platform, "GPU")}, nil
	}))

	first, err := srv.jobs.Submit(CalibrateSpec{Platform: "virtual-xavier", PU: "GPU"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, srv.jobs, first.ID, 5*time.Second)
	if done.State != JobFailed || !strings.Contains(done.Error, "injected") {
		t.Fatalf("job = %s (%q)", done.State, done.Error)
	}
	second, err := srv.jobs.Submit(CalibrateSpec{Platform: "virtual-xavier", PU: "GPU"})
	if err != nil {
		t.Fatal(err)
	}
	if done = waitJob(t, srv.jobs, second.ID, 5*time.Second); done.State != JobCompleted {
		t.Fatalf("job after injected fault = %s (%q)", done.State, done.Error)
	}
}

// TestHealthzDegradedOnFailedReload: corrupting the model artifact and
// hot-reloading must keep the last-good set serving and flip /healthz to
// degraded; restoring the artifact heals it.
func TestHealthzDegradedOnFailedReload(t *testing.T) {
	path := writeModelFile(t, modelSetOf(testParams("virtual-xavier", "GPU")))
	reg, err := OpenRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := newServer(Config{Workers: 1}, reg, fakeConstruct(func(CalibrateSpec) ([]core.Params, error) {
		return nil, nil
	}), nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.Close(context.Background())

	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, good[:len(good)/2], 0o644); err != nil { // truncate = crash-torn artifact
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/models/reload", struct{}{})
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("reload of torn artifact succeeded: %s", body)
	}

	var health struct {
		Status      string       `json:"status"`
		Models      int          `json:"models"`
		ModelReload ReloadHealth `json:"model_reload"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "degraded" {
		t.Errorf("status = %q, want degraded", health.Status)
	}
	if health.Models != 1 {
		t.Errorf("last-good set lost: %d models", health.Models)
	}
	if !health.ModelReload.Degraded || health.ModelReload.FailedReloads != 1 {
		t.Errorf("model_reload = %+v", health.ModelReload)
	}

	// Predictions still come from the last-good set while degraded.
	if resp, _ := postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Platform: "virtual-xavier", PU: "GPU", DemandGBps: 50, ExternalGBps: 20,
	}); resp.StatusCode != http.StatusOK {
		t.Errorf("degraded registry stopped serving: %d", resp.StatusCode)
	}

	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/models/reload", struct{}{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload of restored artifact: %d %s", resp.StatusCode, body)
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" {
		t.Errorf("status after recovery = %q", health.Status)
	}
}

// TestHealthzReportsJournal wires a journal and checks /healthz surfaces it.
func TestHealthzReportsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	journal, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Put(testParams("virtual-xavier", "GPU")); err != nil {
		t.Fatal(err)
	}
	srv, _ := newServer(Config{Workers: 1}, reg, fakeConstruct(func(CalibrateSpec) ([]core.Params, error) {
		return nil, nil
	}), journal, replayed)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	resp, out := postJSON(t, ts.URL+"/v1/calibrate", CalibrateSpec{Platform: "virtual-xavier"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, out)
	}
	var health struct {
		Journal struct {
			Path         string `json:"path"`
			Records      int    `json:"records"`
			AppendErrors int    `json:"append_errors"`
		} `json:"journal"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Journal.Path != path {
		t.Errorf("journal path = %q, want %q", health.Journal.Path, path)
	}
	if health.Journal.Records == 0 {
		t.Error("journal records = 0 after a submit")
	}
	if health.Journal.AppendErrors != 0 {
		t.Errorf("append errors = %d", health.Journal.AppendErrors)
	}
}

func modelSetOf(params ...core.Params) calib.ModelSet {
	set := calib.ModelSet{}
	for _, p := range params {
		set.Put(p)
	}
	return set
}
