package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/cluster"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// allowlistRetry is the Retry-After hint on off-allowlist 403s: the
// allowlist is operator policy, not load, so the hint is a calm constant
// rather than a queue-derived estimate.
const allowlistRetry = 30 * time.Second

// ForwardedByHeader marks a request forwarded by a peer node (value: the
// forwarding node's ID). A forwarded request is never forwarded again —
// one hop reaches a shard owner or fails.
const ForwardedByHeader = "X-Forwarded-By"

// handleClusterLease serves POST /v1/cluster/lease: execute one lease of a
// distributed sweep on this node's executor. The cluster/lease chaos site
// fires first, so seeded fault plans can kill a lease server-side exactly
// as a dying node would.
func (s *Server) handleClusterLease(w http.ResponseWriter, r *http.Request) {
	var req cluster.LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.cfg.Faults.Hit(cluster.SiteLease); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp, err := cluster.ExecuteLease(r.Context(), s.clusterEx, req)
	if err != nil {
		code := http.StatusBadRequest
		if r.Context().Err() != nil {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "%v", err)
		return
	}
	resp.Node = s.cluster.ID()
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterPing serves GET /v1/cluster/ping: liveness plus the load
// signals peers route on (serving tier, admitted in-flight requests,
// registry size).
func (s *Server) handleClusterPing(w http.ResponseWriter, _ *http.Request) {
	lst := s.limiter.Stats()
	writeJSON(w, http.StatusOK, cluster.PingInfo{
		Node:     s.cluster.ID(),
		Tier:     s.degrade.Tier().String(),
		InFlight: lst.InFlight,
		Models:   s.reg.Len(),
	})
}

// handleClusterModels serves POST /v1/cluster/models: merge one replicated
// model version, newer-wins. The ack reports whether the envelope was
// applied and the key's winning version, so a publisher can tell "already
// had it" from "you are stale".
func (s *Server) handleClusterModels(w http.ResponseWriter, r *http.Request) {
	var env cluster.ReplicaEnvelope
	if !decodeBody(w, r, &env) {
		return
	}
	applied, v, err := s.cluster.ApplyReplica(env)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, cluster.ReplicateAck{Node: s.cluster.ID(), Applied: applied, Version: v})
}

// makeClusterConstruct builds the cluster node's constructFunc: the same
// construction sweep as makeConstruct, but fanned out across the cluster
// as leases by a Coordinator, with every constructed model published —
// versioned and replicated to its shard owners — through the node. The
// matrices the models are extracted from are bit-identical to a local
// sweep's (see cluster.Coordinator), so a model constructed by a cluster
// is byte-for-byte the model a single node would have constructed.
func makeClusterConstruct(node *cluster.Node) constructFunc {
	return func(ctx context.Context, spec CalibrateSpec, progress func(completed, total, retries int)) ([]core.Params, error) {
		b, err := platformByName(spec.Platform)
		if err != nil {
			return nil, err
		}
		co := &cluster.Coordinator{Node: node}
		if progress != nil {
			// Lease dispatches are the observable unit of distributed
			// progress; the total is unknown up front (the co-run grid
			// depends on the standalone column), so report granted counts.
			co.OnDispatch = func(string, string, int) {
				st := node.Stats()
				progress(int(st.LeasesGranted), 0, int(st.LeasesReassigned))
			}
		}
		rc, opt := spec.runConfig(), spec.options()
		var models []core.Params
		if spec.PU != "" {
			params, _, err := co.ConstructPU(ctx, b, soc.PUIndexOf(b, spec.PU), rc, opt)
			if err != nil {
				return nil, err
			}
			models = []core.Params{params}
		} else {
			set, err := co.ConstructPlatform(ctx, b, rc, opt)
			if err != nil {
				return nil, err
			}
			for _, key := range sortedModelKeys(set) {
				models = append(models, set[key])
			}
		}
		for _, p := range models {
			if _, err := node.Publish(ctx, p); err != nil {
				return nil, fmt.Errorf("server: publishing constructed model: %w", err)
			}
		}
		return models, nil
	}
}

// forwardPredict proxies a single /v1/predict request to a live owner of
// the model's shard, one hop at most (the ForwardedByHeader breaks loops).
// Owners are tried primary-first; the first answering owner's status,
// degradation marker, and body are relayed verbatim. It reports whether a
// response was written.
func (s *Server) forwardPredict(w http.ResponseWriter, r *http.Request, req PredictRequest) bool {
	if s.cluster == nil || r.Header.Get(ForwardedByHeader) != "" {
		return false
	}
	key := calib.Key(req.Platform, req.PU)
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	for _, owner := range s.cluster.Owners(key) {
		if owner == s.cluster.ID() || !s.cluster.Prober().Up(owner) {
			continue
		}
		url := s.cluster.URL(owner)
		if url == "" {
			continue
		}
		freq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url+"/v1/predict", bytes.NewReader(body))
		if err != nil {
			continue
		}
		freq.Header.Set("Content-Type", "application/json")
		freq.Header.Set(ForwardedByHeader, s.cluster.ID())
		if budget := r.Header.Get(DeadlineHeader); budget != "" {
			freq.Header.Set(DeadlineHeader, budget)
		}
		resp, err := s.peerHTTP.Do(freq)
		if err != nil {
			continue
		}
		answer, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
		if err != nil || resp.StatusCode == http.StatusNotFound {
			// An owner without the model yet (replication in flight): try
			// the next owner rather than relaying the miss.
			continue
		}
		if d := resp.Header.Get(DegradedHeader); d != "" {
			w.Header().Set(DegradedHeader, d)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(answer)
		s.metrics.CountDegraded("/v1/predict-forwarded")
		return true
	}
	return false
}

// clusterHealth is the /healthz cluster block: identity, peer health,
// which registry keys this node owns (primary or replica), and the
// replication lag (queued undelivered envelopes).
func (s *Server) clusterHealth() map[string]any {
	models := s.reg.Snapshot()
	owned := make([]string, 0, len(models))
	primaries := make([]string, 0, len(models))
	for _, key := range sortedModelKeys(models) {
		if s.cluster.Owns(key) {
			owned = append(owned, key)
		}
		if s.cluster.Primary(key) == s.cluster.ID() {
			primaries = append(primaries, key)
		}
	}
	return map[string]any{
		"node":            s.cluster.ID(),
		"replicas":        s.cluster.Replicas(),
		"peers":           s.cluster.Prober().States(),
		"owned_keys":      owned,
		"primary_keys":    primaries,
		"replication_lag": s.cluster.Lag(),
	}
}

// writeClusterMetrics appends the cluster gauges to a /metrics scrape:
// per-peer liveness (labelled, so one dead peer is one flat-lined series)
// and the coordinator's robustness counters.
func (s *Server) writeClusterMetrics(w io.Writer) {
	st := s.cluster.Stats()
	fmt.Fprintf(w, "# HELP pccsd_peer_up Peer liveness as seen by this node's prober (1 up, 0 down).\n")
	fmt.Fprintf(w, "# TYPE pccsd_peer_up gauge\n")
	states := s.cluster.Prober().States()
	sort.Slice(states, func(i, j int) bool { return states[i].ID < states[j].ID })
	for _, ps := range states {
		up := 0
		if ps.Up {
			up = 1
		}
		fmt.Fprintf(w, "pccsd_peer_up{peer=%q} %d\n", ps.ID, up)
	}
	fmt.Fprintf(w, "# HELP pccsd_lease_reassigned_total Sweep leases re-dispatched after a node failure or timeout.\n")
	fmt.Fprintf(w, "# TYPE pccsd_lease_reassigned_total counter\n")
	fmt.Fprintf(w, "pccsd_lease_reassigned_total %d\n", st.LeasesReassigned)
	fmt.Fprintf(w, "# HELP pccsd_hedged_requests_total Duplicate lease dispatches fired for slow shards.\n")
	fmt.Fprintf(w, "# TYPE pccsd_hedged_requests_total counter\n")
	fmt.Fprintf(w, "pccsd_hedged_requests_total %d\n", st.HedgedRequests)
	fmt.Fprintf(w, "# HELP pccsd_replication_lag Replication envelopes queued for unreachable peers.\n")
	fmt.Fprintf(w, "# TYPE pccsd_replication_lag gauge\n")
	fmt.Fprintf(w, "pccsd_replication_lag %d\n", s.cluster.Lag())
}
