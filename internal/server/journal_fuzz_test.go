package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReopen fuzzes the journal's tail-repair path: a file holding a
// valid record prefix followed by arbitrary crash debris. The properties:
//
//   - OpenJournal either repairs the tail or fails — it never silently
//     drops a record from the valid, newline-terminated prefix;
//   - when it fails, the file is left byte-for-byte untouched (diagnosis
//     must see what the crash left, not a half-repair);
//   - after a successful open, the journal accepts appends and a reopen is
//     idempotent: the repaired file replays to the same jobs plus the new
//     append, with no residue of the debris resurfacing.
func FuzzJournalReopen(f *testing.F) {
	validRecord := func(id string, state JobState) []byte {
		line, err := json.Marshal(journalRecord{Job: Job{ID: id, State: state}})
		if err != nil {
			f.Fatal(err)
		}
		return append(line, '\n')
	}
	whole := validRecord("job-000007", JobCompleted)
	f.Add(uint8(0), []byte{})
	f.Add(uint8(3), []byte{})
	f.Add(uint8(2), whole[:len(whole)/2])             // torn mid-record
	f.Add(uint8(1), whole[:len(whole)-1])             // complete record, newline lost
	f.Add(uint8(2), []byte("\n\n"))                   // blank tail lines
	f.Add(uint8(1), []byte("{\"job\":{}}\n"))         // terminated record without an id
	f.Add(uint8(2), []byte("not json\n"))             // terminated garbage
	f.Add(uint8(1), []byte("not json"))               // unterminated garbage
	f.Add(uint8(2), append([]byte(nil), whole...))    // extra whole record in the tail
	f.Add(uint8(1), []byte{0x00, 0xff, 0x00})         // binary debris
	f.Add(uint8(0), []byte("{\"job\":{\"id\":\"x\"")) // torn first record, no prefix

	f.Fuzz(func(t *testing.T, nPrefix uint8, tail []byte) {
		n := int(nPrefix % 5)
		dir := t.TempDir()
		path := filepath.Join(dir, "journal.jsonl")

		var file bytes.Buffer
		prefixIDs := make([]string, 0, n)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("job-%06d", i)
			prefixIDs = append(prefixIDs, id)
			file.Write(validRecord(id, JobQueued))
			if i%2 == 0 { // a second transition exercises last-record-wins
				file.Write(validRecord(id, JobCompleted))
			}
		}
		file.Write(tail)
		if err := os.WriteFile(path, file.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}

		j, jobs, err := OpenJournal(path)
		if err != nil {
			// Refusal is legitimate (terminated corruption), but it must
			// leave the crash evidence exactly as found.
			after, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("journal unreadable after failed open: %v", rerr)
			}
			if !bytes.Equal(after, file.Bytes()) {
				t.Fatalf("failed open modified the journal:\n was %q\n now %q", file.Bytes(), after)
			}
			return
		}
		defer j.Close()

		// Every prefix job must survive the repair. The tail may legally
		// contain further valid records (last-wins can change states), but
		// an ID vanishing means a terminal record was silently dropped.
		seen := make(map[string]bool, len(jobs))
		for _, job := range jobs {
			seen[job.ID] = true
		}
		for _, id := range prefixIDs {
			if !seen[id] {
				t.Fatalf("open dropped prefix job %s (tail %q)", id, tail)
			}
		}

		// The repaired journal must accept appends...
		extra := Job{ID: "job-after-repair", State: JobQueued}
		if err := j.Append(extra); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close after repair: %v", err)
		}

		// ...and reopen idempotently: same jobs plus the append, and a
		// third replay agreeing byte-for-byte with the second.
		j2, jobs2, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("reopen of repaired journal failed: %v", err)
		}
		defer j2.Close()
		want := append(append([]Job(nil), jobs...), extra)
		a, _ := json.Marshal(want)
		b, _ := json.Marshal(jobs2)
		if !bytes.Equal(a, b) {
			t.Fatalf("reopen replayed different jobs:\n want %s\n got  %s", a, b)
		}
		j2.Close()
		j3, jobs3, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("third open failed: %v", err)
		}
		j3.Close()
		c, _ := json.Marshal(jobs3)
		if !bytes.Equal(b, c) {
			t.Fatalf("replay not stable across reopens:\n second %s\n third  %s", b, c)
		}
	})
}
