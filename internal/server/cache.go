package server

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"github.com/processorcentricmodel/pccs/internal/core"
)

// cacheKey identifies one prediction. The full Params value is part of the
// key (the struct is comparable), so replacing a model via Put or Reload
// never serves stale results — entries for superseded parameters simply age
// out of the LRU. phases is the canonical encoding of a multi-phase profile
// ("" for single-demand predictions).
type cacheKey struct {
	params core.Params
	x, y   float64
	phases string
}

// phasesKey canonically encodes a phase profile for cache keying.
func phasesKey(phases []core.Phase) string {
	var b strings.Builder
	for _, ph := range phases {
		b.WriteString(strconv.FormatFloat(ph.Weight, 'g', -1, 64))
		b.WriteByte('@')
		b.WriteString(strconv.FormatFloat(ph.DemandGBps, 'g', -1, 64))
		b.WriteByte(';')
	}
	return b.String()
}

// PredictionCache is a fixed-capacity LRU of prediction results. Schedulers
// re-query identical placements in their inner loop (the consumer shape of
// Dagli & Belviranli's contention-aware scheduler), so even a small cache
// absorbs most of the steady-state traffic.
type PredictionCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List                 // guarded by mu; front = most recently used
	items    map[cacheKey]*list.Element // guarded by mu

	hits, misses uint64 // guarded by mu
}

type cacheEntry struct {
	key cacheKey
	rs  float64
}

// NewPredictionCache builds an LRU holding up to capacity entries; a
// capacity <= 0 disables caching (every Get misses, Put is a no-op).
func NewPredictionCache(capacity int) *PredictionCache {
	return &PredictionCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element),
	}
}

// Get looks up a cached relative speed, promoting the entry on hit.
//
//pccs:hotpath cache hits must not allocate — the point of caching; Put (the miss path) may
func (c *PredictionCache) Get(k cacheKey) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return 0, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rs, true
}

// Put stores a prediction, evicting the least recently used entry when full.
func (c *PredictionCache) Put(k cacheKey, rs float64) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).rs = rs
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, rs: rs})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Stats returns the lifetime hit/miss counters and the current size.
func (c *PredictionCache) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// HitRatio is hits/(hits+misses), 0 before any lookup.
func (c *PredictionCache) HitRatio() float64 {
	hits, misses, _ := c.Stats()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
