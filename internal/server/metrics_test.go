package server

import (
	"strings"
	"testing"
)

func TestMetricsPrometheusFormat(t *testing.T) {
	m := NewMetrics()
	m.Observe("/v1/predict", 200, 0.0002)
	m.Observe("/v1/predict", 200, 0.004)
	m.Observe("/v1/predict", 400, 0.00007)
	m.Observe("/healthz", 200, 99) // beyond the last bucket → +Inf only

	var sb strings.Builder
	m.WritePrometheus(&sb, []Gauge{{Name: "pccsd_models", Help: "Models.", Value: 3}})
	out := sb.String()

	for _, want := range []string{
		`pccsd_requests_total{endpoint="/v1/predict",code="200"} 2`,
		`pccsd_requests_total{endpoint="/v1/predict",code="400"} 1`,
		`pccsd_requests_total{endpoint="/healthz",code="200"} 1`,
		`# TYPE pccsd_request_duration_seconds histogram`,
		`pccsd_request_duration_seconds_count{endpoint="/v1/predict"} 3`,
		`pccsd_request_duration_seconds_bucket{endpoint="/v1/predict",le="+Inf"} 3`,
		`pccsd_request_duration_seconds_bucket{endpoint="/healthz",le="10"} 0`,
		`pccsd_request_duration_seconds_bucket{endpoint="/healthz",le="+Inf"} 1`,
		"# TYPE pccsd_models gauge",
		"pccsd_models 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}

	// Buckets must be cumulative: the 5e-05 bucket holds only the 7e-05
	// observation... (it is below 1e-04 but above 5e-05), check ordering.
	if !strings.Contains(out, `pccsd_request_duration_seconds_bucket{endpoint="/v1/predict",le="5e-05"} 0`) {
		t.Errorf("le=5e-05 bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, `pccsd_request_duration_seconds_bucket{endpoint="/v1/predict",le="0.0001"} 1`) {
		t.Errorf("le=0.0001 bucket not cumulative:\n%s", out)
	}
}

func TestMetricsDeterministicOrder(t *testing.T) {
	m := NewMetrics()
	m.Observe("/b", 200, 0.001)
	m.Observe("/a", 200, 0.001)
	var one, two strings.Builder
	m.WritePrometheus(&one, nil)
	m.WritePrometheus(&two, nil)
	if one.String() != two.String() {
		t.Error("non-deterministic rendering")
	}
	if strings.Index(one.String(), `endpoint="/a"`) > strings.Index(one.String(), `endpoint="/b"`) {
		t.Error("endpoints not sorted")
	}
}
