package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/core"
)

// testParams builds a valid synthetic model (Xavier-GPU-shaped numbers).
func testParams(platform, pu string) core.Params {
	return core.Params{
		PU:          pu,
		Platform:    platform,
		NormalBW:    20,
		IntensiveBW: 100,
		MRMC:        2,
		CBP:         86,
		TBWDC:       120,
		RateN:       1.2,
		PeakBW:      136.5,
	}
}

func writeModelFile(t *testing.T, set calib.ModelSet) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "models.json")
	if err := set.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenRegistry(t *testing.T) {
	set := calib.ModelSet{}
	set.Put(testParams("virtual-xavier", "GPU"))
	set.Put(testParams("virtual-xavier", "CPU"))
	reg, err := OpenRegistry(writeModelFile(t, set))
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Fatalf("Len = %d, want 2", reg.Len())
	}
	if _, err := reg.Get("virtual-xavier", "GPU"); err != nil {
		t.Errorf("Get GPU: %v", err)
	}
	want := []string{"virtual-xavier/CPU", "virtual-xavier/GPU"}
	got := reg.Keys()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Keys = %v, want %v", got, want)
	}
}

func TestOpenRegistryMissingFile(t *testing.T) {
	if _, err := OpenRegistry(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRegistryPut(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Put(testParams("p", "GPU")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put(core.Params{}); err == nil {
		t.Error("empty params accepted")
	}
	bad := testParams("p", "GPU")
	bad.PeakBW = -1
	if err := reg.Put(bad); err == nil {
		t.Error("invalid params accepted")
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d, want 1", reg.Len())
	}
}

func TestRegistryReload(t *testing.T) {
	set := calib.ModelSet{}
	set.Put(testParams("virtual-xavier", "GPU"))
	path := writeModelFile(t, set)
	reg, err := OpenRegistry(path)
	if err != nil {
		t.Fatal(err)
	}

	// Grow the artifact on disk, then hot-reload.
	set.Put(testParams("virtual-xavier", "DLA"))
	if err := set.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Fatalf("after reload Len = %d, want 2", reg.Len())
	}

	// A corrupt artifact must leave the registry untouched.
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err == nil {
		t.Fatal("corrupt reload accepted")
	}
	if reg.Len() != 2 {
		t.Errorf("failed reload mutated registry: Len = %d", reg.Len())
	}

	// No backing file.
	if err := NewRegistry().Reload(); err == nil {
		t.Error("reload without backing file accepted")
	}
}

func TestRegistrySaveRoundTrip(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Put(testParams("virtual-xavier", "GPU")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out", "models.json")
	if err := reg.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := calib.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Get("virtual-xavier", "GPU")
	if err != nil {
		t.Fatal(err)
	}
	if got != testParams("virtual-xavier", "GPU") {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

// TestRegistryConcurrentAccess is the -race regression for the shared
// ModelSet: writers replace models while readers Get/List/Snapshot. A bare
// calib.ModelSet here trips the race detector; the Registry must not.
func TestRegistryConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	pus := []string{"CPU", "GPU", "DLA", "NPU"}
	for _, pu := range pus {
		if err := reg.Put(testParams("virtual-xavier", pu)); err != nil {
			t.Fatal(err)
		}
	}
	const goroutines = 8
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				pu := pus[i%len(pus)]
				switch g % 4 {
				case 0:
					p := testParams("virtual-xavier", pu)
					p.RateN = 1 + float64(i)/1000
					if err := reg.Put(p); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 1:
					if _, err := reg.Get("virtual-xavier", pu); err != nil {
						t.Errorf("Get: %v", err)
						return
					}
				case 2:
					if n := len(reg.Keys()); n != len(pus) {
						t.Errorf("Keys len = %d", n)
						return
					}
				case 3:
					snap := reg.Snapshot()
					// Mutating the snapshot must not touch the registry.
					snap[fmt.Sprintf("scratch/%d", i)] = core.Params{}
				}
			}
		}(g)
	}
	wg.Wait()
	if reg.Len() != len(pus) {
		t.Errorf("Len = %d, want %d", reg.Len(), len(pus))
	}
}
