package server

import (
	"context"
	"errors"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/processorcentricmodel/pccs/internal/clock"
)

// ErrShed is returned by Limiter.Acquire when a request is shed instead of
// admitted: either the waiter queue is full, or this request was the oldest
// waiter when a newer one arrived. Handlers translate it to 503 + a dynamic
// Retry-After.
var ErrShed = errors.New("server: request shed by admission control")

// LimiterConfig tunes the adaptive concurrency limiter.
type LimiterConfig struct {
	// Target is the latency the AIMD loop steers toward: completions under
	// Target grow the limit additively, completions over it (or failures)
	// shrink it multiplicatively.
	Target time.Duration
	// Max is the concurrency ceiling and the optimistic starting limit.
	Max int
	// Min is the floor the multiplicative decrease never goes below.
	Min int
	// MaxWaiters bounds the LIFO wait queue; beyond it the oldest waiter
	// is shed.
	MaxWaiters int
	// Clock supplies time for the AIMD decrease rate-limit and Retry-After
	// estimates (default the real clock; the DST harness injects a virtual
	// one).
	Clock clock.Clock
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.Clock == nil {
		c.Clock = clock.System()
	}
	if c.Target <= 0 {
		c.Target = 250 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = 256
	}
	if c.Min <= 0 {
		c.Min = 2
	}
	if c.Min > c.Max {
		c.Min = c.Max
	}
	if c.MaxWaiters <= 0 {
		c.MaxWaiters = 512
	}
	return c
}

// limitWaiter is one queued request waiting for an admission slot. The
// channel is buffered so granting and shedding never block the releaser.
type limitWaiter struct {
	ready chan error
}

// Limiter is the adaptive concurrency limiter on the serving path: an AIMD
// control loop sizes the in-flight window from observed latency against a
// target (the TCP-congestion-control shape of Netflix's concurrency-limits),
// and excess arrivals wait in a LIFO stack — newest first, because under
// overload the newest request is the one whose client is most likely still
// there, while the oldest waiter has already burned most of its deadline.
// When the stack is full the oldest waiter is shed with ErrShed.
type Limiter struct {
	cfg LimiterConfig
	now func() time.Time // injectable clock for tests

	mu           sync.Mutex
	limit        float64        // guarded by mu; current AIMD window
	inflight     int            // guarded by mu
	waiters      []*limitWaiter // guarded by mu; index 0 oldest, grants pop the newest
	lastDecrease time.Time      // guarded by mu; rate-limits multiplicative decreases
	ewmaLatency  float64        // guarded by mu; seconds, all completions
	sheds        uint64         // guarded by mu; cumulative shed count
}

// NewLimiter builds a limiter starting (optimistically) at cfg.Max.
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{cfg: cfg, now: cfg.Clock.Now, limit: float64(cfg.Max)}
}

// Acquire blocks until the request is admitted, shed (ErrShed), or ctx ends.
// A nil return means the caller owns one in-flight slot and must call
// Release exactly once.
func (l *Limiter) Acquire(ctx context.Context) error {
	l.mu.Lock()
	if l.inflight < int(l.limit) && len(l.waiters) == 0 {
		l.inflight++
		l.mu.Unlock()
		return nil
	}
	if len(l.waiters) >= l.cfg.MaxWaiters {
		// LIFO shedding: evict the oldest waiter to make room for the
		// newcomer — it has waited longest and is closest to its deadline
		// anyway, so shedding it wastes the least remaining budget.
		oldest := l.waiters[0]
		copy(l.waiters, l.waiters[1:])
		l.waiters = l.waiters[:len(l.waiters)-1]
		l.sheds++
		oldest.ready <- ErrShed
	}
	w := &limitWaiter{ready: make(chan error, 1)}
	l.waiters = append(l.waiters, w)
	l.mu.Unlock()

	select {
	case err := <-w.ready:
		return err
	case <-ctx.Done():
		l.abandon(w)
		return ctx.Err()
	}
}

// abandon removes a waiter whose context ended. If a grant raced in before
// the waiter could be removed, the slot it was handed is released again.
func (l *Limiter) abandon(w *limitWaiter) {
	l.mu.Lock()
	for i, queued := range l.waiters {
		if queued == w {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			l.mu.Unlock()
			return
		}
	}
	l.mu.Unlock()
	// Not queued anymore: a grant or shed is already in the channel.
	if err := <-w.ready; err == nil {
		l.releaseSlot()
	}
}

// Release returns the slot and feeds the AIMD loop with the completion's
// latency and outcome. Failures and over-target completions shrink the
// window multiplicatively (at most once per target interval, so one slow
// burst does not collapse it); on-target successes grow it by ~1 per
// window's worth of completions.
func (l *Limiter) Release(latency time.Duration, ok bool) {
	l.mu.Lock()
	l.inflight--
	sec := latency.Seconds()
	if l.ewmaLatency == 0 {
		l.ewmaLatency = sec
	} else {
		l.ewmaLatency = 0.8*l.ewmaLatency + 0.2*sec
	}
	if !ok || latency > l.cfg.Target {
		if now := l.now(); now.Sub(l.lastDecrease) >= l.cfg.Target {
			l.limit = math.Max(float64(l.cfg.Min), l.limit*0.9)
			l.lastDecrease = now
		}
	} else if l.limit < float64(l.cfg.Max) {
		l.limit = math.Min(float64(l.cfg.Max), l.limit+1/l.limit)
	}
	//pccs:allow-lockorder grantLocked's send never blocks: ready is buffered (cap 1) and each waiter is granted or shed at most once
	l.grantLocked()
	l.mu.Unlock()
}

// releaseSlot returns a slot without an AIMD observation (used when an
// abandoned waiter turns out to have been granted concurrently).
func (l *Limiter) releaseSlot() {
	l.mu.Lock()
	l.inflight--
	//pccs:allow-lockorder grantLocked's send never blocks: ready is buffered (cap 1) and each waiter is granted or shed at most once
	l.grantLocked()
	l.mu.Unlock()
}

// grantLocked hands freed capacity to waiters, newest first (LIFO).
//
//pccs:allow-guardedby every caller holds l.mu; split out so Release and releaseSlot share the grant policy
func (l *Limiter) grantLocked() {
	for len(l.waiters) > 0 && l.inflight < int(l.limit) {
		w := l.waiters[len(l.waiters)-1]
		l.waiters = l.waiters[:len(l.waiters)-1]
		l.inflight++
		w.ready <- nil
	}
}

// LimiterStats is a point-in-time snapshot for /healthz and /metrics.
type LimiterStats struct {
	Limit       float64 `json:"limit"`
	InFlight    int     `json:"inflight"`
	Waiting     int     `json:"waiting"`
	Shed        uint64  `json:"shed_total"`
	EWMASeconds float64 `json:"ewma_latency_seconds"`
}

// Stats snapshots the limiter.
func (l *Limiter) Stats() LimiterStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LimiterStats{
		Limit:       l.limit,
		InFlight:    l.inflight,
		Waiting:     len(l.waiters),
		Shed:        l.sheds,
		EWMASeconds: l.ewmaLatency,
	}
}

// RetryAfter estimates when shed traffic should come back: the time the
// current backlog needs to drain at the observed per-request service time,
// clamped to [1s, 60s]. This is the dynamic hint admission-shed 503s carry.
func (l *Limiter) RetryAfter() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	svc := l.ewmaLatency
	if svc <= 0 {
		svc = l.cfg.Target.Seconds()
	}
	window := math.Max(l.limit, 1)
	backlog := float64(l.inflight+len(l.waiters)) + 1
	return clampRetry(time.Duration(svc * backlog / window * float64(time.Second)))
}

// clampRetry bounds a Retry-After hint to [1s, 60s]: never tell a client
// "now" while shedding, never push it out past a minute.
func clampRetry(d time.Duration) time.Duration {
	if d < time.Second {
		return time.Second
	}
	if d > time.Minute {
		return time.Minute
	}
	return d
}

// retrySeconds renders a Retry-After header value (integral seconds,
// rounded up so the hint is never early).
func retrySeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// endpointLimits enforces static per-endpoint in-flight caps: a hard
// bulkhead (no queueing) in front of the adaptive global window, so one
// expensive endpoint cannot monopolize every admission slot.
type endpointLimits struct {
	caps map[string]int // immutable after construction

	mu       sync.Mutex
	inflight map[string]int // guarded by mu
}

func newEndpointLimits(caps map[string]int) *endpointLimits {
	return &endpointLimits{caps: caps, inflight: make(map[string]int)}
}

// acquire claims an endpoint slot; false means the endpoint is at its cap.
// Endpoints without a configured cap are always admitted.
func (e *endpointLimits) acquire(label string) bool {
	limit, capped := e.caps[label]
	if !capped {
		return true
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.inflight[label] >= limit {
		return false
	}
	e.inflight[label]++
	return true
}

func (e *endpointLimits) release(label string) {
	if _, capped := e.caps[label]; !capped {
		return
	}
	e.mu.Lock()
	e.inflight[label]--
	e.mu.Unlock()
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// RateLimiter is a per-client token bucket keyed on API key (X-API-Key)
// or, absent one, the client address: each client refills at rate
// tokens/second up to burst. It protects tenants from each other — a
// single runaway scheduler cannot starve everyone else's admission slots.
type RateLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time // injectable clock for tests

	mu         sync.Mutex
	buckets    map[string]*bucket // guarded by mu
	maxClients int
	limited    uint64 // guarded by mu; cumulative rejections
}

// NewRateLimiter builds a limiter refilling rate tokens/second with the
// given burst capacity (burst < 1 uses max(rate, 1)).
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	b := float64(burst)
	if b < 1 {
		b = math.Max(rate, 1)
	}
	return &RateLimiter{
		rate:       rate,
		burst:      b,
		now:        clock.System().Now,
		buckets:    make(map[string]*bucket),
		maxClients: 10_000,
	}
}

// Allow takes one token from key's bucket. When the bucket is empty it
// returns false and the time until the next token accrues.
func (r *RateLimiter) Allow(key string) (bool, time.Duration) {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.buckets[key]
	if !ok {
		if len(r.buckets) >= r.maxClients {
			r.evictStale(now)
		}
		b = &bucket{tokens: r.burst, last: now}
		r.buckets[key] = b
	}
	b.tokens = math.Min(r.burst, b.tokens+now.Sub(b.last).Seconds()*r.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	r.limited++
	wait := time.Duration((1 - b.tokens) / r.rate * float64(time.Second))
	return false, clampRetry(wait)
}

// Limited reports the cumulative number of rate-limited requests.
func (r *RateLimiter) Limited() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.limited
}

// evictStale drops buckets idle for over a minute (they are full anyway, so
// a re-created bucket behaves identically); called with r.mu held when the
// client map hits its bound.
//
//pccs:allow-guardedby only called from Allow with r.mu held
func (r *RateLimiter) evictStale(now time.Time) {
	for key, b := range r.buckets {
		if now.Sub(b.last) > time.Minute {
			delete(r.buckets, key)
		}
	}
}

// clientKey identifies the client for rate limiting: the API key when the
// request carries one, else the remote host (without the ephemeral port).
func clientKey(r *http.Request) string {
	if key := r.Header.Get("X-API-Key"); key != "" {
		return "key:" + key
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return "addr:" + host
	}
	return "addr:" + r.RemoteAddr
}
