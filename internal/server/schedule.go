package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/faultinject"
	"github.com/processorcentricmodel/pccs/internal/sched"
	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// syncScheduleLimit is the largest batch POST /v1/schedule solves inline:
// small instances are pure model math (microseconds to low milliseconds) and
// answer synchronously; anything bigger — or anything touching the simulator
// (validate) — goes through the async job queue like calibration does.
const syncScheduleLimit = 8

// maxScheduleItems bounds one scheduling request; beyond this the search
// space stops being a per-request workload and becomes a batch-planning run
// the client should split.
const maxScheduleItems = 256

// ScheduleSpec is the wire shape of POST /v1/schedule: a batch of pending
// workloads to co-schedule on a platform's PUs using the PCCS model as the
// cost function.
type ScheduleSpec struct {
	Platform string `json:"platform"`
	// Objective selects the optimization target: "makespan" (default),
	// "throughput", or "fairness".
	Objective string `json:"objective,omitempty"`
	// Workloads are the pending items (see sched.Item for profile sources).
	Workloads []sched.Item `json:"workloads"`
	// Seed drives the beam search's restart shuffles (default 0); the same
	// seed and inputs always produce the same schedule.
	Seed int64 `json:"seed,omitempty"`
	// WorstCase also computes adversarial contention bounds per assignment.
	WorstCase bool `json:"worst_case,omitempty"`
	// Validate replays the chosen schedule on the simulator and reports
	// predicted-vs-measured makespan error. Simulation is slow, so a
	// validating request always runs as an async job.
	Validate bool `json:"validate,omitempty"`
	// Async forces the job-queue path even for small instances.
	Async bool `json:"async,omitempty"`
	// Quick selects the short simulation window for validation replay.
	Quick bool `json:"quick,omitempty"`
	// WarmupCycles/MeasureCycles override the validation windows when > 0.
	WarmupCycles  int64 `json:"warmup_cycles,omitempty"`
	MeasureCycles int64 `json:"measure_cycles,omitempty"`
}

func (s ScheduleSpec) validate() error {
	if _, err := platformByName(s.Platform); err != nil {
		return err
	}
	if s.Objective != "" {
		if _, err := sched.ParseObjective(s.Objective); err != nil {
			return err
		}
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("server: schedule needs at least one workload")
	}
	if len(s.Workloads) > maxScheduleItems {
		return fmt.Errorf("server: %d workloads exceed the per-request limit of %d", len(s.Workloads), maxScheduleItems)
	}
	if s.WarmupCycles < 0 || s.MeasureCycles < 0 {
		return fmt.Errorf("server: negative simulation window")
	}
	return nil
}

// wantsAsync reports whether the request must go through the job queue:
// explicit opt-in, simulator validation, or a batch too large to answer
// within an interactive request budget.
func (s ScheduleSpec) wantsAsync() bool {
	return s.Async || s.Validate || len(s.Workloads) > syncScheduleLimit
}

func (s ScheduleSpec) objective() sched.Objective {
	if s.Objective == "" {
		return sched.Makespan
	}
	obj, err := sched.ParseObjective(s.Objective)
	if err != nil {
		// Unreachable: validate() ran at submission.
		return sched.Makespan
	}
	return obj
}

func (s ScheduleSpec) options(workers int) sched.Options {
	return sched.Options{Objective: s.objective(), Seed: s.Seed, Workers: workers}
}

func (s ScheduleSpec) runConfig() soc.RunConfig {
	rc := soc.DefaultRunConfig()
	if s.Quick {
		rc = soc.QuickRunConfig()
	}
	if s.WarmupCycles > 0 {
		rc.WarmupCycles = s.WarmupCycles
	}
	if s.MeasureCycles > 0 {
		rc.MeasureCycles = s.MeasureCycles
	}
	return rc
}

// ScheduleResult is a scheduling outcome: the chosen schedule plus, on
// request, the adversarial contention bounds and the simulator validation.
type ScheduleResult struct {
	Schedule   *sched.Schedule   `json:"schedule"`
	WorstCase  *sched.WorstCase  `json:"worst_case,omitempty"`
	Validation *sched.Validation `json:"validation,omitempty"`
}

// solveSchedule runs the model-only part of a scheduling request (search +
// optional worst-case bounds) against a registry snapshot. Both the sync
// handler path and the async job path funnel through here.
func solveSchedule(ctx context.Context, models calib.ModelSet, spec ScheduleSpec, workers int) (*ScheduleResult, error) {
	p, err := platformByName(spec.Platform)
	if err != nil {
		return nil, err
	}
	s, err := sched.Solve(ctx, models, p, spec.Workloads, spec.options(workers))
	if err != nil {
		return nil, err
	}
	res := &ScheduleResult{Schedule: s}
	if spec.WorstCase {
		wc, err := sched.WorstCaseBounds(ctx, models, p, spec.Workloads, s)
		if err != nil {
			return nil, err
		}
		res.WorstCase = wc
	}
	return res, nil
}

// scheduleFunc runs one scheduling job. It must honour ctx cancellation and
// may report validation-replay progress. Production uses makeSchedule; tests
// inject fakes to exercise queue mechanics without paying search or
// simulation time.
type scheduleFunc func(ctx context.Context, spec ScheduleSpec, progress func(completed, total, retries int)) (*ScheduleResult, error)

// makeSchedule builds the production scheduleFunc: solve against the live
// registry snapshot and — when the spec asks for validation — replay the
// chosen schedule on a private simrun executor armed with the daemon's chaos
// injector and retry policy, reporting per-placement progress.
func makeSchedule(reg *Registry, faults *faultinject.Injector, retry simrun.RetryPolicy) scheduleFunc {
	return func(ctx context.Context, spec ScheduleSpec, progress func(completed, total, retries int)) (*ScheduleResult, error) {
		res, err := solveSchedule(ctx, reg.Snapshot(), spec, 0)
		if err != nil {
			return nil, err
		}
		if spec.Validate {
			p, err := platformByName(spec.Platform)
			if err != nil {
				return nil, err
			}
			ex := simrun.New(0)
			ex.Faults = faults
			ex.Retry = retry
			if progress != nil {
				ex.OnProgress = func(completed, planned int) {
					progress(completed, planned, ex.Retries())
				}
			}
			v, err := sched.Validate(ctx, ex, p, res.Schedule, spec.runConfig())
			if err != nil {
				return nil, err
			}
			res.Validation = v
		}
		return res, nil
	}
}

// handleSchedule serves POST /v1/schedule. Small model-only requests answer
// synchronously (the solver honours the request context, so the client's
// X-Deadline-Ms budget bounds the search); validating, large, or explicitly
// async requests become jobs behind the same queue, journal, and deadline
// machinery as calibration. Under the overload tier the async path is shed —
// it is deferrable work — while small sync solves keep being answered: they
// cost about as much as a batch prediction.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var spec ScheduleSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	if err := s.platformAllowed(spec.Platform); err != nil {
		s.refuse(w, http.StatusForbidden, allowlistRetry, "%v", err)
		return
	}
	if err := spec.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !spec.wantsAsync() {
		res, err := solveSchedule(r.Context(), s.reg.Snapshot(), spec, s.cfg.Workers)
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, res)
		case r.Context().Err() != nil:
			// The deadline ate the solve: a refusal with retry hints, like
			// every other 503 — the client should come back (or go to a
			// peer), not treat it as a solver failure.
			s.refuse(w, http.StatusServiceUnavailable, s.limiter.RetryAfter(),
				"schedule abandoned: %v", r.Context().Err())
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	if s.degrade.Tier() == TierOverload {
		s.shed(w, "/v1/schedule", "overload", http.StatusServiceUnavailable,
			s.jobs.RetryAfter(), "server overloaded, async scheduling temporarily refused")
		return
	}
	// The client's deadline header bounds the async job too (see
	// handleCalibrate for why it is read from the header, not the context).
	var deadline *time.Time
	if budget, ok := clientBudget(r); ok {
		t := s.clk.Now().Add(budget)
		deadline = &t
	}
	job, err := s.jobs.SubmitSchedule(spec, deadline)
	switch {
	case errors.Is(err, ErrQueueFull):
		s.shed(w, "/v1/schedule", "queue-full", http.StatusServiceUnavailable,
			s.jobs.RetryAfter(), "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]any{"job": job})
	}
}
