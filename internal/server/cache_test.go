package server

import (
	"sync"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/core"
)

func TestCacheHitMissEviction(t *testing.T) {
	c := NewPredictionCache(2)
	p := testParams("x", "GPU")
	k1 := cacheKey{params: p, x: 10, y: 20}
	k2 := cacheKey{params: p, x: 30, y: 20}
	k3 := cacheKey{params: p, x: 50, y: 20}

	if _, ok := c.Get(k1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k1, 90)
	c.Put(k2, 80)
	if rs, ok := c.Get(k1); !ok || rs != 90 {
		t.Fatalf("k1 = %v,%v", rs, ok)
	}
	// k2 is now LRU; inserting k3 evicts it.
	c.Put(k3, 70)
	if _, ok := c.Get(k2); ok {
		t.Error("k2 survived eviction")
	}
	if rs, ok := c.Get(k3); !ok || rs != 70 {
		t.Errorf("k3 = %v,%v", rs, ok)
	}
	hits, misses, size := c.Stats()
	if size != 2 {
		t.Errorf("size = %d, want 2", size)
	}
	if hits != 2 || misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", hits, misses)
	}
	if r := c.HitRatio(); r != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", r)
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewPredictionCache(4)
	k := cacheKey{params: testParams("x", "GPU"), x: 1, y: 2}
	c.Put(k, 50)
	c.Put(k, 60)
	if rs, ok := c.Get(k); !ok || rs != 60 {
		t.Fatalf("got %v,%v want 60,true", rs, ok)
	}
	if _, _, size := c.Stats(); size != 1 {
		t.Errorf("size = %d, want 1", size)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewPredictionCache(-1)
	k := cacheKey{params: testParams("x", "GPU"), x: 1, y: 2}
	c.Put(k, 50)
	if _, ok := c.Get(k); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

// Different models with identical demands must occupy distinct keys: the
// Params value is part of the key, which is what makes Put/Reload safe
// without explicit invalidation.
func TestCacheKeyIncludesParams(t *testing.T) {
	c := NewPredictionCache(8)
	p1 := testParams("x", "GPU")
	p2 := testParams("x", "GPU")
	p2.RateN = 9.9
	c.Put(cacheKey{params: p1, x: 10, y: 20}, 90)
	if _, ok := c.Get(cacheKey{params: p2, x: 10, y: 20}); ok {
		t.Fatal("stale hit across different model parameters")
	}
}

func TestPhasesKeyDistinguishesProfiles(t *testing.T) {
	a := phasesKey([]core.Phase{{Weight: 0.5, DemandGBps: 10}, {Weight: 0.5, DemandGBps: 90}})
	b := phasesKey([]core.Phase{{Weight: 0.5, DemandGBps: 90}, {Weight: 0.5, DemandGBps: 10}})
	if a == b {
		t.Error("phase order lost in key")
	}
	if a != phasesKey([]core.Phase{{Weight: 0.5, DemandGBps: 10}, {Weight: 0.5, DemandGBps: 90}}) {
		t.Error("identical profiles key differently")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewPredictionCache(64)
	p := testParams("x", "GPU")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := cacheKey{params: p, x: float64(i % 100), y: float64(g)}
				if _, ok := c.Get(k); !ok {
					c.Put(k, float64(i))
				}
			}
		}(g)
	}
	wg.Wait()
}
