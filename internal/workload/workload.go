// Package workload provides the benchmark surrogates the reproduction
// validates PCCS on: the ten Rodinia kernels of §4.1 and the DNN inference
// workloads run on the DLA.
//
// The paper's methodology consumes only each kernel's *profiled standalone
// bandwidth demand* (obtained there with NVperf/perf/Valgrind), its access
// locality, and — for multi-phase programs — the per-phase demands and
// standalone time shares. A workload here is exactly that profile: the
// demands are chosen per platform/PU to land each surrogate in the same
// qualitative class the paper reports (hotspot/leukocyte/heartwall compute-
// intensive; the other seven memory-intensive; cfd with one high-BW and
// three medium-BW phases; bfs with poor locality that stresses row-buffer
// hit rates).
package workload

import (
	"fmt"
	"sort"

	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// Class is the paper's coarse workload classification.
type Class int

const (
	// Compute marks compute-intensive kernels (minor contention region).
	Compute Class = iota
	// Memory marks memory-intensive kernels.
	Memory
)

func (c Class) String() string {
	if c == Compute {
		return "compute"
	}
	return "memory"
}

// Phase mirrors core.Phase with a per-PU demand: a fraction of standalone
// execution time spent at a bandwidth demand.
type Phase struct {
	Name   string
	Weight float64
	// Demand maps "platform/pu" to the phase's standalone demand in GB/s.
	Demand map[string]float64
}

// Workload is one benchmark surrogate.
type Workload struct {
	Name  string
	Class Class
	// RunLines is the sequential run length of the kernel's access
	// pattern; small values (bfs) model poor row-buffer locality.
	RunLines int
	// Demand maps "platform/pu" (e.g. "virtual-xavier/GPU") to the
	// profiled standalone bandwidth demand in GB/s.
	Demand map[string]float64
	// Phases is non-empty for multi-phase programs (cfd).
	Phases []Phase
}

// key builds the demand-map key.
func key(platform, pu string) string { return platform + "/" + pu }

// DemandOn returns the workload's standalone demand on a platform PU.
func (w *Workload) DemandOn(platform, pu string) (float64, error) {
	d, ok := w.Demand[key(platform, pu)]
	if !ok {
		return 0, fmt.Errorf("workload: %s has no profile for %s", w.Name, key(platform, pu))
	}
	return d, nil
}

// Kernel builds the simulator kernel for this workload on a platform PU.
func (w *Workload) Kernel(platform, pu string) (soc.Kernel, error) {
	d, err := w.DemandOn(platform, pu)
	if err != nil {
		return soc.Kernel{}, err
	}
	return soc.Kernel{Name: w.Name, DemandGBps: d, RunLines: w.RunLines}, nil
}

// ModelPhases converts the workload's phases into model inputs for a
// platform PU (for core.Params.PredictPhases).
func (w *Workload) ModelPhases(platform, pu string) ([]core.Phase, error) {
	if len(w.Phases) == 0 {
		return nil, fmt.Errorf("workload: %s has no phases", w.Name)
	}
	out := make([]core.Phase, 0, len(w.Phases))
	for _, ph := range w.Phases {
		d, ok := ph.Demand[key(platform, pu)]
		if !ok {
			return nil, fmt.Errorf("workload: %s phase %s has no profile for %s", w.Name, ph.Name, key(platform, pu))
		}
		out = append(out, core.Phase{Name: ph.Name, Weight: ph.Weight, DemandGBps: d})
	}
	return out, nil
}

// Names returns the registry's workload names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get fetches a workload by name.
func Get(name string) (*Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
	return w, nil
}

// MustGet fetches a workload that is known to exist (registry constants).
func MustGet(name string) *Workload {
	w, err := Get(name)
	if err != nil {
		panic(err)
	}
	return w
}

// GPUValidationSet lists the ten Rodinia benchmarks of Figs. 8 and 10.
func GPUValidationSet() []string {
	return []string{
		"hotspot", "leukocyte", "heartwall", "streamcluster", "pathfinder",
		"srad", "kmeans", "btree", "cfd", "bfs",
	}
}

// CPUValidationSet lists the five Rodinia benchmarks of Figs. 9 and 11.
func CPUValidationSet() []string {
	return []string{"hotspot", "streamcluster", "pathfinder", "kmeans", "srad"}
}

// DLAValidationSet lists the DNN workloads of Fig. 12.
func DLAValidationSet() []string { return []string{"vgg19", "resnet50"} }
