package workload

// The registry holds the profiled standalone bandwidth demands of every
// surrogate on every platform PU. Demands follow the qualitative classes
// the paper reports: on Xavier (137 GB/s peak) the compute-intensive trio
// stays well below the CPU/GPU normal-BW boundaries; the memory-intensive
// seven land in the normal-to-intensive range; Snapdragon demands scale
// with its 34 GB/s memory system; the DLA workloads sit at the 8–30 GB/s
// levels the paper observes for inference.
const (
	xcpu = "virtual-xavier/CPU"
	xgpu = "virtual-xavier/GPU"
	xdla = "virtual-xavier/DLA"
	scpu = "virtual-snapdragon/CPU"
	sgpu = "virtual-snapdragon/GPU"
)

var registry = map[string]*Workload{
	"hotspot": {
		Name: "hotspot", Class: Compute, RunLines: 128,
		Demand: map[string]float64{xcpu: 6, xgpu: 18, scpu: 1.6, sgpu: 4.8},
	},
	"leukocyte": {
		Name: "leukocyte", Class: Compute, RunLines: 128,
		Demand: map[string]float64{xcpu: 9, xgpu: 28, scpu: 2.4, sgpu: 7.4},
	},
	"heartwall": {
		Name: "heartwall", Class: Compute, RunLines: 128,
		Demand: map[string]float64{xcpu: 12, xgpu: 38, scpu: 3.2, sgpu: 9.6},
	},
	"streamcluster": {
		Name: "streamcluster", Class: Memory, RunLines: 256,
		Demand: map[string]float64{xcpu: 55, xgpu: 88, scpu: 14, sgpu: 22},
	},
	"pathfinder": {
		Name: "pathfinder", Class: Memory, RunLines: 256,
		Demand: map[string]float64{xcpu: 48, xgpu: 72, scpu: 12, sgpu: 18},
	},
	"srad": {
		Name: "srad", Class: Memory, RunLines: 256,
		Demand: map[string]float64{xcpu: 70, xgpu: 95, scpu: 17, sgpu: 24},
	},
	"kmeans": {
		Name: "kmeans", Class: Memory, RunLines: 64,
		Demand: map[string]float64{xcpu: 62, xgpu: 80, scpu: 15.5, sgpu: 20},
	},
	"btree": {
		Name: "btree", Class: Memory, RunLines: 16,
		Demand: map[string]float64{xcpu: 40, xgpu: 65, scpu: 10, sgpu: 16},
	},
	"bfs": {
		Name: "bfs", Class: Memory, RunLines: 4,
		Demand: map[string]float64{xcpu: 35, xgpu: 58, scpu: 9, sgpu: 14},
	},
	"cfd": {
		Name: "cfd", Class: Memory, RunLines: 256,
		// Whole-program demand is the time-weighted average of the phases
		// (what naive profiling reports; Fig. 13a uses it).
		Demand: map[string]float64{xcpu: 64.3, xgpu: 84.3, scpu: 16.1, sgpu: 21.1},
		Phases: []Phase{
			{Name: "K1", Weight: 0.30, Demand: map[string]float64{
				xcpu: 90, xgpu: 114, scpu: 22.5, sgpu: 28.5}},
			{Name: "K2", Weight: 0.25, Demand: map[string]float64{
				xcpu: 56, xgpu: 76, scpu: 14, sgpu: 19}},
			{Name: "K3", Weight: 0.25, Demand: map[string]float64{
				xcpu: 52, xgpu: 72, scpu: 13, sgpu: 18}},
			{Name: "K4", Weight: 0.20, Demand: map[string]float64{
				xcpu: 50, xgpu: 66, scpu: 12.5, sgpu: 16.5}},
		},
	},

	// DNN inference on the DLA (Fig. 12, Fig. 14): the DLA achieves only
	// 8–30 GB/s standalone (§4.1.2), all within its normal region.
	"resnet50": {
		Name: "resnet50", Class: Memory, RunLines: 256,
		Demand: map[string]float64{xdla: 24},
	},
	"vgg19": {
		Name: "vgg19", Class: Memory, RunLines: 256,
		Demand: map[string]float64{xdla: 30},
	},
	"alexnet": {
		Name: "alexnet", Class: Memory, RunLines: 256,
		Demand: map[string]float64{xdla: 18},
	},
	"mnist": {
		Name: "mnist", Class: Memory, RunLines: 256,
		Demand: map[string]float64{xdla: 8},
	},
}
