package workload

import (
	"math"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/core"
)

func TestDNNLayersRegistered(t *testing.T) {
	for _, name := range []string{"vgg19", "resnet50", "alexnet", "mnist"} {
		layers, err := DNNLayers(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var share float64
		for _, l := range layers {
			if l.TimeShare <= 0 || l.RelDemand <= 0 {
				t.Errorf("%s layer %s: share %v demand %v", name, l.Name, l.TimeShare, l.RelDemand)
			}
			share += l.TimeShare
		}
		if math.Abs(share-1) > 1e-9 {
			t.Errorf("%s: time shares sum to %v", name, share)
		}
		// The layer table must preserve the network's average demand:
		// Σ share·rel = 1.
		var avg float64
		for _, l := range layers {
			avg += l.TimeShare * l.RelDemand
		}
		if math.Abs(avg-1) > 0.01 {
			t.Errorf("%s: time-weighted relative demand %v, want 1", name, avg)
		}
	}
	if _, err := DNNLayers("transformer"); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestDNNPhasesMatchRegisteredAverage(t *testing.T) {
	for _, name := range DLAValidationSet() {
		phases, err := DNNPhases(name, "virtual-xavier", "DLA")
		if err != nil {
			t.Fatal(err)
		}
		w := MustGet(name)
		avg, _ := w.DemandOn("virtual-xavier", "DLA")
		var cp []core.Phase
		for _, ph := range phases {
			cp = append(cp, core.Phase{
				Name: ph.Name, Weight: ph.Weight,
				DemandGBps: ph.Demand["virtual-xavier/DLA"],
			})
		}
		if got := core.AverageDemand(cp); math.Abs(got-avg) > 0.01*avg {
			t.Errorf("%s: phase average %v, registered %v", name, got, avg)
		}
	}
}

func TestDNNPhasesFCHungrierThanConv(t *testing.T) {
	// The FC phases stream weights: they must be the bandwidth-hungry ones.
	phases, err := DNNPhases("vgg19", "virtual-xavier", "DLA")
	if err != nil {
		t.Fatal(err)
	}
	var fc, convMax float64
	for _, ph := range phases {
		d := ph.Demand["virtual-xavier/DLA"]
		if ph.Name == "fc" {
			fc = d
		} else if d > convMax {
			convMax = d
		}
	}
	if fc <= convMax {
		t.Errorf("fc demand %v not above conv max %v", fc, convMax)
	}
}

func TestDNNPhasesErrors(t *testing.T) {
	if _, err := DNNPhases("vgg19", "virtual-snapdragon", "GPU"); err == nil {
		t.Error("vgg19 has no Snapdragon profile; DNNPhases should fail")
	}
	if _, err := DNNPhases("bfs", "virtual-xavier", "GPU"); err == nil {
		t.Error("bfs has no layer table; DNNPhases should fail")
	}
}
