package workload

import (
	"math"
	"reflect"
	"testing"
)

func TestPartitionsEmptySet(t *testing.T) {
	got := Partitions(nil, 3)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("Partitions(nil) = %v, want one empty partition", got)
	}
	if n := CountPartitions(0, 3); n != 1 {
		t.Fatalf("CountPartitions(0, 3) = %d, want 1", n)
	}
}

func TestPartitionsSingleWorkload(t *testing.T) {
	got := Partitions([]string{"srad"}, 3)
	want := [][][]string{{{"srad"}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Partitions(single) = %v, want %v", got, want)
	}
}

func TestPartitionsGroupSizeExceedsCount(t *testing.T) {
	// Group size larger than the workload count (e.g. more PUs than pending
	// work) must cap at the count, not enumerate impossible groups.
	small := Partitions([]string{"a", "b"}, 8)
	capped := Partitions([]string{"a", "b"}, 2)
	if !reflect.DeepEqual(small, capped) {
		t.Fatalf("groupSize > n: got %v, want %v", small, capped)
	}
	want := [][][]string{
		{{"a"}, {"b"}},
		{{"a", "b"}},
	}
	if !reflect.DeepEqual(small, want) {
		t.Fatalf("Partitions(a,b) = %v, want %v", small, want)
	}
}

func TestPartitionsGroupSizeBelowOne(t *testing.T) {
	got := Partitions([]string{"a", "b", "c"}, 0)
	want := [][][]string{{{"a"}, {"b"}, {"c"}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("groupSize 0 should force serial: got %v, want %v", got, want)
	}
}

func TestPartitionsDuplicateSpecs(t *testing.T) {
	// Duplicate names are positional: two copies of the same workload are
	// distinct slots and still enumerate both the shared and split layouts.
	got := Partitions([]string{"srad", "srad"}, 2)
	want := [][][]string{
		{{"srad"}, {"srad"}},
		{{"srad", "srad"}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Partitions(dup) = %v, want %v", got, want)
	}
}

func TestPartitionsSerialFirstAndCanonical(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	parts := Partitions(names, 3)
	// The serial partition (everything alone) must come first: the scheduler
	// uses it as the always-feasible fallback.
	want := [][]string{{"a"}, {"b"}, {"c"}, {"d"}}
	if !reflect.DeepEqual(parts[0], want) {
		t.Fatalf("first partition = %v, want serial %v", parts[0], want)
	}
	seen := map[string]bool{}
	for _, p := range parts {
		// Canonical form: groups ordered by smallest member, members in
		// input order, every name present exactly once.
		var flat []string
		for gi, g := range p {
			if len(g) == 0 {
				t.Fatalf("empty group in %v", p)
			}
			if gi > 0 && p[gi-1][0] >= g[0] {
				t.Fatalf("groups out of canonical order in %v", p)
			}
			flat = append(flat, g...)
		}
		if len(flat) != len(names) {
			t.Fatalf("partition %v does not cover input", p)
		}
		key := ""
		for _, g := range p {
			key += "|"
			for _, m := range g {
				key += m + ","
			}
		}
		if seen[key] {
			t.Fatalf("duplicate partition %v", p)
		}
		seen[key] = true
	}
	if n := CountPartitions(len(names), 3); n != int64(len(parts)) {
		t.Fatalf("CountPartitions = %d, enumerated %d", n, len(parts))
	}
}

func TestCountPartitionsMatchesEnumeration(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	for g := 1; g <= 6; g++ {
		want := int64(len(Partitions(names, g)))
		if got := CountPartitions(len(names), g); got != want {
			t.Fatalf("CountPartitions(6, %d) = %d, want %d", g, got, want)
		}
	}
	// g = n: P(n) is the Bell number; Bell(6) = 203.
	if got := CountPartitions(6, 6); got != 203 {
		t.Fatalf("CountPartitions(6, 6) = %d, want Bell(6)=203", got)
	}
}

func TestCountPartitionsSaturates(t *testing.T) {
	if got := CountPartitions(200, 200); got != math.MaxInt64 {
		t.Fatalf("CountPartitions(200,200) = %d, want saturation", got)
	}
}
