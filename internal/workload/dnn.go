package workload

import "fmt"

// DNN layer-sequence models. The registry's DLA entries carry the
// whole-network average demand the DLA experiments use; this file derives
// per-layer phase profiles from coarse architectural layer tables, so the
// multi-phase machinery (§3.2) can be applied to inference the same way it
// is applied to cfd: convolution layers reuse activations heavily (high
// arithmetic intensity → lower bandwidth demand per unit time), while
// fully-connected layers stream their weight matrices once (low intensity →
// the bandwidth-hungry phases).

// Layer is one coarse layer group of a network.
type Layer struct {
	Name string
	// TimeShare is the fraction of standalone inference time spent in the
	// group.
	TimeShare float64
	// RelDemand is the group's bandwidth demand relative to the network's
	// average demand (1.0 = average).
	RelDemand float64
}

// dnnLayers holds coarse layer tables per network. Shares and relative
// demands follow the familiar structure of these networks: VGG-19 spends
// most time in convolutions but its three enormous FC layers dominate
// traffic; ResNet-50 is convolution-heavy with a single small FC; AlexNet
// splits between large early convolutions and two big FC layers; the MNIST
// network is small everywhere.
var dnnLayers = map[string][]Layer{
	"vgg19": {
		{Name: "conv-early", TimeShare: 0.35, RelDemand: 0.55},
		{Name: "conv-late", TimeShare: 0.40, RelDemand: 0.85},
		{Name: "fc", TimeShare: 0.25, RelDemand: 1.87},
	},
	"resnet50": {
		{Name: "stem", TimeShare: 0.10, RelDemand: 0.80},
		{Name: "residual-blocks", TimeShare: 0.80, RelDemand: 0.95},
		{Name: "fc", TimeShare: 0.10, RelDemand: 1.60},
	},
	"alexnet": {
		{Name: "conv", TimeShare: 0.55, RelDemand: 0.70},
		{Name: "fc", TimeShare: 0.45, RelDemand: 1.37},
	},
	"mnist": {
		{Name: "conv", TimeShare: 0.70, RelDemand: 0.90},
		{Name: "fc", TimeShare: 0.30, RelDemand: 1.23},
	},
}

// DNNLayers returns the coarse layer table of a registered network.
func DNNLayers(name string) ([]Layer, error) {
	layers, ok := dnnLayers[name]
	if !ok {
		return nil, fmt.Errorf("workload: no layer table for %q", name)
	}
	return layers, nil
}

// DNNPhases derives a per-layer phase profile for a network on a platform
// PU from its layer table and registered average demand. The time-weighted
// average of the phase demands equals the registered whole-network demand,
// so flat (average-BW) and phase-wise predictions are comparable exactly as
// in the cfd study (Fig. 13).
func DNNPhases(name, platform, pu string) ([]Phase, error) {
	w, err := Get(name)
	if err != nil {
		return nil, err
	}
	avg, err := w.DemandOn(platform, pu)
	if err != nil {
		return nil, err
	}
	layers, err := DNNLayers(name)
	if err != nil {
		return nil, err
	}
	phases := make([]Phase, 0, len(layers))
	for _, l := range layers {
		phases = append(phases, Phase{
			Name:   l.Name,
			Weight: l.TimeShare,
			Demand: map[string]float64{key(platform, pu): avg * l.RelDemand},
		})
	}
	return phases, nil
}
