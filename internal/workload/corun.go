package workload

import "fmt"

// CorunWorkload is one three-PU co-run of the paper's Table 8: a Rodinia
// benchmark on the CPU, one on the GPU, and a DNN on the DLA.
type CorunWorkload struct {
	ID  string
	CPU string
	GPU string
	DLA string
}

// Table8 lists the eleven representative workloads (A–K) of the paper's
// co-location study (§4.2, Fig. 14).
func Table8() []CorunWorkload {
	return []CorunWorkload{
		{ID: "A", CPU: "streamcluster", GPU: "pathfinder", DLA: "resnet50"},
		{ID: "B", CPU: "streamcluster", GPU: "pathfinder", DLA: "vgg19"},
		{ID: "C", CPU: "streamcluster", GPU: "leukocyte", DLA: "alexnet"},
		{ID: "D", CPU: "streamcluster", GPU: "srad", DLA: "resnet50"},
		{ID: "E", CPU: "pathfinder", GPU: "streamcluster", DLA: "vgg19"},
		{ID: "F", CPU: "pathfinder", GPU: "heartwall", DLA: "alexnet"},
		{ID: "G", CPU: "kmeans", GPU: "btree", DLA: "resnet50"},
		{ID: "H", CPU: "kmeans", GPU: "srad", DLA: "vgg19"},
		{ID: "I", CPU: "hotspot", GPU: "bfs", DLA: "alexnet"},
		{ID: "J", CPU: "srad", GPU: "pathfinder", DLA: "resnet50"},
		{ID: "K", CPU: "srad", GPU: "leukocyte", DLA: "vgg19"},
	}
}

// On returns the workload placed on the given PU name (CPU/GPU/DLA).
func (c CorunWorkload) On(pu string) (*Workload, error) {
	switch pu {
	case "CPU":
		return Get(c.CPU)
	case "GPU":
		return Get(c.GPU)
	case "DLA":
		return Get(c.DLA)
	default:
		return nil, fmt.Errorf("workload: co-run %s has no PU %q", c.ID, pu)
	}
}
