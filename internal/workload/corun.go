package workload

import (
	"fmt"
	"math"
)

// CorunWorkload is one three-PU co-run of the paper's Table 8: a Rodinia
// benchmark on the CPU, one on the GPU, and a DNN on the DLA.
type CorunWorkload struct {
	ID  string
	CPU string
	GPU string
	DLA string
}

// Table8 lists the eleven representative workloads (A–K) of the paper's
// co-location study (§4.2, Fig. 14).
func Table8() []CorunWorkload {
	return []CorunWorkload{
		{ID: "A", CPU: "streamcluster", GPU: "pathfinder", DLA: "resnet50"},
		{ID: "B", CPU: "streamcluster", GPU: "pathfinder", DLA: "vgg19"},
		{ID: "C", CPU: "streamcluster", GPU: "leukocyte", DLA: "alexnet"},
		{ID: "D", CPU: "streamcluster", GPU: "srad", DLA: "resnet50"},
		{ID: "E", CPU: "pathfinder", GPU: "streamcluster", DLA: "vgg19"},
		{ID: "F", CPU: "pathfinder", GPU: "heartwall", DLA: "alexnet"},
		{ID: "G", CPU: "kmeans", GPU: "btree", DLA: "resnet50"},
		{ID: "H", CPU: "kmeans", GPU: "srad", DLA: "vgg19"},
		{ID: "I", CPU: "hotspot", GPU: "bfs", DLA: "alexnet"},
		{ID: "J", CPU: "srad", GPU: "pathfinder", DLA: "resnet50"},
		{ID: "K", CPU: "srad", GPU: "leukocyte", DLA: "vgg19"},
	}
}

// On returns the workload placed on the given PU name (CPU/GPU/DLA).
func (c CorunWorkload) On(pu string) (*Workload, error) {
	switch pu {
	case "CPU":
		return Get(c.CPU)
	case "GPU":
		return Get(c.GPU)
	case "DLA":
		return Get(c.DLA)
	default:
		return nil, fmt.Errorf("workload: co-run %s has no PU %q", c.ID, pu)
	}
}

// Partitions enumerates every way to split the listed workloads into
// unordered co-run groups of at most groupSize members each. Entries are
// treated positionally, so duplicate names yield duplicate slots (two
// copies of "srad" can land in the same group or in different groups).
// The enumeration is canonical and deterministic: within a partition,
// groups appear ordered by their smallest member index and members keep
// input order; across partitions, the group containing the first workload
// grows from smallest to largest. An empty input yields one empty
// partition. groupSize values below 1 are treated as 1 (serial execution);
// values above len(names) are capped at len(names).
func Partitions(names []string, groupSize int) [][][]string {
	n := len(names)
	if groupSize < 1 {
		groupSize = 1
	}
	if groupSize > n && n > 0 {
		groupSize = n
	}
	var out [][][]string
	var groups [][]int
	var recurse func(remaining []int)
	recurse = func(remaining []int) {
		if len(remaining) == 0 {
			part := make([][]string, len(groups))
			for i, g := range groups {
				members := make([]string, len(g))
				for j, idx := range g {
					members[j] = names[idx]
				}
				part[i] = members
			}
			out = append(out, part)
			return
		}
		first, rest := remaining[0], remaining[1:]
		for _, mates := range subsetsUpTo(rest, groupSize-1) {
			group := append([]int{first}, mates...)
			groups = append(groups, group)
			recurse(without(rest, mates))
			groups = groups[:len(groups)-1]
		}
	}
	recurse(indexRange(n))
	return out
}

// CountPartitions reports how many partitions Partitions(names, groupSize)
// would enumerate for len(names) == n, without materializing them. It obeys
// the recurrence P(0)=1, P(n) = Σ_{s=1..min(g,n)} C(n-1, s-1)·P(n-s): the
// first remaining workload anchors a group and picks its s-1 group mates.
// The count saturates at math.MaxInt64 instead of overflowing.
func CountPartitions(n, groupSize int) int64 {
	if n <= 0 {
		return 1
	}
	if groupSize < 1 {
		groupSize = 1
	}
	if groupSize > n {
		groupSize = n
	}
	counts := make([]int64, n+1)
	counts[0] = 1
	for m := 1; m <= n; m++ {
		var total int64
		for s := 1; s <= groupSize && s <= m; s++ {
			term := satMul(choose(int64(m-1), int64(s-1)), counts[m-s])
			total = satAdd(total, term)
		}
		counts[m] = total
	}
	return counts[n]
}

// subsetsUpTo enumerates subsets of elems with at most max members, ordered
// by size ascending, then lexicographically by element position. The empty
// subset always comes first, which makes the serial partition (every
// workload alone) the first one Partitions emits.
func subsetsUpTo(elems []int, max int) [][]int {
	out := [][]int{{}}
	for size := 1; size <= max && size <= len(elems); size++ {
		combo := make([]int, size)
		var build func(start, depth int)
		build = func(start, depth int) {
			if depth == size {
				out = append(out, append([]int(nil), combo...))
				return
			}
			for i := start; i <= len(elems)-(size-depth); i++ {
				combo[depth] = elems[i]
				build(i+1, depth+1)
			}
		}
		build(0, 0)
	}
	return out
}

// without returns elems minus the (sorted-by-position) picked values.
func without(elems, picked []int) []int {
	out := make([]int, 0, len(elems)-len(picked))
	j := 0
	for _, e := range elems {
		if j < len(picked) && picked[j] == e {
			j++
			continue
		}
		out = append(out, e)
	}
	return out
}

func indexRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// choose computes the binomial coefficient C(n, k), saturating at
// math.MaxInt64.
func choose(n, k int64) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := int64(1); i <= k; i++ {
		c = satMul(c, n-k+i)
		c /= i
	}
	return c
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}
