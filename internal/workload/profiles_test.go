package workload

import (
	"testing"

	"github.com/processorcentricmodel/pccs/internal/soc"
)

// Consistency checks on the profiled demand database.

func TestDemandsFitTheirPlatforms(t *testing.T) {
	peaks := map[string]float64{
		"virtual-xavier":     soc.VirtualXavier().PeakGBps(),
		"virtual-snapdragon": soc.VirtualSnapdragon().PeakGBps(),
	}
	for _, name := range Names() {
		w := MustGet(name)
		for key, d := range w.Demand {
			platform := key[:len(key)-4] // strip "/CPU" etc.
			for p, peak := range peaks {
				if platform == p && d > peak {
					t.Errorf("%s on %s demands %.1f GB/s, above the %.1f peak", name, key, d, peak)
				}
			}
		}
		for _, ph := range w.Phases {
			for key, d := range ph.Demand {
				if d <= 0 {
					t.Errorf("%s phase %s on %s: demand %v", name, ph.Name, key, d)
				}
			}
		}
	}
}

func TestSnapdragonDemandsScaledBelowXavier(t *testing.T) {
	// The same benchmark demands less bandwidth on the narrower Snapdragon
	// (lower core counts and memory bandwidth), as the paper observes for
	// hotspot (§4.1.2).
	for _, name := range GPUValidationSet() {
		w := MustGet(name)
		xd, err1 := w.DemandOn("virtual-xavier", "GPU")
		sd, err2 := w.DemandOn("virtual-snapdragon", "GPU")
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", name, err1, err2)
		}
		if sd >= xd {
			t.Errorf("%s: Snapdragon demand %.1f not below Xavier's %.1f", name, sd, xd)
		}
	}
}

func TestPoorLocalityWorkloadsMarked(t *testing.T) {
	// The paper singles out bfs (and to a lesser degree kmeans/btree) for
	// poor locality that stresses row-buffer hit rates; the surrogates must
	// encode that with short sequential runs.
	if bfs := MustGet("bfs"); bfs.RunLines > 8 {
		t.Errorf("bfs RunLines = %d, want short (poor locality)", bfs.RunLines)
	}
	if sc := MustGet("streamcluster"); sc.RunLines < 64 {
		t.Errorf("streamcluster RunLines = %d, want long (streaming)", sc.RunLines)
	}
	if MustGet("btree").RunLines >= MustGet("srad").RunLines {
		t.Error("btree should have poorer locality than srad")
	}
}

func TestDNNDemandOrdering(t *testing.T) {
	// VGG-19 moves more data per inference than ResNet-50, which moves more
	// than AlexNet and MNIST — the relative ordering Fig. 12/14 relies on.
	order := []string{"mnist", "alexnet", "resnet50", "vgg19"}
	prev := 0.0
	for _, name := range order {
		d, err := MustGet(name).DemandOn("virtual-xavier", "DLA")
		if err != nil {
			t.Fatal(err)
		}
		if d <= prev {
			t.Errorf("%s demand %.1f not above previous %.1f", name, d, prev)
		}
		prev = d
	}
}
