package workload

import (
	"math"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/core"
)

func TestRegistryComplete(t *testing.T) {
	if got := len(Names()); got != 17 {
		t.Errorf("registry has %d workloads, want 17 (10 Rodinia + 4 DNN + 3 NPU tile)", got)
	}
	for _, n := range Names() {
		w := MustGet(n)
		if w.Name != n {
			t.Errorf("workload %q has Name %q", n, w.Name)
		}
		if w.RunLines < 1 {
			t.Errorf("%s: RunLines %d", n, w.RunLines)
		}
		if len(w.Demand) == 0 {
			t.Errorf("%s: no demand profiles", n)
		}
		for k, d := range w.Demand {
			if d <= 0 {
				t.Errorf("%s: demand %v on %s", n, d, k)
			}
		}
	}
}

func TestValidationSetsExist(t *testing.T) {
	for _, n := range GPUValidationSet() {
		w := MustGet(n)
		if _, err := w.DemandOn("virtual-xavier", "GPU"); err != nil {
			t.Errorf("GPU set %s: %v", n, err)
		}
		if _, err := w.DemandOn("virtual-snapdragon", "GPU"); err != nil {
			t.Errorf("Snapdragon GPU set %s: %v", n, err)
		}
	}
	for _, n := range CPUValidationSet() {
		if _, err := MustGet(n).DemandOn("virtual-xavier", "CPU"); err != nil {
			t.Errorf("CPU set %s: %v", n, err)
		}
	}
	for _, n := range DLAValidationSet() {
		if _, err := MustGet(n).DemandOn("virtual-xavier", "DLA"); err != nil {
			t.Errorf("DLA set %s: %v", n, err)
		}
	}
	if len(GPUValidationSet()) != 10 || len(CPUValidationSet()) != 5 {
		t.Error("validation set sizes do not match the paper (10 GPU, 5 CPU)")
	}
}

func TestComputeKernelsDemandLessThanMemoryKernels(t *testing.T) {
	// The paper's classification: hotspot, leukocyte, heartwall are
	// compute-intensive; the rest memory-intensive. On every common PU the
	// compute trio must demand less bandwidth than every memory kernel.
	maxCompute, minMemory := 0.0, math.Inf(1)
	for _, n := range GPUValidationSet() {
		w := MustGet(n)
		d, err := w.DemandOn("virtual-xavier", "GPU")
		if err != nil {
			t.Fatal(err)
		}
		if w.Class == Compute && d > maxCompute {
			maxCompute = d
		}
		if w.Class == Memory && d < minMemory {
			minMemory = d
		}
	}
	if maxCompute >= minMemory {
		t.Errorf("compute max %.1f ≥ memory min %.1f", maxCompute, minMemory)
	}
}

func TestCFDPhases(t *testing.T) {
	cfd := MustGet("cfd")
	if len(cfd.Phases) != 4 {
		t.Fatalf("cfd has %d phases, want 4", len(cfd.Phases))
	}
	var totalW float64
	for _, ph := range cfd.Phases {
		totalW += ph.Weight
	}
	if math.Abs(totalW-1) > 1e-9 {
		t.Errorf("cfd phase weights sum to %v, want 1", totalW)
	}
	// K1 is the high-BW phase: strictly above the others on every PU.
	phases, err := cfd.ModelPhases("virtual-xavier", "GPU")
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range phases[1:] {
		if phases[0].DemandGBps <= ph.DemandGBps {
			t.Errorf("K1 (%.1f) not above %s (%.1f)", phases[0].DemandGBps, ph.Name, ph.DemandGBps)
		}
	}
	// The whole-program demand equals the time-weighted phase average,
	// which is what naive profiling reports (Fig. 13a's input).
	avg := core.AverageDemand(phases)
	flat, _ := cfd.DemandOn("virtual-xavier", "GPU")
	if math.Abs(avg-flat) > 0.5 {
		t.Errorf("cfd flat demand %.2f != phase average %.2f", flat, avg)
	}
}

func TestKernelConstruction(t *testing.T) {
	k, err := MustGet("bfs").Kernel("virtual-xavier", "GPU")
	if err != nil {
		t.Fatal(err)
	}
	if k.DemandGBps != 58 || k.RunLines != 4 {
		t.Errorf("bfs kernel = %+v", k)
	}
	if _, err := MustGet("bfs").Kernel("virtual-xavier", "DLA"); err == nil {
		t.Error("bfs has no DLA profile; Kernel should fail")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("quake3"); err == nil {
		t.Error("unknown workload accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGet(unknown) did not panic")
		}
	}()
	MustGet("quake3")
}

func TestModelPhasesErrors(t *testing.T) {
	if _, err := MustGet("bfs").ModelPhases("virtual-xavier", "GPU"); err == nil {
		t.Error("phase-less workload should error")
	}
	if _, err := MustGet("cfd").ModelPhases("virtual-xavier", "DLA"); err == nil {
		t.Error("missing phase profile should error")
	}
}

func TestTable8(t *testing.T) {
	rows := Table8()
	if len(rows) != 11 {
		t.Fatalf("Table8 has %d workloads, want 11 (A–K)", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.ID] {
			t.Errorf("duplicate workload ID %s", r.ID)
		}
		seen[r.ID] = true
		for _, pu := range []string{"CPU", "GPU", "DLA"} {
			w, err := r.On(pu)
			if err != nil {
				t.Errorf("workload %s PU %s: %v", r.ID, pu, err)
				continue
			}
			platformPU := "virtual-xavier/" + pu
			if _, ok := w.Demand[platformPU]; !ok {
				t.Errorf("workload %s: %s has no profile for %s", r.ID, w.Name, platformPU)
			}
		}
		if _, err := r.On("NPU"); err == nil {
			t.Errorf("workload %s: unknown PU accepted", r.ID)
		}
	}
}
