package workload

// Tile-granular NPU inference profiles (ONNXim-style) for the virtual-npu
// platform: an NPU core alternates weight-tile loads (high bandwidth,
// DMA-like), on-chip compute over the loaded tiles (low bandwidth), and
// activation writeback (medium bandwidth). The phases reuse the paper's
// multi-phase machinery (§3.2) at tile granularity — the per-phase demand
// spread is far wider than cfd's, which is what makes naive average-demand
// profiles inadequate on NPUs.
const (
	ncpu  = "virtual-npu/CPU"
	nnpu0 = "virtual-npu/NPU0"
	nnpu1 = "virtual-npu/NPU1"
)

// npuDemand profiles a tile workload identically on both NPU cores (the
// cores are homogeneous) and optionally on the host CPU.
func npuDemand(npu, cpu float64) map[string]float64 {
	d := map[string]float64{nnpu0: npu, nnpu1: npu}
	if cpu > 0 {
		d[ncpu] = cpu
	}
	return d
}

var npuRegistry = map[string]*Workload{
	// ResNet-50 tiles: conv weight tiles dominate traffic; GEMM compute
	// runs mostly out of the tile buffers.
	"npu-resnet50-tiles": {
		Name: "npu-resnet50-tiles", Class: Memory, RunLines: 384,
		Demand: npuDemand(52.6, 38),
		Phases: []Phase{
			{Name: "wtile", Weight: 0.35, Demand: npuDemand(86, 60)},
			{Name: "gemm", Weight: 0.40, Demand: npuDemand(22, 18)},
			{Name: "wback", Weight: 0.25, Demand: npuDemand(55, 39)},
		},
	},
	// BERT-base tiles: QKV weight streaming is intensive, attention score
	// compute is cheap, the FFN tiles push hardest.
	"npu-bert-tiles": {
		Name: "npu-bert-tiles", Class: Memory, RunLines: 384,
		Demand: npuDemand(65.8, 0),
		Phases: []Phase{
			{Name: "qkv", Weight: 0.30, Demand: npuDemand(78, 0)},
			{Name: "attn", Weight: 0.35, Demand: npuDemand(34, 0)},
			{Name: "ffn", Weight: 0.35, Demand: npuDemand(87, 0)},
		},
	},
	// MobileNetV2 tiles: depthwise stages are compute-bound, pointwise
	// 1x1 convolutions stream weights.
	"npu-mobilenet-tiles": {
		Name: "npu-mobilenet-tiles", Class: Compute, RunLines: 256,
		Demand: npuDemand(33.5, 24),
		Phases: []Phase{
			{Name: "dwise", Weight: 0.50, Demand: npuDemand(17, 12)},
			{Name: "pwise", Weight: 0.30, Demand: npuDemand(62, 45)},
			{Name: "io", Weight: 0.20, Demand: npuDemand(32, 23)},
		},
	},
}

func init() {
	for name, w := range npuRegistry {
		if _, dup := registry[name]; dup {
			panic("workload: duplicate NPU workload " + name)
		}
		registry[name] = w
	}
}
