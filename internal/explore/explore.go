// Package explore implements the pre-silicon design-space exploration of
// §3.4/§4.3: given a slowdown model, a kernel's standalone performance
// model across a design knob (PU clock frequency or core count), and an
// expected external bandwidth demand, pick the cheapest configuration that
// keeps the kernel's co-run slowdown within budget.
package explore

import (
	"fmt"
	"math"
	"sort"
)

// Predictor is any co-run slowdown model: achieved relative speed (percent)
// for a kernel demanding x GB/s under external demand y GB/s. Both
// core.Params (PCCS) and gables.Model satisfy it.
type Predictor interface {
	Predict(x, y float64) float64
}

// FreqModel is the standalone performance model of one kernel on one PU
// across the PU clock: below the crossover the kernel is compute-bound and
// its bandwidth demand scales linearly with frequency; above it the kernel
// is memory-bound and demand saturates. This is exactly the behaviour the
// paper exploits for streamcluster on the Xavier GPU: "its standalone
// performance shows no drop until the frequency goes below 900MHz; there is
// hence no change in its memory bandwidth demands" (§4.3).
type FreqModel struct {
	Kernel string
	// MemBoundGBps is the saturated bandwidth demand.
	MemBoundGBps float64
	// CrossoverMHz is the clock above which demand saturates.
	CrossoverMHz float64
	// MaxMHz is the PU's top clock.
	MaxMHz float64
}

// Validate reports whether the model is usable.
func (m FreqModel) Validate() error {
	if m.MemBoundGBps <= 0 || m.CrossoverMHz <= 0 || m.MaxMHz < m.CrossoverMHz {
		return fmt.Errorf("explore: invalid frequency model %+v", m)
	}
	return nil
}

// DemandAt is the kernel's standalone bandwidth demand at the given clock.
func (m FreqModel) DemandAt(mhz float64) float64 {
	if mhz <= 0 {
		return 0
	}
	if mhz >= m.CrossoverMHz {
		return m.MemBoundGBps
	}
	return m.MemBoundGBps * mhz / m.CrossoverMHz
}

// RelStandalone is standalone performance at the clock relative to the top
// clock; for a memory-bound kernel performance tracks achieved bandwidth.
func (m FreqModel) RelStandalone(mhz float64) float64 {
	return m.DemandAt(mhz) / m.MemBoundGBps
}

// StreamclusterXavierGPU is the case-study kernel of §4.3 as the paper
// frames it: memory-bound above 900 MHz at the profiled 88 GB/s demand, on
// the 1377 MHz Volta.
func StreamclusterXavierGPU() FreqModel {
	return FreqModel{Kernel: "streamcluster", MemBoundGBps: 88, CrossoverMHz: 900, MaxMHz: 1377}
}

// StreamclusterXavierCPU is the case-study kernel on the virtual CPU:
// memory-bound above 1450 MHz at the profiled 55 GB/s demand, on the
// 2265 MHz Carmel cluster. The experiments run the §4.3 study on the CPU
// because the virtual GPU's latency tolerance pushes its contention onset
// past the DRAM peak, and the pre-peak over-provisioning regime the paper
// demonstrates only exists where onset < peak (see DESIGN.md).
func StreamclusterXavierCPU() FreqModel {
	return FreqModel{Kernel: "streamcluster", MemBoundGBps: 55, CrossoverMHz: 1450, MaxMHz: 2265}
}

// Ladder builds an ascending frequency ladder [lo, hi] with the given step.
func Ladder(lo, hi, step float64) []float64 {
	var out []float64
	for f := lo; f <= hi+1e-9; f += step {
		out = append(out, f)
	}
	return out
}

// Selection is the outcome of a frequency selection.
type Selection struct {
	FreqMHz     float64
	DemandGBps  float64
	PredictedRS float64
	// Feasible is false when no ladder entry meets the budget; the lowest
	// frequency is returned in that case.
	Feasible bool
}

// SelectFrequency returns the highest ladder frequency whose predicted
// co-run slowdown under external demand extGBps stays within
// maxSlowdownPct — the architect's question in Table 9. Clocking above the
// returned frequency would let the kernel demand more bandwidth than the
// contended memory system can serve within the budget.
func SelectFrequency(pred Predictor, fm FreqModel, extGBps, maxSlowdownPct float64, ladder []float64) (Selection, error) {
	if err := fm.Validate(); err != nil {
		return Selection{}, err
	}
	if len(ladder) == 0 {
		return Selection{}, fmt.Errorf("explore: empty frequency ladder")
	}
	sorted := append([]float64(nil), ladder...)
	sort.Float64s(sorted)
	floor := 100 - maxSlowdownPct
	for i := len(sorted) - 1; i >= 0; i-- {
		f := sorted[i]
		x := fm.DemandAt(f)
		rs := pred.Predict(x, extGBps)
		if rs >= floor {
			return Selection{FreqMHz: f, DemandGBps: x, PredictedRS: rs, Feasible: true}, nil
		}
	}
	f := sorted[0]
	x := fm.DemandAt(f)
	return Selection{FreqMHz: f, DemandGBps: x, PredictedRS: pred.Predict(x, extGBps)}, nil
}

// TruthFn measures the actual achieved relative speed (percent) of the
// kernel at a given standalone demand under the experiment's external
// pressure — the simulator stands in for the paper's real-silicon runs.
type TruthFn func(demandGBps float64) (float64, error)

// SelectFrequencyTruth finds the ground-truth frequency: the highest ladder
// entry whose measured relative speed meets the budget. Measured relative
// speed is monotone non-increasing in demand (up to noise), so a binary
// search over the ladder keeps simulator probes logarithmic.
func SelectFrequencyTruth(truth TruthFn, fm FreqModel, maxSlowdownPct float64, ladder []float64) (Selection, error) {
	if err := fm.Validate(); err != nil {
		return Selection{}, err
	}
	if len(ladder) == 0 {
		return Selection{}, fmt.Errorf("explore: empty frequency ladder")
	}
	sorted := append([]float64(nil), ladder...)
	sort.Float64s(sorted)
	floor := 100 - maxSlowdownPct

	// Deduplicate by demand: all frequencies above the crossover share one
	// measurement.
	measure := func(f float64) (float64, error) { return truth(fm.DemandAt(f)) }

	lo, hi := 0, len(sorted)-1
	rsLo, err := measure(sorted[lo])
	if err != nil {
		return Selection{}, err
	}
	if rsLo < floor {
		return Selection{FreqMHz: sorted[lo], DemandGBps: fm.DemandAt(sorted[lo]), PredictedRS: rsLo}, nil
	}
	rsHi, err := measure(sorted[hi])
	if err != nil {
		return Selection{}, err
	}
	if rsHi >= floor {
		return Selection{FreqMHz: sorted[hi], DemandGBps: fm.DemandAt(sorted[hi]), PredictedRS: rsHi, Feasible: true}, nil
	}
	// Invariant: sorted[lo] passes, sorted[hi] fails.
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		rs, err := measure(sorted[mid])
		if err != nil {
			return Selection{}, err
		}
		if rs >= floor {
			lo, rsLo = mid, rs
		} else {
			hi = mid
		}
	}
	return Selection{FreqMHz: sorted[lo], DemandGBps: fm.DemandAt(sorted[lo]), PredictedRS: rsLo, Feasible: true}, nil
}

// RelPower is the dynamic-power proxy for clocking a PU at f out of fmax:
// P ∝ f·V² with voltage roughly linear in frequency, so P ∝ f³. The paper
// uses this style of budget argument for its "52.1% power saving" claim.
func RelPower(f, fmax float64) float64 {
	if fmax <= 0 {
		return 0
	}
	r := f / fmax
	return math.Pow(r, 3)
}

// FreqError is the relative selection error against ground truth, in
// percent — the "Errors (%)" columns of Table 9.
func FreqError(selected, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	return math.Abs(selected-truth) / truth * 100
}
