package explore

import (
	"fmt"
	"math"
)

// CoreModel is the standalone performance model of one kernel across the
// PU's core count (SMs of a GPU, cores of a CPU): throughput and bandwidth
// demand scale with active cores until the kernel becomes memory-bound
// (§3.4's "PU-related architectural changes": the architects scale existing
// standalone performance predictions for BW).
type CoreModel struct {
	Kernel string
	// MemBoundGBps is the saturated bandwidth demand.
	MemBoundGBps float64
	// CrossoverCores is the core count above which demand saturates.
	CrossoverCores int
	// MaxCores is the largest configuration considered.
	MaxCores int
}

// Validate reports whether the model is usable.
func (m CoreModel) Validate() error {
	if m.MemBoundGBps <= 0 || m.CrossoverCores <= 0 || m.MaxCores < m.CrossoverCores {
		return fmt.Errorf("explore: invalid core model %+v", m)
	}
	return nil
}

// DemandAt is the kernel's standalone bandwidth demand with the given
// number of active cores.
func (m CoreModel) DemandAt(cores int) float64 {
	if cores <= 0 {
		return 0
	}
	if cores >= m.CrossoverCores {
		return m.MemBoundGBps
	}
	return m.MemBoundGBps * float64(cores) / float64(m.CrossoverCores)
}

// RelStandalone is standalone performance relative to the full
// configuration; memory-bound kernels track achieved bandwidth.
func (m CoreModel) RelStandalone(cores int) float64 {
	return m.DemandAt(cores) / m.MemBoundGBps
}

// CorunPerf is the model-predicted co-run performance of the configuration
// relative to the full configuration running standalone: standalone scaling
// × predicted relative speed under the external demand.
func (m CoreModel) CorunPerf(pred Predictor, cores int, extGBps float64) float64 {
	return m.RelStandalone(cores) * pred.Predict(m.DemandAt(cores), extGBps) / 100
}

// CoreSelection is the outcome of a core-count selection.
type CoreSelection struct {
	Cores int
	// CorunPerf is the predicted co-run performance (relative to full
	// configuration standalone).
	CorunPerf float64
	// RelArea is the area proxy: cores / MaxCores.
	RelArea float64
}

// SelectCores returns the smallest core count whose predicted co-run
// performance reaches targetFrac of the best co-run performance any
// configuration achieves under the same external demand — the paper's
// "same level of actual co-running workload performance" criterion that
// exposes over-provisioning: under contention, extra cores just demand
// bandwidth the memory system cannot serve, so an accurate model picks far
// fewer cores (area saving) at equal delivered performance.
func SelectCores(pred Predictor, cm CoreModel, extGBps, targetFrac float64, step int) (CoreSelection, error) {
	if err := cm.Validate(); err != nil {
		return CoreSelection{}, err
	}
	if targetFrac <= 0 || targetFrac > 1 {
		return CoreSelection{}, fmt.Errorf("explore: target fraction %v out of (0,1]", targetFrac)
	}
	if step <= 0 {
		step = 1
	}
	best := 0.0
	for c := step; c <= cm.MaxCores; c += step {
		if p := cm.CorunPerf(pred, c, extGBps); p > best {
			best = p
		}
	}
	for c := step; c <= cm.MaxCores; c += step {
		if p := cm.CorunPerf(pred, c, extGBps); p >= targetFrac*best-1e-12 {
			return CoreSelection{Cores: c, CorunPerf: p, RelArea: float64(c) / float64(cm.MaxCores)}, nil
		}
	}
	return CoreSelection{
		Cores:     cm.MaxCores,
		CorunPerf: cm.CorunPerf(pred, cm.MaxCores, extGBps),
		RelArea:   1,
	}, nil
}

// AreaSaving is the relative area saved by choosing a over b (a ≤ b), in
// percent — the paper's "saving up to 50% area (with reduced cores)".
func AreaSaving(selected, baseline int) float64 {
	if baseline <= 0 {
		return 0
	}
	return math.Max(0, 100*float64(baseline-selected)/float64(baseline))
}
