package explore

import (
	"math"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/gables"
)

func gpuCoreModel() CoreModel {
	// A streaming kernel on a 512-core GPU: memory-bound beyond 320 cores.
	return CoreModel{Kernel: "stream", MemBoundGBps: 88, CrossoverCores: 320, MaxCores: 512}
}

func TestCoreModelDemand(t *testing.T) {
	cm := gpuCoreModel()
	if err := cm.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cm.DemandAt(512); got != 88 {
		t.Errorf("demand at max cores = %v", got)
	}
	if got := cm.DemandAt(160); math.Abs(got-44) > 1e-9 {
		t.Errorf("demand at half crossover = %v, want 44", got)
	}
	if cm.DemandAt(0) != 0 {
		t.Error("zero cores should demand 0")
	}
	if got := cm.RelStandalone(320); got != 1 {
		t.Errorf("standalone at crossover = %v, want 1", got)
	}
}

func TestCoreModelValidate(t *testing.T) {
	bad := []CoreModel{
		{MemBoundGBps: 0, CrossoverCores: 10, MaxCores: 20},
		{MemBoundGBps: 10, CrossoverCores: 0, MaxCores: 20},
		{MemBoundGBps: 10, CrossoverCores: 30, MaxCores: 20},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestSelectCoresPCCSBelowGablesUnderContention(t *testing.T) {
	cm := gpuCoreModel()
	pccs := testModel()
	gb, _ := gables.New(137)
	const ext = 60
	pSel, err := SelectCores(pccs, cm, ext, 0.95, 32)
	if err != nil {
		t.Fatal(err)
	}
	gSel, err := SelectCores(gb, cm, ext, 0.95, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Gables sees no contention below peak, so scaling to the crossover
	// always pays off for it; PCCS knows the memory system cannot feed the
	// extra cores under 60 GB/s of external demand and picks fewer.
	if pSel.Cores >= gSel.Cores {
		t.Errorf("PCCS picked %d cores, Gables %d; want PCCS below", pSel.Cores, gSel.Cores)
	}
	if saving := AreaSaving(pSel.Cores, gSel.Cores); saving <= 0 {
		t.Errorf("no area saving: %v", saving)
	}
}

func TestSelectCoresNoContentionPicksCrossover(t *testing.T) {
	cm := gpuCoreModel()
	pccs := testModel()
	sel, err := SelectCores(pccs, cm, 0, 0.999, 32)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Cores < cm.CrossoverCores-32 || sel.Cores > cm.CrossoverCores+32 {
		t.Errorf("without contention selection = %d cores, want ≈ crossover %d", sel.Cores, cm.CrossoverCores)
	}
}

func TestSelectCoresErrors(t *testing.T) {
	if _, err := SelectCores(testModel(), CoreModel{}, 10, 0.9, 1); err == nil {
		t.Error("invalid core model accepted")
	}
	if _, err := SelectCores(testModel(), gpuCoreModel(), 10, 0, 1); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := SelectCores(testModel(), gpuCoreModel(), 10, 1.5, 1); err == nil {
		t.Error("target > 1 accepted")
	}
}

func TestAreaSaving(t *testing.T) {
	if got := AreaSaving(256, 512); got != 50 {
		t.Errorf("AreaSaving = %v, want 50", got)
	}
	if AreaSaving(512, 256) != 0 {
		t.Error("negative saving should clamp to 0")
	}
	if AreaSaving(1, 0) != 0 {
		t.Error("zero baseline should yield 0")
	}
}
