package explore

import (
	"fmt"
	"math"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/gables"
)

func testModel() core.Params {
	return core.Params{
		PU: "GPU", Platform: "test",
		NormalBW: 38, IntensiveBW: 96, MRMC: 4.9,
		CBP: 45, TBWDC: 87, RateN: 0.75, PeakBW: 137,
	}
}

func TestFreqModelDemand(t *testing.T) {
	fm := StreamclusterXavierGPU()
	if err := fm.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := fm.DemandAt(1377); got != 88 {
		t.Errorf("demand at top clock = %v, want 88 (memory-bound)", got)
	}
	if got := fm.DemandAt(900); got != 88 {
		t.Errorf("demand at crossover = %v, want 88", got)
	}
	if got := fm.DemandAt(450); math.Abs(got-44) > 1e-9 {
		t.Errorf("demand at half crossover = %v, want 44", got)
	}
	if got := fm.DemandAt(0); got != 0 {
		t.Errorf("demand at 0 = %v", got)
	}
	if got := fm.RelStandalone(450); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("standalone perf at 450 = %v, want 0.5", got)
	}
	if got := fm.RelStandalone(1377); got != 1 {
		t.Errorf("standalone perf at top = %v, want 1", got)
	}
}

func TestFreqModelValidate(t *testing.T) {
	bad := []FreqModel{
		{MemBoundGBps: 0, CrossoverMHz: 900, MaxMHz: 1377},
		{MemBoundGBps: 88, CrossoverMHz: 0, MaxMHz: 1377},
		{MemBoundGBps: 88, CrossoverMHz: 900, MaxMHz: 800},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestLadder(t *testing.T) {
	l := Ladder(400, 1377, 10)
	if len(l) != 98 {
		t.Errorf("ladder length = %d, want 98", len(l))
	}
	if l[0] != 400 || l[len(l)-1] != 1370 {
		t.Errorf("ladder ends = %v, %v", l[0], l[len(l)-1])
	}
}

func TestSelectFrequencyDropsWithPressure(t *testing.T) {
	// Table 9's central trend: as external demand rises, the highest
	// acceptable frequency falls.
	m := testModel()
	fm := StreamclusterXavierGPU()
	ladder := Ladder(300, 1377, 10)
	prev := math.Inf(1)
	for _, ext := range []float64{20, 40, 60} {
		sel, err := SelectFrequency(m, fm, ext, 5, ladder)
		if err != nil {
			t.Fatal(err)
		}
		if !sel.Feasible {
			t.Fatalf("ext %v: infeasible", ext)
		}
		if sel.FreqMHz > prev {
			t.Errorf("selected frequency rose with pressure: %v → %v at ext %v", prev, sel.FreqMHz, ext)
		}
		if sel.PredictedRS < 95 {
			t.Errorf("ext %v: selected RS %.1f below budget", ext, sel.PredictedRS)
		}
		prev = sel.FreqMHz
	}
}

func TestLooserBudgetAllowsHigherClock(t *testing.T) {
	m := testModel()
	fm := StreamclusterXavierGPU()
	ladder := Ladder(300, 1377, 10)
	tight, _ := SelectFrequency(m, fm, 40, 5, ladder)
	loose, _ := SelectFrequency(m, fm, 40, 20, ladder)
	if loose.FreqMHz < tight.FreqMHz {
		t.Errorf("20%% budget picked %v below 5%% budget's %v", loose.FreqMHz, tight.FreqMHz)
	}
}

func TestGablesOverprovisions(t *testing.T) {
	// Gables sees no contention while total < peak, so under moderate
	// pressure it clocks the PU at the ladder top — the over-provisioning
	// the paper quantifies in Table 9.
	g, _ := gables.New(137)
	fm := StreamclusterXavierGPU()
	ladder := Ladder(300, 1377, 10)
	sel, err := SelectFrequency(g, fm, 40, 5, ladder)
	if err != nil {
		t.Fatal(err)
	}
	if sel.FreqMHz != 1370 {
		t.Errorf("Gables picked %v, want ladder top 1370", sel.FreqMHz)
	}
	pccs, _ := SelectFrequency(testModel(), fm, 40, 5, ladder)
	if pccs.FreqMHz >= sel.FreqMHz {
		t.Errorf("PCCS (%v) should pick below Gables (%v) under pressure", pccs.FreqMHz, sel.FreqMHz)
	}
}

func TestSelectFrequencyInfeasible(t *testing.T) {
	m := testModel()
	fm := FreqModel{Kernel: "hog", MemBoundGBps: 130, CrossoverMHz: 100, MaxMHz: 1377}
	// Even the lowest clock demands 130·(300/100… clamped) — use a ladder
	// above the crossover so every entry demands 130 GB/s.
	sel, err := SelectFrequency(m, fm, 130, 1, Ladder(200, 1377, 100))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Feasible {
		t.Errorf("expected infeasible selection, got %+v", sel)
	}
	if sel.FreqMHz != 200 {
		t.Errorf("infeasible selection should return the ladder floor, got %v", sel.FreqMHz)
	}
}

func TestSelectFrequencyErrors(t *testing.T) {
	if _, err := SelectFrequency(testModel(), FreqModel{}, 10, 5, Ladder(1, 2, 1)); err == nil {
		t.Error("invalid freq model accepted")
	}
	if _, err := SelectFrequency(testModel(), StreamclusterXavierGPU(), 10, 5, nil); err == nil {
		t.Error("empty ladder accepted")
	}
}

func TestSelectFrequencyTruthMatchesLinearScan(t *testing.T) {
	// Use the model itself as "truth": binary search must agree with the
	// analytic selection.
	m := testModel()
	fm := StreamclusterXavierGPU()
	ladder := Ladder(300, 1377, 10)
	probes := 0
	truth := func(d float64) (float64, error) {
		probes++
		return m.Predict(d, 40), nil
	}
	got, err := SelectFrequencyTruth(truth, fm, 5, ladder)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := SelectFrequency(m, fm, 40, 5, ladder)
	if got.FreqMHz != want.FreqMHz {
		t.Errorf("binary search picked %v, linear scan %v", got.FreqMHz, want.FreqMHz)
	}
	if probes > 12 {
		t.Errorf("binary search used %d probes, want ≤ 12", probes)
	}
}

func TestSelectFrequencyTruthEdges(t *testing.T) {
	fm := StreamclusterXavierGPU()
	ladder := Ladder(300, 1377, 10)
	allPass := func(d float64) (float64, error) { return 100, nil }
	sel, err := SelectFrequencyTruth(allPass, fm, 5, ladder)
	if err != nil || !sel.Feasible || sel.FreqMHz != 1370 {
		t.Errorf("all-pass: %+v, %v", sel, err)
	}
	allFail := func(d float64) (float64, error) { return 10, nil }
	sel, err = SelectFrequencyTruth(allFail, fm, 5, ladder)
	if err != nil || sel.Feasible || sel.FreqMHz != 300 {
		t.Errorf("all-fail: %+v, %v", sel, err)
	}
	boom := func(d float64) (float64, error) { return 0, fmt.Errorf("sim exploded") }
	if _, err := SelectFrequencyTruth(boom, fm, 5, ladder); err == nil {
		t.Error("probe error swallowed")
	}
}

func TestRelPowerAndFreqError(t *testing.T) {
	if got := RelPower(688.5, 1377); math.Abs(got-0.125) > 1e-9 {
		t.Errorf("half clock power = %v, want 0.125 (f³)", got)
	}
	if RelPower(100, 0) != 0 {
		t.Error("zero fmax should yield 0")
	}
	if got := FreqError(860, 840); math.Abs(got-2.380952) > 1e-4 {
		t.Errorf("FreqError = %v", got)
	}
	if FreqError(100, 0) != 0 {
		t.Error("zero truth should yield 0")
	}
}
