package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/processorcentricmodel/pccs/internal/dram"
)

func spec(demand float64) Spec {
	return Spec{Name: "t", DemandGBps: demand, Outstanding: 8, RunLines: 64}
}

func TestSpecValidate(t *testing.T) {
	if err := spec(10).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{DemandGBps: -1, Outstanding: 1, RunLines: 1},
		{DemandGBps: 1, Outstanding: 0, RunLines: 1},
		{DemandGBps: 1, Outstanding: 1, RunLines: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestNewGeneratorRejectsBadInput(t *testing.T) {
	if _, err := NewGenerator(Spec{Outstanding: 0, RunLines: 1}, 0, dram.CMPDDR4(), 1); err == nil {
		t.Error("bad spec accepted")
	}
	badMem := dram.CMPDDR4()
	badMem.Channels = 0
	if _, err := NewGenerator(spec(10), 0, badMem, 1); err == nil {
		t.Error("bad mem config accepted")
	}
}

func TestPacingMatchesDemand(t *testing.T) {
	mem := dram.CMPDDR4()
	// 25.6 GB/s on a 1600 MHz clock: 64B per line →
	// bytes/cycle = 25.6e9/1.6e9 = 16 → 4 cycles per line.
	g, err := NewGenerator(spec(25.6), 0, mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.cyclesPerLine-4) > 1e-9 {
		t.Errorf("cyclesPerLine = %v, want 4", g.cyclesPerLine)
	}
	// Issue 100 lines with an infinitely fast memory: after the initial
	// token-bucket burst (bucket = MLP = 8 lines here), issue times advance
	// at the pacing rate, so the long-run average matches the demand.
	now := int64(0)
	for i := 0; i < 100; i++ {
		it, ok := g.NextIssueTime(now)
		if !ok {
			t.Fatal("active generator reported inactive")
		}
		g.Issue(it)
		g.OnComplete(it+1, it)
		now = it
	}
	if lo, hi := int64(4*(99-8)), int64(4*100+4); now < lo || now > hi {
		t.Errorf("100 paced issues finished at cycle %d, want in [%d, %d]", now, lo, hi)
	}
}

func TestZeroDemandIsInactive(t *testing.T) {
	g, err := NewGenerator(Spec{Name: "idle", DemandGBps: 0, Outstanding: 1, RunLines: 1}, 0, dram.CMPDDR4(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.NextIssueTime(0); ok {
		t.Error("zero-demand generator should be inactive")
	}
}

func TestOutstandingLimitEnforced(t *testing.T) {
	g, _ := NewGenerator(Spec{Name: "g", DemandGBps: 100, Outstanding: 3, RunLines: 8}, 0, dram.CMPDDR4(), 1)
	for i := 0; i < 3; i++ {
		if !g.CanIssue() {
			t.Fatalf("CanIssue false at inflight %d", g.Inflight())
		}
		g.Issue(int64(i))
	}
	if g.CanIssue() {
		t.Error("CanIssue true at the outstanding limit")
	}
	g.MarkBlocked()
	if !g.Blocked() {
		t.Error("Blocked not recorded")
	}
	if !g.OnComplete(10, 0) {
		t.Error("OnComplete should report the generator was blocked")
	}
	if !g.CanIssue() {
		t.Error("CanIssue false after completion freed a slot")
	}
	if g.OnComplete(11, 1) {
		t.Error("OnComplete should not report blocked twice")
	}
}

func TestPacingDebtBoundedByBucket(t *testing.T) {
	// A generator stalled for a long time may burst at most one bucket of
	// issues afterwards — never unbounded catch-up. spec(25.6) has
	// bucket = MLP = 8.
	g, _ := NewGenerator(spec(25.6), 0, dram.CMPDDR4(), 1)
	burst := 0
	for i := 0; i < 20; i++ {
		it, _ := g.NextIssueTime(100000)
		if it != 100000 {
			break
		}
		g.Issue(it)
		g.OnComplete(it+1, it) // free the MLP slot; only tokens gate us
		burst++
	}
	if burst != 8 {
		t.Errorf("post-stall burst = %d issues, want exactly the bucket (8)", burst)
	}
	// The next issue must wait a full pacing interval.
	it, _ := g.NextIssueTime(100000)
	if it < 100004 {
		t.Errorf("issue after burst at %d, want ≥ 100004", it)
	}
}

func TestAddressesStayInSourceRegion(t *testing.T) {
	mem := dram.CMPDDR4()
	f := func(srcRaw uint8, n uint8) bool {
		src := int(srcRaw % 16)
		g, err := NewGenerator(Spec{Name: "g", DemandGBps: 10, Outstanding: 4, RunLines: 16}, src, mem, 7)
		if err != nil {
			return false
		}
		base := int64(src+1) << 36
		for i := 0; i < int(n); i++ {
			if g.CanIssue() {
				a := g.Issue(int64(i))
				if a < base || a >= base+(1<<36) {
					return false
				}
				if a%int64(mem.LineBytes) != 0 {
					return false
				}
				g.OnComplete(int64(i)+1, int64(i))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("address region property violated: %v", err)
	}
}

func TestSequentialRunsThenJump(t *testing.T) {
	mem := dram.CMPDDR4()
	g, _ := NewGenerator(Spec{Name: "g", DemandGBps: 10, Outstanding: 64, RunLines: 4}, 0, mem, 7)
	a0 := g.Issue(0)
	a1 := g.Issue(1)
	a2 := g.Issue(2)
	a3 := g.Issue(3)
	if a1 != a0+64 || a2 != a1+64 || a3 != a2+64 {
		t.Errorf("run not sequential: %d %d %d %d", a0, a1, a2, a3)
	}
	a4 := g.Issue(4) // run of 4 exhausted → jump
	if a4 == a3+64 {
		t.Error("expected a jump after the run, got sequential address")
	}
	rowSpan := int64(mem.RowBytes * mem.Channels)
	if (a4-(int64(1)<<36))%rowSpan != 0 {
		t.Errorf("jump target %d not row-group aligned", a4)
	}
}

func TestWindowAccounting(t *testing.T) {
	g, _ := NewGenerator(spec(25.6), 0, dram.CMPDDR4(), 1)
	for i := int64(0); i < 10; i++ {
		g.Issue(i * 4)
		g.OnComplete(i*4+20, i*4)
	}
	if g.WindowIssued() != 10 || g.WindowCompleted() != 10 {
		t.Errorf("window issued/completed = %d/%d, want 10/10", g.WindowIssued(), g.WindowCompleted())
	}
	if got := g.MeanLatencyCycles(); got != 20 {
		t.Errorf("mean latency = %v, want 20", got)
	}
	g.ResetWindow()
	if g.WindowIssued() != 0 || g.WindowCompleted() != 0 || g.MeanLatencyCycles() != 0 {
		t.Error("ResetWindow did not clear counters")
	}
	// Achieved BW: 10 lines × 64B over 640 cycles at 1.6 GHz.
	for i := int64(0); i < 10; i++ {
		g.Issue(i * 4)
		g.OnComplete(i*4+20, i*4)
	}
	want := 10.0 * 64 / 1e9 / (640 / 1.6e9)
	if got := g.AchievedGBps(640); math.Abs(got-want) > 1e-9 {
		t.Errorf("achieved = %v GB/s, want %v", got, want)
	}
	if g.AchievedGBps(0) != 0 {
		t.Error("zero-cycle window should report 0")
	}
}

func TestCalibratorLadder(t *testing.T) {
	specs := CalibratorLadder(10, 6, 32, 64)
	if len(specs) != 10 {
		t.Fatalf("ladder size = %d, want 10", len(specs))
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %d invalid: %v", i, err)
		}
		if want := 6 * float64(i+1); math.Abs(s.DemandGBps-want) > 1e-9 {
			t.Errorf("spec %d demand = %v, want %v", i, s.DemandGBps, want)
		}
	}
}

func TestCalibratorRange(t *testing.T) {
	specs := CalibratorRange(10, 100, 10, 32, 64)
	if len(specs) != 10 {
		t.Fatalf("range size = %d, want 10", len(specs))
	}
	if specs[0].DemandGBps != 10 || specs[9].DemandGBps != 100 {
		t.Errorf("range endpoints = %v, %v", specs[0].DemandGBps, specs[9].DemandGBps)
	}
}
