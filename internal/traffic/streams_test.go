package traffic

import (
	"testing"

	"github.com/processorcentricmodel/pccs/internal/dram"
)

func multiSpec() Spec {
	return Spec{Name: "multi", DemandGBps: 50, Outstanding: 64, RunLines: 128, Streams: 4, ChunkLines: 8}
}

func TestChunkedRoundRobinAcrossStreams(t *testing.T) {
	mem := dram.CMPDDR4()
	g, err := NewGenerator(multiSpec(), 0, mem, 3)
	if err != nil {
		t.Fatal(err)
	}
	// First 8 issues: sequential (one chunk of stream 0).
	prev := g.Issue(0)
	for i := 1; i < 8; i++ {
		a := g.Issue(int64(i))
		if a != prev+64 {
			t.Fatalf("issue %d: %d not sequential after %d", i, a, prev)
		}
		prev = a
	}
	// Ninth issue: a different stream (different row region).
	ninth := g.Issue(8)
	if ninth == prev+64 {
		t.Error("chunk boundary did not switch streams")
	}
	// Streams keep independent cursors: the next chunk of stream 0 resumes
	// where its first chunk left off. The ninth issue already consumed one
	// line of stream 1, so 7+8+8 lines drain the other streams' chunks.
	for i := 0; i < 7+8+8; i++ {
		g.Issue(int64(9 + i))
	}
	resumed := g.Issue(40)
	if resumed != prev+64 {
		t.Errorf("stream 0 resumed at %d, want %d", resumed, prev+64)
	}
}

func TestChunkDefaultsAndCaps(t *testing.T) {
	mem := dram.CMPDDR4()
	g, _ := NewGenerator(Spec{Name: "d", DemandGBps: 10, Outstanding: 4, RunLines: 128, Streams: 2}, 0, mem, 1)
	if g.chunk != 32 {
		t.Errorf("default chunk = %d, want 32", g.chunk)
	}
	g2, _ := NewGenerator(Spec{Name: "d", DemandGBps: 10, Outstanding: 4, RunLines: 8, Streams: 2}, 0, mem, 1)
	if g2.chunk != 8 {
		t.Errorf("chunk not capped at run length: %d", g2.chunk)
	}
}

func TestNegativeChunkRejected(t *testing.T) {
	s := multiSpec()
	s.ChunkLines = -1
	if err := s.Validate(); err == nil {
		t.Error("negative chunk accepted")
	}
	s.ChunkLines = 0
	s.Streams = -1
	if err := s.Validate(); err == nil {
		t.Error("negative streams accepted")
	}
}

func TestStreamsCoverMultipleBanks(t *testing.T) {
	// With several streams, concurrent issue windows should touch several
	// distinct banks (the reason streams exist: no single-bank parking).
	mem := dram.CMPDDR4()
	g, _ := NewGenerator(Spec{Name: "s", DemandGBps: 50, Outstanding: 64, RunLines: 64, Streams: 8, ChunkLines: 4}, 0, mem, 9)
	mapper := dram.NewMapper(mem)
	banks := map[[2]int]bool{}
	for i := 0; i < 8*4; i++ { // one chunk from each stream
		loc := mapper.Decode(g.Issue(int64(i)))
		banks[[2]int{loc.Channel, loc.Bank}] = true
	}
	if len(banks) < 4 {
		t.Errorf("8 streams touched only %d (channel,bank) pairs", len(banks))
	}
}
