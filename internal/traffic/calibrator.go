package traffic

import "fmt"

// Calibrators are the controllable traffic generators of the PCCS
// methodology (paper §3.2): synthetic vector-add/multiply kernels whose
// operational intensity is adjusted to hit a ladder of standalone bandwidth
// demands. Running them against a ladder of external demands produces the
// rela[n][m] matrix the model parameters are extracted from.

// CalibratorLadder returns n calibrator specs with demands stepping from
// step GB/s to n×step GB/s, the shape used in §2.3 (6–60 GB/s in 6 GB/s
// steps for the low group, 9–90 GB/s in 9 GB/s steps for the high group)
// and in the model construction sweeps.
func CalibratorLadder(n int, stepGBps float64, outstanding, runLines int) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		d := stepGBps * float64(i+1)
		specs[i] = Spec{
			Name:        fmt.Sprintf("cal-%.0fGBps", d),
			DemandGBps:  d,
			Outstanding: outstanding,
			RunLines:    runLines,
		}
	}
	return specs
}

// CalibratorRange returns calibrator specs covering [lo, hi] GB/s with the
// given step (inclusive on both ends when the step divides the range).
func CalibratorRange(lo, hi, stepGBps float64, outstanding, runLines int) []Spec {
	var specs []Spec
	for d := lo; d <= hi+1e-9; d += stepGBps {
		specs = append(specs, Spec{
			Name:        fmt.Sprintf("cal-%.0fGBps", d),
			DemandGBps:  d,
			Outstanding: outstanding,
			RunLines:    runLines,
		})
	}
	return specs
}
