// Package traffic implements the memory traffic generators used throughout
// the reproduction: the calibrators of the PCCS methodology ("controllable
// memory traffic generators", paper §3.2) and the per-PU request streams of
// co-running kernels.
//
// A generator is a paced closed loop. Pacing expresses the kernel's
// standalone bandwidth demand (one line every lineBytes/demand seconds);
// the closed loop expresses the processor's memory-level parallelism: at
// most Outstanding requests may be in flight, so rising memory latency
// throttles the stream exactly as it throttles a real processing unit.
package traffic

import (
	"fmt"
	"math/rand"

	"github.com/processorcentricmodel/pccs/internal/dram"
)

// Spec describes a synthetic memory traffic stream.
type Spec struct {
	// Name labels the stream in results.
	Name string
	// DemandGBps is the standalone bandwidth demand in GB/s (1e9 bytes/s):
	// the rate at which the kernel would consume memory with a perfectly
	// responsive memory system. This is the paper's "bandwidth demand".
	DemandGBps float64
	// Outstanding is the maximum number of in-flight requests (the
	// processor's memory-level parallelism). Must be ≥ 1.
	Outstanding int
	// RunLines is the number of consecutive cache lines accessed before
	// jumping to a fresh row-aligned location. Long runs give high row-
	// buffer locality (streaming kernels); RunLines of 1-2 model poor
	// locality (pointer chasing, e.g. bfs). Must be ≥ 1.
	RunLines int
	// Streams is the number of concurrent sequential address streams the
	// processor walks (cores of a CPU, SM clusters of a GPU). Requests
	// round-robin across streams in chunks, diluting per-bank residency —
	// a single stream would park the PU's whole memory-level parallelism
	// on one bank at a time, which no multi-core processor does. Zero
	// means 1.
	Streams int
	// ChunkLines is the number of consecutive lines issued from one stream
	// before switching to the next: the sequential burst a miss stream
	// presents to the memory controller, which is what row-hit batching
	// feeds on. Zero picks a default (32, capped at RunLines).
	ChunkLines int
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	switch {
	case s.DemandGBps < 0:
		return fmt.Errorf("traffic: negative demand %v", s.DemandGBps)
	case s.Outstanding < 1:
		return fmt.Errorf("traffic: outstanding must be ≥ 1, got %d", s.Outstanding)
	case s.RunLines < 1:
		return fmt.Errorf("traffic: run lines must be ≥ 1, got %d", s.RunLines)
	case s.Streams < 0:
		return fmt.Errorf("traffic: negative stream count %d", s.Streams)
	case s.ChunkLines < 0:
		return fmt.Errorf("traffic: negative chunk lines %d", s.ChunkLines)
	}
	return nil
}

// Generator produces the request stream for one source.
type Generator struct {
	spec   Spec
	source int
	mem    dram.Config
	rng    *rand.Rand

	cyclesPerLine float64 // pacing interval implied by the demand
	regionBase    int64   // private address region of this source
	regionRows    int64   // row-groups available to jump between

	cursors   []int64 // next address per stream
	runsLeft  []int   // lines remaining in each stream's sequential run
	stream    int     // round-robin pointer
	chunk     int     // effective chunk size
	chunkLeft int     // lines before switching streams
	inflight  int
	blocked   bool // an issue was attempted while at the outstanding limit

	// Pacing is a token bucket: tokens accrue at the demand rate up to
	// bucket capacity, and each issue consumes one. The capacity (one
	// chunk) makes arrivals bursty the way cache-miss streams are — after
	// a stall the processor issues a burst of misses back to back — which
	// is what gives memory schedulers same-row batches to chain. The
	// bucket never accrues beyond its capacity, so a long stall does not
	// turn into unbounded catch-up.
	tokens     float64
	bucket     float64
	lastRefill int64

	issued         int64
	completed      int64
	windowIssued   int64
	windowComplete int64
	latencySum     int64 // completion-time − issue-time, summed over window
}

// NewGenerator builds a generator for the given source index. Each source
// gets a disjoint address region so co-running streams never share rows,
// matching co-located kernels operating on separate working sets.
func NewGenerator(spec Spec, source int, mem dram.Config, seed int64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := mem.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		spec:       spec,
		source:     source,
		mem:        mem,
		rng:        rand.New(rand.NewSource(seed ^ int64(source)*0x5851F42D4C957F2D)),
		regionBase: int64(source+1) << 36,
		regionRows: 1 << 14,
	}
	if spec.DemandGBps > 0 {
		bytesPerCycle := spec.DemandGBps * 1e9 / mem.CyclesPerSecond()
		g.cyclesPerLine = float64(mem.LineBytes) / bytesPerCycle
	}
	streams := spec.Streams
	if streams < 1 {
		streams = 1
	}
	g.chunk = spec.ChunkLines
	if g.chunk == 0 {
		g.chunk = 32
	}
	if g.chunk > spec.RunLines {
		g.chunk = spec.RunLines
	}
	g.chunkLeft = g.chunk
	g.bucket = float64(g.chunk)
	if g.bucket > float64(spec.Outstanding) {
		g.bucket = float64(spec.Outstanding)
	}
	g.tokens = g.bucket // start ready to burst
	g.cursors = make([]int64, streams)
	g.runsLeft = make([]int, streams)
	for i := range g.cursors {
		g.jump(i)
	}
	return g, nil
}

// refill accrues pacing tokens up to the bucket capacity.
func (g *Generator) refill(now int64) {
	if g.cyclesPerLine <= 0 {
		return
	}
	if now > g.lastRefill {
		g.tokens += float64(now-g.lastRefill) / g.cyclesPerLine
		if g.tokens > g.bucket {
			g.tokens = g.bucket
		}
		g.lastRefill = now
	}
}

// Spec returns the stream description.
func (g *Generator) Spec() Spec { return g.spec }

// Source returns the source index the generator issues as.
func (g *Generator) Source() int { return g.source }

// jump moves one stream's cursor to a fresh row-group-aligned location.
func (g *Generator) jump(stream int) {
	rowSpan := int64(g.mem.RowBytes * g.mem.Channels)
	g.cursors[stream] = g.regionBase + (g.rng.Int63n(g.regionRows))*rowSpan
	g.runsLeft[stream] = g.spec.RunLines
}

// NextIssueTime returns the earliest cycle ≥ now at which the generator may
// issue its next request under pacing, or false if the stream is inactive
// (zero demand).
func (g *Generator) NextIssueTime(now int64) (int64, bool) {
	if g.spec.DemandGBps <= 0 {
		return 0, false
	}
	g.refill(now)
	if g.tokens >= 1 {
		return now, true
	}
	wait := (1 - g.tokens) * g.cyclesPerLine
	return now + int64(wait) + 1, true
}

// CanIssue reports whether the closed loop has a free in-flight slot.
func (g *Generator) CanIssue() bool { return g.inflight < g.spec.Outstanding }

// Issue produces the next request address at cycle now. The caller must
// have checked CanIssue. Pacing consumes one token; a kernel stalled by
// memory saves up at most one bucket (one chunk) of issue slots.
func (g *Generator) Issue(now int64) int64 {
	s := g.stream
	addr := g.cursors[s]
	g.cursors[s] += int64(g.mem.LineBytes)
	g.runsLeft[s]--
	if g.runsLeft[s] <= 0 {
		g.jump(s)
	}
	g.chunkLeft--
	if g.chunkLeft <= 0 {
		g.stream = (g.stream + 1) % len(g.cursors)
		g.chunkLeft = g.chunk
	}
	g.inflight++
	g.issued++
	g.windowIssued++
	g.refill(now)
	g.tokens--
	if g.tokens < 0 {
		g.tokens = 0
	}
	g.blocked = false
	return addr
}

// MarkBlocked records that pacing wanted to issue but the in-flight limit
// prevented it; the engine re-tries on the next completion.
func (g *Generator) MarkBlocked() { g.blocked = true }

// Blocked reports whether an issue is pending on a free slot.
func (g *Generator) Blocked() bool { return g.blocked }

// Inflight reports the number of requests currently in flight.
func (g *Generator) Inflight() int { return g.inflight }

// OnComplete records a completion at cycle now of a request issued at
// issuedAt. It returns true if the generator was blocked on the in-flight
// limit, in which case the engine should schedule a new issue.
func (g *Generator) OnComplete(now, issuedAt int64) bool {
	g.inflight--
	g.completed++
	g.windowComplete++
	g.latencySum += now - issuedAt
	wasBlocked := g.blocked
	g.blocked = false
	return wasBlocked
}

// ResetWindow opens a new measurement window (typically after warm-up).
func (g *Generator) ResetWindow() {
	g.windowIssued = 0
	g.windowComplete = 0
	g.latencySum = 0
}

// WindowCompleted returns lines completed in the current window.
func (g *Generator) WindowCompleted() int64 { return g.windowComplete }

// WindowIssued returns lines issued in the current window.
func (g *Generator) WindowIssued() int64 { return g.windowIssued }

// AchievedGBps converts the window completions over windowCycles cycles to
// an achieved bandwidth in GB/s.
func (g *Generator) AchievedGBps(windowCycles int64) float64 {
	if windowCycles <= 0 {
		return 0
	}
	seconds := float64(windowCycles) / g.mem.CyclesPerSecond()
	return float64(g.windowComplete) * float64(g.mem.LineBytes) / 1e9 / seconds
}

// MeanLatencyCycles is the average request latency over the window.
func (g *Generator) MeanLatencyCycles() float64 {
	if g.windowComplete == 0 {
		return 0
	}
	return float64(g.latencySum) / float64(g.windowComplete)
}
