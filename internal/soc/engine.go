package soc

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"github.com/processorcentricmodel/pccs/internal/dram"
	"github.com/processorcentricmodel/pccs/internal/memctrl"
	"github.com/processorcentricmodel/pccs/internal/traffic"
)

// RunConfig controls the length of a simulation.
type RunConfig struct {
	// WarmupCycles run before measurement starts (queues fill, row buffers
	// and fairness state reach steady state).
	WarmupCycles int64
	// MeasureCycles is the length of the measurement window.
	MeasureCycles int64
}

// DefaultRunConfig gives a window long enough for the memory controller's
// fairness state to converge (several TCM/ATLAS quanta of warm-up) and for
// stable bandwidth estimates (≈0.35 ms of simulated time measured).
func DefaultRunConfig() RunConfig {
	return RunConfig{WarmupCycles: 250_000, MeasureCycles: 500_000}
}

// QuickRunConfig is a shorter window for tests and sweeps; warm-up still
// spans enough scheduler quanta to reach steady-state clustering.
func QuickRunConfig() RunConfig {
	return RunConfig{WarmupCycles: 150_000, MeasureCycles: 200_000}
}

// PUResult is the measured outcome for one PU in one run.
type PUResult struct {
	PU           int
	Kernel       string
	DemandGBps   float64
	AchievedGBps float64
	// MeanLatencyCycles is the average request latency over the window.
	MeanLatencyCycles float64
	// RelativeSpeed is achieved/standalone-achieved; it is populated by
	// RelativeSpeeds and zero in raw Run results.
	RelativeSpeed float64
}

// RunOutcome is the result of one simulation.
type RunOutcome struct {
	Results map[int]PUResult
	// RowHitRate and EffectiveGBps summarize the memory system over the
	// measurement window (paper Table 3 metrics).
	RowHitRate    float64
	EffectiveGBps float64
}

// event kinds for the discrete-event engine.
const (
	evIssue = iota
	evPick
	evComplete
	evWindow
)

type event struct {
	at   int64
	seq  int64
	kind int
	idx  int // generator index (evIssue/evComplete) or channel (evPick)
	req  *memctrl.Request
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Run simulates the placement on the platform and returns per-PU achieved
// bandwidths and memory-system statistics over the measurement window.
func (p *Platform) Run(pl Placement, rc RunConfig) (*RunOutcome, error) {
	return p.RunContext(context.Background(), pl, rc)
}

// cancelCheckEvents is how many discrete events the engine processes between
// context polls: frequent enough that cancellation lands within microseconds
// of wall-clock, rare enough to stay invisible in profiles.
const cancelCheckEvents = 8192

// RunContext is Run with cancellation: the event loop polls ctx and aborts
// mid-simulation with ctx.Err() when it is cancelled. A run is pure (all
// simulation state is local), so an aborted run leaves no trace.
func (p *Platform) RunContext(ctx context.Context, pl Placement, rc RunConfig) (*RunOutcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rc.MeasureCycles <= 0 {
		return nil, fmt.Errorf("soc: non-positive measurement window")
	}

	// One controller per MC: channels are block-partitioned and each
	// controller schedules its share with a private policy instance (the
	// multi-MC extension of §5; the presets use a single controller).
	nMC := p.NumMCs()
	perMC := p.Mem.Channels / nMC
	mcMem := p.Mem
	mcMem.Channels = perMC
	ctrls := make([]*memctrl.Controller, nMC)
	for i := range ctrls {
		c, err := memctrl.New(memctrl.Config{
			Mem: mcMem, Policy: p.Policy, NumSources: len(p.PUs), Seed: p.Seed + int64(i)*7919,
		})
		if err != nil {
			return nil, err
		}
		ctrls[i] = c
	}
	mapper := dram.NewMapper(p.Mem)
	route := func(gch int) (mc, lch int) { return gch / perMC, gch % perMC }

	// Deterministic iteration: placements are maps, but event seeding must
	// not depend on map order.
	pus := make([]int, 0, len(pl))
	for pu := range pl {
		pus = append(pus, pu)
	}
	sort.Ints(pus)

	gens := make(map[int]*traffic.Generator)
	for _, pu := range pus {
		k := pl[pu]
		if pu < 0 || pu >= len(p.PUs) {
			return nil, fmt.Errorf("soc: placement names PU %d, platform has %d", pu, len(p.PUs))
		}
		if err := k.Validate(); err != nil {
			return nil, err
		}
		if k.DemandGBps == 0 {
			continue
		}
		arch := p.PUs[pu]
		spec := traffic.Spec{
			Name:        k.Name,
			DemandGBps:  k.DemandGBps,
			Outstanding: arch.Outstanding,
			RunLines:    arch.RunLines,
			Streams:     arch.Streams,
		}
		if k.Outstanding > 0 {
			spec.Outstanding = k.Outstanding
		}
		if k.RunLines > 0 {
			spec.RunLines = k.RunLines
		}
		if k.Streams > 0 {
			spec.Streams = k.Streams
		}
		g, err := traffic.NewGenerator(spec, pu, p.Mem, p.Seed)
		if err != nil {
			return nil, fmt.Errorf("soc: PU %d (%s): %w", pu, arch.Name, err)
		}
		gens[pu] = g
	}

	end := rc.WarmupCycles + rc.MeasureCycles
	var h eventHeap
	var seq int64
	push := func(at int64, kind, idx int, req *memctrl.Request) {
		seq++
		heap.Push(&h, event{at: at, seq: seq, kind: kind, idx: idx, req: req})
	}

	for _, pu := range pus {
		g, ok := gens[pu]
		if !ok {
			continue
		}
		if t, ok := g.NextIssueTime(0); ok {
			push(t, evIssue, pu, nil)
		}
	}
	if rc.WarmupCycles > 0 {
		push(rc.WarmupCycles, evWindow, 0, nil)
	}

	pickScheduled := make([]bool, p.Mem.Channels)
	schedulePick := func(gch int, now int64) {
		mc, lch := route(gch)
		if !pickScheduled[gch] && ctrls[mc].QueueLen(lch) > 0 {
			pickScheduled[gch] = true
			push(ctrls[mc].PickTime(lch, now), evPick, gch, nil)
		}
	}

	var sinceCheck int
	for h.Len() > 0 {
		if sinceCheck++; sinceCheck >= cancelCheckEvents {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := heap.Pop(&h).(event)
		if e.at > end {
			break
		}
		now := e.at
		switch e.kind {
		case evWindow:
			for _, c := range ctrls {
				c.ResetStats(now)
			}
			for _, g := range gens {
				g.ResetWindow()
			}
		case evIssue:
			g := gens[e.idx]
			if !g.CanIssue() {
				g.MarkBlocked()
				break
			}
			addr := g.Issue(now)
			loc := mapper.Decode(addr)
			gch := loc.Channel
			mc, lch := route(gch)
			loc.Channel = lch
			ctrls[mc].EnqueueAt(e.idx, loc, false, now)
			schedulePick(gch, now)
			if t, ok := g.NextIssueTime(now); ok {
				push(t, evIssue, e.idx, nil)
			}
		case evPick:
			gch := e.idx
			pickScheduled[gch] = false
			mc, lch := route(gch)
			r := ctrls[mc].Pick(lch, now)
			if r != nil {
				push(r.DoneAt, evComplete, r.Source, r)
			}
			schedulePick(gch, now)
		case evComplete:
			g := gens[e.idx]
			if g.OnComplete(now, e.req.EnqueuedAt) {
				if t, ok := g.NextIssueTime(now); ok {
					push(t, evIssue, e.idx, nil)
				}
			}
		}
	}

	out := &RunOutcome{Results: make(map[int]PUResult, len(pl))}
	var accesses, hits, servedBytes int64
	for _, c := range ctrls {
		st := c.Stats()
		accesses += st.Accesses
		hits += st.RowHits
		servedBytes += st.ServedBytes(p.Mem.LineBytes)
	}
	if accesses > 0 {
		out.RowHitRate = float64(hits) / float64(accesses)
	}
	seconds := float64(rc.MeasureCycles) / p.Mem.CyclesPerSecond()
	out.EffectiveGBps = float64(servedBytes) / 1e9 / seconds
	for pu, k := range pl {
		res := PUResult{PU: pu, Kernel: k.Name, DemandGBps: k.DemandGBps}
		if g, ok := gens[pu]; ok {
			res.AchievedGBps = g.AchievedGBps(rc.MeasureCycles)
			res.MeanLatencyCycles = g.MeanLatencyCycles()
		}
		out.Results[pu] = res
	}
	return out, nil
}

// Standalone measures the kernel running alone on the PU.
func (p *Platform) Standalone(pu int, k Kernel, rc RunConfig) (PUResult, error) {
	return p.StandaloneContext(context.Background(), pu, k, rc)
}

// StandaloneContext is Standalone with cancellation.
func (p *Platform) StandaloneContext(ctx context.Context, pu int, k Kernel, rc RunConfig) (PUResult, error) {
	out, err := p.RunContext(ctx, Placement{pu: k}, rc)
	if err != nil {
		return PUResult{}, err
	}
	r := out.Results[pu]
	r.RelativeSpeed = 1
	return r, nil
}

// RelativeSpeeds runs the placement standalone-then-co-run and fills each
// result's RelativeSpeed with achieved-corun / achieved-standalone — the
// paper's "achieved relative speed" (RS).
func (p *Platform) RelativeSpeeds(pl Placement, rc RunConfig) (map[int]PUResult, error) {
	alone := make(map[int]float64, len(pl))
	for pu, k := range pl {
		if k.DemandGBps == 0 {
			alone[pu] = 0
			continue
		}
		res, err := p.Standalone(pu, k, rc)
		if err != nil {
			return nil, err
		}
		alone[pu] = res.AchievedGBps
	}
	out, err := p.Run(pl, rc)
	if err != nil {
		return nil, err
	}
	for pu, res := range out.Results {
		if alone[pu] > 0 {
			res.RelativeSpeed = res.AchievedGBps / alone[pu]
			if res.RelativeSpeed > 1 {
				res.RelativeSpeed = 1
			}
		} else {
			res.RelativeSpeed = 1
		}
		out.Results[pu] = res
	}
	return out.Results, nil
}
