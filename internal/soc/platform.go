// Package soc simulates a heterogeneous shared-memory SoC: processing units
// issuing paced memory request streams into a shared, fairness-controlled
// memory controller over multi-channel DRAM. It provides the "ground truth"
// co-run measurements the PCCS model is constructed from and validated
// against — standing in for the NVIDIA Jetson AGX Xavier and Qualcomm
// Snapdragon 855 used by the paper.
package soc

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/dram"
	"github.com/processorcentricmodel/pccs/internal/memctrl"
)

// PUKind classifies processing-unit archetypes.
type PUKind int

const (
	// CPU: moderate memory-level parallelism, moderate locality.
	CPU PUKind = iota
	// GPU: massive thread-level parallelism hides latency (large MLP) and
	// streams long sequential runs.
	GPU
	// DLA: specialized inference engine with little thread-level
	// parallelism to hide memory latency (small MLP) — the reason the DLA
	// has no minor-contention region in the paper (Table 7: Normal BW = 0).
	DLA
	// Core: one generic CMP core, used by the 16-core memory-controller
	// study platform (paper Table 1).
	Core
	// NPU: one core of a multi-core neural processing unit. Like the DLA
	// it is an inference engine, but each core streams tile-granular
	// traffic (weight/activation tiles of a layer pipeline), so its
	// workloads are naturally multi-phase at tile granularity.
	NPU
)

func (k PUKind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case DLA:
		return "DLA"
	case Core:
		return "Core"
	case NPU:
		return "NPU"
	default:
		return fmt.Sprintf("PUKind(%d)", int(k))
	}
}

// PU describes one processing unit on the SoC: the parameters that shape how
// its memory stream behaves under contention.
type PU struct {
	Name string
	Kind PUKind
	// Outstanding is the PU's memory-level parallelism: the number of
	// in-flight line requests it sustains.
	Outstanding int
	// RunLines is the default sequential run length (locality) of kernels
	// on this PU; individual kernels may override it.
	RunLines int
	// Streams is the number of concurrent address streams the PU's memory
	// traffic interleaves (≈ cores or SM clusters).
	Streams int
	// MaxFreqMHz is the PU's maximum clock, used by frequency exploration.
	MaxFreqMHz float64
}

// Platform is a complete SoC configuration.
type Platform struct {
	Name   string
	Mem    dram.Config
	Policy memctrl.PolicyKind
	PUs    []PU
	Seed   int64
	// Family optionally labels the platform family for model artifacts
	// ("npu", ...); empty means the default "virtual-soc". It does not
	// affect the simulation.
	Family string
	// MCs is the number of memory controllers; the platform's channels are
	// block-partitioned across them and each controller runs its own
	// scheduling policy instance with private fairness state. Zero or one
	// selects the single-controller design the paper's target SoCs use
	// (§5 discusses the multi-MC extension this implements). Must divide
	// the channel count.
	MCs int
}

// Validate checks the platform for internal consistency.
func (p *Platform) Validate() error {
	if err := p.Mem.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", p.Name, err)
	}
	if len(p.PUs) == 0 {
		return fmt.Errorf("platform %s: no PUs", p.Name)
	}
	// PUIndex, workload demand profiles, and constructed model keys all
	// resolve PUs by name: a duplicate would silently alias two units.
	seen := make(map[string]bool, len(p.PUs))
	for i, pu := range p.PUs {
		if pu.Name == "" {
			return fmt.Errorf("platform %s: PU %d has no name", p.Name, i)
		}
		if seen[pu.Name] {
			return fmt.Errorf("platform %s: duplicate PU name %q", p.Name, pu.Name)
		}
		seen[pu.Name] = true
		if pu.Outstanding < 1 {
			return fmt.Errorf("platform %s: PU %d (%s) outstanding < 1", p.Name, i, pu.Name)
		}
		if pu.RunLines < 1 {
			return fmt.Errorf("platform %s: PU %d (%s) run lines < 1", p.Name, i, pu.Name)
		}
		if pu.Streams < 1 {
			return fmt.Errorf("platform %s: PU %d (%s) streams < 1", p.Name, i, pu.Name)
		}
		if pu.MaxFreqMHz <= 0 {
			return fmt.Errorf("platform %s: PU %d (%s) max frequency %.4g MHz not positive", p.Name, i, pu.Name, pu.MaxFreqMHz)
		}
	}
	if p.MCs > 1 && p.Mem.Channels%p.MCs != 0 {
		return fmt.Errorf("platform %s: %d channels not divisible across %d MCs", p.Name, p.Mem.Channels, p.MCs)
	}
	return nil
}

// NumMCs returns the effective memory-controller count (at least 1).
func (p *Platform) NumMCs() int {
	if p.MCs > 1 {
		return p.MCs
	}
	return 1
}

// PUIndex returns the index of the PU with the given name, or -1.
func (p *Platform) PUIndex(name string) int {
	for i, pu := range p.PUs {
		if pu.Name == name {
			return i
		}
	}
	return -1
}

// Clone returns an independent copy of the platform. Run never mutates the
// platform, but concurrent executors clone it per worker anyway so no two
// simulations can ever share state through it.
func (p *Platform) Clone() *Platform {
	c := *p
	c.PUs = append([]PU(nil), p.PUs...)
	return &c
}

// PeakGBps is the theoretical peak memory bandwidth of the platform.
func (p *Platform) PeakGBps() float64 { return p.Mem.PeakGBps() }

// ScaleMemory returns a copy of the platform with the memory clock scaled by
// ratio (the §3.3 scenario: same SoC, different memory generation).
func (p *Platform) ScaleMemory(ratio float64) *Platform {
	s := *p
	s.Mem = p.Mem.Scale(ratio)
	s.Name = fmt.Sprintf("%s-mem-x%.3g", p.Name, ratio)
	s.PUs = append([]PU(nil), p.PUs...)
	return &s
}

// VirtualXavier models the NVIDIA Jetson AGX Xavier (paper Table 6):
// 8-core Carmel CPU, Volta GPU, DLA, sharing 137 GB/s of LPDDR4x behind a
// fairness-controlled memory controller. PU indices: 0 CPU, 1 GPU, 2 DLA.
//
// The MLP and locality parameters are calibrated so the simulated PUs show
// the paper's qualitative contrasts: the GPU hides latency best and streams
// hardest; the CPU sits in the middle; the DLA has so little latency hiding
// that any external pressure slows it (no minor region).
func VirtualXavier() *Platform {
	return &Platform{
		Name:   "virtual-xavier",
		Mem:    dram.XavierLPDDR4X(),
		Policy: memctrl.TCM,
		Seed:   1,
		PUs: []PU{
			{Name: "CPU", Kind: CPU, Outstanding: 160, RunLines: 128, Streams: 8, MaxFreqMHz: 2265},
			{Name: "GPU", Kind: GPU, Outstanding: 512, RunLines: 512, Streams: 32, MaxFreqMHz: 1377},
			{Name: "DLA", Kind: DLA, Outstanding: 16, RunLines: 256, Streams: 4, MaxFreqMHz: 1395},
		},
	}
}

// VirtualSnapdragon models the Qualcomm Snapdragon 855 (paper Table 6):
// Kryo CPU and Adreno 640 GPU over 34 GB/s of LPDDR4x.
// PU indices: 0 CPU, 1 GPU.
func VirtualSnapdragon() *Platform {
	return &Platform{
		Name:   "virtual-snapdragon",
		Mem:    dram.SnapdragonLPDDR4X(),
		Policy: memctrl.TCM,
		Seed:   2,
		PUs: []PU{
			{Name: "CPU", Kind: CPU, Outstanding: 96, RunLines: 128, Streams: 8, MaxFreqMHz: 1800},
			{Name: "GPU", Kind: GPU, Outstanding: 256, RunLines: 512, Streams: 16, MaxFreqMHz: 585},
		},
	}
}

// CMP16 models the paper's memory-controller validation platform (Table 1):
// a 16-core x86 CMP over DDR4-3200. Cores 0–7 form the low-bandwidth group
// and cores 8–15 the high-bandwidth group (§2.3). The policy is chosen per
// experiment.
func CMP16(policy memctrl.PolicyKind) *Platform {
	p := &Platform{
		Name:   fmt.Sprintf("cmp16-%s", policy),
		Mem:    dram.CMPDDR4(),
		Policy: policy,
		Seed:   3,
	}
	for i := 0; i < 16; i++ {
		p.PUs = append(p.PUs, PU{
			Name:        fmt.Sprintf("core%d", i),
			Kind:        Core,
			Outstanding: 24,
			RunLines:    128,
			Streams:     2,
			MaxFreqMHz:  2200,
		})
	}
	return p
}
