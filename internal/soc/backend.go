package soc

import (
	"context"
	"fmt"
)

// Backend is the pluggable simulation substrate the rest of the stack —
// simrun, calib, sched, the experiments, and the serving layer — consumes
// instead of a concrete *Platform. A backend answers one question: what
// happens when this mix of kernels runs together on this piece of hardware?
//
// Implementations must guarantee (see DESIGN §11 for the full contract):
//
//   - Determinism: RunContext is a pure function of (backend config,
//     placement, RunConfig). Same inputs, bit-identical RunOutcome, on any
//     goroutine, at any concurrency.
//   - Clone isolation: CloneBackend returns a copy that shares no mutable
//     state with the receiver; concurrent simulations on clones never
//     observe each other.
//   - Validate semantics: Validate reports configuration errors without
//     mutating the backend; RunContext on a backend whose Validate fails
//     must fail, not misbehave.
//   - Fingerprint identity: two backends with equal Fingerprints produce
//     bit-identical results for every (placement, RunConfig) — it is the
//     memo-cache key, so a wrapper that changes the physics must change
//     the fingerprint.
type Backend interface {
	// PlatformName is the backend's registry name ("virtual-xavier",
	// "pim-xavier", ...); model keys and workload profiles resolve by it.
	PlatformName() string
	// PUList is the processing-unit topology, in placement-index order.
	// Callers must not mutate the returned slice.
	PUList() []PU
	// PeakGBps is the theoretical peak bandwidth of the shared memory
	// system in GB/s — the ceiling calibration ladders sweep toward.
	PeakGBps() float64
	// Validate checks the backend configuration for internal consistency.
	Validate() error
	// CloneBackend returns an independent copy safe for concurrent use.
	CloneBackend() Backend
	// Fingerprint identifies the physics: everything that shapes a
	// simulation outcome besides the placement and RunConfig.
	Fingerprint() string
	// RunContext simulates the kernel mix under contention and reports
	// per-PU achieved bandwidth and latency. It must honour ctx
	// cancellation promptly.
	RunContext(ctx context.Context, pl Placement, rc RunConfig) (*RunOutcome, error)
}

// *Platform is the default virtual-SoC backend.
var _ Backend = (*Platform)(nil)

// PlatformName implements Backend.
func (p *Platform) PlatformName() string { return p.Name }

// PUList implements Backend.
func (p *Platform) PUList() []PU { return p.PUs }

// CloneBackend implements Backend.
func (p *Platform) CloneBackend() Backend { return p.Clone() }

// Fingerprint implements Backend. It covers name, seed, scheduling policy,
// controller count, and the full DRAM config — the platform identity the
// standalone memo cache has always keyed on.
func (p *Platform) Fingerprint() string {
	return fmt.Sprintf("%s|%d|%v|%d|%+v", p.Name, p.Seed, p.Policy, p.MCs, p.Mem)
}

// familied is the optional extension a backend implements to identify its
// platform family ("chiplet", "pim", ...).
type familied interface{ BackendFamily() string }

// BackendFamily reports the platform's family label ("virtual-soc" unless
// the preset sets one).
func (p *Platform) BackendFamily() string {
	if p.Family != "" {
		return p.Family
	}
	return "virtual-soc"
}

// BackendFamilyOf reports the platform family of b; backends that do not
// declare one are the default virtual-SoC substrate.
func BackendFamilyOf(b Backend) string {
	if f, ok := b.(familied); ok {
		return f.BackendFamily()
	}
	return "virtual-soc"
}

// PUIndexOf returns the index of the PU with the given name on b, or -1.
func PUIndexOf(b Backend, name string) int {
	for i, pu := range b.PUList() {
		if pu.Name == name {
			return i
		}
	}
	return -1
}

// StandaloneOn measures kernel k running alone on PU pu of backend b. The
// result's RelativeSpeed is 1 by definition. It is the backend-generic
// form of (*Platform).StandaloneContext and produces identical results on
// the default backend.
func StandaloneOn(ctx context.Context, b Backend, pu int, k Kernel, rc RunConfig) (PUResult, error) {
	out, err := b.RunContext(ctx, Placement{pu: k}, rc)
	if err != nil {
		return PUResult{}, err
	}
	r := out.Results[pu]
	r.RelativeSpeed = 1
	return r, nil
}
