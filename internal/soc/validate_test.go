package soc

import (
	"strings"
	"testing"
)

// TestValidateRejectsAliasedAndDegeneratePUs is the regression test for the
// Validate hardening: PUIndex, workload demand profiles, and model keys all
// resolve PUs by name, so a duplicate name silently aliases two units, and
// zero Streams or MaxFreqMHz break traffic generation and frequency
// exploration downstream with far less obvious failures.
func TestValidateRejectsAliasedAndDegeneratePUs(t *testing.T) {
	base := func() *Platform {
		p := VirtualXavier()
		return p.Clone()
	}

	cases := []struct {
		name   string
		mutate func(*Platform)
		want   string
	}{
		{"duplicate name", func(p *Platform) { p.PUs[2].Name = p.PUs[0].Name }, "duplicate PU name"},
		{"empty name", func(p *Platform) { p.PUs[1].Name = "" }, "has no name"},
		{"zero streams", func(p *Platform) { p.PUs[0].Streams = 0 }, "streams < 1"},
		{"negative streams", func(p *Platform) { p.PUs[0].Streams = -3 }, "streams < 1"},
		{"zero max freq", func(p *Platform) { p.PUs[1].MaxFreqMHz = 0 }, "not positive"},
		{"negative max freq", func(p *Platform) { p.PUs[1].MaxFreqMHz = -1 }, "not positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base()
			tc.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a platform with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Every shipped preset must of course still validate.
	for _, p := range []*Platform{VirtualXavier(), VirtualSnapdragon()} {
		if err := p.Validate(); err != nil {
			t.Errorf("preset %s: %v", p.Name, err)
		}
	}
}
