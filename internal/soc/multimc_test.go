package soc

import (
	"math"
	"testing"
)

func TestMultiMCValidation(t *testing.T) {
	p := VirtualXavier()
	p.MCs = 3 // 8 channels not divisible by 3
	if err := p.Validate(); err == nil {
		t.Error("indivisible MC partition accepted")
	}
	p.MCs = 2
	if err := p.Validate(); err != nil {
		t.Errorf("2-MC Xavier rejected: %v", err)
	}
	if p.NumMCs() != 2 {
		t.Errorf("NumMCs = %d", p.NumMCs())
	}
	p.MCs = 0
	if p.NumMCs() != 1 {
		t.Errorf("default NumMCs = %d, want 1", p.NumMCs())
	}
}

func TestMultiMCRunsAndServesAllChannels(t *testing.T) {
	p := VirtualXavier()
	p.MCs = 2
	out, err := p.Run(Placement{
		1: Kernel{Name: "gpu", DemandGBps: 80},
		0: ExternalPressure(50),
	}, QuickRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Streaming traffic interleaves over all channels, so both MCs must
	// serve roughly half; total effective BW reflects both.
	if out.EffectiveGBps < 80 {
		t.Errorf("2-MC effective BW %.1f implausibly low", out.EffectiveGBps)
	}
	if out.RowHitRate <= 0 || out.RowHitRate > 1 {
		t.Errorf("row hit rate %v", out.RowHitRate)
	}
}

func TestSingleVsMultiMCClose(t *testing.T) {
	// With channel-interleaved traffic each MC sees a proportional slice of
	// every source, so fairness state fragments but decisions barely
	// change: multi-MC results should track single-MC within a few percent
	// (the §5 argument for why the model extends to multi-MC SoCs).
	rc := QuickRunConfig()
	measure := func(mcs int) float64 {
		p := VirtualXavier()
		p.MCs = mcs
		k := Kernel{Name: "k", DemandGBps: 70}
		alone, err := p.Standalone(1, k, rc)
		if err != nil {
			t.Fatal(err)
		}
		out, err := p.Run(Placement{1: k, 0: ExternalPressure(90)}, rc)
		if err != nil {
			t.Fatal(err)
		}
		return 100 * out.Results[1].AchievedGBps / alone.AchievedGBps
	}
	single, dual := measure(1), measure(2)
	if math.Abs(single-dual) > 8 {
		t.Errorf("single-MC RS %.1f vs dual-MC %.1f: diverged beyond 8%%", single, dual)
	}
}
