package soc

import (
	"testing"

	"github.com/processorcentricmodel/pccs/internal/memctrl"
)

// Integration tests of the 16-core CMP platform used by the §2.3 policy
// study.

func TestCMP16GroupCorun(t *testing.T) {
	p := CMP16(memctrl.TCM)
	if len(p.PUs) != 16 {
		t.Fatalf("CMP16 has %d cores", len(p.PUs))
	}
	rc := QuickRunConfig()
	pl := Placement{}
	for i := 0; i < 8; i++ {
		pl[i] = Kernel{Name: "low", DemandGBps: 30.0 / 8}
	}
	for i := 8; i < 16; i++ {
		pl[i] = Kernel{Name: "high", DemandGBps: 90.0 / 8}
	}
	out, err := p.Run(pl, rc)
	if err != nil {
		t.Fatal(err)
	}
	var lowSum, highSum float64
	for i := 0; i < 8; i++ {
		lowSum += out.Results[i].AchievedGBps
	}
	for i := 8; i < 16; i++ {
		highSum += out.Results[i].AchievedGBps
	}
	// Total demand 120 > effective capacity; the system must be saturated
	// and both groups must make progress.
	if lowSum <= 0 || highSum <= 0 {
		t.Fatalf("group throughput: low %.1f, high %.1f", lowSum, highSum)
	}
	if out.EffectiveGBps > p.PeakGBps() {
		t.Errorf("effective BW %.1f above peak %.1f", out.EffectiveGBps, p.PeakGBps())
	}
	if out.EffectiveGBps < 0.5*p.PeakGBps() {
		t.Errorf("effective BW %.1f implausibly low for a saturating co-run", out.EffectiveGBps)
	}
}

func TestFairnessPoliciesProtectAndFlatten(t *testing.T) {
	// The §2.3 argument, on the virtual Xavier: a medium-demand CPU kernel
	// under rising GPU pressure. Without fairness control the GPU's massive
	// memory-level parallelism progressively crushes the CPU (FCFS);
	// fairness-aware policies establish an equilibrium — a floor no worse
	// than FCFS's and a flat tail (the contention balance point the PCCS
	// model's CBP parameter encodes).
	rc := QuickRunConfig()
	tail := func(policy memctrl.PolicyKind) (rs123, rs137 float64) {
		p := VirtualXavier()
		p.Policy = policy
		cpu, gpu := p.PUIndex("CPU"), p.PUIndex("GPU")
		k := Kernel{Name: "med", DemandGBps: 40}
		alone, err := p.Standalone(cpu, k, rc)
		if err != nil {
			t.Fatal(err)
		}
		measure := func(ext float64) float64 {
			out, err := p.Run(Placement{cpu: k, gpu: ExternalPressure(ext)}, rc)
			if err != nil {
				t.Fatal(err)
			}
			return 100 * out.Results[cpu].AchievedGBps / alone.AchievedGBps
		}
		return measure(123), measure(137)
	}
	_, fcfsFinal := tail(memctrl.FCFS)
	for _, policy := range []memctrl.PolicyKind{memctrl.ATLAS, memctrl.TCM, memctrl.SMS} {
		rs123, rs137 := tail(policy)
		if rs137 < fcfsFinal-2 {
			t.Errorf("%v final RS %.1f below FCFS %.1f: fairness policy protects worse than none",
				policy, rs137, fcfsFinal)
		}
		if diff := rs123 - rs137; diff > 5 || diff < -5 {
			t.Errorf("%v tail not flat: RS(123)=%.1f RS(137)=%.1f", policy, rs123, rs137)
		}
	}
}

func TestPolicyChangesAreObservable(t *testing.T) {
	// Different scheduling policies must actually change co-run outcomes
	// (guards against the policy plumbing being ignored).
	rc := QuickRunConfig()
	results := map[memctrl.PolicyKind]float64{}
	for _, policy := range []memctrl.PolicyKind{memctrl.FCFS, memctrl.TCM} {
		p := CMP16(policy)
		pl := Placement{}
		for i := 0; i < 16; i++ {
			pl[i] = Kernel{Name: "c", DemandGBps: 8}
		}
		out, err := p.Run(pl, rc)
		if err != nil {
			t.Fatal(err)
		}
		results[policy] = out.RowHitRate
	}
	if results[memctrl.FCFS] == results[memctrl.TCM] {
		t.Error("FCFS and TCM produced identical row-hit rates; policies may not be wired")
	}
}
