package soc

import (
	"math"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/memctrl"
)

func TestPlatformValidate(t *testing.T) {
	for _, p := range []*Platform{VirtualXavier(), VirtualSnapdragon(), CMP16(memctrl.ATLAS)} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := VirtualXavier()
	bad.PUs = nil
	if err := bad.Validate(); err == nil {
		t.Error("platform without PUs accepted")
	}
	bad2 := VirtualXavier()
	bad2.PUs[0].Outstanding = 0
	if err := bad2.Validate(); err == nil {
		t.Error("PU with zero MLP accepted")
	}
}

func TestPUIndex(t *testing.T) {
	p := VirtualXavier()
	if got := p.PUIndex("GPU"); got != 1 {
		t.Errorf("PUIndex(GPU) = %d, want 1", got)
	}
	if got := p.PUIndex("NPU"); got != -1 {
		t.Errorf("PUIndex(NPU) = %d, want -1", got)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	p := VirtualXavier()
	if _, err := p.Run(Placement{99: ExternalPressure(10)}, QuickRunConfig()); err == nil {
		t.Error("out-of-range PU accepted")
	}
	if _, err := p.Run(Placement{0: Kernel{Name: "neg", DemandGBps: -1}}, QuickRunConfig()); err == nil {
		t.Error("negative demand accepted")
	}
	if _, err := p.Run(Placement{}, RunConfig{}); err == nil {
		t.Error("zero measurement window accepted")
	}
}

func TestStandaloneAchievesDemandBelowSaturation(t *testing.T) {
	p := VirtualXavier()
	for _, demand := range []float64{10, 40, 80} {
		res, err := p.Standalone(1, Kernel{Name: "k", DemandGBps: demand}, QuickRunConfig())
		if err != nil {
			t.Fatal(err)
		}
		if rel := res.AchievedGBps / demand; rel < 0.93 || rel > 1.02 {
			t.Errorf("standalone %v GB/s: achieved %.2f GB/s (%.1f%%), want ≈100%%",
				demand, res.AchievedGBps, rel*100)
		}
		if res.RelativeSpeed != 1 {
			t.Errorf("standalone relative speed = %v, want 1", res.RelativeSpeed)
		}
	}
}

func TestAchievedNeverExceedsDemandOrPeak(t *testing.T) {
	p := VirtualXavier()
	for _, demand := range []float64{5, 60, 120, 200} {
		res, err := p.Standalone(1, Kernel{Name: "k", DemandGBps: demand}, QuickRunConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.AchievedGBps > demand*1.01 {
			t.Errorf("achieved %.2f exceeds demand %.2f", res.AchievedGBps, demand)
		}
		if res.AchievedGBps > p.PeakGBps()*1.01 {
			t.Errorf("achieved %.2f exceeds peak %.2f", res.AchievedGBps, p.PeakGBps())
		}
	}
}

func TestCorunContentionSlowsHighDemandKernel(t *testing.T) {
	p := VirtualXavier()
	rc := QuickRunConfig()
	res, err := p.RelativeSpeeds(Placement{
		1: Kernel{Name: "hog", DemandGBps: 100},
		0: ExternalPressure(80),
	}, rc)
	if err != nil {
		t.Fatal(err)
	}
	rs := res[1].RelativeSpeed
	if rs >= 0.95 {
		t.Errorf("100 GB/s kernel under 80 GB/s external pressure: RS = %.3f, want noticeable slowdown", rs)
	}
	if rs <= 0.2 {
		t.Errorf("RS = %.3f, implausibly slow (fairness should protect it)", rs)
	}
}

func TestCorunLowDemandKernelBarelySlows(t *testing.T) {
	p := VirtualXavier()
	res, err := p.RelativeSpeeds(Placement{
		0: Kernel{Name: "light", DemandGBps: 8},
		1: ExternalPressure(100),
	}, QuickRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rs := res[0].RelativeSpeed; rs < 0.80 {
		t.Errorf("8 GB/s kernel under 100 GB/s pressure: RS = %.3f, want ≥ 0.80 (minor contention)", rs)
	}
}

func TestRelativeSpeedMonotoneInPressure(t *testing.T) {
	// Higher external pressure must not make the observed kernel faster
	// (beyond measurement noise).
	p := VirtualXavier()
	rc := QuickRunConfig()
	prev := math.Inf(1)
	for _, ext := range []float64{0, 40, 80, 120} {
		pl := Placement{1: Kernel{Name: "k", DemandGBps: 60}}
		if ext > 0 {
			pl[0] = ExternalPressure(ext)
		}
		res, err := p.RelativeSpeeds(pl, rc)
		if err != nil {
			t.Fatal(err)
		}
		rs := res[1].RelativeSpeed
		if rs > prev+0.03 {
			t.Errorf("RS increased with pressure: %.3f → %.3f at ext=%v", prev, rs, ext)
		}
		prev = rs
	}
}

func TestRunOutcomeStats(t *testing.T) {
	p := VirtualXavier()
	out, err := p.Run(Placement{1: Kernel{Name: "k", DemandGBps: 60}}, QuickRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out.RowHitRate <= 0 || out.RowHitRate > 1 {
		t.Errorf("row hit rate = %v", out.RowHitRate)
	}
	if out.EffectiveGBps <= 0 || out.EffectiveGBps > p.PeakGBps() {
		t.Errorf("effective BW = %v", out.EffectiveGBps)
	}
	if out.Results[1].MeanLatencyCycles <= 0 {
		t.Errorf("mean latency = %v", out.Results[1].MeanLatencyCycles)
	}
}

func TestIdleKernelAndZeroDemand(t *testing.T) {
	p := VirtualXavier()
	res, err := p.RelativeSpeeds(Placement{
		0: Kernel{Name: "idle", DemandGBps: 0},
		1: Kernel{Name: "k", DemandGBps: 30},
	}, QuickRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rs := res[0].RelativeSpeed; rs != 1 {
		t.Errorf("idle kernel RS = %v, want 1", rs)
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := VirtualXavier()
	pl := Placement{0: ExternalPressure(50), 1: Kernel{Name: "k", DemandGBps: 70}}
	a, err := p.Run(pl, QuickRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Run(pl, QuickRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Results[1].AchievedGBps != b.Results[1].AchievedGBps {
		t.Errorf("same seed, different results: %v vs %v",
			a.Results[1].AchievedGBps, b.Results[1].AchievedGBps)
	}
}

func TestScaleMemoryHalvesPeak(t *testing.T) {
	p := VirtualXavier()
	s := p.ScaleMemory(0.5)
	if got, want := s.PeakGBps(), p.PeakGBps()/2; math.Abs(got-want) > 0.01 {
		t.Errorf("scaled peak = %v, want %v", got, want)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled platform invalid: %v", err)
	}
}

func TestPUKindString(t *testing.T) {
	for k, s := range map[PUKind]string{CPU: "CPU", GPU: "GPU", DLA: "DLA", Core: "Core"} {
		if k.String() != s {
			t.Errorf("%d → %q, want %q", int(k), k.String(), s)
		}
	}
	if PUKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}
