package soc

import "fmt"

// Kernel describes a piece of work placed on one PU: everything the
// simulator needs to reproduce its memory behaviour. Following the paper's
// processor-centric view, a kernel is characterized by its standalone
// bandwidth demand; locality and MLP refine the simulation and default to
// the host PU's archetype values.
type Kernel struct {
	Name string
	// DemandGBps is the kernel's standalone bandwidth demand in GB/s.
	DemandGBps float64
	// RunLines overrides the PU's sequential run length when > 0.
	RunLines int
	// Outstanding overrides the PU's memory-level parallelism when > 0.
	Outstanding int
	// Streams overrides the PU's concurrent stream count when > 0.
	Streams int
}

// Validate reports whether the kernel is usable.
func (k Kernel) Validate() error {
	if k.DemandGBps < 0 {
		return fmt.Errorf("soc: kernel %q has negative demand", k.Name)
	}
	return nil
}

// ExternalPressure is a convenience constructor for the synthetic external
// bandwidth demand used throughout the paper's characterization: a pure
// streaming traffic generator with the given demand.
func ExternalPressure(demandGBps float64) Kernel {
	return Kernel{Name: fmt.Sprintf("ext-%.0fGBps", demandGBps), DemandGBps: demandGBps}
}

// Placement maps PU indices to the kernels they run. PUs absent from the
// map are idle.
type Placement map[int]Kernel
