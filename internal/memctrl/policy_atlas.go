package memctrl

import (
	"math"

	"github.com/processorcentricmodel/pccs/internal/dram"
)

// ATLAS parameters (Kim et al., HPCA 2010, default configuration).
const (
	// atlasQuantum is the length of one attained-service accounting
	// quantum. The original policy uses 10M cycles; it is scaled down so
	// measurement windows span many quanta (see tcmQuantum).
	atlasQuantum int64 = 100_000
	// atlasAlpha is the exponential decay applied to attained service at
	// quantum boundaries: score = α·score + (1−α)·serviceThisQuantum.
	atlasAlpha = 0.875
	// atlasThreshold is the starvation-prevention age: requests queued for
	// longer are serviced first regardless of rank.
	atlasThreshold int64 = 50_000
	// atlasRankTolerance treats sources whose attained service is within
	// this relative margin of the least-attained source as equal rank, so
	// they compete on row locality and age instead of strict priority.
	// Pure least-attained-service ordering inverts priority pathologically
	// when two sources' demands are close (every pick flip-flops); real
	// controllers quantize ranks per quantum, which this approximates.
	atlasRankTolerance = 0.3
)

// atlasPolicy implements Adaptive per-Thread Least-Attained-Service
// scheduling. Sources that have attained the least memory service are
// prioritized, which in an HSM-SoC equalizes attained service across
// processors — the mechanism behind the flat tail (contention balance
// point) in the co-run speed curves (paper §2.3).
type atlasPolicy struct {
	score        []float64 // decayed attained service per source
	serviceQ     []float64 // service attained in the current quantum
	quantumStart int64
}

func newATLAS(numSources int) *atlasPolicy {
	return &atlasPolicy{
		score:    make([]float64, numSources),
		serviceQ: make([]float64, numSources),
	}
}

func (p *atlasPolicy) Kind() PolicyKind          { return ATLAS }
func (p *atlasPolicy) OnEnqueue(*Request, int64) {}

func (p *atlasPolicy) Reset() {
	for i := range p.score {
		p.score[i] = 0
		p.serviceQ[i] = 0
	}
	p.quantumStart = 0
}

func (p *atlasPolicy) OnService(r *Request, hit bool, now int64) {
	p.rollQuantum(now)
	if r.Source < len(p.serviceQ) {
		p.serviceQ[r.Source]++
	}
}

func (p *atlasPolicy) rollQuantum(now int64) {
	for now-p.quantumStart >= atlasQuantum {
		for i := range p.score {
			p.score[i] = atlasAlpha*p.score[i] + (1-atlasAlpha)*p.serviceQ[i]
			p.serviceQ[i] = 0
		}
		p.quantumStart += atlasQuantum
	}
}

// rank is the total attained service used for LAS ordering: the decayed
// history plus the current quantum, so ranking responds within a quantum.
func (p *atlasPolicy) rank(source int) float64 {
	if source >= len(p.score) {
		return 0
	}
	return p.score[source] + p.serviceQ[source]
}

func (p *atlasPolicy) Pick(q []*Request, ch *dram.Channel, now int64) int {
	p.rollQuantum(now)

	// 1) Over-threshold requests first, oldest among them.
	best := -1
	for i, r := range q {
		if now-r.EnqueuedAt > atlasThreshold {
			if best == -1 || r.EnqueuedAt < q[best].EnqueuedAt {
				best = i
			}
		}
	}
	if best >= 0 {
		return best
	}

	// 2) Least attained service (with rank bucketing), 3) row hit,
	// 4) oldest.
	minRank := math.Inf(1)
	for _, r := range q {
		if rk := p.rank(r.Source); rk < minRank {
			minRank = rk
		}
	}
	topCut := minRank * (1 + atlasRankTolerance)
	bestHit := false
	for i, r := range q {
		if p.rank(r.Source) > topCut {
			continue
		}
		hit := ch.WouldHit(r.Loc.Bank, r.Loc.Row)
		better := false
		switch {
		case best == -1:
			better = true
		case hit && !bestHit:
			better = true
		case hit == bestHit && r.EnqueuedAt < q[best].EnqueuedAt:
			better = true
		}
		if better {
			best, bestHit = i, hit
		}
	}
	return best
}
