package memctrl

import (
	"math/rand"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/dram"
)

// pickRecord captures one scheduling decision: which request was chosen
// and when it was serviced.
type pickRecord struct {
	id     int64
	source int
	at     int64
}

// runSchedule drives a controller through a fixed arrival pattern and
// returns the full sequence of scheduling decisions. The arrival stream
// comes from its own seeded generator, so two calls with equal seeds
// present byte-identical workloads; any divergence in the output is the
// policy's own doing.
func runSchedule(t *testing.T, kind PolicyKind, seed int64) []pickRecord {
	t.Helper()
	// Two sources and mostly-random rows: each source accumulates many
	// small batches per channel, so SMS's arbitration constantly faces
	// pools holding several same-source candidates — the configuration
	// where pool ordering (not just the tie-break keys) decides picks.
	const sources = 2
	c, err := New(Config{Mem: dram.CMPDDR4(), Policy: kind, NumSources: sources, Seed: seed})
	if err != nil {
		t.Fatalf("New(%v): %v", kind, err)
	}
	channels := c.Config().Mem.Channels
	rng := rand.New(rand.NewSource(seed + 1))
	var got []pickRecord
	now := int64(0)
	for step := 0; step < 1500; step++ {
		// A burst of arrivals: a blend of same-row streaks (to form
		// multi-request batches / row hits) and random rows (to close
		// batches early and multiply them).
		for i, n := 0, 2+rng.Intn(3); i < n; i++ {
			src := rng.Intn(sources)
			var addr int64
			if rng.Intn(4) == 0 {
				addr = int64(src)<<16 + int64(rng.Intn(8))*64 // hot row per source
			} else {
				addr = int64(rng.Intn(1<<20)) * 64
			}
			c.Enqueue(src, addr, rng.Intn(4) == 0, now)
		}
		// One scheduling decision per channel, so queues stay deep.
		for ch := 0; ch < channels; ch++ {
			at := c.PickTime(ch, now)
			if r := c.Pick(ch, at); r != nil {
				got = append(got, pickRecord{r.ID, r.Source, at})
			}
		}
		now += int64(1 + rng.Intn(32))
	}
	// Drain what is left so the tail decisions are compared too.
	for ch := 0; ch < channels; ch++ {
		for {
			at := c.PickTime(ch, now)
			r := c.Pick(ch, at)
			if r == nil {
				break
			}
			got = append(got, pickRecord{r.ID, r.Source, at})
			now = at
		}
	}
	return got
}

// TestScheduleDeterminism locks in the simulator's core contract for the
// stochastic policies: with the same seed the scheduler must make the
// exact same decisions, request by request. TCM's clustering/shuffling
// and SMS's probabilistic batch arbitration both draw only from their
// seeded generator, and SMS's candidate pools must be built in queue
// order, never map order (the regression this test pins down).
func TestScheduleDeterminism(t *testing.T) {
	for _, kind := range []PolicyKind{TCM, SMS} {
		t.Run(kind.String(), func(t *testing.T) {
			a := runSchedule(t, kind, 7)
			b := runSchedule(t, kind, 7)
			if len(a) == 0 {
				t.Fatal("no scheduling decisions recorded")
			}
			if len(a) != len(b) {
				t.Fatalf("runs diverged in length: %d vs %d decisions", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("decision %d diverged: run A picked id=%d src=%d at=%d, run B picked id=%d src=%d at=%d",
						i, a[i].id, a[i].source, a[i].at, b[i].id, b[i].source, b[i].at)
				}
			}
		})
	}
}
