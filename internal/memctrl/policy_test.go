package memctrl

import (
	"testing"

	"github.com/processorcentricmodel/pccs/internal/dram"
)

func testController(t *testing.T, kind PolicyKind, sources int) *Controller {
	t.Helper()
	c, err := New(Config{Mem: dram.CMPDDR4(), Policy: kind, NumSources: sources, Seed: 42})
	if err != nil {
		t.Fatalf("New(%v): %v", kind, err)
	}
	return c
}

func TestPolicyKindString(t *testing.T) {
	want := map[PolicyKind]string{
		FCFS: "FCFS", FRFCFS: "FR-FCFS", ATLAS: "ATLAS", TCM: "TCM", SMS: "SMS",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
		parsed, err := ParsePolicy(s)
		if err != nil || parsed != k {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v, nil", s, parsed, err, k)
		}
	}
	if PolicyKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("ParsePolicy(nope) should fail")
	}
}

func TestFairnessAware(t *testing.T) {
	for k, want := range map[PolicyKind]bool{FCFS: false, FRFCFS: false, ATLAS: true, TCM: true, SMS: true} {
		if got := k.FairnessAware(); got != want {
			t.Errorf("%v.FairnessAware() = %v, want %v", k, got, want)
		}
	}
}

func TestNewPolicyPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPolicy(unknown) did not panic")
		}
	}()
	NewPolicy(PolicyKind(99), 4, 1)
}

// enq builds a queued request directly (bypassing the controller) for
// policy-level tests.
func enq(id int64, source int, bank int, row int64, at int64) *Request {
	return &Request{ID: id, Source: source, Loc: dram.Loc{Bank: bank, Row: row}, EnqueuedAt: at}
}

func TestFCFSPicksOldest(t *testing.T) {
	p := NewPolicy(FCFS, 2, 1)
	ch := dram.NewChannel(dram.CMPDDR4())
	q := []*Request{enq(1, 0, 0, 5, 30), enq(2, 1, 1, 6, 10), enq(3, 0, 2, 7, 20)}
	if got := p.Pick(q, ch, 100); got != 1 {
		t.Errorf("FCFS picked index %d, want 1 (oldest)", got)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	p := NewPolicy(FRFCFS, 2, 1)
	ch := dram.NewChannel(dram.CMPDDR4())
	// Open row 9 in bank 3.
	res := ch.Service(0, 3, 9)
	now := res.Done
	q := []*Request{
		enq(1, 0, 0, 5, 0),  // oldest, but a miss to a closed bank
		enq(2, 1, 3, 9, 50), // newer, but a row hit
	}
	if got := p.Pick(q, ch, now); got != 1 {
		t.Errorf("FR-FCFS picked index %d, want 1 (row hit)", got)
	}
	// With no hits, fall back to oldest.
	q2 := []*Request{enq(3, 0, 0, 5, 40), enq(4, 1, 1, 6, 20)}
	if got := p.Pick(q2, ch, now); got != 1 {
		t.Errorf("FR-FCFS without hits picked %d, want 1 (oldest)", got)
	}
}

func TestATLASPrefersLeastAttainedService(t *testing.T) {
	p := newATLAS(2)
	ch := dram.NewChannel(dram.CMPDDR4())
	// Source 0 has attained lots of service this quantum.
	for i := 0; i < 100; i++ {
		p.OnService(enq(int64(i), 0, 0, 0, 0), true, int64(i))
	}
	q := []*Request{
		enq(200, 0, 0, 0, 10), // source 0, older, row hit (bank 0 closed → no hit actually)
		enq(201, 1, 1, 1, 20), // source 1, least attained service
	}
	if got := p.Pick(q, ch, 1000); got != 1 {
		t.Errorf("ATLAS picked %d, want 1 (least attained service)", got)
	}
}

func TestATLASOverThresholdFirst(t *testing.T) {
	p := newATLAS(2)
	ch := dram.NewChannel(dram.CMPDDR4())
	for i := 0; i < 100; i++ {
		p.OnService(enq(int64(i), 1, 0, 0, 0), true, int64(i))
	}
	now := int64(200_000)
	q := []*Request{
		enq(200, 1, 0, 0, 10),     // heavily-serviced source but starving
		enq(201, 0, 1, 1, now-10), // least attained, fresh
	}
	if got := p.Pick(q, ch, now); got != 0 {
		t.Errorf("ATLAS picked %d, want 0 (over starvation threshold)", got)
	}
}

func TestATLASQuantumDecay(t *testing.T) {
	p := newATLAS(2)
	for i := 0; i < 100; i++ {
		p.OnService(enq(int64(i), 0, 0, 0, 0), true, 0)
	}
	before := p.rank(0)
	p.rollQuantum(atlasQuantum * 3)
	after := p.rank(0)
	if after >= before {
		t.Errorf("attained service did not decay: before %v after %v", before, after)
	}
	if p.rank(1) != 0 {
		t.Errorf("idle source rank = %v, want 0", p.rank(1))
	}
}

func TestTCMLatencyClusterPriority(t *testing.T) {
	p := newTCM(2, 7)
	ch := dram.NewChannel(dram.CMPDDR4())
	// Source 1 is memory-intensive during the first quantum.
	for i := 0; i < 1000; i++ {
		p.OnService(enq(int64(i), 1, 0, 0, 0), true, int64(i))
	}
	p.OnService(enq(2000, 0, 0, 0, 0), true, 500) // source 0: light
	// Roll the quantum to recluster.
	p.roll(tcmQuantum + 1)
	if !p.latency[0] {
		t.Fatal("light source 0 should be in the latency-sensitive cluster")
	}
	if p.latency[1] {
		t.Fatal("heavy source 1 should be in the bandwidth cluster")
	}
	q := []*Request{
		enq(1, 1, 0, 0, 10), // heavy source, older
		enq(2, 0, 1, 1, 50), // light source, newer → strict priority
	}
	if got := p.Pick(q, ch, tcmQuantum+10); got != 1 {
		t.Errorf("TCM picked %d, want 1 (latency cluster)", got)
	}
}

func TestTCMShuffleIsDeterministicPerSeed(t *testing.T) {
	a, b := newTCM(8, 123), newTCM(8, 123)
	a.roll(tcmShuffle + 1)
	b.roll(tcmShuffle + 1)
	for i := range a.rank {
		if a.rank[i] != b.rank[i] {
			t.Fatalf("same-seed shuffles diverge at %d: %v vs %v", i, a.rank, b.rank)
		}
	}
}

func TestSMSBatchFormation(t *testing.T) {
	p := newSMS(2, 9)
	r1 := enq(1, 0, 0, 7, 0)
	r1.Loc.Channel = 0
	p.OnEnqueue(r1, 0)
	r2 := enq(2, 0, 0, 7, 1)
	r2.Loc.Channel = 0
	p.OnEnqueue(r2, 1)
	if r1.batch == nil || r1.batch != r2.batch {
		t.Fatal("same-source same-row requests should share a batch")
	}
	if r1.batch.size != 2 {
		t.Errorf("batch size = %d, want 2", r1.batch.size)
	}
	r3 := enq(3, 0, 0, 8, 2) // row change closes the batch
	r3.Loc.Channel = 0
	p.OnEnqueue(r3, 2)
	if !r1.batch.closed {
		t.Error("row change should close the forming batch")
	}
	if r3.batch == r1.batch {
		t.Error("new row should start a new batch")
	}
}

func TestSMSBatchCap(t *testing.T) {
	p := newSMS(1, 9)
	var first *smsBatch
	for i := 0; i < smsBatchCap+1; i++ {
		r := enq(int64(i), 0, 0, 7, int64(i))
		p.OnEnqueue(r, int64(i))
		if i == 0 {
			first = r.batch
		}
	}
	if !first.closed {
		t.Error("batch should close at cap")
	}
	if first.size != smsBatchCap {
		t.Errorf("batch size = %d, want %d", first.size, smsBatchCap)
	}
}

func TestSMSDrainsActiveBatch(t *testing.T) {
	p := newSMS(2, 1)
	ch := dram.NewChannel(dram.CMPDDR4())
	// Two closed batches: source 0 (2 reqs, row 7), source 1 (3 reqs, row 9).
	var q []*Request
	for i := 0; i < 2; i++ {
		r := enq(int64(i), 0, 0, 7, int64(i))
		p.OnEnqueue(r, int64(i))
		q = append(q, r)
	}
	for i := 0; i < 3; i++ {
		r := enq(int64(10+i), 1, 1, 9, int64(10+i))
		p.OnEnqueue(r, int64(10+i))
		q = append(q, r)
	}
	// Close both by row change.
	closer0 := enq(100, 0, 0, 8, 100)
	p.OnEnqueue(closer0, 100)
	closer1 := enq(101, 1, 1, 10, 101)
	p.OnEnqueue(closer1, 101)

	first := p.Pick(q, ch, 200)
	chosen := q[first].batch
	p.OnService(q[first], true, 200)
	rest := append([]*Request{}, q[:first]...)
	rest = append(rest, q[first+1:]...)
	second := p.Pick(rest, ch, 210)
	if rest[second].batch != chosen {
		t.Error("SMS should drain the committed batch before switching")
	}
}

func TestPoliciesResetClearsState(t *testing.T) {
	for _, kind := range AllPolicies {
		p := NewPolicy(kind, 4, 3)
		for i := 0; i < 50; i++ {
			r := enq(int64(i), i%4, 0, int64(i%3), int64(i))
			p.OnEnqueue(r, int64(i))
			p.OnService(r, i%2 == 0, int64(i))
		}
		p.Reset()
		ch := dram.NewChannel(dram.CMPDDR4())
		q := []*Request{enq(1000, 0, 0, 0, 0)}
		r := enq(1001, 0, 0, 0, 0)
		p.OnEnqueue(r, 0)
		q = append(q, r)
		if got := p.Pick(q, ch, 1); got < 0 || got >= len(q) {
			t.Errorf("%v: Pick after Reset out of range: %d", kind, got)
		}
	}
}
