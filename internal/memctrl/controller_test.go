package memctrl

import (
	"testing"
	"testing/quick"

	"github.com/processorcentricmodel/pccs/internal/dram"
)

// drain services every queued request on every channel, returning the
// completed requests in service order.
func drain(c *Controller, start int64) []*Request {
	var done []*Request
	for ch := 0; ch < c.cfg.Mem.Channels; ch++ {
		now := start
		for c.QueueLen(ch) > 0 {
			now = c.PickTime(ch, now)
			if r := c.Pick(ch, now); r != nil {
				done = append(done, r)
			}
		}
	}
	return done
}

func TestControllerValidation(t *testing.T) {
	bad := dram.CMPDDR4()
	bad.Channels = 3
	if _, err := New(Config{Mem: bad, Policy: FCFS, NumSources: 1}); err == nil {
		t.Error("New with invalid DRAM config should fail")
	}
	if _, err := New(Config{Mem: dram.CMPDDR4(), Policy: FCFS, NumSources: 0}); err == nil {
		t.Error("New with zero sources should fail")
	}
}

func TestControllerConservation(t *testing.T) {
	f := func(addrsRaw []int32) bool {
		c, err := New(Config{Mem: dram.CMPDDR4(), Policy: FRFCFS, NumSources: 4, Seed: 1})
		if err != nil {
			return false
		}
		n := len(addrsRaw)
		for i, a := range addrsRaw {
			addr := (int64(a) & 0xFFFFFF) * 64
			c.Enqueue(i%4, addr, false, int64(i))
		}
		if c.PendingTotal() != n {
			return false
		}
		done := drain(c, int64(n))
		return len(done) == n && c.PendingTotal() == 0 && c.Stats().Accesses == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("request conservation violated: %v", err)
	}
}

func TestControllerCompletionAfterEnqueue(t *testing.T) {
	c := testController(t, FCFS, 2)
	for i := 0; i < 100; i++ {
		c.Enqueue(i%2, int64(i*64), false, int64(i))
	}
	for _, r := range drain(c, 100) {
		if r.DoneAt <= r.EnqueuedAt {
			t.Fatalf("request %d done at %d, enqueued at %d", r.ID, r.DoneAt, r.EnqueuedAt)
		}
		if r.Latency() <= 0 {
			t.Fatalf("request %d latency %d", r.ID, r.Latency())
		}
	}
}

func TestFRFCFSHigherRowHitRateThanFCFS(t *testing.T) {
	// Two sources interleave: source 0 streams sequentially (row local),
	// source 1 hops rows. FR-FCFS should recover much more row locality.
	run := func(kind PolicyKind) float64 {
		c := testController(t, kind, 2)
		lines := int64(64)
		var t0 int64
		for i := int64(0); i < 512; i++ {
			// Interleave arrivals in the queue.
			c.Enqueue(0, i*64, false, t0)
			c.Enqueue(1, (i*977+13)*4096*8, false, t0)
			t0++
		}
		drain(c, t0)
		_ = lines
		return c.Stats().RowHitRate()
	}
	fcfs, fr := run(FCFS), run(FRFCFS)
	if fr <= fcfs {
		t.Errorf("FR-FCFS RBH %.3f not above FCFS RBH %.3f", fr, fcfs)
	}
}

func TestControllerResetRestoresInitialState(t *testing.T) {
	c := testController(t, SMS, 2)
	for i := 0; i < 50; i++ {
		c.Enqueue(i%2, int64(i*64), false, int64(i))
	}
	drain(c, 50)
	c.Reset()
	if c.PendingTotal() != 0 || c.Stats().Accesses != 0 {
		t.Errorf("after Reset: pending=%d accesses=%d", c.PendingTotal(), c.Stats().Accesses)
	}
	// Controller must be reusable after Reset.
	c.Enqueue(0, 0, false, 0)
	if got := len(drain(c, 0)); got != 1 {
		t.Errorf("drained %d requests after Reset, want 1", got)
	}
}

func TestPickOnEmptyQueueReturnsNil(t *testing.T) {
	c := testController(t, FCFS, 1)
	if r := c.Pick(0, 10); r != nil {
		t.Errorf("Pick on empty queue = %v, want nil", r)
	}
}

func TestPickTimeMonotonic(t *testing.T) {
	c := testController(t, FRFCFS, 1)
	for i := 0; i < 32; i++ {
		c.Enqueue(0, int64(i*64), false, 0)
	}
	ch := 0
	now := int64(0)
	prev := int64(-1)
	for c.QueueLen(ch) > 0 {
		now = c.PickTime(ch, now)
		if now < prev {
			t.Fatalf("PickTime went backwards: %d after %d", now, prev)
		}
		if c.Pick(ch, now) == nil {
			t.Fatal("Pick returned nil with non-empty queue")
		}
		prev = now
	}
}

func TestStatsPerSourceAccounting(t *testing.T) {
	c := testController(t, FCFS, 3)
	counts := []int{5, 7, 11}
	at := int64(0)
	for s, n := range counts {
		for i := 0; i < n; i++ {
			c.Enqueue(s, int64((s*1000+i)*64), false, at)
			at++
		}
	}
	drain(c, at)
	st := c.Stats()
	for s, n := range counts {
		if st.PerSourceLines[s] != int64(n) {
			t.Errorf("source %d served %d lines, want %d", s, st.PerSourceLines[s], n)
		}
		if got, want := st.SourceBytes(s, 64), int64(n*64); got != want {
			t.Errorf("source %d bytes = %d, want %d", s, got, want)
		}
	}
	if st.SourceBytes(99, 64) != 0 {
		t.Error("out-of-range source should report 0 bytes")
	}
	if st.RowHitRate() < 0 || st.RowHitRate() > 1 {
		t.Errorf("row hit rate %v out of range", st.RowHitRate())
	}
	if st.MeanLatency() <= 0 {
		t.Errorf("mean latency %v, want > 0", st.MeanLatency())
	}
	if st.ServedBytes(64) != int64(5+7+11)*64 {
		t.Errorf("served bytes = %d", st.ServedBytes(64))
	}
}

func TestEmptyStatsSafe(t *testing.T) {
	s := NewStats(2)
	if s.RowHitRate() != 0 || s.MeanLatency() != 0 {
		t.Error("empty stats should report zeros")
	}
}

func TestAllPoliciesDrainHeavyMixedTraffic(t *testing.T) {
	for _, kind := range AllPolicies {
		c := testController(t, kind, 8)
		at := int64(0)
		for i := 0; i < 2000; i++ {
			src := i % 8
			var addr int64
			if src < 4 {
				addr = int64(src)<<30 + int64(i/8)*64 // streaming
			} else {
				addr = int64(src)<<30 + int64((i*2654435761)&0xFFFFF)*64 // scattered
			}
			c.Enqueue(src, addr, false, at)
			at += 2
		}
		done := drain(c, at)
		if len(done) != 2000 {
			t.Errorf("%v: drained %d, want 2000", kind, len(done))
		}
		if c.Stats().Accesses != 2000 {
			t.Errorf("%v: accesses %d, want 2000", kind, c.Stats().Accesses)
		}
	}
}
