// Package memctrl implements the shared memory controller of the simulated
// SoC: per-channel request queues in front of the DRAM channels, and the
// five scheduling policies studied in §2.3 of the PCCS paper (Table 2):
// FCFS, FR-FCFS, ATLAS, TCM and SMS.
//
// The controller is the component whose behaviour the PCCS slowdown model
// abstracts: row-hit prioritization creates the early slowdown before total
// demand reaches peak bandwidth, and fairness control creates the flat tail
// of the co-run speed curves (the contention balance point).
package memctrl

import "github.com/processorcentricmodel/pccs/internal/dram"

// Request is one line-sized memory transaction from a source (a processing
// unit or core) to the shared DRAM.
type Request struct {
	ID     int64
	Source int      // index of the requesting PU/core
	Loc    dram.Loc // decoded DRAM location
	Write  bool

	// EnqueuedAt is the cycle the request entered the controller queue.
	EnqueuedAt int64
	// ServicedAt is the cycle the scheduler picked the request.
	ServicedAt int64
	// DoneAt is the cycle the last data beat transferred.
	DoneAt int64
	// Hit records the row-buffer outcome.
	Hit bool

	// batch links the request to an SMS batch; unused by other policies.
	batch *smsBatch
}

// Latency is the queueing + service latency of a completed request.
func (r *Request) Latency() int64 { return r.DoneAt - r.EnqueuedAt }
