package memctrl

import (
	"math/rand"

	"github.com/processorcentricmodel/pccs/internal/dram"
)

// SMS parameters (Ausavarungnirun et al., ISCA 2012, default configuration).
const (
	// smsBatchCap closes a forming batch after this many requests.
	smsBatchCap = 8
	// smsShortestProb is the probability p of picking the shortest ready
	// batch; with probability 1−p sources are served round-robin.
	smsShortestProb = 0.9
)

// smsBatch is a group of same-source, same-row requests formed at enqueue
// time (stage 1 of SMS) and scheduled as a unit (stage 2).
type smsBatch struct {
	source  int
	row     int64
	channel int
	size    int // requests ever added
	left    int // requests not yet serviced
	closed  bool
}

// smsPolicy implements Staged Memory Scheduling. Batch formation groups
// requests to the same row from the same source; the batch scheduler then
// picks, per decision, the shortest ready batch with probability p and
// round-robins across sources otherwise. Serving whole batches preserves
// row locality (high RBH) while the probabilistic arbitration provides
// fairness across sources.
type smsPolicy struct {
	numSources int
	rng        *rand.Rand
	// forming is the batch currently being assembled per (source, channel).
	forming map[[2]int]*smsBatch
	// active is the batch currently being drained per channel; SMS commits
	// to a batch until its requests are all serviced.
	active map[int]*smsBatch
	// rrNext is the round-robin pointer over sources.
	rrNext int
}

func newSMS(numSources int, seed int64) *smsPolicy {
	return &smsPolicy{
		numSources: numSources,
		rng:        rand.New(rand.NewSource(seed)),
		forming:    make(map[[2]int]*smsBatch),
		active:     make(map[int]*smsBatch),
	}
}

func (p *smsPolicy) Kind() PolicyKind { return SMS }

func (p *smsPolicy) Reset() {
	p.forming = make(map[[2]int]*smsBatch)
	p.active = make(map[int]*smsBatch)
	p.rrNext = 0
}

// OnEnqueue performs stage-1 batch formation: a request joins the forming
// batch of its (source, channel) if it targets the same row and the batch
// has room; otherwise the forming batch is closed and a new one starts.
func (p *smsPolicy) OnEnqueue(r *Request, now int64) {
	key := [2]int{r.Source, r.Loc.Channel}
	b := p.forming[key]
	if b != nil && !b.closed && b.row == r.Loc.Row && b.size < smsBatchCap {
		b.size++
		b.left++
		r.batch = b
		if b.size >= smsBatchCap {
			b.closed = true
		}
		return
	}
	if b != nil {
		b.closed = true
	}
	nb := &smsBatch{source: r.Source, row: r.Loc.Row, channel: r.Loc.Channel, size: 1, left: 1}
	p.forming[key] = nb
	r.batch = nb
}

func (p *smsPolicy) OnService(r *Request, hit bool, now int64) {
	if r.batch == nil {
		return
	}
	r.batch.left--
	if r.batch.left <= 0 {
		if p.active[r.Loc.Channel] == r.batch {
			delete(p.active, r.Loc.Channel)
		}
		if p.forming[[2]int{r.Source, r.Loc.Channel}] == r.batch {
			delete(p.forming, [2]int{r.Source, r.Loc.Channel})
		}
	}
}

func (p *smsPolicy) Pick(q []*Request, ch *dram.Channel, now int64) int {
	channel := q[0].Loc.Channel

	// Continue draining the committed batch if it still has queued requests.
	if b := p.active[channel]; b != nil {
		if i := oldestOfBatch(q, b); i >= 0 {
			return i
		}
		// Batch has in-flight but no queued requests; fall through and
		// choose a new batch (the old one completes via OnService).
	}

	// Choose a new batch among those with queued requests on this channel.
	// A batch is ready if closed; open batches are eligible only when no
	// closed batch exists (avoids starving on a slowly-forming batch).
	type cand struct {
		b      *smsBatch
		oldest int
	}
	var closedC, openC []cand
	seen := map[*smsBatch]int{}
	for i, r := range q {
		if r.batch == nil {
			continue
		}
		if j, ok := seen[r.batch]; ok {
			if r.EnqueuedAt < q[j].EnqueuedAt {
				seen[r.batch] = i
			}
			continue
		}
		seen[r.batch] = i
	}
	// Build the pools in queue order (first occurrence), not map order:
	// the round-robin arbiter below breaks distance ties by pool position,
	// so pool order must be a pure function of the queue contents.
	emitted := map[*smsBatch]bool{}
	for _, r := range q {
		b := r.batch
		if b == nil || emitted[b] {
			continue
		}
		emitted[b] = true
		if b.closed {
			closedC = append(closedC, cand{b, seen[b]})
		} else {
			openC = append(openC, cand{b, seen[b]})
		}
	}
	pool := closedC
	if len(pool) == 0 {
		pool = openC
	}
	if len(pool) == 0 {
		return oldest(q) // requests without batches (defensive)
	}

	var chosen cand
	if p.rng.Float64() < smsShortestProb {
		// Shortest-batch-first: fewest remaining requests; break ties by
		// the age of the oldest queued request for determinism.
		chosen = pool[0]
		for _, c := range pool[1:] {
			switch {
			case c.b.left != chosen.b.left:
				if c.b.left < chosen.b.left {
					chosen = c
				}
			case q[c.oldest].EnqueuedAt != q[chosen.oldest].EnqueuedAt:
				if q[c.oldest].EnqueuedAt < q[chosen.oldest].EnqueuedAt {
					chosen = c
				}
			case q[c.oldest].ID < q[chosen.oldest].ID:
				chosen = c
			}
		}
	} else {
		// Round-robin over sources: the first source at or after rrNext
		// that has a candidate batch.
		chosen = pool[0]
		bestDist := p.numSources + 1
		for _, c := range pool {
			d := (c.b.source - p.rrNext + p.numSources) % p.numSources
			if d < bestDist {
				bestDist, chosen = d, c
			}
		}
		p.rrNext = (chosen.b.source + 1) % p.numSources
	}
	p.active[channel] = chosen.b
	return chosen.oldest
}

// oldestOfBatch returns the oldest queued request belonging to b, or -1.
func oldestOfBatch(q []*Request, b *smsBatch) int {
	best := -1
	for i, r := range q {
		if r.batch == b && (best == -1 || r.EnqueuedAt < q[best].EnqueuedAt) {
			best = i
		}
	}
	return best
}
