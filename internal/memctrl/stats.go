package memctrl

// Stats accumulates controller-level service statistics over a measurement
// window. The PCCS characterization uses two of these: the row-buffer hit
// rate and the effective bandwidth relative to the theoretical peak
// (paper Table 3).
type Stats struct {
	// Accesses is the number of serviced line transfers.
	Accesses int64
	// RowHits is the number of serviced transfers that hit an open row.
	RowHits int64
	// LatencySum accumulates enqueue-to-done latency over serviced requests.
	LatencySum int64
	// PerSourceLines counts serviced transfers per source.
	PerSourceLines []int64
	// WindowStart is the cycle the measurement window opened.
	WindowStart int64
}

// NewStats allocates statistics for numSources sources.
func NewStats(numSources int) *Stats {
	return &Stats{PerSourceLines: make([]int64, numSources)}
}

// Reset opens a new measurement window at cycle now.
func (s *Stats) Reset(now int64) {
	s.Accesses = 0
	s.RowHits = 0
	s.LatencySum = 0
	for i := range s.PerSourceLines {
		s.PerSourceLines[i] = 0
	}
	s.WindowStart = now
}

// RowHitRate is the fraction of serviced transfers that were row hits.
func (s *Stats) RowHitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses)
}

// MeanLatency is the average enqueue-to-done latency in cycles.
func (s *Stats) MeanLatency() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Accesses)
}

// ServedBytes is the total data moved in the window, given the line size.
func (s *Stats) ServedBytes(lineBytes int) int64 {
	return s.Accesses * int64(lineBytes)
}

// SourceBytes is the data moved for one source in the window.
func (s *Stats) SourceBytes(source, lineBytes int) int64 {
	if source < 0 || source >= len(s.PerSourceLines) {
		return 0
	}
	return s.PerSourceLines[source] * int64(lineBytes)
}
