package memctrl

import "github.com/processorcentricmodel/pccs/internal/dram"

// fcfsPolicy services requests strictly in arrival order. Its lack of row
// locality awareness produces low row-buffer hit rates and poor effective
// bandwidth under co-location (paper Fig. 5a / Table 3).
type fcfsPolicy struct{}

func (*fcfsPolicy) Kind() PolicyKind                { return FCFS }
func (*fcfsPolicy) OnEnqueue(*Request, int64)       {}
func (*fcfsPolicy) OnService(*Request, bool, int64) {}
func (*fcfsPolicy) Reset()                          {}
func (*fcfsPolicy) Pick(q []*Request, _ *dram.Channel, _ int64) int {
	return oldest(q)
}

// frfcfsPolicy is first-ready FCFS: among queued requests it prefers
// row-buffer hits (which pipeline at tCCD spacing), then requests whose bank
// is ready for a new activate, then the oldest request. It maximizes
// bandwidth but has no fairness control, so a co-located memory-intensive
// stream can hog the row buffers (Fig. 5b).
type frfcfsPolicy struct{}

func (*frfcfsPolicy) Kind() PolicyKind                { return FRFCFS }
func (*frfcfsPolicy) OnEnqueue(*Request, int64)       {}
func (*frfcfsPolicy) OnService(*Request, bool, int64) {}
func (*frfcfsPolicy) Reset()                          {}

func (*frfcfsPolicy) Pick(q []*Request, ch *dram.Channel, now int64) int {
	best := -1
	bestClass := 3 // 0: row hit, 1: bank ready, 2: rest
	for i, r := range q {
		hit := ch.WouldHit(r.Loc.Bank, r.Loc.Row)
		ready := ch.BankReadyAt(r.Loc.Bank) <= now
		class := 2
		switch {
		case hit:
			class = 0
		case ready:
			class = 1
		}
		if best == -1 || class < bestClass ||
			(class == bestClass && r.EnqueuedAt < q[best].EnqueuedAt) {
			best, bestClass = i, class
		}
	}
	return best
}
