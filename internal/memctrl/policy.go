package memctrl

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/dram"
)

// PolicyKind selects a memory scheduling policy (paper Table 2).
type PolicyKind int

const (
	// FCFS schedules memory requests chronologically.
	FCFS PolicyKind = iota
	// FRFCFS prioritizes row-hit requests, then ready requests, then oldest
	// (Rixner et al., ISCA 2000).
	FRFCFS
	// ATLAS prioritizes (1) over-threshold requests, (2) requests from the
	// source that has attained the least service, (3) row hits, (4) oldest
	// (Kim et al., HPCA 2010).
	ATLAS
	// TCM clusters sources into a latency-sensitive cluster (strict
	// priority) and a bandwidth-intensive cluster with periodically
	// shuffled ranks (Kim et al., MICRO 2010).
	TCM
	// SMS groups same-source same-row requests into batches and schedules
	// batches shortest-first with probability p, round-robin otherwise
	// (Ausavarungnirun et al., ISCA 2012).
	SMS
)

// AllPolicies lists every implemented policy in presentation order.
var AllPolicies = []PolicyKind{FCFS, FRFCFS, ATLAS, TCM, SMS}

func (k PolicyKind) String() string {
	switch k {
	case FCFS:
		return "FCFS"
	case FRFCFS:
		return "FR-FCFS"
	case ATLAS:
		return "ATLAS"
	case TCM:
		return "TCM"
	case SMS:
		return "SMS"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// FairnessAware reports whether the policy employs fairness control. The
// paper's validation (§2.3) shows the three-region slowdown behaviour
// appears exactly under fairness-aware policies.
func (k PolicyKind) FairnessAware() bool { return k == ATLAS || k == TCM || k == SMS }

// ParsePolicy converts a policy name (as printed by String) to its kind.
func ParsePolicy(s string) (PolicyKind, error) {
	for _, k := range AllPolicies {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("memctrl: unknown policy %q", s)
}

// Policy is a memory request scheduler. One Policy instance serves all
// channels of a controller, so source-level bookkeeping (attained service,
// clustering, batches) is naturally global.
//
// Pick returns the index within q (the requests queued at one channel) of
// the request to service next; q is never empty. Implementations must not
// retain q.
type Policy interface {
	Kind() PolicyKind
	Pick(q []*Request, ch *dram.Channel, now int64) int
	// OnEnqueue observes a request entering the controller.
	OnEnqueue(r *Request, now int64)
	// OnService observes a request leaving for DRAM with its row outcome.
	OnService(r *Request, hit bool, now int64)
	// Reset clears policy state between measurement runs.
	Reset()
}

// NewPolicy constructs a policy instance for numSources sources. seed feeds
// the deterministic PRNG used by TCM's rank shuffling and SMS's
// probabilistic batch choice.
func NewPolicy(kind PolicyKind, numSources int, seed int64) Policy {
	switch kind {
	case FCFS:
		return &fcfsPolicy{}
	case FRFCFS:
		return &frfcfsPolicy{}
	case ATLAS:
		return newATLAS(numSources)
	case TCM:
		return newTCM(numSources, seed)
	case SMS:
		return newSMS(numSources, seed)
	default:
		panic(fmt.Sprintf("memctrl: unknown policy kind %d", int(kind)))
	}
}

// oldest returns the index of the earliest-enqueued request in q.
func oldest(q []*Request) int {
	best := 0
	for i := 1; i < len(q); i++ {
		if q[i].EnqueuedAt < q[best].EnqueuedAt {
			best = i
		}
	}
	return best
}
