package memctrl

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/dram"
)

// Config configures a memory controller.
type Config struct {
	Mem        dram.Config
	Policy     PolicyKind
	NumSources int
	// Seed feeds the deterministic PRNG of stochastic policies (TCM, SMS).
	Seed int64
}

// Controller is the shared memory controller: one request queue per DRAM
// channel, a scheduling policy deciding service order, and service
// statistics. It is driven by an external event loop (internal/soc):
//
//	Enqueue(req, now)      — a source issues a request
//	PickTime(ch, now)      — when may the next scheduling decision happen
//	Pick(ch, now)          — make one scheduling decision, service the pick
//
// The controller issues column commands up to a small lookahead ahead of the
// data bus so that bursts pack back-to-back (as pipelined real controllers
// do) while scheduling decisions still happen close to request arrivals.
type Controller struct {
	cfg      Config
	mapper   *dram.Mapper
	channels []*dram.Channel
	queues   [][]*Request
	policy   Policy
	stats    *Stats
	nextID   int64
	// lastPickAt spaces scheduling decisions at least one burst apart per
	// channel, matching the one-command-per-tCCD command bandwidth.
	lastPickAt []int64
	// maxAhead caps how many data bursts may be booked ahead of the bus
	// (≈ one row cycle of pipelining); see PickTime.
	maxAhead int
}

// maxBurstsAhead caps the controller's decision pipelining: at most this
// many data bursts may be booked ahead of the bus. Enough to hide
// precharge/activate latencies behind transfers, small enough that the
// scheduler keeps deciding against a populated queue (empirically the
// sweet spot across policies; see DESIGN.md).
const maxBurstsAhead = 16

// New builds a controller. The DRAM configuration must be valid.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Mem.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumSources <= 0 {
		return nil, fmt.Errorf("memctrl: NumSources must be positive, got %d", cfg.NumSources)
	}
	c := &Controller{
		cfg:        cfg,
		mapper:     dram.NewMapper(cfg.Mem),
		channels:   make([]*dram.Channel, cfg.Mem.Channels),
		queues:     make([][]*Request, cfg.Mem.Channels),
		policy:     NewPolicy(cfg.Policy, cfg.NumSources, cfg.Seed),
		stats:      NewStats(cfg.NumSources),
		lastPickAt: make([]int64, cfg.Mem.Channels),
	}
	c.maxAhead = maxBurstsAhead
	for i := range c.channels {
		c.channels[i] = dram.NewChannel(cfg.Mem)
		c.lastPickAt[i] = -1 << 62
	}
	return c, nil
}

// Mapper exposes the address mapping used by the controller.
func (c *Controller) Mapper() *dram.Mapper { return c.mapper }

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns the live statistics window.
func (c *Controller) Stats() *Stats { return c.stats }

// ResetStats opens a new measurement window (e.g. after warm-up).
func (c *Controller) ResetStats(now int64) { c.stats.Reset(now) }

// QueueLen reports the number of requests queued at a channel.
func (c *Controller) QueueLen(ch int) int { return len(c.queues[ch]) }

// PendingTotal reports the number of requests queued across all channels.
func (c *Controller) PendingTotal() int {
	n := 0
	for _, q := range c.queues {
		n += len(q)
	}
	return n
}

// Enqueue admits a request for the line containing addr at cycle now and
// returns the request and its channel. The caller (event loop) should
// schedule a Pick for that channel if it is idle.
func (c *Controller) Enqueue(source int, addr int64, write bool, now int64) (*Request, int) {
	return c.EnqueueAt(source, c.mapper.Decode(addr), write, now)
}

// EnqueueAt admits a pre-decoded request. Multi-controller SoCs decode with
// a global address mapping and route each request to the controller owning
// its channel (with Loc.Channel rewritten to the controller-local index);
// see the soc package.
func (c *Controller) EnqueueAt(source int, loc dram.Loc, write bool, now int64) (*Request, int) {
	c.nextID++
	r := &Request{
		ID:         c.nextID,
		Source:     source,
		Loc:        loc,
		Write:      write,
		EnqueuedAt: now,
	}
	ch := r.Loc.Channel
	c.queues[ch] = append(c.queues[ch], r)
	c.policy.OnEnqueue(r, now)
	return r, ch
}

// PickTime returns the earliest cycle ≥ now at which the next scheduling
// decision for channel ch may be made. Decisions are spaced one burst apart
// (the channel's command bandwidth) and are gated so that at most about one
// row-cycle worth of data bursts is booked ahead of the bus: enough
// pipelining to hide precharge/activate latencies behind transfers, while
// the scheduler keeps deciding against a populated queue — row-hit-first
// reordering is worthless on a drained queue.
func (c *Controller) PickTime(ch int, now int64) int64 {
	at := now
	if e := c.lastPickAt[ch] + c.cfg.Mem.BurstCycles(); e > at {
		at = e
	}
	if e := c.channels[ch].BacklogGate(c.maxAhead, now); e > at {
		at = e
	}
	return at
}

// Pick makes one scheduling decision on channel ch at cycle now: the policy
// selects a queued request, the channel services it, and statistics update.
// It returns the serviced request, or nil if the channel queue is empty.
func (c *Controller) Pick(ch int, now int64) *Request {
	q := c.queues[ch]
	if len(q) == 0 {
		return nil
	}
	idx := c.policy.Pick(q, c.channels[ch], now)
	r := q[idx]
	// Remove preserving arrival order (policies rely on stable queues).
	c.queues[ch] = append(q[:idx], q[idx+1:]...)

	res := c.channels[ch].Service(now, r.Loc.Bank, r.Loc.Row)
	r.ServicedAt = now
	r.DoneAt = res.Done
	r.Hit = res.Kind == dram.RowHit
	c.lastPickAt[ch] = now

	c.stats.Accesses++
	if r.Hit {
		c.stats.RowHits++
	}
	c.stats.LatencySum += r.Latency()
	if r.Source >= 0 && r.Source < len(c.stats.PerSourceLines) {
		c.stats.PerSourceLines[r.Source]++
	}
	c.policy.OnService(r, r.Hit, now)
	return r
}

// Channel exposes a channel's state (read-mostly; used by diagnostics).
func (c *Controller) Channel(ch int) *dram.Channel { return c.channels[ch] }

// Reset returns the controller to the power-on state: empty queues, closed
// rows, fresh policy and statistics.
func (c *Controller) Reset() {
	for i := range c.channels {
		c.channels[i].Reset()
		c.queues[i] = c.queues[i][:0]
		c.lastPickAt[i] = -1 << 62
	}
	c.policy.Reset()
	c.stats.Reset(0)
	c.nextID = 0
}
