package memctrl

import (
	"testing"

	"github.com/processorcentricmodel/pccs/internal/dram"
)

// TestStreamingReachesNearPeakBandwidth drives one channel with perfectly
// row-local traffic through the pick loop and checks the controller's
// lookahead keeps the data bus saturated (activates hidden behind bursts).
func TestStreamingReachesNearPeakBandwidth(t *testing.T) {
	c := testController(t, FRFCFS, 1)
	cfg := c.Config().Mem
	const lines = 4096
	// Sequential addresses on channel 0 only: every cfg.Channels-th line.
	for i := 0; i < lines; i++ {
		c.Enqueue(0, int64(i*cfg.LineBytes*cfg.Channels), false, 0)
	}
	now := int64(0)
	var last *Request
	for c.QueueLen(0) > 0 {
		now = c.PickTime(0, now)
		if r := c.Pick(0, now); r != nil {
			last = r
		}
	}
	if last == nil {
		t.Fatal("nothing serviced")
	}
	elapsed := last.DoneAt
	busLimited := int64(lines) * cfg.BurstCycles()
	if elapsed < busLimited {
		t.Fatalf("finished in %d cycles, below the bus-limited bound %d", elapsed, busLimited)
	}
	eff := float64(busLimited) / float64(elapsed)
	if eff < 0.9 {
		t.Errorf("streaming efficiency %.2f, want ≥ 0.90 (lookahead should hide activates)", eff)
	}
}

// TestRandomTrafficBelowStreaming sanity-checks that row-conflict-heavy
// traffic costs bandwidth relative to streaming (row buffers matter).
func TestRandomTrafficBelowStreaming(t *testing.T) {
	run := func(stride int64) int64 {
		c := testController(t, FRFCFS, 1)
		for i := int64(0); i < 1024; i++ {
			c.Enqueue(0, i*stride, false, 0)
		}
		now := int64(0)
		var done int64
		for c.QueueLen(0) > 0 {
			now = c.PickTime(0, now)
			if r := c.Pick(0, now); r != nil && r.DoneAt > done {
				done = r.DoneAt
			}
		}
		return done
	}
	cfg := dram.CMPDDR4()
	streaming := run(int64(cfg.LineBytes * cfg.Channels))
	// Row-sized hops within one channel: no spatial locality at all.
	thrash := run(int64(cfg.RowBytes * cfg.Channels * cfg.BanksPerChannel))
	if thrash <= streaming {
		t.Errorf("row-thrash traffic (%d cycles) not slower than streaming (%d)", thrash, streaming)
	}
}

// TestPickTimeSpacing: scheduling decisions on one channel are spaced at
// least one burst apart (the command bandwidth of the channel).
func TestPickTimeSpacing(t *testing.T) {
	c := testController(t, FCFS, 1)
	cfg := c.Config().Mem
	for i := 0; i < 512; i++ {
		c.Enqueue(0, int64(i*cfg.LineBytes*cfg.Channels), false, 0)
	}
	now := int64(0)
	prev := int64(-1 << 62)
	for c.QueueLen(0) > 0 {
		now = c.PickTime(0, now)
		if now-prev < cfg.BurstCycles() {
			t.Fatalf("decisions %d and %d closer than one burst", prev, now)
		}
		c.Pick(0, now)
		prev = now
	}
}
