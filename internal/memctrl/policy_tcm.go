package memctrl

import (
	"math/rand"
	"sort"

	"github.com/processorcentricmodel/pccs/internal/dram"
)

// TCM parameters (Kim et al., MICRO 2010, default configuration).
const (
	// tcmQuantum is the clustering interval: per-source bandwidth usage is
	// measured over each quantum and sources are re-clustered at its end.
	// The original policy uses 1M cycles; simulation windows here are a few
	// hundred thousand cycles, so the quantum is scaled down to keep many
	// quanta per measurement window (steady-state clustering, not the
	// first-quantum transient).
	tcmQuantum int64 = 50_000
	// tcmShuffle is the rank-shuffling interval within the bandwidth-
	// intensive cluster (scaled with the quantum).
	tcmShuffle int64 = 800
	// tcmClusterFraction is the fraction of total measured bandwidth
	// allotted to the latency-sensitive cluster: sources are added to the
	// latency cluster in increasing-usage order until their cumulative
	// usage exceeds this fraction of the total.
	tcmClusterFraction = 0.15
)

// tcmPolicy implements Thread Cluster Memory scheduling: non-memory-
// intensive sources form a latency-sensitive cluster with strict priority;
// memory-intensive sources form a bandwidth cluster whose relative ranks are
// shuffled periodically to equalize slowdowns (fairness).
type tcmPolicy struct {
	numSources int
	rng        *rand.Rand

	usageQ []float64 // lines served per source this quantum
	// usageEWMA smooths per-source usage across quanta so sources sitting
	// exactly at the cluster threshold do not flip membership every
	// quantum (each flip costs the source a burst of latency spikes).
	usageEWMA    []float64
	latency      []bool // cluster membership, rebuilt each quantum
	rank         []int  // shuffled rank within the bandwidth cluster
	quantumStart int64
	shuffleStart int64
}

// tcmEWMA is the per-quantum smoothing factor applied to usage history.
const tcmEWMA = 0.5

func newTCM(numSources int, seed int64) *tcmPolicy {
	p := &tcmPolicy{
		numSources: numSources,
		rng:        rand.New(rand.NewSource(seed)),
		usageQ:     make([]float64, numSources),
		usageEWMA:  make([]float64, numSources),
		latency:    make([]bool, numSources),
		rank:       make([]int, numSources),
	}
	for i := range p.rank {
		p.rank[i] = i
	}
	// Before the first quantum completes there is no usage information;
	// treat every source as latency-sensitive (equivalent to FR-FCFS-like
	// behaviour during warm-up).
	for i := range p.latency {
		p.latency[i] = true
	}
	return p
}

func (p *tcmPolicy) Kind() PolicyKind          { return TCM }
func (p *tcmPolicy) OnEnqueue(*Request, int64) {}

func (p *tcmPolicy) Reset() {
	for i := range p.usageQ {
		p.usageQ[i] = 0
		p.usageEWMA[i] = 0
		p.latency[i] = true
		p.rank[i] = i
	}
	p.quantumStart = 0
	p.shuffleStart = 0
}

func (p *tcmPolicy) OnService(r *Request, hit bool, now int64) {
	p.roll(now)
	if r.Source < len(p.usageQ) {
		p.usageQ[r.Source]++
	}
}

func (p *tcmPolicy) roll(now int64) {
	if now-p.quantumStart >= tcmQuantum {
		for i := range p.usageQ {
			p.usageEWMA[i] = tcmEWMA*p.usageEWMA[i] + (1-tcmEWMA)*p.usageQ[i]
		}
		p.recluster()
		for now-p.quantumStart >= tcmQuantum {
			p.quantumStart += tcmQuantum
		}
		for i := range p.usageQ {
			p.usageQ[i] = 0
		}
	}
	if now-p.shuffleStart >= tcmShuffle {
		p.shuffleRanks()
		for now-p.shuffleStart >= tcmShuffle {
			p.shuffleStart += tcmShuffle
		}
	}
}

// recluster rebuilds the latency-sensitive cluster from the usage measured
// over the last quantum: sources are sorted by increasing usage and admitted
// while their cumulative usage stays below tcmClusterFraction of the total.
func (p *tcmPolicy) recluster() {
	total := 0.0
	order := make([]int, p.numSources)
	for i := range order {
		order[i] = i
		total += p.usageEWMA[i]
	}
	if total == 0 {
		for i := range p.latency {
			p.latency[i] = true
		}
		return
	}
	sort.Slice(order, func(a, b int) bool { return p.usageEWMA[order[a]] < p.usageEWMA[order[b]] })
	cum := 0.0
	for i := range p.latency {
		p.latency[i] = false
	}
	for _, s := range order {
		cum += p.usageEWMA[s]
		if cum > total*tcmClusterFraction && p.usageEWMA[s] > 0 {
			break
		}
		p.latency[s] = true
	}
}

func (p *tcmPolicy) shuffleRanks() {
	p.rng.Shuffle(len(p.rank), func(i, j int) { p.rank[i], p.rank[j] = p.rank[j], p.rank[i] })
}

// Pick orders requests by (cluster, row-hit, rank, age). The TCM paper
// states rank above row-hit, but it assumes a two-level controller with
// per-bank engines that keep draining an open row's hits regardless of the
// cross-bank rank decision; in this single-queue abstraction a literal
// rank-first order alternates rows on every pick and destroys the row
// locality every real implementation preserves, so row hits are honoured
// first within each cluster (the rank then decides which source's rows get
// opened — the fairness effect TCM is after).
func (p *tcmPolicy) Pick(q []*Request, ch *dram.Channel, now int64) int {
	p.roll(now)
	best := -1
	var bestKey [4]int64 // lower is better: cluster, !hit, rank, age
	for i, r := range q {
		lat := r.Source < p.numSources && p.latency[r.Source]
		rk := int64(0)
		if !lat && r.Source < len(p.rank) {
			rk = int64(p.rank[r.Source])
		}
		hit := ch.WouldHit(r.Loc.Bank, r.Loc.Row)
		key := [4]int64{boolToInt64(!lat), boolToInt64(!hit), rk, r.EnqueuedAt}
		if best == -1 || less4(key, bestKey) {
			best, bestKey = i, key
		}
	}
	return best
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func less4(a, b [4]int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
