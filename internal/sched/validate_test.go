package sched

import (
	"context"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// validateRC mirrors the experiment tests' fast simulation window.
func validateRC() soc.RunConfig {
	return soc.RunConfig{WarmupCycles: 120_000, MeasureCycles: 120_000}
}

func TestValidateSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator replay is slow")
	}
	models := testModels(t)
	p := soc.VirtualXavier()
	items := []Item{
		{Workload: "streamcluster"},
		{Workload: "pathfinder"},
		{Workload: "resnet50"},
		{Workload: "srad"},
	}
	ctx := context.Background()
	s, err := Solve(ctx, models, p, items, Options{Objective: Makespan, Seed: 1})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	ex := simrun.New(0)
	v, err := Validate(ctx, ex, p, s, validateRC())
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if v.ActualMakespan <= 0 {
		t.Fatal("no measured makespan")
	}
	// The measured makespan must land inside the model's own error band:
	// per-item RS errors compound at most linearly into wave times, so the
	// makespan error should not exceed the mean RS error by much. Allow
	// the same order of tolerance the paper's validation experiments do.
	limit := 10.0
	if 2*v.MeanAbsRSError > limit {
		limit = 2 * v.MeanAbsRSError
	}
	if v.MakespanErrorPct > limit {
		t.Fatalf("makespan error %.2f%% outside the model error band (mean RS error %.2f pp)",
			v.MakespanErrorPct, v.MeanAbsRSError)
	}

	// The chosen schedule must beat the naive baselines on measured time.
	serial, err := SerialSchedule(models, p, items)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	sv, err := Validate(ctx, ex, p, serial, validateRC())
	if err != nil {
		t.Fatalf("validate serial: %v", err)
	}
	if v.ActualMakespan >= sv.ActualMakespan {
		t.Fatalf("scheduler (measured %.3f) does not beat serial baseline (measured %.3f)",
			v.ActualMakespan, sv.ActualMakespan)
	}
	random, err := RandomSchedule(models, p, items, 12345)
	if err != nil {
		t.Fatalf("random: %v", err)
	}
	rv, err := Validate(ctx, ex, p, random, validateRC())
	if err != nil {
		t.Fatalf("validate random: %v", err)
	}
	if v.ActualMakespan > rv.ActualMakespan*(1+1e-9) {
		t.Fatalf("scheduler (measured %.3f) loses to the random baseline (measured %.3f)",
			v.ActualMakespan, rv.ActualMakespan)
	}
}

func TestValidateCancelled(t *testing.T) {
	models := testModels(t)
	p := soc.VirtualXavier()
	s, err := Solve(context.Background(), models, p, []Item{{Workload: "srad"}}, Options{})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Validate(ctx, simrun.New(1), p, s, validateRC()); err == nil {
		t.Fatal("expected cancellation error")
	}
}
