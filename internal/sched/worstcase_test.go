package sched

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/soc"
)

func TestWorstCaseBoundsDominateExpected(t *testing.T) {
	models := testModels(t)
	p := soc.VirtualXavier()
	items := xavierItems()
	ctx := context.Background()
	s, err := Solve(ctx, models, p, items, Options{Objective: Makespan, Seed: 1})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	wc, err := WorstCaseBounds(ctx, models, p, items, s)
	if err != nil {
		t.Fatalf("worst case: %v", err)
	}
	placed := 0
	for _, w := range s.Waves {
		placed += len(w.Assignments)
	}
	if len(wc.Bounds) != placed {
		t.Fatalf("got %d bounds for %d assignments", len(wc.Bounds), placed)
	}
	for _, b := range wc.Bounds {
		// The adversarial bound must dominate the schedule's own mix: the
		// chosen co-runners are among the mixes searched and the model is
		// monotone in external demand.
		if b.WorstSlowdown < b.ExpectedSlowdown-1e-9 {
			t.Errorf("%s on %s: worst %.4f < expected %.4f", b.Item, b.PU, b.WorstSlowdown, b.ExpectedSlowdown)
		}
		if b.WorstExternalGBps < b.ExpectedExternalGBps-1e-9 {
			t.Errorf("%s on %s: worst external %.2f < expected %.2f",
				b.Item, b.PU, b.WorstExternalGBps, b.ExpectedExternalGBps)
		}
		if b.WorstSlowdown < 1 || b.ExpectedSlowdown < 1 || b.SaturatedSlowdown < 1 {
			t.Errorf("%s on %s: slowdown below 1", b.Item, b.PU)
		}
		// The saturated ceiling assumes peak external demand, which the
		// model's contention balance point caps: it must dominate too.
		if b.SaturatedSlowdown < b.WorstSlowdown-1e-9 {
			t.Errorf("%s on %s: saturated %.4f < worst %.4f", b.Item, b.PU, b.SaturatedSlowdown, b.WorstSlowdown)
		}
		if b.Relaxed {
			t.Errorf("%s on %s: small instance should use the exact enumeration", b.Item, b.PU)
		}
		seen := map[string]bool{b.PU: true}
		ids := map[string]bool{b.Item: true}
		for _, adv := range b.Adversaries {
			if seen[adv.PU] {
				t.Errorf("%s: adversarial mix reuses PU %s", b.Item, adv.PU)
			}
			seen[adv.PU] = true
			if ids[adv.Item] {
				t.Errorf("%s: adversarial mix reuses item %s", b.Item, adv.Item)
			}
			ids[adv.Item] = true
		}
	}
	if len(wc.PerPU) == 0 {
		t.Fatal("no per-PU summary")
	}
	for _, pb := range wc.PerPU {
		if pb.WorstSlowdown < 1 {
			t.Errorf("per-PU bound for %s below 1", pb.PU)
		}
	}
}

func TestWorstCaseDeterminism(t *testing.T) {
	models := testModels(t)
	p := soc.VirtualXavier()
	items := xavierItems()
	ctx := context.Background()
	s, err := Solve(ctx, models, p, items, Options{Seed: 3})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	var first string
	for i := 0; i < 3; i++ {
		wc, err := WorstCaseBounds(ctx, models, p, items, s)
		if err != nil {
			t.Fatalf("worst case: %v", err)
		}
		b, _ := json.Marshal(wc)
		if first == "" {
			first = string(b)
		} else if string(b) != first {
			t.Fatal("worst-case report not deterministic")
		}
	}
}

func TestWorstCaseCancelled(t *testing.T) {
	models := testModels(t)
	p := soc.VirtualXavier()
	items := xavierItems()
	s, err := Solve(context.Background(), models, p, items, Options{Seed: 3})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := WorstCaseBounds(ctx, models, p, items, s); err == nil {
		t.Fatal("expected cancellation error")
	}
}
