package sched

import (
	"math/rand"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// SerialSchedule is the naive baseline: every item runs alone, one wave per
// item on its first eligible PU. It is always contention-free (every
// predicted relative speed is 100%), so its makespan equals the total work.
func SerialSchedule(models calib.ModelSet, p soc.Backend, items []Item) (*Schedule, error) {
	rs, err := resolve(models, p, items)
	if err != nil {
		return nil, err
	}
	waves := make([][]slot, len(rs))
	for i := range rs {
		waves[i] = []slot{{item: i, opt: 0}}
	}
	ev := evaluate(rs, waves)
	return buildSchedule(p, Options{Objective: Makespan}, rs, &ev, false, 1), nil
}

// RandomSchedule is the chance baseline: a seeded random placement — random
// item order, random eligible PU, random wave among those with that PU
// free (or a new wave). Deterministic for a given seed.
func RandomSchedule(models calib.ModelSet, p soc.Backend, items []Item, seed int64) (*Schedule, error) {
	rs, err := resolve(models, p, items)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var waves [][]slot
	for _, i := range rng.Perm(len(rs)) {
		oi := rng.Intn(len(rs[i].options))
		pu := rs[i].options[oi].puIndex
		var open []int
		for wi, w := range waves {
			if len(w) < len(p.PUList()) && !waveUsesPU(rs, w, pu) {
				open = append(open, wi)
			}
		}
		pick := rng.Intn(len(open) + 1)
		s := slot{item: i, opt: oi}
		if pick == len(open) {
			waves = append(waves, []slot{s})
		} else {
			waves[open[pick]] = append(waves[open[pick]], s)
		}
	}
	ev := evaluate(rs, waves)
	sc := buildSchedule(p, Options{Objective: Makespan, Seed: seed}, rs, &ev, false, 1)
	return sc, nil
}
