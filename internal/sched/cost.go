package sched

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/processorcentricmodel/pccs/internal/soc"
)

// slot places one resolved item on one of its placement options.
type slot struct {
	item int // index into the resolved-item slice
	opt  int // index into that item's options
}

// waveEval is one scored co-run wave.
type waveEval struct {
	slots   []slot // sorted by PU index
	assigns []Assignment
	time    float64
	busy    float64
	maxSlow float64
	// minSLO is the earliest completion SLO among members (+Inf if none) —
	// the EDF key for wave ordering.
	minSLO float64
	// viol counts slowdown-SLO misses inside the wave.
	viol int
	sig  string
}

// evalWave scores one wave: each member sees the other members' combined
// standalone demand as its external demand y, and the wave runs for the
// time of its slowest member. The wave signature "pu=item+pu=item" is the
// canonical tie-break key.
func evalWave(rs []rItem, slots []slot) waveEval {
	ordered := append([]slot(nil), slots...)
	sort.Slice(ordered, func(i, j int) bool {
		return rs[ordered[i].item].options[ordered[i].opt].puIndex <
			rs[ordered[j].item].options[ordered[j].opt].puIndex
	})
	totalX := 0.0
	for _, s := range ordered {
		totalX += rs[s.item].options[s.opt].x
	}
	ev := waveEval{slots: ordered, minSLO: math.Inf(1)}
	var sig strings.Builder
	for i, s := range ordered {
		it := &rs[s.item]
		opt := &it.options[s.opt]
		y := totalX - opt.x
		predRS := opt.predictRS(y)
		slow := 100 / predRS
		t := it.work * slow
		ev.assigns = append(ev.assigns, Assignment{
			Item:         it.id,
			Workload:     it.wlName,
			PU:           opt.pu,
			Phased:       len(opt.phases) > 0,
			DemandGBps:   opt.x,
			ExternalGBps: y,
			PredictedRS:  predRS,
			Slowdown:     slow,
			WorkUnits:    it.work,
			Time:         t,
		})
		ev.busy += t
		if t > ev.time {
			ev.time = t
		}
		if slow > ev.maxSlow {
			ev.maxSlow = slow
		}
		if it.sloSlow > 0 && slow > it.sloSlow*(1+1e-9) {
			ev.viol++
		}
		if it.sloTime > 0 && it.sloTime < ev.minSLO {
			ev.minSLO = it.sloTime
		}
		if i > 0 {
			sig.WriteByte('+')
		}
		sig.WriteString(opt.pu)
		sig.WriteByte('=')
		sig.WriteString(it.id)
	}
	ev.sig = sig.String()
	return ev
}

// evalResult is a fully scored candidate schedule.
type evalResult struct {
	waves    []waveEval // in launch order
	makespan float64
	busy     float64
	maxSlow  float64
	viol     int
	sig      string
}

// evaluate scores a candidate: waves are launched in deterministic
// earliest-deadline-first order (ties: shorter wave first, then signature),
// and completion-time SLOs are checked against the resulting prefix sums.
func evaluate(rs []rItem, waves [][]slot) evalResult {
	evs := make([]waveEval, len(waves))
	for i, w := range waves {
		evs[i] = evalWave(rs, w)
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].minSLO != evs[j].minSLO {
			return evs[i].minSLO < evs[j].minSLO
		}
		if evs[i].time != evs[j].time {
			return evs[i].time < evs[j].time
		}
		return evs[i].sig < evs[j].sig
	})
	res := evalResult{waves: evs}
	completion := 0.0
	sigs := make([]string, len(evs))
	for i := range evs {
		completion += evs[i].time
		res.makespan = completion
		res.busy += evs[i].busy
		if evs[i].maxSlow > res.maxSlow {
			res.maxSlow = evs[i].maxSlow
		}
		res.viol += evs[i].viol
		for _, s := range evs[i].slots {
			it := &rs[s.item]
			if it.sloTime > 0 && completion > it.sloTime*(1+1e-9) {
				res.viol++
			}
		}
		sigs[i] = evs[i].sig
	}
	res.sig = strings.Join(sigs, ";")
	return res
}

// objKeys returns the primary and secondary minimization keys for an
// objective.
func objKeys(e *evalResult, obj Objective) (float64, float64) {
	switch obj {
	case Throughput:
		return e.busy, e.makespan
	case Fairness:
		return e.maxSlow, e.makespan
	default:
		return e.makespan, e.maxSlow
	}
}

// better is the search's strict total order on candidates: fewest SLO
// violations, then the objective keys, then the canonical signature — the
// final tie-break that makes every search outcome independent of
// evaluation order and worker count.
func better(a, b *evalResult, obj Objective) bool {
	if a.viol != b.viol {
		return a.viol < b.viol
	}
	ap, as := objKeys(a, obj)
	bp, bs := objKeys(b, obj)
	if ap != bp {
		return ap < bp
	}
	if as != bs {
		return as < bs
	}
	return a.sig < b.sig
}

// waveObjKey is the per-wave contribution used to pick a group's best PU
// assignment during exhaustive search (the per-wave decomposition of
// objKeys: wave times add up to the makespan, wave busy times to the total,
// and wave max slowdowns max up to the schedule's).
func waveObjKey(ev *waveEval, obj Objective) float64 {
	switch obj {
	case Throughput:
		return ev.busy
	case Fairness:
		return ev.maxSlow
	default:
		return ev.time
	}
}

// betterWave orders candidate assignments of one co-run group.
func betterWave(a, b *waveEval, obj Objective) bool {
	if a.viol != b.viol {
		return a.viol < b.viol
	}
	ak, bk := waveObjKey(a, obj), waveObjKey(b, obj)
	if ak != bk {
		return ak < bk
	}
	if a.time != b.time {
		return a.time < b.time
	}
	return a.sig < b.sig
}

// buildSchedule converts the winning candidate into the public Schedule.
func buildSchedule(p soc.Backend, opts Options, rs []rItem, e *evalResult, exhaustive bool, evaluated int) *Schedule {
	s := &Schedule{
		Platform:   p.PlatformName(),
		Objective:  opts.Objective.String(),
		Seed:       opts.Seed,
		Exhaustive: exhaustive,
		Evaluated:  evaluated,
		Makespan:   e.makespan,
		BusyTime:   e.busy,
		MaxSlowdown: func() float64 {
			if e.maxSlow < 1 {
				return 1
			}
			return e.maxSlow
		}(),
		Feasible: e.viol == 0,
	}
	for _, it := range rs {
		s.TotalWork += it.work
	}
	// Standalone items run at RS = 100, so the serial baseline's makespan
	// is exactly the total work.
	s.SerialMakespan = s.TotalWork
	if s.Makespan > 0 {
		s.Speedup = s.SerialMakespan / s.Makespan
	}
	completion := 0.0
	for i := range e.waves {
		ev := &e.waves[i]
		completion += ev.time
		s.Waves = append(s.Waves, Wave{
			Index:       i,
			Assignments: ev.assigns,
			Time:        ev.time,
			Completion:  completion,
		})
		for _, a := range ev.assigns {
			it := itemByID(rs, a.Item)
			if it == nil {
				continue
			}
			if it.sloSlow > 0 && a.Slowdown > it.sloSlow*(1+1e-9) {
				s.Violations = append(s.Violations, fmt.Sprintf(
					"%s on %s: predicted slowdown %.3f exceeds SLO %.3f", a.Item, a.PU, a.Slowdown, it.sloSlow))
			}
			if it.sloTime > 0 && completion > it.sloTime*(1+1e-9) {
				s.Violations = append(s.Violations, fmt.Sprintf(
					"%s: predicted completion %.3f exceeds latency SLO %.3f", a.Item, completion, it.sloTime))
			}
		}
	}
	return s
}

func itemByID(rs []rItem, id string) *rItem {
	for i := range rs {
		if rs[i].id == id {
			return &rs[i]
		}
	}
	return nil
}
