package sched

import (
	"context"
	"fmt"
	"math"

	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/workload"
)

// ItemValidation compares one assignment's predicted and measured speeds.
type ItemValidation struct {
	Item string `json:"item"`
	PU   string `json:"pu"`
	// PredictedRS and ActualRS are relative speeds in percent.
	PredictedRS float64 `json:"predicted_rs"`
	ActualRS    float64 `json:"actual_rs"`
	// AbsErrorRS is |PredictedRS - ActualRS| in percentage points — the
	// same error metric the model-validation experiments report.
	AbsErrorRS float64 `json:"abs_error_rs"`
}

// WaveValidation is one wave replayed through the simulator.
type WaveValidation struct {
	Index         int              `json:"index"`
	PredictedTime float64          `json:"predicted_time"`
	ActualTime    float64          `json:"actual_time"`
	Items         []ItemValidation `json:"items"`
}

// Validation is the predicted-vs-actual report for a whole schedule.
type Validation struct {
	PredictedMakespan float64 `json:"predicted_makespan"`
	ActualMakespan    float64 `json:"actual_makespan"`
	// MakespanErrorPct is 100·|predicted-actual|/actual.
	MakespanErrorPct float64 `json:"makespan_error_pct"`
	// MeanAbsRSError averages AbsErrorRS over every assignment.
	MeanAbsRSError float64          `json:"mean_abs_rs_error"`
	Waves          []WaveValidation `json:"waves"`
}

// Validate replays the schedule through the discrete-event simulator, wave
// by wave, and reports predicted-vs-actual relative speeds and makespan —
// closing the same loop the model-validation experiments close for raw
// predictions. Registered workloads replay with their full kernel profile
// (locality included); phased items replay at their time-averaged demand,
// so some phase-level error is expected there.
func Validate(ctx context.Context, ex *simrun.Executor, p soc.Backend, s *Schedule, rc soc.RunConfig) (*Validation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ex == nil {
		ex = simrun.New(0)
	}
	v := &Validation{PredictedMakespan: s.Makespan}
	items := 0
	for _, w := range s.Waves {
		pl := make(soc.Placement, len(w.Assignments))
		for _, a := range w.Assignments {
			pu := soc.PUIndexOf(p, a.PU)
			if pu < 0 {
				return nil, fmt.Errorf("sched: platform %s has no PU %q", p.PlatformName(), a.PU)
			}
			pl[pu] = replayKernel(p, a)
		}
		res, err := simrun.RelativeSpeeds(ctx, ex, p, pl, rc)
		if err != nil {
			return nil, fmt.Errorf("sched: validate wave %d: %w", w.Index, err)
		}
		wv := WaveValidation{Index: w.Index, PredictedTime: w.Time}
		for _, a := range w.Assignments {
			pu := soc.PUIndexOf(p, a.PU)
			rel := res[pu].RelativeSpeed * 100
			if rel <= 0 {
				return nil, fmt.Errorf("sched: validate wave %d: no measured speed for %s", w.Index, a.Item)
			}
			t := a.WorkUnits * 100 / rel
			if t > wv.ActualTime {
				wv.ActualTime = t
			}
			wv.Items = append(wv.Items, ItemValidation{
				Item:        a.Item,
				PU:          a.PU,
				PredictedRS: a.PredictedRS,
				ActualRS:    rel,
				AbsErrorRS:  math.Abs(a.PredictedRS - rel),
			})
			v.MeanAbsRSError += math.Abs(a.PredictedRS - rel)
			items++
		}
		v.ActualMakespan += wv.ActualTime
		v.Waves = append(v.Waves, wv)
	}
	if items > 0 {
		v.MeanAbsRSError /= float64(items)
	}
	if v.ActualMakespan > 0 {
		v.MakespanErrorPct = 100 * math.Abs(v.PredictedMakespan-v.ActualMakespan) / v.ActualMakespan
	}
	return v, nil
}

// replayKernel builds the simulator kernel for an assignment: the
// registered workload's full profile when available, otherwise a plain
// streaming kernel at the assignment's demand.
func replayKernel(p soc.Backend, a Assignment) soc.Kernel {
	if a.Workload != "" {
		if wl, err := workload.Get(a.Workload); err == nil {
			if k, kerr := wl.Kernel(p.PlatformName(), a.PU); kerr == nil {
				return k
			}
		}
	}
	return soc.Kernel{Name: a.Item, DemandGBps: a.DemandGBps}
}
