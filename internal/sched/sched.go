// Package sched closes the loop from prediction to decision: a
// contention-aware co-run scheduler that uses the PCCS model (not the
// simulator) as its inner-loop cost function. Given a platform, a
// calibrated model set, and a batch of pending workloads — single kernels,
// multi-phase programs, or registered DNNs — it searches PU assignments,
// co-run groupings (waves), and launch order to optimize a selectable
// objective, optionally under per-workload SLOs.
//
// Time is measured in work units: one unit is the time a workload takes
// running standalone, so a predicted relative speed of RS% dilates an
// item's time to WorkUnits·100/RS. A schedule is a sequence of waves; every
// wave gang-schedules at most one item per PU, runs for the time of its
// slowest member, and the makespan is the sum of wave times.
//
// Everything here is deterministic: the same inputs, seed, and objective
// produce a byte-identical schedule regardless of the worker count, because
// parallel evaluation writes results in plan order (the internal/simrun
// executor pattern) and every comparison ends in a total-order tie-break on
// the schedule's canonical signature.
package sched

import (
	"fmt"
	"math"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/workload"
)

// Objective selects what the scheduler optimizes.
type Objective int

const (
	// Makespan minimizes the predicted completion time of the whole batch
	// (tie-break: max slowdown).
	Makespan Objective = iota
	// Throughput minimizes total busy time — the sum of every item's co-run
	// time, i.e. wasted cycles burned to contention (tie-break: makespan).
	Throughput
	// Fairness minimizes the worst per-item slowdown (tie-break: makespan).
	Fairness
)

func (o Objective) String() string {
	switch o {
	case Makespan:
		return "makespan"
	case Throughput:
		return "throughput"
	case Fairness:
		return "fairness"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// ParseObjective converts an objective name to its kind.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "makespan":
		return Makespan, nil
	case "throughput":
		return Throughput, nil
	case "fairness":
		return Fairness, nil
	default:
		return 0, fmt.Errorf("sched: unknown objective %q (want makespan, throughput, or fairness)", s)
	}
}

// Phase is one execution phase of an explicitly profiled multi-phase item.
type Phase struct {
	Name string `json:"name,omitempty"`
	// Weight is the phase's share of standalone execution time.
	Weight float64 `json:"weight"`
	// DemandGBps is the phase's standalone bandwidth demand.
	DemandGBps float64 `json:"demand_gbps"`
}

// Item is one pending workload handed to the scheduler. Exactly one of
// Workload, Phases, or DemandGBps must describe its memory profile:
//
//   - Workload names a registered benchmark surrogate; its per-PU demand
//     profile decides which PUs are eligible. With UsePhases, registered
//     phases (cfd) or derived DNN layer phases (vgg19, resnet50, ...) drive
//     phase-wise prediction.
//   - Phases gives an explicit multi-phase profile, eligible on any modeled
//     PU (subject to the PUs filter).
//   - DemandGBps gives a flat standalone demand, likewise PU-agnostic.
type Item struct {
	// ID names the item in the schedule; defaults to "<workload>#<index>".
	ID string `json:"id,omitempty"`
	// Workload is a registered workload name (see internal/workload).
	Workload string `json:"workload,omitempty"`
	// UsePhases selects phase-wise prediction for a registered workload.
	UsePhases bool `json:"use_phases,omitempty"`
	// DemandGBps is a flat standalone bandwidth demand in GB/s.
	DemandGBps float64 `json:"demand_gbps,omitempty"`
	// Phases is an explicit multi-phase profile.
	Phases []Phase `json:"phases,omitempty"`
	// WorkUnits is the item's standalone run time in abstract units
	// (default 1): a kernel with WorkUnits 2 takes twice as long alone.
	WorkUnits float64 `json:"work_units,omitempty"`
	// PUs, when non-empty, restricts the item to the named PUs.
	PUs []string `json:"pus,omitempty"`
	// SLOSlowdown, when > 0, caps the item's predicted co-run slowdown
	// (e.g. 1.5 = may lose at most a third of its standalone speed).
	SLOSlowdown float64 `json:"slo_slowdown,omitempty"`
	// SLOTime, when > 0, caps the item's predicted completion time (the end
	// of its wave), in work units from batch start.
	SLOTime float64 `json:"slo_time,omitempty"`
}

// Options tunes the search.
type Options struct {
	// Objective selects the optimization target (default Makespan).
	Objective Objective
	// Seed drives the beam search's restart shuffles (exhaustive search
	// ignores it). The same seed always yields the same schedule.
	Seed int64
	// Workers sizes the parallel-evaluation pool; <= 0 selects GOMAXPROCS.
	// The result is identical for every worker count.
	Workers int
	// BeamWidth is the number of partial schedules kept per step of the
	// beam search (default 8).
	BeamWidth int
	// Restarts is the number of seeded extra insertion orders the beam
	// search tries beyond the deterministic demand-descending order
	// (default 3).
	Restarts int
	// ExhaustiveLimit is the partition-count threshold up to which the
	// search enumerates every co-run partition exactly (default 5000).
	ExhaustiveLimit int64
}

func (o Options) withDefaults() Options {
	if o.BeamWidth <= 0 {
		o.BeamWidth = 8
	}
	if o.Restarts < 0 {
		o.Restarts = 0
	} else if o.Restarts == 0 {
		o.Restarts = 3
	}
	if o.ExhaustiveLimit <= 0 {
		o.ExhaustiveLimit = 5000
	}
	return o
}

// Assignment is one item placed on one PU within a wave.
type Assignment struct {
	Item     string `json:"item"`
	Workload string `json:"workload,omitempty"`
	PU       string `json:"pu"`
	// Phased reports whether prediction used the multi-phase path.
	Phased bool `json:"phased,omitempty"`
	// DemandGBps is the item's standalone (time-averaged) demand here.
	DemandGBps float64 `json:"demand_gbps"`
	// ExternalGBps is the co-runners' total demand seen by this item.
	ExternalGBps float64 `json:"external_gbps"`
	// PredictedRS is the PCCS-predicted relative speed in percent.
	PredictedRS float64 `json:"predicted_rs"`
	// Slowdown is 100/PredictedRS (>= 1).
	Slowdown float64 `json:"slowdown"`
	// WorkUnits is the item's standalone time.
	WorkUnits float64 `json:"work_units"`
	// Time is the item's predicted co-run time: WorkUnits · Slowdown.
	Time float64 `json:"time"`
}

// Wave is one gang-scheduled co-run group: at most one item per PU, running
// until the slowest member finishes.
type Wave struct {
	Index       int          `json:"index"`
	Assignments []Assignment `json:"assignments"`
	// Time is the wave's predicted duration (max member time).
	Time float64 `json:"time"`
	// Completion is the predicted finish time of the wave from batch start.
	Completion float64 `json:"completion"`
}

// Schedule is the scheduler's decision plus its predicted metrics.
type Schedule struct {
	Platform  string `json:"platform"`
	Objective string `json:"objective"`
	Seed      int64  `json:"seed"`
	// Exhaustive reports whether every co-run partition was enumerated (as
	// opposed to beam search above the size threshold).
	Exhaustive bool `json:"exhaustive"`
	// Evaluated counts candidate schedules scored during the search.
	Evaluated int    `json:"evaluated"`
	Waves     []Wave `json:"waves"`
	// Makespan is the predicted completion time of the batch.
	Makespan float64 `json:"makespan"`
	// BusyTime is the sum of every item's predicted co-run time.
	BusyTime float64 `json:"busy_time"`
	// TotalWork is the sum of work units — the serial standalone makespan.
	TotalWork float64 `json:"total_work"`
	// SerialMakespan is the naive baseline: every item alone, one at a time.
	SerialMakespan float64 `json:"serial_makespan"`
	// Speedup is SerialMakespan / Makespan.
	Speedup float64 `json:"speedup"`
	// MaxSlowdown is the worst predicted per-item slowdown.
	MaxSlowdown float64 `json:"max_slowdown"`
	// Feasible reports whether every SLO is predicted to hold.
	Feasible bool `json:"feasible"`
	// Violations lists predicted SLO misses, in wave order.
	Violations []string `json:"violations,omitempty"`
}

// puOption is one eligible placement of an item: a PU with a model and a
// resolvable demand profile.
type puOption struct {
	puIndex int
	pu      string
	// x is the item's standalone demand here (time-averaged for phases).
	x float64
	// phases is non-nil when prediction should use the multi-phase path.
	phases []core.Phase
	params core.Params
}

// predictRS is the inner-loop cost: the PCCS-predicted relative speed of
// this placement under external demand y.
//
//pccs:hotpath evaluated O(items × PUs × waves) times per schedule
func (o *puOption) predictRS(y float64) float64 {
	if len(o.phases) == 0 {
		return o.params.Predict(o.x, y)
	}
	rs, err := o.params.PredictPhases(o.phases, y)
	if err != nil {
		// Unreachable: resolve validates phase weights up front.
		return o.params.Predict(o.x, y)
	}
	return rs
}

// rItem is a resolved item: its eligible placements on the platform.
type rItem struct {
	id      string
	work    float64
	wlName  string
	sloSlow float64
	sloTime float64
	options []puOption
	// maxX is the largest standalone demand across options — the greedy
	// ordering key (schedule bandwidth hogs first).
	maxX float64
}

// optionOn returns the item's placement option for a PU index, or nil.
func (it *rItem) optionOn(puIndex int) *puOption {
	for i := range it.options {
		if it.options[i].puIndex == puIndex {
			return &it.options[i]
		}
	}
	return nil
}

// resolve maps items onto the platform: for every item, every PU it may
// run on (PU filter passes, a demand profile resolves there, and a model
// exists for it). Items that cannot run anywhere are hard errors.
func resolve(models calib.ModelSet, p soc.Backend, items []Item) ([]rItem, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("sched: no items to schedule")
	}
	out := make([]rItem, 0, len(items))
	seen := make(map[string]bool, len(items))
	for i, spec := range items {
		it, err := resolveItem(models, p, i, spec)
		if err != nil {
			return nil, err
		}
		if seen[it.id] {
			return nil, fmt.Errorf("sched: duplicate item id %q", it.id)
		}
		seen[it.id] = true
		out = append(out, it)
	}
	return out, nil
}

func resolveItem(models calib.ModelSet, p soc.Backend, index int, spec Item) (rItem, error) {
	id := spec.ID
	if id == "" {
		base := spec.Workload
		if base == "" {
			base = "item"
		}
		id = fmt.Sprintf("%s#%d", base, index)
	}
	work := spec.WorkUnits
	if work == 0 {
		work = 1
	}
	if work < 0 || math.IsNaN(work) || math.IsInf(work, 0) {
		return rItem{}, fmt.Errorf("sched: item %s: invalid work units %v", id, spec.WorkUnits)
	}
	profiles := 0
	if spec.Workload != "" {
		profiles++
	}
	if len(spec.Phases) > 0 {
		profiles++
	}
	if spec.DemandGBps != 0 {
		profiles++
	}
	if profiles != 1 {
		return rItem{}, fmt.Errorf("sched: item %s: exactly one of workload, phases, or demand_gbps must be set", id)
	}

	var explicit []core.Phase
	switch {
	case len(spec.Phases) > 0:
		explicit = make([]core.Phase, 0, len(spec.Phases))
		total := 0.0
		for _, ph := range spec.Phases {
			if ph.Weight < 0 || ph.DemandGBps < 0 {
				return rItem{}, fmt.Errorf("sched: item %s: phase %q has negative weight or demand", id, ph.Name)
			}
			total += ph.Weight
			explicit = append(explicit, core.Phase{Name: ph.Name, Weight: ph.Weight, DemandGBps: ph.DemandGBps})
		}
		if total <= 0 {
			return rItem{}, fmt.Errorf("sched: item %s: phase weights sum to zero", id)
		}
	case spec.DemandGBps != 0:
		if spec.DemandGBps < 0 {
			return rItem{}, fmt.Errorf("sched: item %s: negative demand %v", id, spec.DemandGBps)
		}
	}
	var wl *workload.Workload
	if spec.Workload != "" {
		w, err := workload.Get(spec.Workload)
		if err != nil {
			return rItem{}, fmt.Errorf("sched: item %s: %w", id, err)
		}
		wl = w
	}

	it := rItem{
		id:      id,
		work:    work,
		wlName:  spec.Workload,
		sloSlow: spec.SLOSlowdown,
		sloTime: spec.SLOTime,
	}
	for puIndex, pu := range p.PUList() {
		if !puAllowed(spec.PUs, pu.Name) {
			continue
		}
		params, err := models.Get(p.PlatformName(), pu.Name)
		if err != nil {
			continue // no model for this PU
		}
		opt := puOption{puIndex: puIndex, pu: pu.Name, params: params}
		switch {
		case wl != nil && spec.UsePhases:
			phases, err := phasesFor(wl, p.PlatformName(), pu.Name)
			if err != nil {
				continue // no phase profile on this PU
			}
			opt.phases = phases
			opt.x = core.AverageDemand(phases)
		case wl != nil:
			x, err := wl.DemandOn(p.PlatformName(), pu.Name)
			if err != nil {
				continue // no profile on this PU
			}
			opt.x = x
		case len(explicit) > 0:
			opt.phases = explicit
			opt.x = core.AverageDemand(explicit)
		default:
			opt.x = spec.DemandGBps
		}
		it.options = append(it.options, opt)
		if opt.x > it.maxX {
			it.maxX = opt.x
		}
	}
	if len(it.options) == 0 {
		return rItem{}, fmt.Errorf("sched: item %s: no eligible PU on %s (check the PU filter, the workload's per-PU profiles, and the model set)", id, p.PlatformName())
	}
	return it, nil
}

func puAllowed(filter []string, pu string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if f == pu {
			return true
		}
	}
	return false
}

// phasesFor resolves a registered workload's phase profile on a PU:
// explicit phases (cfd) when present, otherwise derived DNN layer phases.
func phasesFor(wl *workload.Workload, platform, pu string) ([]core.Phase, error) {
	if len(wl.Phases) > 0 {
		return wl.ModelPhases(platform, pu)
	}
	phases, err := workload.DNNPhases(wl.Name, platform, pu)
	if err != nil {
		return nil, err
	}
	derived := workload.Workload{Name: wl.Name, Phases: phases}
	return derived.ModelPhases(platform, pu)
}
