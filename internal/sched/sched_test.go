package sched

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// testModels loads the shipped model artifact.
func testModels(t *testing.T) calib.ModelSet {
	t.Helper()
	set, err := calib.Load("../../models/pccs-models.json")
	if err != nil {
		t.Fatalf("load models: %v", err)
	}
	return set
}

func xavierItems() []Item {
	return []Item{
		{Workload: "streamcluster"},
		{Workload: "pathfinder"},
		{Workload: "hotspot"},
		{Workload: "srad"},
		{Workload: "resnet50", UsePhases: true},
	}
}

func mustSolve(t *testing.T, items []Item, opts Options) *Schedule {
	t.Helper()
	p := soc.VirtualXavier()
	s, err := Solve(context.Background(), testModels(t), p, items, opts)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return s
}

func TestScheduleDeterminism(t *testing.T) {
	// Same seed + same inputs must give a byte-identical schedule,
	// including under parallel search with any worker count.
	items := xavierItems()
	var blobs [][]byte
	for _, workers := range []int{1, 2, 8} {
		s := mustSolve(t, items, Options{Objective: Makespan, Seed: 42, Workers: workers})
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		blobs = append(blobs, b)
	}
	for i := 1; i < len(blobs); i++ {
		if string(blobs[i]) != string(blobs[0]) {
			t.Fatalf("schedule differs between worker counts:\n%s\nvs\n%s", blobs[0], blobs[i])
		}
	}
}

func TestScheduleDeterminismBeam(t *testing.T) {
	// Force the beam path with a tiny exhaustive limit and check worker
	// independence and seed stability there too.
	items := xavierItems()
	opts := Options{Objective: Makespan, Seed: 7, ExhaustiveLimit: 1}
	first := ""
	for _, workers := range []int{1, 4} {
		opts.Workers = workers
		s := mustSolve(t, items, opts)
		if s.Exhaustive {
			t.Fatal("expected beam search")
		}
		b, _ := json.Marshal(s)
		if first == "" {
			first = string(b)
		} else if string(b) != first {
			t.Fatalf("beam schedule differs between worker counts")
		}
	}
}

func TestScheduleBeatsSerial(t *testing.T) {
	s := mustSolve(t, xavierItems(), Options{Objective: Makespan, Seed: 1})
	if !s.Exhaustive {
		t.Fatalf("small instance should be solved exhaustively (evaluated %d)", s.Evaluated)
	}
	if s.Makespan >= s.SerialMakespan {
		t.Fatalf("co-run schedule (makespan %.3f) should beat serial (%.3f)", s.Makespan, s.SerialMakespan)
	}
	if s.Speedup <= 1 {
		t.Fatalf("speedup %.3f, want > 1", s.Speedup)
	}
	// Every wave must respect the one-item-per-PU gang constraint.
	for _, w := range s.Waves {
		seen := map[string]bool{}
		for _, a := range w.Assignments {
			if seen[a.PU] {
				t.Fatalf("wave %d uses PU %s twice", w.Index, a.PU)
			}
			seen[a.PU] = true
		}
	}
	// Every item appears exactly once.
	count := 0
	for _, w := range s.Waves {
		count += len(w.Assignments)
	}
	if count != len(xavierItems()) {
		t.Fatalf("schedule places %d items, want %d", count, len(xavierItems()))
	}
}

func TestObjectives(t *testing.T) {
	items := xavierItems()
	mk := mustSolve(t, items, Options{Objective: Makespan, Seed: 1})
	fair := mustSolve(t, items, Options{Objective: Fairness, Seed: 1})
	tp := mustSolve(t, items, Options{Objective: Throughput, Seed: 1})
	if fair.MaxSlowdown > mk.MaxSlowdown {
		t.Fatalf("fairness schedule has worse max slowdown (%.3f) than makespan's (%.3f)",
			fair.MaxSlowdown, mk.MaxSlowdown)
	}
	if tp.BusyTime > mk.BusyTime {
		t.Fatalf("throughput schedule burns more busy time (%.3f) than makespan's (%.3f)",
			tp.BusyTime, mk.BusyTime)
	}
	// The serial layout minimizes busy time (zero contention), so the
	// throughput optimum must not exceed the total work by construction.
	if tp.BusyTime < tp.TotalWork*(1-1e-9) {
		t.Fatalf("busy time %.3f below total work %.3f: co-running sped something up?", tp.BusyTime, tp.TotalWork)
	}
}

func TestSlowdownSLOForcesIsolation(t *testing.T) {
	// An impossible-to-violate-free batch: with a strict per-item slowdown
	// SLO the scheduler must fall back to (near-)isolated waves.
	items := []Item{
		{ID: "a", Workload: "streamcluster", SLOSlowdown: 1.001},
		{ID: "b", Workload: "srad", SLOSlowdown: 1.001},
	}
	s := mustSolve(t, items, Options{Objective: Makespan, Seed: 1})
	if !s.Feasible {
		t.Fatalf("strict-SLO batch should still be feasible via serial waves, got violations %v", s.Violations)
	}
	if len(s.Waves) != 2 {
		t.Fatalf("expected isolated waves, got %d waves", len(s.Waves))
	}
}

func TestLatencySLOOrdersWaves(t *testing.T) {
	// The item with the tight completion SLO must finish first.
	items := []Item{
		{ID: "slow-ok", Workload: "streamcluster", WorkUnits: 2},
		{ID: "urgent", Workload: "pathfinder", SLOTime: 1.5},
	}
	s := mustSolve(t, items, Options{Objective: Makespan, Seed: 1})
	if !s.Feasible {
		t.Fatalf("SLO should be satisfiable, violations: %v", s.Violations)
	}
	for _, w := range s.Waves {
		for _, a := range w.Assignments {
			if a.Item == "urgent" {
				if w.Completion > 1.5+1e-9 {
					t.Fatalf("urgent completes at %.3f, SLO 1.5", w.Completion)
				}
				return
			}
		}
	}
	t.Fatal("urgent item not scheduled")
}

func TestResolveErrors(t *testing.T) {
	models := testModels(t)
	p := soc.VirtualXavier()
	ctx := context.Background()
	cases := []struct {
		name  string
		items []Item
	}{
		{"empty batch", nil},
		{"unknown workload", []Item{{Workload: "nope"}}},
		{"no profile anywhere", []Item{{Workload: "resnet50", PUs: []string{"CPU"}}}},
		{"two profiles", []Item{{Workload: "srad", DemandGBps: 5}}},
		{"no profile at all", []Item{{ID: "x"}}},
		{"duplicate ids", []Item{{ID: "x", DemandGBps: 5}, {ID: "x", DemandGBps: 6}}},
		{"negative work", []Item{{DemandGBps: 5, WorkUnits: -1}}},
		{"bad phases", []Item{{Phases: []Phase{{Weight: -1, DemandGBps: 3}}}}},
	}
	for _, tc := range cases {
		if _, err := Solve(ctx, models, p, tc.items, Options{}); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestExplicitProfiles(t *testing.T) {
	// Flat demand and explicit phases are PU-agnostic and schedulable.
	items := []Item{
		{ID: "flat", DemandGBps: 30},
		{ID: "phased", Phases: []Phase{
			{Name: "hot", Weight: 0.25, DemandGBps: 80},
			{Name: "cool", Weight: 0.75, DemandGBps: 10},
		}},
	}
	s := mustSolve(t, items, Options{Objective: Fairness, Seed: 1})
	if len(s.Waves) == 0 {
		t.Fatal("no waves")
	}
	for _, w := range s.Waves {
		for _, a := range w.Assignments {
			if a.Item == "phased" && !a.Phased {
				t.Fatal("explicit phases should use the phase-wise predictor")
			}
		}
	}
}

func TestSolveCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Solve(ctx, testModels(t), soc.VirtualXavier(), xavierItems(), Options{})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestBaselines(t *testing.T) {
	models := testModels(t)
	p := soc.VirtualXavier()
	items := xavierItems()
	serial, err := SerialSchedule(models, p, items)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if serial.Makespan != serial.TotalWork {
		t.Fatalf("serial makespan %.3f, want total work %.3f", serial.Makespan, serial.TotalWork)
	}
	if serial.MaxSlowdown != 1 {
		t.Fatalf("serial max slowdown %.3f, want 1", serial.MaxSlowdown)
	}
	r1, err := RandomSchedule(models, p, items, 99)
	if err != nil {
		t.Fatalf("random: %v", err)
	}
	r2, err := RandomSchedule(models, p, items, 99)
	if err != nil {
		t.Fatalf("random: %v", err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Fatal("random baseline not deterministic for a fixed seed")
	}
	placed := 0
	for _, w := range r1.Waves {
		placed += len(w.Assignments)
	}
	if placed != len(items) {
		t.Fatalf("random baseline places %d items, want %d", placed, len(items))
	}
}

func TestParallelMapMatchesSerial(t *testing.T) {
	in := make([]int, 1000)
	for i := range in {
		in[i] = i
	}
	sq := func(x int) int { return x * x }
	want := parallelMap(1, in, sq)
	for _, workers := range []int{2, 7, 64} {
		got := parallelMap(workers, in, sq)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestParseObjective(t *testing.T) {
	for _, o := range []Objective{Makespan, Throughput, Fairness} {
		got, err := ParseObjective(o.String())
		if err != nil || got != o {
			t.Fatalf("round-trip %v: got %v, err %v", o, got, err)
		}
	}
	if _, err := ParseObjective("speed"); err == nil {
		t.Fatal("expected error for unknown objective")
	}
}
