package sched

import (
	"context"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/workload"
)

// Solve searches PU assignments, co-run groupings, and launch order for the
// items and returns the best schedule under the options' objective. Small
// instances (by co-run partition count) are solved exactly; larger ones use
// a seeded beam search with restarts. Either way the result is
// deterministic for a given seed, objective, and input order — independent
// of Options.Workers.
func Solve(ctx context.Context, models calib.ModelSet, p soc.Backend, items []Item, opts Options) (*Schedule, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	rs, err := resolve(models, p, items)
	if err != nil {
		return nil, err
	}
	var (
		best      evalResult
		evaluated int
	)
	nParts := workload.CountPartitions(len(rs), len(p.PUList()))
	exhaustive := nParts <= opts.ExhaustiveLimit
	if exhaustive {
		best, evaluated, err = solveExhaustive(ctx, rs, p, opts)
	} else {
		best, evaluated, err = solveBeam(ctx, rs, p, opts)
	}
	if err != nil {
		return nil, err
	}
	return buildSchedule(p, opts, rs, &best, exhaustive, evaluated), nil
}

// solveExhaustive enumerates every way to split the items into co-run
// groups of at most one-item-per-PU size. For each partition it picks each
// group's best PU assignment independently — exact for all three
// objectives, whose scores decompose over waves (completion-time SLOs are
// then checked on the fully ordered schedule). Partitions are scored in
// parallel and merged in canonical enumeration order.
func solveExhaustive(ctx context.Context, rs []rItem, p soc.Backend, opts Options) (evalResult, int, error) {
	ids := make([]string, len(rs))
	index := make(map[string]int, len(rs))
	for i := range rs {
		ids[i] = rs[i].id
		index[rs[i].id] = i
	}
	parts := workload.Partitions(ids, len(p.PUList()))

	type scored struct {
		ev evalResult
		ok bool
	}
	results := parallelMap(opts.Workers, parts, func(part [][]string) scored {
		if ctx.Err() != nil {
			return scored{}
		}
		waves := make([][]slot, 0, len(part))
		for _, group := range part {
			members := make([]int, len(group))
			for i, id := range group {
				members[i] = index[id]
			}
			slots, ok := bestGroupAssign(rs, members, opts.Objective)
			if !ok {
				return scored{} // some member cannot get a distinct PU here
			}
			waves = append(waves, slots)
		}
		return scored{ev: evaluate(rs, waves), ok: true}
	})
	if err := ctx.Err(); err != nil {
		return evalResult{}, 0, err
	}
	var best evalResult
	have := false
	evaluated := 0
	for i := range results {
		if !results[i].ok {
			continue
		}
		evaluated++
		if !have || better(&results[i].ev, &best, opts.Objective) {
			best = results[i].ev
			have = true
		}
	}
	if !have {
		// Unreachable: the serial partition (every item alone) is always
		// assignable because resolve guarantees at least one option.
		return evalResult{}, 0, ctx.Err()
	}
	return best, evaluated, nil
}

// bestGroupAssign enumerates every injective placement of the group's
// members onto distinct PUs and returns the best one under the per-wave
// objective decomposition.
func bestGroupAssign(rs []rItem, members []int, obj Objective) ([]slot, bool) {
	var (
		best      waveEval
		bestSlots []slot
		found     bool
	)
	slots := make([]slot, 0, len(members))
	var used uint64 // PU-index bitmask; platforms are far below 64 PUs
	var recurse func(k int)
	recurse = func(k int) {
		if k == len(members) {
			ev := evalWave(rs, slots)
			if !found || betterWave(&ev, &best, obj) {
				best = ev
				bestSlots = append([]slot(nil), slots...)
				found = true
			}
			return
		}
		it := &rs[members[k]]
		for oi := range it.options {
			bit := uint64(1) << uint(it.options[oi].puIndex)
			if used&bit != 0 {
				continue
			}
			used |= bit
			slots = append(slots, slot{item: members[k], opt: oi})
			recurse(k + 1)
			slots = slots[:len(slots)-1]
			used &^= bit
		}
	}
	recurse(0)
	return bestSlots, found
}

// solveBeam is the anytime search for large instances: items are inserted
// one at a time (joining an existing wave on a free PU, or opening a new
// wave), keeping the BeamWidth best partial schedules. The deterministic
// demand-descending insertion order is tried first, then seeded shuffles.
func solveBeam(ctx context.Context, rs []rItem, p soc.Backend, opts Options) (evalResult, int, error) {
	base := make([]int, len(rs))
	for i := range base {
		base[i] = i
	}
	sort.SliceStable(base, func(i, j int) bool {
		if rs[base[i]].maxX != rs[base[j]].maxX {
			return rs[base[i]].maxX > rs[base[j]].maxX
		}
		return rs[base[i]].id < rs[base[j]].id
	})
	orders := [][]int{base}
	rng := rand.New(rand.NewSource(opts.Seed))
	for r := 0; r < opts.Restarts; r++ {
		ord := append([]int(nil), base...)
		rng.Shuffle(len(ord), func(i, j int) { ord[i], ord[j] = ord[j], ord[i] })
		orders = append(orders, ord)
	}

	var (
		best      evalResult
		have      bool
		evaluated int
	)
	for _, ord := range orders {
		beam := [][][]slot{{}} // one empty candidate
		for _, itemIdx := range ord {
			if err := ctx.Err(); err != nil {
				return evalResult{}, evaluated, err
			}
			var next [][][]slot
			for _, cand := range beam {
				next = append(next, expansions(rs, p, cand, itemIdx)...)
			}
			evs := parallelMap(opts.Workers, next, func(w [][]slot) evalResult {
				return evaluate(rs, w)
			})
			evaluated += len(next)
			order := make([]int, len(next))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(i, j int) bool {
				return better(&evs[order[i]], &evs[order[j]], opts.Objective)
			})
			beam = beam[:0]
			lastSig := ""
			for _, i := range order {
				if len(beam) >= opts.BeamWidth {
					break
				}
				if evs[i].sig == lastSig {
					continue // identical schedule reached via another path
				}
				lastSig = evs[i].sig
				beam = append(beam, next[i])
			}
		}
		final := evaluate(rs, beam[0])
		if !have || better(&final, &best, opts.Objective) {
			best = final
			have = true
		}
	}
	return best, evaluated, nil
}

// expansions generates every placement of an item into a partial schedule:
// each eligible PU, joining each wave where that PU is free, or opening a
// new wave.
func expansions(rs []rItem, p soc.Backend, cand [][]slot, itemIdx int) [][][]slot {
	var out [][][]slot
	it := &rs[itemIdx]
	for oi := range it.options {
		pu := it.options[oi].puIndex
		s := slot{item: itemIdx, opt: oi}
		for wi, wave := range cand {
			if len(wave) >= len(p.PUList()) || waveUsesPU(rs, wave, pu) {
				continue
			}
			out = append(out, withSlot(cand, wi, s))
		}
		out = append(out, withSlot(cand, len(cand), s))
	}
	return out
}

func waveUsesPU(rs []rItem, wave []slot, pu int) bool {
	for _, s := range wave {
		if rs[s.item].options[s.opt].puIndex == pu {
			return true
		}
	}
	return false
}

// withSlot copies the candidate with s added to wave wi (a new wave when wi
// == len(cand)).
func withSlot(cand [][]slot, wi int, s slot) [][]slot {
	n := len(cand)
	if wi == n {
		n++
	}
	out := make([][]slot, n)
	for i, w := range cand {
		if i == wi {
			out[i] = append(append(make([]slot, 0, len(w)+1), w...), s)
		} else {
			out[i] = w
		}
	}
	if wi == len(cand) {
		out[wi] = []slot{s}
	}
	return out
}

// parallelMap applies f to every element of in on a fixed-size worker pool
// and returns the results in input order — the simrun executor pattern, so
// parallel output is bit-identical to a serial loop.
func parallelMap[T, R any](workers int, in []T, f func(T) R) []R {
	out := make([]R, len(in))
	if len(in) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(in) {
		workers = len(in)
	}
	if workers == 1 {
		for i := range in {
			out[i] = f(in[i])
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(in) {
					return
				}
				out[i] = f(in[i])
			}
		}()
	}
	wg.Wait()
	return out
}
