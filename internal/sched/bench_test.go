package sched

import (
	"context"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

func benchModels(b *testing.B) calib.ModelSet {
	b.Helper()
	set, err := calib.Load("../../models/pccs-models.json")
	if err != nil {
		b.Fatalf("load models: %v", err)
	}
	return set
}

// BenchmarkScheduleExhaustive measures the exact solver on a Table-8-sized
// batch (the common interactive case behind /v1/schedule).
func BenchmarkScheduleExhaustive(b *testing.B) {
	models := benchModels(b)
	p := soc.VirtualXavier()
	items := []Item{
		{Workload: "streamcluster"},
		{Workload: "pathfinder"},
		{Workload: "hotspot"},
		{Workload: "srad"},
		{Workload: "resnet50"},
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(ctx, models, p, items, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleBeam measures the seeded beam search on a batch large
// enough to cross the exhaustive threshold.
func BenchmarkScheduleBeam(b *testing.B) {
	models := benchModels(b)
	p := soc.VirtualXavier()
	var items []Item
	names := []string{"streamcluster", "pathfinder", "hotspot", "srad", "kmeans", "btree", "bfs", "heartwall"}
	for pass := 0; pass < 2; pass++ {
		for _, n := range names {
			items = append(items, Item{Workload: n})
		}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(ctx, models, p, items, Options{Seed: 1, ExhaustiveLimit: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleWorstCase measures the adversarial bound computation.
func BenchmarkScheduleWorstCase(b *testing.B) {
	models := benchModels(b)
	p := soc.VirtualXavier()
	items := []Item{
		{Workload: "streamcluster"},
		{Workload: "pathfinder"},
		{Workload: "hotspot"},
		{Workload: "srad"},
		{Workload: "resnet50"},
	}
	ctx := context.Background()
	s, err := Solve(ctx, models, p, items, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WorstCaseBounds(ctx, models, p, items, s); err != nil {
			b.Fatal(err)
		}
	}
}
