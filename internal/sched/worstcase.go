package sched

import (
	"context"
	"fmt"
	"sort"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// Corunner is one adversarial co-runner in a worst-case mix.
type Corunner struct {
	Item       string  `json:"item"`
	PU         string  `json:"pu"`
	DemandGBps float64 `json:"demand_gbps"`
}

// Bound is the worst-case contention analysis for one scheduled assignment:
// alongside the expected slowdown under the chosen schedule, the largest
// slowdown any co-runner mix drawn from the submitted batch could inflict,
// and the absolute model ceiling under a saturated memory system. Because
// the PCCS model is monotone non-increasing in external demand, and the
// chosen wave's co-runners are among the mixes searched, WorstSlowdown >=
// ExpectedSlowdown always holds.
type Bound struct {
	Item string `json:"item"`
	PU   string `json:"pu"`
	// ExpectedSlowdown is the slowdown under the schedule's own wave.
	ExpectedSlowdown     float64 `json:"expected_slowdown"`
	ExpectedExternalGBps float64 `json:"expected_external_gbps"`
	// WorstSlowdown is the adversarial bound over batch co-runner mixes.
	WorstSlowdown     float64 `json:"worst_slowdown"`
	WorstRS           float64 `json:"worst_rs"`
	WorstExternalGBps float64 `json:"worst_external_gbps"`
	// Adversaries is the mix achieving WorstSlowdown (empty when running
	// alone is already the worst case).
	Adversaries []Corunner `json:"adversaries,omitempty"`
	// SaturatedSlowdown is the model's absolute ceiling: external demand
	// equal to the platform's theoretical peak bandwidth.
	SaturatedSlowdown float64 `json:"saturated_slowdown"`
	// Relaxed marks bounds computed with the item-reuse relaxation (only on
	// platforms with many PUs); the bound remains a valid upper bound.
	Relaxed bool `json:"relaxed,omitempty"`
}

// PUBound summarizes the worst bound observed per PU.
type PUBound struct {
	PU            string  `json:"pu"`
	Item          string  `json:"item"`
	WorstSlowdown float64 `json:"worst_slowdown"`
}

// WorstCase is the schedule-wide worst-case contention report.
type WorstCase struct {
	Bounds []Bound   `json:"bounds"`
	PerPU  []PUBound `json:"per_pu"`
}

// wcCandidate is one potential adversary on one PU.
type wcCandidate struct {
	item int
	x    float64
}

// maxExactMixes caps the exhaustive adversary enumeration; beyond it the
// relaxed bound (per-PU maxima, item reuse permitted) is reported instead.
const maxExactMixes = 1 << 20

// WorstCaseBounds computes per-assignment adversarial contention bounds for
// a schedule: for every placed item, the co-runner mix drawn from the
// submitted batch (one distinct item per other PU, or an idle PU) that
// maximizes the item's predicted slowdown. items must be the batch the
// schedule was solved from.
func WorstCaseBounds(ctx context.Context, models calib.ModelSet, p soc.Backend, items []Item, s *Schedule) (*WorstCase, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rs, err := resolve(models, p, items)
	if err != nil {
		return nil, err
	}
	index := make(map[string]int, len(rs))
	for i := range rs {
		index[rs[i].id] = i
	}
	wc := &WorstCase{}
	for _, w := range s.Waves {
		for _, a := range w.Assignments {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			b, err := assignmentBound(rs, index, p, a)
			if err != nil {
				return nil, err
			}
			wc.Bounds = append(wc.Bounds, b)
		}
	}
	for _, pu := range p.PUList() {
		var worst *Bound
		for i := range wc.Bounds {
			b := &wc.Bounds[i]
			if b.PU != pu.Name {
				continue
			}
			if worst == nil || b.WorstSlowdown > worst.WorstSlowdown {
				worst = b
			}
		}
		if worst != nil {
			wc.PerPU = append(wc.PerPU, PUBound{PU: pu.Name, Item: worst.Item, WorstSlowdown: worst.WorstSlowdown})
		}
	}
	return wc, nil
}

func assignmentBound(rs []rItem, index map[string]int, p soc.Backend, a Assignment) (Bound, error) {
	ri, ok := index[a.Item]
	if !ok {
		return Bound{}, fmt.Errorf("sched: schedule references unknown item %q", a.Item)
	}
	target := &rs[ri]
	puIndex := soc.PUIndexOf(p, a.PU)
	if puIndex < 0 {
		return Bound{}, fmt.Errorf("sched: schedule references unknown PU %q", a.PU)
	}
	opt := target.optionOn(puIndex)
	if opt == nil {
		return Bound{}, fmt.Errorf("sched: item %s is not eligible on %s", a.Item, a.PU)
	}

	// Adversary candidates per other PU, strongest first.
	var otherPUs []int
	for i := range p.PUList() {
		if i != puIndex {
			otherPUs = append(otherPUs, i)
		}
	}
	cands := make([][]wcCandidate, len(otherPUs))
	mixes := int64(1)
	for i, pu := range otherPUs {
		for j := range rs {
			if j == ri {
				continue
			}
			if o := rs[j].optionOn(pu); o != nil {
				cands[i] = append(cands[i], wcCandidate{item: j, x: o.x})
			}
		}
		sort.SliceStable(cands[i], func(a, b int) bool {
			if cands[i][a].x != cands[i][b].x {
				return cands[i][a].x > cands[i][b].x
			}
			return rs[cands[i][a].item].id < rs[cands[i][b].item].id
		})
		// Only len(otherPUs) distinct items can be placed, so the optimum
		// draws from each PU's strongest len(otherPUs)+1 candidates.
		if keep := len(otherPUs) + 1; len(cands[i]) > keep {
			cands[i] = cands[i][:keep]
		}
		mixes *= int64(len(cands[i]) + 1)
	}

	b := Bound{
		Item:                 a.Item,
		PU:                   a.PU,
		ExpectedSlowdown:     a.Slowdown,
		ExpectedExternalGBps: a.ExternalGBps,
		SaturatedSlowdown:    100 / opt.predictRS(p.PeakGBps()),
	}
	if mixes > maxExactMixes {
		relaxedBound(rs, p, otherPUs, cands, opt, &b)
		return b, nil
	}
	exactBound(rs, p, otherPUs, cands, opt, &b)
	return b, nil
}

// exactBound enumerates every distinct-item mix (odometer over per-PU
// candidate lists, each position optionally idle) and keeps the mix with
// the largest external demand — which, by monotonicity, maximizes the
// slowdown. Ties keep the first mix in enumeration order, so the report is
// deterministic.
func exactBound(rs []rItem, p soc.Backend, otherPUs []int, cands [][]wcCandidate, opt *puOption, b *Bound) {
	choice := make([]int, len(otherPUs)) // 0 = idle, k>0 = cands[i][k-1]
	bestY := -1.0
	var bestChoice []int
	for {
		y := 0.0
		valid := true
		for i, c := range choice {
			if c == 0 {
				continue
			}
			it := cands[i][c-1].item
			for j := 0; j < i && valid; j++ {
				if choice[j] > 0 && cands[j][choice[j]-1].item == it {
					valid = false // an item cannot run on two PUs at once
				}
			}
			y += cands[i][c-1].x
		}
		if valid && y > bestY {
			bestY = y
			bestChoice = append(bestChoice[:0], choice...)
		}
		// Advance the odometer.
		i := 0
		for ; i < len(choice); i++ {
			choice[i]++
			if choice[i] <= len(cands[i]) {
				break
			}
			choice[i] = 0
		}
		if i == len(choice) {
			break
		}
	}
	if bestY < 0 {
		bestY = 0
	}
	finishBound(rs, p, otherPUs, cands, opt, b, bestY, bestChoice, false)
}

// relaxedBound takes each other PU's strongest candidate without the
// distinct-item constraint: an over-approximation that is still a valid
// upper bound (used only when the exact enumeration would be too large).
func relaxedBound(rs []rItem, p soc.Backend, otherPUs []int, cands [][]wcCandidate, opt *puOption, b *Bound) {
	choice := make([]int, len(otherPUs))
	y := 0.0
	for i := range cands {
		if len(cands[i]) > 0 {
			choice[i] = 1
			y += cands[i][0].x
		}
	}
	finishBound(rs, p, otherPUs, cands, opt, b, y, choice, true)
}

func finishBound(rs []rItem, p soc.Backend, otherPUs []int, cands [][]wcCandidate, opt *puOption, b *Bound, y float64, choice []int, relaxed bool) {
	worstRS := opt.predictRS(y)
	b.WorstRS = worstRS
	b.WorstSlowdown = 100 / worstRS
	b.WorstExternalGBps = y
	b.Relaxed = relaxed
	for i, c := range choice {
		if c == 0 {
			continue
		}
		cd := cands[i][c-1]
		b.Adversaries = append(b.Adversaries, Corunner{
			Item:       rs[cd.item].id,
			PU:         p.PUList()[otherPUs[i]].Name,
			DemandGBps: cd.x,
		})
	}
}
