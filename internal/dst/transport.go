package dst

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/processorcentricmodel/pccs/internal/clock"
	"github.com/processorcentricmodel/pccs/internal/cluster"
	"github.com/processorcentricmodel/pccs/internal/faultinject"
)

// memScheme prefixes simulated peer URLs ("mem://n2"). The cluster layer
// treats URLs as opaque routing keys, so any scheme works; this one makes
// simulated addresses unmistakable in diagnostics.
const memScheme = "mem://"

// link is the directed fault state of one ordered node pair. Every field
// applies to messages sent from→to only, so partitions can be asymmetric —
// the class of failure that distinguishes a real network from a crashed
// process.
type link struct {
	cut   bool
	delay time.Duration
	drop  float64
	dup   float64
}

// MemNet is the simulated network: every message between nodes crosses it,
// paying a seeded per-message latency on virtual time and submitting to the
// link's current fault state. Randomized per-message latency is also what
// reorders concurrent messages — no explicit reorder fault is needed.
type MemNet struct {
	clk *clock.Virtual

	mu    sync.Mutex
	rnd   *faultinject.Rand   // guarded by mu; per-message jitter/drop/dup draws
	links map[string]*link    // guarded by mu; "from→to", created on first use
	nodes map[string]*SimNode // guarded by mu; node ID → simulated node
}

// NewMemNet builds an empty network whose per-message decisions replay
// deterministically for a given seed.
func NewMemNet(clk *clock.Virtual, seed uint64) *MemNet {
	return &MemNet{
		clk:   clk,
		rnd:   faultinject.NewRand(seed).Fork(0x6e6574), // "net"
		links: make(map[string]*link),
		nodes: make(map[string]*SimNode),
	}
}

func (m *MemNet) register(n *SimNode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[n.id] = n
}

func (m *MemNet) node(id string) *SimNode {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nodes[id]
}

//pccs:allow-guardedby every caller holds m.mu
func (m *MemNet) linkLocked(from, to string) *link {
	key := from + "→" + to
	l := m.links[key]
	if l == nil {
		l = &link{}
		m.links[key] = l
	}
	return l
}

// SetCut cuts or restores the directed link (messages from→to blackhole).
func (m *MemNet) SetCut(from, to string, cut bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.linkLocked(from, to).cut = cut
}

// SetDelay adds a fixed extra latency to the directed link.
func (m *MemNet) SetDelay(from, to string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.linkLocked(from, to).delay = d
}

// SetDrop sets the directed link's message-drop probability.
func (m *MemNet) SetDrop(from, to string, p float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.linkLocked(from, to).drop = p
}

// SetDup sets the directed link's message-duplication probability.
func (m *MemNet) SetDup(from, to string, p float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.linkLocked(from, to).dup = p
}

// HealAll clears every link fault (cuts, delays, drops, dups) at once —
// the schedule epilogue that every invariant is checked after.
func (m *MemNet) HealAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.links = make(map[string]*link)
}

// plan samples the fault decisions for one message leg at send time: total
// latency, whether the message vanishes (cut links swallow everything), and
// whether the request is duplicated. Decisions are drawn once per leg from
// the seeded stream, so a schedule replays identically.
func (m *MemNet) plan(from, to string) (d time.Duration, lost, dup bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.linkLocked(from, to)
	d = l.delay + time.Duration(m.rnd.Intn(2001))*time.Microsecond
	lost = l.cut || (l.drop > 0 && m.rnd.Float64() < l.drop)
	dup = l.dup > 0 && m.rnd.Float64() < l.dup
	return d, lost, dup
}

// wait spends one leg's latency on the virtual clock. A lost message never
// arrives and never errors — exactly like a real blackhole, the sender
// learns nothing until its own deadline expires.
func (m *MemNet) wait(ctx context.Context, d time.Duration, lost bool) error {
	if lost {
		<-ctx.Done()
		return fmt.Errorf("dst: message lost: %w", ctx.Err())
	}
	t := m.clk.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// TransportFor returns the cluster.Transport a node uses to reach its
// peers, bound to the node's identity so directed link faults apply.
func (m *MemNet) TransportFor(id string) cluster.Transport {
	return &MemTransport{net: m, from: id}
}

// MemTransport implements cluster.Transport over the simulated network:
// request leg, handler on the destination node (under a virtual-clock busy
// token so auto-advance never skips over real compute), response leg. A
// duplicated request runs the handler twice — the cluster's handlers are
// idempotent by design, and the simulation holds them to it.
type MemTransport struct {
	net  *MemNet
	from string
}

func (t *MemTransport) call(ctx context.Context, baseURL string, op func(n *SimNode) error) error {
	to := strings.TrimPrefix(baseURL, memScheme)
	if self := t.net.node(t.from); self == nil || !self.Alive() {
		// A crashed process sends nothing: lingering goroutines of a killed
		// incarnation (old flush loops, in-flight publishes) must not leak
		// traffic into the cluster.
		return fmt.Errorf("dst: node %s is down (send suppressed)", t.from)
	}
	d, lost, dup := t.net.plan(t.from, to)
	if err := t.net.wait(ctx, d, lost); err != nil {
		return err
	}
	n := t.net.node(to)
	if n == nil {
		return fmt.Errorf("dst: no route to %q", to)
	}
	runs := 1
	if dup {
		runs = 2
	}
	var err error
	for i := 0; i < runs; i++ {
		release := t.net.clk.Busy()
		err = op(n)
		release()
	}
	rd, rlost, _ := t.net.plan(to, t.from)
	if werr := t.net.wait(ctx, rd, rlost); werr != nil {
		return werr
	}
	return err
}

// Lease executes a calibration lease on the destination node.
func (t *MemTransport) Lease(ctx context.Context, baseURL string, req cluster.LeaseRequest) (*cluster.LeaseResponse, error) {
	var resp *cluster.LeaseResponse
	err := t.call(ctx, baseURL, func(n *SimNode) error {
		r, herr := n.handleLease(req)
		if herr != nil {
			return herr
		}
		resp = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Ping probes the destination node's health.
func (t *MemTransport) Ping(ctx context.Context, baseURL string) (*cluster.PingInfo, error) {
	var info *cluster.PingInfo
	err := t.call(ctx, baseURL, func(n *SimNode) error {
		i, herr := n.handlePing()
		if herr != nil {
			return herr
		}
		info = i
		return nil
	})
	if err != nil {
		return nil, err
	}
	return info, nil
}

// Replicate pushes a model version to the destination node.
func (t *MemTransport) Replicate(ctx context.Context, baseURL string, env cluster.ReplicaEnvelope) (*cluster.ReplicateAck, error) {
	var ack *cluster.ReplicateAck
	err := t.call(ctx, baseURL, func(n *SimNode) error {
		a, herr := n.handleReplicate(env)
		if herr != nil {
			return herr
		}
		ack = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ack, nil
}
