package dst

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/processorcentricmodel/pccs/internal/faultinject"
)

// Kind enumerates fault-schedule event types.
type Kind string

const (
	// Cut blackholes the directed link A→B; Heal clears every fault on it.
	Cut  Kind = "cut"
	Heal Kind = "heal"
	// Delay adds Dur of latency to A→B; Drop and Dup set A→B's message
	// drop / duplication probability to Rate.
	Delay Kind = "delay"
	Drop  Kind = "drop"
	Dup   Kind = "dup"
	// Kill crashes node A; Restart boots it with journal recovery.
	Kill    Kind = "kill"
	Restart Kind = "restart"
	// Skew sets node A's clock offset to Dur (may be negative).
	Skew Kind = "skew"
)

// Event is one fault at one virtual instant.
type Event struct {
	// At is the virtual offset from simulation boot.
	At   time.Duration
	Kind Kind
	// A and B name nodes; B is empty for node-scoped kinds.
	A, B string
	// Dur carries the delay/skew amount; Rate the drop/dup probability.
	Dur  time.Duration
	Rate float64
}

// String renders the event in the compact replayable form the explorer
// prints: "at:kind:a[:b][:arg]", e.g. "120ms:cut:n1:n2",
// "400ms:drop:n1:n3:0.5", "250ms:kill:n3", "600ms:skew:n2:-1s".
func (e Event) String() string {
	switch e.Kind {
	case Cut, Heal:
		return fmt.Sprintf("%s:%s:%s:%s", e.At, e.Kind, e.A, e.B)
	case Delay:
		return fmt.Sprintf("%s:%s:%s:%s:%s", e.At, e.Kind, e.A, e.B, e.Dur)
	case Drop, Dup:
		return fmt.Sprintf("%s:%s:%s:%s:%g", e.At, e.Kind, e.A, e.B, e.Rate)
	case Kill, Restart:
		return fmt.Sprintf("%s:%s:%s", e.At, e.Kind, e.A)
	case Skew:
		return fmt.Sprintf("%s:%s:%s:%s", e.At, e.Kind, e.A, e.Dur)
	default:
		return fmt.Sprintf("%s:%s:?", e.At, e.Kind)
	}
}

// Schedule is one complete fault scenario: the seed that drives every
// network-level random draw plus the event sequence. Generate makes the
// events a pure function of the seed too, but a parsed or shrunk schedule
// may carry events the seed would not generate — both replay exactly.
type Schedule struct {
	Seed   uint64
	Nodes  int
	Events []Event
}

// String renders the event list (";"-separated), the -schedule flag's format.
func (s Schedule) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// ParseSchedule parses the String form back into a schedule. Seed and node
// count travel separately (the -seed and -nodes flags).
func ParseSchedule(seed uint64, nodes int, s string) (Schedule, error) {
	sch := Schedule{Seed: seed, Nodes: nodes}
	s = strings.TrimSpace(s)
	if s == "" {
		return sch, nil
	}
	for _, part := range strings.Split(s, ";") {
		ev, err := parseEvent(strings.TrimSpace(part))
		if err != nil {
			return Schedule{}, err
		}
		sch.Events = append(sch.Events, ev)
	}
	sort.SliceStable(sch.Events, func(i, j int) bool { return sch.Events[i].At < sch.Events[j].At })
	return sch, nil
}

func parseEvent(s string) (Event, error) {
	f := strings.Split(s, ":")
	if len(f) < 3 {
		return Event{}, fmt.Errorf("dst: event %q needs at least at:kind:node", s)
	}
	at, err := time.ParseDuration(f[0])
	if err != nil {
		return Event{}, fmt.Errorf("dst: event %q: bad offset: %w", s, err)
	}
	ev := Event{At: at, Kind: Kind(f[1]), A: f[2]}
	rest := f[3:]
	need := func(n int, what string) error {
		if len(rest) != n {
			return fmt.Errorf("dst: event %q: %s wants %s", s, ev.Kind, what)
		}
		return nil
	}
	switch ev.Kind {
	case Cut, Heal:
		if err := need(1, "a:b"); err != nil {
			return Event{}, err
		}
		ev.B = rest[0]
	case Delay:
		if err := need(2, "a:b:duration"); err != nil {
			return Event{}, err
		}
		ev.B = rest[0]
		if ev.Dur, err = time.ParseDuration(rest[1]); err != nil {
			return Event{}, fmt.Errorf("dst: event %q: bad duration: %w", s, err)
		}
	case Drop, Dup:
		if err := need(2, "a:b:rate"); err != nil {
			return Event{}, err
		}
		ev.B = rest[0]
		if ev.Rate, err = strconv.ParseFloat(rest[1], 64); err != nil {
			return Event{}, fmt.Errorf("dst: event %q: bad rate: %w", s, err)
		}
	case Kill, Restart:
		if err := need(0, "just a node"); err != nil {
			return Event{}, err
		}
	case Skew:
		if err := need(1, "a:duration"); err != nil {
			return Event{}, err
		}
		if ev.Dur, err = time.ParseDuration(rest[0]); err != nil {
			return Event{}, fmt.Errorf("dst: event %q: bad duration: %w", s, err)
		}
	default:
		return Event{}, fmt.Errorf("dst: event %q: unknown kind %q", s, ev.Kind)
	}
	return ev, nil
}

// horizon bounds generated event times; the workload (publishes, sweep)
// spans the same window so faults land while work is in flight.
const horizon = 1500 * time.Millisecond

// Generate derives a schedule from a seed: 3–10 events over the horizon,
// weighted toward the fault kinds that historically find bugs (partitions
// and crashes). n1 is never killed — it hosts the coordinator — but its
// links are fair game. Unpaired events are fine: the runner's epilogue
// heals all links and restarts all dead nodes before invariants are
// checked, so a cut without a heal or a kill without a restart still ends
// in a checkable state, which is also what lets the shrinker drop events
// one at a time.
func Generate(seed uint64, nodes int) Schedule {
	if nodes < 2 {
		nodes = 3
	}
	r := faultinject.NewRand(seed).Fork(0x736368) // "sch"
	count := 3 + r.Intn(8)
	sch := Schedule{Seed: seed, Nodes: nodes}
	for i := 0; i < count; i++ {
		ev := Event{At: time.Duration(r.Intn(int(horizon/time.Millisecond))) * time.Millisecond}
		a := r.Intn(nodes)
		b := (a + 1 + r.Intn(nodes-1)) % nodes // distinct from a
		ev.A, ev.B = nodeID(a), nodeID(b)
		switch k := r.Intn(100); {
		case k < 20:
			ev.Kind = Cut
		case k < 35:
			ev.Kind = Heal
		case k < 50:
			ev.Kind = Delay
			ev.Dur = time.Duration(1+r.Intn(50)) * time.Millisecond
		case k < 62:
			ev.Kind = Drop
			ev.Rate = 0.2 + 0.7*r.Float64()
		case k < 70:
			ev.Kind = Dup
			ev.Rate = 0.2 + 0.6*r.Float64()
		case k < 80:
			ev.Kind = Kill
			ev.A, ev.B = nodeID(1+r.Intn(nodes-1)), ""
		case k < 92:
			ev.Kind = Restart
			ev.A, ev.B = nodeID(1+r.Intn(nodes-1)), ""
		default:
			ev.Kind = Skew
			ev.B = ""
			ev.Dur = time.Duration(r.Intn(4001)-2000) * time.Millisecond
		}
		sch.Events = append(sch.Events, ev)
	}
	sort.SliceStable(sch.Events, func(i, j int) bool { return sch.Events[i].At < sch.Events[j].At })
	return sch
}
