package dst

import (
	"strings"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/cluster"
)

func TestFakeAchievedDeterministicAndPositive(t *testing.T) {
	plan := samplePlan()
	for i := 0; i < 50; i++ {
		a := FakeAchieved(plan, "standalone", i)
		b := FakeAchieved(plan, "standalone", i)
		if a != b {
			t.Fatalf("point %d not deterministic: %g vs %g", i, a, b)
		}
		if a < 1 {
			t.Fatalf("point %d not positive: %g", i, a)
		}
	}
	if FakeAchieved(plan, "standalone", 0) == FakeAchieved(plan, "corun", 0) {
		t.Fatal("stages share values")
	}
}

func TestReferenceMatrixStable(t *testing.T) {
	a, err := ReferenceMatrix("virtual-xavier", 0, 1, dstRun)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReferenceMatrix("virtual-xavier", 0, 1, dstRun)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.StdBW) == 0 || len(a.StdBW) != len(b.StdBW) {
		t.Fatalf("unstable reference: %d vs %d rows", len(a.StdBW), len(b.StdBW))
	}
	for i := range a.StdBW {
		if a.StdBW[i] != b.StdBW[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestScheduleCodecRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		sch := Generate(seed, 3)
		if len(sch.Events) < 3 || len(sch.Events) > 10 {
			t.Fatalf("seed %d: %d events out of [3,10]", seed, len(sch.Events))
		}
		parsed, err := ParseSchedule(seed, 3, sch.String())
		if err != nil {
			t.Fatalf("seed %d: parsing own encoding: %v", seed, err)
		}
		if parsed.String() != sch.String() {
			t.Fatalf("seed %d: round trip changed schedule:\n was %s\n now %s", seed, sch, parsed)
		}
	}
	if _, err := ParseSchedule(1, 3, "10ms:frobnicate:n1"); err == nil {
		t.Fatal("unknown kind parsed")
	}
	if _, err := ParseSchedule(1, 3, "10ms:cut:n1"); err == nil {
		t.Fatal("cut without target parsed")
	}
}

func TestGenerateDeterministicNeverKillsCoordinator(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		a, b := Generate(seed, 3), Generate(seed, 3)
		if a.String() != b.String() {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
		for _, ev := range a.Events {
			if ev.Kind == Kill && ev.A == "n1" {
				t.Fatalf("seed %d kills the coordinator: %s", seed, ev)
			}
		}
	}
}

// TestQuietSchedule is the baseline: no faults at all, every invariant
// green.
func TestQuietSchedule(t *testing.T) {
	sch := Schedule{Seed: 1, Nodes: 3}
	if err := RunSchedule(sch, Options{}); err != nil {
		t.Fatalf("quiet cluster violated an invariant: %v", err)
	}
}

// TestGreenSchedules runs a batch of random schedules; a correct cluster
// must survive all of them.
func TestGreenSchedules(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 3
	}
	if f, ran := Explore(n, 1000, 3, Options{}, nil); f != nil {
		t.Fatalf("schedule %d of %d violated an invariant:\n%s", ran, n, f)
	}
}

// TestProberSymmetricPartitionHealMidWindow pins the prober hysteresis fix:
// a symmetric partition that heals mid-probe-window used to leave
// sequentially-probing nodes with divergent hysteresis counters — one
// round observing peer A before the heal and peer B after it — flapping
// lease routing. Concurrent per-round probes observe one instant; this
// schedule (partition both directions, heal just past a probe boundary)
// must come out green.
func TestProberSymmetricPartitionHealMidWindow(t *testing.T) {
	spec := "100ms:cut:n1:n2;100ms:cut:n2:n1;110ms:cut:n2:n3;110ms:cut:n3:n2;" +
		"690ms:heal:n1:n2;690ms:heal:n2:n1;710ms:heal:n2:n3;710ms:heal:n3:n2"
	sch, err := ParseSchedule(7, 3, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunSchedule(sch, Options{}); err != nil {
		t.Fatalf("mid-window heal schedule violated an invariant: %v", err)
	}
}

// TestExplorerCatchesInjectedBugs is the harness's own acceptance test:
// deliberately re-introduced recovery bugs must be caught within 100
// schedules and shrink to a handful of fault events.
func TestExplorerCatchesInjectedBugs(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
	}{
		{"skip-recovery", Options{BugSkipRecovery: true}},
		{"drop-journal-tail", Options{BugDropJournalTail: true}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f, ran := Explore(100, 42, 3, tc.opt, nil)
			if f == nil {
				t.Fatalf("bug %s not caught in %d schedules", tc.name, ran)
			}
			t.Logf("bug %s caught on schedule %d (seed %d), shrunk %d -> %d events",
				tc.name, ran, f.Seed, len(f.Schedule.Events), len(f.Shrunk.Events))
			if ran > 100 {
				t.Fatalf("bug %s took %d schedules (budget 100)", tc.name, ran)
			}
			if len(f.Shrunk.Events) > 10 {
				t.Fatalf("bug %s shrunk to %d events (want <= 10): %s", tc.name, len(f.Shrunk.Events), f.Shrunk)
			}
			if err := RunSchedule(f.Shrunk, tc.opt); err == nil {
				t.Fatalf("bug %s: shrunk schedule no longer reproduces", tc.name)
			}
			if !strings.Contains(f.String(), "-schedule") {
				t.Fatalf("failure lacks a replayable reproducer: %s", f)
			}
		})
	}
}

// TestKillRestartRecoversJournal drives the crash path directly: a version
// accepted just before a crash must survive the restart via journal replay.
func TestKillRestartRecoversJournal(t *testing.T) {
	spec := "200ms:kill:n2;400ms:restart:n2"
	sch, err := ParseSchedule(11, 3, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunSchedule(sch, Options{}); err != nil {
		t.Fatalf("kill/restart schedule violated an invariant: %v", err)
	}
}

// TestSkewDoesNotBreakConvergence pins that clock skew — readings shifted,
// durations honest — never breaks correctness, only (at worst) timing.
func TestSkewDoesNotBreakConvergence(t *testing.T) {
	spec := "50ms:skew:n2:1.5s;60ms:skew:n3:-900ms;300ms:cut:n1:n3;800ms:heal:n1:n3"
	sch, err := ParseSchedule(13, 3, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunSchedule(sch, Options{}); err != nil {
		t.Fatalf("skew schedule violated an invariant: %v", err)
	}
}

func samplePlan() cluster.SweepPlan {
	return cluster.SweepPlan{Platform: "virtual-xavier", TargetPU: 0, PressurePU: 1, Run: dstRun}
}
