// Package dst is the deterministic-simulation-testing harness for the
// pccsd cluster: it runs a whole multi-node cluster — coordinator, leases,
// hedging, replication, health probing, crash recovery — inside one process
// on a virtual clock (internal/clock) and an in-memory network (MemNet),
// then subjects it to seed-generated fault schedules and checks invariants
// that must hold after any sequence of partitions, crashes, message chaos,
// and clock skew.
//
// Everything a schedule does is a pure function of its seed: the event
// sequence (Generate), every per-message latency/drop/duplication draw
// (MemNet's faultinject.Rand), and every lease result (FakeAchieved). Time
// is virtual, so a schedule spanning tens of simulated seconds runs in
// milliseconds of wall time and an explorer (cmd/pccs-dst, `make dst`) can
// grind through hundreds of schedules per second under the race detector.
// When one fails, a greedy shrinker reduces it to a minimal reproducer
// replayable from its seed.
//
// What this deliberately does not model: goroutine scheduling order (the Go
// runtime still interleaves freely — invariants are therefore written as
// eventual, post-quiescence properties, not step-by-step lockstep ones) and
// real-network timing (latencies are synthetic; the live-daemon chaos soak
// keeps covering that). See DESIGN.md §14.
package dst

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/clock"
	"github.com/processorcentricmodel/pccs/internal/cluster"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// Simulation tuning: small virtual intervals keep a whole schedule's
// timeline in the low tens of simulated seconds.
const (
	probeInterval = 200 * time.Millisecond
	probeTimeout  = 500 * time.Millisecond
	leaseTimeout  = 2 * time.Second
	hedgeAfter    = 500 * time.Millisecond
	publishBudget = time.Second
)

// dstRun is the nominal per-point run length carried in sweep plans. No
// simulation ever runs it (leases execute FakeAchieved), it only has to be
// identical between the distributed sweep and the reference pipeline.
var dstRun = soc.RunConfig{WarmupCycles: 20_000, MeasureCycles: 60_000}

// Options configures one simulated cluster.
type Options struct {
	// Nodes is the cluster size (default 3). Node IDs are n1..nK; n1
	// hosts the coordinator and is never killed (coordinator failover is
	// out of scope — ISSUE the day it exists).
	Nodes int
	// Replicas is the replication factor (default 2).
	Replicas int
	// Platform, TargetPU, PressurePU pick the sweep under test (defaults
	// virtual-xavier, PU 0 pressured by PU 1).
	Platform             string
	TargetPU, PressurePU int
	// Publishes is how many model versions the workload publishes across
	// the cluster while faults fire (default 6: three keys, two versions
	// each, from rotating nodes — enough to race replication with every
	// fault kind).
	Publishes int

	// Deliberate bug re-introductions, used by the explorer's self-tests
	// to prove the harness catches real defect classes:
	//
	// BugSkipRecovery restarts a crashed node without replaying its
	// journal — the bug Recover exists to prevent.
	BugSkipRecovery bool
	// BugDropJournalTail restarts a crashed node with the journal's last
	// record silently dropped — the torn-tail bug class FuzzJournalReopen
	// guards the on-disk journal against, re-created here at cluster
	// scope.
	BugDropJournalTail bool

	// SkipGoroutineCheck disables the per-schedule goroutine-leak
	// invariant. Set when schedules run concurrently in one process,
	// where the global goroutine count cross-talks between runs.
	SkipGoroutineCheck bool
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Platform == "" {
		o.Platform = "virtual-xavier"
	}
	if o.PressurePU == 0 && o.TargetPU == 0 {
		o.PressurePU = 1
	}
	if o.Publishes == 0 {
		o.Publishes = 6
	}
	return o
}

// Sim is one simulated cluster: K nodes on a shared virtual clock and
// in-memory network, plus the context that scopes every goroutine the
// simulation starts.
type Sim struct {
	opt   Options
	seed  uint64
	clk   *clock.Virtual
	net   *MemNet
	peers map[string]string
	nodes []*SimNode
	start time.Time

	ctx     context.Context
	cancel  context.CancelFunc
	stopAdv func()
	once    sync.Once
}

// SimNode is one simulated pccsd process. The cluster.Node is the process's
// volatile memory — killed and rebuilt on crash/restart — while the journal
// of accepted envelopes (fed by the OnAccept hook, journal-before-replicate)
// is its durable disk, surviving any number of crashes.
type SimNode struct {
	sim  *Sim
	id   string
	skew *clock.Skewed

	mu          sync.Mutex
	node        *cluster.Node // guarded by mu; nil while crashed
	alive       bool          // guarded by mu
	probeCancel context.CancelFunc
	journal     []cluster.ReplicaEnvelope // guarded by mu; the durable log
	seen        map[string]bool           // guarded by mu; journal dedup
}

// NewSim boots a cluster: nodes, transports, probers, and the virtual
// clock's auto-advancer. seed drives every network-level random draw.
func NewSim(opt Options, seed uint64) (*Sim, error) {
	opt = opt.withDefaults()
	clk := clock.NewVirtual()
	s := &Sim{
		opt:   opt,
		seed:  seed,
		clk:   clk,
		net:   NewMemNet(clk, seed),
		peers: make(map[string]string, opt.Nodes),
		start: clk.Now(),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	for i := 0; i < opt.Nodes; i++ {
		id := nodeID(i)
		s.peers[id] = memScheme + id
	}
	for i := 0; i < opt.Nodes; i++ {
		n := &SimNode{
			sim:  s,
			id:   nodeID(i),
			skew: clock.NewSkewed(clk, 0),
			seen: make(map[string]bool),
		}
		s.net.register(n)
		s.nodes = append(s.nodes, n)
	}
	for _, n := range s.nodes {
		if err := n.boot(false); err != nil {
			s.Close()
			return nil, err
		}
	}
	s.stopAdv = clk.AutoAdvance()
	return s, nil
}

func nodeID(i int) string { return fmt.Sprintf("n%d", i+1) }

// Clock exposes the base virtual clock (unskewed).
func (s *Sim) Clock() *clock.Virtual { return s.clk }

// Nodes returns the simulated nodes in ID order.
func (s *Sim) Nodes() []*SimNode { return s.nodes }

// Net exposes the simulated network for direct fault injection.
func (s *Sim) Net() *MemNet { return s.net }

// byID returns the node with the given ID (nil if unknown).
func (s *Sim) byID(id string) *SimNode {
	for _, n := range s.nodes {
		if n.id == id {
			return n
		}
	}
	return nil
}

// elapsed is virtual time since the simulation booted.
func (s *Sim) elapsed() time.Duration { return s.clk.Since(s.start) }

// sleepUntil blocks (on virtual time) until the given offset from boot.
func (s *Sim) sleepUntil(at time.Duration) {
	if d := at - s.elapsed(); d > 0 {
		s.clk.Sleep(d)
	}
}

// Close tears the simulation down: cancels every goroutine it started and
// stops the clock advancer. Idempotent.
func (s *Sim) Close() {
	s.once.Do(func() {
		s.cancel()
		if s.stopAdv != nil {
			s.stopAdv()
		}
	})
}

// ID returns the node's cluster identity.
func (n *SimNode) ID() string { return n.id }

// Alive reports whether the simulated process is running.
func (n *SimNode) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// Node returns the current cluster.Node incarnation (nil while crashed).
func (n *SimNode) Node() *cluster.Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.node
}

// Journal snapshots the node's durable log.
func (n *SimNode) Journal() []cluster.ReplicaEnvelope {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]cluster.ReplicaEnvelope(nil), n.journal...)
}

// journalAppend is the OnAccept hook: it runs under the store lock, so an
// accepted version is journaled before any replication of it leaves the
// node. Lock order is store.mu → n.mu; nothing takes them the other way.
func (n *SimNode) journalAppend(env cluster.ReplicaEnvelope) {
	n.mu.Lock()
	defer n.mu.Unlock()
	k := fmt.Sprintf("%s|%d|%s", env.Key, env.Version.Seq, env.Version.SHA)
	if n.seen[k] {
		return
	}
	n.seen[k] = true
	n.journal = append(n.journal, env)
}

// boot builds a fresh cluster.Node incarnation and starts its prober. With
// recover set it replays the journal first (modulo the deliberate recovery
// bugs), re-queueing every record for its shard owners.
func (n *SimNode) boot(recoverJournal bool) error {
	cfg := cluster.Config{
		ID:           n.id,
		Peers:        n.sim.peers,
		Replicas:     n.sim.opt.Replicas,
		Transport:    n.sim.net.TransportFor(n.id),
		Clock:        n.skew,
		ProbeTimeout: probeTimeout,
		OnAccept:     n.journalAppend,
	}
	node, err := cluster.NewNode(cfg)
	if err != nil {
		return err
	}
	pctx, cancel := context.WithCancel(n.sim.ctx)
	n.mu.Lock()
	n.node = node
	n.alive = true
	n.probeCancel = cancel
	journal := append([]cluster.ReplicaEnvelope(nil), n.journal...)
	n.mu.Unlock()

	if recoverJournal && !n.sim.opt.BugSkipRecovery {
		if n.sim.opt.BugDropJournalTail && len(journal) > 0 {
			journal = journal[:len(journal)-1]
		}
		if err := node.Recover(journal); err != nil {
			return err
		}
	}
	node.Prober().Start(pctx, probeInterval)
	return nil
}

// Kill crashes the node: its memory (store, pending replication queue,
// prober state) is gone; only the journal survives. In-flight handlers
// finish against the dead incarnation, but the transport suppresses any
// traffic the corpse tries to send.
func (n *SimNode) Kill() {
	n.mu.Lock()
	if !n.alive {
		n.mu.Unlock()
		return
	}
	n.alive = false
	n.node = nil
	cancel := n.probeCancel
	n.probeCancel = nil
	n.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Restart boots a crashed node, replaying its journal (see boot).
func (n *SimNode) Restart() error {
	if n.Alive() {
		return nil
	}
	return n.boot(true)
}

// Publish publishes a model version from this node, exactly as a daemon
// would after a local calibration. Crashed nodes publish nothing; owners
// unreachable within the budget are left to the pending/flush machinery.
func (n *SimNode) Publish(p core.Params) {
	n.mu.Lock()
	node, alive := n.node, n.alive
	n.mu.Unlock()
	if !alive || node == nil {
		return
	}
	ctx, cancel := n.sim.clk.WithTimeout(n.sim.ctx, publishBudget)
	defer cancel()
	_, _ = node.Publish(ctx, p) // unreachable owners queue as pending
}

// handlePing serves the prober's health probe.
func (n *SimNode) handlePing() (*cluster.PingInfo, error) {
	n.mu.Lock()
	node, alive := n.node, n.alive
	n.mu.Unlock()
	if !alive || node == nil {
		return nil, fmt.Errorf("dst: node %s is down", n.id)
	}
	return &cluster.PingInfo{Node: n.id, Tier: "ok", Models: len(node.Store().Keys())}, nil
}

// handleLease executes a calibration lease with fake points (FakeAchieved).
func (n *SimNode) handleLease(req cluster.LeaseRequest) (*cluster.LeaseResponse, error) {
	if !n.Alive() {
		return nil, fmt.Errorf("dst: node %s is down", n.id)
	}
	if req.Lo < 0 || req.Hi < req.Lo {
		return nil, fmt.Errorf("dst: lease %s has bad range [%d,%d)", req.ID, req.Lo, req.Hi)
	}
	vals := make([]float64, 0, req.Hi-req.Lo)
	for i := req.Lo; i < req.Hi; i++ {
		vals = append(vals, FakeAchieved(req.Plan, req.Stage, i))
	}
	return &cluster.LeaseResponse{ID: req.ID, Node: n.id, AchievedGBps: vals}, nil
}

// handleReplicate applies a pushed model version newer-wins.
func (n *SimNode) handleReplicate(env cluster.ReplicaEnvelope) (*cluster.ReplicateAck, error) {
	n.mu.Lock()
	node, alive := n.node, n.alive
	n.mu.Unlock()
	if !alive || node == nil {
		return nil, fmt.Errorf("dst: node %s is down", n.id)
	}
	applied, v, err := node.ApplyReplica(env)
	if err != nil {
		return nil, err
	}
	return &cluster.ReplicateAck{Node: n.id, Applied: applied, Version: v}, nil
}

// Sweep runs one distributed calibration sweep coordinated from n1, over
// fake points in virtual time. The coordinator seed is the schedule seed,
// so backoff jitter replays with the schedule.
func (s *Sim) Sweep(ctx context.Context) (*calib.Matrix, cluster.CoordinatorStats, error) {
	n0 := s.nodes[0]
	node := n0.Node()
	if node == nil {
		return nil, cluster.CoordinatorStats{}, fmt.Errorf("dst: coordinator node %s is down", n0.id)
	}
	co := &cluster.Coordinator{
		Node:           node,
		PointsPerLease: 4,
		LeaseTimeout:   leaseTimeout,
		HedgeAfter:     hedgeAfter,
		MaxAttempts:    10,
		BackoffBase:    50 * time.Millisecond,
		BackoffCap:     500 * time.Millisecond,
		Seed:           s.seed,
	}
	b, err := platform.Get(s.opt.Platform)
	if err != nil {
		return nil, cluster.CoordinatorStats{}, err
	}
	m, err := co.Sweep(ctx, b, s.opt.TargetPU, s.opt.PressurePU, dstRun)
	return m, node.Stats(), err
}
