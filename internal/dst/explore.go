package dst

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/cluster"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/faultinject"
	"github.com/processorcentricmodel/pccs/internal/platform"
)

// watchdogTimeout bounds one schedule in *real* time. Virtual time only
// advances while something is waiting on it; a deadlock where every
// goroutine blocks on a channel or mutex stops the virtual clock dead, and
// this is the net that catches it and reports the schedule instead of
// hanging the explorer.
//
//pccs:allow-wallclock the watchdog measures real wall time by design — it exists to catch virtual time failing to advance
const watchdogTimeout = 60 * time.Second

// convergence loop bounds (virtual time).
const (
	convergeRounds = 60
	convergeEvery  = 250 * time.Millisecond
)

// RunSchedule executes one fault schedule against a fresh simulated
// cluster and returns nil when every invariant holds:
//
//  1. the distributed sweep's matrix is byte-identical to the single-node
//     reference, no matter what the schedule did to the cluster;
//  2. lease accounting balances: grants = leases + reassignments + hedges,
//     and at least one grant per lease;
//  3. after the heal/restart epilogue, every owner of every published key
//     converges on the globally newest journaled version (newer-wins);
//  4. every node's prober sees every peer up again (health convergence);
//  5. the simulation leaks no goroutines.
func RunSchedule(sch Schedule, opt Options) error {
	done := make(chan error, 1)
	go func() { done <- runSchedule(sch, opt) }()
	select {
	case err := <-done:
		return err
	//pccs:allow-wallclock the watchdog waits in real time by design (see watchdogTimeout)
	case <-time.After(watchdogTimeout):
		return fmt.Errorf("dst: schedule hung: virtual time stopped advancing for %v of real time", watchdogTimeout)
	}
}

func runSchedule(sch Schedule, opt Options) error {
	opt = opt.withDefaults()
	if sch.Nodes > 0 {
		opt.Nodes = sch.Nodes
	}
	before := runtime.NumGoroutine()

	s, err := NewSim(opt, sch.Seed)
	if err != nil {
		return err
	}
	defer s.Close()

	var wg sync.WaitGroup

	// Fault controller: fire the schedule's events at their virtual
	// instants. A single goroutine, so events apply in order.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, ev := range sch.Events {
			s.sleepUntil(ev.At)
			s.apply(ev)
		}
	}()

	// Publish workload: model versions racing the faults.
	for _, p := range publishPlan(sch.Seed, opt) {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.sleepUntil(p.at)
			s.nodes[p.node].Publish(p.params)
		}()
	}

	// Distributed sweep, coordinated from n1.
	var (
		matrix   *calib.Matrix
		stats    cluster.CoordinatorStats
		sweepErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.sleepUntil(50 * time.Millisecond)
		matrix, stats, sweepErr = s.Sweep(s.ctx)
	}()

	wg.Wait()

	// Invariant 1: byte-identical reassembly.
	if sweepErr != nil {
		return fmt.Errorf("dst: invariant sweep-completes: %w", sweepErr)
	}
	ref, err := ReferenceMatrix(opt.Platform, opt.TargetPU, opt.PressurePU, dstRun)
	if err != nil {
		return fmt.Errorf("dst: reference pipeline: %w", err)
	}
	got, _ := json.Marshal(matrix)
	want, _ := json.Marshal(ref)
	if !bytes.Equal(got, want) {
		return fmt.Errorf("dst: invariant matrix-identical: distributed sweep diverged from single-node reference\n got: %.200s\nwant: %.200s", got, want)
	}

	// Invariant 2: lease accounting.
	leases := referenceLeases(opt)
	if stats.LeasesGranted < uint64(leases) {
		return fmt.Errorf("dst: invariant lease-accounting: %d grants for %d leases", stats.LeasesGranted, leases)
	}
	if stats.LeasesGranted != uint64(leases)+stats.LeasesReassigned+stats.HedgedRequests {
		return fmt.Errorf("dst: invariant lease-accounting: grants=%d != leases=%d + reassigned=%d + hedged=%d",
			stats.LeasesGranted, leases, stats.LeasesReassigned, stats.HedgedRequests)
	}

	// Epilogue: heal everything, restart the dead, then demand convergence.
	s.net.HealAll()
	for _, n := range s.nodes {
		if err := n.Restart(); err != nil {
			return fmt.Errorf("dst: restarting %s: %w", n.id, err)
		}
	}

	// Invariant 3: replica convergence to the newest journaled versions.
	if err := s.awaitConvergence(); err != nil {
		return err
	}
	// Invariant 4: prober health convergence.
	if err := s.awaitHealth(); err != nil {
		return err
	}

	s.Close()

	// Invariant 5: no goroutine leaks.
	if opt.SkipGoroutineCheck {
		return nil
	}
	return awaitGoroutines(before)
}

// apply executes one schedule event. Unknown nodes and self-links are
// ignored (hand-written schedules), as is any attempt to kill n1.
func (s *Sim) apply(ev Event) {
	if ev.A == ev.B {
		return
	}
	switch ev.Kind {
	case Cut:
		s.net.SetCut(ev.A, ev.B, true)
	case Heal:
		s.net.SetCut(ev.A, ev.B, false)
		s.net.SetDelay(ev.A, ev.B, 0)
		s.net.SetDrop(ev.A, ev.B, 0)
		s.net.SetDup(ev.A, ev.B, 0)
	case Delay:
		s.net.SetDelay(ev.A, ev.B, ev.Dur)
	case Drop:
		s.net.SetDrop(ev.A, ev.B, ev.Rate)
	case Dup:
		s.net.SetDup(ev.A, ev.B, ev.Rate)
	case Kill:
		if n := s.byID(ev.A); n != nil && n != s.nodes[0] {
			n.Kill()
		}
	case Restart:
		if n := s.byID(ev.A); n != nil {
			_ = n.Restart()
		}
	case Skew:
		if n := s.byID(ev.A); n != nil {
			n.skew.SetOffset(ev.Dur)
		}
	}
}

// publish is one workload publish action.
type publish struct {
	at     time.Duration
	node   int
	params core.Params
}

// publishPlan derives the publish workload from the schedule seed: three
// keys, versions published in sequence from rotating nodes, spread across
// the fault window so replication races partitions, crashes, and dups.
func publishPlan(seed uint64, opt Options) []publish {
	r := faultinject.NewRand(seed).Fork(0x707562) // "pub"
	plan := make([]publish, 0, opt.Publishes)
	for i := 0; i < opt.Publishes; i++ {
		key := i % 3
		plan = append(plan, publish{
			at:   100*time.Millisecond + time.Duration(r.Intn(int(horizon/time.Millisecond)-100))*time.Millisecond,
			node: r.Intn(opt.Nodes),
			params: core.Params{
				Platform:    "dst-model",
				PU:          fmt.Sprintf("pu%d", key),
				NormalBW:    10 + float64(i),
				IntensiveBW: 50 + float64(i),
				MRMC:        12.5,
				CBP:         30 + float64(i),
				TBWDC:       60,
				RateN:       1.5,
				PeakBW:      137,
			},
		})
	}
	return plan
}

// referenceLeases computes how many leases the sweep splits into — a pure
// function of the fake standalone column, like everything else.
func referenceLeases(opt Options) int {
	b, err := platform.Get(opt.Platform)
	if err != nil {
		return 0
	}
	cfg := calib.DefaultSweep(b, opt.TargetPU, opt.PressurePU)
	plan := cluster.SweepPlan{Platform: b.PlatformName(), TargetPU: opt.TargetPU, PressurePU: opt.PressurePU, Run: dstRun}
	alone := make([]float64, len(cfg.Calibrators))
	for i := range alone {
		alone[i] = FakeAchieved(plan, cluster.StageStandalone, i)
	}
	kept := calib.KeptIndices(alone)
	per := 4 // Sim.Sweep's PointsPerLease
	return ceilDiv(len(alone), per) + ceilDiv(len(kept)*len(cfg.ExtGBps), per)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// awaitConvergence asserts invariant 3 within a bounded stretch of virtual
// time: the globally newest journaled version of every key (the ground
// truth — OnAccept journals every accepted version before replication, so
// nothing newer can exist anywhere) is the winning version on every owner.
func (s *Sim) awaitConvergence() error {
	var diag string
	for round := 0; round < convergeRounds; round++ {
		if diag = s.convergenceDiag(); diag == "" {
			return nil
		}
		s.clk.Sleep(convergeEvery)
	}
	return fmt.Errorf("dst: invariant replica-convergence: still diverged after %v virtual: %s",
		convergeRounds*convergeEvery, diag)
}

func (s *Sim) convergenceDiag() string {
	newest := make(map[string]cluster.Version)
	for _, n := range s.nodes {
		for _, env := range n.Journal() {
			if cur, ok := newest[env.Key]; !ok || env.Version.Newer(cur) {
				newest[env.Key] = env.Version
			}
		}
	}
	ring := s.nodes[0].Node() // n1 is never killed; the ring is static
	if ring == nil {
		return "coordinator node is down"
	}
	for key, want := range newest {
		for _, owner := range ring.Owners(key) {
			n := s.byID(owner)
			node := n.Node()
			if node == nil {
				return fmt.Sprintf("owner %s of %s is down", owner, key)
			}
			if got := node.Store().VersionOf(key); got != want {
				return fmt.Sprintf("owner %s of %s has %s, newest journaled is %s", owner, key, got, want)
			}
		}
	}
	return ""
}

// awaitHealth asserts invariant 4: every node's prober sees every peer up.
func (s *Sim) awaitHealth() error {
	var diag string
	for round := 0; round < convergeRounds; round++ {
		diag = ""
		for _, n := range s.nodes {
			node := n.Node()
			if node == nil {
				diag = fmt.Sprintf("node %s is down after epilogue", n.id)
				break
			}
			for _, peer := range s.nodes {
				if peer.id != n.id && !node.Prober().Up(peer.id) {
					diag = fmt.Sprintf("%s still sees %s down", n.id, peer.id)
					break
				}
			}
			if diag != "" {
				break
			}
		}
		if diag == "" {
			return nil
		}
		s.clk.Sleep(convergeEvery)
	}
	return fmt.Errorf("dst: invariant health-convergence: %s after %v virtual", diag, convergeRounds*convergeEvery)
}

// awaitGoroutines asserts invariant 5 in real time, giving cancelled
// goroutines a moment to unwind.
func awaitGoroutines(before int) error {
	const slack = 3
	after := 0
	for i := 0; i < 200; i++ {
		if after = runtime.NumGoroutine(); after <= before+slack {
			return nil
		}
		//pccs:allow-wallclock goroutine unwinding happens in real time, not virtual
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("dst: invariant no-goroutine-leak: %d goroutines before, %d after teardown", before, after)
}

// Failure is a schedule that violated an invariant, plus its greedily
// shrunk minimal reproducer.
type Failure struct {
	Seed     uint64
	Schedule Schedule
	Shrunk   Schedule
	Err      error
}

// String renders the failure as replayable pccs-dst flags.
func (f *Failure) String() string {
	return fmt.Sprintf("seed %d: %v\n  replay:  pccs-dst -seed %d -nodes %d -schedule %q\n  shrunk:  pccs-dst -seed %d -nodes %d -schedule %q",
		f.Seed, f.Err,
		f.Seed, f.Schedule.Nodes, f.Schedule.String(),
		f.Seed, f.Shrunk.Nodes, f.Shrunk.String())
}

// Explore generates and runs n schedules from consecutive seeds, stopping
// at the first invariant violation, which it shrinks before returning.
// progress (optional) is called after every green schedule. Returns the
// failure (nil when all green) and how many schedules ran.
func Explore(n int, baseSeed uint64, nodes int, opt Options, progress func(done int)) (*Failure, int) {
	for i := 0; i < n; i++ {
		seed := baseSeed + uint64(i)
		sch := Generate(seed, nodes)
		if err := RunSchedule(sch, opt); err != nil {
			return &Failure{Seed: seed, Schedule: sch, Shrunk: Shrink(sch, opt), Err: err}, i + 1
		}
		if progress != nil {
			progress(i + 1)
		}
	}
	return nil, n
}

// Shrink greedily minimizes a failing schedule: repeatedly drop any single
// event whose removal keeps the schedule failing, to a fixpoint. The
// epilogue's heal-and-restart normalization is what makes single-event
// removal sound — a kill whose restart was dropped (or vice versa) still
// reaches a checkable end state.
func Shrink(sch Schedule, opt Options) Schedule {
	cur := sch
	for changed := true; changed; {
		changed = false
		for i := len(cur.Events) - 1; i >= 0; i-- {
			cand := cur
			cand.Events = make([]Event, 0, len(cur.Events)-1)
			cand.Events = append(cand.Events, cur.Events[:i]...)
			cand.Events = append(cand.Events, cur.Events[i+1:]...)
			if RunSchedule(cand, opt) != nil {
				cur = cand
				changed = true
			}
		}
	}
	return cur
}
