package dst

import (
	"fmt"
	"hash/fnv"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/cluster"
	"github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// FakeAchieved is the simulated cluster's lease executor: a pure function
// of (plan, stage, point index) standing in for the real bandwidth
// simulation. One real sweep point costs tens of milliseconds of simulated
// cycles; a schedule explorer that runs hundreds of fault schedules per
// second cannot afford any of them, and does not need to — the property
// under test is the *distribution* machinery (leases, retries, hedges,
// replication, recovery), whose soundness rests only on lease execution
// being a deterministic pure function of the plan. This is that function,
// made cheap. Real-simulation coverage of the same paths lives in the
// cluster package's own tests.
func FakeAchieved(plan cluster.SweepPlan, stage string, index int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%s|%d", plan.Platform, plan.TargetPU, plan.PressurePU, stage, index)
	x := h.Sum64()
	// SplitMix64 finalizer: decorrelates adjacent indices so the standalone
	// column exercises KeptIndices' non-trivial filtering.
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return 1 + float64(x%119_000)/1000
}

// ReferenceMatrix computes the single-node ground truth for a fake-point
// sweep: the exact pipeline Coordinator.Sweep runs (DefaultSweep →
// SweepKernels → KeptIndices → AssembleMatrix), fed point-by-point from
// FakeAchieved. The invariant checker demands the distributed sweep's
// matrix be byte-identical to this no matter which nodes served which
// leases or how many times a lease was reassigned mid-chaos.
func ReferenceMatrix(platformName string, targetPU, pressurePU int, rc soc.RunConfig) (*calib.Matrix, error) {
	b, err := platform.Get(platformName)
	if err != nil {
		return nil, err
	}
	cfg := calib.DefaultSweep(b, targetPU, pressurePU)
	cfg.Run = rc
	if err := cfg.Validate(b); err != nil {
		return nil, err
	}
	plan := cluster.SweepPlan{Platform: b.PlatformName(), TargetPU: targetPU, PressurePU: pressurePU, Run: rc}
	kernels := calib.SweepKernels(cfg)
	alone := make([]float64, len(kernels))
	for i := range alone {
		alone[i] = FakeAchieved(plan, cluster.StageStandalone, i)
	}
	kept := calib.KeptIndices(alone)
	corun := make([]float64, len(kept)*len(cfg.ExtGBps))
	for i := range corun {
		corun[i] = FakeAchieved(plan, cluster.StageCorun, i)
	}
	return calib.AssembleMatrix(b, cfg, alone, kept, corun)
}
