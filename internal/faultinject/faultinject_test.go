package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if err := in.Hit("simrun/point"); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if in.Stats() != nil || in.Sites() != nil || in.Injected() != 0 {
		t.Error("nil injector reported state")
	}
}

func TestUnarmedSiteIsNoop(t *testing.T) {
	in := MustNew(1, Rule{Site: "a", Kind: Error, Rate: 1})
	for i := 0; i < 100; i++ {
		if err := in.Hit("b"); err != nil {
			t.Fatalf("unarmed site injected: %v", err)
		}
	}
	if st := in.Stats()["b"]; st.Hits != 0 {
		t.Errorf("unarmed site counted hits: %+v", st)
	}
}

func TestErrorInjectionRateAndMarker(t *testing.T) {
	in := MustNew(42, Rule{Site: "s", Kind: Error, Rate: 0.25})
	const hits = 10_000
	injected := 0
	for i := 0; i < hits; i++ {
		if err := in.Hit("s"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", err)
			}
			injected++
		}
	}
	// The decision hash should land within a few percent of the rate.
	if injected < hits/5 || injected > hits/3 {
		t.Errorf("injected %d/%d at rate 0.25", injected, hits)
	}
	st := in.Stats()["s"]
	if st.Hits != hits || st.Injected != uint64(injected) {
		t.Errorf("stats = %+v, want %d hits / %d injected", st, hits, injected)
	}
}

func TestDeterministicAcrossInjectors(t *testing.T) {
	seq := func(seed uint64) []bool {
		in := MustNew(seed, Rule{Site: "s", Kind: Error, Rate: 0.5})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Hit("s") != nil
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestPanicInjectionCarriesMarker(t *testing.T) {
	in := MustNew(1, Rule{Site: "s", Kind: Panic, Rate: 1})
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("no panic at rate 1")
		}
		err, ok := rec.(error)
		if !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panic value %v does not wrap ErrInjected", rec)
		}
	}()
	in.Hit("s")
}

func TestCountCapStopsInjection(t *testing.T) {
	in := MustNew(1, Rule{Site: "s", Kind: Error, Rate: 1, Count: 3})
	injected := 0
	for i := 0; i < 10; i++ {
		if in.Hit("s") != nil {
			injected++
		}
	}
	if injected != 3 {
		t.Errorf("injected %d, want 3 (count cap)", injected)
	}
}

func TestDelayInjection(t *testing.T) {
	in := MustNew(1, Rule{Site: "s", Kind: Delay, Rate: 1, Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := in.Hit("s"); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("delay slept only %s", elapsed)
	}
}

func TestRuleOrderFirstWins(t *testing.T) {
	// Error at rate 1 shadows the panic rule behind it.
	in := MustNew(1,
		Rule{Site: "s", Kind: Error, Rate: 1},
		Rule{Site: "s", Kind: Panic, Rate: 1},
	)
	if err := in.Hit("s"); err == nil {
		t.Fatal("first rule did not fire")
	}
}

func TestParse(t *testing.T) {
	rules, err := Parse(" simrun/point:error:0.01 , simrun/point:panic:0.005:3 , server/handler:delay:0.5:50ms ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Site: "simrun/point", Kind: Error, Rate: 0.01},
		{Site: "simrun/point", Kind: Panic, Rate: 0.005, Count: 3},
		{Site: "server/handler", Kind: Delay, Rate: 0.5, Delay: 50 * time.Millisecond},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"siteonly",
		"s:error",
		"s:explode:0.1",
		"s:error:nope",
		"s:error:1.5",
		"s:error:-0.1",
		"s:error:0.1:xyz",
		"s:delay:0.1",       // missing duration
		"s:delay:0.1:10xyz", // bad duration
		":error:0.1",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv("PCCS_FAULTS", "")
	if in, err := FromEnv(); err != nil || in != nil {
		t.Fatalf("empty env: injector=%v err=%v", in, err)
	}
	t.Setenv("PCCS_FAULTS", "s:error:1")
	t.Setenv("PCCS_FAULT_SEED", "99")
	in, err := FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if in == nil || in.Hit("s") == nil {
		t.Error("env-armed injector did not fire")
	}
	t.Setenv("PCCS_FAULT_SEED", "not-a-number")
	if _, err := FromEnv(); err == nil {
		t.Error("bad seed accepted")
	}
	t.Setenv("PCCS_FAULT_SEED", "1")
	t.Setenv("PCCS_FAULTS", "broken spec")
	if _, err := FromEnv(); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestConcurrentHitsAreSafe(t *testing.T) {
	in := MustNew(3, Rule{Site: "s", Kind: Error, Rate: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = in.Hit("s")
			}
		}()
	}
	wg.Wait()
	if st := in.Stats()["s"]; st.Hits != 8000 {
		t.Errorf("hits = %d, want 8000", st.Hits)
	}
}
