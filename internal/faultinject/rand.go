package faultinject

// Rand is the package's deterministic random stream, exported for
// machinery that needs whole sequences of seed-driven decisions rather
// than per-site coin flips — the DST fault-schedule generator draws every
// partition, delay, kill, and skew in a schedule from one Rand, so a
// schedule is a pure function of its seed and replays identically from
// `pccs-dst -seed`.
//
// The generator is SplitMix64: the same finalizer `decide` uses, iterated
// over a Weyl sequence. It is tiny, allocation-free, and — unlike
// math/rand's global source — impossible to perturb from anywhere else in
// the process, which is the property replayability rests on. Not safe for
// concurrent use; each consumer owns its own Rand.
type Rand struct {
	state uint64
}

// NewRand returns a deterministic stream seeded with seed. Equal seeds
// yield equal streams.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next value of the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns the next value mapped to [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns the next value mapped to [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("faultinject: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns the next value as a coin flip with probability p of true.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent stream from this one, labeled so sibling
// forks (and the parent) never collide: schedule generation forks one
// stream per simulated node, per link, etc., keeping each sub-sequence
// stable when unrelated draws are added elsewhere.
func (r *Rand) Fork(label uint64) *Rand {
	return NewRand(r.Uint64() ^ (label * 0xbf58476d1ce4e5b9))
}
