package faultinject

import "testing"

func TestRandDeterministicAndSeedSensitive(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("equal seeds diverged at draw %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	d := NewRand(42)
	for i := 0; i < 1000; i++ {
		d.Uint64()
	}
	_ = d
	x, y := NewRand(42), c
	for i := 0; i < 64; i++ {
		if x.Uint64() == y.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 42 and 43 collide on %d/64 draws", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10_000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		if n := r.Intn(13); n < 0 || n >= 13 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRandForkIndependence(t *testing.T) {
	// Forks with different labels from identically-seeded parents are
	// stable, and differ from each other and the parent stream.
	p1, p2 := NewRand(99), NewRand(99)
	f1, f2 := p1.Fork(1), p2.Fork(1)
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatalf("same-label forks diverged at draw %d", i)
		}
	}
	g := NewRand(99).Fork(2)
	h := NewRand(99).Fork(1)
	same := 0
	for i := 0; i < 64; i++ {
		if g.Uint64() == h.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("labels 1 and 2 collide on %d/64 draws", same)
	}
}
