// Package faultinject provides deterministic, seed-driven fault injection
// for chaos testing the PCCS stack. Components register named sites (e.g.
// "simrun/point", "server/handler") by calling Injector.Hit on their hot
// path; an enabled rule makes a site return an injected error, panic, or
// sleep for a latency spike, at a configured rate.
//
// Decisions are a pure function of (seed, site, hit index, rule index), so
// a given injector configuration produces the same fault sequence on every
// run — chaos tests are reproducible, and a failing seed can be replayed.
// Which goroutine observes the n-th hit still depends on scheduling, but
// the PCCS simulation points are idempotent pure computations, so retried
// work reproduces identical results regardless of which points drew the
// faults.
//
// A nil *Injector is valid and disabled: Hit returns nil at the cost of one
// nil check, so production wiring can thread an injector everywhere and pay
// nothing when chaos is off. Injectors are configured programmatically with
// New, from a compact spec string with Parse (the -faults flag of pccsd),
// or from the PCCS_FAULTS / PCCS_FAULT_SEED environment with FromEnv.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected marks every fault produced by an injector. Injected errors
// (and the error values carried by injected panics) wrap it, so callers
// classify transient chaos with errors.Is(err, ErrInjected) — the retry
// layer in simrun retries exactly these and leaves deterministic model
// errors alone.
var ErrInjected = errors.New("injected fault")

// Kind selects what an enabled rule does to its site.
type Kind string

const (
	// Error makes Hit return an error wrapping ErrInjected.
	Error Kind = "error"
	// Panic makes Hit panic with an error value wrapping ErrInjected.
	Panic Kind = "panic"
	// Delay makes Hit sleep for the rule's Delay (a latency spike), then
	// continue normally.
	Delay Kind = "delay"
)

// Rule arms one failure mode at one site.
type Rule struct {
	// Site names the injection point, e.g. "simrun/point".
	Site string
	// Kind is the failure mode.
	Kind Kind
	// Rate is the per-hit injection probability in [0, 1].
	Rate float64
	// Count caps the number of injections for this rule; 0 is unlimited.
	Count int
	// Delay is the sleep duration for Delay rules.
	Delay time.Duration
}

func (r Rule) validate() error {
	if r.Site == "" {
		return fmt.Errorf("faultinject: rule with empty site")
	}
	switch r.Kind {
	case Error, Panic:
	case Delay:
		if r.Delay <= 0 {
			return fmt.Errorf("faultinject: delay rule at %s needs a positive duration", r.Site)
		}
	default:
		return fmt.Errorf("faultinject: unknown kind %q (want error, panic, or delay)", r.Kind)
	}
	if r.Rate < 0 || r.Rate > 1 {
		return fmt.Errorf("faultinject: rate %g at %s out of [0,1]", r.Rate, r.Site)
	}
	if r.Count < 0 {
		return fmt.Errorf("faultinject: negative count at %s", r.Site)
	}
	return nil
}

// SiteStats counts activity at one site.
type SiteStats struct {
	// Hits is how many times the site was reached.
	Hits uint64
	// Injected is how many faults fired (all kinds combined).
	Injected uint64
}

type siteState struct {
	rules    []Rule
	hits     uint64
	injected uint64
	fired    []int // per-rule injection counts, for Count caps
}

// Injector evaluates rules at named sites. Safe for concurrent use.
type Injector struct {
	seed uint64

	mu    sync.Mutex
	sites map[string]*siteState // guarded by mu
}

// New builds an injector from a seed and a rule set. Invalid rules return
// an error rather than silently disarming a chaos test.
//
//pccs:allow-guardedby the injector is not yet published; no other goroutine can hold a reference during construction
func New(seed uint64, rules ...Rule) (*Injector, error) {
	in := &Injector{seed: seed, sites: make(map[string]*siteState)}
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
		st := in.sites[r.Site]
		if st == nil {
			st = &siteState{}
			in.sites[r.Site] = st
		}
		st.rules = append(st.rules, r)
		st.fired = append(st.fired, 0)
	}
	return in, nil
}

// MustNew is New for tests and static configs; it panics on invalid rules.
func MustNew(seed uint64, rules ...Rule) *Injector {
	in, err := New(seed, rules...)
	if err != nil {
		panic(err)
	}
	return in
}

// Parse builds rules from a compact spec: comma-separated
// "site:kind:rate[:arg]" clauses, where arg is an injection-count cap for
// error/panic rules and a duration for delay rules. Example:
//
//	simrun/point:error:0.01,simrun/point:panic:0.005,server/handler:delay:0.1:50ms
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("faultinject: clause %q: want site:kind:rate[:arg]", clause)
		}
		rate, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("faultinject: clause %q: bad rate: %v", clause, err)
		}
		r := Rule{Site: parts[0], Kind: Kind(parts[1]), Rate: rate}
		if len(parts) == 4 {
			switch r.Kind {
			case Delay:
				d, err := time.ParseDuration(parts[3])
				if err != nil {
					return nil, fmt.Errorf("faultinject: clause %q: bad duration: %v", clause, err)
				}
				r.Delay = d
			default:
				n, err := strconv.Atoi(parts[3])
				if err != nil {
					return nil, fmt.Errorf("faultinject: clause %q: bad count: %v", clause, err)
				}
				r.Count = n
			}
		}
		if r.Kind == Delay && r.Delay == 0 {
			return nil, fmt.Errorf("faultinject: clause %q: delay rule needs a duration arg", clause)
		}
		if err := r.validate(); err != nil {
			return nil, fmt.Errorf("faultinject: clause %q: %w", clause, err)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// FromEnv builds an injector from PCCS_FAULTS (a Parse spec) and
// PCCS_FAULT_SEED (default 1). An empty/unset PCCS_FAULTS returns nil —
// a disabled injector.
func FromEnv() (*Injector, error) {
	spec := os.Getenv("PCCS_FAULTS")
	if spec == "" {
		return nil, nil
	}
	seed := uint64(1)
	if s := os.Getenv("PCCS_FAULT_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faultinject: PCCS_FAULT_SEED: %v", err)
		}
		seed = v
	}
	rules, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return New(seed, rules...)
}

// Hit evaluates the rules armed at site, in rule order. It returns an
// injected error, panics with an injected error value, sleeps for a latency
// spike, or — the common case — does nothing and returns nil. A nil
// injector or an unarmed site is a no-op.
func (in *Injector) Hit(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	st := in.sites[site]
	if st == nil {
		in.mu.Unlock()
		return nil
	}
	n := st.hits
	st.hits++
	var fire Rule
	fired := false
	for i, r := range st.rules {
		if r.Count > 0 && st.fired[i] >= r.Count {
			continue
		}
		if !decide(in.seed, site, n, i, r.Rate) {
			continue
		}
		st.fired[i]++
		st.injected++
		fire, fired = r, true
		break
	}
	in.mu.Unlock()
	if !fired {
		return nil
	}
	switch fire.Kind {
	case Error:
		return fmt.Errorf("faultinject: %s hit %d: %w", site, n, ErrInjected)
	case Panic:
		panic(fmt.Errorf("faultinject: %s hit %d: injected panic: %w", site, n, ErrInjected))
	case Delay:
		time.Sleep(fire.Delay)
	}
	return nil
}

// Stats reports per-site hit and injection counts.
func (in *Injector) Stats() map[string]SiteStats {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]SiteStats, len(in.sites))
	for site, st := range in.sites {
		out[site] = SiteStats{Hits: st.hits, Injected: st.injected}
	}
	return out
}

// Injected reports the total number of faults fired across all sites.
func (in *Injector) Injected() uint64 {
	var total uint64
	for _, st := range in.Stats() {
		total += st.Injected
	}
	return total
}

// Sites lists the armed site names, sorted.
func (in *Injector) Sites() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	sites := make([]string, 0, len(in.sites))
	for s := range in.sites {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	return sites
}

// decide is the deterministic coin flip: a hash of (seed, site, hit index,
// rule index) mapped to [0, 1) and compared against the rate.
func decide(seed uint64, site string, hit uint64, rule int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(site))
	x := h.Sum64() ^ seed ^ (hit * 0x9e3779b97f4a7c15) ^ (uint64(rule+1) * 0xbf58476d1ce4e5b9)
	// splitmix64 finalizer for avalanche.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < rate
}
