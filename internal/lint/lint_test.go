package lint

import "testing"

func TestNoDeterminism(t *testing.T) {
	testAnalyzer(t, NoDeterminism, "nodeterminism/simrun", "nodeterminism/sched", "nodeterminism/platform", "nodeterminism/outofscope")
}

func TestCtxFlow(t *testing.T) {
	testAnalyzer(t, CtxFlow, "ctxflow/calib", "ctxflow/cluster", "ctxflow/sched", "ctxflow/server")
}

func TestGuardedBy(t *testing.T) {
	testAnalyzer(t, GuardedBy, "guardedby/relspeeds", "guardedby/platform")
}

func TestDurableWrite(t *testing.T) {
	testAnalyzer(t, DurableWrite, "durablewrite/calib")
}

func TestFaultSite(t *testing.T) {
	testAnalyzer(t, FaultSite, "faultsite/chaos")
}

func TestErrCmp(t *testing.T) {
	testAnalyzer(t, ErrCmp, "errcmp/retry")
}

func TestAllocBudget(t *testing.T) {
	testAnalyzer(t, AllocBudget, "allocbudget/predict", "allocbudget/core")
}

func TestLockOrder(t *testing.T) {
	testAnalyzer(t, LockOrder, "lockorder/cluster")
}

func TestAtomicMix(t *testing.T) {
	testAnalyzer(t, AtomicMix, "atomicmix/stats")
}

func TestLeakCheck(t *testing.T) {
	testAnalyzer(t, LeakCheck, "leakcheck/transport", "leakcheck/worker")
}

func TestWallClock(t *testing.T) {
	testAnalyzer(t, WallClock, "wallclock/cluster", "wallclock/edge")
}
