package lint

import "testing"

func TestNoDeterminism(t *testing.T) {
	testAnalyzer(t, NoDeterminism, "nodeterminism/simrun", "nodeterminism/sched", "nodeterminism/platform", "nodeterminism/outofscope")
}

func TestCtxFlow(t *testing.T) {
	testAnalyzer(t, CtxFlow, "ctxflow/calib", "ctxflow/cluster", "ctxflow/sched", "ctxflow/server")
}

func TestGuardedBy(t *testing.T) {
	testAnalyzer(t, GuardedBy, "guardedby/relspeeds", "guardedby/platform")
}

func TestDurableWrite(t *testing.T) {
	testAnalyzer(t, DurableWrite, "durablewrite/calib")
}

func TestFaultSite(t *testing.T) {
	testAnalyzer(t, FaultSite, "faultsite/chaos")
}

func TestErrCmp(t *testing.T) {
	testAnalyzer(t, ErrCmp, "errcmp/retry")
}
