package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a global lock-acquisition graph across the serving
// packages (server, cluster) and reports two deadlock-shaped hazards:
//
//   - cycles: function f acquires B while holding A, function g acquires
//     A while holding B — the classic ABBA deadlock. Locks are
//     canonicalized to their declaring struct field ("server.Registry.mu"),
//     so the cycle is visible even when the two acquisitions live in
//     different packages — which is exactly why this is a module-wide
//     analyzer (RunModule): no single package sees both edges. Under
//     `go vet -vettool` (one package per process) only per-package
//     subgraphs are checked; `make lint` and TestRepoClean run the whole
//     module.
//   - locks held across blocking calls: an http.Client round-trip,
//     time.Sleep, WaitGroup/Cond Wait, or a channel send while a mutex is
//     held stalls every other goroutine contending for that lock — the
//     hazard shape PR 8's peer transport introduced (replication RPCs
//     adjacent to node state). Channel sends inside a select with a
//     default case are non-blocking and exempt.
//
// Both checks see through one level of static calls: acquisitions and
// blocking behaviour of same-module callees are summarized transitively
// (fixpoint over the call graph), so `a.mu.Lock(); helper()` where helper
// sleeps is still a finding. Lock state within a function is positional,
// like guardedby: a lock is held from its Lock() call to the first later
// Unlock() on the same receiver path, or to function end when released
// only by defer. Locks the analyzer cannot see (callers that document
// "called with mu held") are invisible edges — DESIGN §13 records the
// limit.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "lock-acquisition cycles and locks held across blocking calls in server+cluster",
	RunModule: runLockOrder,
}

// lockScope is the package set whose lock graph is built.
var lockScope = map[string]bool{"server": true, "cluster": true}

// lockAction is one Lock/Unlock event or call site in a function body, in
// source order.
type lockAction struct {
	pos  token.Pos
	fset *token.FileSet

	lock     string      // canonical lock name; "" for call/block actions
	acquire  bool        // Lock/RLock vs Unlock/RUnlock
	deferred bool        // action is inside a defer (release at exit)
	callee   *types.Func // non-nil for call actions
	blocks   string      // non-empty: this action itself blocks (reason)
}

// funcSummary is one function's lock behaviour.
type funcSummary struct {
	fn      *types.Func
	actions []lockAction
	// acquires and blockReason are the transitive summaries filled in by
	// the fixpoint: every lock the function may acquire, and a non-empty
	// reason if it may block.
	acquires    map[string]bool
	blockReason string
}

func runLockOrder(pass *ModulePass) error {
	summaries := collectLockSummaries(pass.Pkgs)
	resolveTransitive(summaries)

	// edges[a][b] records the first site acquiring b while holding a.
	type site struct {
		pos  token.Pos
		fset *token.FileSet
		via  string // "" for direct, else the callee that acquires
	}
	edges := make(map[string]map[string]site)
	addEdge := func(from, to string, s site) {
		if from == to {
			return
		}
		if edges[from] == nil {
			edges[from] = make(map[string]site)
		}
		if _, dup := edges[from][to]; !dup {
			edges[from][to] = s
		}
	}

	var sums []*funcSummary
	for _, s := range summaries {
		sums = append(sums, s)
	}
	sort.Slice(sums, func(i, j int) bool { return sums[i].fn.FullName() < sums[j].fn.FullName() })

	for _, s := range sums {
		held := heldLocks(s.actions)
		for i, act := range s.actions {
			hold := held[i]
			if len(hold) == 0 {
				continue
			}
			switch {
			case act.lock != "" && act.acquire:
				for _, h := range hold {
					addEdge(h, act.lock, site{pos: act.pos, fset: act.fset})
				}
			case act.blocks != "":
				pass.Reportf(act.fset, act.pos, "%s while holding %s stalls every contender for the lock; release before blocking",
					act.blocks, strings.Join(hold, ", "))
			case act.callee != nil:
				callee := summaries[act.callee]
				if callee == nil {
					continue
				}
				if callee.blockReason != "" {
					pass.Reportf(act.fset, act.pos, "call to %s (which may block: %s) while holding %s",
						act.callee.Name(), callee.blockReason, strings.Join(hold, ", "))
				}
				var acq []string
				for l := range callee.acquires {
					acq = append(acq, l)
				}
				sort.Strings(acq)
				for _, l := range acq {
					for _, h := range hold {
						addEdge(h, l, site{pos: act.pos, fset: act.fset, via: act.callee.Name()})
					}
				}
			}
		}
	}

	// A cycle exists iff some edge a→b has a path b→…→a. Report once per
	// distinct cycle (keyed by its sorted node set), at the edge site.
	adj := make(map[string][]string)
	for from, tos := range edges {
		for to := range tos {
			adj[from] = append(adj[from], to)
		}
	}
	for _, tos := range adj {
		sort.Strings(tos)
	}
	reported := make(map[string]bool)
	var froms []string
	for from := range edges {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	for _, from := range froms {
		for _, to := range adj[from] {
			back := lockPath(adj, to, from)
			if back == nil {
				continue
			}
			cycle := append([]string{from}, back...) // from, to, …, from
			key := cycleKey(cycle[:len(cycle)-1])
			if reported[key] {
				continue
			}
			reported[key] = true
			s := edges[from][to]
			via := ""
			if s.via != "" {
				via = fmt.Sprintf(" (via %s)", s.via)
			}
			pass.Reportf(s.fset, s.pos, "lock-order cycle: %s%s — another path acquires these in the opposite order; pick one global order",
				strings.Join(cycle, " -> "), via)
		}
	}
	return nil
}

// collectLockSummaries scans every in-scope package and records, per
// function, the ordered Lock/Unlock/call/blocking actions.
func collectLockSummaries(pkgs []*Package) map[*types.Func]*funcSummary {
	summaries := make(map[*types.Func]*funcSummary)
	for _, pkg := range pkgs {
		if !lockScope[pkgBase(pkg.PkgPath)] {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				s := &funcSummary{fn: obj, acquires: make(map[string]bool)}
				collectLockActions(pkg, fd, s)
				summaries[obj] = s
			}
		}
	}
	return summaries
}

func collectLockActions(pkg *Package, fd *ast.FuncDecl, s *funcSummary) {
	info := pkg.Info
	walkFn := func(n ast.Node, stack []ast.Node) {
		// Only actions in fd's own body (not nested closures): a lock
		// taken inside a goroutine closure is that goroutine's state.
		if innermostFunc(stack) != ast.Node(fd) {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if act, ok := lockActionOf(pkg, info, n, stack); ok {
				s.actions = append(s.actions, act)
			}
		case *ast.SendStmt:
			if sendIsNonBlocking(stack, n) {
				return
			}
			s.actions = append(s.actions, lockAction{
				pos: n.Pos(), fset: pkg.Fset,
				blocks: "channel send",
			})
		}
	}
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		walkFn(n, stack)
		stack = append(stack, n)
		return true
	})
	sort.SliceStable(s.actions, func(i, j int) bool { return s.actions[i].pos < s.actions[j].pos })
}

// lockActionOf classifies one call: a Lock/Unlock on a canonicalizable
// mutex field, a known blocking call, or a same-module call worth
// summarizing.
func lockActionOf(pkg *Package, info *types.Info, call *ast.CallExpr, stack []ast.Node) (lockAction, bool) {
	deferred := false
	for i := len(stack) - 1; i >= 0; i-- {
		if d, ok := stack[i].(*ast.DeferStmt); ok && d.Call == call {
			deferred = true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		if name == "Lock" || name == "RLock" || name == "Unlock" || name == "RUnlock" {
			if lock := canonicalLock(pkg, info, sel.X); lock != "" {
				return lockAction{
					pos: call.Pos(), fset: pkg.Fset,
					lock:     lock,
					acquire:  name == "Lock" || name == "RLock",
					deferred: deferred,
				}, true
			}
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return lockAction{}, false
	}
	if reason := blockingCall(fn); reason != "" {
		return lockAction{pos: call.Pos(), fset: pkg.Fset, blocks: reason}, true
	}
	if fn.Pkg() != nil && lockScope[pkgBase(fn.Pkg().Path())] {
		return lockAction{pos: call.Pos(), fset: pkg.Fset, callee: fn}, true
	}
	return lockAction{}, false
}

// canonicalLock names the mutex by its declaring struct field,
// "pkg.Type.field", so the same lock matches across functions and
// packages. Expressions that do not resolve to a field (local mutexes,
// mutex-typed globals) fall back to "pkg.expr".
func canonicalLock(pkg *Package, info *types.Info, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		// A bare `mu.Lock()` on a local or global: name it by package.
		if id, ok := expr.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && obj.Pkg() != nil {
				return obj.Pkg().Name() + "." + id.Name
			}
		}
		return ""
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return ""
	}
	field := selection.Obj()
	// Recv() is the type the selection started from; the field's owner is
	// what canonicalizes. Walk to the named type that declares it.
	owner := selection.Recv()
	for {
		if p, ok := owner.(*types.Pointer); ok {
			owner = p.Elem()
			continue
		}
		break
	}
	ownerName := "?"
	pkgName := "?"
	if named, ok := owner.(*types.Named); ok {
		ownerName = named.Obj().Name()
		if named.Obj().Pkg() != nil {
			pkgName = named.Obj().Pkg().Name()
		}
	} else if field.Pkg() != nil {
		pkgName = field.Pkg().Name()
	}
	return pkgName + "." + ownerName + "." + field.Name()
}

// blockingCall reports why fn blocks, or "".
func blockingCall(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	pkg := fn.Pkg().Path()
	recv := recvTypeName(fn)
	switch {
	case pkg == "net/http" && recv == "Client":
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "http.Client." + fn.Name() + " network round-trip"
		}
	case pkg == "time" && recv == "" && fn.Name() == "Sleep":
		return "time.Sleep"
	case pkg == "sync" && recv == "WaitGroup" && fn.Name() == "Wait":
		return "sync.WaitGroup.Wait"
	case pkg == "sync" && recv == "Cond" && fn.Name() == "Wait":
		return "sync.Cond.Wait"
	}
	return ""
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// sendIsNonBlocking reports whether send is a select case in a select
// that has a default clause — the standard non-blocking send.
func sendIsNonBlocking(stack []ast.Node, send *ast.SendStmt) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		comm, ok := stack[i].(*ast.CommClause)
		if !ok || comm.Comm != ast.Stmt(send) {
			continue
		}
		if i == 0 {
			return false
		}
		sel, ok := stack[i-1].(*ast.BlockStmt)
		if !ok {
			return false
		}
		for _, c := range sel.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return true
			}
		}
		return false
	}
	return false
}

// heldLocks computes, per action index, the sorted set of locks held just
// before that action, under the positional model: acquired earlier, not
// yet released by a non-deferred Unlock.
func heldLocks(actions []lockAction) [][]string {
	out := make([][]string, len(actions))
	held := make(map[string]int) // lock → nesting count
	for i, act := range actions {
		var hold []string
		for l, n := range held {
			if n > 0 {
				hold = append(hold, l)
			}
		}
		sort.Strings(hold)
		out[i] = hold
		if act.lock == "" {
			continue
		}
		if act.acquire {
			held[act.lock]++
		} else if !act.deferred {
			if held[act.lock] > 0 {
				held[act.lock]--
			}
		}
		// A deferred Unlock releases at function end; for the positional
		// model that means the lock stays held for all later actions.
	}
	return out
}

// resolveTransitive closes acquires/blockReason over static callees.
func resolveTransitive(summaries map[*types.Func]*funcSummary) {
	// Seed with direct behaviour.
	for _, s := range summaries {
		for _, act := range s.actions {
			if act.lock != "" && act.acquire {
				s.acquires[act.lock] = true
			}
			if act.blocks != "" && s.blockReason == "" {
				s.blockReason = act.blocks
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range summaries {
			for _, act := range s.actions {
				if act.callee == nil {
					continue
				}
				callee := summaries[act.callee]
				if callee == nil {
					continue
				}
				for l := range callee.acquires {
					if !s.acquires[l] {
						s.acquires[l] = true
						changed = true
					}
				}
				if s.blockReason == "" && callee.blockReason != "" {
					s.blockReason = callee.blockReason + " (via " + act.callee.Name() + ")"
					changed = true
				}
			}
		}
	}
}

// lockPath finds a shortest path from→to over the sorted adjacency lists
// (BFS, deterministic). The returned sequence starts at from and ends at
// to, inclusive; nil when unreachable.
func lockPath(adj map[string][]string, from, to string) []string {
	type qent struct {
		node string
		path []string
	}
	visited := map[string]bool{}
	queue := []qent{{node: from, path: []string{from}}}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if visited[e.node] {
			continue
		}
		visited[e.node] = true
		for _, n := range adj[e.node] {
			p := append(append([]string{}, e.path...), n)
			if n == to {
				return p
			}
			if !visited[n] {
				queue = append(queue, qent{node: n, path: p})
			}
		}
	}
	return nil
}

func cycleKey(nodes []string) string {
	s := append([]string{}, nodes...)
	sort.Strings(s)
	return strings.Join(s, "|")
}
