package lint

// The fixture harness is a stdlib stand-in for
// golang.org/x/tools/go/analysis/analysistest: each fixture directory
// under testdata/ is one package; `// want` comments on offending lines
// hold regexes (backquoted or double-quoted) that the analyzer's
// diagnostics on that line must match, and any unmatched diagnostic or
// leftover expectation fails the test. Fixture imports — stdlib or this
// module's packages — are resolved through the same `go list -export`
// machinery the real loader uses.

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func testAnalyzer(t *testing.T, a *Analyzer, dirs ...string) {
	t.Helper()
	for _, dir := range dirs {
		dir := dir
		t.Run(strings.ReplaceAll(dir, "/", "_"), func(t *testing.T) {
			runFixture(t, a, dir)
		})
	}
}

func runFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkg := loadFixture(t, dir)
	diags, err := Check([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	want := parseWants(t, pkg)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		rest := want[key][:0]
		for _, re := range want[key] {
			if !matched && re.MatchString(d.Message) {
				matched = true
				continue
			}
			rest = append(rest, re)
		}
		want[key] = rest
		if !matched {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, re := range want[k] {
			t.Errorf("missing diagnostic at %s matching %q", k, re)
		}
	}
}

// loadFixture parses and type-checks one testdata package. The synthetic
// import path keeps the directory's base name so the analyzers' package
// scoping applies to fixtures exactly as it does to the real tree.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	fsDir := filepath.Join("testdata", filepath.FromSlash(dir))
	entries, err := os.ReadDir(fsDir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(fsDir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				t.Fatalf("import path %s: %v", spec.Path.Value, err)
			}
			imports[p] = true
		}
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		var patterns []string
		for p := range imports {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(".", patterns...)
		if err != nil {
			t.Fatalf("resolving fixture imports: %v", err)
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	pkg, err := TypeCheck(fset, path.Join("fix", dir), files, ExportImporter(fset, exports))
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return pkg
}

var (
	wantRe    = regexp.MustCompile(`//\s*want\s+(.+)$`)
	wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

// parseWants collects the `// want` expectations, keyed "file:line".
func parseWants(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	want := make(map[string][]*regexp.Regexp)
	seen := make(map[string]bool)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if seen[name] {
			continue
		}
		seen[name] = true
		fh, err := os.Open(name)
		if err != nil {
			t.Fatalf("opening fixture: %v", err)
		}
		sc := bufio.NewScanner(fh)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", name, line)
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				pat := arg[1]
				if pat == "" {
					pat = arg[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
				}
				want[key] = append(want[key], re)
			}
		}
		fh.Close()
		if err := sc.Err(); err != nil {
			t.Fatalf("scanning fixture: %v", err)
		}
	}
	return want
}
