package lint

import "testing"

// TestRepoClean runs every analyzer over the whole module, the same
// sweep cmd/pccs-lint performs. The production tree must stay clean:
// any new finding either gets fixed or gets an explicit, reasoned
// //pccs:allow-<analyzer> annotation.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := LoadPackages("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := Check(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}
