package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// AllocBudget enforces the zero-allocation discipline on hot-path
// functions (ROADMAP item 3: the uncached predict path must be
// nanosecond-scale, which above all means allocation-free). A function
// opts in by carrying //pccs:hotpath in its doc comment; inside an
// annotated function the analyzer flags every construct that heap-escapes
// in practice, each finding naming the escape reason:
//
//   - calls into fmt, reflect, errors, and log (formatting and reflection
//     allocate for boxing and buffers);
//   - make and new (slices, maps, channels, pointers are heap-backed);
//   - slice and map composite literals, and composite literals whose
//     address is taken (&T{...} escapes when the pointer outlives the
//     frame — the analyzer cannot prove it does not, so hot paths avoid
//     the construct);
//   - append to anything but a caller-provided parameter (growing a
//     locally created backing array is an allocation per growth step;
//     appending into a caller-reused buffer is the sanctioned idiom);
//   - closures that capture enclosing variables (the capture record is
//     heap-allocated; non-capturing function literals are static and
//     allowed);
//   - implicit interface conversions of concrete non-pointer-shaped
//     values in calls, assignments, and returns (boxing copies the value
//     to the heap; pointers, maps, channels, and funcs fit the interface
//     word directly and are exempt).
//
// Allocations on crash paths — arguments of a statement the CFG proves
// terminates in panic/log.Fatal/os.Exit — are exempt: a goroutine that is
// about to die owes no budget. Cold error paths that survive (returning
// fmt.Errorf from input validation) are instead annotated
// //pccs:allow-allocbudget with a reason.
//
// The analysis is intraprocedural (DESIGN §13): calls from a hot function
// to unannotated same-package helpers are not followed, so the annotation
// must cover every function on the measured path. TestPredictPathAllocs
// (internal/server) cross-checks the analyzer against
// testing.AllocsPerRun so the static and runtime views cannot drift
// apart silently.
//
// requiredHotPath pins the annotation to the functions the serving arc
// depends on: removing //pccs:hotpath from one of them is itself a
// finding, so the discipline cannot be turned off by deleting its marker.
var AllocBudget = &Analyzer{
	Name: "allocbudget",
	Doc:  "//pccs:hotpath functions must not contain heap-escaping constructs",
	Run:  runAllocBudget,
}

// hotPathRe matches the opt-in marker in a doc comment.
var hotPathRe = regexp.MustCompile(`^//pccs:hotpath\b`)

// requiredHotPath lists, per package (by base name), the functions that
// must carry //pccs:hotpath: the uncached predict path, the model
// evaluation kernels, and the scheduler's inner-loop cost. An entry is
// "Func" for a package function or "Type.Method" for a method.
var requiredHotPath = map[string][]string{
	"core":   {"Params.Predict", "Params.PredictSlowdown"},
	"server": {"PredictionCache.Get", "Server.predictDemand"},
	"sched":  {"puOption.predictRS"},
	"calib":  {"Matrix.Reduction"},
	"gables": {"Model.Predict", "Model.PredictSlowdown"},
}

func runAllocBudget(pass *Pass) error {
	required := make(map[string]bool)
	for _, name := range requiredHotPath[pkgBase(pass.PkgPath)] {
		required[name] = true
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hot := isHotPath(fn)
			if name := funcKey(fn); required[name] && !hot {
				pass.Reportf(fn.Pos(), "%s is on the required hot-path list but lacks the //pccs:hotpath annotation (the allocation budget is machine-enforced; see allocbudget.go)", name)
			}
			if hot {
				checkHotFunc(pass, fn)
			}
		}
	}
	return nil
}

// isHotPath reports whether fn's doc comment carries //pccs:hotpath.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if hotPathRe.MatchString(c.Text) {
			return true
		}
	}
	return false
}

// funcKey renders fn as "Func" or "Type.Method" for the required table.
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// allocPkgs are the packages whose calls allocate by design.
var allocPkgs = map[string]string{
	"fmt":     "formats through reflection and allocates its result",
	"reflect": "reflection boxes operands",
	"errors":  "constructs a heap error value",
	"log":     "formats and locks a shared logger",
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	crash := crashRanges(fn.Body)
	onCrashPath := func(pos token.Pos) bool {
		for _, r := range crash {
			if pos >= r[0] && pos <= r[1] {
				return true
			}
		}
		return false
	}
	params := paramObjects(pass, fn)
	report := func(pos token.Pos, format string, args ...any) {
		if onCrashPath(pos) {
			return
		}
		pass.Reportf(pos, "hot path (//pccs:hotpath): "+format, args...)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, n, params, report)
		case *ast.CompositeLit:
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates its backing array; reuse a caller-provided buffer")
			case *types.Map:
				report(n.Pos(), "map literal allocates; precompute the map outside the hot path")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(cl.Pos(), "&composite literal may escape to the heap; pass the value or reuse a caller-provided struct")
				}
			}
		case *ast.FuncLit:
			if captured := capturedVars(pass, fn, n); len(captured) > 0 {
				report(n.Pos(), "closure captures %s — the capture record is heap-allocated; pass values explicitly or hoist the closure", strings.Join(captured, ", "))
			}
			return false // the literal's body is not the annotated hot path
		case *ast.AssignStmt:
			checkIfaceAssign(pass, n, report)
		case *ast.ReturnStmt:
			checkIfaceReturn(pass, fn, n, report)
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine stack; hot paths must not spawn")
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr, params map[types.Object]bool, report func(token.Pos, string, ...any)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates; hoist the buffer out of the hot path or reuse a caller-provided one")
				return
			case "new":
				report(call.Pos(), "new allocates; use a value or a caller-provided pointer")
				return
			case "append":
				if len(call.Args) > 0 {
					if target, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && params[pass.Info.Uses[target]] {
						return // appending into a caller-reused buffer
					}
					report(call.Pos(), "append grows a heap-allocated backing array; append into a caller-provided parameter instead")
				}
				return
			}
		}
	}
	fn := calleeFunc(pass.Info, call)
	if fn != nil && fn.Pkg() != nil {
		if reason, bad := allocPkgs[fn.Pkg().Path()]; bad {
			report(call.Pos(), "call to %s.%s %s", fn.Pkg().Name(), fn.Name(), reason)
			return
		}
	}
	checkIfaceArgs(pass, call, report)
}

// checkIfaceArgs flags concrete non-pointer-shaped values passed into
// interface-typed parameters (implicit boxing).
func checkIfaceArgs(pass *Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		reportBoxing(pass, arg, pt, "argument", report)
	}
}

func checkIfaceAssign(pass *Pass, assign *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, rhs := range assign.Rhs {
		lt := pass.Info.TypeOf(assign.Lhs[i])
		if lt == nil {
			continue
		}
		reportBoxing(pass, rhs, lt, "assignment", report)
	}
}

func checkIfaceReturn(pass *Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt, report func(token.Pos, string, ...any)) {
	sig, ok := pass.Info.TypeOf(fn.Name).(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		reportBoxing(pass, res, sig.Results().At(i).Type(), "return", report)
	}
}

// reportBoxing flags expr when storing it into target type boxes a
// concrete value on the heap.
func reportBoxing(pass *Pass, expr ast.Expr, target types.Type, where string, report func(token.Pos, string, ...any)) {
	if !types.IsInterface(target) {
		return
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || types.IsInterface(tv.Type) || pointerShaped(tv.Type) {
		return
	}
	report(expr.Pos(), "interface conversion in %s boxes a %s on the heap; keep the concrete type or pass a pointer", where, tv.Type.String())
}

// pointerShaped reports whether t fits an interface's data word without
// allocation: pointers, maps, channels, funcs, unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

// paramObjects collects fn's parameters, named results, and receiver —
// the caller-provided storage that append may legitimately reuse.
func paramObjects(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	addList(fn.Recv)
	addList(fn.Type.Params)
	addList(fn.Type.Results)
	return out
}

// capturedVars lists the enclosing-function variables lit captures, in
// order of first use (deterministic: ast.Inspect is source-ordered).
// Package-level variables are static state, not captures.
func capturedVars(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		// Captured = declared inside fn (body or signature) but outside lit.
		if pos == token.NoPos || pos < fn.Pos() || pos > fn.End() {
			return true
		}
		if pos >= lit.Pos() && pos <= lit.End() {
			return true
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			out = append(out, v.Name())
		}
		return true
	})
	return out
}

// crashRanges returns the source ranges of statements the CFG proves end
// in panic/log.Fatal/os.Exit — allocations there are exempt.
func crashRanges(body *ast.BlockStmt) [][2]token.Pos {
	g := buildCFG(body)
	var out [][2]token.Pos
	for _, blk := range g.blocks {
		if blk.panics && len(blk.stmts) > 0 {
			last := blk.stmts[len(blk.stmts)-1]
			out = append(out, [2]token.Pos{last.Pos(), last.End()})
		}
	}
	return out
}
