package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FaultSite checks every faultinject hot-path call site: the site string
// passed to (*faultinject.Injector).Hit must be a declared constant, not
// a bare literal or a variable. Chaos rules arm sites by exact string
// match, so a typo'd literal ("simrun/pont") silently arms nothing and
// the chaos test quietly stops testing anything; forcing call sites
// through named constants makes the site vocabulary greppable and a typo
// a compile-time unknown identifier.
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc:  "faultinject sites at Hit call sites must be declared constants, not bare string literals",
	Run:  runFaultSite,
}

func runFaultSite(pass *Pass) error {
	walkWithStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Name() != "Hit" || fn.Pkg() == nil {
			return
		}
		if !strings.HasSuffix(fn.Pkg().Path(), "internal/faultinject") {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || len(call.Args) < 1 {
			return
		}
		arg := ast.Unparen(call.Args[0])
		if _, isLit := arg.(*ast.BasicLit); isLit {
			pass.Reportf(arg.Pos(), "fault site %s is a bare literal: declare a site constant so a typo cannot silently arm nothing", types.ExprString(arg))
			return
		}
		var obj types.Object
		switch a := arg.(type) {
		case *ast.Ident:
			obj = pass.Info.Uses[a]
		case *ast.SelectorExpr:
			obj = pass.Info.Uses[a.Sel]
		}
		if _, isConst := obj.(*types.Const); !isConst {
			pass.Reportf(arg.Pos(), "fault site %s is not a declared constant: Hit must be called with a named site constant", types.ExprString(arg))
		}
	})
	return nil
}
