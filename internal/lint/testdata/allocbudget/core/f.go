// Package core (fixture) exercises the required-hotpath table: the
// functions the serving arc depends on (requiredHotPath in
// allocbudget.go) must keep their //pccs:hotpath annotation — removing
// it is itself a finding, so the allocation budget cannot be turned off
// by deleting its marker.
package core

type Params struct{ F float64 }

// Predict lost its annotation: the budget silently stops being enforced.
func (p Params) Predict(x, y float64) float64 { // want `required hot-path list`
	return p.F * x * y
}

// PredictSlowdown keeps its annotation and a clean body: no findings.
//
//pccs:hotpath fixture: required entry, annotated and clean
func (p Params) PredictSlowdown(x, y float64) float64 {
	return p.F + x + y
}

var (
	_ = Params.Predict
	_ = Params.PredictSlowdown
)
