// Package predict exercises the allocbudget construct checks: functions
// annotated //pccs:hotpath must stay free of heap-escaping constructs;
// unannotated functions are out of scope.
package predict

import "fmt"

type params struct{ a, b float64 }

type point struct{ x, y float64 }

// eval is a clean hot kernel: pure arithmetic allocates nothing.
//
//pccs:hotpath fixture: model evaluation inner loop
func (p params) eval(x float64) float64 {
	v := p.a*x + p.b
	if v < 0 {
		v = -v
	}
	return v
}

// cold shows the same constructs are fine outside the hot path.
func cold(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		out = append(out, 2*x)
	}
	return out
}

//pccs:hotpath fixture: every allocation construct below must be flagged
func hotAllocs(p params, xs []float64) float64 {
	buf := make([]float64, len(xs))   // want `make allocates`
	tmp := []float64{p.a, p.b}        // want `slice literal allocates`
	w := map[string]float64{"a": p.a} // want `map literal allocates`
	pt := &point{x: p.a, y: p.b}      // want `composite literal may escape`
	for i, x := range xs {
		buf[i] = x
	}
	return tmp[0] + w["a"] + pt.x
}

//pccs:hotpath fixture: append discipline — caller buffers only
func hotAppend(dst []float64, xs []float64) []float64 {
	var local []float64
	for _, x := range xs {
		local = append(local, x) // want `append grows a heap-allocated backing array`
		dst = append(dst, x)     // appending into the caller's buffer: fine
	}
	_ = local
	return dst
}

//pccs:hotpath fixture: fmt formats through reflection
func hotFmt(p params) string {
	return fmt.Sprintf("%f", p.a) // want `call to fmt.Sprintf`
}

//pccs:hotpath fixture: captures box; crash paths are exempt
func hotClosure(p params, xs []float64) float64 {
	sum := 0.0
	add := func(x float64) { sum += x } // want `closure captures sum`
	for _, x := range xs {
		add(x)
	}
	if len(xs) == 0 {
		panic(fmt.Sprintf("empty input for %f", p.a)) // crash path: exempt
	}
	return sum
}

//pccs:hotpath fixture: implicit interface conversions box concrete values
func hotBox(p params, sink func(any)) any {
	sink(p)  // want `interface conversion in argument boxes`
	sink(&p) // a pointer fits the interface word: fine
	var v any
	v = p.a // want `interface conversion in assignment boxes`
	_ = v
	return p // want `interface conversion in return boxes`
}

// hotAllowed demonstrates the sanctioned escape hatch: a reasoned allow
// on a cold validation line inside a hot function.
//
//pccs:hotpath fixture: allow-tag interplay
func hotAllowed(p params) (float64, error) {
	if p.b == 0 {
		//pccs:allow-allocbudget fixture: cold validation path, not the per-call loop
		return 0, fmt.Errorf("b must be non-zero")
	}
	return p.a / p.b, nil
}

var _ = []any{params.eval, cold, hotAllocs, hotAppend, hotFmt, hotClosure, hotBox, hotAllowed}
