// Package server is outside the simulation-core ctx scope (unused-ctx
// entry points are not flagged here) but inside the request-path scope:
// minting context.Background() while holding a ctx is still flagged.
package server

import "context"

func Handler(ctx context.Context) error {
	c := context.TODO() // want `context.TODO\(\) inside a function that holds ctx`
	_ = ctx
	return c.Err()
}

func DetachedJob() context.Context {
	return context.Background() // no ctx in scope: deliberate detachment is fine
}
