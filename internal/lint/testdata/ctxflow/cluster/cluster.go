package cluster

import "context"

// The cluster package is in ctxScope: its exported entry points (Sweep,
// ConstructPU, ExecuteLease, ProbeOnce, Publish) block on peer RPCs and
// simulation leases, so an ignored ctx would strand a coordinator on a dead
// node forever instead of honouring the caller's deadline.

func SweepLike(ctx context.Context, n int) int { // want `SweepLike accepts ctx but never uses it`
	return n * 2
}

func LeaseLike(ctx context.Context) error {
	return ctx.Err()
}

func DetachedProbe(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sub, cancel := context.WithCancel(context.Background()) // want `context.Background\(\) inside a function that holds ctx`
	defer cancel()
	return sub.Err()
}

func NilDefault(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background() // the nil-default idiom is allowed
	}
	return ctx.Err()
}

func helper(ctx context.Context, n int) int { // unexported: not an entry point
	return n
}

var _ = helper
