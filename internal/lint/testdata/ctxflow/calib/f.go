package calib

import "context"

func Ignored(ctx context.Context, n int) int { // want `Ignored accepts ctx but never uses it`
	return n * 2
}

func Used(ctx context.Context) error {
	return ctx.Err()
}

func Detached(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sub, cancel := context.WithCancel(context.Background()) // want `context.Background\(\) inside a function that holds ctx`
	defer cancel()
	return sub.Err()
}

func NilDefault(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background() // the nil-default idiom is allowed
	}
	return ctx.Err()
}

func unexported(ctx context.Context, n int) int { // unexported: not an entry point
	return n
}

var _ = unexported
