// Fixture: internal/sched's exported entry points (Solve, WorstCaseBounds,
// Validate) are long-running searches — a ctx parameter there is a
// cancellation promise, exactly like the simulation drivers in ctxScope.
package sched

import "context"

type schedule struct{ placed int }

func Solve(ctx context.Context, n int) (*schedule, error) { // want `Solve accepts ctx but never uses it`
	return &schedule{placed: n}, nil
}

func SolvePolling(ctx context.Context, n int) (*schedule, error) {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return &schedule{placed: n}, nil
}

func Validate(ctx context.Context, s *schedule) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	replay, cancel := context.WithCancel(context.Background()) // want `context.Background\(\) inside a function that holds ctx`
	defer cancel()
	return replay.Err()
}

func BoundsNilDefault(ctx context.Context, s *schedule) error {
	if ctx == nil {
		ctx = context.Background() // the nil-default idiom is allowed
	}
	return ctx.Err()
}

func beamStep(ctx context.Context, s *schedule) int { // unexported: not an entry point
	return s.placed
}

var _ = beamStep
