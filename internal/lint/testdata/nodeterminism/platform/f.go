// Fixture: the platform backends joined CoreScope when the substrate seam
// landed — a wrapper backend's contention stage runs inside every
// simulation, so a wall-clock read, a global RNG draw, or map-ordered
// float accumulation there corrupts bit-identity exactly like it would in
// the engine itself.
package platform

import (
	"math/rand"
	"sort"
	"time"
)

type kernel struct {
	pu     int
	demand float64
}

func linkStageTimed(pl map[int]kernel) float64 {
	start := time.Now() // want `time.Now in the simulation core`
	load := 0.0
	for _, k := range pl {
		load += k.demand
	}
	_ = time.Since(start) // want `time.Since in the simulation core`
	return load
}

func jitterHop(base float64) float64 {
	return base * (1 + rand.Float64()/100) // want `draws from the process-global generator`
}

func seededNoise(seed int64, base float64) float64 {
	r := rand.New(rand.NewSource(seed)) // seeded per-backend generator is the idiom
	return base * (1 + r.Float64()/100)
}

// Per-die load summed in map order: float addition is not associative, so
// the throttle factor would change run to run.
func dieLoads(pl map[int]kernel) []float64 {
	var loads []float64
	for _, k := range pl { // want `map iteration feeds loads in random order`
		loads = append(loads, k.demand)
	}
	return loads
}

func dieLoadsSorted(pl map[int]kernel) []float64 {
	var pus []int
	for pu := range pl { // accumulate-then-sort keeps accumulation canonical
		pus = append(pus, pu)
	}
	sort.Ints(pus)
	loads := make([]float64, 0, len(pus))
	for _, pu := range pus {
		loads = append(loads, pl[pu].demand)
	}
	return loads
}

var _ = []any{linkStageTimed, jitterHop, seededNoise, dieLoads, dieLoadsSorted}
