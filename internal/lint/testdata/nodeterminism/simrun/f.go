package simrun

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `time.Now in the simulation core`
	return time.Since(start) // want `time.Since in the simulation core`
}

func globalRand() float64 {
	return rand.Float64() // want `draws from the process-global generator`
}

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // constructors are fine
	return r.Float64()                  // method on a seeded *rand.Rand is the idiom
}

//pccs:allow-nondeterminism fixture: doc-comment escape hatch covers the whole function
func jitter() float64 {
	return rand.Float64()
}

func inlineAllow() float64 {
	return rand.Float64() //pccs:allow-nondeterminism fixture: inline escape hatch
}

func mapOrder(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration feeds out in random order`
		out = append(out, k)
	}
	return out
}

func mapOrderSorted(m map[string]int) []string {
	var out []string
	for k := range m { // accumulate-then-sort is deterministic
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func mapReduce(m map[string]int) int {
	total := 0
	for _, v := range m { // order-insensitive reduction: fine
		total += v
	}
	return total
}

var _ = []any{wallClock, globalRand, seeded, jitter, inlineAllow, mapOrder, mapOrderSorted, mapReduce}
