// Package outofscope is not a simulation-core package, so wall-clock
// reads here are legitimate (latency metrics, timestamps) and must not
// be flagged.
package outofscope

import "time"

func uptime(start time.Time) time.Duration {
	return time.Since(start)
}

var _ = uptime
