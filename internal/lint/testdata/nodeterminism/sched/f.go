// Fixture: the scheduler joined CoreScope when internal/sched landed — a
// schedule must be a pure function of (models, items, seed), so the same
// determinism rules that guard the simulation core apply here.
package sched

import (
	"math/rand"
	"sort"
	"time"
)

type assignment struct {
	item string
	pu   string
}

func searchDeadline() time.Duration {
	start := time.Now()      // want `time.Now in the simulation core`
	return time.Since(start) // want `time.Since in the simulation core`
}

func tieBreak(a, b assignment) assignment {
	if rand.Intn(2) == 0 { // want `draws from the process-global generator`
		return a
	}
	return b
}

func seededRestart(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // seeded per-solve generator is the idiom
	return r.Float64()
}

func launchOrder(byPU map[string][]assignment) []assignment {
	var order []assignment
	for _, group := range byPU { // want `map iteration feeds order in random order`
		order = append(order, group...)
	}
	return order
}

func launchOrderSorted(byPU map[string][]assignment) []assignment {
	var order []assignment
	for _, group := range byPU { // accumulate-then-sort keeps the schedule canonical
		order = append(order, group...)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].item < order[j].item })
	return order
}

func totalPlaced(byPU map[string][]assignment) int {
	n := 0
	for _, group := range byPU { // order-insensitive reduction: fine
		n += len(group)
	}
	return n
}

var _ = []any{searchDeadline, tieBreak, seededRestart, launchOrder, launchOrderSorted, totalPlaced}
