package calib

import (
	"os"
	"path/filepath"
)

func saveBad(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile is not crash-safe`
}

func installBad(dir string, data []byte) error {
	tmp := filepath.Join(dir, "model.tmp")
	f, err := os.Create(tmp) // want `file created in installBad is closed but never Synced`
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "model.json")) // want `os.Rename without an fsync in installBad`
}

func installGood(dir string, data []byte) error {
	tmp := filepath.Join(dir, "model.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "model.json"))
}

var _ = []any{saveBad, installBad, installGood}
