package chaos

import "github.com/processorcentricmodel/pccs/internal/faultinject"

const sitePoint = "chaos/point"

func constant(in *faultinject.Injector) error {
	return in.Hit(sitePoint)
}

func literal(in *faultinject.Injector) error {
	return in.Hit("chaos/literal") // want `fault site "chaos/literal" is a bare literal`
}

func variable(in *faultinject.Injector, site string) error {
	return in.Hit(site) // want `fault site site is not a declared constant`
}

var _ = []any{constant, literal, variable}
