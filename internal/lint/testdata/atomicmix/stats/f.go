// Package stats (fixture) exercises atomicmix: a field that is the
// operand of sync/atomic calls anywhere must be accessed atomically
// everywhere.
package stats

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	cold   int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.misses, 1)
}

func (c *counters) snapshot() (int64, int64) {
	h := atomic.LoadInt64(&c.hits)
	m := c.misses // want `plain read of c.misses`
	return h, m
}

func (c *counters) reset() {
	c.misses = 0 // want `plain write of c.misses`
	atomic.StoreInt64(&c.hits, 0)
}

// coldBump touches a field no one accesses atomically: no finding.
func (c *counters) coldBump() {
	c.cold++
}

// newCounters pokes fields before the value is published — the
// sanctioned exception shape.
//
//pccs:allow-atomicmix fixture: pre-publication init, the value is not shared yet
func newCounters() *counters {
	c := &counters{}
	c.misses = 0
	return c
}

var _ = []any{(*counters).bump, (*counters).snapshot, (*counters).reset, (*counters).coldBump, newCounters}
