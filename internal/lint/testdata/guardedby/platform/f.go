// Fixture: the platform registry keeps its factory table behind a mutex —
// init-time Register and request-time Get race otherwise. Mirrors the
// `// guarded by mu` idiom the guardedby analyzer enforces on the real
// internal/platform package.
package platform

import "sync"

type factory func() int

type registry struct {
	mu        sync.Mutex
	factories map[string]factory // guarded by mu
	frozen    bool               // guarded by mu
}

func (r *registry) register(name string, f factory) {
	r.factories[name] = f // want `write of r\.factories without holding r\.mu`
}

func (r *registry) registerLocked(name string, f factory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factories[name] = f
}

func (r *registry) lookup(name string) (factory, bool) {
	f, ok := r.factories[name] // want `read of r\.factories without holding r\.mu`
	return f, ok
}

func (r *registry) lookupLocked(name string) (factory, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.factories[name]
	return f, ok
}

// A lock taken inside a spawned goroutine does not cover the enclosing
// function's bare write.
func (r *registry) freezeAsync() {
	go func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		_ = len(r.factories)
	}()
	r.frozen = true // want `write of r\.frozen without holding r\.mu`
}

var _ = []any{
	(*registry).register, (*registry).registerLocked,
	(*registry).lookup, (*registry).lookupLocked, (*registry).freezeAsync,
}
