// Package relspeeds reproduces the PR-3 RelativeSpeeds data race: the
// outer function wrote to a shared map while the goroutine closures it
// spawned locked the mutex around their own writes. The lock inside a
// closure must not excuse the bare write in the enclosing function.
package relspeeds

import "sync"

type tracker struct {
	mu    sync.Mutex
	alone map[int]float64 // guarded by mu
	n     int             // guarded by mu
}

func (t *tracker) fillRace(pus []int) {
	t.alone[0] = 1 // want `write of t.alone without holding t.mu`
	var wg sync.WaitGroup
	for _, pu := range pus {
		pu := pu
		wg.Add(1)
		go func() {
			defer wg.Done()
			t.mu.Lock()
			t.alone[pu] = float64(pu) // locked inside the closure: fine
			t.mu.Unlock()
		}()
	}
	wg.Wait()
}

func (t *tracker) fillSafe(pus []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, pu := range pus {
		t.alone[pu] = float64(pu)
	}
	t.n = len(pus)
}

func (t *tracker) readRace() int {
	return t.n // want `read of t.n without holding t.mu`
}

func (t *tracker) writeUnderRLock() {
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
}

type stats struct {
	mu   sync.RWMutex
	hits int // guarded by mu
}

func (s *stats) get() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits // RLock is enough for a read
}

func (s *stats) bumpRLocked() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.hits++ // want `write of s.hits without holding s.mu`
}

//pccs:allow-guardedby fixture: constructor runs before the value is shared
func newTracker() *tracker {
	t := &tracker{alone: make(map[int]float64)}
	t.alone[0] = 0
	return t
}

var _ = []any{(*tracker).fillRace, (*tracker).fillSafe, (*tracker).readRace, (*tracker).writeUnderRLock, (*stats).get, (*stats).bumpRLocked, newTracker}
