// Package cluster (fixture) exercises lockorder: ABBA acquisition
// cycles, locks held across blocking calls (HTTP round-trips, sleeps,
// channel sends), the select-with-default exemption, and transitive
// blocking through a same-module helper.
package cluster

import (
	"net/http"
	"sync"
	"time"
)

type node struct {
	mu     sync.Mutex
	peers  *peerSet
	queue  chan int
	client *http.Client
}

type peerSet struct {
	mu    sync.Mutex
	addrs []string
}

// lockAB acquires node.mu then peerSet.mu.
func (n *node) lockAB() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers.mu.Lock() // want `lock-order cycle`
	n.peers.addrs = append(n.peers.addrs, "x")
	n.peers.mu.Unlock()
}

// lockBA acquires peerSet.mu then node.mu — the opposite order. The
// cycle is reported once, at the lexicographically-first edge (lockAB).
func (p *peerSet) lockBA(n *node) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n.mu.Lock()
	n.mu.Unlock()
}

// holdAcrossRPC does a network round-trip with the lock held.
func (n *node) holdAcrossRPC(req *http.Request) {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp, err := n.client.Do(req) // want `network round-trip while holding cluster.node.mu`
	if err == nil {
		resp.Body.Close()
	}
}

// sleepUnderLock stalls every contender for a tick.
func (n *node) sleepUnderLock() {
	n.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding cluster.node.mu`
	n.mu.Unlock()
}

// sendUnderLock can block forever on a full queue.
func (n *node) sendUnderLock(v int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.queue <- v // want `channel send while holding cluster.node.mu`
}

// sendNonBlocking uses select-with-default: exempt.
func (n *node) sendNonBlocking(v int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.queue <- v:
	default:
	}
}

// releaseFirst unlocks before the round-trip: clean.
func (n *node) releaseFirst(req *http.Request) {
	n.mu.Lock()
	peers := n.peers
	n.mu.Unlock()
	_ = peers
	resp, err := n.client.Do(req)
	if err == nil {
		resp.Body.Close()
	}
}

// helperSleeps blocks; viaHelper calls it under the lock — the summary
// fixpoint sees through the call.
func helperSleeps() {
	time.Sleep(time.Millisecond)
}

func (n *node) viaHelper() {
	n.mu.Lock()
	helperSleeps() // want `which may block: time.Sleep`
	n.mu.Unlock()
}

var _ = []any{(*node).lockAB, (*peerSet).lockBA, (*node).holdAcrossRPC, (*node).sleepUnderLock, (*node).sendUnderLock, (*node).sendNonBlocking, (*node).releaseFirst, (*node).viaHelper}
