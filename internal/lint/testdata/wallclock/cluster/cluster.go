// Package cluster is a wallclock fixture: its base name puts it in scope,
// so every direct wall-clock read or real timer must be flagged unless it
// carries an annotated escape.
package cluster

import "time"

// Clock is a stand-in for the injected seam; calls through it are fine.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

func readsWallClock() time.Time {
	return time.Now() // want `time\.Now bypasses the injected clock`
}

func sleepsForReal() {
	time.Sleep(time.Second) // want `time\.Sleep bypasses the injected clock`
}

func armsRealTimers(d time.Duration) {
	t := time.NewTimer(d) // want `time\.NewTimer bypasses the injected clock`
	defer t.Stop()
	tick := time.NewTicker(d) // want `time\.NewTicker bypasses the injected clock`
	defer tick.Stop()
	<-time.After(d)             // want `time\.After bypasses the injected clock`
	_ = time.Since(time.Time{}) // want `time\.Since bypasses the injected clock`
}

// throughSeam routes everything through the injected clock — nothing to
// flag, including duration arithmetic and fixed-date construction.
func throughSeam(clk Clock, d time.Duration) time.Duration {
	clk.Sleep(2 * d)
	epoch := time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)
	now := clk.Now()
	if now.After(epoch) && epoch.Before(now) { // Time methods, not time.After
		d++
	}
	return now.Round(time.Millisecond).Sub(epoch).Truncate(time.Second) + d
}

// annotatedEdge is a deliberate operator-facing exception.
func annotatedEdge() time.Time {
	//pccs:allow-wallclock operator-facing timestamp, nothing branches on it
	return time.Now()
}
