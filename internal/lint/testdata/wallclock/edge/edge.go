// Package edge is the wallclock out-of-scope fixture: its base name is in
// neither cluster nor server, so identical wall-clock use draws no
// diagnostics — the analyzer polices the simulated distribution layer, not
// the whole tree.
package edge

import "time"

func fineHere() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	t := time.NewTimer(time.Second)
	defer t.Stop()
	return time.Since(start)
}
