// Package worker (fixture) exercises leakcheck's goroutine-termination
// heuristic: a spawned infinite loop needs a way out — return, break,
// a channel receive, or a select.
package worker

import (
	"context"
	"time"
)

type pool struct {
	jobs chan int
}

// spin never terminates: no receive, select, return, or break.
func (p *pool) spin() {
	go func() { // want `no termination path`
		n := 0
		for {
			n++
			time.Sleep(time.Millisecond)
		}
	}()
}

// drain terminates when the channel closes.
func (p *pool) drain() {
	go func() {
		for j := range p.jobs {
			_ = j
		}
	}()
}

// ticks terminates through ctx.Done in a select.
func (p *pool) ticks(ctx context.Context) {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
		}
	}()
}

// spinNamed: named same-package goroutine bodies are resolved too.
func (p *pool) spinNamed() {
	go p.loopForever() // want `no termination path`
}

func (p *pool) loopForever() {
	for {
		time.Sleep(time.Millisecond)
	}
}

// bounded loops on a condition: out of the heuristic's scope.
func (p *pool) bounded(stop *bool) {
	go func() {
		for !*stop {
			time.Sleep(time.Millisecond)
		}
	}()
}

var _ = []any{(*pool).spin, (*pool).drain, (*pool).ticks, (*pool).spinNamed, (*pool).bounded}
