// Package transport (fixture) exercises leakcheck's response-body
// dataflow: every path from a successful request must close the body;
// error paths (response is nil per the http.Client contract) and
// ownership hand-offs are excused.
package transport

import (
	"io"
	"net/http"
)

type client struct{ c *http.Client }

// good closes on the only surviving path, via defer.
func (t *client) good(url string) ([]byte, error) {
	resp, err := t.c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// leakOnEarlyReturn forgets the body on the status-check branch.
func (t *client) leakOnEarlyReturn(url string) ([]byte, error) {
	resp, err := t.c.Get(url) // want `may not be closed on every path`
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, io.EOF // leaks: early return without Close
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return data, err
}

// closedEverywhere closes on both branches: clean.
func (t *client) closedEverywhere(url string) (int, error) {
	resp, err := t.c.Get(url)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return 0, io.EOF
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// handoff transfers ownership to the callee, which closes.
func (t *client) handoff(url string) error {
	resp, err := t.c.Get(url)
	if err != nil {
		return err
	}
	return drain(resp)
}

func drain(resp *http.Response) error {
	defer resp.Body.Close()
	_, err := io.Copy(io.Discard, resp.Body)
	return err
}

// neverClosed has no Close at all.
func (t *client) neverClosed(url string) (int, error) {
	resp, err := t.c.Get(url) // want `may not be closed on every path`
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

var _ = []any{(*client).good, (*client).leakOnEarlyReturn, (*client).closedEverywhere, (*client).handoff, (*client).neverClosed}
