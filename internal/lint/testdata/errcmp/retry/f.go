package retry

import (
	"errors"
	"io"
)

var errBudget = errors.New("retry budget exhausted")

func direct(err error) bool {
	return err == errBudget // want `direct == comparison against sentinel errBudget`
}

func directNeq(err error) bool {
	if err != io.EOF { // want `direct != comparison against sentinel io.EOF`
		return true
	}
	return false
}

func wrapped(err error) bool {
	return errors.Is(err, errBudget)
}

func nilCheck(err error) bool {
	return err == nil // nil checks are idiomatic, not sentinel comparisons
}

func localCmp(err error) bool {
	other := errors.New("local")
	return err == other // locals are not package-level sentinels
}

var _ = []any{direct, directNeq, wrapped, nilCheck, localCmp}
