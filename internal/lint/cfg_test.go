package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func cfgReachable(from, to *cfgBlock) bool {
	seen := make(map[*cfgBlock]bool)
	queue := []*cfgBlock{from}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if b == to {
			return true
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		for _, e := range b.succs {
			queue = append(queue, e.to)
		}
	}
	return false
}

func TestCFGLinearReachesExit(t *testing.T) {
	g := buildCFG(parseBody(t, "a := 1\n_ = a\nreturn"))
	if !cfgReachable(g.entry, g.exit) {
		t.Fatal("exit not reachable in straight-line body")
	}
	if len(g.entry.preds) != 0 {
		t.Fatal("entry must have no predecessors")
	}
}

func TestCFGIfElseDiamond(t *testing.T) {
	g := buildCFG(parseBody(t, "a := 1\nif a > 0 {\n a = 2\n} else {\n a = 3\n}\n_ = a"))
	// The block holding the condition must have one true and one false
	// edge carrying the same condition expression.
	var condEdges []*cfgEdge
	for _, blk := range g.blocks {
		for _, e := range blk.succs {
			if e.cond != nil {
				condEdges = append(condEdges, e)
			}
		}
	}
	if len(condEdges) != 2 {
		t.Fatalf("want 2 condition edges, got %d", len(condEdges))
	}
	if condEdges[0].cond != condEdges[1].cond {
		t.Fatal("both edges must carry the same condition expression")
	}
	if condEdges[0].condVal == condEdges[1].condVal {
		t.Fatal("edges must carry opposite condition values")
	}
	if !cfgReachable(g.entry, g.exit) {
		t.Fatal("exit must be reachable through the diamond")
	}
}

func TestCFGInfiniteLoopHasNoExitPath(t *testing.T) {
	g := buildCFG(parseBody(t, "for {\n_ = 1\n}"))
	if cfgReachable(g.entry, g.exit) {
		t.Fatal("infinite for loop must not reach exit")
	}
}

func TestCFGLoopBreakReachesExit(t *testing.T) {
	g := buildCFG(parseBody(t, "for {\nbreak\n}"))
	if !cfgReachable(g.entry, g.exit) {
		t.Fatal("break must restore the path to exit")
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	g := buildCFG(parseBody(t, "for i := 0; i < 3; i++ {\n_ = i\n}"))
	if !cfgReachable(g.entry, g.exit) {
		t.Fatal("bounded loop must reach exit")
	}
	// Some block must have a back edge (successor with a lower index that
	// can reach it again) — the loop head.
	hasCycle := false
	for _, blk := range g.blocks {
		for _, e := range blk.succs {
			if e.to != blk && cfgReachable(e.to, blk) {
				hasCycle = true
			}
		}
	}
	if !hasCycle {
		t.Fatal("loop must produce a cycle in the graph")
	}
}

func TestCFGDeferCollected(t *testing.T) {
	g := buildCFG(parseBody(t, "defer println(1)\ndefer println(2)\nreturn"))
	if len(g.defers) != 2 {
		t.Fatalf("want 2 deferred calls, got %d", len(g.defers))
	}
}

func TestCFGPanicTerminatesBlock(t *testing.T) {
	g := buildCFG(parseBody(t, "a := 1\nif a > 0 {\npanic(\"boom\")\n}\n_ = a"))
	found := false
	for _, blk := range g.blocks {
		if blk.panics {
			found = true
			if len(blk.succs) != 1 || blk.succs[0].to != g.exit {
				t.Fatal("panicking block must flow only to exit")
			}
		}
	}
	if !found {
		t.Fatal("no block marked panicking")
	}
}

func TestCFGSwitchAllCasesReachExit(t *testing.T) {
	g := buildCFG(parseBody(t, "switch x := 1; x {\ncase 1:\n_ = x\ncase 2:\nreturn\ndefault:\n_ = x\n}"))
	if !cfgReachable(g.entry, g.exit) {
		t.Fatal("switch must reach exit")
	}
}

func TestCFGSelectBranches(t *testing.T) {
	g := buildCFG(parseBody(t, "ch := make(chan int)\nselect {\ncase v := <-ch:\n_ = v\ndefault:\n}"))
	if !cfgReachable(g.entry, g.exit) {
		t.Fatal("select with default must reach exit")
	}
}

// TestForwardMayGenKill drives the solver with a toy gen/kill problem:
// gen() sets the fact, kill() clears it; the fact at exit must reflect
// the union over paths.
func TestForwardMayGenKill(t *testing.T) {
	run := func(body string) bool {
		g := buildCFG(parseBody(t, body))
		const fact = "open"
		transfer := func(blk *cfgBlock, in cfgFacts) cfgFacts {
			for _, s := range blk.stmts {
				es, ok := s.(*ast.ExprStmt)
				if !ok {
					continue
				}
				call, ok := es.X.(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok {
					continue
				}
				switch id.Name {
				case "gen":
					in[fact] = true
				case "kill":
					delete(in, fact)
				}
			}
			return in
		}
		exit := g.forwardMay(transfer, nil)[g.exit]
		return exit[fact]
	}
	if run("gen()\nkill()") {
		t.Fatal("kill on the only path must clear the fact")
	}
	if !run("gen()\nif c {\nkill()\n}") {
		t.Fatal("kill on one of two paths must keep the may-fact")
	}
	if run("gen()\nif c {\nkill()\n} else {\nkill()\n}") {
		t.Fatal("kill on every path must clear the fact")
	}
	if !run("if c {\ngen()\n}") {
		t.Fatal("gen on one path must set the may-fact")
	}
}

// TestForwardMayEdgeFilter checks condition-sensitive kills: the filter
// drops the fact on the true edge of `if dead { … }`.
func TestForwardMayEdgeFilter(t *testing.T) {
	g := buildCFG(parseBody(t, "gen()\nif dead {\nreturn\n}\nuse()"))
	const fact = "open"
	transfer := func(blk *cfgBlock, in cfgFacts) cfgFacts {
		for _, s := range blk.stmts {
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case "gen":
							in[fact] = true
						case "kill":
							delete(in, fact)
						}
					}
				}
			}
		}
		return in
	}
	filter := func(e *cfgEdge, out cfgFacts) cfgFacts {
		if e.cond == nil || !e.condVal {
			return out
		}
		if id, ok := e.cond.(*ast.Ident); ok && strings.HasPrefix(id.Name, "dead") {
			out = out.clone()
			delete(out, fact)
		}
		return out
	}
	exit := g.forwardMay(transfer, filter)[g.exit]
	if !exit[fact] {
		t.Fatal("fact must survive along the fall-through edge")
	}
	// With the true edge filtered and the else branch killing explicitly,
	// no path carries the fact to exit.
	g2 := buildCFG(parseBody(t, "gen()\nif dead {\nuse()\n} else {\nkill()\n}"))
	exit2 := g2.forwardMay(transfer, filter)[g2.exit]
	if exit2[fact] {
		t.Fatal("filtered true-edge plus killing else path must leave exit clean")
	}
}
