package lint

import (
	"go/ast"
)

// WallClock forbids direct wall-clock use in the cluster and server
// packages. Those packages run under deterministic simulation (internal/dst
// and the virtual-time unit tests): every timer, timeout, backoff, and
// timestamp must come through the injected clock.Clock seam, because a
// single direct time.Now or time.Sleep reads real time inside a simulation
// whose clock is standing still — timeouts that never fire under the
// virtual clock, or (worse) fire at wall-time instants the schedule replay
// cannot reproduce. The simulation core has its own, stricter analyzer
// (nodeterminism); this one covers the distribution layer, where wall time
// is legitimate only at the operator-facing edge.
//
// Flagged: calls to time.Now, time.Since, time.Until, time.Sleep,
// time.After, time.AfterFunc, time.NewTimer, time.NewTicker, and time.Tick
// in non-test files of packages whose base name is cluster or server.
// time.Duration arithmetic, time.Date, parsing, and formatting are fine —
// they compute with time, they don't read or wait on it.
//
// Deliberate edge-of-system exceptions (an operator-facing health
// timestamp, a real-time watchdog around the simulator itself) carry
// //pccs:allow-wallclock with the reason.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid direct wall-clock reads and timers in cluster/server: use the injected clock.Clock seam",
	Run:  runWallClock,
}

// wallClockScope lists the package base names that must route time through
// the injected clock. Distinct from CoreScope: the simulation core bans
// wall time outright (nodeterminism), while these packages may touch it
// behind an annotated seam.
var wallClockScope = map[string]bool{
	"cluster": true,
	"server":  true,
}

// wallClockFuncs are the package-level time functions that read the real
// clock or arm real timers.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
	"Tick": true,
}

func runWallClock(pass *Pass) error {
	if !wallClockScope[pkgBase(pass.PkgPath)] {
		return nil
	}
	walkWithStack(pass.Files, func(n ast.Node, _ []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || !wallClockFuncs[fn.Name()] || !isPkgFunc(fn, "time", fn.Name()) {
			// Methods named After/Sub/etc. on time.Time compare instants the
			// caller already holds — only package-level reads are the leak.
			return
		}
		pass.Reportf(call.Pos(), "time.%s bypasses the injected clock: route through clock.Clock so the deterministic simulation controls it", fn.Name())
	})
	return nil
}
