package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// GuardedBy enforces `// guarded by <mutex>` annotations on struct
// fields: every read or write of an annotated field must happen in a
// function that locks that mutex on the same receiver before the access
// (writes require .Lock(); reads accept .RLock() too). Lock calls are
// matched within the innermost enclosing function — a lock taken inside
// one goroutine closure does not excuse a bare access in another, which
// is exactly the RelativeSpeeds map race this analyzer exists to catch
// (an unlocked alone[pu]=0 write concurrent with locked writes in probe
// goroutines, fixed after PR 3).
//
// Constructors and helpers that legitimately touch fields without the
// lock (pre-publication initialization, callers that document "called
// with mu held") carry //pccs:allow-guardedby in their doc comment.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated `// guarded by <mutex>` must only be accessed under that mutex",
	Run:  runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardInfo maps an annotated field object to its guarding mutex field
// name (on the same struct).
type guardInfo map[types.Object]string

func runGuardedBy(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}

	// lockCall records one <base>.<mutex>.Lock()/RLock() call: where it
	// is, which function body it belongs to, and what it locks.
	type lockCall struct {
		fn    ast.Node // innermost enclosing function
		pos   token.Pos
		base  string // canonical receiver expression, e.g. "r" or "c.inner"
		mutex string
		read  bool // RLock
	}
	var locks []lockCall
	walkWithStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return
		}
		mutexSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return
		}
		locks = append(locks, lockCall{
			fn:    innermostFunc(stack),
			pos:   call.Pos(),
			base:  types.ExprString(ast.Unparen(mutexSel.X)),
			mutex: mutexSel.Sel.Name,
			read:  sel.Sel.Name == "RLock",
		})
	})

	held := func(fn ast.Node, pos token.Pos, base, mutex string, write bool) bool {
		for _, l := range locks {
			if l.fn == fn && l.pos < pos && l.base == base && l.mutex == mutex {
				if write && l.read {
					continue
				}
				return true
			}
		}
		return false
	}

	walkWithStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		selection := pass.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return
		}
		mutex, guarded := guards[selection.Obj()]
		if !guarded {
			return
		}
		base := types.ExprString(ast.Unparen(sel.X))
		write := isWriteAccess(sel, stack)
		if held(innermostFunc(stack), sel.Pos(), base, mutex, write) {
			return
		}
		kind := "read"
		if write {
			kind = "write"
		}
		pass.Reportf(sel.Pos(), "%s of %s.%s without holding %s.%s (field is `guarded by %s`)",
			kind, base, sel.Sel.Name, base, mutex, mutex)
	})
	return nil
}

// collectGuards finds `// guarded by <name>` annotations on struct fields
// declared in this package.
func collectGuards(pass *Pass) guardInfo {
	guards := make(guardInfo)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex := guardAnnotation(field)
				if mutex == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guards[obj] = mutex
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// isWriteAccess reports whether sel (possibly wrapped in index/star
// expressions) is the target of an assignment, an inc/dec, a delete(), or
// a unary & (which escapes a writable reference).
func isWriteAccess(sel *ast.SelectorExpr, stack []ast.Node) bool {
	// Walk outward through wrappers that keep the access addressable.
	var inner ast.Node = sel
	for i := len(stack) - 1; i >= 0; i-- {
		switch outer := stack[i].(type) {
		case *ast.IndexExpr:
			if outer.X == inner {
				inner = outer
				continue
			}
			return false
		case *ast.ParenExpr:
			inner = outer
			continue
		case *ast.StarExpr:
			if outer.X == inner {
				inner = outer
				continue
			}
			return false
		case *ast.AssignStmt:
			for _, lhs := range outer.Lhs {
				if lhs == inner {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return outer.X == inner
		case *ast.UnaryExpr:
			return outer.Op == token.AND && outer.X == inner
		case *ast.CallExpr:
			if id, ok := ast.Unparen(outer.Fun).(*ast.Ident); ok && id.Name == "delete" && len(outer.Args) > 0 && outer.Args[0] == inner {
				return true
			}
			return false
		default:
			return false
		}
	}
	return false
}
