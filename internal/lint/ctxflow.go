package lint

import (
	"go/ast"
	"go/types"
)

// ctxScope lists the packages whose exported entry points are long-running
// simulation drivers: a context parameter there is a cancellation promise
// (PR 2 threaded ctx end-to-end so sweeps abort promptly), and a parameter
// that is accepted but never consulted silently breaks that promise.
var ctxScope = map[string]bool{
	"simrun": true, "calib": true, "soc": true, "experiments": true,
	"sched": true, "platform": true, "cluster": true,
}

// backgroundScope additionally covers the serving layer, where minting a
// fresh context.Background() inside a function that was handed a ctx
// detaches the work from request/job cancellation.
var backgroundScope = map[string]bool{"server": true}

// CtxFlow checks context propagation through the blocking simulation entry
// points: an exported function that accepts a context.Context must
// actually use it (pass it on, poll ctx.Err, or select on ctx.Done), and
// a function holding a ctx parameter must not spawn work from
// context.Background()/TODO — that discards the caller's cancellation.
// The nil-default idiom `if ctx == nil { ctx = context.Background() }` is
// recognized and allowed.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported blocking entry points must honour the ctx they accept; no context.Background() where a ctx is in scope",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	base := pkgBase(pass.PkgPath)
	inCtxScope := ctxScope[base]
	inBGScope := inCtxScope || backgroundScope[base]
	if !inBGScope {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxParam := contextParam(pass, fn)
			if ctxParam != nil {
				if inCtxScope && fn.Name.IsExported() && !usesParam(pass, fn.Body, ctxParam) {
					pass.Reportf(fn.Name.Pos(), "%s accepts ctx but never uses it: propagate it into the blocking work or drop the parameter", fn.Name.Name)
				}
				checkBackgroundCalls(pass, fn.Body, ctxParam)
			}
		}
	}
	return nil
}

// contextParam returns the object of fn's context.Context parameter, or
// nil (also for the blank identifier, which is an explicit opt-out).
func contextParam(pass *Pass, fn *ast.FuncDecl) types.Object {
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj == nil || name.Name == "_" {
				continue
			}
			if named, ok := obj.Type().(*types.Named); ok {
				tn := named.Obj()
				if tn.Pkg() != nil && tn.Pkg().Path() == "context" && tn.Name() == "Context" {
					return obj
				}
			}
		}
	}
	return nil
}

func usesParam(pass *Pass, body *ast.BlockStmt, param types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == param {
			used = true
		}
		return !used
	})
	return used
}

// checkBackgroundCalls flags context.Background()/TODO() inside a function
// that already holds ctx, except when assigned to the ctx parameter itself
// (the nil-default idiom).
func checkBackgroundCalls(pass *Pass, body *ast.BlockStmt, ctxParam types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if ok && len(assign.Lhs) == 1 && len(assign.Rhs) == 1 {
			if id, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident); ok && pass.Info.Uses[id] == ctxParam {
				// ctx = context.Background() — the nil-default guard; skip
				// the RHS but keep walking anything nested.
				return false
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
			pass.Reportf(call.Pos(), "context.%s() inside a function that holds ctx detaches this work from the caller's cancellation: pass ctx through", fn.Name())
		}
		return true
	})
}
