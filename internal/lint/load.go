package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis. Only
// non-test files are loaded: the invariants the suite checks are about
// production behaviour, and tests legitimately use wall clocks, literal
// fault sites, and bare temp files.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// goList runs `go list -deps -export -json` in dir over the patterns and
// decodes the stream. -export materializes each dependency's export data
// in the build cache, which is how the type checker resolves imports
// without golang.org/x/tools: the stdlib gc importer reads those files
// directly.
func goList(dir string, patterns ...string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportImporter satisfies go/types.Importer by opening the export-data
// files `go list -export` reported, through the standard gc importer.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// LoadPackages loads and type-checks the packages matching the patterns,
// resolved relative to dir (the module root or any directory within it).
// Dependencies — including each target's imports of sibling targets — are
// satisfied from compiler export data, so only the analyzed packages are
// parsed from source.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		pkg, err := TypeCheck(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		out = append(out, pkg)
	}
	return out, nil
}

// TypeCheck type-checks one package's parsed files with the given
// importer and wraps the result for analysis.
func TypeCheck(fset *token.FileSet, pkgPath string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(pkgPath, fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-checking %s:\n  %s", pkgPath, strings.Join(msgs, "\n  "))
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
