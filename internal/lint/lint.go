// Package lint is the PCCS static-analysis suite: custom analyzers that
// machine-check the repository's determinism, concurrency, and durability
// invariants — the properties the reproduction's credibility rests on
// (paper §5: slowdown measurements must be a pure function of platform
// config, workload, and seed) and that PRs 2–3 enforce only by convention
// (bit-identical parallel-vs-serial results, pure seed-driven fault
// decisions, fsync-before-rename persistence, mutex-guarded shared maps).
//
// The suite is modelled on golang.org/x/tools/go/analysis but implemented
// on the standard library alone (go/ast + go/types, with export data
// resolved through `go list -export`), because the repository carries no
// third-party dependencies. Each Analyzer inspects one type-checked
// package; cmd/pccs-lint is the multichecker that runs them all, and
// TestRepoClean keeps the tree clean by failing on any unannotated
// finding.
//
// # Suppressing a finding
//
// Deliberate exceptions are annotated in source with
//
//	//pccs:allow-<tag> <reason>
//
// where <tag> is the analyzer's name (the canonical allow tag; a handful
// of legacy spellings, like "nondeterminism" for the nodeterminism
// analyzer, are still accepted) and <reason> is mandatory free text. The
// annotation suppresses that analyzer's findings on its own line and the
// line below, so both end-of-line and comment-above styles work. Placing
// the annotation in a function's doc comment suppresses the analyzer
// inside the whole function — the right shape for constructors that touch
// guarded fields before the value is published. An annotation without a
// reason suppresses nothing and is itself reported.
//
// # Hot-path annotation
//
// The inverse marker //pccs:hotpath on a function's doc comment opts the
// function into the allocbudget analyzer's zero-allocation discipline;
// see allocbudget.go.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in output.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// AllowTag is the //pccs:allow-<tag> suffix that suppresses this
	// analyzer's findings; it defaults to Name (the canonical spelling).
	AllowTag string
	// LegacyAllowTags lists additional accepted tag spellings, kept so
	// annotations written against an older tag keep suppressing.
	LegacyAllowTags []string
	// Run reports findings on one package through pass.Reportf. Exactly
	// one of Run and RunModule is set.
	Run func(pass *Pass) error
	// RunModule reports findings across every package of one Check call
	// at once — the hook for whole-program properties like the global
	// lock-acquisition graph, which no single package can see. Under
	// `go vet -vettool` (one package per invocation) a module analyzer
	// only sees that package's subgraph.
	RunModule func(pass *ModulePass) error
}

// Tag returns the analyzer's effective (canonical) allow tag.
func (a *Analyzer) Tag() string {
	if a.AllowTag != "" {
		return a.AllowTag
	}
	return a.Name
}

// tags returns every tag spelling that suppresses this analyzer.
func (a *Analyzer) tags() []string {
	return append([]string{a.Tag()}, a.LegacyAllowTags...)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// PkgPath is the package import path ("github.com/.../internal/soc";
	// test fixtures use short synthetic paths like "fix/simrun").
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		tags:     p.Analyzer.tags(),
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A ModulePass carries every package of one Check call through one
// module-wide analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos, resolved through the owning package's
// file set.
func (p *ModulePass) Reportf(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		tags:     p.Analyzer.tags(),
		Pos:      fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string

	tags []string // allow tags (canonical first) that suppress this finding
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// CoreScope lists the last path segments of the simulation-core packages:
// everything that must stay a pure function of (config, workload, seed).
var CoreScope = map[string]bool{
	"soc": true, "dram": true, "memctrl": true, "traffic": true,
	"workload": true, "calib": true, "simrun": true, "faultinject": true,
	"sched": true, "platform": true,
}

// pkgBase returns the last segment of an import path, which the scoped
// analyzers match against (so test fixtures named like the real packages
// fall under the same scope rules).
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		CtxFlow,
		GuardedBy,
		DurableWrite,
		FaultSite,
		ErrCmp,
		AllocBudget,
		LockOrder,
		AtomicMix,
		LeakCheck,
		WallClock,
	}
}

// Check runs the analyzers over the packages, applies the
// //pccs:allow-<tag> suppressions, and returns the surviving findings
// sorted by position.
func Check(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				PkgPath:  pkg.PkgPath,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		pass := &ModulePass{Analyzer: a, Pkgs: pkgs, diags: &diags}
		if err := a.RunModule(pass); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}
	// Suppression is filename-keyed, so a diagnostic from a module-wide
	// analyzer is matched against the allow annotations of whichever
	// package owns the file it points into.
	allows := make([]*allowSet, 0, len(pkgs))
	var out []Diagnostic
	for _, pkg := range pkgs {
		allow := collectAllows(pkg)
		allows = append(allows, allow)
		out = append(out, allow.malformed...)
	}
	for _, d := range diags {
		suppressed := false
		for _, allow := range allows {
			if allow.suppresses(d) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// allowRe matches one annotation: the tag, then the mandatory reason.
var allowRe = regexp.MustCompile(`//pccs:allow-([A-Za-z0-9_-]+)(.*)`)

// allowSet is the per-package suppression index.
type allowSet struct {
	// lines maps file → line → tags allowed on that line.
	lines map[string]map[int]map[string]bool
	// funcs lists body ranges whose doc comment carries an annotation.
	funcs []funcAllow
	fset  *token.FileSet
	// malformed reports annotations missing their reason.
	malformed []Diagnostic
}

type funcAllow struct {
	lo, hi token.Pos
	tags   map[string]bool
}

func collectAllows(pkg *Package) *allowSet {
	s := &allowSet{lines: make(map[string]map[int]map[string]bool), fset: pkg.Fset}
	addLine := func(pos token.Position, tag string) {
		byLine := s.lines[pos.Filename]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			s.lines[pos.Filename] = byLine
		}
		// The annotation covers its own line and the next one, so it works
		// both at the end of the offending line and on the line above it.
		for _, ln := range []int{pos.Line, pos.Line + 1} {
			if byLine[ln] == nil {
				byLine[ln] = make(map[string]bool)
			}
			byLine[ln][tag] = true
		}
	}
	parse := func(c *ast.Comment) (tag string, ok bool) {
		m := allowRe.FindStringSubmatch(c.Text)
		if m == nil {
			return "", false
		}
		if strings.TrimSpace(m[2]) == "" {
			s.malformed = append(s.malformed, Diagnostic{
				Analyzer: "pccs-allow",
				Pos:      pkg.Fset.Position(c.Pos()),
				Message:  fmt.Sprintf("//pccs:allow-%s needs a reason; the annotation suppresses nothing without one", m[1]),
			})
			return "", false
		}
		return m[1], true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if tag, ok := parse(c); ok {
					addLine(pkg.Fset.Position(c.Pos()), tag)
				}
			}
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || fn.Body == nil {
				continue
			}
			tags := make(map[string]bool)
			for _, c := range fn.Doc.List {
				if tag, ok := parse(c); ok {
					tags[tag] = true
				}
			}
			if len(tags) > 0 {
				s.funcs = append(s.funcs, funcAllow{lo: fn.Body.Pos(), hi: fn.Body.End(), tags: tags})
			}
		}
	}
	return s
}

func (s *allowSet) suppresses(d Diagnostic) bool {
	if byLine := s.lines[d.Pos.Filename]; byLine != nil {
		if tags := byLine[d.Pos.Line]; tags != nil {
			for _, t := range d.tags {
				if tags[t] {
					return true
				}
			}
		}
	}
	for _, fa := range s.funcs {
		match := false
		for _, t := range d.tags {
			if fa.tags[t] {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		lo, hi := s.fset.Position(fa.lo), s.fset.Position(fa.hi)
		if d.Pos.Filename == lo.Filename && d.Pos.Line >= lo.Line && d.Pos.Line <= hi.Line {
			return true
		}
	}
	return false
}

// walkWithStack visits every node of every file, handing the visitor the
// enclosing-node stack (outermost first, not including n itself).
func walkWithStack(files []*ast.File, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			visit(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}

// innermostFunc returns the closest enclosing function body (FuncDecl or
// FuncLit) on the stack, or nil.
func innermostFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions, and
// function-valued variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (not a method).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}
