package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCmp flags direct ==/!= comparisons between an error value and a
// declared sentinel error variable. The stack wraps aggressively —
// injected faults arrive as fmt.Errorf("...: %w", faultinject.ErrInjected)
// or inside a *simrun.PanicError — so a direct comparison against a
// wrapped sentinel is false even when the sentinel is present, and the
// transient-classification path (retry exactly the injected faults)
// silently stops retrying. errors.Is is required. Comparisons with nil
// are of course fine.
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc:  "compare errors against sentinels with errors.Is, never == / !=",
	Run:  runErrCmp,
}

func runErrCmp(pass *Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	isErr := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil || tv.IsNil() {
			return false
		}
		return types.Implements(tv.Type, errType) || types.Implements(types.NewPointer(tv.Type), errType)
	}
	sentinel := func(e ast.Expr) types.Object {
		var obj types.Object
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj = pass.Info.Uses[e]
		case *ast.SelectorExpr:
			obj = pass.Info.Uses[e.Sel]
		default:
			return nil
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return nil
		}
		// Package-level error variable = sentinel.
		if v.Parent() != v.Pkg().Scope() {
			return nil
		}
		return v
	}
	walkWithStack(pass.Files, func(n ast.Node, _ []ast.Node) {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return
		}
		if !isErr(bin.X) || !isErr(bin.Y) {
			return
		}
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			if v := sentinel(side); v != nil {
				name := v.Name()
				if v.Pkg().Path() != pass.PkgPath {
					name = v.Pkg().Name() + "." + name
				}
				pass.Reportf(bin.Pos(), "direct %s comparison against sentinel %s misses wrapped errors: use errors.Is(err, %s)",
					bin.Op, name, name)
				return
			}
		}
	})
	return nil
}
