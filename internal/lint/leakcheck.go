package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LeakCheck finds two slow-leak shapes that tests rarely catch because
// nothing fails immediately:
//
//   - http.Response bodies not closed on every path. The body holds a
//     pooled connection; one unclosed error branch leaks a connection per
//     request until the transport starves (the cluster transport does
//     thousands of peer round-trips per sweep). The check is a forward
//     may-analysis over the CFG (cfg.go): a response becomes "open" where
//     it is assigned from a call, is closed by resp.Body.Close (inline,
//     deferred, or in a deferred closure), and is excused on paths where
//     the accompanying error is non-nil (the http.Client contract: on
//     error the response is nil) or ownership escapes (returned, stored,
//     sent, or passed to another function). Any open response reaching
//     function exit is a finding.
//   - goroutines with no termination path: a `go` statement whose body
//     (function literal or same-package function) contains an infinite
//     `for` loop with no return, break, channel receive, or select inside.
//     Such a goroutine outlives every context and WaitGroup by
//     construction — the shape that turns "restart the daemon" into the
//     only fix. The loop check is syntactic; loops that terminate through
//     a condition the analyzer cannot see carry an allow-leakcheck
//     annotation with the reason.
var LeakCheck = &Analyzer{
	Name: "leakcheck",
	Doc:  "http.Response bodies must close on all paths; goroutines need a termination path",
	Run:  runLeakCheck,
}

func runLeakCheck(pass *Pass) error {
	// Each function-like body is analyzed independently (intraprocedural).
	walkWithStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				checkBodyClose(pass, n.Body)
			}
		case *ast.FuncLit:
			checkBodyClose(pass, n.Body)
		case *ast.GoStmt:
			checkGoroutine(pass, n)
		}
	})
	return nil
}

// checkBodyClose runs the open-response may-analysis over one body.
// Nested function literals are skipped here (they get their own call).
func checkBodyClose(pass *Pass, body *ast.BlockStmt) {
	// openAt maps each tracked response object to where it was opened;
	// errFor maps an error object to the responses assigned alongside it.
	openAt := make(map[types.Object]token.Pos)
	errFor := make(map[types.Object][]types.Object)
	forEachStmtShallow(body, func(s ast.Stmt) {
		assign, ok := s.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return
		}
		if _, isCall := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr); !isCall {
			return
		}
		var resps []types.Object
		var errObj types.Object
		for _, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := identObj(pass.Info, id)
			if obj == nil {
				continue
			}
			switch {
			case isHTTPResponsePtr(obj.Type()):
				resps = append(resps, obj)
			case isErrorType(obj.Type()):
				errObj = obj
			}
		}
		for _, r := range resps {
			if _, seen := openAt[r]; !seen {
				openAt[r] = assign.Pos()
			}
			if errObj != nil {
				errFor[errObj] = append(errFor[errObj], r)
			}
		}
	})
	if len(openAt) == 0 {
		return
	}

	g := buildCFG(body)

	// Deferred closes release on every exit path.
	deferClosed := make(map[types.Object]bool)
	for _, d := range g.defers {
		if obj := closeTarget(pass.Info, d); obj != nil {
			deferClosed[obj] = true
		}
		if lit, ok := d.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if obj := closeTarget(pass.Info, call); obj != nil {
						deferClosed[obj] = true
					}
				}
				return true
			})
		}
	}

	transfer := func(blk *cfgBlock, in cfgFacts) cfgFacts {
		for _, s := range blk.stmts {
			// Gen: the open sites found above.
			if assign, ok := s.(*ast.AssignStmt); ok {
				for _, lhs := range assign.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if obj := identObj(pass.Info, id); obj != nil {
							if _, tracked := openAt[obj]; tracked && len(assign.Rhs) == 1 {
								if _, isCall := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr); isCall {
									in[obj] = true
								}
							}
						}
					}
				}
			}
			// Kill: closes and ownership escapes anywhere in the statement.
			ast.Inspect(s, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // separate analysis
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if obj := closeTarget(pass.Info, call); obj != nil {
						delete(in, obj)
					}
				}
				if obj := escapingResp(pass.Info, n, openAt); obj != nil {
					delete(in, obj)
				}
				return true
			})
		}
		return in
	}

	filter := func(e *cfgEdge, out cfgFacts) cfgFacts {
		if e.cond == nil || len(out) == 0 {
			return out
		}
		obj, nilOnTrue, ok := nilComparison(pass.Info, e.cond)
		if !ok {
			return out
		}
		isNilHere := nilOnTrue == e.condVal
		kill := func(objs ...types.Object) cfgFacts {
			filtered := out.clone()
			for _, o := range objs {
				delete(filtered, o)
			}
			return filtered
		}
		if _, tracked := openAt[obj]; tracked && isNilHere {
			// `if resp == nil` branch: nothing to close there.
			return kill(obj)
		}
		if resps, isErr := errFor[obj]; isErr && !isNilHere {
			// `if err != nil` branch: per the http.Client contract the
			// response is nil on error.
			return kill(resps...)
		}
		return out
	}

	exitFacts := g.forwardMay(transfer, filter)[g.exit]
	// Stable report order: by open position.
	var leaked []types.Object
	for k := range exitFacts {
		obj, ok := k.(types.Object)
		if !ok || deferClosed[obj] {
			continue
		}
		leaked = append(leaked, obj)
	}
	sortObjectsByPos(leaked, openAt)
	for _, obj := range leaked {
		pass.Reportf(openAt[obj], "http.Response body of %s may not be closed on every path: add `defer %s.Body.Close()` after the error check", obj.Name(), obj.Name())
	}
}

func sortObjectsByPos(objs []types.Object, at map[types.Object]token.Pos) {
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && at[objs[j]] < at[objs[j-1]]; j-- {
			objs[j], objs[j-1] = objs[j-1], objs[j]
		}
	}
}

// forEachStmtShallow visits every statement in body, at any block depth,
// but does not descend into nested function literals.
func forEachStmtShallow(body *ast.BlockStmt, visit func(ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			visit(s)
		}
		return true
	})
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isHTTPResponsePtr reports whether t is *net/http.Response.
func isHTTPResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Response"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// closeTarget matches resp.Body.Close() and returns resp's object.
func closeTarget(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return nil
	}
	body, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || body.Sel.Name != "Body" {
		return nil
	}
	id, ok := ast.Unparen(body.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := identObj(info, id)
	if obj == nil || !isHTTPResponsePtr(obj.Type()) {
		return nil
	}
	return obj
}

// escapingResp reports a tracked response whose ownership escapes at n:
// returned, sent on a channel, stored into a composite/field/index, or
// passed (as the whole response, not resp.Body) to a call.
func escapingResp(info *types.Info, n ast.Node, tracked map[types.Object]token.Pos) types.Object {
	matchIdent := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := identObj(info, id)
		if obj == nil {
			return nil
		}
		if _, ok := tracked[obj]; !ok {
			return nil
		}
		return obj
	}
	switch n := n.(type) {
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if obj := matchIdent(r); obj != nil {
				return obj
			}
		}
	case *ast.SendStmt:
		return matchIdent(n.Value)
	case *ast.CallExpr:
		if closeTarget(info, n) != nil {
			return nil
		}
		for _, arg := range n.Args {
			if obj := matchIdent(arg); obj != nil {
				return obj
			}
		}
	case *ast.AssignStmt:
		// Storing the response anywhere but a plain local hand-off counts
		// as an escape: x.field = resp, m[k] = resp.
		for i, rhs := range n.Rhs {
			obj := matchIdent(rhs)
			if obj == nil || i >= len(n.Lhs) {
				continue
			}
			switch ast.Unparen(n.Lhs[i]).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				return obj
			}
		}
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			e := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				e = kv.Value
			}
			if obj := matchIdent(e); obj != nil {
				return obj
			}
		}
	}
	return nil
}

// checkGoroutine applies the no-termination-path heuristic to one go
// statement.
func checkGoroutine(pass *Pass, g *ast.GoStmt) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		fn := calleeFunc(pass.Info, g.Call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Path() {
			return
		}
		body = funcDeclBody(pass, fn)
	}
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if loopCanTerminate(loop.Body) {
			return true
		}
		pass.Reportf(g.Pos(), "goroutine has no termination path: infinite for loop without return, break, channel receive, or select — thread ctx.Done() or a done channel through it")
		return false
	})
}

// loopCanTerminate reports whether an infinite loop body contains any
// construct that can end or park the loop: return, break, a channel
// receive, a select, ranging over a channel, or a Wait call.
func loopCanTerminate(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt, *ast.SelectStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			found = true // ranging (incl. over a channel) can end
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Wait" || sel.Sel.Name == "Goexit") {
				found = true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}

// funcDeclBody finds the body of a same-package function by its object.
func funcDeclBody(pass *Pass, fn *types.Func) *ast.BlockStmt {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj, _ := pass.Info.Defs[fd.Name].(*types.Func); obj == fn {
					return fd.Body
				}
			}
		}
	}
	return nil
}

// nilComparison decomposes a condition of the form `x == nil` or
// `x != nil` (either operand order): it returns x's object and whether
// the condition being true means x IS nil.
func nilComparison(info *types.Info, cond ast.Expr) (obj types.Object, nilOnTrue bool, ok bool) {
	bin, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, false, false
	}
	isNil := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && tv.IsNil()
	}
	var x ast.Expr
	switch {
	case isNil(bin.Y):
		x = bin.X
	case isNil(bin.X):
		x = bin.Y
	default:
		return nil, false, false
	}
	id, isIdent := ast.Unparen(x).(*ast.Ident)
	if !isIdent {
		return nil, false, false
	}
	obj = identObj(info, id)
	if obj == nil {
		return nil, false, false
	}
	return obj, bin.Op == token.EQL, true
}
