package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoDeterminism forbids nondeterministic inputs in the simulation core.
// The PCCS methodology only reproduces (and the parallel executor is only
// trustworthy) if every simulation is a pure function of (platform
// config, workload, seed): a single wall-clock read or global-RNG draw in
// a hot path corrupts that silently — results drift between runs without
// any test necessarily failing.
//
// Three patterns are flagged, in the packages listed by CoreScope:
//
//   - calls to time.Now or time.Since (wall-clock reads);
//   - calls to math/rand (or rand/v2) package-level functions, which draw
//     from the process-global generator — randomness must come from an
//     explicitly seeded *rand.Rand (constructors like rand.New and
//     rand.NewSource are allowed);
//   - ranging over a map while accumulating into a slice declared outside
//     the loop, unless the enclosing function sorts afterwards: Go map
//     iteration order is deliberately random, so such output changes
//     between runs.
//
// Legitimate exceptions (backoff jitter, retry delays — wall-clock
// behaviour, not simulation state) carry //pccs:allow-nodeterminism.
// The historical spelling //pccs:allow-nondeterminism is still accepted
// as a legacy tag; the canonical tag is the analyzer name.
var NoDeterminism = &Analyzer{
	Name:            "nodeterminism",
	LegacyAllowTags: []string{"nondeterminism"},
	Doc:             "forbid wall-clock reads, global RNG draws, and map-ordered output in the simulation core",
	Run:             runNoDeterminism,
}

// randConstructors are the math/rand package functions that build seeded
// generators rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNoDeterminism(pass *Pass) error {
	if !CoreScope[pkgBase(pass.PkgPath)] {
		return nil
	}
	walkWithStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, n)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			switch {
			case isPkgFunc(fn, "time", "Now"), isPkgFunc(fn, "time", "Since"):
				pass.Reportf(n.Pos(), "time.%s in the simulation core: results must be a pure function of (config, workload, seed), not the wall clock", fn.Name())
			case isGlobalRandDraw(fn):
				pass.Reportf(n.Pos(), "%s.%s draws from the process-global generator: use an explicitly seeded *rand.Rand so runs reproduce", fn.Pkg().Path(), fn.Name())
			}
		case *ast.RangeStmt:
			checkMapRangeOutput(pass, n, stack)
		}
	})
	return nil
}

func isGlobalRandDraw(fn *types.Func) bool {
	pkg := fn.Pkg().Path()
	if pkg != "math/rand" && pkg != "math/rand/v2" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil { // methods on *rand.Rand are the fix, not the bug
		return false
	}
	return !randConstructors[fn.Name()]
}

// checkMapRangeOutput flags a range-over-map whose body appends to a
// slice declared outside the loop — ordered output fed in random order —
// unless the enclosing function sorts after the loop.
func checkMapRangeOutput(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var accum *ast.Ident
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || accum != nil {
			return accum == nil
		}
		for _, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if _, builtin := pass.Info.Uses[id].(*types.Builtin); !builtin {
				continue
			}
			if len(call.Args) == 0 {
				continue
			}
			target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Uses[target]
			if obj == nil || obj.Pos() == token.NoPos {
				continue
			}
			// Only slices that outlive the loop carry the ordering out.
			if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
				accum = target
				return false
			}
		}
		return true
	})
	if accum == nil {
		return
	}
	if fn := enclosingFuncBody(stack); fn != nil && sortsAfter(pass, fn, rng.End()) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration feeds %s in random order: sort the result (or iterate sorted keys) so output is deterministic", accum.Name)
}

func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	switch fn := innermostFunc(stack).(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// sortsAfter reports whether body calls into package sort or slices at a
// position after pos — the "accumulate then sort" idiom.
func sortsAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		fn := calleeFunc(pass.Info, call)
		if fn != nil && fn.Pkg() != nil {
			if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
				found = true
			}
		}
		return !found
	})
	return found
}
