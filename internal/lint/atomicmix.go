package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicMix flags struct fields that are accessed through sync/atomic in
// one place and with a plain load or store in another. Mixing the two is
// a data race the race detector only catches when both sides actually
// interleave under -race; statically, any field that is ever the operand
// of atomic.Add/Load/Store/Swap/CompareAndSwap must be accessed that way
// everywhere (or, better, converted to a typed atomic.Int64/Uint32/...,
// which makes plain access unrepresentable and is invisible to this
// analyzer because it needs no enforcement).
//
// Intentional exceptions — a plain read in a constructor before the value
// is published, or a test poking at internals — carry
// //pccs:allow-atomicmix with the reason.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed through sync/atomic in one function and plainly in another",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// First pass: find every field used as &x.f in a sync/atomic call, and
	// remember one example site per field for the message.
	atomicFields := make(map[types.Object]token.Pos)
	atomicOperand := make(map[*ast.SelectorExpr]bool)

	walkWithStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			selection := pass.Info.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				continue
			}
			obj := selection.Obj()
			if _, seen := atomicFields[obj]; !seen {
				atomicFields[obj] = call.Pos()
			}
			atomicOperand[sel] = true
		}
	})
	if len(atomicFields) == 0 {
		return nil
	}

	// Second pass: every other access to those fields is a plain access.
	atomicSites := make(map[types.Object][]string)
	type plainSite struct {
		pos   token.Pos
		obj   types.Object
		base  string
		name  string
		write bool
	}
	var plains []plainSite
	walkWithStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		selection := pass.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return
		}
		obj := selection.Obj()
		if _, hot := atomicFields[obj]; !hot {
			return
		}
		if atomicOperand[sel] {
			if fn := enclosingFuncName(stack); fn != "" && !contains(atomicSites[obj], fn) {
				atomicSites[obj] = append(atomicSites[obj], fn)
			}
			return
		}
		plains = append(plains, plainSite{
			pos:   sel.Pos(),
			obj:   obj,
			base:  types.ExprString(ast.Unparen(sel.X)),
			name:  sel.Sel.Name,
			write: isWriteAccess(sel, stack),
		})
	})
	for _, p := range plains {
		kind := "read"
		if p.write {
			kind = "write"
		}
		where := ""
		if fns := atomicSites[p.obj]; len(fns) > 0 {
			sort.Strings(fns)
			where = " (atomic in " + strings.Join(fns, ", ") + ")"
		}
		pass.Reportf(p.pos, "plain %s of %s.%s, a field accessed through sync/atomic elsewhere%s: use atomic access everywhere or a typed atomic value",
			kind, p.base, p.name, where)
	}
	return nil
}

// enclosingFuncName names the innermost enclosing function declaration
// ("Type.method" or "func") for diagnostics; closures report their
// enclosing declaration.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return funcKey(fd)
		}
	}
	return ""
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
