package lint

// cfg.go is the shared dataflow core of the suite: an intraprocedural
// control-flow graph over go/ast statements plus a generic forward
// may-analysis solver. The path-sensitive analyzers (leakcheck's
// Body.Close tracking, allocbudget's escape walk over reachable code)
// build on it instead of re-deriving control flow from syntax.
//
// Scope and limits (see DESIGN §13): the graph is intraprocedural — one
// function body, no call edges — and syntactic: conditions are recorded
// on edges verbatim (an *ast.Expr plus the truth value the edge assumes)
// so clients can special-case idioms like `if err != nil { return err }`
// without the core guessing at semantics. goto is approximated as an
// edge to the exit block (the repo style forbids goto; the conservative
// edge only widens may-facts). panic, log.Fatal*, and os.Exit terminate
// their block with panics=true so clients can exempt crash paths.

import (
	"go/ast"
	"go/token"
)

// A cfgBlock is one straight-line run of statements. Statements appear in
// execution order; compound statements (if/for/switch/select) never appear
// themselves — their init/condition parts are recorded where they execute
// and their bodies become separate blocks. A *ast.RangeStmt does appear
// (in its loop-head block) so clients can see the per-iteration Key/Value
// assignment; its Body is still split into normal blocks.
type cfgBlock struct {
	index  int
	stmts  []ast.Stmt
	succs  []*cfgEdge
	preds  []*cfgEdge
	panics bool // block ends in panic()/log.Fatal*/os.Exit/runtime.Goexit
}

// A cfgEdge connects two blocks. cond, when non-nil, is the branch
// condition of the source if/for statement and condVal the value it has
// along this edge — the hook for client-side path filtering.
type cfgEdge struct {
	from, to *cfgBlock
	cond     ast.Expr
	condVal  bool
}

// A cfg is one function body's control-flow graph. entry has no
// predecessors; exit collects every return and normal fall-off (and, as a
// conservative approximation, goto).
type cfg struct {
	entry, exit *cfgBlock
	blocks      []*cfgBlock
	// defers lists every deferred call in the function, in source order.
	// Deferred calls run on every exit path, so clients treat them as
	// executing just before the exit block.
	defers []*ast.CallExpr
}

// buildCFG constructs the control-flow graph of one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{g: &cfg{}, labels: make(map[string]*loopTargets)}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	if end := b.stmtList(body.List, b.g.entry); end != nil {
		b.edge(end, b.g.exit, nil, false)
	}
	return b.g
}

type loopTargets struct {
	brk, cont *cfgBlock // cont is nil for labeled non-loop statements
}

type cfgBuilder struct {
	g *cfg
	// loops is the enclosing break/continue target stack; labels maps a
	// label name to its targets while the labeled statement is in scope.
	loops  []loopTargets
	labels map[string]*loopTargets
	// pendingLabel carries a label to the loop construct it annotates;
	// labelStack remembers which construct registered which label.
	pendingLabel string
	labelStack   []string
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock, cond ast.Expr, condVal bool) {
	e := &cfgEdge{from: from, to: to, cond: cond, condVal: condVal}
	from.succs = append(from.succs, e)
	to.preds = append(to.preds, e)
}

// stmtList builds stmts starting in cur and returns the block where
// control falls out the end, or nil if control never does (return, break,
// panic on every path).
func (b *cfgBuilder) stmtList(stmts []ast.Stmt, cur *cfgBlock) *cfgBlock {
	for _, s := range stmts {
		if cur == nil {
			// Unreachable code after a terminator still gets blocks so
			// clients see its statements, but nothing flows in.
			cur = b.newBlock()
		}
		// fallthrough is resolved by the switch builder; a stray one is
		// ignored here.
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			continue
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock) *cfgBlock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return b.stmt(s.Stmt, cur) // the construct registers the label
		}
		b.pendingLabel = ""
		// Labeled plain statement: label is a goto/break target; treat
		// break-to-it conservatively via the generic branch handling.
		after := b.newBlock()
		b.labels[s.Label.Name] = &loopTargets{brk: after}
		end := b.stmt(s.Stmt, cur)
		delete(b.labels, s.Label.Name)
		if end != nil {
			b.edge(end, after, nil, false)
		}
		return after

	case *ast.IfStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cur, then, s.Cond, true)
		if end := b.stmtList(s.Body.List, then); end != nil {
			b.edge(end, after, nil, false)
		}
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cur, els, s.Cond, false)
			if end := b.stmt(s.Else, els); end != nil {
				b.edge(end, after, nil, false)
			}
		} else {
			b.edge(cur, after, s.Cond, false)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		head := b.newBlock()
		after := b.newBlock()
		body := b.newBlock()
		b.edge(cur, head, nil, false)
		var contTarget *cfgBlock
		if s.Post != nil {
			post := b.newBlock()
			post.stmts = append(post.stmts, s.Post)
			b.edge(post, head, nil, false)
			contTarget = post
		} else {
			contTarget = head
		}
		if s.Cond != nil {
			b.edge(head, body, s.Cond, true)
			b.edge(head, after, s.Cond, false)
		} else {
			b.edge(head, body, nil, false) // infinite loop: no exit edge
		}
		end := b.loopBody(s.Body.List, body, after, contTarget)
		if end != nil {
			b.edge(end, contTarget, nil, false)
		}
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		after := b.newBlock()
		body := b.newBlock()
		// The RangeStmt itself sits in the head so clients see X and the
		// per-iteration Key/Value binding.
		head.stmts = append(head.stmts, s)
		b.edge(cur, head, nil, false)
		b.edge(head, body, nil, false)
		b.edge(head, after, nil, false)
		end := b.loopBody(s.Body.List, body, after, head)
		if end != nil {
			b.edge(end, head, nil, false)
		}
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		if s.Tag != nil {
			cur.stmts = append(cur.stmts, &ast.ExprStmt{X: s.Tag})
		}
		return b.switchClauses(s.Body.List, cur, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		cur.stmts = append(cur.stmts, s.Assign)
		return b.switchClauses(s.Body.List, cur, false)

	case *ast.SelectStmt:
		after := b.newBlock()
		b.registerLabel(after, nil)
		b.loops = append(b.loops, loopTargets{brk: after})
		// An empty select blocks forever: no clauses, no edge out.
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			blk := b.newBlock()
			if comm.Comm != nil {
				blk.stmts = append(blk.stmts, comm.Comm)
			}
			b.edge(cur, blk, nil, false)
			if end := b.stmtList(comm.Body, blk); end != nil {
				b.edge(end, after, nil, false)
			}
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.unregisterLabel()
		return after

	case *ast.ReturnStmt:
		cur.stmts = append(cur.stmts, s)
		b.edge(cur, b.g.exit, nil, false)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s); t != nil && t.brk != nil {
				b.edge(cur, t.brk, nil, false)
			}
		case token.CONTINUE:
			if t := b.branchTarget(s); t != nil && t.cont != nil {
				b.edge(cur, t.cont, nil, false)
			}
		case token.GOTO:
			// Approximate: treat like a return so may-facts stay sound.
			b.edge(cur, b.g.exit, nil, false)
		}
		return nil

	case *ast.DeferStmt:
		cur.stmts = append(cur.stmts, s)
		b.g.defers = append(b.g.defers, s.Call)
		return cur

	default:
		cur.stmts = append(cur.stmts, s)
		if stmtPanics(s) {
			cur.panics = true
			b.edge(cur, b.g.exit, nil, false)
			return nil
		}
		return cur
	}
}

// loopBody builds a loop body with break/continue targets (and the
// pending label, if the loop was labeled) in scope.
func (b *cfgBuilder) loopBody(stmts []ast.Stmt, body, brk, cont *cfgBlock) *cfgBlock {
	b.registerLabel(brk, cont)
	b.loops = append(b.loops, loopTargets{brk: brk, cont: cont})
	end := b.stmtList(stmts, body)
	b.loops = b.loops[:len(b.loops)-1]
	b.unregisterLabel()
	return end
}

// switchClauses builds the case clauses of a switch/type-switch.
// allowFallthrough wires `fallthrough` edges between adjacent cases.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, cur *cfgBlock, allowFallthrough bool) *cfgBlock {
	after := b.newBlock()
	b.registerLabel(after, nil)
	b.loops = append(b.loops, loopTargets{brk: after})
	starts := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i := range clauses {
		starts[i] = b.newBlock()
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			starts[i].stmts = append(starts[i].stmts, &ast.ExprStmt{X: e})
		}
		b.edge(cur, starts[i], nil, false)
		body := cc.Body
		falls := false
		if allowFallthrough && len(body) > 0 {
			if br, ok := body[len(body)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
				body = body[:len(body)-1]
			}
		}
		end := b.stmtList(body, starts[i])
		if end != nil {
			if falls && i+1 < len(clauses) {
				b.edge(end, starts[i+1], nil, false)
			} else {
				b.edge(end, after, nil, false)
			}
		}
	}
	if !hasDefault {
		b.edge(cur, after, nil, false)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.unregisterLabel()
	return after
}

// registerLabel binds the pending label (if any) to the given targets for
// the duration of the construct; unregisterLabel pops it.
func (b *cfgBuilder) registerLabel(brk, cont *cfgBlock) {
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = &loopTargets{brk: brk, cont: cont}
		b.labelStack = append(b.labelStack, b.pendingLabel)
		b.pendingLabel = ""
	} else {
		b.labelStack = append(b.labelStack, "")
	}
}

func (b *cfgBuilder) unregisterLabel() {
	name := b.labelStack[len(b.labelStack)-1]
	b.labelStack = b.labelStack[:len(b.labelStack)-1]
	if name != "" {
		delete(b.labels, name)
	}
}

func (b *cfgBuilder) branchTarget(s *ast.BranchStmt) *loopTargets {
	if s.Label != nil {
		return b.labels[s.Label.Name]
	}
	if len(b.loops) == 0 {
		return nil
	}
	return &b.loops[len(b.loops)-1]
}

// stmtPanics reports whether s unconditionally terminates the goroutine:
// a call to the panic builtin, os.Exit, runtime.Goexit, or log.Fatal*.
// The check is syntactic (the CFG has no type info); the standard import
// names make that a safe approximation in this repository.
func stmtPanics(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		}
	}
	return false
}

// cfgFacts is one dataflow fact set: arbitrary comparable keys (typically
// types.Object — "this variable holds an open resource") present when the
// fact may hold.
type cfgFacts map[any]bool

func (f cfgFacts) clone() cfgFacts {
	out := make(cfgFacts, len(f))
	for k, v := range f {
		if v {
			out[k] = true
		}
	}
	return out
}

func factsEqual(a, b cfgFacts) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// forwardMay runs a forward may-analysis to fixpoint. transfer maps a
// block's in-facts to its out-facts; filter (optional) adjusts facts
// crossing one edge — the hook for condition-sensitive kills like
// `if x == nil` edges. Returns the in-facts of every block; the facts
// holding at function exit are ins[g.exit].
func (g *cfg) forwardMay(
	transfer func(b *cfgBlock, in cfgFacts) cfgFacts,
	filter func(e *cfgEdge, out cfgFacts) cfgFacts,
) map[*cfgBlock]cfgFacts {
	ins := make(map[*cfgBlock]cfgFacts, len(g.blocks))
	outs := make(map[*cfgBlock]cfgFacts, len(g.blocks))
	for _, blk := range g.blocks {
		ins[blk] = cfgFacts{}
		outs[blk] = cfgFacts{}
	}
	work := make([]*cfgBlock, 0, len(g.blocks))
	queued := make([]bool, len(g.blocks))
	push := func(blk *cfgBlock) {
		if !queued[blk.index] {
			queued[blk.index] = true
			work = append(work, blk)
		}
	}
	// Every block is visited at least once: a block can generate facts
	// without any incoming fact changing first.
	for _, blk := range g.blocks {
		push(blk)
	}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.index] = false
		in := cfgFacts{}
		for _, e := range blk.preds {
			out := outs[e.from]
			if filter != nil {
				out = filter(e, out)
			}
			for k := range out {
				in[k] = true
			}
		}
		ins[blk] = in
		out := transfer(blk, in.clone())
		if !factsEqual(out, outs[blk]) {
			outs[blk] = out
			for _, e := range blk.succs {
				push(e.to)
			}
		}
	}
	return ins
}
