package lint

import (
	"go/ast"
)

// durableScope lists the packages that persist crash-safe artifacts: the
// model store (calib) and the job journal (server).
var durableScope = map[string]bool{"server": true, "calib": true}

// DurableWrite enforces the repository's persistence discipline in the
// artifact-writing packages: durable files are written as temp file →
// write → fsync → rename (so a crash leaves either the old artifact or
// the new one, never a torn hybrid). Three shortcuts are flagged, per
// enclosing function:
//
//   - os.WriteFile — no fsync, and an in-place truncate-then-write that a
//     crash turns into a half-written artifact;
//   - os.Rename in a function that never calls Sync — the renamed bytes
//     may still be in the page cache, so the "atomic install" can install
//     an empty file after power loss;
//   - os.Create/os.CreateTemp whose function Closes but never Syncs.
var DurableWrite = &Analyzer{
	Name: "durablewrite",
	Doc:  "artifact writes must follow temp-file + fsync + rename; no os.WriteFile, no rename or close without Sync",
	Run:  runDurableWrite,
}

func runDurableWrite(pass *Pass) error {
	if !durableScope[pkgBase(pass.PkgPath)] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDurableFunc(pass, fn)
		}
	}
	return nil
}

func checkDurableFunc(pass *Pass, fn *ast.FuncDecl) {
	var (
		writeFiles []*ast.CallExpr
		renames    []*ast.CallExpr
		creates    []*ast.CallExpr
		hasSync    bool
		hasClose   bool
	)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := calleeFunc(pass.Info, call); f != nil {
			switch {
			case isPkgFunc(f, "os", "WriteFile"):
				writeFiles = append(writeFiles, call)
			case isPkgFunc(f, "os", "Rename"):
				renames = append(renames, call)
			case isPkgFunc(f, "os", "Create"), isPkgFunc(f, "os", "CreateTemp"):
				creates = append(creates, call)
			}
		}
		// Method calls named Sync/Close on anything (an *os.File reached
		// through locals, struct fields, or named returns) count.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Sync":
				hasSync = true
			case "Close":
				hasClose = true
			}
		}
		return true
	})
	for _, call := range writeFiles {
		pass.Reportf(call.Pos(), "os.WriteFile is not crash-safe (no fsync, truncates in place): write a temp file, Sync, then os.Rename over the target")
	}
	if hasSync {
		return
	}
	for _, call := range renames {
		pass.Reportf(call.Pos(), "os.Rename without an fsync in %s: the installed file may be empty after a crash — Sync the temp file before renaming", fn.Name.Name)
	}
	if hasClose {
		for _, call := range creates {
			pass.Reportf(call.Pos(), "file created in %s is closed but never Synced: a crash can tear the write — fsync before close/rename", fn.Name.Name)
		}
	}
}
