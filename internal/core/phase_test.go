package core

import (
	"math"
	"testing"
)

func cfdLikePhases() []Phase {
	return []Phase{
		{Name: "K1", Weight: 0.4, DemandGBps: 110}, // high-BW kernel
		{Name: "K2", Weight: 0.2, DemandGBps: 55},
		{Name: "K3", Weight: 0.2, DemandGBps: 50},
		{Name: "K4", Weight: 0.2, DemandGBps: 60},
	}
}

func TestPredictPhasesErrors(t *testing.T) {
	p := xavierGPU()
	if _, err := p.PredictPhases(nil, 10); err == nil {
		t.Error("no phases accepted")
	}
	if _, err := p.PredictPhases([]Phase{{Weight: -1, DemandGBps: 10}}, 10); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := p.PredictPhases([]Phase{{Weight: 0, DemandGBps: 10}}, 10); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestPredictPhasesSinglePhaseMatchesPredict(t *testing.T) {
	p := xavierGPU()
	got, err := p.PredictPhases([]Phase{{Weight: 1, DemandGBps: 60}}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if want := p.Predict(60, 40); math.Abs(got-want) > 1e-9 {
		t.Errorf("single phase = %v, want %v", got, want)
	}
}

func TestPredictPhasesNormalizesWeights(t *testing.T) {
	p := xavierGPU()
	a, _ := p.PredictPhases([]Phase{{Weight: 1, DemandGBps: 60}, {Weight: 1, DemandGBps: 110}}, 40)
	b, _ := p.PredictPhases([]Phase{{Weight: 10, DemandGBps: 60}, {Weight: 10, DemandGBps: 110}}, 40)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("weight scaling changed result: %v vs %v", a, b)
	}
}

func TestPiecewiseBeatsAverageForSkewedPhases(t *testing.T) {
	// The paper's Fig 13 point: feeding the average BW underestimates the
	// slowdown because the high-BW phase suffers disproportionately. The
	// phase-wise prediction must be ≤ the average-BW prediction under
	// meaningful pressure.
	p := xavierGPU()
	phases := cfdLikePhases()
	avg := AverageDemand(phases)
	for _, y := range []float64{30, 50, 80} {
		phased, err := p.PredictPhases(phases, y)
		if err != nil {
			t.Fatal(err)
		}
		flat := p.Predict(avg, y)
		if phased > flat+1e-9 {
			t.Errorf("y=%v: phased RS %v above average-BW RS %v", y, phased, flat)
		}
	}
}

func TestAverageDemand(t *testing.T) {
	if got := AverageDemand(nil); got != 0 {
		t.Errorf("AverageDemand(nil) = %v, want 0", got)
	}
	got := AverageDemand([]Phase{{Weight: 1, DemandGBps: 10}, {Weight: 3, DemandGBps: 50}})
	if want := (10 + 150) / 4.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("AverageDemand = %v, want %v", got, want)
	}
}

func TestPredictPhasesBounded(t *testing.T) {
	p := xavierGPU()
	for y := 0.0; y <= 140; y += 7 {
		rs, err := p.PredictPhases(cfdLikePhases(), y)
		if err != nil {
			t.Fatal(err)
		}
		if rs <= 0 || rs > 100 {
			t.Errorf("phased RS(%v) = %v out of (0,100]", y, rs)
		}
	}
}
