package core

// Scale adapts the model to an incremental memory-subsystem change (paper
// §3.3, "linear bandwidth scaling"): ratio is the target memory bandwidth
// over the bandwidth the model was constructed at (frequency change,
// channel-count change, or both).
//
// The five bandwidth-shaped parameters (NormalBW, IntensiveBW, MRMC, CBP,
// TBWDC — the rows of Table 5) scale linearly with the ratio, as does the
// peak. RateN is recalculated from the scaled values: the drop it describes
// spans a region whose width scaled by ratio while the total reduction depth
// is preserved, so the rate scales inversely.
func (p Params) Scale(ratio float64) Params {
	if ratio <= 0 {
		return p
	}
	s := p
	s.NormalBW *= ratio
	s.IntensiveBW *= ratio
	s.MRMC *= ratio
	s.CBP *= ratio
	s.TBWDC *= ratio
	s.PeakBW *= ratio
	s.RateN /= ratio
	return s
}
