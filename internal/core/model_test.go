package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// xavierGPU approximates the paper's Table 7 column for the Xavier GPU.
func xavierGPU() Params {
	return Params{
		PU: "GPU", Platform: "xavier",
		NormalBW: 38.1, IntensiveBW: 96.2, MRMC: 4.9,
		CBP: 45.3, TBWDC: 87.2, RateN: 0.75, PeakBW: 137,
	}
}

// xavierDLA approximates the DLA column: no minor region (NormalBW 0).
func xavierDLA() Params {
	return Params{
		PU: "DLA", Platform: "xavier",
		NormalBW: 0, IntensiveBW: 27.9, MRMC: 0,
		CBP: 71.1, TBWDC: 22.1, RateN: 0.35, PeakBW: 137,
	}
}

func TestParamsValidate(t *testing.T) {
	if err := xavierGPU().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.PeakBW = 0 },
		func(p *Params) { p.NormalBW = -1 },
		func(p *Params) { p.IntensiveBW = p.NormalBW - 1 },
		func(p *Params) { p.MRMC = -0.1 },
		func(p *Params) { p.MRMC = 101 },
		func(p *Params) { p.CBP = 0 },
		func(p *Params) { p.RateN = -1 },
		func(p *Params) { p.TBWDC = math.NaN() },
	}
	for i, m := range mutations {
		p := xavierGPU()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRegionClassification(t *testing.T) {
	p := xavierGPU()
	cases := map[float64]Region{
		0: Minor, 10: Minor, 38.1: Minor,
		38.2: Normal, 60: Normal, 96.2: Normal,
		96.3: Intensive, 130: Intensive,
	}
	for x, want := range cases {
		if got := p.Region(x); got != want {
			t.Errorf("Region(%v) = %v, want %v", x, got, want)
		}
	}
	// DLA has no minor region: any positive demand is at least normal.
	dla := xavierDLA()
	if got := dla.Region(1); got != Normal {
		t.Errorf("DLA Region(1) = %v, want normal", got)
	}
}

func TestRegionString(t *testing.T) {
	for r, s := range map[Region]string{Minor: "minor", Normal: "normal", Intensive: "intensive"} {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), s)
		}
	}
	if Region(7).String() == "" {
		t.Error("unknown region should render")
	}
}

func TestPredictNoExternalDemandIsStandalone(t *testing.T) {
	p := xavierGPU()
	for _, x := range []float64{0, 10, 50, 100, 130} {
		if got := p.Predict(x, 0); got != 100 {
			t.Errorf("Predict(%v, 0) = %v, want 100", x, got)
		}
	}
}

func TestPredictMinorRegionFlatInY(t *testing.T) {
	p := xavierGPU()
	base := p.Predict(20, 10)
	for _, y := range []float64{20, 60, 100, 137} {
		if got := p.Predict(20, y); math.Abs(got-base) > 1e-9 {
			t.Errorf("minor region not flat: Predict(20,%v) = %v, base %v", y, got, base)
		}
	}
	// Eq 2: reduction = MRMC·x/PBW.
	want := 100 - 4.9*20/137
	if math.Abs(base-want) > 1e-9 {
		t.Errorf("minor RS = %v, want %v", base, want)
	}
}

func TestPredictNormalRegionThreeStages(t *testing.T) {
	p := xavierGPU()
	x := 60.0 // normal region
	// Stage 1: flat while x+y < TBWDC (y < 27.2).
	early := p.Predict(x, 10)
	if want := 100 - p.MRMC*x/p.PeakBW; math.Abs(early-want) > 1e-9 {
		t.Errorf("early normal RS = %v, want flat %v", early, want)
	}
	// Stage 2: dropping between TBWDC and CBP.
	mid := p.Predict(x, 40)
	if want := 100 - (x+40-p.TBWDC)*p.RateN; math.Abs(mid-want) > 1e-9 {
		t.Errorf("mid normal RS = %v, want %v", mid, want)
	}
	// Stage 3: flat beyond CBP.
	tail1, tail2 := p.Predict(x, p.CBP), p.Predict(x, 137)
	if math.Abs(tail1-tail2) > 1e-9 {
		t.Errorf("normal tail not flat: %v vs %v", tail1, tail2)
	}
	if want := 100 - (x+p.CBP-p.TBWDC)*p.RateN; math.Abs(tail2-want) > 1e-9 {
		t.Errorf("tail RS = %v, want %v", tail2, want)
	}
	if !(early > mid && mid > tail2) {
		t.Errorf("stages not ordered: %v, %v, %v", early, mid, tail2)
	}
}

func TestPredictIntensiveDropsImmediately(t *testing.T) {
	p := xavierGPU()
	x := 120.0
	small := p.Predict(x, 5)
	if small >= 99 {
		t.Errorf("intensive kernel barely slowed at tiny pressure: RS = %v", small)
	}
	// Eq 5 with rateI from Eq 4.
	want := 100 - (x+5-p.TBWDC)*p.RateI(x)
	if math.Abs(small-want) > 1e-9 {
		t.Errorf("intensive RS = %v, want %v", small, want)
	}
	// Flat beyond CBP.
	if a, b := p.Predict(x, p.CBP+1), p.Predict(x, 137); math.Abs(a-b) > 1e-9 {
		t.Errorf("intensive tail not flat: %v vs %v", a, b)
	}
}

func TestRateIExceedsRateN(t *testing.T) {
	p := xavierGPU()
	// For x beyond TBWDC, Eq 4 gives a rate above RateN.
	if got := p.RateI(120); got <= p.RateN {
		t.Errorf("RateI(120) = %v, want > RateN %v", got, p.RateN)
	}
	if got := p.RateI(0); got < 0 {
		t.Errorf("RateI(0) = %v, want ≥ 0", got)
	}
}

func TestPredictPropertyBoundsAndMonotonicity(t *testing.T) {
	p := xavierGPU()
	f := func(xRaw, y1Raw, y2Raw uint16) bool {
		x := float64(xRaw%1400) / 10
		y1 := float64(y1Raw%1400) / 10
		y2 := float64(y2Raw%1400) / 10
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		rs1, rs2 := p.Predict(x, y1), p.Predict(x, y2)
		if rs1 <= 0 || rs1 > 100 || rs2 <= 0 || rs2 > 100 {
			return false
		}
		return rs2 <= rs1+1e-9 // non-increasing in external demand
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Errorf("bounds/monotonicity violated: %v", err)
	}
}

func TestPredictContinuityAtRegionSeams(t *testing.T) {
	p := xavierGPU()
	// Within-region continuity in y: small steps in y cause small RS steps.
	for _, x := range []float64{20, 60, 120} {
		prev := p.Predict(x, 0.5)
		for y := 1.0; y <= 137; y += 0.5 {
			cur := p.Predict(x, y)
			maxStep := math.Max(p.RateN, p.RateI(x))*0.5 + 1e-9
			if math.Abs(cur-prev) > maxStep {
				t.Fatalf("discontinuity at x=%v y=%v: %v → %v", x, y, prev, cur)
			}
			prev = cur
		}
	}
	// Continuity of the normal-region curve at the TBWDC seam.
	x := 60.0
	yb := p.TBWDC - x
	before, after := p.Predict(x, yb-0.01), p.Predict(x, yb+0.01)
	if math.Abs(before-after) > p.MRMC*x/p.PeakBW+0.1 {
		t.Errorf("seam jump at TBWDC: %v → %v", before, after)
	}
}

func TestPredictSlowdown(t *testing.T) {
	p := xavierGPU()
	if got := p.PredictSlowdown(60, 0); got != 1 {
		t.Errorf("slowdown with no contention = %v, want 1", got)
	}
	if got := p.PredictSlowdown(120, 100); got <= 1 {
		t.Errorf("slowdown under heavy contention = %v, want > 1", got)
	}
}

func TestDLANoMinorRegion(t *testing.T) {
	p := xavierDLA()
	// Even tiny demand with moderate pressure should show slowdown.
	rs := p.Predict(25, 30)
	if rs >= 99 {
		t.Errorf("DLA RS = %v under pressure, want visible slowdown", rs)
	}
}

func TestStringIncludesPUAndPlatform(t *testing.T) {
	s := xavierGPU().String()
	if !strings.Contains(s, "GPU") || !strings.Contains(s, "xavier") {
		t.Errorf("String() = %q missing identifiers", s)
	}
}
