package core

import "fmt"

// Phase is one execution phase of a multi-phase program: a fraction of the
// program's standalone execution time spent at a particular bandwidth
// demand. The paper's example is cfd, whose four kernels have one high-BW
// and three medium-BW phases (§3.2 "Handling multi-phase programs", Fig 13).
type Phase struct {
	Name string
	// Weight is the phase's share of standalone execution time; weights
	// should sum to 1 (PredictPhases normalizes).
	Weight float64
	// DemandGBps is the phase's standalone bandwidth demand.
	DemandGBps float64
}

// PredictPhases predicts the whole-program achieved relative speed under
// external demand y by predicting each phase separately and aggregating by
// standalone execution-time share: each phase's time dilates by 100/RS_i,
// so the program's co-run time is Σ wᵢ·(100/RSᵢ) and the program-level
// relative speed is the weighted harmonic mean of the phase speeds.
//
//pccs:hotpath multi-phase predict path: two passes of pure arithmetic; the fmt.Errorf validation exits below are cold and individually allowed
func (p Params) PredictPhases(phases []Phase, y float64) (float64, error) {
	if len(phases) == 0 {
		//pccs:allow-allocbudget cold validation exit, not the per-call loop
		return 0, fmt.Errorf("pccs: no phases")
	}
	total := 0.0
	for _, ph := range phases {
		if ph.Weight < 0 {
			//pccs:allow-allocbudget cold validation exit, not the per-call loop
			return 0, fmt.Errorf("pccs: phase %q has negative weight", ph.Name)
		}
		total += ph.Weight
	}
	if total <= 0 {
		//pccs:allow-allocbudget cold validation exit, not the per-call loop
		return 0, fmt.Errorf("pccs: phase weights sum to zero")
	}
	dilation := 0.0
	for _, ph := range phases {
		rs := p.Predict(ph.DemandGBps, y)
		dilation += (ph.Weight / total) * (100 / rs)
	}
	return 100 / dilation, nil
}

// AverageDemand collapses the phases to a single time-weighted average
// bandwidth demand — the naive alternative the paper evaluates in Fig 13a,
// which underestimates slowdown because high-BW phases suffer more than the
// average suggests.
func AverageDemand(phases []Phase) float64 {
	total, sum := 0.0, 0.0
	for _, ph := range phases {
		total += ph.Weight
		sum += ph.Weight * ph.DemandGBps
	}
	if total == 0 {
		return 0
	}
	return sum / total
}
