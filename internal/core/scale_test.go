package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScaleLinearInRatio(t *testing.T) {
	p := xavierGPU()
	s := p.Scale(0.5)
	checks := []struct {
		name      string
		got, want float64
	}{
		{"NormalBW", s.NormalBW, p.NormalBW * 0.5},
		{"IntensiveBW", s.IntensiveBW, p.IntensiveBW * 0.5},
		{"MRMC", s.MRMC, p.MRMC * 0.5},
		{"CBP", s.CBP, p.CBP * 0.5},
		{"TBWDC", s.TBWDC, p.TBWDC * 0.5},
		{"PeakBW", s.PeakBW, p.PeakBW * 0.5},
		{"RateN", s.RateN, p.RateN / 0.5},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled params invalid: %v", err)
	}
}

func TestScaleRoundTripIsIdentity(t *testing.T) {
	p := xavierGPU()
	f := func(rRaw uint16) bool {
		r := 0.25 + float64(rRaw%200)/100 // ratio ∈ [0.25, 2.25)
		s := p.Scale(r).Scale(1 / r)
		eq := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
		return eq(s.NormalBW, p.NormalBW) && eq(s.IntensiveBW, p.IntensiveBW) &&
			eq(s.MRMC, p.MRMC) && eq(s.CBP, p.CBP) && eq(s.TBWDC, p.TBWDC) &&
			eq(s.PeakBW, p.PeakBW) && eq(s.RateN, p.RateN)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Errorf("scale round trip not identity: %v", err)
	}
}

func TestScaleInvalidRatioIsNoop(t *testing.T) {
	p := xavierGPU()
	if s := p.Scale(0); s != p {
		t.Error("Scale(0) should be a no-op")
	}
	if s := p.Scale(-1); s != p {
		t.Error("Scale(-1) should be a no-op")
	}
}

func TestScalePreservesDropPredictionsAtScaledPoints(t *testing.T) {
	// The point of linear scaling: in the normal and intensive regions the
	// predicted reduction at proportionally scaled (x, y) is preserved —
	// region boundaries, TBWDC and CBP scale with the ratio while RateN
	// scales inversely. (The minor region's Eq-2 reduction scales by the
	// ratio instead, because the paper scales MRMC linearly; see Table 5.)
	p := xavierGPU()
	f := func(xRaw, yRaw, rRaw uint16) bool {
		x := float64(xRaw%1200) / 10
		y := float64(yRaw%1200) / 10
		r := 0.5 + float64(rRaw%100)/100
		if p.Region(x) == Minor {
			return true
		}
		s := p.Scale(r)
		if s.Region(x*r) != p.Region(x) {
			return false // boundaries must scale with the operating point
		}
		// Decompose: the near-linear drop term is invariant under scaling
		// while the minor-level flat term scales by r (MRMC scaling). The
		// scaled prediction must be the dominating one of the two.
		yEff := math.Min(y, p.CBP)
		drop := math.Max((x+yEff-p.TBWDC)*p.RateN, 0)
		if p.Region(x) == Intensive {
			drop = math.Max((x+yEff-p.TBWDC)*p.RateI(x), 0)
		}
		minor := 0.0
		if p.Region(x) == Normal {
			minor = (p.MRMC * x / p.PeakBW) * r
		}
		wantRed := math.Max(drop, minor)
		rs := 100 - wantRed
		if rs < 1 {
			rs = 1
		}
		if y <= 0 {
			rs = 100
		}
		b := s.Predict(x*r, y*r)
		return math.Abs(b-rs) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Errorf("scaled prediction mismatch: %v", err)
	}
}

func TestScaledMinorReductionScalesWithRatio(t *testing.T) {
	p := xavierGPU()
	x, r := 20.0, 0.75
	orig := 100 - p.Predict(x, 30)
	scaled := 100 - p.Scale(r).Predict(x*r, 30*r)
	if math.Abs(scaled-orig*r) > 1e-9 {
		t.Errorf("minor reduction = %v, want %v (ratio-scaled)", scaled, orig*r)
	}
}
