// Package core implements the paper's primary contribution: the
// three-region interference-conscious slowdown model (PCCS, §3).
//
// A model instance is processor-centric: it characterizes one processing
// unit of one SoC. Given the bandwidth demand x of the kernel on that PU
// (its standalone bandwidth demand) and the total external bandwidth demand
// y from kernels on the other PUs, the model predicts the achieved relative
// speed RS — the percentage of the kernel's standalone speed that survives
// co-location.
package core

import (
	"fmt"
	"math"
)

// Region classifies a kernel by its own bandwidth demand (paper Eq. 1).
type Region int

const (
	// Minor contention: demand low enough that external pressure has
	// minimal effect (Fig. 3a).
	Minor Region = iota
	// Normal contention: medium demand; the speed curve is flat, then
	// drops near-linearly, then flattens at the contention balance point
	// (Fig. 3b).
	Normal
	// Intensive contention: demand so high that even small external
	// pressure causes significant slowdown (Fig. 3c).
	Intensive
)

func (r Region) String() string {
	switch r {
	case Minor:
		return "minor"
	case Normal:
		return "normal"
	case Intensive:
		return "intensive"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Params are the PU-specific parameters of a PCCS model (paper Table 4).
// All bandwidths are in GB/s; MRMC is in percent; RateN is in percent per
// GB/s.
type Params struct {
	// PU names the processing unit the model characterizes.
	PU string
	// Platform names the SoC the model was constructed on.
	Platform string
	// Backend names the simulation-backend family the model was
	// constructed on ("virtual-soc", "chiplet", "pim", ...). Empty in
	// legacy artifacts and means the default virtual-SoC backend.
	Backend string `json:",omitempty"`

	// NormalBW separates the minor and normal contention regions.
	NormalBW float64
	// IntensiveBW separates the normal and intensive contention regions.
	IntensiveBW float64
	// MRMC is the maximum reduction of minor contention: the slowdown (in
	// percent) observed for the largest minor-region kernel under the
	// largest external pressure.
	MRMC float64
	// CBP is the contention balance point: the external demand beyond
	// which the speed curve stays flat (the fairness-control equilibrium).
	CBP float64
	// TBWDC is the total bandwidth demand with contention: the x+y level
	// at which a normal-region curve enters its dropping phase.
	TBWDC float64
	// RateN is the reduction rate in the normal contention region.
	RateN float64
	// PeakBW is the theoretical peak bandwidth of the whole SoC.
	PeakBW float64
}

// Validate reports whether the parameters describe a usable model.
func (p Params) Validate() error {
	switch {
	case p.PeakBW <= 0:
		return fmt.Errorf("pccs: peak bandwidth must be positive, got %v", p.PeakBW)
	case p.NormalBW < 0:
		return fmt.Errorf("pccs: negative normal BW %v", p.NormalBW)
	case p.IntensiveBW < p.NormalBW:
		return fmt.Errorf("pccs: intensive BW %v below normal BW %v", p.IntensiveBW, p.NormalBW)
	case p.MRMC < 0 || p.MRMC > 100:
		return fmt.Errorf("pccs: MRMC %v out of [0,100]", p.MRMC)
	case p.CBP <= 0:
		return fmt.Errorf("pccs: CBP must be positive, got %v", p.CBP)
	case p.RateN < 0:
		return fmt.Errorf("pccs: negative RateN %v", p.RateN)
	case math.IsNaN(p.NormalBW + p.IntensiveBW + p.MRMC + p.CBP + p.TBWDC + p.RateN + p.PeakBW):
		return fmt.Errorf("pccs: NaN parameter in %+v", p)
	}
	return nil
}

// Region classifies a kernel with standalone bandwidth demand x (Eq. 1).
//
//pccs:hotpath called per prediction; branch-only classification
func (p Params) Region(x float64) Region {
	switch {
	case x <= p.NormalBW:
		return Minor
	case x <= p.IntensiveBW:
		return Normal
	default:
		return Intensive
	}
}

// RateI is the reduction rate of the intensive contention region for a
// kernel with demand x, derived from the normal-region rate by extending
// the performance-reduction curve (paper Eq. 4).
//
//pccs:hotpath called per intensive-region prediction; pure arithmetic
func (p Params) RateI(x float64) float64 {
	if p.CBP <= 0 {
		return p.RateN
	}
	r := p.RateN * (x + p.CBP - p.TBWDC) / p.CBP
	if r < 0 {
		return 0
	}
	return r
}

// Predict returns the achieved relative speed, in percent of standalone
// speed, for a kernel with standalone bandwidth demand x GB/s on this PU
// under total external bandwidth demand y GB/s (Eqs. 2, 3, 5).
//
// The result is clamped to (0, 100]: a co-run cannot speed a kernel up, and
// the fairness control of the memory controller guarantees forward
// progress. With no external demand the kernel runs standalone (RS = 100).
//
//pccs:hotpath the uncached predict kernel: pure arithmetic, zero allocations (ROADMAP item 3; enforced by allocbudget + TestPredictPathAllocs)
func (p Params) Predict(x, y float64) float64 {
	if x < 0 {
		x = 0
	}
	if y <= 0 {
		return 100
	}
	var reduction float64
	switch p.Region(x) {
	case Minor:
		reduction = p.minorReduction(x)
	case Normal:
		// Piecewise Eq. 3, expressed as the dominating reduction so the
		// curve is continuous and monotone in y: the flat segment at the
		// minor-region level until x+y crosses TBWDC, the near-linear
		// drop, and the flat tail beyond the contention balance point.
		yEff := math.Min(y, p.CBP)
		drop := (x + yEff - p.TBWDC) * p.RateN
		reduction = math.Max(p.minorReduction(x), math.Max(drop, 0))
	case Intensive:
		yEff := math.Min(y, p.CBP)
		drop := (x + yEff - p.TBWDC) * p.RateI(x)
		reduction = math.Max(drop, 0)
	}
	rs := 100 - reduction
	if rs < 1 {
		rs = 1
	}
	if rs > 100 {
		rs = 100
	}
	return rs
}

// minorReduction is Eq. 2's reduction term: MRMC scaled by the kernel's own
// demand relative to the SoC peak.
//
//pccs:hotpath called per prediction; one multiply and divide
func (p Params) minorReduction(x float64) float64 {
	return p.MRMC * x / p.PeakBW
}

// PredictSlowdown returns the predicted co-run slowdown factor
// (standalone-time / co-run-time reciprocal): slowdown = 100/RS ≥ 1.
//
//pccs:hotpath slowdown is one division on top of Predict
func (p Params) PredictSlowdown(x, y float64) float64 {
	return 100 / p.Predict(x, y)
}

// String renders the parameters in the layout of the paper's Table 7.
func (p Params) String() string {
	return fmt.Sprintf(
		"PCCS[%s/%s: NormalBW=%.1f IntensiveBW=%.1f MRMC=%.1f%% CBP=%.1f TBWDC=%.1f RateN=%.3f%%/GBps Peak=%.1f]",
		p.Platform, p.PU, p.NormalBW, p.IntensiveBW, p.MRMC, p.CBP, p.TBWDC, p.RateN, p.PeakBW)
}
