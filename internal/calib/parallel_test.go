package calib

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// serialSweep is the pre-executor reference implementation: one simulation
// at a time, straight on the platform. The parallel sweep must reproduce
// its matrix bit for bit.
func serialSweep(p *soc.Platform, cfg SweepConfig) (*Matrix, error) {
	m := &Matrix{PeakBW: p.PeakGBps(), PU: p.PUs[cfg.TargetPU].Name, Platform: p.Name}
	m.ExtBW = append(m.ExtBW, cfg.ExtGBps...)
	for _, c := range cfg.Calibrators {
		kernel := soc.Kernel{
			Name:        c.Name,
			DemandGBps:  c.DemandGBps,
			RunLines:    c.RunLines,
			Outstanding: c.Outstanding,
			Streams:     c.Streams,
		}
		alone, err := p.Standalone(cfg.TargetPU, kernel, cfg.Run)
		if err != nil {
			return nil, err
		}
		if n := len(m.StdBW); n > 0 && alone.AchievedGBps < m.StdBW[n-1]*1.02 {
			continue
		}
		m.StdBW = append(m.StdBW, alone.AchievedGBps)
		row := make([]float64, 0, len(cfg.ExtGBps))
		for _, ext := range cfg.ExtGBps {
			out, err := p.Run(soc.Placement{
				cfg.TargetPU:   kernel,
				cfg.PressurePU: soc.ExternalPressure(ext),
			}, cfg.Run)
			if err != nil {
				return nil, err
			}
			rs := 100.0
			if alone.AchievedGBps > 0 {
				rs = 100 * out.Results[cfg.TargetPU].AchievedGBps / alone.AchievedGBps
			}
			if rs > 100 {
				rs = 100
			}
			row = append(row, rs)
		}
		m.Rela = append(m.Rela, row)
	}
	return m, m.Validate()
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	p := soc.VirtualXavier()
	cfg := miniSweepConfig(p, 1, 0)

	want, err := serialSweep(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := SweepContext(context.Background(), simrun.New(workers), p, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: parallel matrix differs from serial\ngot:  %+v\nwant: %+v",
				workers, got, want)
		}
	}
}

func TestSweepSharedExecutorMemoizesStandalone(t *testing.T) {
	p := soc.VirtualXavier()
	cfg := miniSweepConfig(p, 1, 0)
	ex := simrun.New(2)
	if _, err := SweepContext(context.Background(), ex, p, cfg); err != nil {
		t.Fatal(err)
	}
	entries := ex.Cache.Len()
	if entries == 0 {
		t.Fatal("sweep bypassed the standalone memo cache")
	}
	// A second identical sweep on the same executor must add no entries.
	if _, err := SweepContext(context.Background(), ex, p, cfg); err != nil {
		t.Fatal(err)
	}
	if got := ex.Cache.Len(); got != entries {
		t.Errorf("repeat sweep grew the cache: %d -> %d entries", entries, got)
	}
}

func TestSweepCancellation(t *testing.T) {
	p := soc.VirtualXavier()
	cfg := miniSweepConfig(p, 1, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := SweepContext(ctx, nil, p, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled sweep took %s", elapsed)
	}
}

// BenchmarkConstructPU is the calibration wall-clock baseline: a full
// ConstructPU of the Xavier GPU with short windows, serially (one worker)
// and on the full pool. The parallel/serial ratio is the headline speedup
// of the executor refactor; CI runs this as a smoke step.
func BenchmarkConstructPU(b *testing.B) {
	rc := soc.RunConfig{WarmupCycles: 100_000, MeasureCycles: 100_000}
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := soc.VirtualXavier()
				if _, _, err := ConstructPUContext(context.Background(), simrun.New(workers), p, 1, rc, DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("serial", bench(1))
	b.Run("parallel", bench(runtime.GOMAXPROCS(0)))
}
