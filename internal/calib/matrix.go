// Package calib implements the processor-centric model construction of the
// PCCS methodology (paper §3.2): sweep calibrator kernels on the target PU
// against a ladder of external bandwidth demands, record the achieved
// relative speeds into a matrix, and extract the model parameters with the
// paper's five-step analysis.
package calib

import (
	"fmt"
	"sort"
)

// Matrix is the rela[n][m] measurement of §3.2: Rela[i][j] is the achieved
// relative speed (percent) of the i-th smallest calibrator kernel on the
// target PU under the j-th smallest external bandwidth demand.
type Matrix struct {
	// StdBW[i] is the standalone bandwidth demand (GB/s) of calibrator i,
	// ascending.
	StdBW []float64
	// ExtBW[j] is the external bandwidth demand ladder (GB/s), ascending.
	ExtBW []float64
	// Rela[i][j] is the achieved relative speed in percent.
	Rela [][]float64
	// PeakBW is the SoC's theoretical peak bandwidth (GB/s).
	PeakBW float64
	// PU and Platform label the measurement.
	PU, Platform string
}

// Validate checks the matrix for shape and ordering.
func (m *Matrix) Validate() error {
	n, cols := len(m.StdBW), len(m.ExtBW)
	if n == 0 || cols == 0 {
		return fmt.Errorf("calib: empty matrix (%d×%d)", n, cols)
	}
	if len(m.Rela) != n {
		return fmt.Errorf("calib: %d rows for %d calibrators", len(m.Rela), n)
	}
	for i, row := range m.Rela {
		if len(row) != cols {
			return fmt.Errorf("calib: row %d has %d cols, want %d", i, len(row), cols)
		}
		for j, v := range row {
			if v < 0 || v > 100.5 {
				return fmt.Errorf("calib: rela[%d][%d] = %v out of range", i, j, v)
			}
		}
	}
	if !sort.Float64sAreSorted(m.StdBW) {
		return fmt.Errorf("calib: StdBW not ascending")
	}
	if !sort.Float64sAreSorted(m.ExtBW) {
		return fmt.Errorf("calib: ExtBW not ascending")
	}
	if m.PeakBW <= 0 {
		return fmt.Errorf("calib: non-positive peak BW")
	}
	return nil
}

// Reduction returns 100 − Rela[i][j], the speed reduction in percent.
//
//pccs:hotpath called from every smoothing/extraction inner loop over the matrix
func (m *Matrix) Reduction(i, j int) float64 { return 100 - m.Rela[i][j] }

// smoothedReduction returns the row of reductions smoothed with a centered
// three-point moving average — the noise filter of the robust extraction.
func (m *Matrix) smoothedReduction(i int) []float64 {
	cols := len(m.ExtBW)
	out := make([]float64, cols)
	for j := 0; j < cols; j++ {
		sum, cnt := 0.0, 0
		for k := j - 1; k <= j+1; k++ {
			if k >= 0 && k < cols {
				sum += m.Reduction(i, k)
				cnt++
			}
		}
		out[j] = sum / float64(cnt)
	}
	return out
}
