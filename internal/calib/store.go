package calib

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/processorcentricmodel/pccs/internal/core"
)

// ModelSet is a bundle of constructed PCCS models, keyed "platform/pu"
// (e.g. "virtual-xavier/GPU"). Construction is a one-time cost per SoC, so
// the repository ships the constructed parameters as JSON artifacts —
// exactly how the methodology is meant to be used: calibrate once on the
// device, then predict arbitrary workloads.
type ModelSet map[string]core.Params

// Key builds the canonical lookup key.
func Key(platform, pu string) string { return platform + "/" + pu }

// Get fetches the model for a platform PU.
func (s ModelSet) Get(platform, pu string) (core.Params, error) {
	p, ok := s[Key(platform, pu)]
	if !ok {
		return core.Params{}, fmt.Errorf("calib: no model for %s", Key(platform, pu))
	}
	return p, nil
}

// Put stores a model under its own platform/PU key.
func (s ModelSet) Put(p core.Params) { s[Key(p.Platform, p.PU)] = p }

// Save writes the set as indented JSON.
func (s ModelSet) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("calib: marshal models: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("calib: create model dir: %w", err)
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a model set and validates every entry.
func Load(path string) (ModelSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("calib: read models: %w", err)
	}
	var s ModelSet
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("calib: parse models %s: %w", path, err)
	}
	for k, p := range s {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("calib: model %s: %w", k, err)
		}
		if Key(p.Platform, p.PU) != k {
			return nil, fmt.Errorf("calib: model key %q does not match contents %s", k, Key(p.Platform, p.PU))
		}
	}
	return s, nil
}
