package calib

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/processorcentricmodel/pccs/internal/core"
)

// ModelSet is a bundle of constructed PCCS models, keyed "platform/pu"
// (e.g. "virtual-xavier/GPU"). Construction is a one-time cost per SoC, so
// the repository ships the constructed parameters as JSON artifacts —
// exactly how the methodology is meant to be used: calibrate once on the
// device, then predict arbitrary workloads.
type ModelSet map[string]core.Params

// Key builds the canonical lookup key.
func Key(platform, pu string) string { return platform + "/" + pu }

// Get fetches the model for a platform PU.
func (s ModelSet) Get(platform, pu string) (core.Params, error) {
	p, ok := s[Key(platform, pu)]
	if !ok {
		return core.Params{}, fmt.Errorf("calib: no model for %s", Key(platform, pu))
	}
	return p, nil
}

// Put stores a model under its own platform/PU key.
func (s ModelSet) Put(p core.Params) { s[Key(p.Platform, p.PU)] = p }

// envelopeFormat tags the checksummed artifact layout written by Save.
const envelopeFormat = "pccs-models/v2"

// envelope is the on-disk artifact: the model set plus a SHA-256 of its
// canonical (compacted) JSON, so Load detects silent corruption — a torn
// write, a bad block, a hand-edit gone wrong — instead of serving from a
// damaged model. Legacy artifacts (a bare ModelSet object) still load.
type envelope struct {
	Format string          `json:"format"`
	SHA256 string          `json:"sha256"`
	Models json.RawMessage `json:"models"`
}

// checksum is the hex SHA-256 of the compacted models JSON, so formatting
// (indentation) never shifts the sum.
func checksum(models []byte) (string, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, models); err != nil {
		return "", fmt.Errorf("calib: canonicalize models: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// Save writes the set as an indented, checksummed JSON envelope,
// crash-safely: the bytes go to a temp file in the destination directory,
// are fsynced, and the temp file is renamed over the target, so a crash
// mid-save leaves either the old artifact or the new one — never a
// truncated hybrid.
func (s ModelSet) Save(path string) error {
	models, err := json.MarshalIndent(s, "  ", "  ")
	if err != nil {
		return fmt.Errorf("calib: marshal models: %w", err)
	}
	sum, err := checksum(models)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(envelope{
		Format: envelopeFormat,
		SHA256: sum,
		Models: models,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("calib: marshal artifact: %w", err)
	}
	dir := filepath.Dir(path)
	if dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("calib: create model dir: %w", err)
		}
	}
	tmp, err := os.CreateTemp(dir, ".pccs-models-*.tmp")
	if err != nil {
		return fmt.Errorf("calib: create temp artifact: %w", err)
	}
	tmpName := tmp.Name()
	installed := false
	defer func() {
		if !installed {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("calib: write models: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("calib: sync models: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("calib: chmod models: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("calib: close models: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		installed = true // nothing left to clean up
		return fmt.Errorf("calib: install models: %w", err)
	}
	installed = true
	return nil
}

// Load reads a model artifact — the checksummed v2 envelope or a legacy
// bare ModelSet — verifies the checksum when present, and validates every
// entry. Truncated or corrupt JSON is rejected with a clear error rather
// than a partial decode.
func Load(path string) (ModelSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("calib: read models: %w", err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("calib: model artifact %s is empty (truncated write?)", path)
	}
	models := data
	var env envelope
	if err := json.Unmarshal(data, &env); err == nil && env.Format != "" {
		if env.Format != envelopeFormat {
			return nil, fmt.Errorf("calib: model artifact %s has unknown format %q", path, env.Format)
		}
		if len(env.Models) == 0 {
			return nil, fmt.Errorf("calib: model artifact %s has no models payload", path)
		}
		sum, err := checksum(env.Models)
		if err != nil {
			return nil, fmt.Errorf("calib: model artifact %s: %w", path, err)
		}
		if sum != env.SHA256 {
			return nil, fmt.Errorf("calib: model artifact %s failed checksum validation (corrupt or partially written): want %s, have %s",
				path, env.SHA256, sum)
		}
		models = env.Models
	}
	var s ModelSet
	if err := json.Unmarshal(models, &s); err != nil {
		return nil, fmt.Errorf("calib: parse models %s (truncated or corrupt JSON): %w", path, err)
	}
	for k, p := range s {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("calib: model %s: %w", k, err)
		}
		if Key(p.Platform, p.PU) != k {
			return nil, fmt.Errorf("calib: model key %q does not match contents %s", k, Key(p.Platform, p.PU))
		}
	}
	return s, nil
}
