package calib

import (
	"math"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/core"
)

// syntheticMatrix builds a rela matrix directly from a known model, with
// optional noise, to verify extraction round-trips.
func syntheticMatrix(p core.Params, noise func(i, j int) float64) *Matrix {
	m := &Matrix{PeakBW: p.PeakBW, PU: p.PU, Platform: p.Platform}
	for d := 0.1 * p.PeakBW; d <= p.PeakBW*1.001; d += 0.1 * p.PeakBW {
		m.StdBW = append(m.StdBW, d)
	}
	for e := 0.1 * p.PeakBW; e <= p.PeakBW*1.001; e += 0.1 * p.PeakBW {
		m.ExtBW = append(m.ExtBW, e)
	}
	for i, x := range m.StdBW {
		row := make([]float64, len(m.ExtBW))
		for j, y := range m.ExtBW {
			v := p.Predict(x, y)
			if noise != nil {
				v += noise(i, j)
			}
			if v > 100 {
				v = 100
			}
			if v < 0 {
				v = 0
			}
			row[j] = v
		}
		m.Rela = append(m.Rela, row)
	}
	return m
}

func refModel() core.Params {
	return core.Params{
		PU: "GPU", Platform: "synthetic",
		NormalBW: 41.1, IntensiveBW: 96.0, MRMC: 4.9,
		CBP: 45.3, TBWDC: 87.2, RateN: 0.75, PeakBW: 137,
	}
}

func TestExtractRoundTripNoiseless(t *testing.T) {
	ref := refModel()
	m := syntheticMatrix(ref, nil)
	got, err := Extract(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Boundaries fall on the measurement grid (13.7 GB/s steps), so allow
	// grid-step slack; the intensive boundary is only weakly identifiable
	// from a 10-point ladder (any row with x+ext[0] beyond TBWDC already
	// drops at the first measured pressure), so it gets the widest slack.
	step := 0.1 * ref.PeakBW
	if math.Abs(got.NormalBW-ref.NormalBW) > step {
		t.Errorf("NormalBW = %.1f, want ≈ %.1f", got.NormalBW, ref.NormalBW)
	}
	if got.IntensiveBW < ref.TBWDC-2*step || got.IntensiveBW > ref.IntensiveBW+step {
		t.Errorf("IntensiveBW = %.1f, want within [%.1f, %.1f]",
			got.IntensiveBW, ref.TBWDC-2*step, ref.IntensiveBW+step)
	}
	if math.Abs(got.TBWDC-ref.TBWDC) > step*0.5 {
		t.Errorf("TBWDC = %.1f, want ≈ %.1f", got.TBWDC, ref.TBWDC)
	}
	if math.Abs(got.CBP-ref.CBP) > step*0.5 {
		t.Errorf("CBP = %.1f, want ≈ %.1f", got.CBP, ref.CBP)
	}
	if math.Abs(got.RateN-ref.RateN) > 0.15 {
		t.Errorf("RateN = %.3f, want ≈ %.3f", got.RateN, ref.RateN)
	}
	if math.Abs(got.MRMC-ref.MRMC) > 1 {
		t.Errorf("MRMC = %.2f, want ≈ %.2f", got.MRMC, ref.MRMC)
	}
}

func TestStrictExtractionProducesValidParams(t *testing.T) {
	// Strict mode is paper-literal and fragile by design (the ablation
	// quantifies the accuracy gap); here we only require valid output.
	got, err := Extract(syntheticMatrix(refModel(), nil), Options{Mode: Strict})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("strict params invalid: %v", err)
	}
}

func TestExtractedModelPredictsItsMatrix(t *testing.T) {
	// The real acceptance criterion: the extracted model reproduces the
	// matrix it came from with small mean error.
	ref := refModel()
	noise := func(i, j int) float64 { return 1.5 * math.Sin(float64(3*i+5*j)) }
	m := syntheticMatrix(ref, noise)
	got, err := Extract(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var cnt int
	for i, x := range m.StdBW {
		for j, y := range m.ExtBW {
			sum += math.Abs(got.Predict(x, y) - m.Rela[i][j])
			cnt++
		}
	}
	// The worst cells sit at the relative-speed floor (the reference model
	// drives its largest kernels to RS=1 where measured slopes vanish);
	// 5% mean keeps the model honest everywhere else.
	if mean := sum / float64(cnt); mean > 5 {
		t.Errorf("mean self-prediction error %.2f%%, want ≤ 5%%", mean)
	}
}

func TestExtractDLAShapedMatrix(t *testing.T) {
	// No minor region: even the smallest kernel reduces notably at max
	// pressure, like the DLA (Table 7: Normal BW 0, MRMC NA).
	ref := core.Params{
		PU: "DLA", Platform: "synthetic",
		NormalBW: 0, IntensiveBW: 27.9, MRMC: 0,
		CBP: 71.1, TBWDC: 22.1, RateN: 0.35, PeakBW: 137,
	}
	m := &Matrix{PeakBW: ref.PeakBW, PU: ref.PU, Platform: ref.Platform}
	for d := 5.0; d <= 30; d += 5 {
		m.StdBW = append(m.StdBW, d)
	}
	for e := 13.7; e <= 137.001; e += 13.7 {
		m.ExtBW = append(m.ExtBW, e)
	}
	for _, x := range m.StdBW {
		row := make([]float64, len(m.ExtBW))
		for j, y := range m.ExtBW {
			row[j] = ref.Predict(x, y)
		}
		m.Rela = append(m.Rela, row)
	}
	got, err := Extract(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got.NormalBW != 0 {
		t.Errorf("NormalBW = %v, want 0 (no minor region)", got.NormalBW)
	}
	if got.MRMC != 0 {
		t.Errorf("MRMC = %v, want 0", got.MRMC)
	}
}

func TestExtractErrorsOnUnstressedLadder(t *testing.T) {
	// A matrix with no visible contention (all ≈100%) cannot be modeled.
	m := &Matrix{PeakBW: 137, PU: "CPU", Platform: "synthetic"}
	m.StdBW = []float64{5, 10}
	m.ExtBW = []float64{10, 20}
	m.Rela = [][]float64{{100, 100}, {100, 99.9}}
	if _, err := Extract(m, DefaultOptions()); err == nil {
		t.Error("extraction on unstressed matrix should fail")
	}
}

func TestMatrixValidate(t *testing.T) {
	ok := syntheticMatrix(refModel(), nil)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	cases := []func(*Matrix){
		func(m *Matrix) { m.StdBW = nil },
		func(m *Matrix) { m.ExtBW = nil },
		func(m *Matrix) { m.Rela = m.Rela[:3] },
		func(m *Matrix) { m.Rela[2] = m.Rela[2][:1] },
		func(m *Matrix) { m.Rela[0][0] = -1 },
		func(m *Matrix) { m.Rela[0][0] = 200 },
		func(m *Matrix) { m.StdBW[0], m.StdBW[1] = m.StdBW[1], m.StdBW[0] },
		func(m *Matrix) { m.ExtBW[0], m.ExtBW[1] = m.ExtBW[1], m.ExtBW[0] },
		func(m *Matrix) { m.PeakBW = 0 },
	}
	for i, mutate := range cases {
		m := syntheticMatrix(refModel(), nil)
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestFirstNotable(t *testing.T) {
	row := []float64{1, 6, 2, 7, 8, 9}
	if got := firstNotable(row, 5, false); got != 1 {
		t.Errorf("non-sustained = %d, want 1", got)
	}
	if got := firstNotable(row, 5, true); got != 3 {
		t.Errorf("sustained = %d, want 3 (skips the transient dip)", got)
	}
	if got := firstNotable(row, 50, true); got != -1 {
		t.Errorf("unreachable threshold = %d, want -1", got)
	}
}

func TestModeString(t *testing.T) {
	if Robust.String() != "robust" || Strict.String() != "strict" {
		t.Error("mode names wrong")
	}
}
