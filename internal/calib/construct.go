package calib

import (
	"context"
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// PressurePUFor picks the PU used to generate external demand when
// characterizing target, following the paper's setup: the GPU pressures the
// CPU model, and the CPU pressures the GPU and DLA models (§4.1.1). By the
// source-obliviousness insight the choice is immaterial; it just needs to be
// a different PU able to generate enough traffic.
func PressurePUFor(b soc.Backend, target int) (int, error) {
	pus := b.PUList()
	want := soc.CPU
	if pus[target].Kind == soc.CPU || pus[target].Kind == soc.Core {
		want = soc.GPU
	}
	for i, pu := range pus {
		if i != target && pu.Kind == want {
			return i, nil
		}
	}
	for i := range pus {
		if i != target {
			return i, nil
		}
	}
	return -1, fmt.Errorf("calib: platform %s has no pressure PU for target %d", b.PlatformName(), target)
}

// ConstructPU builds the PCCS model for one PU of a platform: sweep the
// calibrator grid, then extract parameters.
func ConstructPU(b soc.Backend, target int, rc soc.RunConfig, opt Options) (core.Params, *Matrix, error) {
	return ConstructPUContext(context.Background(), nil, b, target, rc, opt)
}

// ConstructPUContext is ConstructPU with cancellation and a shared executor
// (nil for a private GOMAXPROCS pool): the sweep's grid points fan out over
// the pool and the executor's memo cache carries standalone measurements
// across sweeps.
func ConstructPUContext(ctx context.Context, ex *simrun.Executor, b soc.Backend, target int, rc soc.RunConfig, opt Options) (core.Params, *Matrix, error) {
	pressure, err := PressurePUFor(b, target)
	if err != nil {
		return core.Params{}, nil, err
	}
	cfg := DefaultSweep(b, target, pressure)
	cfg.Run = rc
	m, err := SweepContext(ctx, ex, b, cfg)
	if err != nil {
		return core.Params{}, nil, err
	}
	params, err := Extract(m, opt)
	if err != nil {
		return core.Params{}, nil, err
	}
	params.Backend = soc.BackendFamilyOf(b)
	return params, m, nil
}

// ConstructPlatform builds models for every PU of the platform.
func ConstructPlatform(b soc.Backend, rc soc.RunConfig, opt Options) (ModelSet, error) {
	return ConstructPlatformContext(context.Background(), nil, b, rc, opt)
}

// ConstructPlatformContext builds models for every PU on one shared
// executor. PUs are constructed in order (extraction needs a full matrix per
// PU) but every sweep's grid fans out over the pool, and the shared memo
// cache serves standalone points common to several sweeps.
func ConstructPlatformContext(ctx context.Context, ex *simrun.Executor, b soc.Backend, rc soc.RunConfig, opt Options) (ModelSet, error) {
	if ex == nil {
		ex = simrun.New(0)
	}
	set := ModelSet{}
	for i := range b.PUList() {
		params, _, err := ConstructPUContext(ctx, ex, b, i, rc, opt)
		if err != nil {
			return nil, fmt.Errorf("calib: constructing %s/%s: %w", b.PlatformName(), b.PUList()[i].Name, err)
		}
		set.Put(params)
	}
	return set, nil
}
