package calib

import (
	"context"
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// PressurePUFor picks the PU used to generate external demand when
// characterizing target, following the paper's setup: the GPU pressures the
// CPU model, and the CPU pressures the GPU and DLA models (§4.1.1). By the
// source-obliviousness insight the choice is immaterial; it just needs to be
// a different PU able to generate enough traffic.
func PressurePUFor(p *soc.Platform, target int) (int, error) {
	want := soc.CPU
	if p.PUs[target].Kind == soc.CPU || p.PUs[target].Kind == soc.Core {
		want = soc.GPU
	}
	for i, pu := range p.PUs {
		if i != target && pu.Kind == want {
			return i, nil
		}
	}
	for i := range p.PUs {
		if i != target {
			return i, nil
		}
	}
	return -1, fmt.Errorf("calib: platform %s has no pressure PU for target %d", p.Name, target)
}

// ConstructPU builds the PCCS model for one PU of a platform: sweep the
// calibrator grid, then extract parameters.
func ConstructPU(p *soc.Platform, target int, rc soc.RunConfig, opt Options) (core.Params, *Matrix, error) {
	return ConstructPUContext(context.Background(), nil, p, target, rc, opt)
}

// ConstructPUContext is ConstructPU with cancellation and a shared executor
// (nil for a private GOMAXPROCS pool): the sweep's grid points fan out over
// the pool and the executor's memo cache carries standalone measurements
// across sweeps.
func ConstructPUContext(ctx context.Context, ex *simrun.Executor, p *soc.Platform, target int, rc soc.RunConfig, opt Options) (core.Params, *Matrix, error) {
	pressure, err := PressurePUFor(p, target)
	if err != nil {
		return core.Params{}, nil, err
	}
	cfg := DefaultSweep(p, target, pressure)
	cfg.Run = rc
	m, err := SweepContext(ctx, ex, p, cfg)
	if err != nil {
		return core.Params{}, nil, err
	}
	params, err := Extract(m, opt)
	if err != nil {
		return core.Params{}, nil, err
	}
	return params, m, nil
}

// ConstructPlatform builds models for every PU of the platform.
func ConstructPlatform(p *soc.Platform, rc soc.RunConfig, opt Options) (ModelSet, error) {
	return ConstructPlatformContext(context.Background(), nil, p, rc, opt)
}

// ConstructPlatformContext builds models for every PU on one shared
// executor. PUs are constructed in order (extraction needs a full matrix per
// PU) but every sweep's grid fans out over the pool, and the shared memo
// cache serves standalone points common to several sweeps.
func ConstructPlatformContext(ctx context.Context, ex *simrun.Executor, p *soc.Platform, rc soc.RunConfig, opt Options) (ModelSet, error) {
	if ex == nil {
		ex = simrun.New(0)
	}
	set := ModelSet{}
	for i := range p.PUs {
		params, _, err := ConstructPUContext(ctx, ex, p, i, rc, opt)
		if err != nil {
			return nil, fmt.Errorf("calib: constructing %s/%s: %w", p.Name, p.PUs[i].Name, err)
		}
		set.Put(params)
	}
	return set, nil
}
