package calib

import (
	"context"
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/traffic"
)

// SweepConfig describes one model-construction sweep on a platform.
type SweepConfig struct {
	// TargetPU is the PU being characterized.
	TargetPU int
	// PressurePU generates the external bandwidth demand (the paper uses
	// the GPU to pressure the CPU and the CPU to pressure GPU and DLA —
	// the source-obliviousness insight makes the choice immaterial).
	PressurePU int
	// Calibrators are the target-PU kernels, ascending in demand.
	Calibrators []traffic.Spec
	// ExtGBps is the external demand ladder, ascending.
	ExtGBps []float64
	// Run controls simulation length per grid point.
	Run soc.RunConfig
}

// DefaultSweep builds the standard construction sweep for a platform PU:
// calibrators from 10% to 100% of the SoC peak in 10% steps, external
// demands likewise — mirroring §2.2's characterization grid.
func DefaultSweep(b soc.Backend, targetPU, pressurePU int) SweepConfig {
	peak := b.PeakGBps()
	step := peak / 10
	var ext []float64
	for i := 1; i <= 10; i++ {
		ext = append(ext, step*float64(i))
	}
	arch := b.PUList()[targetPU]
	var cals []traffic.Spec
	for i := 1; i <= 10; i++ {
		d := step * float64(i)
		cals = append(cals, traffic.Spec{
			Name:        fmt.Sprintf("cal-%02.0f", d),
			DemandGBps:  d,
			Outstanding: arch.Outstanding,
			RunLines:    arch.RunLines,
			Streams:     arch.Streams,
		})
	}
	return SweepConfig{
		TargetPU:    targetPU,
		PressurePU:  pressurePU,
		Calibrators: cals,
		ExtGBps:     ext,
		Run:         soc.DefaultRunConfig(),
	}
}

// Sweep measures the rela matrix: each calibrator runs standalone, then
// co-runs against each external demand level; achieved relative speeds fill
// the matrix (§3.2, construction step one).
func Sweep(b soc.Backend, cfg SweepConfig) (*Matrix, error) {
	return SweepContext(context.Background(), nil, b, cfg)
}

// SweepContext is Sweep running on a shared executor: every grid point is
// an independent simulation, so the standalone column and the calibrator ×
// external-demand co-runs fan out over the pool, with standalone points
// served from the executor's memo cache. Results are assembled in grid
// order, so the matrix is identical to the serial sweep's. A nil executor
// uses a private GOMAXPROCS pool.
func SweepContext(ctx context.Context, ex *simrun.Executor, b soc.Backend, cfg SweepConfig) (*Matrix, error) {
	if ex == nil {
		ex = simrun.New(0)
	}
	if cfg.TargetPU == cfg.PressurePU {
		return nil, fmt.Errorf("calib: target and pressure PU are both %d", cfg.TargetPU)
	}
	if cfg.TargetPU < 0 || cfg.TargetPU >= len(b.PUList()) ||
		cfg.PressurePU < 0 || cfg.PressurePU >= len(b.PUList()) {
		return nil, fmt.Errorf("calib: PU indices out of range")
	}
	if len(cfg.Calibrators) == 0 || len(cfg.ExtGBps) == 0 {
		return nil, fmt.Errorf("calib: empty sweep")
	}

	m := &Matrix{
		PeakBW:   b.PeakGBps(),
		PU:       b.PUList()[cfg.TargetPU].Name,
		Platform: b.PlatformName(),
	}
	m.ExtBW = append(m.ExtBW, cfg.ExtGBps...)

	kernels := make([]soc.Kernel, len(cfg.Calibrators))
	for i, c := range cfg.Calibrators {
		kernels[i] = soc.Kernel{
			Name:        c.Name,
			DemandGBps:  c.DemandGBps,
			RunLines:    c.RunLines,
			Outstanding: c.Outstanding,
			Streams:     c.Streams,
		}
	}
	alone, err := ex.StandaloneBatch(ctx, b, cfg.TargetPU, kernels, cfg.Run)
	if err != nil {
		return nil, fmt.Errorf("calib: %w", err)
	}

	// The paper records the *measured* standalone bandwidth as the kernel's
	// demand (§3.2): a latency-limited PU (e.g. the DLA) saturates below
	// the requested rate, so further calibrator levels collapse onto the
	// same measured demand and are skipped. The filter is inherently
	// sequential over the measured ladder and runs on the already-parallel
	// standalone column.
	var kept []int
	for i := range kernels {
		if n := len(m.StdBW); n > 0 && alone[i].AchievedGBps < m.StdBW[n-1]*1.02 {
			continue
		}
		m.StdBW = append(m.StdBW, alone[i].AchievedGBps)
		kept = append(kept, i)
	}

	points := make([]simrun.Point, 0, len(kept)*len(cfg.ExtGBps))
	for _, i := range kept {
		for _, ext := range cfg.ExtGBps {
			points = append(points, simrun.Point{
				Placement: soc.Placement{
					cfg.TargetPU:   kernels[i],
					cfg.PressurePU: soc.ExternalPressure(ext),
				},
				Run: cfg.Run,
			})
		}
	}
	results, err := ex.Execute(ctx, b, points)
	if err != nil {
		return nil, fmt.Errorf("calib: sweep: %w", err)
	}

	for r, i := range kept {
		row := make([]float64, 0, len(cfg.ExtGBps))
		for j, ext := range cfg.ExtGBps {
			res := results[r*len(cfg.ExtGBps)+j]
			if res.Err != nil {
				return nil, fmt.Errorf("calib: corun %s vs %.0f: %w", kernels[i].Name, ext, res.Err)
			}
			rs := 100.0
			if alone[i].AchievedGBps > 0 {
				rs = 100 * res.Outcome.Results[cfg.TargetPU].AchievedGBps / alone[i].AchievedGBps
			}
			if rs > 100 {
				rs = 100
			}
			row = append(row, rs)
		}
		m.Rela = append(m.Rela, row)
	}
	return m, m.Validate()
}
