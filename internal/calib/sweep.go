package calib

import (
	"context"
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/traffic"
)

// SweepConfig describes one model-construction sweep on a platform.
type SweepConfig struct {
	// TargetPU is the PU being characterized.
	TargetPU int
	// PressurePU generates the external bandwidth demand (the paper uses
	// the GPU to pressure the CPU and the CPU to pressure GPU and DLA —
	// the source-obliviousness insight makes the choice immaterial).
	PressurePU int
	// Calibrators are the target-PU kernels, ascending in demand.
	Calibrators []traffic.Spec
	// ExtGBps is the external demand ladder, ascending.
	ExtGBps []float64
	// Run controls simulation length per grid point.
	Run soc.RunConfig
}

// DefaultSweep builds the standard construction sweep for a platform PU:
// calibrators from 10% to 100% of the SoC peak in 10% steps, external
// demands likewise — mirroring §2.2's characterization grid.
func DefaultSweep(b soc.Backend, targetPU, pressurePU int) SweepConfig {
	peak := b.PeakGBps()
	step := peak / 10
	var ext []float64
	for i := 1; i <= 10; i++ {
		ext = append(ext, step*float64(i))
	}
	arch := b.PUList()[targetPU]
	var cals []traffic.Spec
	for i := 1; i <= 10; i++ {
		d := step * float64(i)
		cals = append(cals, traffic.Spec{
			Name:        fmt.Sprintf("cal-%02.0f", d),
			DemandGBps:  d,
			Outstanding: arch.Outstanding,
			RunLines:    arch.RunLines,
			Streams:     arch.Streams,
		})
	}
	return SweepConfig{
		TargetPU:    targetPU,
		PressurePU:  pressurePU,
		Calibrators: cals,
		ExtGBps:     ext,
		Run:         soc.DefaultRunConfig(),
	}
}

// Validate checks the sweep configuration against a backend: distinct,
// in-range PU indices and a non-empty grid.
func (cfg SweepConfig) Validate(b soc.Backend) error {
	if cfg.TargetPU == cfg.PressurePU {
		return fmt.Errorf("calib: target and pressure PU are both %d", cfg.TargetPU)
	}
	if cfg.TargetPU < 0 || cfg.TargetPU >= len(b.PUList()) ||
		cfg.PressurePU < 0 || cfg.PressurePU >= len(b.PUList()) {
		return fmt.Errorf("calib: PU indices out of range")
	}
	if len(cfg.Calibrators) == 0 || len(cfg.ExtGBps) == 0 {
		return fmt.Errorf("calib: empty sweep")
	}
	return nil
}

// SweepKernels materializes the calibrator kernels of a sweep, in grid
// order. Both the single-node sweep and the cluster's lease executor derive
// the plan from this one function, so a point index means the same
// simulation everywhere.
func SweepKernels(cfg SweepConfig) []soc.Kernel {
	kernels := make([]soc.Kernel, len(cfg.Calibrators))
	for i, c := range cfg.Calibrators {
		kernels[i] = soc.Kernel{
			Name:        c.Name,
			DemandGBps:  c.DemandGBps,
			RunLines:    c.RunLines,
			Outstanding: c.Outstanding,
			Streams:     c.Streams,
		}
	}
	return kernels
}

// KeptIndices applies the paper's measured-demand filter to the standalone
// column (§3.2): a latency-limited PU (e.g. the DLA) saturates below the
// requested rate, so further calibrator levels collapse onto the same
// measured demand and are skipped. It is a pure function of the achieved
// standalone bandwidths, so every node of a cluster computes the same kept
// set from the same measurements.
func KeptIndices(aloneGBps []float64) []int {
	var kept []int
	last := 0.0
	for i, achieved := range aloneGBps {
		if len(kept) > 0 && achieved < last*1.02 {
			continue
		}
		last = achieved
		kept = append(kept, i)
	}
	return kept
}

// CorunPoints enumerates the co-run grid — kept calibrators × external
// demand ladder, row-major — as independent simulation points. The
// enumeration order is the lease protocol's contract: point k is
// kept[k/len(ExtGBps)] co-running against ExtGBps[k%len(ExtGBps)] on every
// node, which is what makes a reassembled distributed sweep bit-identical
// to a local one.
func CorunPoints(cfg SweepConfig, kernels []soc.Kernel, kept []int) []simrun.Point {
	points := make([]simrun.Point, 0, len(kept)*len(cfg.ExtGBps))
	for _, i := range kept {
		for _, ext := range cfg.ExtGBps {
			points = append(points, simrun.Point{
				Placement: soc.Placement{
					cfg.TargetPU:   kernels[i],
					cfg.PressurePU: soc.ExternalPressure(ext),
				},
				Run: cfg.Run,
			})
		}
	}
	return points
}

// AssembleMatrix builds the rela matrix from the achieved bandwidths of the
// standalone column and the co-run grid (corunGBps in CorunPoints order).
// The arithmetic lives here — and only here — so a matrix assembled from
// remotely executed leases is bit-identical to the single-node sweep's.
func AssembleMatrix(b soc.Backend, cfg SweepConfig, aloneGBps []float64, kept []int, corunGBps []float64) (*Matrix, error) {
	if want := len(kept) * len(cfg.ExtGBps); len(corunGBps) != want {
		return nil, fmt.Errorf("calib: %d co-run measurements for a %d-point grid", len(corunGBps), want)
	}
	m := &Matrix{
		PeakBW:   b.PeakGBps(),
		PU:       b.PUList()[cfg.TargetPU].Name,
		Platform: b.PlatformName(),
	}
	m.ExtBW = append(m.ExtBW, cfg.ExtGBps...)
	for r, i := range kept {
		m.StdBW = append(m.StdBW, aloneGBps[i])
		row := make([]float64, 0, len(cfg.ExtGBps))
		for j := range cfg.ExtGBps {
			rs := 100.0
			if aloneGBps[i] > 0 {
				rs = 100 * corunGBps[r*len(cfg.ExtGBps)+j] / aloneGBps[i]
			}
			if rs > 100 {
				rs = 100
			}
			row = append(row, rs)
		}
		m.Rela = append(m.Rela, row)
	}
	return m, m.Validate()
}

// Sweep measures the rela matrix: each calibrator runs standalone, then
// co-runs against each external demand level; achieved relative speeds fill
// the matrix (§3.2, construction step one).
func Sweep(b soc.Backend, cfg SweepConfig) (*Matrix, error) {
	return SweepContext(context.Background(), nil, b, cfg)
}

// SweepContext is Sweep running on a shared executor: every grid point is
// an independent simulation, so the standalone column and the calibrator ×
// external-demand co-runs fan out over the pool, with standalone points
// served from the executor's memo cache. Results are assembled in grid
// order, so the matrix is identical to the serial sweep's. A nil executor
// uses a private GOMAXPROCS pool.
//
// The stages — SweepKernels, StandaloneBatch, KeptIndices, CorunPoints,
// AssembleMatrix — are exported individually because the cluster coordinator
// runs exactly the same pipeline with the two measurement batches farmed out
// to peer nodes as leases; sharing the code is what makes the distributed
// matrix bit-identical to this one.
func SweepContext(ctx context.Context, ex *simrun.Executor, b soc.Backend, cfg SweepConfig) (*Matrix, error) {
	if ex == nil {
		ex = simrun.New(0)
	}
	if err := cfg.Validate(b); err != nil {
		return nil, err
	}

	kernels := SweepKernels(cfg)
	alone, err := ex.StandaloneBatch(ctx, b, cfg.TargetPU, kernels, cfg.Run)
	if err != nil {
		return nil, fmt.Errorf("calib: %w", err)
	}
	aloneGBps := make([]float64, len(alone))
	for i, r := range alone {
		aloneGBps[i] = r.AchievedGBps
	}
	kept := KeptIndices(aloneGBps)

	points := CorunPoints(cfg, kernels, kept)
	results, err := ex.Execute(ctx, b, points)
	if err != nil {
		return nil, fmt.Errorf("calib: sweep: %w", err)
	}
	corunGBps := make([]float64, len(results))
	for k, res := range results {
		if res.Err != nil {
			return nil, fmt.Errorf("calib: corun %s vs %.0f: %w",
				kernels[kept[k/len(cfg.ExtGBps)]].Name, cfg.ExtGBps[k%len(cfg.ExtGBps)], res.Err)
		}
		corunGBps[k] = res.Outcome.Results[cfg.TargetPU].AchievedGBps
	}
	return AssembleMatrix(b, cfg, aloneGBps, kept, corunGBps)
}
