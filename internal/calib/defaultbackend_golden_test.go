package calib

import (
	"context"
	"fmt"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/traffic"
)

// TestDefaultBackendGolden pins the default virtual-SoC backend to exact
// pre-refactor numbers: the backend-interface seam must not perturb a
// single bit of the simulation results on the platforms every existing
// figure is built from. The values were captured from the concrete
// *soc.Platform code path before the Backend interface existed; if this
// test fails, a "pure refactor" changed the physics.
func calibrator(arch soc.PU, demand float64) traffic.Spec {
	return traffic.Spec{
		Name:        fmt.Sprintf("cal-%02.0f", demand),
		DemandGBps:  demand,
		Outstanding: arch.Outstanding,
		RunLines:    arch.RunLines,
		Streams:     arch.Streams,
	}
}

func TestDefaultBackendGolden(t *testing.T) {
	p := soc.VirtualXavier()
	rc := soc.QuickRunConfig()

	// One co-run: a 30 GB/s kernel on the CPU against 60 GB/s of GPU
	// pressure.
	pl := soc.Placement{
		0: soc.Kernel{Name: "golden-cpu", DemandGBps: 30},
		1: soc.ExternalPressure(60),
	}
	out, err := p.RunContext(context.Background(), pl, rc)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	got := fmt.Sprintf("cpu=%.9g gpu=%.9g eff=%.9g rowhit=%.9g",
		out.Results[0].AchievedGBps, out.Results[1].AchievedGBps,
		out.EffectiveGBps, out.RowHitRate)
	const wantCorun = "cpu=29.9507328 gpu=60.0134054 eff=89.9395661 rowhit=0.747639791"
	if got != wantCorun {
		t.Errorf("co-run drifted from the pre-refactor baseline:\n got  %s\n want %s", got, wantCorun)
	}

	// A tiny calibration sweep: 2 calibrators x 2 external-demand rungs on
	// the GPU under CPU pressure, through the full parallel executor path.
	cfg := SweepConfig{
		TargetPU:   1,
		PressurePU: 0,
		Calibrators: []traffic.Spec{
			calibrator(p.PUs[1], 20),
			calibrator(p.PUs[1], 60),
		},
		ExtGBps: []float64{25, 80},
		Run:     rc,
	}
	m, err := SweepContext(context.Background(), simrun.New(2), p, cfg)
	if err != nil {
		t.Fatalf("SweepContext: %v", err)
	}
	var rows string
	for i := range m.StdBW {
		rows += fmt.Sprintf("[x=%.9g rs=%.9g,%.9g]", m.StdBW[i], m.Rela[i][0], m.Rela[i][1])
	}
	const wantSweep = "[x=20.0003731 rs=100,100][x=60.0209136 rs=99.9727071,98.3533292]"
	if rows != wantSweep {
		t.Errorf("sweep matrix drifted from the pre-refactor baseline:\n got  %s\n want %s", rows, wantSweep)
	}
}
