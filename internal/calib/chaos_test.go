package calib

import (
	"context"
	"reflect"
	"testing"
	"time"

	"github.com/processorcentricmodel/pccs/internal/faultinject"
	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// TestSweepChaosMatchesFaultFree is the headline chaos property: a parallel
// construction sweep with errors AND panics injected at every simrun site
// produces, after retries, a matrix bit-identical to the fault-free serial
// reference. Faults fire before each simulation attempt and points are pure
// computations on per-worker clones, so a retried point reproduces exactly
// the number stream a fault-free run would have.
func TestSweepChaosMatchesFaultFree(t *testing.T) {
	p := soc.VirtualXavier()
	cfg := miniSweepConfig(p, 1, 0)

	ref, err := Sweep(p, cfg) // fault-free reference
	if err != nil {
		t.Fatal(err)
	}

	ex := simrun.New(2)
	ex.Faults = faultinject.MustNew(42,
		faultinject.Rule{Site: "simrun/point", Kind: faultinject.Error, Rate: 0.15},
		faultinject.Rule{Site: "simrun/point", Kind: faultinject.Panic, Rate: 0.10},
		faultinject.Rule{Site: "simrun/standalone", Kind: faultinject.Error, Rate: 0.25},
		faultinject.Rule{Site: "simrun/standalone", Kind: faultinject.Panic, Rate: 0.10},
	)
	ex.Retry = simrun.RetryPolicy{MaxAttempts: 25, BaseDelay: 10 * time.Microsecond, MaxDelay: time.Millisecond}
	m, err := SweepContext(context.Background(), ex, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, ref) {
		t.Errorf("chaos sweep diverged from fault-free reference\ngot:  %+v\nwant: %+v", m, ref)
	}
	if ex.Faults.Injected() == 0 {
		t.Fatal("no faults fired; chaos test vacuous")
	}
	if ex.Retries() == 0 {
		t.Error("faults fired but executor recorded no retries")
	}
}

// TestConstructPUChaosMatchesFaultFree pushes the same property one layer up:
// whole-model construction (sweep + extraction) under injected faults yields
// bit-identical parameters.
func TestConstructPUChaosMatchesFaultFree(t *testing.T) {
	if testing.Short() {
		t.Skip("construction sweep in -short mode")
	}
	p := soc.VirtualXavier()
	cfg := miniSweepConfig(p, 1, 0)
	opt := DefaultOptions()

	refMatrix, err := Sweep(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Extract(refMatrix, opt)
	if err != nil {
		t.Fatal(err)
	}

	ex := simrun.New(2)
	ex.Faults = faultinject.MustNew(9,
		faultinject.Rule{Site: "simrun/point", Kind: faultinject.Error, Rate: 0.2},
		faultinject.Rule{Site: "simrun/standalone", Kind: faultinject.Panic, Rate: 0.2},
	)
	ex.Retry = simrun.RetryPolicy{MaxAttempts: 25, BaseDelay: 10 * time.Microsecond, MaxDelay: time.Millisecond}
	m, err := SweepContext(context.Background(), ex, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Extract(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("chaos-constructed model diverged\ngot:  %+v\nwant: %+v", got, ref)
	}
	if ex.Faults.Injected() == 0 {
		t.Fatal("no faults fired; chaos test vacuous")
	}
}

// TestSweepChaosExhaustionFailsCleanly arms a site that always fails: the
// sweep must return an error (not hang, not panic) once retries exhaust.
func TestSweepChaosExhaustionFailsCleanly(t *testing.T) {
	p := soc.VirtualXavier()
	cfg := miniSweepConfig(p, 1, 0)
	ex := simrun.New(2)
	ex.Faults = faultinject.MustNew(1,
		faultinject.Rule{Site: "simrun/standalone", Kind: faultinject.Error, Rate: 1},
	)
	ex.Retry = simrun.RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Microsecond, MaxDelay: time.Millisecond}
	if _, err := SweepContext(context.Background(), ex, p, cfg); err == nil {
		t.Fatal("sweep succeeded with a permanently failing standalone site")
	}
}
