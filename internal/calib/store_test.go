package calib

import (
	"os"
	"path/filepath"
	"testing"
)

func TestModelSetRoundTrip(t *testing.T) {
	s := ModelSet{}
	p := refModel()
	p.Platform, p.PU = "virtual-xavier", "GPU"
	s.Put(p)
	path := filepath.Join(t.TempDir(), "sub", "models.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := got.Get("virtual-xavier", "GPU")
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Errorf("round trip changed params:\n got %+v\nwant %+v", back, p)
	}
	if _, err := got.Get("virtual-xavier", "NPU"); err == nil {
		t.Error("missing model should error")
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Invalid params (zero peak).
	inv := filepath.Join(dir, "invalid.json")
	os.WriteFile(inv, []byte(`{"x/y":{"PU":"y","Platform":"x","PeakBW":0,"CBP":1}}`), 0o644)
	if _, err := Load(inv); err == nil {
		t.Error("invalid params accepted")
	}
	// Key mismatch.
	mis := filepath.Join(dir, "mismatch.json")
	os.WriteFile(mis, []byte(`{"a/b":{"PU":"GPU","Platform":"xavier","PeakBW":100,"CBP":10,"IntensiveBW":50,"NormalBW":10,"RateN":0.5}}`), 0o644)
	if _, err := Load(mis); err == nil {
		t.Error("key mismatch accepted")
	}
}
