package calib

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestModelSetRoundTrip(t *testing.T) {
	s := ModelSet{}
	p := refModel()
	p.Platform, p.PU = "virtual-xavier", "GPU"
	s.Put(p)
	path := filepath.Join(t.TempDir(), "sub", "models.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := got.Get("virtual-xavier", "GPU")
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Errorf("round trip changed params:\n got %+v\nwant %+v", back, p)
	}
	if _, err := got.Get("virtual-xavier", "NPU"); err == nil {
		t.Error("missing model should error")
	}
}

func TestSaveErrorPaths(t *testing.T) {
	s := ModelSet{}
	p := refModel()
	p.Platform, p.PU = "virtual-xavier", "GPU"
	s.Put(p)

	// Unwritable destination directory: the parent is a regular file, so
	// MkdirAll fails with ENOTDIR. (A permission-bit probe would be
	// useless here — tests may run as root, which ignores 0o500 modes.)
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(filepath.Join(blocker, "sub", "models.json")); err == nil {
		t.Error("save under a file-as-directory accepted")
	}

	// Destination path is an existing directory.
	if err := s.Save(dir); err == nil {
		t.Error("save onto a directory accepted")
	}
}

func TestLoadRejectsTruncatedJSON(t *testing.T) {
	// A syntactically-valid prefix cut mid-object must not load.
	s := ModelSet{}
	p := refModel()
	p.Platform, p.PU = "virtual-xavier", "GPU"
	s.Put(p)
	path := filepath.Join(t.TempDir(), "models.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("truncated artifact accepted")
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Invalid params (zero peak).
	inv := filepath.Join(dir, "invalid.json")
	os.WriteFile(inv, []byte(`{"x/y":{"PU":"y","Platform":"x","PeakBW":0,"CBP":1}}`), 0o644)
	if _, err := Load(inv); err == nil {
		t.Error("invalid params accepted")
	}
	// Key mismatch.
	mis := filepath.Join(dir, "mismatch.json")
	os.WriteFile(mis, []byte(`{"a/b":{"PU":"GPU","Platform":"xavier","PeakBW":100,"CBP":10,"IntensiveBW":50,"NormalBW":10,"RateN":0.5}}`), 0o644)
	if _, err := Load(mis); err == nil {
		t.Error("key mismatch accepted")
	}
}

func TestLoadVerifiesChecksum(t *testing.T) {
	s := ModelSet{}
	p := refModel()
	p.Platform, p.PU = "virtual-xavier", "GPU"
	s.Put(p)
	path := filepath.Join(t.TempDir(), "models.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"format": "pccs-models/v2"`) {
		t.Fatalf("Save did not write the v2 envelope:\n%s", data)
	}
	// Flip a digit inside the models payload, keeping the JSON valid: the
	// checksum must catch the silent corruption.
	corrupt := strings.Replace(string(data), `"PeakBW": 137`, `"PeakBW": 138`, 1)
	if corrupt == string(data) {
		t.Fatal("corruption probe found nothing to flip")
	}
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if err == nil {
		t.Fatal("corrupted artifact accepted")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corruption error does not mention the checksum: %v", err)
	}
}

func TestLoadLegacyArtifact(t *testing.T) {
	// Pre-v2 artifacts are a bare ModelSet object with no envelope.
	path := filepath.Join(t.TempDir(), "legacy.json")
	legacy := `{"virtual-xavier/GPU":{"PU":"GPU","Platform":"virtual-xavier","PeakBW":137,"CBP":30,"IntensiveBW":90,"NormalBW":20,"RateN":0.5}}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.Get("virtual-xavier", "GPU"); err != nil {
		t.Errorf("legacy model missing: %v", err)
	}
}

func TestLoadRejectsEmptyAndUnknownFormat(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(" \n"), 0o644)
	if _, err := Load(empty); err == nil {
		t.Error("empty artifact accepted")
	}
	future := filepath.Join(dir, "future.json")
	os.WriteFile(future, []byte(`{"format":"pccs-models/v9","sha256":"x","models":{}}`), 0o644)
	if _, err := Load(future); err == nil {
		t.Error("unknown format accepted")
	}
	hollow := filepath.Join(dir, "hollow.json")
	os.WriteFile(hollow, []byte(`{"format":"pccs-models/v2","sha256":"x"}`), 0o644)
	if _, err := Load(hollow); err == nil {
		t.Error("envelope without models payload accepted")
	}
}

func TestSaveIsAtomicAndLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "models.json")
	s := ModelSet{}
	p := refModel()
	p.Platform, p.PU = "virtual-xavier", "GPU"
	s.Put(p)
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second save: the reader must see old or new, and no
	// temp droppings may remain either way.
	q := p
	q.PU = "DLA"
	s.Put(q)
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("reloaded %d models, want 2", len(got))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "models.json" {
			t.Errorf("stray file after save: %s", e.Name())
		}
	}
}
