package calib

import (
	"os"
	"path/filepath"
	"testing"
)

func TestModelSetRoundTrip(t *testing.T) {
	s := ModelSet{}
	p := refModel()
	p.Platform, p.PU = "virtual-xavier", "GPU"
	s.Put(p)
	path := filepath.Join(t.TempDir(), "sub", "models.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := got.Get("virtual-xavier", "GPU")
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Errorf("round trip changed params:\n got %+v\nwant %+v", back, p)
	}
	if _, err := got.Get("virtual-xavier", "NPU"); err == nil {
		t.Error("missing model should error")
	}
}

func TestSaveErrorPaths(t *testing.T) {
	s := ModelSet{}
	p := refModel()
	p.Platform, p.PU = "virtual-xavier", "GPU"
	s.Put(p)

	// Unwritable destination directory: the parent is a regular file, so
	// MkdirAll fails with ENOTDIR. (A permission-bit probe would be
	// useless here — tests may run as root, which ignores 0o500 modes.)
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(filepath.Join(blocker, "sub", "models.json")); err == nil {
		t.Error("save under a file-as-directory accepted")
	}

	// Destination path is an existing directory.
	if err := s.Save(dir); err == nil {
		t.Error("save onto a directory accepted")
	}
}

func TestLoadRejectsTruncatedJSON(t *testing.T) {
	// A syntactically-valid prefix cut mid-object must not load.
	s := ModelSet{}
	p := refModel()
	p.Platform, p.PU = "virtual-xavier", "GPU"
	s.Put(p)
	path := filepath.Join(t.TempDir(), "models.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("truncated artifact accepted")
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Invalid params (zero peak).
	inv := filepath.Join(dir, "invalid.json")
	os.WriteFile(inv, []byte(`{"x/y":{"PU":"y","Platform":"x","PeakBW":0,"CBP":1}}`), 0o644)
	if _, err := Load(inv); err == nil {
		t.Error("invalid params accepted")
	}
	// Key mismatch.
	mis := filepath.Join(dir, "mismatch.json")
	os.WriteFile(mis, []byte(`{"a/b":{"PU":"GPU","Platform":"xavier","PeakBW":100,"CBP":10,"IntensiveBW":50,"NormalBW":10,"RateN":0.5}}`), 0o644)
	if _, err := Load(mis); err == nil {
		t.Error("key mismatch accepted")
	}
}
