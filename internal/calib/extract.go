package calib

import (
	"fmt"
	"math"

	"github.com/processorcentricmodel/pccs/internal/core"
)

// Mode selects the parameter-extraction variant.
type Mode int

const (
	// Robust (default) applies the paper's five steps to smoothed rows
	// with absolute floors on the "notable reduction" thresholds,
	// interpolated onset/turning points, and origin-anchored least-squares
	// slope fitting — hardened against measurement noise and the
	// early-pressure dip fairness schedulers produce.
	Robust Mode = iota
	// Strict follows §3.2's algorithm to the letter: raw values, 2×
	// thresholds, adjacent-element parameter reads. On clean or barely
	// contended data the 2×-baseline thresholds degenerate (2× of a tiny
	// reduction is still tiny); it is kept for the extraction ablation.
	Strict
)

func (m Mode) String() string {
	if m == Strict {
		return "strict"
	}
	return "robust"
}

// Options tunes extraction.
type Options struct {
	Mode Mode
	// MinNotable is the absolute floor (percent) for "notable reduction"
	// thresholds in robust mode. Zero selects the default (3%).
	MinNotable float64
}

// DefaultOptions is the robust extraction used across the experiments.
func DefaultOptions() Options { return Options{Mode: Robust, MinNotable: 3} }

// Extract runs the five-step analysis of §3.2 on a measured matrix and
// returns the PCCS model parameters for the target PU.
func Extract(m *Matrix, opt Options) (core.Params, error) {
	if err := m.Validate(); err != nil {
		return core.Params{}, err
	}
	if opt.MinNotable <= 0 {
		opt.MinNotable = 3
	}
	n, cols := len(m.StdBW), len(m.ExtBW)

	// raw reduction rows, plus smoothed copies for boundary detection in
	// robust mode (interpolation steps use the raw rows so knees are not
	// blurred rightward by the moving average).
	raw := make([][]float64, n)
	red := make([][]float64, n)
	for i := 0; i < n; i++ {
		raw[i] = make([]float64, cols)
		for j := 0; j < cols; j++ {
			raw[i][j] = m.Reduction(i, j)
		}
		if opt.Mode == Robust {
			red[i] = m.smoothedReduction(i)
		} else {
			red[i] = raw[i]
		}
	}

	p := core.Params{PU: m.PU, Platform: m.Platform, PeakBW: m.PeakBW}

	// Step 1 — normal-region boundary and MRMC. The first row (from the
	// smallest kernel up) whose reduction at the largest external pressure
	// is notable marks the start of the normal region.
	thr1 := 2 * red[0][cols-1]
	if opt.Mode == Robust {
		thr1 = math.Max(thr1, opt.MinNotable)
		if red[0][cols-1] >= 2*opt.MinNotable {
			thr1 = 0 // the smallest kernel already contends: no minor region
		}
	}
	kb := -1
	for i := 0; i < n; i++ {
		if red[i][cols-1] >= thr1 {
			kb = i
			break
		}
	}
	if kb < 0 {
		return core.Params{}, fmt.Errorf(
			"calib: no normal region found on %s/%s (max reduction %.2f%%): ladder does not stress the PU",
			m.Platform, m.PU, maxOf(red))
	}
	// The paper reads MRMC literally as the boundary-adjacent row's
	// last-column reduction (strict). Robust mode instead takes the row's
	// mean reduction — Eq. 2 is flat in y, so the mean is its best fit —
	// and projects it to a kernel demanding the full peak, making the
	// extracted parameter self-consistent with Eq. 2's MRMC·x/PBW form.
	minorPeak := 0.0 // largest observed minor-region reduction, for thresholds
	switch {
	case kb == 0:
		// No minor region at all — the DLA case (Table 7: Normal BW 0).
		p.NormalBW = 0
		p.MRMC = 0
	case opt.Mode == Strict:
		p.NormalBW = m.StdBW[kb]
		p.MRMC = red[kb-1][cols-1]
		minorPeak = p.MRMC
	default:
		p.NormalBW = (m.StdBW[kb-1] + m.StdBW[kb]) / 2
		minorPeak = maxRow(red[kb-1])
		p.MRMC = clamp(math.Max(mean(red[kb-1]), 0)*m.PeakBW/m.StdBW[kb-1], 0, 100)
	}
	if p.MRMC < 0 {
		p.MRMC = 0
	}

	// Notable-reduction threshold for the remaining steps, based on the
	// largest observed (not projected) minor-region reduction.
	thr2 := 2 * minorPeak
	if opt.Mode == Robust {
		thr2 = math.Max(thr2, opt.MinNotable*1.5)
	}

	// Step 3 — intensive boundary: the first row already showing a notable
	// reduction at the smallest external demand. (Computed before TBWDC so
	// the normal-row set is known.)
	ib := -1
	for i := 0; i < n; i++ {
		if red[i][0] >= thr2 {
			ib = i
			break
		}
	}
	iEnd := ib
	if iEnd < 0 {
		iEnd = n
	}

	// Step 2 — TBWDC: the total bandwidth demand x+y at which normal-region
	// curves enter their dropping phase. Strict reads the boundary row's
	// first notable column; robust averages interpolated drop onsets across
	// normal rows whose curves still start flat.
	if opt.Mode == Strict {
		j2 := firstNotable(red[kb], thr2, false)
		if j2 < 0 {
			j2 = cols - 1
		}
		p.TBWDC = m.StdBW[kb] + m.ExtBW[j2]
	} else {
		// Every dropping row contributes a total-bandwidth onset estimate:
		// rows with a flat head by interpolated onset; rows already
		// dropping at the smallest measured pressure (the DLA's whole
		// ladder) by back-extrapolating their initial slope to zero
		// reduction — their onset lies below the first grid column.
		var onsets []float64
		for i := kb; i < n; i++ {
			if atFloor(raw[i]) {
				continue // saturated rows carry no onset information
			}
			if raw[i][0] < thr2 {
				if y, ok := dropOnset(m.ExtBW, raw[i], thr2); ok {
					onsets = append(onsets, m.StdBW[i]+y)
				}
				continue
			}
			if y, ok := backExtrapolatedOnset(m.ExtBW, raw[i], thr2); ok {
				onsets = append(onsets, m.StdBW[i]+y)
			}
		}
		if len(onsets) > 0 {
			p.TBWDC = mean(onsets)
		} else {
			j2 := firstNotable(red[kb], thr2, true)
			if j2 < 0 {
				j2 = cols - 1
			}
			p.TBWDC = m.StdBW[kb] + m.ExtBW[j2]
		}
	}

	switch {
	case ib < 0:
		p.IntensiveBW = m.PeakBW // no intensive region observed
	case ib == 0:
		p.IntensiveBW = m.StdBW[0]
	case opt.Mode == Strict:
		p.IntensiveBW = m.StdBW[ib]
	default:
		p.IntensiveBW = (m.StdBW[ib-1] + m.StdBW[ib]) / 2
	}
	if p.IntensiveBW < p.NormalBW {
		p.IntensiveBW = p.NormalBW
	}

	// Step 4 — contention balance point: per normal-region row, the
	// external demand where the curve flattens into its tail; CBP is their
	// average. Robust interpolates the tail crossing.
	var cbps []float64
	cbpEnd := iEnd
	if opt.Mode == Robust {
		cbpEnd = n // intensive rows flatten at the same balance point
	}
	for i := kb; i < cbpEnd; i++ {
		if opt.Mode == Strict {
			if j := turningPoint(red[i], thr2); j >= 0 {
				cbps = append(cbps, m.ExtBW[j])
			}
		} else if !atFloor(raw[i]) {
			if y, ok := tailCrossing(m.ExtBW, raw[i], thr2); ok {
				cbps = append(cbps, y)
			}
		}
	}
	if len(cbps) > 0 {
		p.CBP = mean(cbps)
	} else {
		p.CBP = m.ExtBW[cols-1] / 2 // degenerate: no flat tail observed
	}

	// Step 5 — normal-region reduction rate: per normal row, the slope of
	// the drop between onset and the contention balance point. The model's
	// drop term rateN·(x+y−TBWDC) is anchored at zero, so robust mode fits
	// the slope through the origin of w = x+y−TBWDC.
	var rates []float64
	for i := kb; i < iEnd; i++ {
		if r, ok := fitRate(m, raw[i], i, p.TBWDC, p.CBP, thr2, opt.Mode); ok {
			rates = append(rates, r)
		}
	}
	if opt.Mode == Robust {
		// Intensive-region rows also carry rate information: their slope
		// is rateN amplified by Eq. 4, so inverting the amplification
		// yields further rateN estimates. Without this, a PU whose ladder
		// is almost entirely intensive (the DLA) would derive its rate
		// from the single shallow normal row and underpredict wildly.
		for i := iEnd; i < n && iEnd >= 0; i++ {
			r, ok := fitRate(m, raw[i], i, p.TBWDC, p.CBP, thr2, opt.Mode)
			if !ok {
				continue
			}
			amp := (m.StdBW[i] + p.CBP - p.TBWDC) / p.CBP
			if amp > 0.1 {
				rates = append(rates, r/amp)
			}
		}
	}
	if len(rates) > 0 {
		p.RateN = mean(rates)
	}
	if p.RateN <= 0 {
		// Fall back to the boundary row's end-to-end slope.
		span := m.ExtBW[cols-1] - m.ExtBW[0]
		p.RateN = math.Max((red[kb][cols-1]-red[kb][0])/span, 0.01)
	}

	if err := p.Validate(); err != nil {
		return core.Params{}, fmt.Errorf("calib: extracted invalid parameters: %w (%+v)", err, p)
	}
	return p, nil
}

// firstNotable returns the first column whose reduction reaches thr;
// sustained requires every later column to stay notable too (filters the
// transient early-pressure dip of fairness schedulers).
func firstNotable(row []float64, thr float64, sustained bool) int {
	for j := range row {
		if row[j] < thr {
			continue
		}
		if !sustained {
			return j
		}
		ok := true
		for k := j; k < len(row); k++ {
			if row[k] < thr {
				ok = false
				break
			}
		}
		if ok {
			return j
		}
	}
	return -1
}

// dropOnset estimates, by linear interpolation, the external demand at
// which a row leaves its flat head and starts dropping. It requires the
// row to actually have a flat head (first column below thr) and a notable
// total drop; rows already dropping at the first column return !ok.
func dropOnset(ext, row []float64, thr float64) (float64, bool) {
	cols := len(row)
	if row[0] >= thr {
		return 0, false
	}
	tail := (row[cols-1] + row[cols-2]) / 2
	if tail < thr {
		return 0, false
	}
	// Flat-head level: average of leading columns below thr.
	flat, cnt := 0.0, 0
	for j := 0; j < cols && row[j] < thr; j++ {
		flat += row[j]
		cnt++
	}
	flat /= float64(cnt)
	target := flat + math.Max(1, 0.15*(tail-flat))
	j := firstNotable(row, target, true)
	if j <= 0 {
		return 0, false
	}
	// Interpolate the crossing between columns j-1 and j.
	y0, y1 := ext[j-1], ext[j]
	r0, r1 := row[j-1], row[j]
	if r1 <= r0 {
		return y1, true
	}
	frac := (target - r0) / (r1 - r0)
	return y0 + frac*(y1-y0), true
}

// backExtrapolatedOnset estimates the drop onset of a row that is already
// reducing at the smallest measured external demand: the line through
// (ext[0], red[0]) with the row's dropping slope crosses zero reduction at
// a (possibly negative) external demand below the grid. The result is
// clamped to [−x-independent floor, ext[0]]; ok is false when the row has
// no usable slope.
func backExtrapolatedOnset(ext, row []float64, thr float64) (float64, bool) {
	cols := len(row)
	tail := (row[cols-1] + row[cols-2]) / 2
	if tail < thr || row[0] <= 0 {
		return 0, false
	}
	yCBP, ok := tailCrossing(ext, row, thr)
	if !ok || yCBP <= ext[0] {
		return 0, true // drops and flattens below the grid: onset ≈ 0
	}
	redCBP := interpAt(ext, row, yCBP)
	slope := (redCBP - row[0]) / (yCBP - ext[0])
	if slope <= 0 {
		return 0, true
	}
	onset := ext[0] - row[0]/slope
	if onset < -ext[0] {
		// More than one grid step below zero: the row is too steep for a
		// trustworthy extrapolation.
		return 0, false
	}
	if onset > ext[0] {
		onset = ext[0]
	}
	return onset, true
}

// atFloor reports whether a row's reduction has saturated near the
// relative-speed floor (RS clamped at ~1%), where slopes, onsets and
// turning points carry no information.
func atFloor(row []float64) bool {
	return row[0] >= 90 || (row[len(row)-1]+row[len(row)-2])/2 >= 90
}

// interpAt linearly interpolates the row's value at external demand y.
func interpAt(ext, row []float64, y float64) float64 {
	for j := 1; j < len(ext); j++ {
		if y <= ext[j] {
			frac := (y - ext[j-1]) / (ext[j] - ext[j-1])
			return row[j-1] + frac*(row[j]-row[j-1])
		}
	}
	return row[len(row)-1]
}

// tailCrossing estimates, by linear interpolation, the external demand at
// which a row's reduction reaches its flat tail level — the per-row
// contention balance point.
func tailCrossing(ext, row []float64, thr float64) (float64, bool) {
	cols := len(row)
	tail := (row[cols-1] + row[cols-2]) / 2
	if tail < thr {
		return 0, false
	}
	target := tail - math.Max(1, 0.12*tail)
	for j := 0; j < cols; j++ {
		if row[j] >= target {
			if j == 0 || row[j] <= row[j-1] {
				return ext[j], true
			}
			frac := (target - row[j-1]) / (row[j] - row[j-1])
			return ext[j-1] + frac*(ext[j]-ext[j-1]), true
		}
	}
	return ext[cols-1], true
}

// turningPoint is the strict-mode flat-region detector: the first column at
// or beyond the sustained drop start whose value is within tolerance of the
// tail level. It returns -1 for rows that never drop notably.
func turningPoint(row []float64, thr float64) int {
	cols := len(row)
	tail := (row[cols-1] + row[cols-2]) / 2
	if tail < thr {
		return -1
	}
	tol := math.Max(1, 0.12*tail)
	start := firstNotable(row, thr, true)
	if start < 0 {
		return -1
	}
	for j := start; j < cols; j++ {
		if row[j] >= tail-tol {
			return j
		}
	}
	return cols - 1
}

// fitRate estimates the reduction rate (percent per GB/s of x+y−TBWDC) for
// one normal-region row over its dropping span.
func fitRate(m *Matrix, row []float64, i int, tbwdc, cbp, thr float64, mode Mode) (float64, bool) {
	x := m.StdBW[i]
	if mode == Strict {
		// Paper: average reduction rate within the normal region up to the
		// contention balance point.
		var num, den float64
		prevJ := -1
		for j := range row {
			if m.ExtBW[j] > cbp {
				break
			}
			if prevJ >= 0 {
				num += row[j] - row[prevJ]
				den += m.ExtBW[j] - m.ExtBW[prevJ]
			}
			prevJ = j
		}
		if den <= 0 {
			return 0, false
		}
		r := num / den
		return r, r > 0
	}
	// Robust: least squares through the origin of w = x+y−TBWDC against
	// the reduction. In the drop span the model predicts red = rateN·w
	// exactly, so only drop-dominated points may enter the fit: above the
	// row's flat head, before the row's own tail crossing, with w > 0.
	cols := len(row)
	tail := (row[cols-1] + row[cols-2]) / 2
	flat := 0.0
	if row[0] < thr {
		cnt := 0
		for j := 0; j < cols && row[j] < thr; j++ {
			flat += row[j]
			cnt++
		}
		flat /= float64(cnt)
	}
	rowCBP := cbp
	if y, ok := tailCrossing(m.ExtBW, row, thr); ok {
		rowCBP = y
	}
	tol := math.Max(1, 0.12*tail)
	var sw2, swr float64
	for j := range row {
		w := x + m.ExtBW[j] - tbwdc
		if w <= 0 || m.ExtBW[j] >= rowCBP-1e-9 {
			continue
		}
		if row[j] <= flat+1 || row[j] >= tail-tol {
			continue // flat head or flat tail
		}
		if row[j] >= 90 {
			continue // at the relative-speed floor: slope information lost
		}
		sw2 += w * w
		swr += w * row[j]
	}
	if sw2 <= 0 {
		return 0, false
	}
	r := swr / sw2
	return r, r > 0
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxRow(row []float64) float64 {
	m := row[0]
	for _, v := range row[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func maxOf(rows [][]float64) float64 {
	m := math.Inf(-1)
	for _, r := range rows {
		if v := maxRow(r); v > m {
			m = v
		}
	}
	return m
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
