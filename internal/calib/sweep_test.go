package calib

import (
	"testing"

	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/traffic"
)

func miniSweepConfig(p *soc.Platform, target, pressure int) SweepConfig {
	arch := p.PUs[target]
	peak := p.PeakGBps()
	var cals []traffic.Spec
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		cals = append(cals, traffic.Spec{
			Name: "mini", DemandGBps: frac * peak,
			Outstanding: arch.Outstanding, RunLines: arch.RunLines, Streams: arch.Streams,
		})
	}
	return SweepConfig{
		TargetPU: target, PressurePU: pressure,
		Calibrators: cals,
		ExtGBps:     []float64{0.25 * peak, 0.6 * peak, peak},
		Run:         soc.RunConfig{WarmupCycles: 100_000, MeasureCycles: 100_000},
	}
}

func TestSweepProducesValidMatrix(t *testing.T) {
	p := soc.VirtualXavier()
	m, err := Sweep(p, miniSweepConfig(p, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.PU != "GPU" || m.Platform != "virtual-xavier" {
		t.Errorf("labels: %s/%s", m.Platform, m.PU)
	}
	// Heaviest kernel under heaviest pressure must be slower than the
	// lightest kernel under the lightest pressure.
	n := len(m.StdBW)
	if m.Rela[n-1][2] >= m.Rela[0][0] {
		t.Errorf("no contention gradient: rela[%d][2]=%.1f vs rela[0][0]=%.1f",
			n-1, m.Rela[n-1][2], m.Rela[0][0])
	}
}

func TestSweepRejectsBadConfig(t *testing.T) {
	p := soc.VirtualXavier()
	cfg := miniSweepConfig(p, 1, 0)
	cfg.PressurePU = 1
	if _, err := Sweep(p, cfg); err == nil {
		t.Error("target == pressure accepted")
	}
	cfg = miniSweepConfig(p, 1, 0)
	cfg.TargetPU = 99
	if _, err := Sweep(p, cfg); err == nil {
		t.Error("out-of-range target accepted")
	}
	cfg = miniSweepConfig(p, 1, 0)
	cfg.Calibrators = nil
	if _, err := Sweep(p, cfg); err == nil {
		t.Error("empty calibrator set accepted")
	}
}

func TestSweepDLADedupesSaturatedLevels(t *testing.T) {
	// The DLA saturates well below the top calibrator demands; the sweep
	// must record measured standalone BW and collapse duplicate levels.
	p := soc.VirtualXavier()
	dla := p.PUIndex("DLA")
	pressure, err := PressurePUFor(p, dla)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSweep(p, dla, pressure)
	cfg.Run = soc.RunConfig{WarmupCycles: 100_000, MeasureCycles: 100_000}
	m, err := Sweep(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.StdBW) >= 10 {
		t.Errorf("DLA ladder not deduplicated: %d levels (%v)", len(m.StdBW), m.StdBW)
	}
	if top := m.StdBW[len(m.StdBW)-1]; top > 0.5*p.PeakGBps() {
		t.Errorf("DLA standalone top %.1f GB/s implausibly high", top)
	}
}

func TestPressurePUFor(t *testing.T) {
	p := soc.VirtualXavier()
	// CPU is pressured by the GPU; GPU and DLA by the CPU (§4.1.1).
	if got, _ := PressurePUFor(p, p.PUIndex("CPU")); got != p.PUIndex("GPU") {
		t.Errorf("CPU pressured by PU %d, want GPU", got)
	}
	if got, _ := PressurePUFor(p, p.PUIndex("GPU")); got != p.PUIndex("CPU") {
		t.Errorf("GPU pressured by PU %d, want CPU", got)
	}
	if got, _ := PressurePUFor(p, p.PUIndex("DLA")); got != p.PUIndex("CPU") {
		t.Errorf("DLA pressured by PU %d, want CPU", got)
	}
}

func TestConstructPlatformMini(t *testing.T) {
	if testing.Short() {
		t.Skip("construction sweep in -short mode")
	}
	p := soc.VirtualSnapdragon()
	set, err := ConstructPlatform(p, soc.RunConfig{WarmupCycles: 100_000, MeasureCycles: 100_000}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, pu := range []string{"CPU", "GPU"} {
		m, err := set.Get(p.Name, pu)
		if err != nil {
			t.Errorf("missing %s: %v", pu, err)
			continue
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", pu, err)
		}
	}
}
