// Package stress is the load generator behind cmd/pccs-stress and the soak
// tests: closed-loop (fixed worker count, each firing as fast as responses
// return) and open-loop (fixed request rate regardless of response times)
// drivers with latency histograms and shed/error accounting. Open loop is
// the honest overload probe — a closed loop slows down with the server and
// hides queueing collapse (coordinated omission); an open loop keeps firing
// and exposes it.
package stress

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes one load run against a pccsd endpoint.
type Config struct {
	// URL is the server base, e.g. http://127.0.0.1:8080.
	URL string
	// URLs, when set, is a cluster soak target: every request round-robins
	// across the node base URLs, so shard routing, peer forwarding, and
	// partition degradation are all exercised from one load source. URL is
	// ignored when URLs is non-empty.
	URLs []string
	// rr deals requests across URLs; set by withDefaults.
	rr *atomic.Uint64
	// Path is the endpoint, e.g. /v1/predict.
	Path string
	// Method defaults to POST when a body is set, GET otherwise.
	Method string
	// Body is sent verbatim on every request (JSON payload).
	Body []byte
	// Concurrency is the closed-loop worker count (default 8); in open
	// loop it caps outstanding requests instead.
	Concurrency int
	// QPS > 0 switches to open loop at that constant request rate.
	QPS float64
	// MaxOutstanding bounds in-flight open-loop requests (default
	// 4×Concurrency); fires beyond it are counted as Dropped, not sent.
	MaxOutstanding int
	// Duration bounds the run (default 5s).
	Duration time.Duration
	// DeadlineMs, when > 0, is sent as the X-Deadline-Ms header and also
	// bounds the client-side wait (deadline + 1s of slack).
	DeadlineMs int
	// APIKey, when set, is sent as X-API-Key (the rate-limiter client key).
	APIKey string
	// Client overrides the HTTP client (tests inject an httptest client).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if len(c.URLs) > 0 {
		c.URL = c.URLs[0]
		c.rr = new(atomic.Uint64)
	}
	if c.Method == "" {
		if len(c.Body) > 0 {
			c.Method = http.MethodPost
		} else {
			c.Method = http.MethodGet
		}
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 4 * c.Concurrency
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Report accumulates the outcome of one run. All counters are totals over
// the run; the latency histogram covers accepted (2xx) responses only, so
// shed 503s — which return in microseconds — cannot flatter the percentiles.
// The mutex serializes workers during a run; reads are race-free once Run
// has returned.
type Report struct {
	mu sync.Mutex

	Label      string
	Duration   time.Duration
	Sent       uint64 // requests actually issued
	Dropped    uint64 // open-loop fires skipped at the outstanding cap
	OK         uint64 // 2xx
	Degraded   uint64 // 2xx carrying a Degraded header (stale-cache)
	Shed       uint64 // 503
	RateLtd    uint64 // 429
	OtherHTTP  uint64 // remaining non-2xx
	Transport  uint64 // connection/timeout errors
	RetryAfter uint64 // shed/rate-limited responses carrying Retry-After
	Accepted   Histogram
}

// Offered is the demand the run actually placed plus what it wanted to
// place: sent + dropped.
func (r *Report) Offered() uint64 { return r.Sent + r.Dropped }

// ShedFraction is the fraction of issued requests the server refused
// (503 + 429) — the load-proportionality signal the soak test asserts on.
func (r *Report) ShedFraction() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Shed+r.RateLtd) / float64(r.Sent)
}

// String renders the operator-facing summary.
func (r *Report) String() string {
	var b strings.Builder
	if r.Label != "" {
		fmt.Fprintf(&b, "== %s ==\n", r.Label)
	}
	secs := r.Duration.Seconds()
	if secs <= 0 {
		secs = 1
	}
	fmt.Fprintf(&b, "duration     %s\n", r.Duration.Round(time.Millisecond))
	fmt.Fprintf(&b, "sent         %d (%.1f/s)", r.Sent, float64(r.Sent)/secs)
	if r.Dropped > 0 {
		fmt.Fprintf(&b, "  dropped %d (outstanding cap)", r.Dropped)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "ok           %d (%.1f/s)\n", r.OK, float64(r.OK)/secs)
	fmt.Fprintf(&b, "shed         %d 503s, %d 429s (%.1f%% of sent, %d with Retry-After)\n",
		r.Shed, r.RateLtd, 100*r.ShedFraction(), r.RetryAfter)
	if r.Degraded > 0 {
		fmt.Fprintf(&b, "degraded     %d stale-cache answers\n", r.Degraded)
	}
	if r.OtherHTTP > 0 || r.Transport > 0 {
		fmt.Fprintf(&b, "errors       %d http, %d transport\n", r.OtherHTTP, r.Transport)
	}
	if r.Accepted.Total() > 0 {
		fmt.Fprintf(&b, "accepted latency  p50 %s  p90 %s  p99 %s  max %s\n",
			r.Accepted.Quantile(0.50).Round(time.Microsecond*10),
			r.Accepted.Quantile(0.90).Round(time.Microsecond*10),
			r.Accepted.Quantile(0.99).Round(time.Microsecond*10),
			r.Accepted.Max().Round(time.Microsecond*10))
	}
	return b.String()
}

// Run drives one load step: closed loop when cfg.QPS is 0, open loop
// otherwise. It returns when cfg.Duration elapses or ctx ends.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.URL == "" || cfg.Path == "" {
		return nil, fmt.Errorf("stress: URL and Path are required")
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	rep := &Report{Accepted: NewHistogram()}
	begin := time.Now()
	if cfg.QPS > 0 {
		runOpenLoop(ctx, cfg, rep)
	} else {
		runClosedLoop(ctx, cfg, rep)
	}
	rep.Duration = time.Since(begin)
	return rep, nil
}

// Ramp runs consecutive closed-loop steps at each concurrency, splitting
// cfg.Duration evenly across them.
func Ramp(ctx context.Context, cfg Config, steps []int) ([]*Report, error) {
	if len(steps) == 0 {
		rep, err := Run(ctx, cfg)
		return []*Report{rep}, err
	}
	cfg = cfg.withDefaults()
	per := cfg.Duration / time.Duration(len(steps))
	reports := make([]*Report, 0, len(steps))
	for _, c := range steps {
		step := cfg
		step.Concurrency = c
		step.Duration = per
		rep, err := Run(ctx, step)
		if err != nil {
			return reports, err
		}
		rep.Label = fmt.Sprintf("concurrency=%d", c)
		reports = append(reports, rep)
		if ctx.Err() != nil {
			break
		}
	}
	return reports, nil
}

func runClosedLoop(ctx context.Context, cfg Config, rep *Report) {
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				fire(ctx, cfg, rep)
			}
		}()
	}
	wg.Wait()
}

func runOpenLoop(ctx context.Context, cfg Config, rep *Report) {
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	slots := make(chan struct{}, cfg.MaxOutstanding)
	var wg sync.WaitGroup
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-tick.C:
			select {
			case slots <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-slots }()
					fire(ctx, cfg, rep)
				}()
			default:
				// The fire must not wait for a slot — waiting would turn
				// the open loop back into a closed one. Count the miss.
				rep.drop()
			}
		}
	}
}

// fire issues one request and classifies the outcome.
func fire(ctx context.Context, cfg Config, rep *Report) {
	reqCtx := ctx
	if cfg.DeadlineMs > 0 {
		var cancel context.CancelFunc
		reqCtx, cancel = context.WithTimeout(ctx,
			time.Duration(cfg.DeadlineMs)*time.Millisecond+time.Second)
		defer cancel()
	}
	base := cfg.URL
	if cfg.rr != nil {
		base = cfg.URLs[cfg.rr.Add(1)%uint64(len(cfg.URLs))]
	}
	req, err := http.NewRequestWithContext(reqCtx, cfg.Method, base+cfg.Path, bytes.NewReader(cfg.Body))
	if err != nil {
		rep.record(0, 0, nil)
		return
	}
	if len(cfg.Body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	if cfg.DeadlineMs > 0 {
		req.Header.Set("X-Deadline-Ms", strconv.Itoa(cfg.DeadlineMs))
	}
	if cfg.APIKey != "" {
		req.Header.Set("X-API-Key", cfg.APIKey)
	}
	begin := time.Now()
	resp, err := cfg.Client.Do(req)
	latency := time.Since(begin)
	if err != nil {
		rep.record(0, latency, nil)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	rep.record(resp.StatusCode, latency, resp.Header)
}

func (r *Report) drop() {
	r.mu.Lock()
	r.Dropped++
	r.mu.Unlock()
}

func (r *Report) record(code int, latency time.Duration, hdr http.Header) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Sent++
	switch {
	case code == 0:
		r.Transport++
	case code >= 200 && code < 300:
		r.OK++
		r.Accepted.Observe(latency)
		if hdr.Get("Degraded") != "" {
			r.Degraded++
		}
	case code == http.StatusServiceUnavailable:
		r.Shed++
		if hdr.Get("Retry-After") != "" {
			r.RetryAfter++
		}
	case code == http.StatusTooManyRequests:
		r.RateLtd++
		if hdr.Get("Retry-After") != "" {
			r.RetryAfter++
		}
	default:
		r.OtherHTTP++
	}
}

// Histogram is a log-bucketed latency histogram: ~60 buckets spanning 50µs
// to ~2min with ~25% resolution, which is plenty for p50/p90/p99 on a load
// run while keeping memory constant.
type Histogram struct {
	bounds []time.Duration
	counts []uint64
	total  uint64
	max    time.Duration
	sum    time.Duration
}

// NewHistogram builds the fixed bucket ladder.
func NewHistogram() Histogram {
	var bounds []time.Duration
	for b := 50 * time.Microsecond; b < 2*time.Minute; b = b * 5 / 4 {
		bounds = append(bounds, b)
	}
	return Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	idx := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[idx]++
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Total reports the sample count.
func (h *Histogram) Total() uint64 { return h.total }

// Max reports the largest observed sample exactly.
func (h *Histogram) Max() time.Duration { return h.max }

// Mean reports the average sample.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Quantile reports the upper bound of the bucket holding quantile q (0,1];
// the exact max for the overflow bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) && h.bounds[i] < h.max {
				return h.bounds[i]
			}
			// Overflow bucket, or a bound past the largest sample: the
			// exact max is the tighter answer.
			return h.max
		}
	}
	return h.max
}

// Merge folds other into h (same bucket ladder).
func (h *Histogram) Merge(other Histogram) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}
