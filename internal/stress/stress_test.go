package stress

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClosedLoopAccounting drives a server that alternates 200/503/429 and
// checks every response lands in the right counter.
func TestClosedLoopAccounting(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 4 {
		case 0:
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
		case 1:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		case 2:
			w.Header().Set("Degraded", "stale-cache")
			w.WriteHeader(http.StatusOK)
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		URL: ts.URL, Path: "/v1/predict", Body: []byte(`{}`),
		Concurrency: 4, Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if rep.OK == 0 || rep.Shed == 0 || rep.RateLtd == 0 {
		t.Fatalf("missing outcomes: %+v", rep)
	}
	if rep.OK+rep.Shed+rep.RateLtd+rep.OtherHTTP+rep.Transport != rep.Sent {
		t.Fatalf("counters do not sum to sent: %+v", rep)
	}
	if rep.Degraded == 0 {
		t.Fatalf("Degraded header not counted: %+v", rep)
	}
	if rep.RetryAfter != rep.Shed+rep.RateLtd {
		t.Fatalf("RetryAfter = %d, want %d", rep.RetryAfter, rep.Shed+rep.RateLtd)
	}
	if rep.Accepted.Total() != rep.OK {
		t.Fatalf("histogram holds %d samples, want %d accepted", rep.Accepted.Total(), rep.OK)
	}
	if rep.ShedFraction() <= 0 || rep.ShedFraction() >= 1 {
		t.Fatalf("shed fraction %.2f out of range", rep.ShedFraction())
	}
}

// TestOpenLoopHoldsRate: the open loop must keep offering load when the
// server stalls — outstanding requests hit the cap and further fires are
// counted as dropped instead of silently waiting (coordinated omission).
func TestOpenLoopHoldsRate(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // wedge every request until the end of the test
	}))
	defer ts.Close()
	defer close(release)

	rep, err := Run(context.Background(), Config{
		URL: ts.URL, Path: "/v1/predict", Body: []byte(`{}`),
		QPS: 500, Concurrency: 2, MaxOutstanding: 4,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent > 4+1 {
		t.Fatalf("sent %d with only 4 outstanding slots", rep.Sent)
	}
	if rep.Dropped == 0 {
		t.Fatal("wedged server produced no dropped fires; open loop is waiting, not offering")
	}
}

// TestHistogramQuantiles sanity-checks the log-bucket quantile math.
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 99; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	if got := h.Quantile(0.50); got < 900*time.Microsecond || got > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms", got)
	}
	if got := h.Quantile(0.99); got > 2*time.Millisecond {
		t.Fatalf("p99 = %v, want <= ~1ms bucket", got)
	}
	if got := h.Max(); got != time.Second {
		t.Fatalf("max = %v, want 1s", got)
	}
	if h.Quantile(1.0) != time.Second {
		t.Fatalf("p100 = %v, want exact max", h.Quantile(1.0))
	}
}

// TestRamp splits the duration across steps and labels each report.
func TestRamp(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	reports, err := Ramp(context.Background(), Config{
		URL: ts.URL, Path: "/", Duration: 200 * time.Millisecond,
	}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for i, rep := range reports {
		if rep.Sent == 0 {
			t.Fatalf("step %d sent nothing", i)
		}
		if rep.Label == "" {
			t.Fatalf("step %d unlabeled", i)
		}
	}
}

// TestClusterURLsRoundRobin: with URLs set, successive requests deal across
// every node base URL — the cluster soak mode must not camp on one node.
func TestClusterURLsRoundRobin(t *testing.T) {
	var hits [3]atomic.Int64
	var servers []*httptest.Server
	var urls []string
	for i := range hits {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			w.WriteHeader(http.StatusOK)
		}))
		defer ts.Close()
		servers = append(servers, ts)
		urls = append(urls, ts.URL)
	}
	_ = servers

	rep, err := Run(context.Background(), Config{
		URLs: urls, Path: "/v1/predict", Body: []byte(`{}`),
		Concurrency: 3, Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 {
		t.Fatal("no requests sent")
	}
	var total int64
	for i := range hits {
		n := hits[i].Load()
		if n == 0 {
			t.Errorf("node %d received no requests", i)
		}
		total += n
	}
	// Requests cancelled mid-flight at the run deadline are Sent (and
	// counted as transport errors) without ever reaching a server.
	if total > int64(rep.Sent) || total < int64(rep.Sent-rep.Transport) {
		t.Errorf("nodes saw %d requests, report sent %d (%d transport)", total, rep.Sent, rep.Transport)
	}
	// Round-robin is strict: per-node counts may differ by at most the
	// worker count (in-flight skew at the end of the run).
	for i := range hits {
		for k := range hits {
			if d := hits[i].Load() - hits[k].Load(); d > 3 || d < -3 {
				t.Errorf("unbalanced round-robin: node %d=%d node %d=%d", i, hits[i].Load(), k, hits[k].Load())
			}
		}
	}
}
