package gables

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadPeak(t *testing.T) {
	for _, peak := range []float64{0, -10, math.NaN()} {
		if _, err := New(peak); err == nil {
			t.Errorf("New(%v) accepted", peak)
		}
	}
	if _, err := New(137); err != nil {
		t.Errorf("New(137) failed: %v", err)
	}
}

func TestZeroSlowdownBelowPeak(t *testing.T) {
	// The paper's central criticism: Gables predicts no slowdown whenever
	// total demand is below peak. This is a fixed point of the baseline.
	m, _ := New(137)
	cases := [][2]float64{{10, 20}, {60, 70}, {100, 37}, {0, 137}}
	for _, c := range cases {
		if got := m.Predict(c[0], c[1]); got != 100 {
			t.Errorf("Predict(%v,%v) = %v, want 100 (total ≤ peak)", c[0], c[1], got)
		}
	}
}

func TestProportionalShareAbovePeak(t *testing.T) {
	m, _ := New(100)
	// total 200 → each achieves half its demand → RS 50.
	if got := m.Predict(120, 80); math.Abs(got-50) > 1e-9 {
		t.Errorf("Predict(120,80) = %v, want 50", got)
	}
	if got := m.Predict(50, 150); math.Abs(got-50) > 1e-9 {
		t.Errorf("Predict(50,150) = %v, want 50", got)
	}
}

func TestPredictProperties(t *testing.T) {
	m, _ := New(137)
	f := func(xRaw, y1Raw, y2Raw uint16) bool {
		x := float64(xRaw % 300)
		y1, y2 := float64(y1Raw%300), float64(y2Raw%300)
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		a, b := m.Predict(x, y1), m.Predict(x, y2)
		return a > 0 && a <= 100 && b <= a+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Errorf("gables properties violated: %v", err)
	}
}

func TestNegativeInputsClamped(t *testing.T) {
	m, _ := New(100)
	if got := m.Predict(-5, -5); got != 100 {
		t.Errorf("Predict(-5,-5) = %v, want 100", got)
	}
}

func TestPredictSlowdown(t *testing.T) {
	m, _ := New(100)
	if got := m.PredictSlowdown(60, 30); got != 1 {
		t.Errorf("slowdown below peak = %v, want 1", got)
	}
	if got := m.PredictSlowdown(120, 80); math.Abs(got-2) > 1e-9 {
		t.Errorf("slowdown at 2× peak = %v, want 2", got)
	}
}

func TestAttainableRoofline(t *testing.T) {
	m, _ := New(100) // 100 GB/s
	// Compute-bound: low peakOps.
	if got := m.Attainable(1e9, 10); got != 1e9 {
		t.Errorf("compute-bound attainable = %v, want 1e9", got)
	}
	// Memory-bound: OI 0.5 ops/byte × 100 GB/s = 5e10 ops/s.
	if got := m.Attainable(1e12, 0.5); math.Abs(got-5e10) > 1 {
		t.Errorf("memory-bound attainable = %v, want 5e10", got)
	}
}
