// Package gables implements the baseline contention model the paper
// compares against: Gables (Hill & Reddi, HPCA 2019), a Roofline-style
// analytical model for mobile SoCs.
//
// Gables assumes memory bandwidth is proportionally distributed among the
// PUs: a processor under contention keeps its full requested bandwidth as
// long as the sum of all requested bandwidths stays below the SoC peak;
// beyond that, each processor receives its requested share pro-rated to the
// available bandwidth. The PCCS paper shows both assumptions fail on real
// SoCs (slowdowns appear well before the peak is reached, and fairness
// control produces flat tails Gables cannot express).
package gables

import (
	"fmt"
	"math"
)

// Model is a Gables contention model for one SoC.
type Model struct {
	// PeakBW is the SoC's peak memory bandwidth in GB/s, assumed by Gables
	// to be fully achievable.
	PeakBW float64
}

// New builds a Gables model for an SoC with the given peak bandwidth.
func New(peakGBps float64) (Model, error) {
	if peakGBps <= 0 || math.IsNaN(peakGBps) {
		return Model{}, fmt.Errorf("gables: peak bandwidth must be positive, got %v", peakGBps)
	}
	return Model{PeakBW: peakGBps}, nil
}

// Predict returns the achieved relative speed (percent of standalone) for a
// kernel demanding x GB/s under total external demand y GB/s.
//
//	x + y ≤ peak : no slowdown (RS = 100)
//	x + y > peak : effective BW = x · peak/(x+y), so RS = 100·peak/(x+y)
//
//pccs:hotpath baseline predict kernel: pure arithmetic, compared head-to-head with core.Params.Predict
func (m Model) Predict(x, y float64) float64 {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	total := x + y
	if total <= m.PeakBW || total == 0 {
		return 100
	}
	return 100 * m.PeakBW / total
}

// PredictSlowdown returns the predicted slowdown factor (≥ 1).
//
//pccs:hotpath one division on top of Predict
func (m Model) PredictSlowdown(x, y float64) float64 {
	return 100 / m.Predict(x, y)
}

// Attainable is the classic Roofline attainable-performance bound that
// Gables builds on: min(peak compute, operational intensity × peak BW).
// peakOps is in operations/s, oi in operations/byte, and the memory term
// uses the model's peak bandwidth. It is exposed for the design-space
// exploration comparisons.
func (m Model) Attainable(peakOps, oi float64) float64 {
	memBound := oi * m.PeakBW * 1e9
	if peakOps < memBound {
		return peakOps
	}
	return memBound
}
