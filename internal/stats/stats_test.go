package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanMedianMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); math.Abs(got-2.8) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %v", got)
	}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestEmptySlices(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty mean/median should be 0")
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Error("empty max/min should be ∓Inf")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestErrorTracker(t *testing.T) {
	e := NewErrorTracker("PCCS")
	if e.MeanAbs() != 0 || e.MaxAbs() != 0 || e.Count() != 0 {
		t.Error("fresh tracker should be zero")
	}
	e.Add(90, 95)
	e.Add(80, 70)
	if e.Count() != 2 {
		t.Errorf("Count = %d", e.Count())
	}
	if got := e.MeanAbs(); math.Abs(got-7.5) > 1e-12 {
		t.Errorf("MeanAbs = %v", got)
	}
	if got := e.MaxAbs(); got != 10 {
		t.Errorf("MaxAbs = %v", got)
	}
	if s := e.String(); !strings.Contains(s, "PCCS") || !strings.Contains(s, "7.50") {
		t.Errorf("String = %q", s)
	}
}
