// Package stats provides the small statistical helpers the experiment
// harness uses to compare model predictions against measured ground truth.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Median returns the median, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// AbsErr is the absolute difference |predicted − actual|.
func AbsErr(predicted, actual float64) float64 { return math.Abs(predicted - actual) }

// ErrorTracker accumulates per-point prediction errors, in the units of the
// quantity compared (the experiments compare achieved relative speeds in
// percentage points, matching how the paper reports errors).
type ErrorTracker struct {
	Name string
	errs []float64
}

// NewErrorTracker names a tracker (e.g. "PCCS" or "Gables").
func NewErrorTracker(name string) *ErrorTracker { return &ErrorTracker{Name: name} }

// Add records a prediction/actual pair.
func (e *ErrorTracker) Add(predicted, actual float64) {
	e.errs = append(e.errs, AbsErr(predicted, actual))
}

// Count returns the number of recorded points.
func (e *ErrorTracker) Count() int { return len(e.errs) }

// MeanAbs returns the mean absolute error.
func (e *ErrorTracker) MeanAbs() float64 { return Mean(e.errs) }

// MaxAbs returns the worst-case absolute error.
func (e *ErrorTracker) MaxAbs() float64 {
	if len(e.errs) == 0 {
		return 0
	}
	return Max(e.errs)
}

// String renders a one-line summary.
func (e *ErrorTracker) String() string {
	return fmt.Sprintf("%s: mean |err| %.2f, max %.2f over %d points",
		e.Name, e.MeanAbs(), e.MaxAbs(), e.Count())
}
