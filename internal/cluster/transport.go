package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Transport carries the three cluster RPCs. Production uses HTTPTransport
// against peer daemons' /v1/cluster endpoints; chaos tests wrap one to
// inject partitions (refused pairs) and slowness without touching the
// protocol logic.
type Transport interface {
	// Lease asks the node at baseURL to execute a lease.
	Lease(ctx context.Context, baseURL string, req LeaseRequest) (*LeaseResponse, error)
	// Ping probes the node's health and load.
	Ping(ctx context.Context, baseURL string) (*PingInfo, error)
	// Replicate pushes one versioned model to the node.
	Replicate(ctx context.Context, baseURL string, env ReplicaEnvelope) (*ReplicateAck, error)
}

// Paths of the peer protocol, registered by internal/server.
const (
	PathLease  = "/v1/cluster/lease"
	PathPing   = "/v1/cluster/ping"
	PathModels = "/v1/cluster/models"
)

// HTTPTransport is the production Transport: JSON POSTs (GET for ping) to
// the peer's /v1/cluster endpoints.
type HTTPTransport struct {
	Client *http.Client
}

// NewHTTPTransport wraps an HTTP client (nil selects one with a 60s
// overall timeout; per-call ctx deadlines still bind tighter).
func NewHTTPTransport(c *http.Client) *HTTPTransport {
	if c == nil {
		c = &http.Client{Timeout: 60 * time.Second}
	}
	return &HTTPTransport{Client: c}
}

func (t *HTTPTransport) Lease(ctx context.Context, baseURL string, req LeaseRequest) (*LeaseResponse, error) {
	var resp LeaseResponse
	if err := t.post(ctx, baseURL+PathLease, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Ping(ctx context.Context, baseURL string) (*PingInfo, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+PathPing, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	var info PingInfo
	if err := t.do(hreq, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

func (t *HTTPTransport) Replicate(ctx context.Context, baseURL string, env ReplicaEnvelope) (*ReplicateAck, error) {
	var ack ReplicateAck
	if err := t.post(ctx, baseURL+PathModels, env, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

func (t *HTTPTransport) post(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: encoding request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	return t.do(hreq, out)
}

func (t *HTTPTransport) do(hreq *http.Request, out any) error {
	resp, err := t.Client.Do(hreq)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", hreq.URL.Path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return fmt.Errorf("cluster: %s: reading response: %w", hreq.URL.Path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return &PeerError{Path: hreq.URL.Path, Status: resp.StatusCode, Body: trim(body)}
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("cluster: %s: decoding response: %w", hreq.URL.Path, err)
	}
	return nil
}

// PeerError is a non-200 answer from a peer endpoint.
type PeerError struct {
	Path   string
	Status int
	Body   string
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("cluster: peer %s returned %d: %s", e.Path, e.Status, e.Body)
}

func trim(b []byte) string {
	const max = 200
	s := string(b)
	if len(s) > max {
		s = s[:max] + "…"
	}
	return s
}
