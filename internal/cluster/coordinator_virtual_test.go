package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/processorcentricmodel/pccs/internal/clock"
)

// dispatchStamp records one OnDispatch observation on the virtual clock.
type dispatchStamp struct {
	node    string
	attempt int
	at      time.Time
}

// tickHarness wires a coordinator test onto a virtual clock with the
// busy-token handshake that makes dispatch timing exact: OnDispatch (which
// the loop calls synchronously, before the dispatch goroutine exists) takes
// a busy token, freezing virtual time until the scripted transport has
// registered its own virtual delay and releases it. Time can then only
// advance through deadlines both sides have already declared, so for a
// fixed seed every retry and hedge fires at an exactly predictable instant.
type tickHarness struct {
	v *clock.Virtual

	mu     sync.Mutex
	stamps []dispatchStamp
	rel    func()
}

func newTickHarness() *tickHarness { return &tickHarness{v: clock.NewVirtual()} }

func (h *tickHarness) onDispatch(_ string, node string, attempt int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stamps = append(h.stamps, dispatchStamp{node: node, attempt: attempt, at: h.v.Now()})
	h.rel = h.v.Busy()
}

// takeRelease hands the pending busy-token release to the transport.
func (h *tickHarness) takeRelease() func() {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.rel
	h.rel = nil
	if r == nil {
		r = func() {}
	}
	return r
}

func (h *tickHarness) dispatches() []dispatchStamp {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]dispatchStamp(nil), h.stamps...)
}

// scriptedTransport runs a per-call script for leases; pings succeed unless
// a ping script is set.
type scriptedTransport struct {
	lease func(ctx context.Context, url string, req LeaseRequest) (*LeaseResponse, error)
	ping  func(ctx context.Context, url string) (*PingInfo, error)
}

func (t *scriptedTransport) Lease(ctx context.Context, url string, req LeaseRequest) (*LeaseResponse, error) {
	return t.lease(ctx, url, req)
}

func (t *scriptedTransport) Ping(ctx context.Context, url string) (*PingInfo, error) {
	if t.ping != nil {
		return t.ping(ctx, url)
	}
	return &PingInfo{Node: url}, nil
}

func (t *scriptedTransport) Replicate(ctx context.Context, url string, env ReplicaEnvelope) (*ReplicateAck, error) {
	return &ReplicateAck{Applied: true, Version: env.Version}, nil
}

// TestBackoffFiresAtExactVirtualTicks pins the deterministic-jitter backoff
// schedule: with a fixed coordinator seed, the retry after failure n must be
// dispatched at exactly fail-time + backoff(leaseID, n) on the virtual
// clock — not a tick early, not a tick late.
func TestBackoffFiresAtExactVirtualTicks(t *testing.T) {
	h := newTickHarness()
	stop := h.v.AutoAdvance()
	defer stop()

	const failDelay = 5 * time.Millisecond
	var calls int
	var callMu sync.Mutex
	tr := &scriptedTransport{}
	tr.lease = func(ctx context.Context, url string, req LeaseRequest) (*LeaseResponse, error) {
		ch := h.v.After(failDelay)
		release := h.takeRelease()
		release()
		<-ch
		callMu.Lock()
		calls++
		n := calls
		callMu.Unlock()
		if n <= 3 {
			return nil, fmt.Errorf("scripted failure %d", n)
		}
		return &LeaseResponse{ID: req.ID, Node: "n1", AchievedGBps: []float64{42}}, nil
	}

	node, err := NewNode(Config{ID: "n1", Peers: map[string]string{"n1": "u1"}, Transport: tr, Clock: h.v})
	if err != nil {
		t.Fatal(err)
	}
	c := &Coordinator{
		Node:           node,
		PointsPerLease: 1,
		LeaseTimeout:   time.Second,
		HedgeAfter:     10 * time.Second, // never hedges: failures return first
		MaxAttempts:    6,
		Seed:           99,
		OnDispatch:     h.onDispatch,
	}

	out, err := c.runStage(context.Background(), "t", SweepPlan{Platform: "x"}, StageStandalone, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 42 {
		t.Fatalf("stage result = %v", out)
	}

	st := h.dispatches()
	if len(st) != 4 {
		t.Fatalf("expected 4 dispatches, got %d: %+v", len(st), st)
	}
	epoch := st[0].at
	want := epoch
	for i, s := range st {
		if s.attempt != i+1 {
			t.Fatalf("dispatch %d has attempt %d", i, s.attempt)
		}
		if !s.at.Equal(want) {
			t.Fatalf("dispatch %d fired at %v, want exactly %v (off by %v)",
				i+1, s.at.Sub(epoch), want.Sub(epoch), s.at.Sub(want))
		}
		// Next retry: this attempt fails after failDelay, then waits out
		// the deterministic backoff for the attempt count so far.
		want = s.at.Add(failDelay).Add(c.backoff("t/standalone/0", i+1))
	}

	stats := node.Stats()
	if stats.LeasesGranted != 4 || stats.LeasesReassigned != 3 || stats.HedgedRequests != 0 {
		t.Fatalf("stats = %+v, want 4 granted / 3 reassigned / 0 hedged", stats)
	}
}

// TestBackoffJitterIsSeedStable pins that the backoff sequence is a pure
// function of (seed, lease ID, attempt): same seed, same ticks; different
// seed, different jitter.
func TestBackoffJitterIsSeedStable(t *testing.T) {
	mk := func(seed uint64) *Coordinator {
		return &Coordinator{Seed: seed, BackoffBase: 50 * time.Millisecond, BackoffCap: 2 * time.Second}
	}
	a, b, c := mk(1), mk(1), mk(2)
	sameSeedStable, otherSeedIdentical := true, true
	for attempt := 1; attempt <= 5; attempt++ {
		da, db, dc := a.backoff("lease", attempt), b.backoff("lease", attempt), c.backoff("lease", attempt)
		if da != db {
			sameSeedStable = false
		}
		if da != dc {
			otherSeedIdentical = false
		}
		// Jitter draws from [d/2, d] for d = base << (attempt-1); the cap
		// never binds for base 50ms over five attempts.
		d := 50 * time.Millisecond << (attempt - 1)
		if da < d/2 || da > d {
			t.Fatalf("attempt %d backoff %v outside [%v, %v]", attempt, da, d/2, d)
		}
	}
	if !sameSeedStable {
		t.Fatal("equal seeds produced different backoff ticks")
	}
	if otherSeedIdentical {
		t.Fatal("different seeds produced an identical backoff sequence")
	}
}

// TestHedgeFiresAtExactVirtualTick pins hedged-request timing: a lease
// still in flight at started+HedgeAfter gets its single duplicate at
// exactly that instant, routed to a different node than the primary.
func TestHedgeFiresAtExactVirtualTick(t *testing.T) {
	h := newTickHarness()
	stop := h.v.AutoAdvance()
	defer stop()

	const hedgeDelay = 500 * time.Millisecond
	tr := &scriptedTransport{}
	tr.lease = func(ctx context.Context, url string, req LeaseRequest) (*LeaseResponse, error) {
		if url == "u1" {
			// Primary: a slow node, stuck until its lease deadline.
			release := h.takeRelease()
			release()
			<-ctx.Done()
			return nil, ctx.Err()
		}
		// Hedge target: healthy, answers after a short virtual delay.
		ch := h.v.After(5 * time.Millisecond)
		release := h.takeRelease()
		release()
		<-ch
		return &LeaseResponse{ID: req.ID, Node: "n2", AchievedGBps: []float64{7}}, nil
	}

	node, err := NewNode(Config{
		ID:        "n1",
		Peers:     map[string]string{"n1": "u1", "n2": "u2"},
		Transport: tr,
		Clock:     h.v,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &Coordinator{
		Node:           node,
		PointsPerLease: 1,
		LeaseTimeout:   2 * time.Second,
		HedgeAfter:     hedgeDelay,
		MaxAttempts:    6,
		Seed:           7,
		OnDispatch:     h.onDispatch,
	}

	out, err := c.runStage(context.Background(), "t", SweepPlan{Platform: "x"}, StageStandalone, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 7 {
		t.Fatalf("stage result = %v", out)
	}

	st := h.dispatches()
	if len(st) != 2 {
		t.Fatalf("expected primary + hedge, got %d dispatches: %+v", len(st), st)
	}
	if st[0].node != "n1" || st[1].node != "n2" {
		t.Fatalf("hedge did not avoid the primary: %+v", st)
	}
	if got := st[1].at.Sub(st[0].at); got != hedgeDelay {
		t.Fatalf("hedge fired %v after the primary, want exactly %v", got, hedgeDelay)
	}
	if stats := node.Stats(); stats.HedgedRequests != 1 {
		t.Fatalf("stats = %+v, want exactly one hedge", stats)
	}
}

// TestProbeRoundCancelledMidFlightIsDiscarded pins the prober's
// cancellation rule: a round whose parent context ends mid-flight must not
// advance any hysteresis counter — cancellation is evidence about the
// caller, not the peers. No auto-advancer here: virtual time standing
// still keeps the probe timeout from firing, so the only way the blocked
// ping can return is the parent cancellation under test.
func TestProbeRoundCancelledMidFlightIsDiscarded(t *testing.T) {
	v := clock.NewVirtual()

	pinged := make(chan struct{}, 8)
	tr := &scriptedTransport{
		ping: func(ctx context.Context, url string) (*PingInfo, error) {
			pinged <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}
	node, err := NewNode(Config{
		ID:           "n1",
		Peers:        map[string]string{"n1": "u1", "n2": "u2"},
		Transport:    tr,
		Clock:        v,
		DownAfter:    1, // a single counted failure would flip n2 down
		ProbeTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		node.Prober().ProbeOnce(ctx)
	}()
	<-pinged
	cancel()
	<-done

	if !node.Prober().Up("n2") {
		t.Fatal("cancelled probe round advanced the hysteresis counter")
	}
}
