package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/clock"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// Coordinator fans one construction sweep out across the cluster as
// leases and reassembles the results bit-identically to a single-node run.
//
// The reassembly argument: the sweep's point enumeration is a pure
// function of (platform, target PU, pressure PU, run config) via
// calib.DefaultSweep + calib.SweepKernels/CorunPoints, every point is an
// independent deterministic simulation, lease responses carry achieved
// bandwidths in enumeration order as JSON float64s (shortest round-trip
// encoding — bit-exact on the wire), the coordinator writes each response
// into the result slice at the lease's own offsets, and the matrix
// arithmetic runs once, here, through calib.AssembleMatrix — the identical
// code path the local sweep uses. Which node served a lease, how often it
// was reassigned, and whether a hedge won are all invisible to the output.
//
// The robustness machinery around that core: leases time out and are
// reassigned to a different live node (capped deterministic-jitter
// exponential backoff between attempts), one hedged duplicate fires for a
// lease that is slow but not yet failed (first success wins, the loser is
// discarded), and node candidates are filtered through the prober so a
// dead peer stops receiving work within its hysteresis window.
type Coordinator struct {
	Node *Node

	// PointsPerLease is the lease granularity (default 4 points).
	PointsPerLease int
	// LeaseTimeout bounds one lease execution attempt (default 30s).
	LeaseTimeout time.Duration
	// HedgeAfter is how long a lease may stay in flight before the single
	// hedged duplicate fires (default LeaseTimeout/3).
	HedgeAfter time.Duration
	// MaxAttempts caps dispatches per lease, hedges included (default 6).
	MaxAttempts int
	// BackoffBase/BackoffCap shape the retry backoff (defaults 50ms, 2s).
	BackoffBase, BackoffCap time.Duration
	// Seed drives the deterministic backoff jitter and tie-breaking.
	Seed uint64
	// Concurrency is the in-flight lease cap per node (default 2).
	Concurrency int

	// OnDispatch, when set, observes every dispatch (test hook: chaos
	// tests count dispatches to trigger kills and partitions at a
	// deterministic point of the sweep).
	OnDispatch func(leaseID, node string, attempt int)
}

func (c *Coordinator) pointsPerLease() int {
	if c.PointsPerLease > 0 {
		return c.PointsPerLease
	}
	return 4
}

func (c *Coordinator) leaseTimeout() time.Duration {
	if c.LeaseTimeout > 0 {
		return c.LeaseTimeout
	}
	return 30 * time.Second
}

func (c *Coordinator) hedgeAfter() time.Duration {
	if c.HedgeAfter > 0 {
		return c.HedgeAfter
	}
	return c.leaseTimeout() / 3
}

func (c *Coordinator) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 6
}

func (c *Coordinator) backoff(leaseID string, attempt int) time.Duration {
	base := c.BackoffBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	cap := c.BackoffCap
	if cap <= 0 {
		cap = 2 * time.Second
	}
	d := base << uint(attempt-1)
	if d > cap || d <= 0 {
		d = cap
	}
	// Deterministic jitter in [d/2, d): a pure function of (seed, lease,
	// attempt), so a replayed chaos run backs off identically.
	h := fnv.New64a()
	h.Write([]byte(leaseID))
	r := splitmix64(c.Seed ^ h.Sum64() ^ uint64(attempt))
	return d/2 + time.Duration(r%uint64(d/2+1))
}

func (c *Coordinator) concurrency() int {
	if c.Concurrency > 0 {
		return c.Concurrency
	}
	return 2
}

// splitmix64 is the SplitMix64 finalizer — the same mixing construction
// internal/faultinject uses for pure seed-driven decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// lease is the coordinator's per-lease dispatch state.
type lease struct {
	idx      int // lease ordinal within the stage
	lo, hi   int // point range [lo, hi)
	id       string
	done     bool
	attempts int       // dispatches so far (hedges included)
	inflight int       // dispatches currently outstanding
	hedged   bool      // the single hedge has been spent
	started  time.Time // when the newest dispatch left (hedge clock)
	ready    time.Time // backoff gate: no dispatch before this instant
	lastNode string    // previous assignee, avoided on reassignment
}

// arrival is one dispatch finishing.
type arrival struct {
	lease   int
	node    string
	hedge   bool
	resp    *LeaseResponse
	err     error
	elapsed time.Duration
}

// runStage executes one sweep stage across the cluster and returns its
// achieved bandwidths in enumeration order.
func (c *Coordinator) runStage(ctx context.Context, name string, plan SweepPlan, stage string, kept []int, total int) ([]float64, error) {
	if total <= 0 {
		return nil, fmt.Errorf("cluster: stage %s/%s has no points", name, stage)
	}
	out := make([]float64, total)
	per := c.pointsPerLease()
	var leases []*lease
	for lo := 0; lo < total; lo += per {
		hi := lo + per
		if hi > total {
			hi = total
		}
		leases = append(leases, &lease{
			idx: len(leases), lo: lo, hi: hi,
			id: fmt.Sprintf("%s/%s/%d", name, stage, len(leases)),
		})
	}

	results := make(chan arrival, len(leases)*2)
	busy := make(map[string]int) // node → outstanding dispatches
	remaining := len(leases)

	clk := c.Node.Clock()
	dispatch := func(l *lease, node string, hedge bool) {
		l.attempts++
		l.inflight++
		l.started = clk.Now()
		l.lastNode = node
		busy[node]++
		var reassigned, hedges uint64
		if hedge {
			l.hedged = true
			hedges = 1
		} else if l.attempts > 1 {
			reassigned = 1
		}
		c.Node.countLease(1, reassigned, hedges)
		if c.OnDispatch != nil {
			c.OnDispatch(l.id, node, l.attempts)
		}
		req := LeaseRequest{ID: l.id, Plan: plan, Stage: stage, Kept: kept, Lo: l.lo, Hi: l.hi}
		url := c.Node.URL(node)
		idx, timeout := l.idx, c.leaseTimeout()
		go func() {
			start := clk.Now()
			lctx, cancel := clk.WithTimeout(ctx, timeout)
			defer cancel()
			resp, err := c.Node.Transport().Lease(lctx, url, req)
			results <- arrival{lease: idx, node: node, hedge: hedge, resp: resp, err: err, elapsed: clk.Since(start)}
		}()
	}

	// candidates lists the live nodes with dispatch capacity, least-busy
	// first (ties on ID), excluding `avoid` when another choice exists.
	candidates := func(avoid string) []string {
		var live []string
		for _, id := range c.Node.NodeIDs() {
			if id == c.Node.ID() || c.Node.Prober().Up(id) {
				if busy[id] < c.concurrency() {
					live = append(live, id)
				}
			}
		}
		sort.Slice(live, func(i, j int) bool {
			if busy[live[i]] != busy[live[j]] {
				return busy[live[i]] < busy[live[j]]
			}
			return live[i] < live[j]
		})
		if avoid != "" && len(live) > 1 {
			for i, id := range live {
				if id == avoid {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		}
		return live
	}

	for remaining > 0 {
		// Dispatch everything dispatchable: fresh/requeued leases first,
		// then at most one hedge for the slowest eligible in-flight lease.
		now := clk.Now()
		progressed := true
		for progressed {
			progressed = false
			for _, l := range leases {
				if l.done || l.inflight > 0 || l.attempts >= c.maxAttempts() || now.Before(l.ready) {
					continue
				}
				cands := candidates(l.lastNode)
				if len(cands) == 0 {
					break
				}
				dispatch(l, cands[0], false)
				progressed = true
			}
		}
		for _, l := range leases {
			if l.done || l.hedged || l.inflight != 1 || l.attempts >= c.maxAttempts() {
				continue
			}
			if now.Sub(l.started) < c.hedgeAfter() {
				continue
			}
			cands := candidates(l.lastNode)
			if len(cands) == 0 {
				break
			}
			dispatch(l, cands[0], true)
		}

		// Anything in flight? Then block on the next arrival or the next
		// timed event (a backoff gate opening or a hedge coming due).
		inflight := 0
		var nextEvent time.Time
		for _, l := range leases {
			if l.done {
				continue
			}
			inflight += l.inflight
			if l.inflight == 0 && l.attempts < c.maxAttempts() && l.ready.After(now) {
				if nextEvent.IsZero() || l.ready.Before(nextEvent) {
					nextEvent = l.ready
				}
			}
			if l.inflight == 1 && !l.hedged && l.attempts < c.maxAttempts() {
				due := l.started.Add(c.hedgeAfter())
				if nextEvent.IsZero() || due.Before(nextEvent) {
					nextEvent = due
				}
			}
		}
		if inflight == 0 && nextEvent.IsZero() {
			// Nothing running, nothing scheduled: every unfinished lease
			// exhausted its attempts or no node can take it.
			for _, l := range leases {
				if !l.done {
					return nil, fmt.Errorf("cluster: lease %s failed after %d attempts", l.id, l.attempts)
				}
			}
		}

		var timer *clock.Timer
		var timerC <-chan time.Time
		if inflight == 0 || !nextEvent.IsZero() {
			wait := 10 * time.Millisecond
			if !nextEvent.IsZero() {
				if d := clk.Until(nextEvent); d > wait {
					wait = d
				}
			}
			timer = clk.NewTimer(wait)
			timerC = timer.C
		}
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return nil, ctx.Err()
		case a := <-results:
			if timer != nil {
				timer.Stop()
			}
			busy[a.node]--
			l := leases[a.lease]
			l.inflight--
			if l.done {
				break // late duplicate (lost hedge or stale reassignment)
			}
			if a.err != nil {
				if l.inflight == 0 {
					l.ready = clk.Now().Add(c.backoff(l.id, l.attempts))
				}
				break
			}
			if got, want := len(a.resp.AchievedGBps), l.hi-l.lo; got != want {
				if l.inflight == 0 {
					l.ready = clk.Now().Add(c.backoff(l.id, l.attempts))
				}
				break
			}
			copy(out[l.lo:l.hi], a.resp.AchievedGBps)
			l.done = true
			remaining--
		case <-timerC:
		}
	}
	return out, nil
}

// Sweep measures one PU's rela matrix with the sweep fanned out across the
// cluster. The sweep configuration is derived — not passed — so it is
// guaranteed to be the one every serving node re-derives from the plan.
func (c *Coordinator) Sweep(ctx context.Context, b soc.Backend, targetPU, pressurePU int, rc soc.RunConfig) (*calib.Matrix, error) {
	cfg := calib.DefaultSweep(b, targetPU, pressurePU)
	cfg.Run = rc
	if err := cfg.Validate(b); err != nil {
		return nil, err
	}
	plan := SweepPlan{Platform: b.PlatformName(), TargetPU: targetPU, PressurePU: pressurePU, Run: rc}
	name := fmt.Sprintf("%s/pu%d", b.PlatformName(), targetPU)
	kernels := calib.SweepKernels(cfg)

	alone, err := c.runStage(ctx, name, plan, StageStandalone, nil, len(kernels))
	if err != nil {
		return nil, err
	}
	kept := calib.KeptIndices(alone)
	corun, err := c.runStage(ctx, name, plan, StageCorun, kept, len(kept)*len(cfg.ExtGBps))
	if err != nil {
		return nil, err
	}
	return calib.AssembleMatrix(b, cfg, alone, kept, corun)
}

// ConstructPU builds the PCCS model for one PU with the sweep distributed
// across the cluster — the drop-in peer of calib.ConstructPUContext.
func (c *Coordinator) ConstructPU(ctx context.Context, b soc.Backend, target int, rc soc.RunConfig, opt calib.Options) (core.Params, *calib.Matrix, error) {
	pressure, err := calib.PressurePUFor(b, target)
	if err != nil {
		return core.Params{}, nil, err
	}
	m, err := c.Sweep(ctx, b, target, pressure, rc)
	if err != nil {
		return core.Params{}, nil, err
	}
	params, err := calib.Extract(m, opt)
	if err != nil {
		return core.Params{}, nil, err
	}
	params.Backend = soc.BackendFamilyOf(b)
	return params, m, nil
}

// ConstructPlatform builds models for every PU of the platform across the
// cluster — the drop-in peer of calib.ConstructPlatformContext.
func (c *Coordinator) ConstructPlatform(ctx context.Context, b soc.Backend, rc soc.RunConfig, opt calib.Options) (calib.ModelSet, error) {
	set := calib.ModelSet{}
	for i := range b.PUList() {
		params, _, err := c.ConstructPU(ctx, b, i, rc, opt)
		if err != nil {
			return nil, fmt.Errorf("cluster: constructing %s/%s: %w", b.PlatformName(), b.PUList()[i].Name, err)
		}
		set.Put(params)
	}
	return set, nil
}
