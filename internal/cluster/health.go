package cluster

import (
	"context"
	"sort"
	"sync"
	"time"
)

// PeerState is one peer's health as the prober sees it.
type PeerState struct {
	ID string `json:"id"`
	Up bool   `json:"up"`
	// Consecutive counts successes while Up is pending/holding, failures
	// while a down transition is pending — the hysteresis progress.
	Consecutive int `json:"consecutive"`
	// Load is the peer's last successful ping payload (zero when the peer
	// has never answered).
	Load PingInfo `json:"load"`
}

// Prober tracks peer liveness with hysteresis: a peer starts up
// (optimistically — the common case is a healthy cluster booting), flips
// down only after DownAfter consecutive ping failures, and back up only
// after UpAfter consecutive successes. The asymmetry means one dropped
// probe during a GC pause doesn't flap the routing tables, while a real
// death is confirmed within DownAfter probe intervals.
type Prober struct {
	transport Transport
	peers     map[string]string // peer ID → base URL (self excluded)
	upAfter   int
	downAfter int
	timeout   time.Duration

	// onUp is called (outside the lock) when a peer transitions down→up —
	// the hook that flushes queued replication after a partition heals.
	onUp func(peer string)

	mu    sync.Mutex
	state map[string]*peerHealth // guarded by mu
}

type peerHealth struct {
	up    bool
	succ  int // consecutive successes since last failure
	fail  int // consecutive failures since last success
	load  PingInfo
	known bool // at least one probe answered ever
}

//pccs:allow-guardedby runs before the Prober escapes its constructor, so no probe goroutine can race the seed writes
func newProber(cfg Config, onUp func(string)) *Prober {
	p := &Prober{
		transport: cfg.Transport,
		peers:     make(map[string]string),
		upAfter:   cfg.UpAfter,
		downAfter: cfg.DownAfter,
		timeout:   cfg.ProbeTimeout,
		onUp:      onUp,
		state:     make(map[string]*peerHealth),
	}
	for id, url := range cfg.Peers {
		if id == cfg.ID {
			continue
		}
		p.peers[id] = url
		p.state[id] = &peerHealth{up: true}
	}
	return p
}

// Up reports whether a peer is currently considered reachable. Unknown IDs
// (including this node's own) report true: a node always trusts itself,
// and routing must not blackhole on a typo.
func (p *Prober) Up(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[id]; ok {
		return st.up
	}
	return true
}

// States snapshots every peer's health, sorted by ID.
func (p *Prober) States() []PeerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerState, 0, len(p.state))
	for id, st := range p.state {
		consec := st.succ
		if st.up {
			consec = st.fail
		}
		out = append(out, PeerState{ID: id, Up: st.up, Consecutive: consec, Load: st.load})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ProbeOnce pings every peer once and applies the hysteresis transitions.
// It is the unit the background loop repeats, exported so tests can step
// peer health deterministically instead of sleeping through intervals.
func (p *Prober) ProbeOnce(ctx context.Context) {
	ids := make([]string, 0, len(p.peers))
	for id := range p.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var cameUp []string
	for _, id := range ids {
		pctx, cancel := context.WithTimeout(ctx, p.timeout)
		info, err := p.transport.Ping(pctx, p.peers[id])
		cancel()
		if p.record(id, info, err) {
			cameUp = append(cameUp, id)
		}
	}
	if p.onUp != nil {
		for _, id := range cameUp {
			p.onUp(id)
		}
	}
}

// record applies one probe result and reports whether the peer just
// transitioned down→up.
func (p *Prober) record(id string, info *PingInfo, err error) (cameUp bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.state[id]
	if st == nil {
		return false
	}
	if err != nil {
		st.succ = 0
		st.fail++
		if st.up && st.fail >= p.downAfter {
			st.up = false
		}
		return false
	}
	st.fail = 0
	st.succ++
	st.load = *info
	st.known = true
	if !st.up && st.succ >= p.upAfter {
		st.up = true
		return true
	}
	return false
}

// Start runs the probe loop every interval until ctx ends.
func (p *Prober) Start(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				p.ProbeOnce(ctx)
			}
		}
	}()
}
