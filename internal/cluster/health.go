package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"github.com/processorcentricmodel/pccs/internal/clock"
)

// PeerState is one peer's health as the prober sees it.
type PeerState struct {
	ID string `json:"id"`
	Up bool   `json:"up"`
	// Consecutive counts successes while Up is pending/holding, failures
	// while a down transition is pending — the hysteresis progress.
	Consecutive int `json:"consecutive"`
	// Load is the peer's last successful ping payload (zero when the peer
	// has never answered).
	Load PingInfo `json:"load"`
}

// Prober tracks peer liveness with hysteresis: a peer starts up
// (optimistically — the common case is a healthy cluster booting), flips
// down only after DownAfter consecutive ping failures, and back up only
// after UpAfter consecutive successes. The asymmetry means one dropped
// probe during a GC pause doesn't flap the routing tables, while a real
// death is confirmed within DownAfter probe intervals.
//
// Every peer in a round is probed concurrently, so one round is one
// observation of the whole cluster at (close to) one instant. The probes
// used to run sequentially, each waiting out its own timeout before the
// next began — under a symmetric partition that healed mid-round, peers
// early in the ID order were observed partitioned and peers later in the
// order were observed healed, so their hysteresis counters diverged and
// lease routing flapped between nodes that were in identical network
// positions. Concurrent probes close that window: the DST schedule in
// internal/dst's prober regression test heals a partition mid-probe-round
// and asserts both sides converge together.
type Prober struct {
	transport Transport
	clk       clock.Clock
	peers     map[string]string // peer ID → base URL (self excluded)
	upAfter   int
	downAfter int
	timeout   time.Duration

	// onAlive is called (outside the lock) for every peer a probe round
	// saw healthy — both down→up transitions and steady-state healthy
	// peers. The node hangs its pending-replication flush here: flushing
	// on every healthy observation (not only on the up transition) means
	// an envelope queued by a transient replication failure still drains
	// even if the peer never dipped below the hysteresis threshold.
	onAlive func(peer string)

	mu    sync.Mutex
	state map[string]*peerHealth // guarded by mu
}

type peerHealth struct {
	up    bool
	succ  int // consecutive successes since last failure
	fail  int // consecutive failures since last success
	load  PingInfo
	known bool // at least one probe answered ever
}

//pccs:allow-guardedby runs before the Prober escapes its constructor, so no probe goroutine can race the seed writes
func newProber(cfg Config, onAlive func(string)) *Prober {
	p := &Prober{
		transport: cfg.Transport,
		clk:       cfg.Clock,
		peers:     make(map[string]string),
		upAfter:   cfg.UpAfter,
		downAfter: cfg.DownAfter,
		timeout:   cfg.ProbeTimeout,
		onAlive:   onAlive,
		state:     make(map[string]*peerHealth),
	}
	for id, url := range cfg.Peers {
		if id == cfg.ID {
			continue
		}
		p.peers[id] = url
		p.state[id] = &peerHealth{up: true}
	}
	return p
}

// Up reports whether a peer is currently considered reachable. Unknown IDs
// (including this node's own) report true: a node always trusts itself,
// and routing must not blackhole on a typo.
func (p *Prober) Up(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[id]; ok {
		return st.up
	}
	return true
}

// States snapshots every peer's health, sorted by ID.
func (p *Prober) States() []PeerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerState, 0, len(p.state))
	for id, st := range p.state {
		consec := st.succ
		if st.up {
			consec = st.fail
		}
		out = append(out, PeerState{ID: id, Up: st.up, Consecutive: consec, Load: st.load})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ProbeOnce pings every peer once — concurrently, so the round observes
// the cluster at one instant — and applies the hysteresis transitions in
// sorted peer order. It is the unit the background loop repeats, exported
// so tests can step peer health deterministically instead of sleeping
// through intervals. A round whose parent context was cancelled is
// discarded entirely: cancellation is evidence about the caller, not the
// peers, and must not advance any failure counter.
func (p *Prober) ProbeOnce(ctx context.Context) {
	ids := make([]string, 0, len(p.peers))
	for id := range p.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	type outcome struct {
		info *PingInfo
		err  error
	}
	results := make([]outcome, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		i, id := i, id
		wg.Add(1)
		go func() {
			defer wg.Done()
			pctx, cancel := p.clk.WithTimeout(ctx, p.timeout)
			defer cancel()
			info, err := p.transport.Ping(pctx, p.peers[id])
			results[i] = outcome{info: info, err: err}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return
	}

	var alive []string
	for i, id := range ids {
		if p.record(id, results[i].info, results[i].err) {
			alive = append(alive, id)
		}
	}
	if p.onAlive != nil {
		for _, id := range alive {
			p.onAlive(id)
		}
	}
}

// record applies one probe result and reports whether the peer is healthy
// after it (probe succeeded and the peer is — or just came — up).
func (p *Prober) record(id string, info *PingInfo, err error) (alive bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.state[id]
	if st == nil {
		return false
	}
	if err != nil {
		st.succ = 0
		st.fail++
		if st.up && st.fail >= p.downAfter {
			st.up = false
		}
		return false
	}
	st.fail = 0
	st.succ++
	st.load = *info
	st.known = true
	if !st.up && st.succ >= p.upAfter {
		st.up = true
	}
	return st.up
}

// Start runs the probe loop every interval until ctx ends.
func (p *Prober) Start(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	go func() {
		t := p.clk.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				p.ProbeOnce(ctx)
			}
		}
	}()
}
