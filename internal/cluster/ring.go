package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over the cluster's node IDs. Each node
// contributes vnodes points (FNV-64a of "id#k") so ownership spreads evenly
// and adding or removing a node moves only ~1/N of the keys. The ring is
// immutable after construction — membership is fixed per process, matching
// the static -peers flag — so lookups need no locking.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted IDs
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given node IDs with vnodes virtual points
// per node (vnodes <= 0 selects 64).
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	nodes := append([]string(nil), ids...)
	sort.Strings(nodes)
	r := &Ring{nodes: nodes}
	for _, id := range nodes {
		for k := 0; k < vnodes; k++ {
			r.points = append(r.points, ringPoint{hash: ringHash(id + "#" + strconv.Itoa(k)), node: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node
	})
	return r
}

// Nodes lists the ring's members, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owners returns the first n distinct nodes clockwise from key's hash —
// the shard's primary followed by its replicas. n is capped at the ring
// size.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			owners = append(owners, p.node)
		}
	}
	return owners
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
