package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

var tinyRC = soc.RunConfig{WarmupCycles: 20_000, MeasureCycles: 60_000}

// fakeTransport executes leases in-process: each base URL gets its own
// executor, as if it were a separate daemon. Failure hooks inject
// partitions, deaths, and slowness per (url, call).
type fakeTransport struct {
	mu    sync.Mutex
	ex    map[string]*simrun.Executor // guarded by mu
	calls map[string]int              // guarded by mu; url → lease calls served

	// failLease, when set, may reject a lease before execution.
	failLease func(url string, req LeaseRequest, call int) error
	// delayLease, when set, sleeps before answering.
	delayLease func(url string, req LeaseRequest) time.Duration
	// pingDown marks URLs whose pings fail.
	pingDown map[string]bool
}

func newFakeTransport() *fakeTransport {
	return &fakeTransport{
		ex:       make(map[string]*simrun.Executor),
		calls:    make(map[string]int),
		pingDown: make(map[string]bool),
	}
}

func (t *fakeTransport) executor(url string) *simrun.Executor {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ex[url] == nil {
		t.ex[url] = simrun.New(2)
	}
	return t.ex[url]
}

func (t *fakeTransport) Lease(ctx context.Context, url string, req LeaseRequest) (*LeaseResponse, error) {
	t.mu.Lock()
	t.calls[url]++
	call := t.calls[url]
	t.mu.Unlock()
	if t.failLease != nil {
		if err := t.failLease(url, req, call); err != nil {
			return nil, err
		}
	}
	if t.delayLease != nil {
		if d := t.delayLease(url, req); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	return ExecuteLease(ctx, t.executor(url), req)
}

func (t *fakeTransport) Ping(ctx context.Context, url string) (*PingInfo, error) {
	t.mu.Lock()
	down := t.pingDown[url]
	t.mu.Unlock()
	if down {
		return nil, errors.New("fake: peer down")
	}
	return &PingInfo{Node: url}, nil
}

func (t *fakeTransport) Replicate(ctx context.Context, url string, env ReplicaEnvelope) (*ReplicateAck, error) {
	t.mu.Lock()
	down := t.pingDown[url]
	t.mu.Unlock()
	if down {
		return nil, errors.New("fake: peer down")
	}
	return &ReplicateAck{Node: url, Applied: true, Version: env.Version}, nil
}

func (t *fakeTransport) setDown(url string, down bool) {
	t.mu.Lock()
	t.pingDown[url] = down
	t.mu.Unlock()
}

func threeNodes(t *testing.T, tr Transport) *Node {
	t.Helper()
	n, err := NewNode(Config{
		ID:        "n1",
		Peers:     map[string]string{"n1": "u1", "n2": "u2", "n3": "u3"},
		Replicas:  2,
		Transport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRingOwnersDistinctAndStable(t *testing.T) {
	r := NewRing([]string{"c", "a", "b"}, 64)
	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("platform-%d/pu", i)
		owners := r.Owners(key, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("Owners(%q) = %v, want 2 distinct", key, owners)
		}
		counts[owners[0]]++
		again := NewRing([]string{"a", "b", "c"}, 64).Owners(key, 2)
		if owners[0] != again[0] || owners[1] != again[1] {
			t.Fatalf("ownership of %q depends on construction order: %v vs %v", key, owners, again)
		}
	}
	for _, id := range []string{"a", "b", "c"} {
		if counts[id] == 0 {
			t.Fatalf("node %s owns no shards out of 200 keys: %v", id, counts)
		}
	}
	if got := r.Owners("k", 10); len(got) != 3 {
		t.Fatalf("Owners capped at ring size: got %v", got)
	}
}

func TestVersionOrderIsTotal(t *testing.T) {
	a := Version{Seq: 1, SHA: "aa"}
	b := Version{Seq: 1, SHA: "bb"}
	c := Version{Seq: 2, SHA: "aa"}
	if !b.Newer(a) || a.Newer(b) {
		t.Fatal("equal seq must tie-break on SHA")
	}
	if !c.Newer(b) || b.Newer(c) {
		t.Fatal("higher seq must win regardless of SHA")
	}
	if a.Newer(a) {
		t.Fatal("a version must not supersede itself")
	}
}

// TestStoreConvergesNewerWins is the single-store half of the hot-reload
// race guarantee: two different versions of the same key applied
// concurrently from many goroutines must always leave the newer one
// installed, and the registry hook must never see an older version after a
// newer one won (no last-writer-loses flapping).
func TestStoreConvergesNewerWins(t *testing.T) {
	pOld := core.Params{Platform: "p", PU: "gpu", NormalBW: 10, IntensiveBW: 20, MRMC: 5, CBP: 50, TBWDC: 60, RateN: 1, PeakBW: 100}
	pNew := pOld
	pNew.MRMC = 7
	shaOld, _ := ParamsSHA(pOld)
	shaNew, _ := ParamsSHA(pNew)
	vOld := Version{Seq: 3, SHA: shaOld}
	vNew := Version{Seq: 4, SHA: shaNew}

	for round := 0; round < 50; round++ {
		var mu sync.Mutex
		var installed []Version
		s := NewStore(func(p core.Params) error {
			v := vOld
			if p.MRMC == pNew.MRMC {
				v = vNew
			}
			mu.Lock()
			installed = append(installed, v)
			mu.Unlock()
			return nil
		})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				if g%2 == 0 {
					s.Apply(pOld, vOld)
				} else {
					s.Apply(pNew, vNew)
				}
			}(g)
		}
		wg.Wait()
		if got := s.VersionOf("p/gpu"); got != vNew {
			t.Fatalf("round %d: store converged on %v, want %v", round, got, vNew)
		}
		sawNew := false
		for _, v := range installed {
			if v == vNew {
				sawNew = true
			} else if sawNew {
				t.Fatalf("round %d: older version installed after newer won: %v", round, installed)
			}
		}
		if !sawNew {
			t.Fatalf("round %d: newer version never installed", round)
		}
	}
}

func TestProberHysteresis(t *testing.T) {
	tr := newFakeTransport()
	n, err := NewNode(Config{
		ID:        "n1",
		Peers:     map[string]string{"n1": "u1", "n2": "u2"},
		Transport: tr,
		UpAfter:   2, DownAfter: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := n.Prober()
	ctx := context.Background()

	if !p.Up("n2") {
		t.Fatal("peers start optimistically up")
	}
	tr.setDown("u2", true)
	p.ProbeOnce(ctx)
	p.ProbeOnce(ctx)
	if !p.Up("n2") {
		t.Fatal("2 failures < DownAfter=3 must not flip the peer down")
	}
	p.ProbeOnce(ctx)
	if p.Up("n2") {
		t.Fatal("3 consecutive failures must flip the peer down")
	}
	tr.setDown("u2", false)
	p.ProbeOnce(ctx)
	if p.Up("n2") {
		t.Fatal("1 success < UpAfter=2 must not flip the peer up")
	}
	p.ProbeOnce(ctx)
	if !p.Up("n2") {
		t.Fatal("2 consecutive successes must bring the peer back")
	}
}

func TestDegradedForPartitionedPrimary(t *testing.T) {
	tr := newFakeTransport()
	n := threeNodes(t, tr)
	// Find a key whose primary is a peer, then partition that peer away.
	var key, primary string
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("plat-%d/pu", i)
		if p := n.Primary(k); p != n.ID() {
			key, primary = k, p
			break
		}
	}
	if key == "" {
		t.Fatal("no peer-primary key found")
	}
	if n.DegradedFor(key) {
		t.Fatal("healthy primary must not degrade reads")
	}
	tr.setDown(n.URL(primary), true)
	for i := 0; i < 3; i++ {
		n.Prober().ProbeOnce(context.Background())
	}
	if !n.DegradedFor(key) {
		t.Fatalf("reads of %s must be degraded while primary %s is down", key, primary)
	}
	if selfKeyDegraded(n) {
		t.Fatal("keys this node owns as primary must never be degraded")
	}
}

func selfKeyDegraded(n *Node) bool {
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("self-%d/pu", i)
		if n.Primary(k) == n.ID() {
			return n.DegradedFor(k)
		}
	}
	return false
}

func TestPublishQueuesAndFlushesOnHeal(t *testing.T) {
	tr := newFakeTransport()
	n := threeNodes(t, tr)
	// Partition every peer, publish, and check the lag; heal and flush.
	tr.setDown("u2", true)
	tr.setDown("u3", true)
	p := core.Params{Platform: "virtual-xavier", PU: "gpu", NormalBW: 10, IntensiveBW: 20, MRMC: 5, CBP: 50, TBWDC: 60, RateN: 1, PeakBW: 100}
	if _, err := n.Publish(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	owners := n.Owners("virtual-xavier/gpu")
	wantLag := 0
	for _, o := range owners {
		if o != n.ID() {
			wantLag++
		}
	}
	if got := n.Lag(); got != wantLag {
		t.Fatalf("Lag() = %d after partitioned publish, want %d (owners %v)", got, wantLag, owners)
	}
	for i := 0; i < 3; i++ { // DownAfter=3: let the prober confirm the partition
		n.Prober().ProbeOnce(context.Background())
	}
	tr.setDown("u2", false)
	tr.setDown("u3", false)
	for i := 0; i < 2; i++ { // UpAfter=2: the down→up transition triggers the flush
		n.Prober().ProbeOnce(context.Background())
	}
	if got := n.Lag(); got != 0 {
		t.Fatalf("Lag() = %d after heal, want 0", got)
	}
}

// TestCoordinatorBitIdenticalToLocalSweep is the tentpole invariant at
// package scope: a sweep fanned out over three nodes reassembles to the
// exact bytes of the single-node calib sweep.
func TestCoordinatorBitIdenticalToLocalSweep(t *testing.T) {
	b, err := platform.Get("virtual-xavier")
	if err != nil {
		t.Fatal(err)
	}
	target := 0
	pressure, err := calib.PressurePUFor(b, target)
	if err != nil {
		t.Fatal(err)
	}
	cfg := calib.DefaultSweep(b, target, pressure)
	cfg.Run = tinyRC
	want, err := calib.Sweep(b, cfg)
	if err != nil {
		t.Fatal(err)
	}

	n := threeNodes(t, newFakeTransport())
	co := &Coordinator{Node: n, Seed: 42}
	got, err := co.Sweep(context.Background(), b, target, pressure, tinyRC)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatrix(t, want, got)
	if st := n.Stats(); st.LeasesGranted == 0 {
		t.Fatal("coordinator granted no leases")
	}
}

// TestCoordinatorReassignsAroundFailures injects hard failures on one node
// for its first several leases: the coordinator must reassign and still
// reassemble the identical matrix, and count the reassignments.
func TestCoordinatorReassignsAroundFailures(t *testing.T) {
	b, err := platform.Get("virtual-xavier")
	if err != nil {
		t.Fatal(err)
	}
	target := 0
	pressure, err := calib.PressurePUFor(b, target)
	if err != nil {
		t.Fatal(err)
	}
	cfg := calib.DefaultSweep(b, target, pressure)
	cfg.Run = tinyRC
	want, err := calib.Sweep(b, cfg)
	if err != nil {
		t.Fatal(err)
	}

	tr := newFakeTransport()
	tr.failLease = func(url string, req LeaseRequest, call int) error {
		if url == "u2" && call <= 4 {
			return errors.New("fake: node crashed mid-lease")
		}
		return nil
	}
	n := threeNodes(t, tr)
	co := &Coordinator{Node: n, Seed: 42, BackoffBase: time.Millisecond, BackoffCap: 5 * time.Millisecond}
	got, err := co.Sweep(context.Background(), b, target, pressure, tinyRC)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatrix(t, want, got)
	if st := n.Stats(); st.LeasesReassigned == 0 {
		t.Fatalf("failures must surface as reassignments: %+v", st)
	}
}

// TestCoordinatorHedgesSlowNode delays one node far past HedgeAfter: the
// hedge must win, the counter must tick, and the matrix must stay exact.
func TestCoordinatorHedgesSlowNode(t *testing.T) {
	b, err := platform.Get("virtual-xavier")
	if err != nil {
		t.Fatal(err)
	}
	target := 0
	pressure, err := calib.PressurePUFor(b, target)
	if err != nil {
		t.Fatal(err)
	}
	cfg := calib.DefaultSweep(b, target, pressure)
	cfg.Run = tinyRC
	want, err := calib.Sweep(b, cfg)
	if err != nil {
		t.Fatal(err)
	}

	tr := newFakeTransport()
	tr.delayLease = func(url string, req LeaseRequest) time.Duration {
		if url == "u3" {
			return 400 * time.Millisecond
		}
		return 0
	}
	n := threeNodes(t, tr)
	co := &Coordinator{Node: n, Seed: 7, HedgeAfter: 30 * time.Millisecond, LeaseTimeout: 10 * time.Second}
	got, err := co.Sweep(context.Background(), b, target, pressure, tinyRC)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatrix(t, want, got)
	if st := n.Stats(); st.HedgedRequests == 0 {
		t.Fatalf("a 400ms node with HedgeAfter=30ms must trigger hedges: %+v", st)
	}
}

func assertSameMatrix(t *testing.T, want, got *calib.Matrix) {
	t.Helper()
	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wb) != string(gb) {
		t.Fatalf("distributed matrix differs from single-node reference:\nwant %s\ngot  %s", wb, gb)
	}
}

func TestExecuteLeaseRejectsBadRanges(t *testing.T) {
	plan := SweepPlan{Platform: "virtual-xavier", TargetPU: 0, PressurePU: 1, Run: tinyRC}
	ex := simrun.New(1)
	cases := []LeaseRequest{
		{ID: "r1", Plan: plan, Stage: StageStandalone, Lo: 0, Hi: 99},
		{ID: "r2", Plan: plan, Stage: StageStandalone, Lo: 3, Hi: 3},
		{ID: "r3", Plan: plan, Stage: StageCorun, Lo: 0, Hi: 1}, // no kept
		{ID: "r4", Plan: plan, Stage: StageCorun, Kept: []int{77}, Lo: 0, Hi: 1},
		{ID: "r5", Plan: plan, Stage: "bogus", Lo: 0, Hi: 1},
		{ID: "r6", Plan: SweepPlan{Platform: "no-such-soc", PressurePU: 1, Run: tinyRC}, Stage: StageStandalone, Lo: 0, Hi: 1},
	}
	for _, req := range cases {
		if _, err := ExecuteLease(context.Background(), ex, req); err == nil {
			t.Errorf("lease %s: want error, got none", req.ID)
		}
	}
}
