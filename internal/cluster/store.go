package cluster

import (
	"fmt"
	"sort"
	"sync"

	"github.com/processorcentricmodel/pccs/internal/core"
)

// Store is a node's versioned model store: the newer-wins merge point for
// local publishes and replicas pushed by peers. The install hook (the
// bridge into the serving registry) runs under the store lock, so versions
// install in the order the store accepts them — an older version can never
// land in the registry after a newer one already won, which is the
// no-flapping guarantee the hot-reload race test pins down.
type Store struct {
	mu       sync.Mutex
	versions map[string]Version // guarded by mu; model key → winning version
	install  func(core.Params) error

	// onAccept observes every accepted version, under the same lock as the
	// install hook (set before the store is shared; see Config.OnAccept).
	onAccept func(ReplicaEnvelope)
}

// NewStore builds a store; install (may be nil) is invoked for every
// accepted version while the store lock is held.
func NewStore(install func(core.Params) error) *Store {
	return &Store{versions: make(map[string]Version), install: install}
}

// Publish versions a locally produced model: its content SHA paired with a
// sequence one past everything this store has seen, then applied
// newer-wins like any replica.
func (s *Store) Publish(p core.Params) (Version, error) {
	sha, err := ParamsSHA(p)
	if err != nil {
		return Version{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var maxSeq uint64
	for _, v := range s.versions {
		if v.Seq > maxSeq {
			maxSeq = v.Seq
		}
	}
	v := Version{Seq: maxSeq + 1, SHA: sha}
	if _, _, err := s.applyLocked(p, v); err != nil {
		return Version{}, err
	}
	return v, nil
}

// Apply merges one (model, version) pair newer-wins. It reports whether
// the pair was accepted and the key's winning version after the call; an
// older or equal incoming version is discarded without touching the
// registry.
func (s *Store) Apply(p core.Params, v Version) (bool, Version, error) {
	if v.IsZero() {
		return false, Version{}, fmt.Errorf("cluster: replica of %s/%s carries no version", p.Platform, p.PU)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(p, v)
}

//pccs:allow-guardedby every caller holds s.mu — the version check, install hook, and version write must be one atomic step or an older model could install after a newer one
func (s *Store) applyLocked(p core.Params, v Version) (bool, Version, error) {
	key := modelKey(p.Platform, p.PU)
	if cur, ok := s.versions[key]; ok && !v.Newer(cur) {
		return false, cur, nil
	}
	if s.install != nil {
		if err := s.install(p); err != nil {
			return false, s.versions[key], fmt.Errorf("cluster: installing %s %s: %w", key, v, err)
		}
	}
	s.versions[key] = v
	if s.onAccept != nil {
		s.onAccept(ReplicaEnvelope{Key: key, Version: v, Params: p})
	}
	return true, v, nil
}

// VersionOf returns the winning version of a model key (zero when the key
// is unknown).
func (s *Store) VersionOf(key string) Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.versions[key]
}

// Versions snapshots every key's winning version, keys sorted.
func (s *Store) Versions() map[string]Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Version, len(s.versions))
	for k, v := range s.versions {
		out[k] = v
	}
	return out
}

// Keys lists the stored model keys, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.versions))
	for k := range s.versions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
