package cluster

import (
	"context"
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// SweepPlan identifies one construction sweep without shipping its points:
// every node re-derives the identical calibrator grid from
// calib.DefaultSweep(platform, target, pressure) with this Run config, so
// a point index means the same simulation on every node. Shipping the
// derivation instead of the points keeps leases tiny and makes tampering
// structurally impossible — there is nothing to ship that could disagree.
type SweepPlan struct {
	Platform   string        `json:"platform"`
	TargetPU   int           `json:"target_pu"`
	PressurePU int           `json:"pressure_pu"`
	Run        soc.RunConfig `json:"run"`
}

// Lease stages: which of the sweep's two measurement batches the index
// range addresses.
const (
	// StageStandalone leases index into calib.SweepKernels(cfg) — each
	// point is one calibrator running alone on the target PU.
	StageStandalone = "standalone"
	// StageCorun leases index into calib.CorunPoints(cfg, kernels, kept) —
	// the row-major kept × external-demand grid. Kept must carry the
	// coordinator's filter result: it depends on the standalone
	// measurements, which the serving node does not have.
	StageCorun = "corun"
)

// LeaseRequest asks a node to run one contiguous index range [Lo, Hi) of a
// sweep stage's canonical point enumeration.
type LeaseRequest struct {
	// ID names the lease for logs and chaos triggers ("<job>/corun/3").
	ID    string    `json:"id"`
	Plan  SweepPlan `json:"plan"`
	Stage string    `json:"stage"`
	// Kept is the standalone filter result (calib.KeptIndices), required
	// for StageCorun and ignored for StageStandalone.
	Kept []int `json:"kept,omitempty"`
	Lo   int   `json:"lo"`
	Hi   int   `json:"hi"`
}

// LeaseResponse carries the achieved bandwidths of the range, in
// enumeration order: AchievedGBps[i] belongs to point Lo+i. Go's JSON
// encoder emits float64s in shortest round-trip form, so the figures
// survive the wire bit-exactly — the transport cannot perturb the matrix.
type LeaseResponse struct {
	ID           string    `json:"id"`
	Node         string    `json:"node"`
	AchievedGBps []float64 `json:"achieved_gbps"`
}

// ReplicaEnvelope pushes one versioned model to a shard owner.
type ReplicaEnvelope struct {
	Key     string      `json:"key"`
	Version Version     `json:"version"`
	Params  core.Params `json:"params"`
}

// ReplicateAck reports how a peer merged a pushed replica.
type ReplicateAck struct {
	Node string `json:"node"`
	// Applied is false when the peer already held this version or newer.
	Applied bool `json:"applied"`
	// Version is the key's winning version on the peer after the merge.
	Version Version `json:"version"`
}

// PingInfo is a peer's health-probe payload: identity plus the load signals
// peer-aware admission routes on.
type PingInfo struct {
	Node     string `json:"node"`
	Tier     string `json:"tier,omitempty"`
	InFlight int    `json:"in_flight"`
	Models   int    `json:"models"`
}

// leasePlan re-derives the lease's full point enumeration and bounds-checks
// the range against it.
func leasePlan(req LeaseRequest) (soc.Backend, calib.SweepConfig, []soc.Kernel, error) {
	b, err := platform.Get(req.Plan.Platform)
	if err != nil {
		return nil, calib.SweepConfig{}, nil, fmt.Errorf("cluster: lease %s: %w", req.ID, err)
	}
	pus := b.PUList()
	if req.Plan.TargetPU < 0 || req.Plan.TargetPU >= len(pus) ||
		req.Plan.PressurePU < 0 || req.Plan.PressurePU >= len(pus) {
		return nil, calib.SweepConfig{}, nil, fmt.Errorf("cluster: lease %s: PU out of range for %s", req.ID, req.Plan.Platform)
	}
	cfg := calib.DefaultSweep(b, req.Plan.TargetPU, req.Plan.PressurePU)
	cfg.Run = req.Plan.Run
	if err := cfg.Validate(b); err != nil {
		return nil, calib.SweepConfig{}, nil, fmt.Errorf("cluster: lease %s: %w", req.ID, err)
	}
	return b, cfg, calib.SweepKernels(cfg), nil
}

// ExecuteLease runs one lease on this node's executor and returns the
// achieved bandwidths in enumeration order. Both stages route through the
// exact simulation entry points the single-node sweep uses
// (Executor.StandaloneBatch and Executor.Execute over calib.CorunPoints),
// which is the serving half of the bit-identical reassembly guarantee.
func ExecuteLease(ctx context.Context, ex *simrun.Executor, req LeaseRequest) (*LeaseResponse, error) {
	if ex == nil {
		ex = simrun.New(0)
	}
	b, cfg, kernels, err := leasePlan(req)
	if err != nil {
		return nil, err
	}
	var achieved []float64
	switch req.Stage {
	case StageStandalone:
		if req.Lo < 0 || req.Hi > len(kernels) || req.Lo >= req.Hi {
			return nil, fmt.Errorf("cluster: lease %s: range [%d,%d) outside %d kernels", req.ID, req.Lo, req.Hi, len(kernels))
		}
		results, err := ex.StandaloneBatch(ctx, b, cfg.TargetPU, kernels[req.Lo:req.Hi], cfg.Run)
		if err != nil {
			return nil, fmt.Errorf("cluster: lease %s: %w", req.ID, err)
		}
		achieved = make([]float64, len(results))
		for i, r := range results {
			achieved[i] = r.AchievedGBps
		}
	case StageCorun:
		if len(req.Kept) == 0 {
			return nil, fmt.Errorf("cluster: lease %s: corun lease without kept indices", req.ID)
		}
		for _, k := range req.Kept {
			if k < 0 || k >= len(kernels) {
				return nil, fmt.Errorf("cluster: lease %s: kept index %d outside %d kernels", req.ID, k, len(kernels))
			}
		}
		points := calib.CorunPoints(cfg, kernels, req.Kept)
		if req.Lo < 0 || req.Hi > len(points) || req.Lo >= req.Hi {
			return nil, fmt.Errorf("cluster: lease %s: range [%d,%d) outside %d points", req.ID, req.Lo, req.Hi, len(points))
		}
		results, err := ex.Execute(ctx, b, points[req.Lo:req.Hi])
		if err != nil {
			return nil, fmt.Errorf("cluster: lease %s: %w", req.ID, err)
		}
		achieved = make([]float64, len(results))
		for i, r := range results {
			if r.Err != nil {
				return nil, fmt.Errorf("cluster: lease %s point %d: %w", req.ID, req.Lo+i, r.Err)
			}
			achieved[i] = r.Outcome.Results[cfg.TargetPU].AchievedGBps
		}
	default:
		return nil, fmt.Errorf("cluster: lease %s: unknown stage %q", req.ID, req.Stage)
	}
	return &LeaseResponse{ID: req.ID, AchievedGBps: achieved}, nil
}
