package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/core"
)

// Version orders the replicated copies of one model key. SHA is the hex
// SHA-256 of the model's canonical (compact) JSON — the same digest family
// the pccs-models/v2 envelope checksum uses — so identical parameters carry
// identical tokens no matter which node constructed them. A bare hash has
// no order, so Seq adds one: a Lamport-style sequence a publisher bumps
// past every version it has seen.
type Version struct {
	Seq uint64 `json:"seq"`
	SHA string `json:"sha256"`
}

// Newer reports whether v supersedes w: higher sequence wins, and equal
// sequences tie-break on the lexicographically higher SHA. The order is
// total and agreed on by every node, which is what makes concurrent
// publishes of two different versions converge to one winner everywhere
// instead of flapping on arrival order.
func (v Version) Newer(w Version) bool {
	if v.Seq != w.Seq {
		return v.Seq > w.Seq
	}
	return v.SHA > w.SHA
}

// IsZero reports an unset version.
func (v Version) IsZero() bool { return v.Seq == 0 && v.SHA == "" }

func (v Version) String() string { return fmt.Sprintf("%d/%.12s", v.Seq, v.SHA) }

// ParamsSHA computes a model's content digest: hex SHA-256 of its compact
// JSON encoding.
func ParamsSHA(p core.Params) (string, error) {
	blob, err := json.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("cluster: hashing model: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}
