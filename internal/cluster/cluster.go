// Package cluster turns a set of pccsd daemons into one partition-tolerant
// serving and calibration cluster.
//
// Three cooperating pieces:
//
//   - A consistent-hash ring shards the model registry across nodes: every
//     model key ("platform/pu") maps to R owner nodes (a primary and R-1
//     replicas), and constructed models are replicated to their owners with
//     a monotonic version token — the SHA-256 of the model's canonical JSON
//     (the same canonicalization as the pccs-models/v2 envelope checksum)
//     paired with a Lamport-style sequence number, so concurrent publishes
//     of different versions converge to the same winner on every node
//     instead of flapping on write order.
//
//   - A calibration coordinator fans a construction sweep out across the
//     cluster as leases: contiguous index ranges of the sweep's canonical
//     point enumeration (calib.SweepKernels / calib.CorunPoints). Every
//     node derives the identical plan from the lease's SweepPlan, runs only
//     its range, and returns achieved bandwidths; the coordinator
//     reassembles them in plan order and assembles the matrix with
//     calib.AssembleMatrix — the same code the single-node sweep runs — so
//     the result is bit-identical to a local construction no matter which
//     nodes served which points, or how many times a lease was reassigned.
//
//   - Robustness machinery makes the fan-out survive chaos: peer health
//     probing with hysteresis (a peer flips down only after consecutive
//     failures and back up only after consecutive successes), lease
//     timeouts with reassignment to a different live node, capped
//     deterministic-jitter retry backoff, a single hedged request for slow
//     leases, and best-effort replication with a pending queue that drains
//     when a partition heals.
//
// The package is transport-agnostic: production uses HTTPTransport against
// the peer daemons' /v1/cluster endpoints, tests inject partitions and node
// deaths through a wrapped Transport. Simulation points are deterministic
// pure computations, which is what makes all of this sound: re-running a
// lease on any node — after a timeout, a crash, or as a hedge — reproduces
// the exact bytes the dead node would have produced.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/processorcentricmodel/pccs/internal/clock"
	"github.com/processorcentricmodel/pccs/internal/core"
)

// SiteLease is the chaos-injection site fired by the serving side of every
// lease execution (the /v1/cluster/lease handler), alongside the simrun
// sites the executor fires while running the lease's points.
const SiteLease = "cluster/lease"

// Config wires one node into the cluster.
type Config struct {
	// ID is this node's stable identity on the hash ring.
	ID string
	// Peers maps every node ID in the cluster — including this node's — to
	// its base URL (e.g. "http://host:8080").
	Peers map[string]string
	// Replicas is the replication factor R: every model key is owned by R
	// distinct nodes (capped at the cluster size). Default 2.
	Replicas int
	// VNodes is the number of ring points per node (default 64).
	VNodes int
	// Transport carries lease, ping, and replication traffic (default
	// NewHTTPTransport(nil)).
	Transport Transport
	// Install, when set, is called for every model version the node accepts
	// (local publishes and replicas) — the hook into the serving registry.
	Install func(core.Params) error
	// UpAfter/DownAfter are the prober's hysteresis thresholds (default 2
	// consecutive successes to come up, 3 consecutive failures to go down).
	UpAfter, DownAfter int
	// ProbeTimeout bounds one ping (default 2s).
	ProbeTimeout time.Duration
	// Clock supplies time to the prober, coordinator, and replication
	// machinery (default the real system clock). The DST harness injects a
	// virtual clock so fault schedules run in simulated time.
	Clock clock.Clock
	// OnAccept, when set, observes every model version this node accepts
	// (local publishes and replicas alike). It runs under the store lock —
	// the same atomic step as the install hook — so an accepted version is
	// observed before any replication of it leaves the node:
	// journal-before-replicate. The DST harness journals envelopes here to
	// replay them through Recover after a simulated crash.
	OnAccept func(ReplicaEnvelope)
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if n := len(c.Peers); c.Replicas > n && n > 0 {
		c.Replicas = n
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Transport == nil {
		c.Transport = NewHTTPTransport(nil)
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = clock.System()
	}
	return c
}

// Node is one pccsd daemon's membership in the cluster: its shard
// ownership, versioned model store, peer health view, and coordinator
// counters. A Node is safe for concurrent use.
type Node struct {
	cfg    Config
	ring   *Ring
	store  *Store
	prober *Prober

	mu      sync.Mutex
	pending map[string]map[string]ReplicaEnvelope // guarded by mu; peer ID → key → latest unacked envelope

	stats CoordinatorStats
}

// NewNode validates the config and builds the node's ring, store, and
// prober (probing starts when the caller runs Prober().Start or ProbeOnce).
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.ID == "" {
		return nil, fmt.Errorf("cluster: node needs an ID")
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: node needs a peer map")
	}
	if _, ok := cfg.Peers[cfg.ID]; !ok {
		return nil, fmt.Errorf("cluster: node ID %q is not in the peer map", cfg.ID)
	}
	ids := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty peer ID")
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	n := &Node{
		cfg:     cfg,
		ring:    NewRing(ids, cfg.VNodes),
		store:   NewStore(cfg.Install),
		pending: make(map[string]map[string]ReplicaEnvelope),
	}
	n.store.onAccept = cfg.OnAccept
	n.prober = newProber(cfg, n.flushPending)
	return n, nil
}

// ID returns this node's ring identity.
func (n *Node) ID() string { return n.cfg.ID }

// URL resolves a node ID to its base URL ("" when unknown).
func (n *Node) URL(id string) string { return n.cfg.Peers[id] }

// SelfURL is this node's advertised base URL.
func (n *Node) SelfURL() string { return n.cfg.Peers[n.cfg.ID] }

// Replicas reports the effective replication factor.
func (n *Node) Replicas() int { return n.cfg.Replicas }

// NodeIDs lists every cluster member, sorted.
func (n *Node) NodeIDs() []string { return n.ring.Nodes() }

// Prober exposes the peer health prober (Start it alongside the daemon, or
// step it manually with ProbeOnce in tests).
func (n *Node) Prober() *Prober { return n.prober }

// Store exposes the versioned model store.
func (n *Node) Store() *Store { return n.store }

// Transport exposes the configured transport (shared with the coordinator).
func (n *Node) Transport() Transport { return n.cfg.Transport }

// Clock exposes the configured clock (shared with the coordinator).
func (n *Node) Clock() clock.Clock { return n.cfg.Clock }

// Owners returns the R nodes owning a model key's shard, primary first.
func (n *Node) Owners(key string) []string {
	return n.ring.Owners(key, n.cfg.Replicas)
}

// Owns reports whether this node is an owner (primary or replica) of key.
func (n *Node) Owns(key string) bool {
	for _, id := range n.Owners(key) {
		if id == n.cfg.ID {
			return true
		}
	}
	return false
}

// Primary returns the first owner of key's shard.
func (n *Node) Primary(key string) string {
	owners := n.Owners(key)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// DegradedFor reports whether serving key from this node is read-degraded:
// the shard's primary is another node and the prober currently marks it
// down (dead or partitioned away), so this node is answering from its
// replicated copy without being able to confirm freshness. The response
// still flows — availability holds while any replica is alive — but it is
// marked `Degraded: partitioned`.
func (n *Node) DegradedFor(key string) bool {
	primary := n.Primary(key)
	if primary == "" || primary == n.cfg.ID {
		return false
	}
	return !n.prober.Up(primary)
}

// UpPeers lists the peer IDs (self excluded) the prober currently considers
// reachable, sorted.
func (n *Node) UpPeers() []string {
	var up []string
	for _, st := range n.prober.States() {
		if st.Up {
			up = append(up, st.ID)
		}
	}
	return up
}

// UnloadedPeer picks the healthy peer with the lowest last-observed
// in-flight load — the redirect target for peer-aware admission ("" when no
// peer is up). Ties break on ID so the hint is stable.
func (n *Node) UnloadedPeer() string {
	var best string
	bestLoad := -1
	for _, st := range n.prober.States() {
		if !st.Up {
			continue
		}
		if bestLoad < 0 || st.Load.InFlight < bestLoad {
			best, bestLoad = st.ID, st.Load.InFlight
		}
	}
	if best == "" {
		return ""
	}
	return n.cfg.Peers[best]
}

// Publish versions a locally constructed model and replicates it to the
// owners of its shard: the version is (next Lamport sequence, SHA-256 of
// the canonical model JSON), newer-wins everywhere. Replication to
// unreachable owners is queued and retried when the prober sees them again;
// the queue length is the node's replication lag.
func (n *Node) Publish(ctx context.Context, p core.Params) (Version, error) {
	v, err := n.store.Publish(p)
	if err != nil {
		return Version{}, err
	}
	key := modelKey(p.Platform, p.PU)
	env := ReplicaEnvelope{Key: key, Version: v, Params: p}
	for _, owner := range n.Owners(key) {
		if owner == n.cfg.ID {
			continue
		}
		if err := n.replicateTo(ctx, owner, env); err != nil {
			n.queuePending(owner, env)
		}
	}
	return v, nil
}

// ApplyReplica applies a replicated model version pushed by a peer
// (newer-wins). It reports whether the envelope was applied and the key's
// version after the call.
func (n *Node) ApplyReplica(env ReplicaEnvelope) (bool, Version, error) {
	return n.store.Apply(env.Params, env.Version)
}

func (n *Node) replicateTo(ctx context.Context, peer string, env ReplicaEnvelope) error {
	url := n.cfg.Peers[peer]
	if url == "" {
		return fmt.Errorf("cluster: unknown peer %q", peer)
	}
	_, err := n.cfg.Transport.Replicate(ctx, url, env)
	return err
}

// queuePending records an envelope that could not be delivered; the latest
// version per (peer, key) wins, so a healed partition replays only the
// newest state.
func (n *Node) queuePending(peer string, env ReplicaEnvelope) {
	n.mu.Lock()
	defer n.mu.Unlock()
	byKey := n.pending[peer]
	if byKey == nil {
		byKey = make(map[string]ReplicaEnvelope)
		n.pending[peer] = byKey
	}
	if cur, ok := byKey[env.Key]; !ok || env.Version.Newer(cur.Version) {
		byKey[env.Key] = env
	}
}

// flushPending retries queued replication to a peer the prober just saw
// alive. Envelopes that fail again stay queued.
func (n *Node) flushPending(peer string) {
	n.mu.Lock()
	byKey := n.pending[peer]
	if len(byKey) == 0 {
		n.mu.Unlock()
		return
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	envs := make([]ReplicaEnvelope, 0, len(keys))
	for _, k := range keys {
		envs = append(envs, byKey[k])
	}
	n.mu.Unlock()

	ctx, cancel := n.cfg.Clock.WithTimeout(context.Background(), n.cfg.ProbeTimeout*4)
	defer cancel()
	for _, env := range envs {
		if err := n.replicateTo(ctx, peer, env); err != nil {
			return
		}
		n.mu.Lock()
		if cur, ok := n.pending[peer][env.Key]; ok && !cur.Version.Newer(env.Version) {
			delete(n.pending[peer], env.Key)
			if len(n.pending[peer]) == 0 {
				delete(n.pending, peer)
			}
		}
		n.mu.Unlock()
	}
}

// Recover replays journaled envelopes after a restart: each is applied
// newer-wins locally, and re-queued for replication to the key's other
// owners. The pre-crash pending queue is in-memory and dies with the
// process, so without the re-queue a version accepted (and journaled)
// just before a crash could be lost to the rest of its shard; replaying
// through the normal pending/flush path is safe because receivers
// discard stale versions by the same newer-wins rule as any replica.
// Envelopes should be replayed in journal order so the local store
// converges to the newest journaled version of every key.
func (n *Node) Recover(envs []ReplicaEnvelope) error {
	for _, env := range envs {
		if _, _, err := n.store.Apply(env.Params, env.Version); err != nil {
			return err
		}
		for _, owner := range n.Owners(env.Key) {
			if owner != n.cfg.ID {
				n.queuePending(owner, env)
			}
		}
	}
	return nil
}

// Lag counts queued (undelivered) replication envelopes across all peers —
// the /healthz replication-lag figure.
func (n *Node) Lag() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, byKey := range n.pending {
		total += len(byKey)
	}
	return total
}

// CoordinatorStats accumulates the robustness counters across every
// calibration this node coordinated.
type CoordinatorStats struct {
	// LeasesGranted counts lease dispatches (including reassignments and
	// hedges).
	LeasesGranted uint64
	// LeasesReassigned counts leases re-dispatched after a failure or
	// timeout — pccsd_lease_reassigned_total.
	LeasesReassigned uint64
	// HedgedRequests counts duplicate dispatches fired for slow leases —
	// pccsd_hedged_requests_total.
	HedgedRequests uint64
}

// Stats snapshots the coordinator counters.
func (n *Node) Stats() CoordinatorStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

func (n *Node) countLease(granted, reassigned, hedged uint64) {
	n.mu.Lock()
	n.stats.LeasesGranted += granted
	n.stats.LeasesReassigned += reassigned
	n.stats.HedgedRequests += hedged
	n.mu.Unlock()
}

// modelKey mirrors calib.Key without importing it here (node.go stays free
// of the calibration dependency; the coordinator imports calib).
func modelKey(platform, pu string) string { return platform + "/" + pu }
