// Package report renders the experiment outputs: aligned text tables for
// the paper's tables and x/series column dumps for its figures.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row; missing cells render empty, extra cells are kept.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var n int64
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	write := func(s string) error {
		k, err := io.WriteString(w, s)
		n += int64(k)
		return err
	}
	if t.Title != "" {
		if err := write("== " + t.Title + " ==\n"); err != nil {
			return n, err
		}
	}
	renderRow := func(cells []string) error {
		var b strings.Builder
		for i := 0; i < len(widths); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return write(strings.TrimRight(b.String(), " ") + "\n")
	}
	if len(t.Headers) > 0 {
		if err := renderRow(t.Headers); err != nil {
			return n, err
		}
		total := len(widths)*2 - 2
		for _, wd := range widths {
			total += wd
		}
		if err := write(strings.Repeat("-", total) + "\n"); err != nil {
			return n, err
		}
	}
	for _, row := range t.Rows {
		if err := renderRow(row); err != nil {
			return n, err
		}
	}
	return n, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

// Series renders figure data: one x column followed by one column per named
// line, sorted by name for determinism.
func Series(w io.Writer, title, xLabel string, xs []float64, lines map[string][]float64) error {
	names := make([]string, 0, len(lines))
	for n := range lines {
		names = append(names, n)
	}
	sort.Strings(names)
	t := NewTable(title, append([]string{xLabel}, names...)...)
	for i, x := range xs {
		row := []string{F(x)}
		for _, n := range names {
			ys := lines[n]
			if i < len(ys) {
				row = append(row, F(ys[i]))
			} else {
				row = append(row, "")
			}
		}
		t.Add(row...)
	}
	_, err := t.WriteTo(w)
	return err
}

// F formats a float with one decimal, the precision the paper reports.
func F(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats a float with two decimals (rates, frequencies in GHz).
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }
