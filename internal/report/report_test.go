package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.Add("a", "1.0")
	tbl.Add("longer-name", "2.5")
	s := tbl.String()
	if !strings.Contains(s, "== demo ==") {
		t.Errorf("missing title: %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines: %q", len(lines), s)
	}
	// The value column must start at the same offset in both data rows.
	if strings.Index(lines[3], "1.0") != strings.Index(lines[4], "2.5") {
		t.Errorf("columns misaligned:\n%s", s)
	}
}

func TestTableHandlesRaggedRows(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.Add("x")
	tbl.Add("y", "z", "extra")
	s := tbl.String()
	if !strings.Contains(s, "extra") {
		t.Errorf("extra cell lost: %q", s)
	}
}

func TestSeriesSortedColumns(t *testing.T) {
	var b strings.Builder
	err := Series(&b, "fig", "x", []float64{1, 2}, map[string][]float64{
		"zeta":  {10, 20},
		"alpha": {30}, // short series: last cell blank
	})
	if err != nil {
		t.Fatal(err)
	}
	s := b.String()
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Errorf("series not sorted: %q", s)
	}
	if !strings.Contains(s, "30.0") || !strings.Contains(s, "20.0") {
		t.Errorf("missing values: %q", s)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.25) != "1.2" && F(1.25) != "1.3" {
		t.Errorf("F(1.25) = %q", F(1.25))
	}
	if F2(1.234) != "1.23" {
		t.Errorf("F2 = %q", F2(1.234))
	}
}
