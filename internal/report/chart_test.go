package report

import (
	"strings"
	"testing"
)

func TestChartRendersAllSeries(t *testing.T) {
	c := NewChart("demo", "ext GB/s", "RS %", []float64{0, 50, 100})
	c.AddSeries("alpha", []float64{100, 80, 60})
	c.AddSeries("beta", []float64{100, 95, 90})
	s := c.String()
	if !strings.Contains(s, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "* alpha") || !strings.Contains(s, "o beta") {
		t.Errorf("legend incomplete:\n%s", s)
	}
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Errorf("glyphs not plotted:\n%s", s)
	}
	if !strings.Contains(s, "ext GB/s") || !strings.Contains(s, "RS %") {
		t.Errorf("axis labels missing:\n%s", s)
	}
}

func TestChartYRange(t *testing.T) {
	c := NewChart("", "x", "y", []float64{0, 1})
	c.YMin, c.YMax = 0, 100
	c.AddSeries("s", []float64{50, 150}) // 150 outside the fixed range
	s := c.String()
	if !strings.Contains(s, "100.0") || !strings.Contains(s, "0.0") {
		t.Errorf("fixed range labels missing:\n%s", s)
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	empty := NewChart("", "x", "y", nil)
	if !strings.Contains(empty.String(), "empty chart") {
		t.Error("empty chart should say so")
	}
	flat := NewChart("", "x", "y", []float64{5, 5})
	flat.AddSeries("s", []float64{7, 7}) // zero x and y spans
	if out := flat.String(); strings.Contains(out, "NaN") || strings.Contains(out, "empty") {
		t.Errorf("flat data mishandled:\n%s", out)
	}
	tiny := NewChart("", "x", "y", []float64{1})
	tiny.Width = 2 // below minimum
	tiny.AddSeries("s", []float64{1})
	if !strings.Contains(tiny.String(), "empty chart") {
		t.Error("undersized chart should degrade gracefully")
	}
}

func TestChartShortSeries(t *testing.T) {
	c := NewChart("", "x", "y", []float64{0, 1, 2, 3})
	c.AddSeries("short", []float64{10, 20}) // fewer points than xs
	if out := c.String(); strings.Contains(out, "panic") {
		t.Errorf("short series mishandled:\n%s", out)
	}
}

func TestSeriesChartCombinesTableAndPlot(t *testing.T) {
	var b strings.Builder
	err := SeriesChart(&b, "fig", "x", []float64{0, 1}, map[string][]float64{
		"actual": {100, 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "== fig ==") {
		t.Error("numeric table missing")
	}
	if !strings.Contains(out, "legend") {
		t.Error("chart missing")
	}
}
