package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Chart renders series as an ASCII line chart — the closest a terminal
// gets to the paper's figures. Each series is drawn with its own glyph;
// points landing on the same cell show the glyph of the first series.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot area in characters (excluding axes).
	Width, Height int
	// YMin/YMax fix the y range; when both zero the range is computed
	// from the data with a small margin.
	YMin, YMax float64

	xs     []float64
	series []chartSeries
}

type chartSeries struct {
	name  string
	glyph rune
	ys    []float64
}

var chartGlyphs = []rune{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// NewChart builds a chart for the given x values.
func NewChart(title, xLabel, yLabel string, xs []float64) *Chart {
	return &Chart{
		Title: title, XLabel: xLabel, YLabel: yLabel,
		Width: 60, Height: 16,
		xs: append([]float64(nil), xs...),
	}
}

// AddSeries registers a named line; ys pairs with the chart's x values
// (shorter series are drawn as far as they reach).
func (c *Chart) AddSeries(name string, ys []float64) {
	glyph := chartGlyphs[len(c.series)%len(chartGlyphs)]
	c.series = append(c.series, chartSeries{name: name, glyph: glyph, ys: append([]float64(nil), ys...)})
}

// WriteTo renders the chart.
func (c *Chart) WriteTo(w io.Writer) (int64, error) {
	if len(c.xs) == 0 || len(c.series) == 0 || c.Width < 8 || c.Height < 4 {
		n, err := io.WriteString(w, "(empty chart)\n")
		return int64(n), err
	}
	ymin, ymax := c.YMin, c.YMax
	if ymin == 0 && ymax == 0 {
		ymin, ymax = math.Inf(1), math.Inf(-1)
		for _, s := range c.series {
			for _, y := range s.ys {
				ymin = math.Min(ymin, y)
				ymax = math.Max(ymax, y)
			}
		}
		margin := (ymax - ymin) * 0.05
		if margin == 0 {
			margin = 1
		}
		ymin -= margin
		ymax += margin
	}
	xmin, xmax := c.xs[0], c.xs[len(c.xs)-1]
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]rune, c.Height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", c.Width))
	}
	plot := func(x, y float64, glyph rune) {
		col := int((x - xmin) / (xmax - xmin) * float64(c.Width-1))
		row := int((ymax - y) / (ymax - ymin) * float64(c.Height-1))
		if col < 0 || col >= c.Width || row < 0 || row >= c.Height {
			return
		}
		if grid[row][col] == ' ' {
			grid[row][col] = glyph
		}
	}
	// Draw in registration order so the first series wins collisions.
	for _, s := range c.series {
		for i, y := range s.ys {
			if i < len(c.xs) {
				plot(c.xs[i], y, s.glyph)
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	axisW := 8
	for i, row := range grid {
		label := strings.Repeat(" ", axisW)
		switch i {
		case 0:
			label = fmt.Sprintf("%*.1f", axisW, ymax)
		case c.Height - 1:
			label = fmt.Sprintf("%*.1f", axisW, ymin)
		case (c.Height - 1) / 2:
			label = fmt.Sprintf("%*.1f", axisW, (ymin+ymax)/2)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", axisW), strings.Repeat("-", c.Width))
	fmt.Fprintf(&b, "%s  %-*.1f%*.1f  (%s)\n",
		strings.Repeat(" ", axisW), c.Width/2, xmin, c.Width-c.Width/2, xmax, c.XLabel)
	// Legend, sorted by name for determinism of map-fed callers.
	legend := make([]string, len(c.series))
	for i, s := range c.series {
		legend[i] = fmt.Sprintf("%c %s", s.glyph, s.name)
	}
	sort.Strings(legend)
	fmt.Fprintf(&b, "%s  legend: %s   y: %s\n", strings.Repeat(" ", axisW), strings.Join(legend, "   "), c.YLabel)

	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the chart to a string.
func (c *Chart) String() string {
	var b strings.Builder
	c.WriteTo(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

// SeriesChart renders both the numeric series table and an ASCII chart —
// the standard "figure" output of the experiment harness.
func SeriesChart(w io.Writer, title, xLabel string, xs []float64, lines map[string][]float64) error {
	if err := Series(w, title, xLabel, xs, lines); err != nil {
		return err
	}
	chart := NewChart("", xLabel, "achieved relative speed (%)", xs)
	names := make([]string, 0, len(lines))
	for n := range lines {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		chart.AddSeries(n, lines[n])
	}
	_, err := chart.WriteTo(w)
	return err
}
