package clock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestSystemClockDelegates(t *testing.T) {
	c := System()
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) || now.After(before.Add(time.Second)) {
		t.Fatalf("System Now %v far from time.Now %v", now, before)
	}
	timer := c.NewTimer(time.Millisecond)
	select {
	case <-timer.C:
	case <-time.After(2 * time.Second):
		t.Fatal("system timer never fired")
	}
	ctx, cancel := c.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("system timeout never fired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("ctx err = %v", ctx.Err())
	}
}

func TestVirtualStepFiresInDeadlineThenCreationOrder(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	var order []string
	note := func(s string) func(time.Time) {
		return func(time.Time) { mu.Lock(); order = append(order, s); mu.Unlock() }
	}
	v.schedule(20*time.Millisecond, note("late"))
	v.schedule(10*time.Millisecond, note("early-a"))
	v.schedule(10*time.Millisecond, note("early-b"))

	if !v.Step() {
		t.Fatal("Step with pending events returned false")
	}
	mu.Lock()
	got := append([]string(nil), order...)
	mu.Unlock()
	if len(got) != 2 || got[0] != "early-a" || got[1] != "early-b" {
		t.Fatalf("first step fired %v, want [early-a early-b]", got)
	}
	if want := virtualEpoch.Add(10 * time.Millisecond); !v.Now().Equal(want) {
		t.Fatalf("now = %v, want %v", v.Now(), want)
	}
	v.Step()
	if want := virtualEpoch.Add(20 * time.Millisecond); !v.Now().Equal(want) {
		t.Fatalf("now = %v, want %v", v.Now(), want)
	}
	if v.Step() {
		t.Fatal("Step with no events returned true")
	}
}

func TestVirtualTimerStopAndTicker(t *testing.T) {
	v := NewVirtual()
	tm := v.NewTimer(5 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer = false")
	}
	if tm.Stop() {
		t.Fatal("second Stop = true")
	}

	tk := v.NewTicker(10 * time.Millisecond)
	for i := 1; i <= 3; i++ {
		v.Step()
		select {
		case at := <-tk.C:
			want := virtualEpoch.Add(time.Duration(i) * 10 * time.Millisecond)
			if !at.Equal(want) {
				t.Fatalf("tick %d at %v, want %v", i, at, want)
			}
		default:
			t.Fatalf("tick %d missing after Step", i)
		}
	}
	tk.Stop()
	if v.Pending() != 0 {
		t.Fatalf("pending after ticker stop = %d", v.Pending())
	}
}

func TestVirtualWithTimeout(t *testing.T) {
	v := NewVirtual()
	ctx, cancel := v.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	select {
	case <-ctx.Done():
		t.Fatal("context done before any advance")
	default:
	}
	v.Step() // jumps straight to the 30s deadline
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("context never expired after Step")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", ctx.Err())
	}
	if dl, ok := ctx.Deadline(); !ok || !dl.Equal(virtualEpoch.Add(30*time.Second)) {
		t.Fatalf("deadline = %v, %v", dl, ok)
	}

	// Explicit cancel removes the pending deadline and reports Canceled.
	ctx2, cancel2 := v.WithTimeout(context.Background(), time.Minute)
	cancel2()
	if !errors.Is(ctx2.Err(), context.Canceled) {
		t.Fatalf("cancelled err = %v", ctx2.Err())
	}
	if v.Pending() != 0 {
		t.Fatalf("pending after cancel = %d", v.Pending())
	}

	// Parent cancellation propagates.
	parent, pcancel := context.WithCancel(context.Background())
	ctx3, cancel3 := v.WithTimeout(parent, time.Minute)
	defer cancel3()
	pcancel()
	select {
	case <-ctx3.Done():
	case <-time.After(time.Second):
		t.Fatal("parent cancel never propagated")
	}
	if !errors.Is(ctx3.Err(), context.Canceled) {
		t.Fatalf("err = %v, want Canceled", ctx3.Err())
	}
}

func TestVirtualAutoAdvanceRunsSleepers(t *testing.T) {
	v := NewVirtual()
	stop := v.AutoAdvance()
	defer stop()

	const n = 8
	var wg sync.WaitGroup
	ends := make([]time.Time, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.Sleep(time.Duration(i+1) * time.Second)
			ends[i] = v.Now()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("virtual sleepers never woke")
	}
	for i, at := range ends {
		if at.Before(virtualEpoch.Add(time.Duration(i+1) * time.Second)) {
			t.Fatalf("sleeper %d woke at %v, before its deadline", i, at)
		}
	}
	if elapsed := v.Now().Sub(virtualEpoch); elapsed < n*time.Second {
		t.Fatalf("virtual time advanced only %v", elapsed)
	}
}

func TestVirtualBusyTokenBlocksAdvance(t *testing.T) {
	v := NewVirtual()
	release := v.Busy()
	v.NewTimer(time.Second)
	if v.tryStep() {
		t.Fatal("advanced while a busy token was held")
	}
	release()
	deadline := time.Now().Add(5 * time.Second)
	for !v.tryStep() {
		if time.Now().After(deadline) {
			t.Fatal("never advanced after release")
		}
	}
	if want := virtualEpoch.Add(time.Second); !v.Now().Equal(want) {
		t.Fatalf("now = %v, want %v", v.Now(), want)
	}
}

func TestSkewedShiftsReadingsNotWaits(t *testing.T) {
	v := NewVirtual()
	s := NewSkewed(v, 5*time.Second)
	if got, want := s.Now(), virtualEpoch.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("skewed now = %v, want %v", got, want)
	}
	// Timers measure durations on the base clock: one Step fires a 1s
	// timer regardless of skew.
	tm := s.NewTimer(time.Second)
	v.Step()
	select {
	case <-tm.C:
	default:
		t.Fatal("skewed timer did not fire on base-clock step")
	}
	s.SetOffset(-time.Hour)
	if got := s.Since(virtualEpoch); got >= 0 {
		t.Fatalf("negative skew should put Now before epoch, Since = %v", got)
	}
}
