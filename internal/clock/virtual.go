package clock

import (
	"container/heap"
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// atomicDuration is a time.Duration with atomic load/store (for Skewed).
type atomicDuration struct{ v atomic.Int64 }

func (a *atomicDuration) Store(d time.Duration) { a.v.Store(int64(d)) }
func (a *atomicDuration) Load() time.Duration   { return time.Duration(a.v.Load()) }

// Virtual is an event-queue clock for deterministic simulation: Now()
// stands still until every goroutine in the simulation is blocked waiting
// on the clock, then jumps straight to the earliest pending deadline and
// fires it. A 30-second lease timeout therefore costs microseconds of
// wall time, and two timers set for the same virtual instant always fire
// in creation order.
//
// Quiescence is detected, not declared: the auto-advancer only steps time
// when (a) no busy tokens are held — harness code holds one across any
// real computation whose outcome schedules more timers — and (b) the
// scheduling state (timer set, token count) stays unchanged across a
// short settle window in which runnable goroutines get the scheduler.
// This makes advances *eager but safe*: time never jumps past a deadline
// that was already registered, though a goroutine that is about to
// register an earlier timer and loses the scheduler for the whole settle
// window can observe a later "now" than a perfectly synchronous
// simulator would produce. The DST invariants are eventual-style
// properties that hold under any such interleaving; the exact-tick
// timing tests close the window explicitly with busy tokens.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64 // event creation order; ties at one instant fire in this order
	gen    uint64 // bumped on every scheduling-state change, for quiescence detection
	busy   int    // outstanding busy tokens
	events vheap  // pending deadlines, min (at, seq) first

	// wake nudges the auto-advancer when scheduling state changes that
	// could unblock an advance (new event, event removed, busy token
	// released). Buffered so a notification between "tryStep failed" and
	// "block on wake" is never lost.
	wake chan struct{}
}

// vevent is one pending deadline. fire runs without the clock lock held.
type vevent struct {
	at   time.Time
	seq  uint64
	fire func(now time.Time)
	idx  int // heap index, -1 once popped or removed
}

type vheap []*vevent

func (h vheap) Len() int { return len(h) }
func (h vheap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h vheap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *vheap) Push(x any) {
	ev := x.(*vevent)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *vheap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// virtualEpoch is the fixed starting instant: real dates never leak into
// a simulation, and two runs of the same schedule read identical stamps.
var virtualEpoch = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)

// NewVirtual builds a virtual clock at the fixed epoch with no pending
// events and time standing still until Step or an auto-advancer moves it.
func NewVirtual() *Virtual {
	return &Virtual{now: virtualEpoch, wake: make(chan struct{}, 1)}
}

// notify nudges the advancer without ever blocking the caller.
func (v *Virtual) notify() {
	select {
	case v.wake <- struct{}{}:
	default:
	}
}

func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }
func (v *Virtual) Until(t time.Time) time.Duration { return t.Sub(v.Now()) }

// schedule registers fire to run once d has elapsed on the virtual clock.
func (v *Virtual) schedule(d time.Duration, fire func(time.Time)) *vevent {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.seq++
	v.gen++
	ev := &vevent{at: v.now.Add(d), seq: v.seq, fire: fire}
	heap.Push(&v.events, ev)
	v.notify()
	return ev
}

// remove cancels a pending event; it reports whether the event had not
// yet fired.
func (v *Virtual) remove(ev *vevent) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if ev.idx < 0 {
		return false
	}
	heap.Remove(&v.events, ev.idx)
	v.gen++
	v.notify()
	return true
}

func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

func (v *Virtual) After(d time.Duration) <-chan time.Time {
	return v.NewTimer(d).C
}

func (v *Virtual) NewTimer(d time.Duration) *Timer {
	ch := make(chan time.Time, 1)
	ev := v.schedule(d, func(now time.Time) {
		select {
		case ch <- now:
		default:
		}
	})
	return &Timer{C: ch, stop: func() bool { return v.remove(ev) }}
}

func (v *Virtual) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	ch := make(chan time.Time, 1)
	t := &vticker{v: v, ch: ch, period: d}
	t.arm()
	return &Ticker{C: ch, stop: t.stop}
}

type vticker struct {
	v      *Virtual
	ch     chan time.Time
	period time.Duration

	mu      sync.Mutex
	ev      *vevent
	stopped bool
}

func (t *vticker) arm() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return
	}
	t.ev = t.v.schedule(t.period, func(now time.Time) {
		select {
		case t.ch <- now:
		default: // slow receiver drops ticks, like time.Ticker
		}
		t.arm()
	})
}

func (t *vticker) stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stopped = true
	if t.ev != nil {
		t.v.remove(t.ev)
	}
}

// WithTimeout builds a context whose deadline is d on the virtual clock.
// context.WithTimeout would read the real clock, so a virtual run would
// never expire it; this one fires exactly when the simulation's time
// reaches the deadline, with Err() == context.DeadlineExceeded.
func (v *Virtual) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	c := &vctx{parent: parent, deadline: v.Now().Add(d), done: make(chan struct{})}
	ev := v.schedule(d, func(time.Time) { c.finish(context.DeadlineExceeded) })
	if pd := parent.Done(); pd != nil {
		go func() {
			select {
			case <-pd:
				v.remove(ev)
				c.finish(parent.Err())
			case <-c.done:
			}
		}()
	}
	cancel := func() {
		v.remove(ev)
		c.finish(context.Canceled)
	}
	return c, cancel
}

type vctx struct {
	parent   context.Context
	deadline time.Time
	done     chan struct{}

	mu  sync.Mutex
	err error
}

func (c *vctx) Deadline() (time.Time, bool) { return c.deadline, true }
func (c *vctx) Done() <-chan struct{}       { return c.done }
func (c *vctx) Value(k any) any             { return c.parent.Value(k) }

func (c *vctx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *vctx) finish(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
}

// Busy takes a busy token: while any token is held the auto-advancer
// refuses to move time, because real computation is in progress whose
// outcome may register earlier deadlines. Release exactly once.
func (v *Virtual) Busy() (release func()) {
	v.mu.Lock()
	v.busy++
	v.gen++
	v.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			v.mu.Lock()
			v.busy--
			v.gen++
			v.mu.Unlock()
			v.notify()
		})
	}
}

// Pending reports the number of scheduled events (for tests and the
// advancer's idle check).
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.events)
}

// Step advances time to the earliest pending deadline and fires every
// event due at that instant (in creation order), regardless of busy
// tokens or quiescence. It reports whether anything fired. Tests that
// drive the clock by hand use Step; concurrent simulations use
// AutoAdvance.
func (v *Virtual) Step() bool {
	v.mu.Lock()
	if len(v.events) == 0 {
		v.mu.Unlock()
		return false
	}
	if at := v.events[0].at; at.After(v.now) {
		v.now = at
	}
	var due []*vevent
	for len(v.events) > 0 && !v.events[0].at.After(v.now) {
		due = append(due, heap.Pop(&v.events).(*vevent))
	}
	v.gen++
	now := v.now
	v.mu.Unlock()
	for _, ev := range due {
		ev.fire(now)
	}
	return true
}

// Advancer settle tuning: how many scheduler yields the auto-advancer
// grants runnable goroutines to register their next deadline before it
// commits a jump. Yields instead of real sleeps — on this path a 50µs
// time.Sleep costs a millisecond or more of wall time on virtualized
// kernels, which multiplied by thousands of steps per schedule would make
// "hundreds of schedules per second" impossible. A yield runs every
// runnable goroutine on a single-P runtime and costs nanoseconds on idle
// multi-P runtimes; the gen-stability recheck across the yield window is
// what actually guards the jump.
const (
	settleRounds = 2
	settleYields = 16
)

// AutoAdvance starts the background advancer: whenever the simulation
// quiesces (no busy tokens, scheduling state stable across the settle
// window) it Steps virtual time to the next deadline, then blocks on the
// wake channel until the scheduling state changes again. The returned
// stop function halts the advancer and waits for it to exit.
func (v *Virtual) AutoAdvance() (stop func()) {
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			for v.tryStep() {
			}
			// Every cause of a failed tryStep that can resolve —
			// new/removed events, released busy tokens, the gen bumps
			// behind an unstable settle — notifies wake, so blocking
			// here cannot strand pending work.
			select {
			case <-stopCh:
				return
			case <-v.wake:
			}
		}
	}()
	return func() {
		close(stopCh)
		<-done
	}
}

// tryStep performs one quiescence-checked advance attempt.
func (v *Virtual) tryStep() bool {
	v.mu.Lock()
	gen, busy, pending := v.gen, v.busy, len(v.events)
	v.mu.Unlock()
	if busy > 0 || pending == 0 {
		return false
	}
	// Settle: let runnable goroutines register deadlines or take tokens.
	for i := 0; i < settleRounds; i++ {
		for j := 0; j < settleYields; j++ {
			runtime.Gosched()
		}
	}
	v.mu.Lock()
	stable := v.gen == gen && v.busy == 0 && len(v.events) > 0
	v.mu.Unlock()
	if !stable {
		return false
	}
	return v.Step()
}
