// Package clock abstracts time for the cluster and serving layers.
//
// Production code takes a Clock and defaults to System(), which delegates
// straight to package time — zero behavioral change. The deterministic
// simulation harness (internal/dst) injects Virtual instead: an
// event-queue clock whose "now" jumps instantly from one scheduled
// deadline to the next, so hundreds of seconds of backoff, probe
// intervals, and lease timeouts execute in milliseconds of wall time and
// every timer fires at an exact, reproducible virtual instant.
//
// The interface is deliberately the narrow waist the repo actually uses:
// Now/Since/Until readings, Sleep/After/NewTimer/NewTicker waits, and
// WithTimeout — the one context constructor whose deadline must be
// virtualizable (context.WithTimeout reads the real clock internally, so
// a virtual run would otherwise never expire a 30s lease context).
package clock

import (
	"context"
	"time"
)

// Clock is the time seam. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Since is Now().Sub(t).
	Since(t time.Time) time.Duration
	// Until is t.Sub(Now()).
	Until(t time.Time) time.Duration
	// Sleep blocks for d (returns immediately when d <= 0).
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's instant once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTimer mirrors time.NewTimer: one value on C after d.
	NewTimer(d time.Duration) *Timer
	// NewTicker mirrors time.NewTicker: a value on C every d until Stop.
	NewTicker(d time.Duration) *Ticker
	// WithTimeout mirrors context.WithTimeout against this clock: the
	// returned context's Done fires when d elapses on *this* clock (or the
	// parent ends first), with Err() == context.DeadlineExceeded.
	WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc)
}

// Timer is a clock-agnostic time.Timer: C fires once, Stop cancels.
// The C field keeps call sites shaped like the stdlib (`<-t.C`).
type Timer struct {
	C    <-chan time.Time
	stop func() bool
}

// Stop prevents the timer from firing; it reports whether the call
// stopped a timer that had not yet fired.
func (t *Timer) Stop() bool { return t.stop() }

// Ticker is a clock-agnostic time.Ticker.
type Ticker struct {
	C    <-chan time.Time
	stop func()
}

// Stop turns the ticker off. As with time.Ticker, it does not close C.
func (t *Ticker) Stop() { t.stop() }

// System returns the real clock: every method delegates to package time /
// context. The zero-cost production default.
func System() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (systemClock) Until(t time.Time) time.Duration        { return time.Until(t) }
func (systemClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (systemClock) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, stop: t.Stop}
}

func (systemClock) NewTicker(d time.Duration) *Ticker {
	t := time.NewTicker(d)
	return &Ticker{C: t.C, stop: t.Stop}
}

func (systemClock) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, d)
}

// Skewed wraps a Clock with an adjustable wall-clock offset: Now/Since/
// Until readings shift by the offset, while duration-based waits (Sleep,
// After, timers, timeouts) are unaffected — exactly how a skewed machine
// behaves: its timers still measure real elapsed time, but its timestamps
// disagree with its peers'. The DST harness gives each simulated node a
// Skewed view of the shared virtual clock so schedules can prove nothing
// in the cluster depends on cross-node wall-clock agreement.
type Skewed struct {
	base Clock
	off  atomicDuration
}

// NewSkewed wraps base with an initial offset.
func NewSkewed(base Clock, offset time.Duration) *Skewed {
	s := &Skewed{base: base}
	s.off.Store(offset)
	return s
}

// SetOffset changes the skew (takes effect on the next reading).
func (s *Skewed) SetOffset(d time.Duration) { s.off.Store(d) }

// Offset reports the current skew.
func (s *Skewed) Offset() time.Duration { return s.off.Load() }

func (s *Skewed) Now() time.Time                         { return s.base.Now().Add(s.off.Load()) }
func (s *Skewed) Since(t time.Time) time.Duration        { return s.Now().Sub(t) }
func (s *Skewed) Until(t time.Time) time.Duration        { return t.Sub(s.Now()) }
func (s *Skewed) Sleep(d time.Duration)                  { s.base.Sleep(d) }
func (s *Skewed) After(d time.Duration) <-chan time.Time { return s.base.After(d) }
func (s *Skewed) NewTimer(d time.Duration) *Timer        { return s.base.NewTimer(d) }
func (s *Skewed) NewTicker(d time.Duration) *Ticker      { return s.base.NewTicker(d) }
func (s *Skewed) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return s.base.WithTimeout(parent, d)
}
